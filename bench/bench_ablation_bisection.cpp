// Ablation: k-way spectral clustering (the paper's pipeline) vs recursive
// spectral bisection (the related-work special case, ref [13]).
//
// Bisection needs k-1 small eigensolves (nev=2 each) instead of one big one
// (nev=k), trading eigensolver cost structure for potentially worse global
// cuts (each split is locally optimal).  This bench compares wall time, cut
// quality and ground-truth recovery across k.
#include <cstdio>

#include "bench_common.h"
#include "core/bisection.h"
#include "data/sbm.h"
#include "metrics/cut.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_bisection: k-way spectral clustering vs recursive "
      "spectral bisection");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/0);
  const auto n = cli.get_int("n", 4000, "node count");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  TextTable table("k-way pipeline vs recursive bisection (n=" +
                  std::to_string(n) + ")");
  table.header({"k", "k-way time/s", "k-way Ncut", "k-way ARI",
                "bisect time/s", "bisect Ncut", "bisect ARI"});

  for (const index_t k : {4, 16, 64}) {
    data::SbmParams p;
    p.block_sizes = data::equal_blocks(n, k);
    p.p_in = 0.3;
    p.p_out = 0.01;
    p.seed = flags.seed;
    const data::SbmGraph g = data::make_sbm(p);
    const sparse::Csr w = sparse::coo_to_csr(g.w);

    std::fprintf(stderr, "[bench] k=%lld k-way...\n",
                 static_cast<long long>(k));
    core::SpectralConfig kcfg;
    kcfg.num_clusters = k;
    kcfg.seed = flags.seed;
    WallTimer t1;
    const auto kway = core::spectral_cluster_graph(g.w, kcfg, &ctx);
    const double kway_s = t1.seconds();

    std::fprintf(stderr, "[bench] k=%lld bisection...\n",
                 static_cast<long long>(k));
    core::BisectionConfig bcfg;
    bcfg.num_clusters = k;
    bcfg.seed = flags.seed;
    WallTimer t2;
    const auto bis = core::spectral_bisection(g.w, bcfg);
    const double bis_s = t2.seconds();

    table.row(
        {TextTable::fmt(k), TextTable::fmt_seconds(kway_s),
         TextTable::fmt(metrics::normalized_cut(w, kway.labels, k), 4),
         TextTable::fmt(metrics::adjusted_rand_index(kway.labels, g.labels),
                        4),
         TextTable::fmt_seconds(bis_s),
         TextTable::fmt(metrics::normalized_cut(w, bis.labels, k), 4),
         TextTable::fmt(metrics::adjusted_rand_index(bis.labels, g.labels),
                        4)});
  }
  table.print();
  return 0;
}
