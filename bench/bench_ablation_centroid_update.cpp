// Ablation: the paper's sort-by-label centroid update (§IV.C) vs direct
// per-worker accumulation.
//
// The paper sorts the points by their new labels so each GPU thread can
// reduce a consecutive segment without atomics.  The alternative is a
// point-parallel sweep into per-worker partial sums.  On a GPU the sort
// amortizes across thousands of threads; on the simulated device the
// crossover depends on k and the worker count — this bench measures both
// across k and checks that the two strategies produce identical clusterings.
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "kmeans/kmeans.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_centroid_update: sort-by-label (paper §IV.C) vs "
      "direct accumulation in the device k-means");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/0);
  const auto n = cli.get_int("n", 20000, "points");
  const auto d = cli.get_int("d", 32, "dimensions");
  const auto iters = cli.get_int("iters", 15, "k-means iterations");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  Rng rng(flags.seed);
  std::vector<real> v(static_cast<usize>(n * d));
  for (index_t i = 0; i < n; ++i) {
    const real base = static_cast<real>((i % 16) * 6);
    for (index_t l = 0; l < d; ++l) {
      v[static_cast<usize>(i * d + l)] = base + rng.normal();
    }
  }

  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  TextTable table("Centroid-update ablation, n=" + std::to_string(n) +
                  ", d=" + std::to_string(d) + ", " + std::to_string(iters) +
                  " iterations");
  table.header({"k", "sort-by-label (paper)/s", "direct accumulation/s",
                "labels agree"});

  for (const index_t k : {8, 32, 128}) {
    kmeans::KmeansConfig cfg;
    cfg.k = k;
    cfg.max_iters = iters;
    cfg.seed = flags.seed;

    cfg.centroid_update = kmeans::CentroidUpdate::kSortByLabel;
    WallTimer t1;
    const auto sort_r = kmeans::kmeans_device(ctx, v.data(), n, d, cfg);
    const double sort_s = t1.seconds();

    cfg.centroid_update = kmeans::CentroidUpdate::kDirectAccumulate;
    WallTimer t2;
    const auto direct_r = kmeans::kmeans_device(ctx, v.data(), n, d, cfg);
    const double direct_s = t2.seconds();

    table.row({TextTable::fmt(k), TextTable::fmt_seconds(sort_s),
               TextTable::fmt_seconds(direct_s),
               sort_r.labels == direct_r.labels ? "yes" : "no"});
  }
  table.print();
  return 0;
}
