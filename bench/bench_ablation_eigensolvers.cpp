// Ablation: IRLM (ARPACK-style, the paper's choice) vs block subspace
// iteration vs shift-invert Lanczos.
//
// The paper asserts (§IV.B) that the ARPACK reverse-communication procedure
// is "currently the most efficient and convenient way to solve general
// eigenvalue problems for large-scale matrices".  This bench puts numbers
// behind that: on a graph operator with the clustered spectrum typical of
// spectral clustering (k communities => k eigenvalues crowded near 1),
// subspace iteration needs far more operator applications, while
// shift-invert trades outer iterations for inner CG solves.
#include <cstdio>

#include "bench_common.h"
#include "data/sbm.h"
#include "graph/laplacian.h"
#include "lanczos/rci.h"
#include "solvers/shift_invert.h"
#include "solvers/subspace_iteration.h"
#include "sparse/spmv.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_eigensolvers: IRLM vs subspace iteration vs "
      "shift-invert on a community-structured graph operator");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/8);
  const auto n = cli.get_int("n", 3000, "node count");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, flags.k);
  p.p_in = 0.3;
  p.p_out = 0.01;
  p.seed = flags.seed;
  const data::SbmGraph g = data::make_sbm(p);
  std::vector<real> isd;
  const sparse::Csr s = graph::sym_normalized_host(g.w, isd);
  auto matvec = [&](const real* x, real* y) { sparse::csr_mv(s, x, y); };

  TextTable table("Eigensolver comparison: top-" + std::to_string(flags.k) +
                  " eigenpairs of S = D^-1/2 W D^-1/2, n=" + std::to_string(n));
  table.header({"Method", "time/s", "operator applications", "extra",
                "converged"});

  {
    std::fprintf(stderr, "[bench] IRLM (thick-restart Lanczos)...\n");
    lanczos::LanczosConfig cfg;
    cfg.n = n;
    cfg.nev = flags.k;
    cfg.tol = 1e-8;
    cfg.seed = flags.seed;
    WallTimer t;
    const auto r = lanczos::solve_symmetric(cfg, matvec);
    table.row({"IRLM (paper)", TextTable::fmt_seconds(t.seconds()),
               TextTable::fmt(r.stats.matvec_count),
               std::to_string(r.stats.restart_count) + " restarts",
               r.converged ? "yes" : "no"});
  }
  {
    std::fprintf(stderr, "[bench] subspace iteration...\n");
    solvers::SubspaceConfig cfg;
    cfg.n = n;
    cfg.nev = flags.k;
    cfg.tol = 1e-8;
    cfg.max_iters = 500;
    cfg.seed = flags.seed;
    WallTimer t;
    const auto r = solvers::subspace_iteration(matvec, cfg);
    table.row({"subspace iteration", TextTable::fmt_seconds(t.seconds()),
               TextTable::fmt(r.matvec_count),
               std::to_string(r.iterations) + " outer iters",
               r.converged ? "yes" : "no"});
  }
  {
    // Smallest eigenvalues of Lsym = I - S via shift-invert; equivalent
    // information (lambda(S) = 1 - lambda(Lsym)) through the inverse operator.
    std::fprintf(stderr, "[bench] shift-invert Lanczos (+CG)...\n");
    auto lsym_mv = [&](const real* x, real* y) {
      sparse::csr_mv(s, x, y);
      for (index_t i = 0; i < n; ++i) y[i] = x[i] - y[i];
    };
    solvers::ShiftInvertConfig cfg;
    cfg.lanczos.n = n;
    cfg.lanczos.nev = flags.k;
    cfg.lanczos.tol = 1e-8;
    cfg.lanczos.seed = flags.seed;
    cfg.sigma = -0.02;
    solvers::ShiftInvertStats stats;
    WallTimer t;
    const auto r = solvers::solve_smallest_shift_invert(lsym_mv, cfg, &stats);
    table.row({"shift-invert Lanczos", TextTable::fmt_seconds(t.seconds()),
               TextTable::fmt(static_cast<index_t>(
                   stats.total_cg_iterations)),
               std::to_string(stats.outer_matvecs) + " outer solves",
               r.converged && stats.all_solves_converged ? "yes" : "no"});
  }
  table.print();
  return 0;
}
