// Ablation: Shi-Malik raw embedding (the paper's Step 4) vs Ng-Jordan-Weiss
// row-normalized embedding, across noise levels.
//
// Both cluster the rows of the eigenvector matrix; NJW first projects each
// row onto the unit sphere.  On clean planted partitions both work; NJW is
// known to be more robust when degrees vary widely.  The bench sweeps the
// SBM mixing rate and reports ARI for both variants.
#include <cstdio>

#include "bench_common.h"
#include "data/sbm.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_embedding_norm: Shi-Malik vs Ng-Jordan-Weiss "
      "embedding normalization");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/10);
  const auto n = cli.get_int("n", 2000, "node count");
  const auto trials = cli.get_int("trials", 3, "seeds to average");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  TextTable table("Embedding normalization ablation (n=" + std::to_string(n) +
                  ", k=" + std::to_string(flags.k) + ", ARI avg of " +
                  std::to_string(trials) + " trials)");
  table.header({"p_out/p_in mix", "ARI raw rows (Shi-Malik, paper)",
                "ARI row-normalized (NJW)"});

  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  for (const real mix : {0.02, 0.05, 0.10, 0.15}) {
    real ari_raw = 0, ari_njw = 0;
    for (index_t t = 0; t < trials; ++t) {
      data::SbmParams p;
      p.block_sizes = data::equal_blocks(n, flags.k);
      p.p_in = 0.25;
      p.p_out = 0.25 * mix;
      p.seed = flags.seed + static_cast<std::uint64_t>(t) * 101;
      const data::SbmGraph g = data::make_sbm(p);

      core::SpectralConfig cfg;
      cfg.num_clusters = flags.k;
      cfg.seed = flags.seed + static_cast<std::uint64_t>(t);
      cfg.row_normalize_embedding = false;
      const auto raw = core::spectral_cluster_graph(g.w, cfg, &ctx);
      ari_raw += metrics::adjusted_rand_index(raw.labels, g.labels);

      cfg.row_normalize_embedding = true;
      const auto njw = core::spectral_cluster_graph(g.w, cfg, &ctx);
      ari_njw += metrics::adjusted_rand_index(njw.labels, g.labels);
    }
    table.row({TextTable::fmt(mix, 3),
               TextTable::fmt(ari_raw / trials, 4),
               TextTable::fmt(ari_njw / trials, 4)});
  }
  table.print();
  return 0;
}
