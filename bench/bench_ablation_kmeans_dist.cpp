// Ablation: BLAS-formulated distance matrix (Eq. 11-16) vs naive loops.
//
// The paper attributes its 100-400x k-means speedups to computing
// S = Vnorm (+) Cnorm - 2 V C^T with a level-3 BLAS call instead of the
// per-point/per-centroid loop.  This bench isolates the per-iteration
// assignment-step cost for both formulations at several k, plus the device
// k-means end-to-end against the host Lloyd baselines.
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "blas/dblas.h"
#include "common/rng.h"
#include "common/timer.h"
#include "device/algorithms.h"
#include "kmeans/kmeans.h"
#include "kmeans/lloyd.h"

namespace {

using namespace fastsc;

/// One naive assignment pass: per-point per-centroid O(d) loop.
double naive_assign(const real* v, index_t n, index_t d, const real* c,
                    index_t k, std::vector<index_t>& labels) {
  WallTimer t;
  for (index_t i = 0; i < n; ++i) {
    real best = std::numeric_limits<real>::max();
    index_t arg = 0;
    for (index_t j = 0; j < k; ++j) {
      real acc = 0;
      for (index_t l = 0; l < d; ++l) {
        const real delta = v[i * d + l] - c[j * d + l];
        acc += delta * delta;
      }
      if (acc < best) {
        best = acc;
        arg = j;
      }
    }
    labels[static_cast<usize>(i)] = arg;
  }
  return t.seconds();
}

/// One BLAS-formulated assignment pass on the device (Eq. 11-16).
double blas_assign(device::DeviceContext& ctx, const real* dev_v, index_t n,
                   index_t d, const real* dev_c, index_t k, real* dev_s,
                   const real* vnorm, real* cnorm, index_t* dev_labels) {
  WallTimer t;
  dblas::row_squared_norms(ctx, k, d, dev_c, d, cnorm);
  device::launch(ctx, n * k, [=](index_t tid) {
    dev_s[tid] = vnorm[tid / k] + cnorm[tid % k];
  });
  dblas::gemm_nt(ctx, n, k, d, -2.0, dev_v, d, dev_c, d, 1.0, dev_s, k);
  device::launch(ctx, n, [=](index_t i) {
    const real* row = dev_s + i * k;
    index_t best = 0;
    real best_val = row[0];
    for (index_t j = 1; j < k; ++j) {
      if (row[j] < best_val) {
        best_val = row[j];
        best = j;
      }
    }
    dev_labels[i] = best;
  });
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_kmeans_dist: BLAS-formulated vs naive distance "
      "computation (the paper's Eq. 11-16 design choice)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/0);
  const auto n = cli.get_int("n", 20000, "points");
  const auto d = cli.get_int("d", 64, "dimensions");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  Rng rng(flags.seed);
  std::vector<real> v(static_cast<usize>(n * d));
  for (real& x : v) x = rng.uniform(-1, 1);

  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  device::DeviceBuffer<real> dev_v(ctx, std::span<const real>(v));
  device::DeviceBuffer<real> vnorm(ctx, static_cast<usize>(n));
  dblas::row_squared_norms(ctx, n, d, dev_v.data(), d, vnorm.data());

  TextTable table("Assignment-step time per iteration, n=" +
                  std::to_string(n) + ", d=" + std::to_string(d));
  table.header({"k", "naive loop s", "BLAS-formulated s", "speedup"});
  for (const index_t k : {16, 64, 256}) {
    std::vector<real> c(static_cast<usize>(k * d));
    for (real& x : c) x = rng.uniform(-1, 1);
    std::vector<index_t> labels(static_cast<usize>(n));
    const double naive_s = naive_assign(v.data(), n, d, c.data(), k, labels);

    device::DeviceBuffer<real> dev_c(ctx, std::span<const real>(c));
    device::DeviceBuffer<real> dev_s(ctx, static_cast<usize>(n * k));
    device::DeviceBuffer<real> cnorm(ctx, static_cast<usize>(k));
    device::DeviceBuffer<index_t> dev_labels(ctx, static_cast<usize>(n));
    const double blas_s =
        blas_assign(ctx, dev_v.data(), n, d, dev_c.data(), k, dev_s.data(),
                    vnorm.data(), cnorm.data(), dev_labels.data());

    // Consistency: both formulations must agree on the labels.
    const auto got = dev_labels.to_host();
    index_t mismatches = 0;
    for (usize i = 0; i < got.size(); ++i) {
      if (got[i] != labels[i]) ++mismatches;
    }
    if (mismatches != 0) {
      std::fprintf(stderr, "[bench] WARNING: %lld label mismatches\n",
                   static_cast<long long>(mismatches));
    }
    table.row({TextTable::fmt(k), TextTable::fmt_seconds(naive_s),
               TextTable::fmt_seconds(blas_s),
               TextTable::fmt_speedup(naive_s / blas_s)});
  }
  table.print();
  return 0;
}
