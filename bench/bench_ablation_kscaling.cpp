// Ablation: eigensolver cost vs cluster count k and basis size m (Eq. 10).
//
// The paper's complexity model is (O(m^3) + O(n m^2) + O(nnz m)) x restarts
// with m ~ 2k, and §V.C observes that the CPU-side reverse-communication
// work becomes the bottleneck as k grows.  This bench sweeps k on a fixed
// graph and reports the split between CPU-side RCI time and device SpMV
// time, plus a sweep of the m/k ratio.
#include <cstdio>

#include "bench_common.h"
#include "data/sbm.h"
#include "graph/laplacian.h"
#include "lanczos/rci.h"
#include "sparse/spmv.h"

namespace {

using namespace fastsc;

struct EigRun {
  double total = 0;
  double rci = 0;
  double spmv = 0;
  index_t matvecs = 0;
  index_t restarts = 0;
  bool converged = false;
};

EigRun run_eig(device::DeviceContext& ctx, const sparse::DeviceCsr& p,
               index_t n, index_t k, index_t ncv, std::uint64_t seed) {
  lanczos::LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = k;
  cfg.ncv = ncv;
  cfg.tol = 1e-8;
  cfg.which = lanczos::EigWhich::kLargestAlgebraic;
  cfg.seed = seed;
  lanczos::SymEigProb prob(cfg);

  device::DeviceBuffer<real> dx(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dy(ctx, static_cast<usize>(n));
  std::vector<real> host_y(static_cast<usize>(n));

  EigRun out;
  WallTimer total;
  while (!prob.converge()) {
    WallTimer t;
    dx.copy_from_host(std::span<const real>(prob.GetVector(),
                                            static_cast<usize>(n)));
    sparse::device_csrmv(ctx, p, dx.data(), dy.data());
    dy.copy_to_host(std::span<real>(host_y));
    std::copy(host_y.begin(), host_y.end(), prob.PutVector());
    out.spmv += t.seconds();
    prob.TakeStep();
  }
  (void)prob.FindEigenvectors();
  out.total = total.seconds();
  out.rci = prob.Stats().rci_seconds;
  out.matvecs = prob.Stats().matvec_count;
  out.restarts = prob.Stats().restart_count;
  out.converged = !prob.Failed();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_kscaling: eigensolver cost split vs k and basis size "
      "(the paper's Eq. 10 cost model)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/0);
  const auto n = cli.get_int("n", 6000, "node count");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, 100);
  p.p_in = 0.25;
  p.p_out = 0.005;
  p.seed = flags.seed;
  std::fprintf(stderr, "[bench] generating graph...\n");
  const data::SbmGraph g = data::make_sbm(p);

  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  sparse::DeviceCoo dev_w(ctx, g.w);
  device::DeviceBuffer<real> isd;
  const sparse::DeviceCsr rw = graph::sym_normalized_device(ctx, dev_w, isd);

  TextTable table("Eigensolver cost vs k (n=" + std::to_string(n) +
                  ", m = 2k+1): CPU-side RCI work grows as O(m^3 + n m^2), "
                  "SpMV as O(nnz m)");
  table.header({"k", "total/s", "RCI (CPU)/s", "SpMV+staging/s", "matvecs",
                "restarts", "RCI share"});
  for (const index_t k : {4, 8, 16, 32, 64}) {
    const EigRun r = run_eig(ctx, rw, n, k, 0, flags.seed);
    table.row({TextTable::fmt(k), TextTable::fmt_seconds(r.total),
               TextTable::fmt_seconds(r.rci), TextTable::fmt_seconds(r.spmv),
               TextTable::fmt(r.matvecs), TextTable::fmt(r.restarts),
               TextTable::fmt(100.0 * r.rci / r.total, 3) + "%"});
  }
  table.print();
  std::printf("\n");

  TextTable mtable(
      "Basis-size sweep at k=16: larger m trades more CPU-side work per "
      "restart for fewer restarts");
  mtable.header({"m (ncv)", "total/s", "matvecs", "restarts", "converged"});
  for (const index_t mult : {2, 3, 4, 6}) {
    const index_t ncv = 16 * mult + 1;
    const EigRun r = run_eig(ctx, rw, n, 16, ncv, flags.seed);
    mtable.row({TextTable::fmt(ncv), TextTable::fmt_seconds(r.total),
                TextTable::fmt(r.matvecs), TextTable::fmt(r.restarts),
                r.converged ? "yes" : "no"});
  }
  mtable.print();
  return 0;
}
