// Table VII ablation: synchronous default-stream staging vs. the overlapped
// stream/event pipeline, on the Syn200 configuration.
//
// The paper's Table VII shows PCIe communication rivalling computation in
// the eigensolver stage; the paper itself stages every RCI vector over the
// link synchronously (default CUDA stream).  This bench quantifies what the
// stream/event runtime buys on the modeled timeline:
//
//  1. SpMV-loop section — the eigensolver's inner operation in isolation.
//     The same matrix multiplies the same vectors for --iters rounds, once
//     with synchronous H2D -> csrmv -> D2H and once with the column-blocked
//     pipeline (x tiles staged H2D behind earlier blocks' csrmv, y row tiles
//     D2H behind the tail compute).  Counter snapshots around each phase
//     give the exact kernel / modeled-PCIe / overlap split, so
//     overlapped_h2d_seconds > 0 is direct proof that H2D staging ran while
//     csrmv occupied the compute engine.
//  2. End-to-end section — spectral_cluster_graph with async_pipeline off
//     vs. on (which also tiles the k-means distance GEMM with prefetched
//     centroid tiles).
//
// Modeled stage time = kernel_seconds + modeled_transfer_seconds -
// overlapped_seconds (each overlap window counted once).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stage_clock.h"
#include "common/timer.h"
#include "data/sbm.h"
#include "device/executor.h"
#include "sparse/spmv.h"

namespace {

using namespace fastsc;

struct PhaseCounters {
  device::DeviceCounters delta;
  double wall_seconds = 0;
};

device::DeviceCounters snapshot_delta(const device::DeviceCounters& after,
                                      const device::DeviceCounters& before) {
  device::DeviceCounters d = after;
  d.kernel_seconds -= before.kernel_seconds;
  d.modeled_transfer_seconds -= before.modeled_transfer_seconds;
  d.overlapped_seconds -= before.overlapped_seconds;
  d.overlapped_h2d_seconds -= before.overlapped_h2d_seconds;
  d.overlapped_d2h_seconds -= before.overlapped_d2h_seconds;
  d.bytes_h2d -= before.bytes_h2d;
  d.bytes_d2h -= before.bytes_d2h;
  d.transfers_h2d -= before.transfers_h2d;
  d.transfers_d2h -= before.transfers_d2h;
  d.async_copies -= before.async_copies;
  d.async_kernel_launches -= before.async_kernel_launches;
  return d;
}

/// --iters synchronous matvecs: H2D x, csrmv, D2H y on the default stream.
PhaseCounters spmv_loop_sync(device::DeviceContext& ctx, const sparse::Csr& a,
                             index_t iters) {
  const index_t n = a.rows;
  sparse::DeviceCsr dev_a(ctx, a);
  device::DeviceBuffer<real> dev_x(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_y(ctx, static_cast<usize>(n));
  std::vector<real> x(static_cast<usize>(n), 1.0);
  std::vector<real> y(static_cast<usize>(n));
  const device::DeviceCounters before = ctx.counters_snapshot();
  WallTimer t;
  for (index_t it = 0; it < iters; ++it) {
    dev_x.copy_from_host(std::span<const real>(x));
    sparse::device_csrmv(ctx, dev_a, dev_x.data(), dev_y.data());
    dev_y.copy_to_host(std::span<real>(y));
    x = y;
  }
  PhaseCounters out;
  out.wall_seconds = t.seconds();
  out.delta = snapshot_delta(ctx.counters_snapshot(), before);
  return out;
}

/// --iters pipelined matvecs: the spectral pipeline's column-blocked
/// formulation on a {transfer, compute} stream pair.
PhaseCounters spmv_loop_async(device::DeviceContext& ctx, const sparse::Csr& a,
                              index_t iters, index_t col_blocks,
                              index_t row_tiles, StageClock& clock) {
  using Exec = device::PipelineExecutor;
  const index_t n = a.rows;
  sparse::DeviceCsrColBlocks blocks(ctx, a, col_blocks);
  device::DeviceBuffer<real> dev_x(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_y(ctx, static_cast<usize>(n));
  std::vector<real> x(static_cast<usize>(n), 1.0);
  std::vector<real> y(static_cast<usize>(n));
  Exec exec(ctx);
  const usize nb = blocks.block_count();
  index_t tiles = row_tiles < 1 ? 1 : row_tiles;
  if (tiles > n) tiles = n;

  const device::DeviceCounters before = ctx.counters_snapshot();
  WallTimer t;
  for (index_t it = 0; it < iters; ++it) {
    exec.reset();
    real* xp = dev_x.data();
    real* yp = dev_y.data();
    const real* hx = x.data();
    real* hy = y.data();
    std::vector<Exec::NodeId> h2d(nb);
    for (usize b = 0; b < nb; ++b) {
      const index_t c0 = blocks.col_start[b];
      const index_t c1 = blocks.col_start[b + 1];
      h2d[b] = exec.add(Exec::kTransferStream, "h2d", [&ctx, xp, hx, c0, c1] {
        device::copy_h2d(ctx, xp + c0, hx + c0, static_cast<usize>(c1 - c0));
      });
    }
    for (usize b = 0; b + 1 < nb; ++b) {
      const sparse::DeviceCsr& blk = blocks.blocks[b];
      const real beta = b == 0 ? 0.0 : 1.0;
      exec.add(
          Exec::kComputeStream, "csrmv",
          [&ctx, &blk, xp, yp, n, beta] {
            sparse::device_csrmv_range(ctx, blk, xp, yp, 0, n, 1.0, beta);
          },
          {h2d[b]});
    }
    const sparse::DeviceCsr& last = blocks.blocks[nb - 1];
    const real last_beta = nb == 1 ? 0.0 : 1.0;
    for (index_t tile = 0; tile < tiles; ++tile) {
      const index_t r0 = (n * tile) / tiles;
      const index_t r1 = (n * (tile + 1)) / tiles;
      const Exec::NodeId compute = exec.add(
          Exec::kComputeStream, "csrmv-tail",
          [&ctx, &last, xp, yp, r0, r1, last_beta] {
            sparse::device_csrmv_range(ctx, last, xp, yp, r0, r1, 1.0,
                                       last_beta);
          },
          {h2d[nb - 1]});
      exec.add(Exec::kTransferStream, "d2h",
               [&ctx, hy, yp, r0, r1] {
                 device::copy_d2h(ctx, hy + r0, yp + r0,
                                  static_cast<usize>(r1 - r0));
               },
               {compute});
    }
    // Stream-completion callback: modeled PCIe time of this wave lands in
    // the StageClock from the transfer-stream thread (the thread-safe add()
    // path the async runtime relies on).
    const double wave_start =
        ctx.counters_snapshot().modeled_transfer_seconds;
    exec.stream(Exec::kTransferStream).add_callback([&clock, &ctx,
                                                     wave_start] {
      clock.add("pcie-modeled",
                ctx.counters_snapshot().modeled_transfer_seconds - wave_start);
    });
    exec.run();
    x = y;
  }
  PhaseCounters out;
  out.wall_seconds = t.seconds();
  out.delta = snapshot_delta(ctx.counters_snapshot(), before);
  return out;
}

void print_spmv_section(const PhaseCounters& sync, const PhaseCounters& async_,
                        index_t iters, const StageClock& clock) {
  TextTable table("Eigensolver SpMV loop, sync vs. overlapped (modeled)");
  table.header({"Mode", "Kernel/s", "PCIe modeled/s", "Overlap/s",
                "Overlap H2D/s", "Overlap D2H/s", "Modeled stage/s"});
  auto row = [&](const char* name, const PhaseCounters& p) {
    const auto& c = p.delta;
    table.row({name, TextTable::fmt_seconds(c.kernel_seconds),
               TextTable::fmt_seconds(c.modeled_transfer_seconds),
               TextTable::fmt_seconds(c.overlapped_seconds),
               TextTable::fmt_seconds(c.overlapped_h2d_seconds),
               TextTable::fmt_seconds(c.overlapped_d2h_seconds),
               TextTable::fmt_seconds(c.modeled_pipeline_seconds())});
  };
  row("sync", sync);
  row("async", async_);
  table.print();

  const double sync_modeled = sync.delta.modeled_pipeline_seconds();
  const double async_modeled = async_.delta.modeled_pipeline_seconds();
  const double reduction =
      sync_modeled > 0 ? 100.0 * (sync_modeled - async_modeled) / sync_modeled
                       : 0.0;
  std::printf(
      "\nSpMV loop (%lld matvecs): modeled stage time %0.4fs -> %0.4fs "
      "(%.1f%% reduction)\n",
      static_cast<long long>(iters), sync_modeled, async_modeled, reduction);
  std::printf(
      "H2D staging overlapped csrmv execution for %0.4fs "
      "(async H2D copies: %lld, async kernel launches: %lld)\n",
      async_.delta.overlapped_h2d_seconds,
      static_cast<long long>(async_.delta.async_copies),
      static_cast<long long>(async_.delta.async_kernel_launches));
  std::printf(
      "Transfer-stream callbacks recorded %0.4fs modeled PCIe into the "
      "stage clock\n",
      clock.seconds("pcie-modeled"));
}

void print_pipeline_section(const core::SpectralResult& sync,
                            const core::SpectralResult& async_) {
  TextTable table("End-to-end device pipeline, sync vs. async staging");
  table.header({"Mode", "Eigensolver/s", "K-means/s", "Kernel/s",
                "PCIe modeled/s", "Overlap/s", "Modeled pipeline/s"});
  auto row = [&](const char* name, const core::SpectralResult& r) {
    const auto& c = r.device_counters;
    table.row({name,
               TextTable::fmt_seconds(r.clock.seconds(core::kStageEigensolver)),
               TextTable::fmt_seconds(r.clock.seconds(core::kStageKmeans)),
               TextTable::fmt_seconds(c.kernel_seconds),
               TextTable::fmt_seconds(c.modeled_transfer_seconds),
               TextTable::fmt_seconds(c.overlapped_seconds),
               TextTable::fmt_seconds(c.modeled_pipeline_seconds())});
  };
  row("sync", sync);
  row("async", async_);
  table.print();

  const double sm = sync.device_counters.modeled_pipeline_seconds();
  const double am = async_.device_counters.modeled_pipeline_seconds();
  std::printf("\nEnd-to-end modeled device time %0.4fs -> %0.4fs (%.1f%% "
              "reduction); eigensolver converged: %s/%s, matvecs: %lld/%lld\n",
              sm, am, sm > 0 ? 100.0 * (sm - am) / sm : 0.0,
              sync.eig_converged ? "yes" : "no",
              async_.eig_converged ? "yes" : "no",
              static_cast<long long>(sync.eig_stats.matvec_count),
              static_cast<long long>(async_.eig_stats.matvec_count));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_overlap: Table VII sync vs. overlapped staging "
      "(stream/event pipeline) on the Syn200 config");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/0);
  const auto n = cli.get_int("n", 6000, "node count (paper: 20000)");
  const auto blocks =
      cli.get_int("blocks", 60, "planted blocks r (paper: 200)");
  const auto p_in = cli.get_double("p_in", 0.3, "within-block probability");
  const auto p_out = cli.get_double("p_out", 0.01, "cross-block probability");
  const auto iters =
      cli.get_int("iters", 50, "matvecs in the isolated SpMV-loop section");
  const auto col_blocks =
      cli.get_int("col_blocks", 2, "column blocks (H2D staging granularity)");
  const auto row_tiles =
      cli.get_int("row_tiles", 4, "row tiles of the final block (D2H)");
  // Simulated kernels run at CPU wall-time speed, so the paper's 8 GB/s link
  // makes transfers vanish next to compute.  The default link is scaled down
  // to restore the comm/comp ratio of Table VII (GPU-speed kernels vs. PCIe
  // gen2); sweep it with --pcie_gbps to explore other regimes.
  const auto pcie_gbps = cli.get_double(
      "pcie_gbps", 0.5, "modeled link bandwidth (paper platform: 8.0)");
  const auto latency_us =
      cli.get_double("latency_us", 10.0, "modeled per-transfer latency");
  const bool spmv_only =
      cli.get_bool("spmv_only", false, "skip the end-to-end pipeline section");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  const auto scaled_n = std::max<index_t>(
      400, static_cast<index_t>(static_cast<double>(n) * flags.scale));
  const auto scaled_blocks = std::max<index_t>(
      4, static_cast<index_t>(static_cast<double>(blocks) * flags.scale));
  const index_t k = flags.k > 0 ? flags.k : scaled_blocks;

  data::SbmParams params;
  params.block_sizes = data::equal_blocks(scaled_n, scaled_blocks);
  params.p_in = p_in;
  params.p_out = p_out;
  params.seed = flags.seed;
  std::fprintf(stderr, "[bench] generating SBM n=%lld r=%lld...\n",
               static_cast<long long>(scaled_n),
               static_cast<long long>(scaled_blocks));
  sparse::Coo w = data::make_sbm(params).w;
  bench::prune_isolated(w, nullptr);
  const sparse::Csr w_csr = sparse::coo_to_csr(w);
  std::fprintf(stderr, "[bench] %lld stored entries\n",
               static_cast<long long>(w_csr.nnz()));

  device::TransferModel model;
  model.bandwidth_bytes_per_sec = pcie_gbps * 1e9;
  model.latency_seconds = latency_us * 1e-6;

  // --- section 1: the RCI loop's SpMV in isolation -------------------------
  StageClock async_clock;
  device::DeviceContext sync_ctx(static_cast<usize>(flags.workers), model);
  const PhaseCounters sync_spmv = spmv_loop_sync(sync_ctx, w_csr, iters);
  device::DeviceContext async_ctx(static_cast<usize>(flags.workers), model);
  const PhaseCounters async_spmv = spmv_loop_async(
      async_ctx, w_csr, iters, col_blocks, row_tiles, async_clock);
  print_spmv_section(sync_spmv, async_spmv, iters, async_clock);
  std::printf("\n");
  if (spmv_only) return 0;

  // --- section 2: the full device pipeline ---------------------------------
  core::SpectralConfig cfg;
  cfg.num_clusters = k;
  cfg.backend = core::Backend::kDevice;
  cfg.seed = flags.seed;
  cfg.overlap_col_blocks = col_blocks;
  cfg.overlap_row_tiles = row_tiles;

  cfg.async_pipeline = false;
  device::DeviceContext ctx_sync_run(static_cast<usize>(flags.workers), model);
  std::fprintf(stderr, "[bench] end-to-end sync run...\n");
  const core::SpectralResult r_sync =
      core::spectral_cluster_graph(w, cfg, &ctx_sync_run);

  cfg.async_pipeline = true;
  device::DeviceContext ctx_async_run(static_cast<usize>(flags.workers), model);
  std::fprintf(stderr, "[bench] end-to-end async run...\n");
  const core::SpectralResult r_async =
      core::spectral_cluster_graph(w, cfg, &ctx_async_run);

  print_pipeline_section(r_sync, r_async);
  return 0;
}
