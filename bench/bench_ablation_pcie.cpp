// Ablation: PCIe link bandwidth sweep.
//
// Table VII's conclusion — communication stays negligible next to
// computation — depends on the link speed.  The simulated device makes the
// link a parameter: this bench reruns the eigensolver stage under several
// modeled bandwidths (PCIe gen2 x16 down to gen1 x4) and reports where the
// communication share would stop being negligible.
#include <cstdio>

#include "bench_common.h"
#include "data/sbm.h"
#include "graph/laplacian.h"
#include "lanczos/rci.h"
#include "sparse/spmv.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_pcie: modeled link-bandwidth sweep for the Table VII "
      "communication/computation split");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/32);
  const auto n = cli.get_int("n", 6000, "node count");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, flags.k);
  p.p_in = 0.3;
  p.p_out = 0.01;
  p.seed = flags.seed;
  const data::SbmGraph g = data::make_sbm(p);

  struct Link {
    const char* name;
    double gbps;
  };
  const Link links[] = {
      {"PCIe gen2 x16 (paper, 8 GB/s)", 8.0},
      {"PCIe gen2 x8 (4 GB/s)", 4.0},
      {"PCIe gen1 x8 (2 GB/s)", 2.0},
      {"PCIe gen1 x4 (1 GB/s)", 1.0},
      {"slow interconnect (0.25 GB/s)", 0.25},
  };

  TextTable table("Eigensolver stage: modeled communication vs computation "
                  "across link speeds (n=" +
                  std::to_string(n) + ", k=" + std::to_string(flags.k) + ")");
  table.header({"Link", "comm (modeled)/s", "comp/s", "comm share"});

  for (const Link& link : links) {
    device::TransferModel model;
    model.bandwidth_bytes_per_sec = link.gbps * 1e9;
    device::DeviceContext ctx(static_cast<usize>(flags.workers), model);

    core::SpectralConfig cfg;
    cfg.num_clusters = flags.k;
    cfg.seed = flags.seed;
    std::fprintf(stderr, "[bench] link %s...\n", link.name);
    const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg, &ctx);
    const double comm = r.device_counters.modeled_transfer_seconds;
    const double total = r.clock.total_seconds();
    const double comp = total > comm ? total - comm : 0;
    table.row({link.name, TextTable::fmt_seconds(comm),
               TextTable::fmt_seconds(comp),
               TextTable::fmt(100.0 * comm / (comm + comp), 3) + "%"});
  }
  table.print();
  return 0;
}
