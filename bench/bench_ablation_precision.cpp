// Mixed-precision ladder ablation: fp64 vs fp32 (fp64 accumulate) vs
// bf16-emulated storage on the eigensolver hot path (DESIGN.md §13).
//
// For each of the four paper-shaped datasets plus a power-law graph, the
// pipeline runs once per precision rung on a single simulated device and
// once on a 4-device group, with the deterministic kernel cost model on.
// Per rung the bench reports the modeled seconds and width-equivalent bytes
// of the SpMV stage (kernel + staging, attributed to the spmv.* sites), the
// eigenvalue error and label ARI against the fp64 run, the fp64 refinement
// residual, and whether the sharded labels are byte-identical to the
// single-device labels (they must be, at every rung).
//
// Published gauges (aggregated over the datasets, single-device runs):
//   precision.<rung>.spmv_stage_seconds  modeled spmv.* seconds
//   precision.<rung>.spmv_stage_bytes    width-equivalent spmv.* bytes:
//       each site's modeled traffic scaled by bytes_per_scalar()/8, which
//       isolates the narrowed value stream from the fixed int64 structure
//       traffic a CSR kernel must move at any rung
//   precision.<rung>.spmv_speedup        fp64 seconds / rung seconds
//   precision.<rung>.max_eig_err         max |lambda - lambda_fp64|
//   precision.<rung>.min_ari             min ARI(labels, labels_fp64)
// The precision_smoke CTest and the perf_regression gate judge the ladder
// from these gauges alone (tools/check_trace.py --expect-gauge /
// --expect-bytes-ratio).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/precision.h"
#include "core/sharded.h"
#include "data/powerlaw.h"
#include "data/sbm.h"
#include "data/social.h"
#include "device/device_group.h"
#include "graph/components.h"

namespace {

using namespace fastsc;

struct Dataset {
  std::string name;
  sparse::Coo w;
  index_t k;
};

std::vector<Dataset> make_datasets(index_t n, std::uint64_t seed) {
  std::vector<Dataset> out;
  {
    const data::SbmGraph g = data::make_social_graph(
        data::fb_like_params(n, 5, seed));
    out.push_back({"fb-like", g.w, 5});
  }
  {
    const data::SbmGraph g = data::make_social_graph(
        data::dblp_like_params(n + n / 4, 6, seed));
    out.push_back({"dblp-like", g.w, 6});
  }
  {
    data::SbmParams p;
    p.block_sizes = data::equal_blocks(n - n / 8, 4);
    p.p_in = 0.25;
    p.p_out = 0.01;
    p.seed = seed;
    out.push_back({"syn-sbm", data::make_sbm(p).w, 4});
  }
  {
    data::SbmParams p;
    p.block_sizes = data::equal_blocks(n, 8);
    p.p_in = 0.2;
    p.p_out = 0.005;
    p.seed = seed + 1;
    out.push_back({"syn-k8", data::make_sbm(p).w, 8});
  }
  {
    const data::PowerlawGraph g = data::make_powerlaw(
        {.n = n, .avg_degree = 8.0, .seed = seed + 2});
    out.push_back({"powerlaw", g.w, 4});
  }
  for (Dataset& d : out) {
    std::vector<index_t> old_of_new;
    d.w = graph::largest_component(d.w, old_of_new);
  }
  return out;
}

struct RungRun {
  std::string rung;
  core::SpectralResult result;
  double spmv_seconds = 0;      // modeled kernel + staging, spmv.* sites
  double spmv_width_bytes = 0;  // width-equivalent bytes, spmv.* sites
  index_t matvecs = 0;          // eigensolver matvec count (for per-wave
                                // normalization: rungs converge along
                                // slightly different restart paths)
  double pipeline_seconds = 0;  // single-device modeled makespan
  double sharded_seconds = 0;   // 4-device modeled makespan
  bool sharded_labels_match = false;
};

bool is_spmv_site(const std::string& site) {
  return site.rfind("spmv.", 0) == 0;
}

RungRun run_rung(const Dataset& ds, const std::string& rung, index_t devices,
                 double compute_rate, std::uint64_t seed) {
  core::SpectralConfig cfg;
  cfg.num_clusters = ds.k;
  cfg.backend = core::Backend::kDevice;
  cfg.seed = seed;
  FASTSC_CHECK(parse_precision_policy(rung, cfg.precision),
               "bad precision spec: " + rung);

  RungRun r;
  r.rung = rung;
  // Both legs run the modeled kernel cost (seconds are a pure function of
  // the bytes each kernel streams), so the speedup gauge measures the
  // ladder's byte savings, not host wall-clock noise.
  {
    device::DeviceGroupConfig gc;
    gc.num_devices = 1;
    gc.modeled_compute_bytes_per_sec = compute_rate;
    device::DeviceGroup group(gc);
    r.result = core::spectral_cluster_graph_sharded(ds.w, cfg, group);
    r.pipeline_seconds = group.max_modeled_pipeline_seconds();
    r.matvecs = std::max<index_t>(1, r.result.eig_stats.matvec_count);
    for (const obs::SiteReport& s : group.device(0).attribution().report()) {
      if (!is_spmv_site(s.site)) continue;
      r.spmv_seconds += s.stats.total_seconds();
      const double bps = s.stats.bytes_per_scalar();
      r.spmv_width_bytes +=
          s.stats.total_bytes() * (bps > 0 ? bps / 8.0 : 1.0);
    }
  }
  {
    device::DeviceGroupConfig gc;
    gc.num_devices = static_cast<usize>(devices);
    gc.modeled_compute_bytes_per_sec = compute_rate;
    device::DeviceGroup group(gc);
    const core::SpectralResult sharded =
        core::spectral_cluster_graph_sharded(ds.w, cfg, group);
    r.sharded_seconds = group.max_modeled_pipeline_seconds();
    r.sharded_labels_match =
        sharded.labels.size() == r.result.labels.size() &&
        std::memcmp(sharded.labels.data(), r.result.labels.data(),
                    r.result.labels.size() * sizeof(index_t)) == 0;
  }
  return r;
}

double max_eig_err(const core::SpectralResult& a,
                   const core::SpectralResult& b) {
  double err = 0;
  const usize m = std::min(a.eigenvalues.size(), b.eigenvalues.size());
  for (usize i = 0; i < m; ++i) {
    err = std::max(err, std::abs(static_cast<double>(a.eigenvalues[i]) -
                                 static_cast<double>(b.eigenvalues[i])));
  }
  return err;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_precision: fp64 vs fp32 vs bf16 storage on the "
      "eigensolver hot path — modeled SpMV cost, eigenpair agreement, and "
      "label stability across precision rungs and device counts");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/5);
  // Default n keeps the waves bandwidth-dominated: below ~4k nodes the
  // modeled per-launch latency (~5us) eats the byte savings and the ladder
  // speedup under-reads relative to the paper-scale datasets.
  const auto base_n = cli.get_int("n", 6000, "base node count per dataset "
                                            "(scaled by --scale)");
  const auto devices =
      cli.get_int("devices", 4, "device count for the sharded runs");
  const auto compute_rate = cli.get_double(
      "compute-rate", 150e9,
      "modeled device compute bandwidth in bytes/s (deterministic kernel "
      "cost model)");
  const auto precision = cli.get_string(
      "precision", "",
      "run a single rung, e.g. fp32 or 'fp32,kmeans=fp64' "
      "(default: ablate fp64, fp32, bf16)");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  const auto n =
      static_cast<index_t>(static_cast<double>(base_n) * flags.scale);
  std::vector<std::string> rungs;
  if (precision.empty()) {
    rungs = {"fp64", "fp32", "bf16"};
  } else {
    rungs = {precision};
    if (precision != "fp64") rungs.insert(rungs.begin(), "fp64");
  }

  // Suppress tracing during the ablation loops: every run builds a fresh
  // context whose virtual clocks restart at zero, so replays on the same
  // trace tids would overlap.  Only the final instrumented run is traced.
  const bool tracing = obs::trace_enabled();
  if (tracing) obs::trace().set_enabled(false);

  struct Accum {
    // Per-matvec (wave) seconds are summed across datasets so each dataset
    // contributes its own wave cost: pooling raw seconds and matvec counts
    // would let a sparse dataset's many cheap waves swamp the mean.  The
    // aggregate speedup is then "one wave on every dataset" fp64 vs rung.
    double fp64_per_mv_seconds = 0;
    double per_mv_seconds = 0;
    double spmv_seconds = 0;
    double spmv_width_bytes = 0;
    double max_err = 0;
    double min_ari = 1.0;
    bool all_sharded_match = true;
  };
  std::map<std::string, Accum> accum;

  std::vector<TextTable> tables;
  for (const Dataset& ds : make_datasets(n, flags.seed)) {
    std::fprintf(stderr, "[bench] %s: n=%lld nnz=%lld k=%lld\n",
                 ds.name.c_str(), static_cast<long long>(ds.w.rows),
                 static_cast<long long>(ds.w.nnz()),
                 static_cast<long long>(ds.k));
    std::vector<RungRun> runs;
    for (const std::string& rung : rungs) {
      std::fprintf(stderr, "[bench]   rung %s...\n", rung.c_str());
      runs.push_back(run_rung(ds, rung, devices, compute_rate, flags.seed));
    }
    const RungRun& base = runs.front();  // fp64 (always first)

    TextTable table("Precision ladder on " + ds.name +
                    " (n=" + std::to_string(ds.w.rows) +
                    ", nnz=" + std::to_string(ds.w.nnz()) +
                    ", k=" + std::to_string(ds.k) + ")");
    table.header({"Rung", "spmv/s", "mv", "speedup/mv", "spmv bytes",
                  "max|d lambda|", "ARI", "residual", "1dev/s",
                  std::to_string(devices) + "dev/s", "labels=="});
    for (const RungRun& r : runs) {
      const double err = max_eig_err(r.result, base.result);
      const double ari = metrics::adjusted_rand_index(r.result.labels,
                                                      base.result.labels);
      // Speedup is per matvec: the rungs converge along slightly different
      // restart paths, and the stage gauge should measure wave throughput,
      // not convergence-path luck.
      const double per_mv = r.spmv_seconds / static_cast<double>(r.matvecs);
      const double base_per_mv =
          base.spmv_seconds / static_cast<double>(base.matvecs);
      table.row({r.rung, TextTable::fmt_seconds(r.spmv_seconds),
                 TextTable::fmt(r.matvecs),
                 per_mv > 0 ? TextTable::fmt(base_per_mv / per_mv, 2) + "x"
                            : "-",
                 TextTable::fmt(r.spmv_width_bytes, 0),
                 TextTable::fmt(err, 10), TextTable::fmt(ari, 6),
                 TextTable::fmt(static_cast<double>(r.result.refine_residual),
                                10),
                 TextTable::fmt_seconds(r.pipeline_seconds),
                 TextTable::fmt_seconds(r.sharded_seconds),
                 r.sharded_labels_match ? "yes" : "NO"});
      FASTSC_CHECK(r.sharded_labels_match,
                   "sharded labels diverged from single-device at rung " +
                       r.rung + " on " + ds.name);
      Accum& a = accum[r.rung];
      a.fp64_per_mv_seconds += base_per_mv;
      a.per_mv_seconds += per_mv;
      a.spmv_seconds += r.spmv_seconds;
      a.spmv_width_bytes += r.spmv_width_bytes;
      a.max_err = std::max(a.max_err, err);
      a.min_ari = std::min(a.min_ari, ari);
      a.all_sharded_match = a.all_sharded_match && r.sharded_labels_match;
    }
    table.print();
    std::printf("\n");
    tables.push_back(std::move(table));
  }

  for (const auto& [rung, a] : accum) {
    const std::string prefix = "precision." + rung + ".";
    obs::metrics().set_gauge(prefix + "spmv_stage_seconds", a.spmv_seconds);
    obs::metrics().set_gauge(prefix + "spmv_stage_bytes", a.spmv_width_bytes);
    obs::metrics().set_gauge(
        prefix + "spmv_speedup",
        a.per_mv_seconds > 0 ? a.fp64_per_mv_seconds / a.per_mv_seconds : 0.0);
    obs::metrics().set_gauge(prefix + "max_eig_err", a.max_err);
    obs::metrics().set_gauge(prefix + "min_ari", a.min_ari);
    obs::metrics().set_gauge(prefix + "sharded_labels_match",
                             a.all_sharded_match ? 1.0 : 0.0);
  }

  // One final instrumented single-device run (the narrowest requested rung
  // on the first dataset) so the artifacts carry device books and, when
  // tracing, a complete virtual timeline.
  {
    if (tracing) obs::trace().set_enabled(true);
    device::DeviceContext ctx(static_cast<usize>(flags.workers));
    const Dataset ds = make_datasets(n, flags.seed).front();
    core::SpectralConfig cfg;
    cfg.num_clusters = ds.k;
    cfg.backend = core::Backend::kDevice;
    cfg.seed = flags.seed;
    cfg.trace = obs::trace_enabled();
    FASTSC_CHECK(parse_precision_policy(rungs.back(), cfg.precision),
                 "bad precision spec: " + rungs.back());
    (void)core::spectral_cluster_graph(ds.w, cfg, &ctx);
    bench::write_observability_artifacts(flags, ctx);
    bench::maybe_write_run_report(flags, "ablation_precision", {},
                                  std::move(tables), &ctx);
  }
  return 0;
}
