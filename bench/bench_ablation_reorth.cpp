// Ablation: full vs local reorthogonalization in the Lanczos expansion.
//
// Full two-pass Gram-Schmidt against the whole basis (ARPACK-grade, what
// the pipeline uses) costs O(n*j) per step; local reorthogonalization is
// O(n) per step but risks losing orthogonality on the clustered spectra of
// community graphs.  This bench reports time, orthogonalization share, and
// answer quality for both modes.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "data/sbm.h"
#include "graph/laplacian.h"
#include "lanczos/rci.h"
#include "sparse/spmv.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_reorth: full vs local reorthogonalization cost and "
      "accuracy");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/16);
  const auto n = cli.get_int("n", 4000, "node count");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, flags.k);
  p.p_in = 0.3;
  p.p_out = 0.01;
  p.seed = flags.seed;
  const data::SbmGraph g = data::make_sbm(p);
  std::vector<real> isd;
  const sparse::Csr s = graph::sym_normalized_host(g.w, isd);
  auto matvec = [&](const real* x, real* y) { sparse::csr_mv(s, x, y); };

  TextTable table("Reorthogonalization ablation (n=" + std::to_string(n) +
                  ", k=" + std::to_string(flags.k) + ")");
  table.header({"Mode", "Kernel", "time/s", "matvecs", "ortho share",
                "max true residual", "converged"});

  struct Case {
    lanczos::ReorthMode mode;
    lanczos::OrthoKernel kernel;
  };
  for (const auto& [mode, kernel] :
       {Case{lanczos::ReorthMode::kFull, lanczos::OrthoKernel::kBlockedCgs2},
        Case{lanczos::ReorthMode::kFull, lanczos::OrthoKernel::kMgs},
        Case{lanczos::ReorthMode::kLocal, lanczos::OrthoKernel::kBlockedCgs2},
        Case{lanczos::ReorthMode::kLocal, lanczos::OrthoKernel::kMgs}}) {
    lanczos::LanczosConfig cfg;
    cfg.n = n;
    cfg.nev = flags.k;
    cfg.tol = 1e-8;
    cfg.seed = flags.seed;
    cfg.reorth = mode;
    cfg.ortho_kernel = kernel;
    WallTimer t;
    const auto r = lanczos::solve_symmetric(cfg, matvec);
    const double total = t.seconds();

    // True residuals (recomputed, not the solver's own estimates — local
    // reorth can silently produce ghost pairs whose estimates lie).
    real worst = 0;
    std::vector<real> av(static_cast<usize>(n));
    for (index_t kk = 0; kk < flags.k; ++kk) {
      const real* v = r.eigenvectors.data() + kk * n;
      matvec(v, av.data());
      real res = 0;
      for (index_t i = 0; i < n; ++i) {
        const real e = av[static_cast<usize>(i)] -
                       r.eigenvalues[static_cast<usize>(kk)] * v[i];
        res += e * e;
      }
      worst = std::max(worst, std::sqrt(res));
    }

    table.row({mode == lanczos::ReorthMode::kFull ? "full (paper-grade)"
                                                  : "local (cheap)",
               kernel == lanczos::OrthoKernel::kBlockedCgs2 ? "blocked CGS2"
                                                            : "MGS loop",
               TextTable::fmt_seconds(total), TextTable::fmt(r.stats.matvec_count),
               TextTable::fmt(100.0 * r.stats.ortho_seconds /
                                  std::max(1e-12, r.stats.rci_seconds),
                              3) +
                   "%",
               TextTable::fmt(worst, 3), r.converged ? "yes" : "no"});
  }
  table.print();
  return 0;
}
