// Ablation: k-means++ vs uniform random seeding (paper §IV.C / §V.C).
//
// The paper credits its k-means speed partly to "a smart seeding strategy":
// k-means++ converges in fewer iterations and reaches a better objective
// than Matlab's random default.  This bench quantifies both claims on the
// spectral embedding of an SBM graph and on raw Gaussian blobs.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"
#include "data/sbm.h"
#include "kmeans/kmeans.h"
#include "kmeans/lloyd.h"

namespace {

using namespace fastsc;

struct SeedingStats {
  double iters = 0;
  double objective = 0;
  double seconds = 0;
};

SeedingStats run_device(device::DeviceContext& ctx, const real* x, index_t n,
                        index_t d, index_t k, kmeans::Seeding seeding,
                        index_t trials) {
  SeedingStats s;
  for (index_t t = 0; t < trials; ++t) {
    kmeans::KmeansConfig cfg;
    cfg.k = k;
    cfg.seeding = seeding;
    cfg.seed = 100 + static_cast<std::uint64_t>(t);
    WallTimer timer;
    const auto r = kmeans::kmeans_device(ctx, x, n, d, cfg);
    s.seconds += timer.seconds();
    s.iters += static_cast<double>(r.iterations);
    s.objective += r.objective;
  }
  s.iters /= static_cast<double>(trials);
  s.objective /= static_cast<double>(trials);
  s.seconds /= static_cast<double>(trials);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_seeding: k-means++ vs random seeding "
      "(iterations-to-converge, objective, wall time)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/40);
  const auto n = cli.get_int("n", 4000, "node count");
  const auto trials = cli.get_int("trials", 5, "trials to average");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  // Spectral embedding workload: cluster the rows of the eigenvector matrix
  // exactly as the pipeline's Step 4 does.
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, flags.k);
  p.p_in = 0.3;
  p.p_out = 0.01;
  p.seed = flags.seed;
  const data::SbmGraph g = data::make_sbm(p);

  core::SpectralConfig cfg;
  cfg.num_clusters = flags.k;
  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  std::fprintf(stderr, "[bench] computing spectral embedding...\n");
  const core::SpectralResult base = core::spectral_cluster_graph(g.w, cfg, &ctx);

  TextTable table("Seeding ablation on the spectral embedding (n=" +
                  std::to_string(n) + ", k=" + std::to_string(flags.k) +
                  ", avg of " + std::to_string(trials) + " trials)");
  table.header({"Seeding", "iterations", "objective", "time/s"});
  const SeedingStats pp =
      run_device(ctx, base.embedding.data(), base.n, base.k, flags.k,
                 kmeans::Seeding::kKmeansPlusPlus, trials);
  const SeedingStats rnd =
      run_device(ctx, base.embedding.data(), base.n, base.k, flags.k,
                 kmeans::Seeding::kRandom, trials);
  table.row({"k-means++ (Algorithm 5)", TextTable::fmt(pp.iters, 3),
             TextTable::fmt(pp.objective, 5), TextTable::fmt_seconds(pp.seconds)});
  table.row({"uniform random (Matlab default)", TextTable::fmt(rnd.iters, 3),
             TextTable::fmt(rnd.objective, 5),
             TextTable::fmt_seconds(rnd.seconds)});
  table.print();
  std::printf("\n");

  TextTable verdict("Summary");
  verdict.header({"Metric", "k-means++ advantage"});
  verdict.row({"iterations", TextTable::fmt_speedup(rnd.iters / pp.iters)});
  verdict.row(
      {"objective ratio (rnd/pp)",
       TextTable::fmt(rnd.objective / pp.objective, 4)});
  verdict.print();
  return 0;
}
