// Ablation: computing the LARGEST eigenvalues of D^-1 W vs the SMALLEST of
// Ln = I - D^-1 W.
//
// The paper (§IV.B) computes the largest of D^-1 W "since computing the
// largest eigenvalues results in better numerical stability and convergent
// behavior".  Both formulations are mathematically equivalent (eigenvalues
// map as 1 - lambda, same eigenvectors); this bench measures the practical
// difference in matvecs/restarts and verifies the eigenpair equivalence.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "data/sbm.h"
#include "graph/laplacian.h"
#include "lanczos/rci.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_ablation_spectrum_side: largest of D^-1 W vs smallest of "
      "I - D^-1 W (paper §IV.B numerical-strategy choice)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/16);
  const auto n = cli.get_int("n", 4000, "node count");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, flags.k);
  p.p_in = 0.3;
  p.p_out = 0.01;
  p.seed = flags.seed;
  const data::SbmGraph g = data::make_sbm(p);
  // Symmetric similarity-transformed operators (same spectra as D^-1 W and
  // Ln = I - D^-1 W respectively; the Lanczos iteration needs symmetry).
  std::vector<real> isd;
  const sparse::Csr rw = graph::sym_normalized_host(g.w, isd);

  auto rw_mv = [&](const real* x, real* y) { sparse::csr_mv(rw, x, y); };
  auto ln_mv = [&](const real* x, real* y) {
    sparse::csr_mv(rw, x, y);
    for (index_t i = 0; i < rw.rows; ++i) y[i] = x[i] - y[i];
  };

  lanczos::LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = flags.k;
  cfg.tol = 1e-8;
  cfg.seed = flags.seed;

  std::fprintf(stderr, "[bench] largest-algebraic of D^-1 W...\n");
  cfg.which = lanczos::EigWhich::kLargestAlgebraic;
  WallTimer t1;
  const auto la = lanczos::solve_symmetric(cfg, rw_mv);
  const double la_s = t1.seconds();

  std::fprintf(stderr, "[bench] smallest-algebraic of I - D^-1 W...\n");
  cfg.which = lanczos::EigWhich::kSmallestAlgebraic;
  WallTimer t2;
  const auto sa = lanczos::solve_symmetric(cfg, ln_mv);
  const double sa_s = t2.seconds();

  std::fprintf(stderr,
               "[bench] smallest-MAGNITUDE of D^-1 W (the unstable strategy "
               "the paper avoids, for contrast)...\n");
  cfg.which = lanczos::EigWhich::kSmallestMagnitude;
  cfg.max_restarts = 60;  // bounded: expected to struggle
  WallTimer t3;
  const auto sm = lanczos::solve_symmetric(cfg, rw_mv);
  const double sm_s = t3.seconds();

  TextTable table("Spectrum-side ablation (n=" + std::to_string(n) +
                  ", k=" + std::to_string(flags.k) + ")");
  table.header({"Formulation", "time/s", "matvecs", "restarts", "converged"});
  table.row({"largest of D^-1 W (paper)", TextTable::fmt_seconds(la_s),
             TextTable::fmt(la.stats.matvec_count),
             TextTable::fmt(la.stats.restart_count),
             la.converged ? "yes" : "no"});
  table.row({"smallest of I - D^-1 W", TextTable::fmt_seconds(sa_s),
             TextTable::fmt(sa.stats.matvec_count),
             TextTable::fmt(sa.stats.restart_count),
             sa.converged ? "yes" : "no"});
  table.row({"smallest-magnitude of D^-1 W", TextTable::fmt_seconds(sm_s),
             TextTable::fmt(sm.stats.matvec_count),
             TextTable::fmt(sm.stats.restart_count),
             sm.converged ? "yes" : "no"});
  table.print();
  std::printf("\n");

  // Equivalence check: lambda_i(D^-1 W) == 1 - lambda_i(Ln).
  TextTable eq("Eigenvalue equivalence: lambda(D^-1 W) vs 1 - lambda(Ln)");
  eq.header({"i", "lambda(D^-1 W)", "1 - lambda(Ln)", "abs diff"});
  for (index_t i = 0; i < std::min<index_t>(flags.k, 8); ++i) {
    const real a = la.eigenvalues[static_cast<usize>(i)];
    const real b = 1.0 - sa.eigenvalues[static_cast<usize>(i)];
    eq.row({TextTable::fmt(i), TextTable::fmt(a, 10), TextTable::fmt(b, 10),
            TextTable::fmt(std::fabs(a - b), 3)});
  }
  eq.print();
  return 0;
}
