// Shared scaffolding for the paper-table reproduction benches.
//
// Every table bench follows the same shape: build one dataset, run the
// three backends (CUDA-sim / Matlab-like / Python-like) through the public
// pipeline API, and print the paper-shaped tables plus the figure series.
#pragma once

#include <cstdio>
#include <string>

#include "common/cli.h"
#include "core/report.h"
#include "graph/build.h"
#include "core/spectral.h"
#include "metrics/external.h"
#include "obs/metrics.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "sparse/convert.h"

namespace fastsc::bench {

struct CommonFlags {
  index_t k = 0;
  std::uint64_t seed = 42;
  double scale = 1.0;
  bool baselines = true;
  index_t workers = 0;  // 0 = hardware concurrency
  std::string trace_out;    // Chrome trace-event JSON path ("" = off)
  std::string metrics_out;  // metrics snapshot JSON path ("" = off)
  std::string report_out;   // RunReport JSON path ("" = off)
  std::string faults;       // fault plan spec ("" = none); see src/fault/
  double budget_ms = 0;     // total wall budget in ms (0 = none)
  std::string stage_budget;  // RunBudget spec, e.g. "eigensolver=500;anytime=1"
  std::string watchdog;      // WatchdogConfig spec, e.g. "heartbeat_ms=100"

  static CommonFlags parse(CliParser& cli, index_t default_k) {
    CommonFlags f;
    f.k = cli.get_int("k", default_k, "number of clusters");
    f.seed = static_cast<std::uint64_t>(
        cli.get_int("seed", 42, "random seed"));
    f.scale = cli.get_double("scale", 1.0,
                             "problem-size multiplier (1.0 = bench default; "
                             "paper sizes need a large machine)");
    f.baselines = cli.get_bool("baselines", true,
                               "run the Matlab/Python-like baselines too");
    f.workers = cli.get_int("workers", 0,
                            "simulated-device worker threads (0 = all cores)");
    f.trace_out = cli.get_string(
        "trace-out", "",
        "write a Chrome trace-event / Perfetto JSON timeline here");
    f.metrics_out = cli.get_string(
        "metrics-out", "", "write a metrics-registry JSON snapshot here");
    f.report_out = cli.get_string(
        "report-out", "", "write the machine-readable run report JSON here");
    f.faults = cli.get_string(
        "faults", "",
        "deterministic fault plan, e.g. site=copy.h2d,nth=2,count=2 "
        "(clauses ';'-separated; see src/fault/fault.h)");
    f.budget_ms = cli.get_double(
        "budget-ms", 0,
        "total wall-clock budget per run in ms (0 = none; expiry yields an "
        "anytime partial result)");
    f.stage_budget = cli.get_string(
        "stage-budget", "",
        "run-budget spec, e.g. eigensolver=500;total.virtual=0.2;anytime=1 "
        "(see src/common/cancel.h; combined with --budget-ms)");
    f.watchdog = cli.get_string(
        "watchdog", "",
        "hang-watchdog spec, e.g. heartbeat_ms=100,stall_restarts=5 "
        "(see src/common/cancel.h)");
    // Tracing must be on before the DeviceContext records its first event so
    // the trace's virtual timeline is complete (check_trace.py recomputes
    // the overlap counter from it and expects every interval).
    if (!f.trace_out.empty()) obs::trace().set_enabled(true);
    return f;
  }
};

/// Drop zero-degree vertices (paper §IV.B: "isolated nodes can be removed
/// from the graph") and keep the truth labels aligned.
inline void prune_isolated(sparse::Coo& w, std::vector<index_t>* truth) {
  std::vector<index_t> old_of_new;
  sparse::Coo pruned = graph::remove_isolated(w, old_of_new);
  if (pruned.rows == w.rows) return;
  std::fprintf(stderr, "[bench] removed %lld isolated vertices\n",
               static_cast<long long>(w.rows - pruned.rows));
  if (truth != nullptr && !truth->empty()) {
    std::vector<index_t> kept;
    kept.reserve(old_of_new.size());
    for (index_t old : old_of_new) {
      kept.push_back((*truth)[static_cast<usize>(old)]);
    }
    *truth = std::move(kept);
  }
  w = std::move(pruned);
}

/// Fold the budget/watchdog flags into a SpectralConfig.  --budget-ms is
/// shorthand for a total wall clause on top of --stage-budget.
inline void apply_budget_flags(core::SpectralConfig& cfg,
                               const CommonFlags& flags) {
  if (!flags.stage_budget.empty()) {
    cfg.budget = cancel::RunBudget::parse(flags.stage_budget);
  }
  if (flags.budget_ms > 0) cfg.budget.total.wall_ms = flags.budget_ms;
  if (!flags.watchdog.empty()) {
    cfg.watchdog = cancel::WatchdogConfig::parse(flags.watchdog);
  }
}

inline std::vector<core::Backend> selected_backends(bool baselines) {
  std::vector<core::Backend> backends{core::Backend::kDevice};
  if (baselines) {
    backends.push_back(core::Backend::kMatlabLike);
    backends.push_back(core::Backend::kPythonLike);
  }
  return backends;
}

/// Run the graph-input pipeline for each backend and assemble the report.
inline core::BackendRuns run_graph_backends(const std::string& dataset,
                                            const sparse::Coo& w, index_t k,
                                            const CommonFlags& flags,
                                            device::DeviceContext& ctx) {
  core::BackendRuns runs;
  runs.dataset = dataset;
  runs.nodes = w.rows;
  runs.edges = w.nnz();
  runs.clusters = k;
  for (core::Backend b : selected_backends(flags.baselines)) {
    core::SpectralConfig cfg;
    cfg.num_clusters = k;
    cfg.backend = b;
    cfg.seed = flags.seed;
    if (!flags.faults.empty()) {
      cfg.faults = fault::FaultPlan::parse(flags.faults);
    }
    apply_budget_flags(cfg, flags);
    std::fprintf(stderr, "[bench] %s: running %s backend...\n",
                 dataset.c_str(), core::backend_name(b).c_str());
    runs.runs.emplace_back(b, core::spectral_cluster_graph(w, cfg, &ctx));
  }
  return runs;
}

/// Run the points-input pipeline (DTI mode) for each backend.
inline core::BackendRuns run_points_backends(
    const std::string& dataset, const real* x, index_t n, index_t d,
    const graph::EdgeList& edges, index_t k, const CommonFlags& flags,
    device::DeviceContext& ctx) {
  core::BackendRuns runs;
  runs.dataset = dataset;
  runs.nodes = n;
  runs.edges = 2 * edges.size();
  runs.clusters = k;
  for (core::Backend b : selected_backends(flags.baselines)) {
    core::SpectralConfig cfg;
    cfg.num_clusters = k;
    cfg.backend = b;
    cfg.seed = flags.seed;
    if (!flags.faults.empty()) {
      cfg.faults = fault::FaultPlan::parse(flags.faults);
    }
    apply_budget_flags(cfg, flags);
    cfg.similarity.measure = graph::SimilarityMeasure::kCrossCorrelation;
    std::fprintf(stderr, "[bench] %s: running %s backend...\n",
                 dataset.c_str(), core::backend_name(b).c_str());
    runs.runs.emplace_back(
        b, core::spectral_cluster_points(x, n, d, edges, cfg, &ctx));
  }
  return runs;
}

/// Speedup summary of the device backend over each baseline, per stage.
inline TextTable speedup_table(const core::BackendRuns& runs) {
  TextTable table("Device speedup per stage on " + runs.dataset);
  table.header({"Stage", "vs Matlab", "vs Python"});
  const core::SpectralResult* device = nullptr;
  const core::SpectralResult* matlab = nullptr;
  const core::SpectralResult* python = nullptr;
  for (const auto& [b, r] : runs.runs) {
    if (b == core::Backend::kDevice) device = &r;
    if (b == core::Backend::kMatlabLike) matlab = &r;
    if (b == core::Backend::kPythonLike) python = &r;
  }
  if (device == nullptr) return table;
  for (const std::string& stage : device->clock.stages()) {
    const double dev_t = device->clock.seconds(stage);
    auto cell = [&](const core::SpectralResult* other) -> std::string {
      if (other == nullptr || dev_t <= 0) return "-";
      return TextTable::fmt_speedup(other->clock.seconds(stage) / dev_t);
    };
    table.row({stage, cell(matlab), cell(python)});
  }
  return table;
}

/// The standard table block every single-dataset bench emits, in print order.
inline std::vector<TextTable> standard_report_tables(
    const core::BackendRuns& runs, bool include_similarity,
    const std::vector<index_t>* truth, const sparse::Csr* w) {
  std::vector<TextTable> tables;
  tables.push_back(core::stage_table(runs, include_similarity));
  tables.push_back(core::figure_series(runs));
  tables.push_back(speedup_table(runs));
  tables.push_back(core::communication_table({runs}));
  if (truth != nullptr && w != nullptr) {
    tables.push_back(core::quality_table(runs, *truth, *w));
  }
  return tables;
}

inline void print_tables(const std::vector<TextTable>& tables) {
  for (const TextTable& t : tables) {
    t.print();
    std::printf("\n");
  }
}

/// Print the standard block every table bench emits.
inline void print_standard_report(const core::BackendRuns& runs,
                                  bool include_similarity,
                                  const std::vector<index_t>* truth,
                                  const sparse::Csr* w) {
  print_tables(standard_report_tables(runs, include_similarity, truth, w));
}

/// Write whatever observability artifacts the flags ask for.  Call once at
/// the end of a bench, after all runs finished.  The metrics registry is
/// refreshed from `ctx` first so both the metrics snapshot and the trace
/// cross-check (tools/check_trace.py --metrics) see final counter values.
inline void write_observability_artifacts(const CommonFlags& flags,
                                          device::DeviceContext& ctx) {
  // Per-site cost attribution is always printed: it is the kernel-level
  // breakdown the paper's tables motivate, and it costs nothing to render.
  core::attribution_table(core::collect_attribution(ctx)).print();
  std::printf("\n");
  if (flags.trace_out.empty() && flags.metrics_out.empty()) return;
  obs::publish_device_context(ctx, obs::metrics());
  if (!flags.trace_out.empty()) {
    if (obs::trace().write_json_file(flags.trace_out)) {
      std::fprintf(stderr, "[bench] wrote trace to %s (%zu events)\n",
                   flags.trace_out.c_str(), obs::trace().event_count());
    }
  }
  if (!flags.metrics_out.empty()) {
    if (obs::metrics().write_json_file(flags.metrics_out)) {
      std::fprintf(stderr, "[bench] wrote metrics to %s\n",
                   flags.metrics_out.c_str());
    }
  }
}

/// Write the RunReport JSON if --report-out was given.  When a context is
/// supplied, the report carries the attribution section (per-site costs +
/// device-counter totals) that tools/check_trace.py --report validates.
inline void maybe_write_run_report(const CommonFlags& flags,
                                   const std::string& bench,
                                   std::vector<core::BackendRuns> datasets,
                                   std::vector<TextTable> tables,
                                   const device::DeviceContext* ctx) {
  if (flags.report_out.empty()) return;
  core::RunReport report;
  report.bench = bench;
  report.datasets = std::move(datasets);
  report.tables = std::move(tables);
  if (ctx != nullptr) report.attribution = core::collect_attribution(*ctx);
  if (core::write_run_report_json_file(report, flags.report_out)) {
    std::fprintf(stderr, "[bench] wrote run report to %s\n",
                 flags.report_out.c_str());
  }
}

/// Group variant: the attribution section merges every device's registry
/// (core::collect_attribution(DeviceGroup)), so the report's exact-sum
/// invariants span the whole group.
inline void maybe_write_run_report(const CommonFlags& flags,
                                   const std::string& bench,
                                   std::vector<core::BackendRuns> datasets,
                                   std::vector<TextTable> tables,
                                   const device::DeviceGroup& group) {
  if (flags.report_out.empty()) return;
  core::RunReport report;
  report.bench = bench;
  report.datasets = std::move(datasets);
  report.tables = std::move(tables);
  report.attribution = core::collect_attribution(group);
  if (core::write_run_report_json_file(report, flags.report_out)) {
    std::fprintf(stderr, "[bench] wrote run report to %s\n",
                 flags.report_out.c_str());
  }
}

}  // namespace fastsc::bench
