// Micro benchmark: dense BLAS tiers — blocked vs naive gemm (the Matlab-like
// vs Python-like dense difference) and host vs device kernels.
#include <benchmark/benchmark.h>

#include <vector>

#include "blas/dblas.h"
#include "blas/hblas.h"
#include "common/rng.h"

namespace {

using namespace fastsc;

std::vector<real> random_vec(usize n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> v(n);
  for (real& x : v) x = rng.uniform(-1, 1);
  return v;
}

void BM_GemmBlocked(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = random_vec(static_cast<usize>(n * n), 1);
  const auto b = random_vec(static_cast<usize>(n * n), 2);
  std::vector<real> c(static_cast<usize>(n * n));
  for (auto _ : state) {
    hblas::gemm(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void BM_GemmNaive(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto a = random_vec(static_cast<usize>(n * n), 1);
  const auto b = random_vec(static_cast<usize>(n * n), 2);
  std::vector<real> c(static_cast<usize>(n * n));
  for (auto _ : state) {
    hblas::gemm_naive(n, n, n, 1.0, a.data(), n, b.data(), n, 0.0, c.data(),
                      n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void BM_GemmDevice(benchmark::State& state) {
  const index_t n = state.range(0);
  device::DeviceContext ctx;
  const auto a = random_vec(static_cast<usize>(n * n), 1);
  const auto b = random_vec(static_cast<usize>(n * n), 2);
  device::DeviceBuffer<real> da(ctx, std::span<const real>(a));
  device::DeviceBuffer<real> db(ctx, std::span<const real>(b));
  device::DeviceBuffer<real> dc(ctx, static_cast<usize>(n * n));
  for (auto _ : state) {
    dblas::gemm(ctx, n, n, n, 1.0, da.data(), n, db.data(), n, 0.0, dc.data(),
                n);
    benchmark::DoNotOptimize(dc.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}

void BM_GemmNtBlocked(benchmark::State& state) {
  // The k-means shape: (n x d) @ (k x d)^T.
  const index_t n = 4096, k = state.range(0), d = 64;
  const auto v = random_vec(static_cast<usize>(n * d), 3);
  const auto c = random_vec(static_cast<usize>(k * d), 4);
  std::vector<real> s(static_cast<usize>(n * k));
  for (auto _ : state) {
    hblas::gemm_nt(n, k, d, -2.0, v.data(), d, c.data(), d, 0.0, s.data(), k);
    benchmark::DoNotOptimize(s.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * k * d);
}

void BM_DotHost(benchmark::State& state) {
  const index_t n = state.range(0);
  const auto x = random_vec(static_cast<usize>(n), 5);
  const auto y = random_vec(static_cast<usize>(n), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hblas::dot(n, x.data(), y.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_DotDevice(benchmark::State& state) {
  const index_t n = state.range(0);
  device::DeviceContext ctx;
  const auto x = random_vec(static_cast<usize>(n), 5);
  const auto y = random_vec(static_cast<usize>(n), 6);
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(x));
  device::DeviceBuffer<real> dy(ctx, std::span<const real>(y));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dblas::dot(ctx, n, dx.data(), dy.data()));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(192)->Arg(384);
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(192)->Arg(384);
BENCHMARK(BM_GemmDevice)->Arg(192)->Arg(384);
BENCHMARK(BM_GemmNtBlocked)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_DotHost)->Arg(1 << 16);
BENCHMARK(BM_DotDevice)->Arg(1 << 16);
