// Micro benchmark: k-means kernels — seeding, assignment and update steps —
// plus whole-run comparisons device vs Lloyd baselines.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "kmeans/kmeans.h"
#include "kmeans/lloyd.h"
#include "kmeans/seeding.h"

namespace {

using namespace fastsc;

std::vector<real> blob_data(index_t n, index_t d, index_t k) {
  Rng rng(11);
  std::vector<real> x(static_cast<usize>(n * d));
  for (index_t i = 0; i < n; ++i) {
    const real base = static_cast<real>((i % k) * 8);
    for (index_t l = 0; l < d; ++l) {
      x[static_cast<usize>(i * d + l)] = base + rng.normal();
    }
  }
  return x;
}

void BM_KmeansDeviceFull(benchmark::State& state) {
  const index_t n = 8000, d = 32;
  const index_t k = state.range(0);
  const auto x = blob_data(n, d, k);
  device::DeviceContext ctx;
  for (auto _ : state) {
    kmeans::KmeansConfig cfg;
    cfg.k = k;
    cfg.max_iters = 20;
    const auto r = kmeans::kmeans_device(ctx, x.data(), n, d, cfg);
    benchmark::DoNotOptimize(r.labels.data());
  }
}

void BM_KmeansLloydFull(benchmark::State& state) {
  const index_t n = 8000, d = 32;
  const index_t k = state.range(0);
  const auto x = blob_data(n, d, k);
  for (auto _ : state) {
    kmeans::KmeansConfig cfg;
    cfg.k = k;
    cfg.max_iters = 20;
    const auto r = kmeans::kmeans_lloyd_host(x.data(), n, d, cfg);
    benchmark::DoNotOptimize(r.labels.data());
  }
}

void BM_KmeansppHostSeeding(benchmark::State& state) {
  const index_t n = 8000, d = 32;
  const index_t k = state.range(0);
  const auto x = blob_data(n, d, k);
  for (auto _ : state) {
    Rng rng(7);
    const auto seeds = kmeans::kmeanspp_seeds_host(x.data(), n, d, k, rng);
    benchmark::DoNotOptimize(seeds.data());
  }
}

void BM_KmeansppDeviceSeeding(benchmark::State& state) {
  const index_t n = 8000, d = 32;
  const index_t k = state.range(0);
  const auto x = blob_data(n, d, k);
  device::DeviceContext ctx;
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(x));
  for (auto _ : state) {
    Rng rng(7);
    const auto seeds =
        kmeans::kmeanspp_seeds_device(ctx, dx.data(), n, d, k, rng);
    benchmark::DoNotOptimize(seeds.data());
  }
}

}  // namespace

BENCHMARK(BM_KmeansDeviceFull)->Arg(16)->Arg(64);
BENCHMARK(BM_KmeansLloydFull)->Arg(16)->Arg(64);
BENCHMARK(BM_KmeansppHostSeeding)->Arg(16)->Arg(64);
BENCHMARK(BM_KmeansppDeviceSeeding)->Arg(16)->Arg(64);
