// Table I reproduction: the platform inventory.  The paper lists the Xeon
// E5-2690 + Tesla K20c testbed; we print the host CPU configuration and the
// simulated-device parameters that stand in for the GPU (DESIGN.md §2).
#include <cstdio>
#include <thread>

#include "common/cli.h"
#include "common/table.h"
#include "device/device.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli("bench_platform: print the Table I style platform inventory");
  if (!cli.parse(argc, argv)) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  device::DeviceContext ctx;

  TextTable paper("Paper Table I: CPU and GPU specifics (original testbed)");
  paper.header({"Component", "Value"});
  paper.row({"CPU Model", "Intel Xeon E5-2690"});
  paper.row({"CPU Cores", "8"});
  paper.row({"DRAM Size", "128GB"});
  paper.row({"GPU Model", "Tesla K20c"});
  paper.row({"Device Memory Size", "5GB GDDR5"});
  paper.row({"SMs and SPs", "13 and 192"});
  paper.row({"Compute Capability", "3.5"});
  paper.row({"CUDA SDK", "7.5"});
  paper.row({"PCIe Bus", "PCIe x16 Gen2 (8 GB/s peak)"});
  paper.print();
  std::printf("\n");

  TextTable ours("This reproduction: host + simulated device");
  ours.header({"Component", "Value"});
  ours.row({"Host hardware threads",
            std::to_string(std::thread::hardware_concurrency())});
  ours.row({"Simulated device", ctx.description()});
  ours.row({"Device workers", std::to_string(ctx.pool().worker_count())});
  ours.row({"Modeled PCIe bandwidth",
            TextTable::fmt(ctx.transfer_model().bandwidth_bytes_per_sec / 1e9,
                           3) +
                " GB/s x " + TextTable::fmt(ctx.transfer_model().efficiency, 3)});
  ours.row({"Modeled transfer latency",
            TextTable::fmt(ctx.transfer_model().latency_seconds * 1e6, 3) +
                " us"});
  ours.print();
  return 0;
}
