// Multi-device scaling bench: the Table VII communication-vs-computation
// story extended to N simulated devices.
//
// For each dataset (a DBLP-scale social graph and a power-law graph) the
// full sharded pipeline runs on DeviceGroups of 1, 2, 4, and 8 devices with
// the deterministic kernel cost model on, so the reported times are a pure
// function of the partition and the transfer model — no host wall-clock
// noise.  Per device count the bench prints the modeled compute time, the
// PCIe staging time, the peer-to-peer exchange time, the overlapped
// seconds, and the pipeline makespan (slowest device), plus the modeled
// speedup over the single-device run.  The speedup points are published as
// gauges (scaling.speedup_2dev/4dev/8dev) so the scaling_smoke CTest and
// the perf_regression gate can judge the curve from the metrics artifact
// alone.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/sharded.h"
#include "data/powerlaw.h"
#include "data/social.h"
#include "device/device_group.h"
#include "graph/components.h"

namespace {

using namespace fastsc;

struct ScalingPoint {
  index_t devices = 0;
  double kernel_seconds = 0;
  double pcie_seconds = 0;  // modeled H2D+D2H link time
  double d2d_seconds = 0;   // modeled peer-exchange link time
  double overlap_seconds = 0;
  double pipeline_seconds = 0;  // slowest device's modeled makespan
  usize d2d_bytes = 0;
};

ScalingPoint run_point(const sparse::Coo& w, index_t k, index_t devices,
                       double compute_rate, std::uint64_t seed) {
  device::DeviceGroupConfig gc;
  gc.num_devices = static_cast<usize>(devices);
  gc.modeled_compute_bytes_per_sec = compute_rate;
  device::DeviceGroup group(gc);

  core::SpectralConfig cfg;
  cfg.num_clusters = k;
  cfg.backend = core::Backend::kDevice;
  cfg.seed = seed;
  const core::SpectralResult r =
      core::spectral_cluster_graph_sharded(w, cfg, group);

  ScalingPoint p;
  p.devices = devices;
  const device::DeviceCounters c = group.rollup_counters();
  p.kernel_seconds = c.kernel_seconds;
  p.pcie_seconds = c.modeled_transfer_seconds - c.modeled_d2d_seconds;
  p.d2d_seconds = c.modeled_d2d_seconds;
  p.overlap_seconds = c.overlapped_seconds;
  p.pipeline_seconds = group.max_modeled_pipeline_seconds();
  p.d2d_bytes = c.bytes_d2d;
  for (usize i = 0; i < group.size(); ++i) {
    const device::DeviceCounters ci = group.device(i).counters_snapshot();
    std::fprintf(stderr,
                 "[bench]   dev%zu busy=%.4fs kernel=%.4fs link=%.4fs "
                 "(d2d=%.4fs) overlap=%.4fs\n",
                 i, ci.modeled_pipeline_seconds(), ci.kernel_seconds,
                 ci.modeled_transfer_seconds, ci.modeled_d2d_seconds,
                 ci.overlapped_seconds);
  }
  // The run must stay correct while it scales; a wrong label count would
  // make every speedup number meaningless.
  FASTSC_CHECK(r.labels.size() == static_cast<usize>(w.rows),
               "sharded run dropped vertices");
  return p;
}

void publish_gauges(const std::string& prefix,
                    const std::vector<ScalingPoint>& points) {
  const double t1 = points.front().pipeline_seconds;
  for (const ScalingPoint& p : points) {
    if (p.devices == 1) continue;
    const std::string key =
        prefix + "speedup_" + std::to_string(p.devices) + "dev";
    obs::metrics().set_gauge(
        key, p.pipeline_seconds > 0 ? t1 / p.pipeline_seconds : 0.0);
    obs::metrics().set_gauge(
        prefix + "d2d_bytes_" + std::to_string(p.devices) + "dev",
        static_cast<double>(p.d2d_bytes));
  }
}

TextTable scaling_table(const std::string& dataset, const sparse::Coo& w,
                        const std::vector<ScalingPoint>& points) {
  TextTable table("Modeled multi-device scaling on " + dataset +
                  " (n=" + std::to_string(w.rows) +
                  ", nnz=" + std::to_string(w.nnz()) + ")");
  table.header({"Devices", "compute/s", "PCIe/s", "D2D/s", "overlap/s",
                "pipeline/s", "speedup"});
  const double t1 = points.front().pipeline_seconds;
  for (const ScalingPoint& p : points) {
    table.row({TextTable::fmt(p.devices),
               TextTable::fmt_seconds(p.kernel_seconds),
               TextTable::fmt_seconds(p.pcie_seconds),
               TextTable::fmt_seconds(p.d2d_seconds),
               TextTable::fmt_seconds(p.overlap_seconds),
               TextTable::fmt_seconds(p.pipeline_seconds),
               p.pipeline_seconds > 0
                   ? TextTable::fmt(t1 / p.pipeline_seconds, 2) + "x"
                   : "-"});
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_scaling_devices: modeled comm/comp breakdown and speedup of "
      "the sharded pipeline over 1/2/4/8 simulated devices");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/8);
  const auto base_n =
      cli.get_int("n", 8192, "node count per dataset (scaled by --scale)");
  const auto compute_rate = cli.get_double(
      "compute-rate", 150e9,
      "modeled device compute bandwidth in bytes/s (deterministic kernel "
      "cost model)");
  const auto max_devices =
      cli.get_int("max-devices", 8, "largest device count (power of two)");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  const auto n =
      static_cast<index_t>(static_cast<double>(base_n) * flags.scale);
  std::vector<index_t> device_counts;
  for (index_t d = 1; d <= max_devices; d *= 2) device_counts.push_back(d);

  struct Dataset {
    std::string name;
    std::string gauge_prefix;
    sparse::Coo w;
  };
  std::vector<Dataset> datasets;
  {
    const data::SbmGraph g =
        data::make_social_graph(data::dblp_like_params(n, flags.k, flags.seed));
    std::vector<index_t> old_of_new;
    datasets.push_back(
        {"dblp-like", "scaling.", graph::largest_component(g.w, old_of_new)});
  }
  {
    const data::PowerlawGraph g = data::make_powerlaw(
        {.n = n, .avg_degree = 8.0, .seed = flags.seed});
    std::vector<index_t> old_of_new;
    datasets.push_back({"powerlaw", "scaling.powerlaw.",
                        graph::largest_component(g.w, old_of_new)});
  }

  // Suppress tracing during the timing loops: every run_point builds a
  // fresh group whose virtual clocks restart at zero, so replays on the
  // same trace tids would overlap and break the track discipline the smoke
  // check asserts.  Only the final instrumented run below is traced.
  const bool tracing = obs::trace_enabled();
  if (tracing) obs::trace().set_enabled(false);

  std::vector<TextTable> tables;
  for (const Dataset& ds : datasets) {
    std::vector<ScalingPoint> points;
    for (const index_t d : device_counts) {
      std::fprintf(stderr, "[bench] %s: %lld device(s)...\n",
                   ds.name.c_str(), static_cast<long long>(d));
      points.push_back(
          run_point(ds.w, flags.k, d, compute_rate, flags.seed));
    }
    publish_gauges(ds.gauge_prefix, points);
    tables.push_back(scaling_table(ds.name, ds.w, points));
  }
  bench::print_tables(tables);

  // One final instrumented group run so the artifacts carry a rollup of the
  // per-device books (device.* gauges = group totals) and, when tracing,
  // the per-device track discipline the smoke check asserts.
  {
    if (tracing) obs::trace().set_enabled(true);
    device::DeviceGroupConfig gc;
    gc.num_devices = 4;
    gc.modeled_compute_bytes_per_sec = compute_rate;
    device::DeviceGroup group(gc);
    core::SpectralConfig cfg;
    cfg.num_clusters = flags.k;
    cfg.backend = core::Backend::kDevice;
    cfg.seed = flags.seed;
    cfg.trace = obs::trace_enabled();
    (void)core::spectral_cluster_graph_sharded(datasets[0].w, cfg, group);
    obs::publish_device_counters(group.rollup_counters(), obs::metrics());
    bench::maybe_write_run_report(flags, "scaling_devices", {}, tables, group);
  }

  if (!flags.trace_out.empty() &&
      obs::trace().write_json_file(flags.trace_out)) {
    std::fprintf(stderr, "[bench] wrote trace to %s (%zu events)\n",
                 flags.trace_out.c_str(), obs::trace().event_count());
  }
  if (!flags.metrics_out.empty() &&
      obs::metrics().write_json_file(flags.metrics_out)) {
    std::fprintf(stderr, "[bench] wrote metrics to %s\n",
                 flags.metrics_out.c_str());
  }
  return 0;
}
