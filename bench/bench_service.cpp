// Service throughput bench: sustained jobs/sec through fastsc::Service
// under a mixed FB-scale / DBLP-scale trace.
//
// The trace interleaves fresh solves, identical resubmissions (cache
// hits), delta-edge updates (warm-start re-solves), and oversized jobs
// that trip per-job quota admission — so one run exercises the queue, the
// cache, the warm path, and rejection.  Reported: jobs/sec, end-to-end
// p50/p99 latency, cache-hit ratio, and rejection rate, all in the
// "Service throughput" table of the RunReport (BENCH_service.json via
// --report-out) and as service.* gauges in the metrics snapshot.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/report.h"
#include "fastsc/service.h"
#include "service/trace_replay.h"

namespace {

using namespace fastsc;

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<usize>(p * static_cast<double>(xs.size()));
  return xs[std::min(rank, xs.size() - 1)];
}

/// Mixed trace: fb/dblp solves with periodic resubmits, updates, and an
/// oversized job every 8 ops (rejected under the bench's default quota).
std::vector<service::TraceOp> make_mixed_trace(index_t jobs, double scale,
                                               std::uint64_t seed) {
  const auto fb_n = static_cast<index_t>(600 * scale);
  const auto dblp_n = static_cast<index_t>(2000 * scale);
  const auto big_n = static_cast<index_t>(20000 * scale);
  std::vector<service::TraceOp> ops;
  ops.reserve(static_cast<usize>(jobs));
  for (index_t i = 0; i < jobs; ++i) {
    service::TraceOp op;
    op.seed = seed;
    op.priority = static_cast<int>(i % 3);
    if (i % 8 == 7) {
      // Oversized: estimated device bytes far above the per-job quota.
      op.op = "solve";
      op.dataset = "dblp_big";
      op.n = big_n;
      op.k = 5;
    } else if (i % 4 == 3) {
      op.op = "update";  // warm-start re-solve of the fb graph
      op.dataset = "fb";
      op.n = fb_n;
      op.k = 5;
      op.delta_frac = 0.01;
    } else if (i % 4 == 2) {
      op.op = "solve";  // identical resubmit: cache hit
      op.dataset = "fb";
      op.n = fb_n;
      op.k = 5;
    } else if (i % 2 == 1) {
      op.op = "solve";
      op.dataset = "dblp";
      op.n = dblp_n;
      op.k = 8;
      op.seed = seed + i;  // fresh config fingerprint: forced miss
    } else {
      op.op = "solve";
      op.dataset = "fb";
      op.n = fb_n;
      op.k = 5;
    }
    ops.push_back(op);
  }
  return ops;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli(
      "bench_service: sustained jobs/sec through fastsc::Service under a "
      "mixed FB/DBLP trace");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/5);
  const index_t jobs = cli.get_int("jobs", 24, "trace length (ops)");
  ServiceConfig scfg;
  scfg.workers = static_cast<usize>(
      cli.get_int("service-workers", 2, "service executor threads"));
  scfg.max_queue_depth = static_cast<usize>(
      cli.get_int("queue-depth", 64, "queued-job admission limit"));
  // 2 MiB sits between the largest admissible job (fb at scale 1: ~1 MiB)
  // and the smallest oversized one (dblp_big at scale 0.5: ~2.9 MiB), so
  // the trace's every-8th oversized job is rejected at any bench scale.
  scfg.job_arena_quota_bytes = static_cast<std::uint64_t>(
      cli.get_double("job-quota-mb", 2,
                     "per-job device-byte quota (MiB); the trace's oversized "
                     "jobs are rejected against this") *
      1024.0 * 1024.0);
  scfg.arena_budget_bytes = static_cast<std::uint64_t>(
      cli.get_double("arena-mb", 512,
                     "aggregate device-byte budget (MiB, 0 = off)") *
      1024.0 * 1024.0);
  scfg.cache_capacity_bytes = static_cast<std::uint64_t>(
      cli.get_double("cache-mb", 128, "result-cache capacity (MiB)") *
      1024.0 * 1024.0);
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  const std::vector<service::TraceOp> ops =
      make_mixed_trace(jobs, flags.scale, flags.seed);
  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  Service svc(scfg, &ctx);
  core::SpectralConfig base;
  base.backend = core::Backend::kDevice;
  service::TraceReplayer replayer(svc, base);

  std::fprintf(stderr, "[bench] replaying %lld mixed ops...\n",
               static_cast<long long>(jobs));
  const auto t0 = std::chrono::steady_clock::now();
  for (const service::TraceOp& op : ops) replayer.submit(op);
  replayer.wait_all();
  svc.shutdown(/*drain=*/true);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> latency;  // end-to-end: queue + solve
  std::uint64_t warm_started = 0;
  for (const service::ReplayedJob& j : replayer.jobs()) {
    if (j.result.status != JobStatus::kCompleted) continue;
    latency.push_back(j.result.queue_ms + j.result.solve_ms);
    if (j.result.warm_started) ++warm_started;
  }
  const ServiceStats stats = svc.stats();
  const double jobs_per_sec =
      wall_s > 0 ? static_cast<double>(stats.completed) / wall_s : 0;
  const double p50 = percentile(latency, 0.50);
  const double p99 = percentile(latency, 0.99);
  const std::uint64_t lookups = stats.cache_hits + stats.cache_misses;
  const double hit_ratio =
      lookups > 0 ? static_cast<double>(stats.cache_hits) /
                        static_cast<double>(lookups)
                  : 0;
  const double rejection_rate =
      stats.submitted > 0 ? static_cast<double>(stats.rejected) /
                                static_cast<double>(stats.submitted)
                          : 0;

  // Checksums-on/off: replay the identical trace with the SDC defense layer
  // (ABFT checksums, sentinels, transfer CRC — DESIGN.md §14) switched off,
  // on its own service + device so neither pass contaminates the other.
  // Two numbers land in BENCH_service.json: the wall-clock jobs/sec with
  // checksums off (report_only — shared CI machines) and the *modeled* flop
  // overhead ratio of the on-pass, which is deterministic for the pinned
  // flags and therefore gated by the perf-regression suite.
  std::fprintf(stderr, "[bench] replaying again with checksums off...\n");
  double off_wall_s = 0;
  std::uint64_t off_completed = 0;
  {
    core::SpectralConfig off_base = base;
    off_base.sdc.enabled = false;
    device::DeviceContext off_ctx(static_cast<usize>(flags.workers));
    Service off_svc(scfg, &off_ctx);
    service::TraceReplayer off_replayer(off_svc, off_base);
    const auto t1 = std::chrono::steady_clock::now();
    for (const service::TraceOp& op : ops) off_replayer.submit(op);
    off_replayer.wait_all();
    off_svc.shutdown(/*drain=*/true);
    off_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t1)
            .count();
    off_completed = off_svc.stats().completed;
  }
  const double off_jobs_per_sec =
      off_wall_s > 0 ? static_cast<double>(off_completed) / off_wall_s : 0;
  double total_flops = 0, sdc_flops = 0;
  for (const obs::SiteReport& s : core::collect_attribution(ctx).sites) {
    total_flops += s.stats.flops;
    if (s.site.rfind("sdc.", 0) == 0) sdc_flops += s.stats.flops;
  }
  const double sdc_overhead =
      total_flops > sdc_flops ? total_flops / (total_flops - sdc_flops) : 1.0;

  obs::MetricsRegistry& reg = obs::metrics();
  reg.set_gauge("service.jobs_per_sec", jobs_per_sec);
  reg.set_gauge("service.latency_p50_ms", p50);
  reg.set_gauge("service.latency_p99_ms", p99);
  reg.set_gauge("service.cache_hit_ratio", hit_ratio);
  reg.set_gauge("service.rejection_rate", rejection_rate);
  reg.set_gauge("service.jobs_per_sec_sdc_off", off_jobs_per_sec);
  reg.set_gauge("service.sdc_overhead_flops", sdc_overhead);

  TextTable table("Service throughput (mixed FB/DBLP trace)");
  table.header({"metric", "value"});
  table.row({"jobs submitted",
             TextTable::fmt(static_cast<index_t>(stats.submitted))});
  table.row({"jobs completed",
             TextTable::fmt(static_cast<index_t>(stats.completed))});
  table.row({"jobs rejected",
             TextTable::fmt(static_cast<index_t>(stats.rejected))});
  table.row({"warm-started",
             TextTable::fmt(static_cast<index_t>(warm_started))});
  table.row({"jobs/sec", TextTable::fmt(jobs_per_sec, 2)});
  table.row({"latency p50 (ms)", TextTable::fmt(p50, 2)});
  table.row({"latency p99 (ms)", TextTable::fmt(p99, 2)});
  table.row({"cache hit ratio", TextTable::fmt(hit_ratio, 3)});
  table.row({"rejection rate", TextTable::fmt(rejection_rate, 3)});
  table.row({"jobs/sec (checksums on)", TextTable::fmt(jobs_per_sec, 2)});
  table.row({"jobs/sec (checksums off)", TextTable::fmt(off_jobs_per_sec, 2)});
  table.row({"sdc flop overhead (x)", TextTable::fmt(sdc_overhead, 4)});
  table.print();
  std::printf("\n");

  bench::write_observability_artifacts(flags, ctx);
  bench::maybe_write_run_report(flags, "bench_service", {}, {table}, &ctx);
  return 0;
}
