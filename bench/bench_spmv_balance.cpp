// Micro bench: row-chunked vs merge-path (nnz-balanced) CSR SpMV on a
// power-law graph.
//
// device::launch splits kernels into equal ROW chunks; on a Zipf-degree
// matrix one chunk inherits the hubs and the whole wave waits on it.  The
// merge-path partition (sparse/balance.h) bounds every worker's share of
// rows + nnz instead.  This bench reports the modeled worst-wave work for
// both splits — the quantity that caps achievable SpMV parallelism — plus
// wall time for the two kernels, and publishes the model as metrics gauges
// (spmv.rowchunk_wave_max_nnz / spmv.wave_max_nnz) so the perf_smoke CI
// check can assert the >= 2x balance win from the artifacts alone.
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "data/powerlaw.h"
#include "sparse/balance.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_spmv_balance: merge-path vs row-chunked SpMV balance on a "
      "power-law (Zipf-degree) graph");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/8);
  const auto base_n = cli.get_int("n", 20000, "node count (scaled by --scale)");
  const auto avg_degree =
      cli.get_double("avg-degree", 16.0, "target mean degree");
  const auto reps = cli.get_int("reps", 50, "timed SpMV repetitions");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  // The balance story is about a fixed worker count, so default to 8 lanes
  // rather than whatever the host machine has.
  const index_t workers = flags.workers == 0 ? 8 : flags.workers;
  const auto n = static_cast<index_t>(static_cast<double>(base_n) * flags.scale);

  const data::PowerlawGraph g = data::make_powerlaw(
      {.n = n, .avg_degree = avg_degree, .seed = flags.seed});
  const sparse::Csr csr = sparse::coo_to_csr(g.w);

  device::DeviceContext ctx(static_cast<usize>(workers));
  sparse::DeviceCsr dev(ctx, csr);
  std::vector<real> x(static_cast<usize>(n));
  Rng rng(flags.seed);
  for (real& v : x) v = rng.uniform(-1, 1);
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(x));
  device::DeviceBuffer<real> dy(ctx, static_cast<usize>(n));

  // Modeled worst-wave work (entries handled by the busiest worker).
  const index_t chunked =
      sparse::rowchunk_max_span_nnz(csr.row_ptr.data(), 0, csr.rows, workers);
  const sparse::MergePathPartition part =
      sparse::merge_path_partition(csr.row_ptr.data(), 0, csr.rows, workers);
  obs::metrics().set_gauge("spmv.rowchunk_wave_max_nnz",
                           static_cast<double>(chunked));

  // Timed loops; the balanced call also publishes spmv.wave_max_nnz.
  WallTimer t_row;
  for (index_t r = 0; r < reps; ++r) {
    sparse::device_csrmv(ctx, dev, dx.data(), dy.data());
  }
  const double row_seconds = t_row.seconds();
  WallTimer t_bal;
  for (index_t r = 0; r < reps; ++r) {
    sparse::device_csrmv_balanced(ctx, dev, dx.data(), dy.data());
  }
  const double bal_seconds = t_bal.seconds();

  const double ratio = part.max_span_nnz > 0
                           ? static_cast<double>(chunked) /
                                 static_cast<double>(part.max_span_nnz)
                           : 0.0;
  TextTable table("SpMV balance on power-law graph (n=" + std::to_string(n) +
                  ", nnz=" + std::to_string(csr.nnz()) +
                  ", workers=" + std::to_string(workers) + ")");
  table.header({"Split", "max wave nnz", "mean wave nnz", "time/s",
                "balance win"});
  table.row({"row-chunked (owner-computes)", TextTable::fmt(chunked),
             TextTable::fmt(static_cast<double>(csr.nnz()) /
                                static_cast<double>(workers),
                            1),
             TextTable::fmt_seconds(row_seconds), "1.0x (baseline)"});
  table.row({"merge-path balanced", TextTable::fmt(part.max_span_nnz),
             TextTable::fmt(part.mean_span_nnz, 1),
             TextTable::fmt_seconds(bal_seconds),
             TextTable::fmt(ratio, 2) + "x"});
  table.print();

  bench::write_observability_artifacts(flags, ctx);
  bench::maybe_write_run_report(flags, "spmv_balance", {}, {table}, &ctx);
  return 0;
}
