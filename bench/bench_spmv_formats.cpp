// Micro benchmark: SpMV throughput across sparse formats (COO/CSR/CSC/BSR)
// and the device csrmv — backing the paper's §IV.A format discussion.
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "data/powerlaw.h"
#include "data/sbm.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

namespace {

using namespace fastsc;

struct Fixture {
  sparse::Coo coo;
  sparse::Csr csr;
  sparse::Csc csc;
  sparse::Bsr bsr;
  std::vector<real> x, y;

  explicit Fixture(index_t n) {
    data::SbmParams p;
    p.block_sizes = data::equal_blocks(n, std::max<index_t>(4, n / 100));
    p.p_in = 0.2;
    p.p_out = 4.0 / static_cast<real>(n);
    const data::SbmGraph g = data::make_sbm(p);
    coo = g.w;
    csr = sparse::coo_to_csr(coo);
    csc = sparse::csr_to_csc(csr);
    bsr = sparse::csr_to_bsr(csr, 4);
    x.assign(static_cast<usize>(n), 1.0);
    y.assign(static_cast<usize>(n), 0.0);
    Rng rng(7);
    for (real& v : x) v = rng.uniform(-1, 1);
  }
};

Fixture& fixture(index_t n) {
  static std::map<index_t, Fixture> cache;
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, Fixture(n)).first;
  return it->second;
}

void BM_SpmvCsr(benchmark::State& state) {
  Fixture& f = fixture(state.range(0));
  for (auto _ : state) {
    sparse::csr_mv(f.csr, f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.nnz());
}

void BM_SpmvCoo(benchmark::State& state) {
  Fixture& f = fixture(state.range(0));
  for (auto _ : state) {
    sparse::coo_mv(f.coo, f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.coo.nnz());
}

void BM_SpmvCsc(benchmark::State& state) {
  Fixture& f = fixture(state.range(0));
  for (auto _ : state) {
    sparse::csc_mv(f.csc, f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csc.nnz());
}

void BM_SpmvBsr(benchmark::State& state) {
  Fixture& f = fixture(state.range(0));
  for (auto _ : state) {
    sparse::bsr_mv(f.bsr, f.x.data(), f.y.data());
    benchmark::DoNotOptimize(f.y.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.nnz());
}

void BM_SpmvDeviceCsr(benchmark::State& state) {
  Fixture& f = fixture(state.range(0));
  device::DeviceContext ctx;
  sparse::DeviceCsr dev(ctx, f.csr);
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(f.x));
  device::DeviceBuffer<real> dy(ctx, f.y.size());
  for (auto _ : state) {
    sparse::device_csrmv(ctx, dev, dx.data(), dy.data());
    benchmark::DoNotOptimize(dy.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.nnz());
}

// Skewed (Zipf-degree) matrix: the hub rows break the row-chunked split, so
// this is where the merge-path kernel separates from device_csrmv.
struct SkewedFixture {
  sparse::Csr csr;
  std::vector<real> x, y;

  explicit SkewedFixture(index_t n) {
    const data::PowerlawGraph g =
        data::make_powerlaw({.n = n, .avg_degree = 12.0, .seed = 9});
    csr = sparse::coo_to_csr(g.w);
    x.assign(static_cast<usize>(n), 0.0);
    y.assign(static_cast<usize>(n), 0.0);
    Rng rng(7);
    for (real& v : x) v = rng.uniform(-1, 1);
  }
};

SkewedFixture& skewed_fixture(index_t n) {
  static std::map<index_t, SkewedFixture> cache;
  auto it = cache.find(n);
  if (it == cache.end()) it = cache.emplace(n, SkewedFixture(n)).first;
  return it->second;
}

void BM_SpmvDeviceCsrSkewed(benchmark::State& state) {
  SkewedFixture& f = skewed_fixture(state.range(0));
  device::DeviceContext ctx;
  sparse::DeviceCsr dev(ctx, f.csr);
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(f.x));
  device::DeviceBuffer<real> dy(ctx, f.y.size());
  for (auto _ : state) {
    sparse::device_csrmv(ctx, dev, dx.data(), dy.data());
    benchmark::DoNotOptimize(dy.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.nnz());
}

void BM_SpmvDeviceCsrSkewedBalanced(benchmark::State& state) {
  SkewedFixture& f = skewed_fixture(state.range(0));
  device::DeviceContext ctx;
  sparse::DeviceCsr dev(ctx, f.csr);
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(f.x));
  device::DeviceBuffer<real> dy(ctx, f.y.size());
  for (auto _ : state) {
    sparse::device_csrmv_balanced(ctx, dev, dx.data(), dy.data());
    benchmark::DoNotOptimize(dy.data());
  }
  state.SetItemsProcessed(state.iterations() * f.csr.nnz());
}

void BM_Coo2CsrDevice(benchmark::State& state) {
  Fixture& f = fixture(state.range(0));
  device::DeviceContext ctx;
  sparse::DeviceCoo dcoo(ctx, f.coo);
  for (auto _ : state) {
    sparse::DeviceCsr out;
    sparse::device_coo2csr(ctx, dcoo, out);
    benchmark::DoNotOptimize(out.values.data());
  }
}

}  // namespace

BENCHMARK(BM_SpmvCsr)->Arg(1000)->Arg(8000);
BENCHMARK(BM_SpmvCoo)->Arg(1000)->Arg(8000);
BENCHMARK(BM_SpmvCsc)->Arg(1000)->Arg(8000);
BENCHMARK(BM_SpmvBsr)->Arg(1000)->Arg(8000);
BENCHMARK(BM_SpmvDeviceCsr)->Arg(1000)->Arg(8000);
BENCHMARK(BM_SpmvDeviceCsrSkewed)->Arg(1000)->Arg(8000);
BENCHMARK(BM_SpmvDeviceCsrSkewedBalanced)->Arg(1000)->Arg(8000);
BENCHMARK(BM_Coo2CsrDevice)->Arg(8000);
