// Table III + Figure 3 reproduction: spectral clustering on the DTI dataset.
//
// Paper numbers (142K voxels, 90-dim profiles, 4M edges, k=500):
//   similarity  CUDA 0.0331   Matlab 221.2   Python 220.9   (loop baselines)
//               Matlab-vectorized 5.753, Python-vectorized 6.271 (§V.C text)
//   eigensolver CUDA 475.4    Matlab 603.2   Python 3282.0
//   k-means     CUDA 5.407    Matlab 1785.2  Python 2154.8
//
// Default here is a scaled volume (24^3 voxels, k=64) that completes on a
// small machine; --scale and --k approach paper size on larger hardware.
// Expected shape: similarity loop >> vectorized >= device; eigensolver wins
// are modest (CPU-side IRLM dominates at large k); k-means device wins big.
#include <cmath>
#include <cstdio>

#include "baseline/matlab_like.h"
#include "bench_common.h"
#include "common/timer.h"
#include "data/dti.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_table3_dti: reproduce paper Table III / Figure 3 (DTI dataset)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/64);
  const auto side = cli.get_int(
      "side", 24, "voxel lattice side (n = side^3; paper is ~52 effective)");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  data::DtiParams params;
  const auto scaled_side =
      std::max<index_t>(6, static_cast<index_t>(
                               static_cast<double>(side) *
                               std::cbrt(flags.scale)));
  params.nx = params.ny = params.nz = scaled_side;
  params.profile_dim = 90;
  params.num_parcels = flags.k;
  params.epsilon = 2.0;  // 4mm radius over 2mm voxels, as in the paper
  params.noise = 0.25;
  params.seed = flags.seed;

  std::fprintf(stderr, "[bench] generating DTI-like volume %lld^3...\n",
               static_cast<long long>(scaled_side));
  const data::DtiVolume vol = data::make_dti_like(params);
  std::fprintf(stderr, "[bench] n=%lld voxels, %lld edges\n",
               static_cast<long long>(vol.n),
               static_cast<long long>(vol.edges.size()));

  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  const core::BackendRuns runs = bench::run_points_backends(
      "DTI", vol.profiles.data(), vol.n, vol.d, vol.edges, flags.k, flags,
      ctx);

  const sparse::Coo w_host = graph::build_similarity_host(
      vol.profiles.data(), vol.n, vol.d, graph::symmetrized(vol.edges),
      graph::SimilarityParams{graph::SimilarityMeasure::kCrossCorrelation});
  const sparse::Csr w_csr = sparse::coo_to_csr(w_host);

  std::vector<TextTable> tables = bench::standard_report_tables(
      runs, /*include_similarity=*/true, &vol.labels, &w_csr);
  bench::print_tables(tables);

  // §V.C extra rows: loop vs vectorized similarity for the baselines.
  {
    const graph::EdgeList sym = graph::symmetrized(vol.edges);
    graph::SimilarityParams sp{graph::SimilarityMeasure::kCrossCorrelation};
    WallTimer t1;
    (void)baseline::similarity_loop(vol.profiles.data(), vol.n, vol.d, sym,
                                    sp);
    const double loop_s = t1.seconds();
    WallTimer t2;
    (void)baseline::similarity_vectorized(vol.profiles.data(), vol.n, vol.d,
                                          sym, sp);
    const double vec_s = t2.seconds();
    TextTable extra(
        "Section V.C: loop-based vs vectorized similarity construction "
        "(paper: 221s loop vs 5.75s vectorized Matlab)");
    extra.header({"Implementation", "Time/s"});
    extra.row({"Serial loop (per-edge recompute)",
               TextTable::fmt_seconds(loop_s)});
    extra.row({"Serial vectorized (precomputed stats)",
               TextTable::fmt_seconds(vec_s)});
    for (const auto& [b, r] : runs.runs) {
      if (b == core::Backend::kDevice) {
        extra.row({"Device (Algorithm 1)",
                   TextTable::fmt_seconds(
                       r.clock.seconds(core::kStageSimilarity))});
      }
    }
    extra.print();
    tables.push_back(std::move(extra));
  }
  bench::write_observability_artifacts(flags, ctx);
  bench::maybe_write_run_report(flags, "bench_table3_dti", {runs},
                                std::move(tables), &ctx);
  return 0;
}
