// Table IV + Figure 4 reproduction: spectral clustering on the FB dataset.
//
// Paper numbers (4039 nodes, 88K edges, k=10):
//   eigensolver CUDA 0.0216   Matlab 0.1027  Python 0.0851   (~5x)
//   k-means     CUDA 0.00725  Matlab 0.0205  Python 0.0259   (~4x)
//
// This dataset is small enough to run at paper size.  Expected shape: small
// speedups (the problem is too small for massive parallelism to matter).
// Pass --edges=path to run on the real SNAP facebook_combined.txt instead
// of the calibrated generator.
#include <cstdio>

#include "bench_common.h"
#include "data/io.h"
#include "data/social.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_table4_fb: reproduce paper Table IV / Figure 4 (FB dataset)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/10);
  const auto n = cli.get_int("n", 4039, "node count (paper: 4039)");
  const std::string edge_file = cli.get_string(
      "edges", "", "optional SNAP edge-list file to use instead of the generator");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  sparse::Coo w;
  std::vector<index_t> truth;
  bool have_truth = false;
  if (!edge_file.empty()) {
    std::fprintf(stderr, "[bench] reading %s...\n", edge_file.c_str());
    w = data::read_edge_list(edge_file, /*symmetrize=*/true);
  } else {
    const auto scaled_n =
        std::max<index_t>(200, static_cast<index_t>(
                                   static_cast<double>(n) * flags.scale));
    const data::SocialParams params =
        data::fb_like_params(scaled_n, flags.k, flags.seed);
    const data::SbmGraph g = data::make_social_graph(params);
    w = g.w;
    truth = g.labels;
    have_truth = true;
  }

  bench::prune_isolated(w, have_truth ? &truth : nullptr);
  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  const core::BackendRuns runs =
      bench::run_graph_backends("FB", w, flags.k, flags, ctx);
  const sparse::Csr w_csr = sparse::coo_to_csr(w);
  std::vector<TextTable> tables = bench::standard_report_tables(
      runs, /*include_similarity=*/false, have_truth ? &truth : nullptr,
      have_truth ? &w_csr : nullptr);
  bench::print_tables(tables);
  bench::write_observability_artifacts(flags, ctx);
  bench::maybe_write_run_report(flags, "bench_table4_fb", {runs},
                                std::move(tables), &ctx);
  return 0;
}
