// Table V + Figure 5 reproduction: the Syn200 stochastic-block-model graph.
//
// Paper numbers (n=20000, r=200 blocks, p=0.3, q=0.01, 773K edges, k=200):
//   eigensolver CUDA 4.115    Matlab 6.953   Python 18.92    (modest win)
//   k-means     CUDA 0.0248   Matlab 38.37   Python 2.472    (>100x)
//
// Default is scaled to n=6000 / r=60; --scale=3.33 reaches paper size.
// Expected shape: eigensolver win shrinks (CPU-side IRLM dominates at large
// k), k-means win is large thanks to the BLAS-formulated distance matrix.
#include <cstdio>

#include "bench_common.h"
#include "data/sbm.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_table5_syn200: reproduce paper Table V / Figure 5 (Syn200)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/0);
  const auto n = cli.get_int("n", 6000, "node count (paper: 20000)");
  const auto blocks =
      cli.get_int("blocks", 60, "planted blocks r (paper: 200)");
  const auto p_in = cli.get_double("p_in", 0.3, "within-block probability");
  const auto p_out = cli.get_double("p_out", 0.01, "cross-block probability");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  const auto scaled_n = std::max<index_t>(
      400, static_cast<index_t>(static_cast<double>(n) * flags.scale));
  const auto scaled_blocks = std::max<index_t>(
      4, static_cast<index_t>(static_cast<double>(blocks) * flags.scale));
  const index_t k = flags.k > 0 ? flags.k : scaled_blocks;

  data::SbmParams params;
  params.block_sizes = data::equal_blocks(scaled_n, scaled_blocks);
  params.p_in = p_in;
  params.p_out = p_out;
  params.seed = flags.seed;
  std::fprintf(stderr, "[bench] generating SBM n=%lld r=%lld...\n",
               static_cast<long long>(scaled_n),
               static_cast<long long>(scaled_blocks));
  const data::SbmGraph g = data::make_sbm(params);
  std::fprintf(stderr, "[bench] %lld stored entries\n",
               static_cast<long long>(g.w.nnz()));

  sparse::Coo w = g.w;
  std::vector<index_t> truth = g.labels;
  bench::prune_isolated(w, &truth);

  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  const core::BackendRuns runs =
      bench::run_graph_backends("Syn200", w, k, flags, ctx);
  const sparse::Csr w_csr = sparse::coo_to_csr(w);
  std::vector<TextTable> tables = bench::standard_report_tables(
      runs, /*include_similarity=*/false, &truth, &w_csr);
  bench::print_tables(tables);
  bench::write_observability_artifacts(flags, ctx);
  bench::maybe_write_run_report(flags, "bench_table5_syn200", {runs},
                                std::move(tables), &ctx);
  return 0;
}
