// Table VI + Figure 6 reproduction: the DBLP co-authorship graph.
//
// Paper numbers (317080 nodes, 1.05M edges, k=500):
//   eigensolver CUDA 682.6    Matlab 1885.2  Python 9338.3   (~3x)
//   k-means     CUDA 1.795    Matlab 1012.9  Python 719.7    (>400x)
//
// Default is a scaled DBLP-like graph (n=12000, k=50); pass --edges=path to
// run on the real SNAP com-dblp.ungraph.txt.  Expected shape: modest
// eigensolver speedup bounded by the CPU-side RCI work, huge k-means win.
#include <cstdio>

#include "bench_common.h"
#include "data/io.h"
#include "data/social.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_table6_dblp: reproduce paper Table VI / Figure 6 (DBLP)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/50);
  const auto n = cli.get_int("n", 12000, "node count (paper: 317080)");
  const std::string edge_file = cli.get_string(
      "edges", "", "optional SNAP edge-list file to use instead of the generator");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  sparse::Coo w;
  std::vector<index_t> truth;
  bool have_truth = false;
  if (!edge_file.empty()) {
    std::fprintf(stderr, "[bench] reading %s...\n", edge_file.c_str());
    w = data::read_edge_list(edge_file, /*symmetrize=*/true);
  } else {
    const auto scaled_n = std::max<index_t>(
        500, static_cast<index_t>(static_cast<double>(n) * flags.scale));
    const data::SocialParams params =
        data::dblp_like_params(scaled_n, flags.k * 2, flags.seed);
    std::fprintf(stderr, "[bench] generating DBLP-like graph n=%lld...\n",
                 static_cast<long long>(scaled_n));
    data::SbmGraph g = data::make_social_graph(params);
    // Like the real DBLP (5000+ communities, clustered at k=500), the
    // planted community count exceeds the requested k.
    w = std::move(g.w);
    truth = std::move(g.labels);
    have_truth = true;
  }
  std::fprintf(stderr, "[bench] %lld stored entries\n",
               static_cast<long long>(w.nnz()));

  bench::prune_isolated(w, have_truth ? &truth : nullptr);
  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  const core::BackendRuns runs =
      bench::run_graph_backends("dblp", w, flags.k, flags, ctx);
  const sparse::Csr w_csr = sparse::coo_to_csr(w);
  std::vector<TextTable> tables = bench::standard_report_tables(
      runs, /*include_similarity=*/false, have_truth ? &truth : nullptr,
      have_truth ? &w_csr : nullptr);
  bench::print_tables(tables);
  bench::write_observability_artifacts(flags, ctx);
  bench::maybe_write_run_report(flags, "bench_table6_dblp", {runs},
                                std::move(tables), &ctx);
  return 0;
}
