// Table VII reproduction: data communication time vs computation time for
// the device pipeline on all four datasets.
//
// Paper numbers (communication / computation, seconds):
//   DTI    2.248    / 475.2      FB     0.00213 / 0.0264
//   DBLP   2.731    / 680.3      Syn200 0.0741  / 3.820
//
// Expected shape: communication is 1-3 orders of magnitude below
// computation, with the gap widening for the larger problems.  Here
// "communication" is the modeled PCIe time of every staged transfer
// (H2D inputs, per-iteration RCI vectors, D2H results) and "computation"
// is the remaining pipeline wall time.
#include <cstdio>

#include "bench_common.h"
#include "data/dti.h"
#include "data/sbm.h"
#include "data/social.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli(
      "bench_table7_comm: reproduce paper Table VII (communication vs "
      "computation)");
  const bool run = cli.parse(argc, argv);
  bench::CommonFlags flags = bench::CommonFlags::parse(cli, /*default_k=*/0);
  flags.baselines = false;  // Table VII concerns only the device backend
  const auto dti_side =
      cli.get_int("dti_side", 18, "DTI lattice side for this bench");
  const auto fb_n = cli.get_int("fb_n", 4039, "FB-like node count");
  const auto dblp_n = cli.get_int("dblp_n", 10000, "DBLP-like node count");
  const auto syn_n = cli.get_int("syn_n", 5000, "Syn200-like node count");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  device::DeviceContext ctx(static_cast<usize>(flags.workers));
  std::vector<core::BackendRuns> all;

  {
    data::DtiParams p;
    p.nx = p.ny = p.nz = dti_side;
    p.num_parcels = 32;
    p.epsilon = 2.0;
    p.seed = flags.seed;
    std::fprintf(stderr, "[bench] DTI-like volume...\n");
    const data::DtiVolume vol = data::make_dti_like(p);
    all.push_back(bench::run_points_backends("DTI", vol.profiles.data(),
                                             vol.n, vol.d, vol.edges, 32,
                                             flags, ctx));
  }
  {
    std::fprintf(stderr, "[bench] FB-like graph...\n");
    data::SbmGraph g =
        data::make_social_graph(data::fb_like_params(fb_n, 10, flags.seed));
    bench::prune_isolated(g.w, &g.labels);
    all.push_back(bench::run_graph_backends("FB", g.w, 10, flags, ctx));
  }
  {
    std::fprintf(stderr, "[bench] DBLP-like graph...\n");
    data::SbmGraph g = data::make_social_graph(
        data::dblp_like_params(dblp_n, 80, flags.seed));
    bench::prune_isolated(g.w, &g.labels);
    all.push_back(bench::run_graph_backends("DBLP", g.w, 40, flags, ctx));
  }
  {
    std::fprintf(stderr, "[bench] Syn200-like graph...\n");
    data::SbmParams p;
    p.block_sizes = data::equal_blocks(syn_n, 50);
    p.p_in = 0.3;
    p.p_out = 0.01;
    p.seed = flags.seed;
    const data::SbmGraph g = data::make_sbm(p);
    all.push_back(bench::run_graph_backends("Syn200", g.w, 50, flags, ctx));
  }

  std::vector<TextTable> tables;
  tables.push_back(core::dataset_table(all));
  tables.push_back(core::communication_table(all));

  TextTable detail("Transfer detail (device backend)");
  detail.header({"Dataset", "H2D transfers", "D2H transfers",
                 "measured memcpy s", "modeled PCIe s", "eig matvecs"});
  for (const auto& runs : all) {
    for (const auto& [b, r] : runs.runs) {
      if (b != core::Backend::kDevice) continue;
      detail.row({runs.dataset,
                  TextTable::fmt(static_cast<index_t>(
                      r.device_counters.transfers_h2d)),
                  TextTable::fmt(static_cast<index_t>(
                      r.device_counters.transfers_d2h)),
                  TextTable::fmt_seconds(
                      r.device_counters.measured_transfer_seconds),
                  TextTable::fmt_seconds(
                      r.device_counters.modeled_transfer_seconds),
                  TextTable::fmt(r.eig_stats.matvec_count)});
    }
  }
  tables.push_back(std::move(detail));
  bench::print_tables(tables);
  bench::write_observability_artifacts(flags, ctx);
  bench::maybe_write_run_report(flags, "bench_table7_comm", std::move(all),
                                std::move(tables), &ctx);
  return 0;
}
