#!/usr/bin/env python3
"""Regenerate the measured tables inside EXPERIMENTS.md from bench artifacts.

Preferred input is the machine-readable run report each table bench writes
with --report-out (schema fastsc.run_report.v1, which embeds the rendered
tables verbatim):

  mkdir -p bench_reports
  for b in build/bench/bench_table*; do
      "$b" --report-out=bench_reports/$(basename $b).json; done
  python3 bench/fill_experiments.py        # rewrites the ``` blocks in place

Benches without a report in bench_reports/ (e.g. the ablations) fall back to
scraped stdout collected the old way:

  for b in build/bench/*; do [ -f "$b" ] && [ -x "$b" ] || continue; \
      echo "===== $(basename $b) ====="; "$b"; echo; done > bench_output.txt

The script matches each measured block by the bench section and table header
it came from, so EXPERIMENTS.md prose stays untouched while the numbers are
refreshed.
"""
import json
import os
import re
import sys

OUT = 'bench_output.txt'
REPORT_DIR = 'bench_reports'
DOC = 'EXPERIMENTS.md'


def report_section(name):
    """Rendered tables from a --report-out JSON, or None if absent."""
    path = os.path.join(REPORT_DIR, name + '.json')
    if not os.path.exists(path):
        return None
    with open(path) as f:
        doc = json.load(f)
    if doc.get('schema') != 'fastsc.run_report.v1':
        sys.exit(f'{path}: unexpected schema {doc.get("schema")!r}')
    return '\n\n'.join(t['text'].rstrip('\n') for t in doc['tables'])


def section(out, name):
    from_report = report_section(name)
    if from_report is not None:
        return from_report
    if out is None:
        sys.exit(f'no {REPORT_DIR}/{name}.json and no {OUT} to fall back on')
    m = re.search(r'===== ' + name + r' =====\n(.*?)(?:\n===== |\Z)', out,
                  re.S)
    if not m:
        sys.exit(f'bench section {name} missing from {OUT}')
    return m.group(1).strip()


def block(text, header):
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if header in line:
            j = i
            res = []
            while j < len(lines) and lines[j].strip():
                res.append(lines[j])
                j += 1
            return '\n'.join(res)
    sys.exit(f'table header {header!r} not found')


def main():
    out = open(OUT).read() if os.path.exists(OUT) else None
    doc = open(DOC).read()

    # (bench section, [table headers to join]) per measured block, in the
    # order the ``` blocks appear in EXPERIMENTS.md.
    plan = [
        ('bench_table3_dti',
         ['== Running time', 'Clustering quality', 'Section V.C']),
        ('bench_table4_fb', ['== Running time']),
        ('bench_table5_syn200', ['== Running time', 'Clustering quality']),
        ('bench_table6_dblp', ['== Running time']),
        ('bench_table7_comm', ['communication time', 'Transfer detail']),
        ('bench_ablation_kscaling', None),
        ('bench_ablation_spectrum_side', None),
        ('bench_ablation_seeding', None),
        ('bench_ablation_kmeans_dist', None),
        ('bench_ablation_eigensolvers', None),
        ('bench_ablation_reorth', None),
        ('bench_ablation_embedding_norm', None),
        ('bench_ablation_centroid_update', None),
        ('bench_ablation_bisection', None),
        ('bench_ablation_pcie', None),
    ]
    blocks = []
    for name, headers in plan:
        text = section(out, name)
        if headers is None:
            blocks.append(text)
        else:
            blocks.append('\n\n'.join(block(text, h) for h in headers))

    parts = re.split(r'```\n.*?\n```', doc, flags=re.S)
    if len(parts) != len(blocks) + 1:
        sys.exit(f'expected {len(blocks)} code blocks in {DOC}, '
                 f'found {len(parts) - 1}')
    rebuilt = parts[0]
    for body, tail in zip(blocks, parts[1:]):
        rebuilt += '```\n' + body + '\n```' + tail
    open(DOC, 'w').write(rebuilt)
    print(f'refreshed {len(blocks)} measured blocks in {DOC}')


if __name__ == '__main__':
    main()
