# Empty compiler generated dependencies file for bench_ablation_bisection.
# This may be replaced when dependencies are built.
