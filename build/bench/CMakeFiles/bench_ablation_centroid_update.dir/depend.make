# Empty dependencies file for bench_ablation_centroid_update.
# This may be replaced when dependencies are built.
