file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eigensolvers.dir/bench_ablation_eigensolvers.cpp.o"
  "CMakeFiles/bench_ablation_eigensolvers.dir/bench_ablation_eigensolvers.cpp.o.d"
  "bench_ablation_eigensolvers"
  "bench_ablation_eigensolvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eigensolvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
