# Empty compiler generated dependencies file for bench_ablation_embedding_norm.
# This may be replaced when dependencies are built.
