file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kmeans_dist.dir/bench_ablation_kmeans_dist.cpp.o"
  "CMakeFiles/bench_ablation_kmeans_dist.dir/bench_ablation_kmeans_dist.cpp.o.d"
  "bench_ablation_kmeans_dist"
  "bench_ablation_kmeans_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kmeans_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
