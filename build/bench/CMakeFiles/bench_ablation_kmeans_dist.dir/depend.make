# Empty dependencies file for bench_ablation_kmeans_dist.
# This may be replaced when dependencies are built.
