file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_kscaling.dir/bench_ablation_kscaling.cpp.o"
  "CMakeFiles/bench_ablation_kscaling.dir/bench_ablation_kscaling.cpp.o.d"
  "bench_ablation_kscaling"
  "bench_ablation_kscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_kscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
