# Empty compiler generated dependencies file for bench_ablation_kscaling.
# This may be replaced when dependencies are built.
