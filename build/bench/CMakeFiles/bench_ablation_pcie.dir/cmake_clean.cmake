file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pcie.dir/bench_ablation_pcie.cpp.o"
  "CMakeFiles/bench_ablation_pcie.dir/bench_ablation_pcie.cpp.o.d"
  "bench_ablation_pcie"
  "bench_ablation_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
