file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reorth.dir/bench_ablation_reorth.cpp.o"
  "CMakeFiles/bench_ablation_reorth.dir/bench_ablation_reorth.cpp.o.d"
  "bench_ablation_reorth"
  "bench_ablation_reorth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reorth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
