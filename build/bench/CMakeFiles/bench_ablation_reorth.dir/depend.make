# Empty dependencies file for bench_ablation_reorth.
# This may be replaced when dependencies are built.
