file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seeding.dir/bench_ablation_seeding.cpp.o"
  "CMakeFiles/bench_ablation_seeding.dir/bench_ablation_seeding.cpp.o.d"
  "bench_ablation_seeding"
  "bench_ablation_seeding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seeding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
