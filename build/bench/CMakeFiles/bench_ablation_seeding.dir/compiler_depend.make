# Empty compiler generated dependencies file for bench_ablation_seeding.
# This may be replaced when dependencies are built.
