file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spectrum_side.dir/bench_ablation_spectrum_side.cpp.o"
  "CMakeFiles/bench_ablation_spectrum_side.dir/bench_ablation_spectrum_side.cpp.o.d"
  "bench_ablation_spectrum_side"
  "bench_ablation_spectrum_side.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spectrum_side.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
