# Empty compiler generated dependencies file for bench_ablation_spectrum_side.
# This may be replaced when dependencies are built.
