# Empty compiler generated dependencies file for bench_micro_blas.
# This may be replaced when dependencies are built.
