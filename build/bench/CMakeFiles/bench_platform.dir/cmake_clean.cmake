file(REMOVE_RECURSE
  "CMakeFiles/bench_platform.dir/bench_platform.cpp.o"
  "CMakeFiles/bench_platform.dir/bench_platform.cpp.o.d"
  "bench_platform"
  "bench_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
