file(REMOVE_RECURSE
  "CMakeFiles/bench_spmv_formats.dir/bench_spmv_formats.cpp.o"
  "CMakeFiles/bench_spmv_formats.dir/bench_spmv_formats.cpp.o.d"
  "bench_spmv_formats"
  "bench_spmv_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spmv_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
