# Empty dependencies file for bench_spmv_formats.
# This may be replaced when dependencies are built.
