file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dti.dir/bench_table3_dti.cpp.o"
  "CMakeFiles/bench_table3_dti.dir/bench_table3_dti.cpp.o.d"
  "bench_table3_dti"
  "bench_table3_dti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
