file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fb.dir/bench_table4_fb.cpp.o"
  "CMakeFiles/bench_table4_fb.dir/bench_table4_fb.cpp.o.d"
  "bench_table4_fb"
  "bench_table4_fb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
