# Empty dependencies file for bench_table4_fb.
# This may be replaced when dependencies are built.
