file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_syn200.dir/bench_table5_syn200.cpp.o"
  "CMakeFiles/bench_table5_syn200.dir/bench_table5_syn200.cpp.o.d"
  "bench_table5_syn200"
  "bench_table5_syn200.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_syn200.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
