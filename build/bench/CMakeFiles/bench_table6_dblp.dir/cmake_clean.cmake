file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_dblp.dir/bench_table6_dblp.cpp.o"
  "CMakeFiles/bench_table6_dblp.dir/bench_table6_dblp.cpp.o.d"
  "bench_table6_dblp"
  "bench_table6_dblp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
