file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_comm.dir/bench_table7_comm.cpp.o"
  "CMakeFiles/bench_table7_comm.dir/bench_table7_comm.cpp.o.d"
  "bench_table7_comm"
  "bench_table7_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
