# Empty dependencies file for bench_table7_comm.
# This may be replaced when dependencies are built.
