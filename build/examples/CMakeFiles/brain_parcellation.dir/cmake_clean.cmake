file(REMOVE_RECURSE
  "CMakeFiles/brain_parcellation.dir/brain_parcellation.cpp.o"
  "CMakeFiles/brain_parcellation.dir/brain_parcellation.cpp.o.d"
  "brain_parcellation"
  "brain_parcellation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/brain_parcellation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
