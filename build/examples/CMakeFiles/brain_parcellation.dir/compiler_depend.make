# Empty compiler generated dependencies file for brain_parcellation.
# This may be replaced when dependencies are built.
