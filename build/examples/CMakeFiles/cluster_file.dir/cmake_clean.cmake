file(REMOVE_RECURSE
  "CMakeFiles/cluster_file.dir/cluster_file.cpp.o"
  "CMakeFiles/cluster_file.dir/cluster_file.cpp.o.d"
  "cluster_file"
  "cluster_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
