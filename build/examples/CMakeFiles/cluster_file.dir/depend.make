# Empty dependencies file for cluster_file.
# This may be replaced when dependencies are built.
