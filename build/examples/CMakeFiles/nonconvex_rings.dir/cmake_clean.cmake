file(REMOVE_RECURSE
  "CMakeFiles/nonconvex_rings.dir/nonconvex_rings.cpp.o"
  "CMakeFiles/nonconvex_rings.dir/nonconvex_rings.cpp.o.d"
  "nonconvex_rings"
  "nonconvex_rings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonconvex_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
