# Empty compiler generated dependencies file for nonconvex_rings.
# This may be replaced when dependencies are built.
