
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/matlab_like.cpp" "src/CMakeFiles/fastsc.dir/baseline/matlab_like.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/baseline/matlab_like.cpp.o.d"
  "/root/repo/src/baseline/python_like.cpp" "src/CMakeFiles/fastsc.dir/baseline/python_like.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/baseline/python_like.cpp.o.d"
  "/root/repo/src/blas/dblas.cpp" "src/CMakeFiles/fastsc.dir/blas/dblas.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/blas/dblas.cpp.o.d"
  "/root/repo/src/blas/hblas.cpp" "src/CMakeFiles/fastsc.dir/blas/hblas.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/blas/hblas.cpp.o.d"
  "/root/repo/src/common/buffer.cpp" "src/CMakeFiles/fastsc.dir/common/buffer.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/common/buffer.cpp.o.d"
  "/root/repo/src/common/cli.cpp" "src/CMakeFiles/fastsc.dir/common/cli.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/common/cli.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/fastsc.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/common/log.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/fastsc.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stage_clock.cpp" "src/CMakeFiles/fastsc.dir/common/stage_clock.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/common/stage_clock.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/fastsc.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/common/table.cpp.o.d"
  "/root/repo/src/common/thread_pool.cpp" "src/CMakeFiles/fastsc.dir/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/common/thread_pool.cpp.o.d"
  "/root/repo/src/core/bisection.cpp" "src/CMakeFiles/fastsc.dir/core/bisection.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/core/bisection.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/fastsc.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/core/report.cpp.o.d"
  "/root/repo/src/core/spectral.cpp" "src/CMakeFiles/fastsc.dir/core/spectral.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/core/spectral.cpp.o.d"
  "/root/repo/src/data/dti.cpp" "src/CMakeFiles/fastsc.dir/data/dti.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/data/dti.cpp.o.d"
  "/root/repo/src/data/io.cpp" "src/CMakeFiles/fastsc.dir/data/io.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/data/io.cpp.o.d"
  "/root/repo/src/data/sbm.cpp" "src/CMakeFiles/fastsc.dir/data/sbm.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/data/sbm.cpp.o.d"
  "/root/repo/src/data/social.cpp" "src/CMakeFiles/fastsc.dir/data/social.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/data/social.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/CMakeFiles/fastsc.dir/device/device.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/device/device.cpp.o.d"
  "/root/repo/src/device/transfer_model.cpp" "src/CMakeFiles/fastsc.dir/device/transfer_model.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/device/transfer_model.cpp.o.d"
  "/root/repo/src/graph/build.cpp" "src/CMakeFiles/fastsc.dir/graph/build.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/graph/build.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/fastsc.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/grid_index.cpp" "src/CMakeFiles/fastsc.dir/graph/grid_index.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/graph/grid_index.cpp.o.d"
  "/root/repo/src/graph/laplacian.cpp" "src/CMakeFiles/fastsc.dir/graph/laplacian.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/graph/laplacian.cpp.o.d"
  "/root/repo/src/graph/similarity.cpp" "src/CMakeFiles/fastsc.dir/graph/similarity.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/graph/similarity.cpp.o.d"
  "/root/repo/src/kmeans/kmeans.cpp" "src/CMakeFiles/fastsc.dir/kmeans/kmeans.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/kmeans/kmeans.cpp.o.d"
  "/root/repo/src/kmeans/lloyd.cpp" "src/CMakeFiles/fastsc.dir/kmeans/lloyd.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/kmeans/lloyd.cpp.o.d"
  "/root/repo/src/kmeans/seeding.cpp" "src/CMakeFiles/fastsc.dir/kmeans/seeding.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/kmeans/seeding.cpp.o.d"
  "/root/repo/src/lanczos/dense_eig.cpp" "src/CMakeFiles/fastsc.dir/lanczos/dense_eig.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/lanczos/dense_eig.cpp.o.d"
  "/root/repo/src/lanczos/irlm.cpp" "src/CMakeFiles/fastsc.dir/lanczos/irlm.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/lanczos/irlm.cpp.o.d"
  "/root/repo/src/lanczos/rci.cpp" "src/CMakeFiles/fastsc.dir/lanczos/rci.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/lanczos/rci.cpp.o.d"
  "/root/repo/src/lanczos/tridiag_eig.cpp" "src/CMakeFiles/fastsc.dir/lanczos/tridiag_eig.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/lanczos/tridiag_eig.cpp.o.d"
  "/root/repo/src/metrics/cut.cpp" "src/CMakeFiles/fastsc.dir/metrics/cut.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/metrics/cut.cpp.o.d"
  "/root/repo/src/metrics/external.cpp" "src/CMakeFiles/fastsc.dir/metrics/external.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/metrics/external.cpp.o.d"
  "/root/repo/src/solvers/cg.cpp" "src/CMakeFiles/fastsc.dir/solvers/cg.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/solvers/cg.cpp.o.d"
  "/root/repo/src/solvers/shift_invert.cpp" "src/CMakeFiles/fastsc.dir/solvers/shift_invert.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/solvers/shift_invert.cpp.o.d"
  "/root/repo/src/solvers/subspace_iteration.cpp" "src/CMakeFiles/fastsc.dir/solvers/subspace_iteration.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/solvers/subspace_iteration.cpp.o.d"
  "/root/repo/src/sparse/bsr.cpp" "src/CMakeFiles/fastsc.dir/sparse/bsr.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/sparse/bsr.cpp.o.d"
  "/root/repo/src/sparse/convert.cpp" "src/CMakeFiles/fastsc.dir/sparse/convert.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/sparse/convert.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/CMakeFiles/fastsc.dir/sparse/coo.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csc.cpp" "src/CMakeFiles/fastsc.dir/sparse/csc.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/sparse/csc.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/fastsc.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/ops.cpp" "src/CMakeFiles/fastsc.dir/sparse/ops.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/sparse/ops.cpp.o.d"
  "/root/repo/src/sparse/spmv.cpp" "src/CMakeFiles/fastsc.dir/sparse/spmv.cpp.o" "gcc" "src/CMakeFiles/fastsc.dir/sparse/spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
