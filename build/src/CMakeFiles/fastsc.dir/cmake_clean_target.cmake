file(REMOVE_RECURSE
  "libfastsc.a"
)
