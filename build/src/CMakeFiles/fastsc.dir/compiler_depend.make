# Empty compiler generated dependencies file for fastsc.
# This may be replaced when dependencies are built.
