file(REMOVE_RECURSE
  "CMakeFiles/test_dblas.dir/test_dblas.cpp.o"
  "CMakeFiles/test_dblas.dir/test_dblas.cpp.o.d"
  "test_dblas"
  "test_dblas.pdb"
  "test_dblas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
