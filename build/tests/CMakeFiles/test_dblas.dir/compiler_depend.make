# Empty compiler generated dependencies file for test_dblas.
# This may be replaced when dependencies are built.
