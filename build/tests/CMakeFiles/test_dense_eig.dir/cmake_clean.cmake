file(REMOVE_RECURSE
  "CMakeFiles/test_dense_eig.dir/test_dense_eig.cpp.o"
  "CMakeFiles/test_dense_eig.dir/test_dense_eig.cpp.o.d"
  "test_dense_eig"
  "test_dense_eig.pdb"
  "test_dense_eig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dense_eig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
