# Empty compiler generated dependencies file for test_dense_eig.
# This may be replaced when dependencies are built.
