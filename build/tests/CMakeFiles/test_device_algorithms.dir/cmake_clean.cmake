file(REMOVE_RECURSE
  "CMakeFiles/test_device_algorithms.dir/test_device_algorithms.cpp.o"
  "CMakeFiles/test_device_algorithms.dir/test_device_algorithms.cpp.o.d"
  "test_device_algorithms"
  "test_device_algorithms.pdb"
  "test_device_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
