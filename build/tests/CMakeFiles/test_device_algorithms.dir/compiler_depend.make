# Empty compiler generated dependencies file for test_device_algorithms.
# This may be replaced when dependencies are built.
