file(REMOVE_RECURSE
  "CMakeFiles/test_dti.dir/test_dti.cpp.o"
  "CMakeFiles/test_dti.dir/test_dti.cpp.o.d"
  "test_dti"
  "test_dti.pdb"
  "test_dti[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
