# Empty compiler generated dependencies file for test_dti.
# This may be replaced when dependencies are built.
