file(REMOVE_RECURSE
  "CMakeFiles/test_graph_build.dir/test_graph_build.cpp.o"
  "CMakeFiles/test_graph_build.dir/test_graph_build.cpp.o.d"
  "test_graph_build"
  "test_graph_build.pdb"
  "test_graph_build[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
