# Empty dependencies file for test_graph_build.
# This may be replaced when dependencies are built.
