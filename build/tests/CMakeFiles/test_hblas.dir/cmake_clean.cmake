file(REMOVE_RECURSE
  "CMakeFiles/test_hblas.dir/test_hblas.cpp.o"
  "CMakeFiles/test_hblas.dir/test_hblas.cpp.o.d"
  "test_hblas"
  "test_hblas.pdb"
  "test_hblas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
