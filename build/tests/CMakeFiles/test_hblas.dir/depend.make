# Empty dependencies file for test_hblas.
# This may be replaced when dependencies are built.
