file(REMOVE_RECURSE
  "CMakeFiles/test_laplacian.dir/test_laplacian.cpp.o"
  "CMakeFiles/test_laplacian.dir/test_laplacian.cpp.o.d"
  "test_laplacian"
  "test_laplacian.pdb"
  "test_laplacian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_laplacian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
