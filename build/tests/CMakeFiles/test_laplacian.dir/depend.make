# Empty dependencies file for test_laplacian.
# This may be replaced when dependencies are built.
