# Empty compiler generated dependencies file for test_lloyd.
# This may be replaced when dependencies are built.
