file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_cut.dir/test_metrics_cut.cpp.o"
  "CMakeFiles/test_metrics_cut.dir/test_metrics_cut.cpp.o.d"
  "test_metrics_cut"
  "test_metrics_cut.pdb"
  "test_metrics_cut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_cut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
