# Empty dependencies file for test_metrics_cut.
# This may be replaced when dependencies are built.
