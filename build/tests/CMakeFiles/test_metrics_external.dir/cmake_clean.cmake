file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_external.dir/test_metrics_external.cpp.o"
  "CMakeFiles/test_metrics_external.dir/test_metrics_external.cpp.o.d"
  "test_metrics_external"
  "test_metrics_external.pdb"
  "test_metrics_external[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
