# Empty dependencies file for test_metrics_external.
# This may be replaced when dependencies are built.
