file(REMOVE_RECURSE
  "CMakeFiles/test_rci.dir/test_rci.cpp.o"
  "CMakeFiles/test_rci.dir/test_rci.cpp.o.d"
  "test_rci"
  "test_rci.pdb"
  "test_rci[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
