# Empty dependencies file for test_rci.
# This may be replaced when dependencies are built.
