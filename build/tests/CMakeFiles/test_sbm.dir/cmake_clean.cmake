file(REMOVE_RECURSE
  "CMakeFiles/test_sbm.dir/test_sbm.cpp.o"
  "CMakeFiles/test_sbm.dir/test_sbm.cpp.o.d"
  "test_sbm"
  "test_sbm.pdb"
  "test_sbm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
