# Empty compiler generated dependencies file for test_sbm.
# This may be replaced when dependencies are built.
