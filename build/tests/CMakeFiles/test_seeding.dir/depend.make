# Empty dependencies file for test_seeding.
# This may be replaced when dependencies are built.
