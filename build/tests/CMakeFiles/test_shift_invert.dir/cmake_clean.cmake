file(REMOVE_RECURSE
  "CMakeFiles/test_shift_invert.dir/test_shift_invert.cpp.o"
  "CMakeFiles/test_shift_invert.dir/test_shift_invert.cpp.o.d"
  "test_shift_invert"
  "test_shift_invert.pdb"
  "test_shift_invert[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shift_invert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
