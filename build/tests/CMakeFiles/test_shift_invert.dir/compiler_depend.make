# Empty compiler generated dependencies file for test_shift_invert.
# This may be replaced when dependencies are built.
