# Empty compiler generated dependencies file for test_sparse_ops.
# This may be replaced when dependencies are built.
