file(REMOVE_RECURSE
  "CMakeFiles/test_spectral_pipeline.dir/test_spectral_pipeline.cpp.o"
  "CMakeFiles/test_spectral_pipeline.dir/test_spectral_pipeline.cpp.o.d"
  "test_spectral_pipeline"
  "test_spectral_pipeline.pdb"
  "test_spectral_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectral_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
