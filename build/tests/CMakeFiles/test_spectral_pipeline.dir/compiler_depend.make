# Empty compiler generated dependencies file for test_spectral_pipeline.
# This may be replaced when dependencies are built.
