file(REMOVE_RECURSE
  "CMakeFiles/test_stage_clock.dir/test_stage_clock.cpp.o"
  "CMakeFiles/test_stage_clock.dir/test_stage_clock.cpp.o.d"
  "test_stage_clock"
  "test_stage_clock.pdb"
  "test_stage_clock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stage_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
