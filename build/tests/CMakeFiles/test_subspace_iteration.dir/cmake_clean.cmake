file(REMOVE_RECURSE
  "CMakeFiles/test_subspace_iteration.dir/test_subspace_iteration.cpp.o"
  "CMakeFiles/test_subspace_iteration.dir/test_subspace_iteration.cpp.o.d"
  "test_subspace_iteration"
  "test_subspace_iteration.pdb"
  "test_subspace_iteration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_subspace_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
