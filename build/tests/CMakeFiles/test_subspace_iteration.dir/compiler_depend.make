# Empty compiler generated dependencies file for test_subspace_iteration.
# This may be replaced when dependencies are built.
