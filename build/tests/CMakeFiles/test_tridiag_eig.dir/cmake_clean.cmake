file(REMOVE_RECURSE
  "CMakeFiles/test_tridiag_eig.dir/test_tridiag_eig.cpp.o"
  "CMakeFiles/test_tridiag_eig.dir/test_tridiag_eig.cpp.o.d"
  "test_tridiag_eig"
  "test_tridiag_eig.pdb"
  "test_tridiag_eig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tridiag_eig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
