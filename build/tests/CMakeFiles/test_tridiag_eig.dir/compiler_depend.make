# Empty compiler generated dependencies file for test_tridiag_eig.
# This may be replaced when dependencies are built.
