// Brain parcellation: the paper's motivating DTI workload end-to-end.
//
//   $ ./brain_parcellation [--side 16] [--parcels 24] [--backend device]
//
// Generates a DTI-like voxel volume (3-D lattice, 90-dim connectivity
// profiles, epsilon edge list — see src/data/dti.h for the substitution
// from the NKI dataset), clusters the voxels by connectivity-profile
// cross-correlation exactly as the paper's Step 1-4 pipeline does, and
// reports recovery quality against the planted parcellation plus per-stage
// timings and device-transfer accounting.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "core/spectral.h"
#include "data/dti.h"
#include "metrics/external.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli("brain_parcellation: cluster a DTI-like brain volume");
  const bool run = cli.parse(argc, argv);
  const auto side = cli.get_int("side", 16, "voxel lattice side");
  const auto parcels = cli.get_int("parcels", 24, "number of parcels (k)");
  const std::string backend =
      cli.get_string("backend", "device", "device | matlab | python");
  const auto seed = cli.get_int("seed", 42, "random seed");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  data::DtiParams params;
  params.nx = params.ny = params.nz = side;
  params.profile_dim = 90;
  params.num_parcels = parcels;
  params.epsilon = 2.0;  // 4mm neighborhood over 2mm voxels
  params.noise = 0.25;
  params.seed = static_cast<std::uint64_t>(seed);

  std::printf("generating %lld^3 voxel volume with %lld planted parcels...\n",
              static_cast<long long>(side), static_cast<long long>(parcels));
  const data::DtiVolume vol = data::make_dti_like(params);
  std::printf("  %lld voxels, %lld-dim profiles, %lld epsilon edges\n",
              static_cast<long long>(vol.n), static_cast<long long>(vol.d),
              static_cast<long long>(vol.edges.size()));

  core::SpectralConfig cfg;
  cfg.num_clusters = parcels;
  cfg.backend = backend == "matlab"   ? core::Backend::kMatlabLike
                : backend == "python" ? core::Backend::kPythonLike
                                      : core::Backend::kDevice;
  cfg.similarity.measure = graph::SimilarityMeasure::kCrossCorrelation;
  cfg.seed = static_cast<std::uint64_t>(seed);

  std::printf("running the %s pipeline...\n",
              core::backend_name(cfg.backend).c_str());
  const core::SpectralResult result = core::spectral_cluster_points(
      vol.profiles.data(), vol.n, vol.d, vol.edges, cfg);

  TextTable stages("Per-stage wall time");
  stages.header({"stage", "seconds"});
  for (const auto& s : result.clock.stages()) {
    stages.row({s, TextTable::fmt_seconds(result.clock.seconds(s))});
  }
  stages.print();

  TextTable quality("Parcellation quality vs planted truth");
  quality.header({"metric", "value"});
  quality.row({"ARI", TextTable::fmt(metrics::adjusted_rand_index(
                                         result.labels, vol.labels),
                                     4)});
  quality.row({"NMI", TextTable::fmt(metrics::normalized_mutual_information(
                                         result.labels, vol.labels),
                                     4)});
  quality.row(
      {"purity", TextTable::fmt(metrics::purity(result.labels, vol.labels), 4)});
  quality.row({"eigensolver converged", result.eig_converged ? "yes" : "no"});
  quality.row({"k-means iterations",
               std::to_string(result.kmeans_iterations)});
  quality.print();

  if (cfg.backend == core::Backend::kDevice) {
    const auto& c = result.device_counters;
    TextTable dev("Device accounting (simulated CUDA runtime)");
    dev.header({"counter", "value"});
    dev.row({"kernel launches", std::to_string(c.kernel_launches)});
    dev.row({"H2D bytes", std::to_string(c.bytes_h2d)});
    dev.row({"D2H bytes", std::to_string(c.bytes_d2h)});
    dev.row({"modeled PCIe seconds",
             TextTable::fmt_seconds(c.modeled_transfer_seconds)});
    dev.print();
  }
  return 0;
}
