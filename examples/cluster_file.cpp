// cluster_file: command-line spectral clustering over files.
//
//   $ ./cluster_file --input graph.txt --k 10 --output labels.txt
//   $ ./cluster_file --input matrix.mtx --format mtx --k 50 --backend python
//   $ ./cluster_file --input points.txt --format points --k 8 --knn 10
//
// The downstream-user entry point: reads a graph (SNAP edge list or Matrix
// Market) or a dense point set, runs the pipeline with the chosen backend,
// writes one label per line, and prints stage times plus basic quality
// numbers (Ncut; ARI if --truth is given).
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/precision.h"
#include "common/table.h"
#include "core/bisection.h"
#include "core/spectral.h"
#include "data/io.h"
#include "graph/build.h"
#include "graph/components.h"
#include "metrics/cut.h"
#include "metrics/external.h"
#include "sparse/convert.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli("cluster_file: spectral clustering for graph / point files");
  const bool run = cli.parse(argc, argv);
  const std::string input = cli.get_string("input", "", "input file path");
  const std::string format = cli.get_string(
      "format", "edges", "edges (SNAP edge list) | mtx (MatrixMarket) | "
                         "points (dense rows)");
  const auto k = cli.get_int("k", 8, "number of clusters");
  const std::string backend_name_flag =
      cli.get_string("backend", "device", "device | matlab | python");
  const std::string method = cli.get_string(
      "method", "kway", "kway (paper pipeline) | bisection (recursive)");
  const std::string output =
      cli.get_string("output", "labels.txt", "output labels file");
  const std::string truth_file =
      cli.get_string("truth", "", "optional ground-truth labels file");
  const auto knn = cli.get_int(
      "knn", 10, "neighbors for the kNN graph (points format only)");
  const std::string measure = cli.get_string(
      "measure", "expdecay", "similarity for points: cosine | crosscorr | "
                             "expdecay");
  const auto sigma = cli.get_double("sigma", 1.0, "RBF bandwidth (expdecay)");
  const std::string precision = cli.get_string(
      "precision", "fp64",
      "storage precision ladder: fp64 | fp32 | bf16 | auto, with optional "
      "per-stage overrides, e.g. 'fp32,kmeans=fp64' (kway method only)");
  const auto seed = cli.get_int("seed", 42, "random seed");
  const bool keep_largest = cli.get_bool(
      "largest-component", true,
      "cluster only the largest connected component (recommended)");
  if (!run || input.empty()) {
    cli.print_help();
    return input.empty() && run ? 1 : 0;
  }
  cli.check_unknown();

  // --- load ---------------------------------------------------------------
  sparse::Coo w;
  if (format == "edges") {
    w = data::read_edge_list(input, /*symmetrize=*/true);
  } else if (format == "mtx") {
    w = data::read_matrix_market(input);
  } else if (format == "points") {
    index_t rows = 0, cols = 0;
    const std::vector<real> pts = data::read_points(input, rows, cols);
    std::printf("read %lld points of dimension %lld\n",
                static_cast<long long>(rows), static_cast<long long>(cols));
    graph::SimilarityParams sp;
    sp.measure = graph::parse_measure(measure);
    sp.sigma = sigma;
    w = graph::build_knn_graph(pts.data(), rows, cols, knn, sp);
  } else {
    std::fprintf(stderr, "unknown --format %s\n", format.c_str());
    return 1;
  }
  std::printf("graph: %lld nodes, %lld stored entries\n",
              static_cast<long long>(w.rows),
              static_cast<long long>(w.nnz()));

  // --- component handling ---------------------------------------------------
  std::vector<index_t> old_of_new;
  const graph::ComponentInfo comp = graph::connected_components(w);
  if (comp.count > 1) {
    std::printf("note: %lld connected components",
                static_cast<long long>(comp.count));
    if (keep_largest) {
      w = graph::largest_component(w, old_of_new);
      std::printf("; clustering the largest (%lld nodes)",
                  static_cast<long long>(w.rows));
    }
    std::printf("\n");
  }
  FASTSC_CHECK(k <= w.rows, "k exceeds the (component) node count");

  // --- run ------------------------------------------------------------------
  std::vector<index_t> labels;
  StageClock clock;
  bool converged = true;
  if (method == "bisection") {
    core::BisectionConfig bcfg;
    bcfg.num_clusters = k;
    bcfg.seed = static_cast<std::uint64_t>(seed);
    core::BisectionResult result = core::spectral_bisection(w, bcfg);
    labels = std::move(result.labels);
    clock = result.clock;
    converged = result.all_converged;
  } else {
    core::SpectralConfig cfg;
    cfg.num_clusters = k;
    cfg.backend = backend_name_flag == "matlab"
                      ? core::Backend::kMatlabLike
                  : backend_name_flag == "python" ? core::Backend::kPythonLike
                                                  : core::Backend::kDevice;
    cfg.seed = static_cast<std::uint64_t>(seed);
    FASTSC_CHECK(parse_precision_policy(precision, cfg.precision),
                 "bad --precision spec: " + precision);
    core::SpectralResult result = core::spectral_cluster_graph(w, cfg);
    labels = std::move(result.labels);
    clock = result.clock;
    converged = result.eig_converged;
  }

  // --- report + write -------------------------------------------------------
  TextTable table("Result");
  table.header({"metric", "value"});
  for (const auto& stage : clock.stages()) {
    table.row({stage + " seconds",
               TextTable::fmt_seconds(clock.seconds(stage))});
  }
  const sparse::Csr w_csr = sparse::coo_to_csr(w);
  table.row({"Ncut",
             TextTable::fmt(metrics::normalized_cut(w_csr, labels, k), 4)});
  table.row({"eigensolver converged", converged ? "yes" : "no"});

  std::vector<index_t> labels_full;
  if (!old_of_new.empty()) {
    // Map back to original vertex ids; vertices outside the clustered
    // component get the sentinel label k.
    labels_full.assign(static_cast<usize>(comp.component_of.size()), k);
    for (usize i = 0; i < old_of_new.size(); ++i) {
      labels_full[static_cast<usize>(old_of_new[i])] = labels[i];
    }
  } else {
    labels_full = labels;
  }

  if (!truth_file.empty()) {
    const std::vector<index_t> truth = data::read_labels(truth_file);
    if (truth.size() == labels_full.size()) {
      table.row({"ARI vs truth",
                 TextTable::fmt(
                     metrics::adjusted_rand_index(labels_full, truth), 4)});
      table.row({"NMI vs truth",
                 TextTable::fmt(metrics::normalized_mutual_information(
                                    labels_full, truth),
                                4)});
    } else {
      std::fprintf(stderr, "truth size mismatch: %zu vs %zu\n", truth.size(),
                   labels_full.size());
    }
  }
  table.print();

  data::write_labels(output, labels_full);
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
