// Community detection on a social-network-style graph (the paper's FB/DBLP
// mode: the input is a graph, so the pipeline starts at Step 2).
//
//   $ ./community_detection [--n 3000] [--communities 20]
//   $ ./community_detection --edges path/to/snap_edgelist.txt --k 10
//
// Either generates a calibrated FB-like planted-community graph or reads a
// SNAP-format edge list, clusters it with all three backends, and compares
// per-stage times and (for generated graphs) recovery quality — a miniature
// version of the paper's Table IV/VI experiments.
#include <cstdio>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "core/spectral.h"
#include "data/io.h"
#include "data/social.h"
#include "graph/build.h"
#include "metrics/cut.h"
#include "metrics/external.h"
#include "sparse/convert.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli("community_detection: spectral communities in a social graph");
  const bool run = cli.parse(argc, argv);
  const auto n = cli.get_int("n", 3000, "nodes (generator mode)");
  const auto communities =
      cli.get_int("communities", 20, "planted communities (generator mode)");
  auto k = cli.get_int("k", 0, "clusters to extract (0 = communities)");
  const std::string edge_file =
      cli.get_string("edges", "", "SNAP edge-list file (optional)");
  const auto seed = cli.get_int("seed", 42, "random seed");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  sparse::Coo w;
  std::vector<index_t> truth;
  bool have_truth = false;
  if (!edge_file.empty()) {
    std::printf("reading %s...\n", edge_file.c_str());
    w = data::read_edge_list(edge_file, /*symmetrize=*/true);
    if (k == 0) k = 10;
  } else {
    const data::SocialParams params = data::fb_like_params(
        n, communities, static_cast<std::uint64_t>(seed));
    data::SbmGraph g = data::make_social_graph(params);
    w = std::move(g.w);
    truth = std::move(g.labels);
    have_truth = true;
    if (k == 0) k = communities;
  }
  {
    std::vector<index_t> old_of_new;
    sparse::Coo pruned = graph::remove_isolated(w, old_of_new);
    if (pruned.rows != w.rows) {
      std::printf("removed %lld isolated vertices\n",
                  static_cast<long long>(w.rows - pruned.rows));
      if (have_truth) {
        std::vector<index_t> kept;
        for (index_t old : old_of_new) {
          kept.push_back(truth[static_cast<usize>(old)]);
        }
        truth = std::move(kept);
      }
      w = std::move(pruned);
    }
  }
  std::printf("graph: %lld nodes, %lld stored entries, clustering into %lld\n",
              static_cast<long long>(w.rows),
              static_cast<long long>(w.nnz()), static_cast<long long>(k));

  const sparse::Csr w_csr = sparse::coo_to_csr(w);
  TextTable table("Community detection results");
  std::vector<std::string> header{"backend", "eigensolver/s", "kmeans/s",
                                  "Ncut"};
  if (have_truth) {
    header.push_back("ARI");
    header.push_back("NMI");
  }
  table.header(std::move(header));

  for (const core::Backend b :
       {core::Backend::kDevice, core::Backend::kMatlabLike,
        core::Backend::kPythonLike}) {
    core::SpectralConfig cfg;
    cfg.num_clusters = k;
    cfg.backend = b;
    cfg.seed = static_cast<std::uint64_t>(seed);
    std::printf("running %s backend...\n", core::backend_name(b).c_str());
    const core::SpectralResult r = core::spectral_cluster_graph(w, cfg);
    std::vector<std::string> row{
        core::backend_name(b),
        TextTable::fmt_seconds(r.clock.seconds(core::kStageEigensolver)),
        TextTable::fmt_seconds(r.clock.seconds(core::kStageKmeans)),
        TextTable::fmt(metrics::normalized_cut(w_csr, r.labels, k), 4)};
    if (have_truth) {
      row.push_back(
          TextTable::fmt(metrics::adjusted_rand_index(r.labels, truth), 4));
      row.push_back(TextTable::fmt(
          metrics::normalized_mutual_information(r.labels, truth), 4));
    }
    table.row(std::move(row));
  }
  table.print();
  return 0;
}
