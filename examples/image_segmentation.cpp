// Image segmentation via normalized cuts (Shi & Malik — reference [18] of
// the paper and the classic spectral clustering application).
//
//   $ ./image_segmentation [--width 96] [--height 64] [--segments 4]
//
// Synthesizes a grayscale test image (distinct-intensity regions + noise),
// builds the pixel-grid similarity graph with the exponential-decay kernel
// on intensity and spatial distance, runs the pipeline, and writes
// segmentation.pgm / original.pgm for visual inspection.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/spectral.h"
#include "metrics/external.h"
#include "sparse/coo.h"

namespace {

using namespace fastsc;

void write_pgm(const std::string& path, const std::vector<real>& img,
               index_t width, index_t height, real lo, real hi) {
  std::ofstream out(path, std::ios::binary);
  out << "P5\n" << width << " " << height << "\n255\n";
  for (real v : img) {
    const real t = (v - lo) / (hi - lo);
    const int byte = std::max(0, std::min(255, static_cast<int>(t * 255)));
    out.put(static_cast<char>(byte));
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("image_segmentation: normalized-cut segmentation of a "
                "synthetic grayscale image");
  const bool run = cli.parse(argc, argv);
  const auto width = cli.get_int("width", 96, "image width");
  const auto height = cli.get_int("height", 64, "image height");
  const auto segments = cli.get_int("segments", 4, "segments (k)");
  const auto seed = cli.get_int("seed", 42, "random seed");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  const index_t n = width * height;
  Rng rng(static_cast<std::uint64_t>(seed));

  // Synthetic image: `segments` vertical-ish bands with distinct
  // intensities, wavy borders, plus noise — plus ground truth per pixel.
  std::vector<real> img(static_cast<usize>(n));
  std::vector<index_t> truth(static_cast<usize>(n));
  for (index_t y = 0; y < height; ++y) {
    for (index_t x = 0; x < width; ++x) {
      const real wave = 4.0 * std::sin(0.15 * static_cast<real>(y));
      const auto band = std::min<index_t>(
          segments - 1,
          static_cast<index_t>((static_cast<real>(x) + wave) /
                               (static_cast<real>(width) /
                                static_cast<real>(segments))));
      const auto b = std::max<index_t>(0, band);
      truth[static_cast<usize>(y * width + x)] = b;
      img[static_cast<usize>(y * width + x)] =
          static_cast<real>(b) / static_cast<real>(segments - 1) +
          0.06 * rng.normal();
    }
  }

  // Pixel feature = (intensity, x/scale, y/scale): the RBF kernel on this
  // 3-vector is the classic intensity+proximity affinity.
  const real spatial_scale = 24.0;
  std::vector<real> features(static_cast<usize>(n) * 3);
  for (index_t y = 0; y < height; ++y) {
    for (index_t x = 0; x < width; ++x) {
      const index_t i = y * width + x;
      features[static_cast<usize>(i * 3 + 0)] =
          img[static_cast<usize>(i)] * 4.0;
      features[static_cast<usize>(i * 3 + 1)] =
          static_cast<real>(x) / spatial_scale;
      features[static_cast<usize>(i * 3 + 2)] =
          static_cast<real>(y) / spatial_scale;
    }
  }

  // Edges: 8-connected pixel lattice.
  graph::EdgeList edges;
  for (index_t y = 0; y < height; ++y) {
    for (index_t x = 0; x < width; ++x) {
      const index_t i = y * width + x;
      if (x + 1 < width) edges.push(i, i + 1);
      if (y + 1 < height) edges.push(i, i + width);
      if (x + 1 < width && y + 1 < height) edges.push(i, i + width + 1);
      if (x > 0 && y + 1 < height) edges.push(i, i + width - 1);
    }
  }

  core::SpectralConfig cfg;
  cfg.num_clusters = segments;
  cfg.similarity.measure = graph::SimilarityMeasure::kExpDecay;
  cfg.similarity.sigma = 0.3;
  cfg.seed = static_cast<std::uint64_t>(seed);

  std::printf("segmenting %lldx%lld image (%lld pixels, %lld edges)...\n",
              static_cast<long long>(width), static_cast<long long>(height),
              static_cast<long long>(n),
              static_cast<long long>(edges.size()));
  const core::SpectralResult result = core::spectral_cluster_points(
      features.data(), n, 3, edges, cfg);

  const real ari = metrics::adjusted_rand_index(result.labels, truth);
  std::printf("done in %.3fs (similarity %.3fs, eigensolver %.3fs, "
              "k-means %.3fs)\n",
              result.clock.total_seconds(),
              result.clock.seconds(core::kStageSimilarity),
              result.clock.seconds(core::kStageEigensolver),
              result.clock.seconds(core::kStageKmeans));
  std::printf("segment recovery ARI vs planted bands: %.4f\n", ari);

  std::vector<real> seg(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    seg[static_cast<usize>(i)] =
        static_cast<real>(result.labels[static_cast<usize>(i)]);
  }
  write_pgm("original.pgm", img, width, height, -0.2, 1.2);
  write_pgm("segmentation.pgm", seg, width, height, 0,
            static_cast<real>(segments - 1));
  std::printf("wrote original.pgm and segmentation.pgm\n");
  return ari > 0.5 ? 0 : 1;
}
