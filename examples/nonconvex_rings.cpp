// Non-convex clusters: concentric rings, the textbook case where spectral
// clustering succeeds and plain k-means fails (paper §I: spectral clustering
// "is able to discover non-convex regions which may not be detected by
// other clustering algorithms").
//
//   $ ./nonconvex_rings [--points 400]
//
// Draws points on two concentric rings, clusters them (a) directly with
// k-means on the coordinates and (b) with the spectral pipeline on an
// threshold similarity graph, and prints the ARI of each vs the ring labels.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/spectral.h"
#include "graph/build.h"
#include "kmeans/lloyd.h"
#include "metrics/external.h"

int main(int argc, char** argv) {
  using namespace fastsc;
  CliParser cli("nonconvex_rings: spectral clustering vs plain k-means on "
                "concentric rings");
  const bool run = cli.parse(argc, argv);
  const auto points = cli.get_int("points", 400, "points per ring");
  const auto seed = cli.get_int("seed", 42, "random seed");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();

  const index_t n = 2 * points;
  std::vector<real> xy(static_cast<usize>(n) * 2);
  std::vector<index_t> truth(static_cast<usize>(n));
  Rng rng(static_cast<std::uint64_t>(seed));
  for (index_t i = 0; i < n; ++i) {
    const index_t ring = i < points ? 0 : 1;
    const real radius = ring == 0 ? 1.0 : 3.0;
    const real angle = rng.uniform(0, 2 * M_PI);
    xy[static_cast<usize>(i * 2 + 0)] =
        (radius + 0.1 * rng.normal()) * std::cos(angle);
    xy[static_cast<usize>(i * 2 + 1)] =
        (radius + 0.1 * rng.normal()) * std::sin(angle);
    truth[static_cast<usize>(i)] = ring;
  }

  // (a) Plain k-means on raw coordinates: centroids cannot separate rings.
  kmeans::KmeansConfig kc;
  kc.k = 2;
  kc.seed = static_cast<std::uint64_t>(seed);
  const auto plain = kmeans::kmeans_lloyd_host(xy.data(), n, 2, kc);
  const real ari_plain = metrics::adjusted_rand_index(plain.labels, truth);

  // (b) Spectral clustering on a lambda-threshold similarity graph (paper
  // §IV.A): the RBF kernel makes within-ring neighbors strongly connected
  // and cross-ring pairs exponentially weak — but still nonzero, keeping
  // the graph connected so the Fiedler vector cleanly separates the rings.
  // (A hard epsilon graph would split into two components, and a Krylov
  // eigensolver cannot resolve the resulting multiplicity-2 eigenvalue at
  // 1 from a single start vector; see graph::connected_components.)
  graph::SimilarityParams sp;
  sp.measure = graph::SimilarityMeasure::kExpDecay;
  sp.sigma = 0.5;
  const sparse::Coo w = graph::build_threshold_graph(xy.data(), n, 2,
                                                     /*lambda=*/1e-9, sp);
  core::SpectralConfig cfg;
  cfg.num_clusters = 2;
  cfg.seed = static_cast<std::uint64_t>(seed);
  const auto spectral = core::spectral_cluster_graph(w, cfg);
  const real ari_spectral =
      metrics::adjusted_rand_index(spectral.labels, truth);

  std::printf("%lld points on two concentric rings (radii 1 and 3)\n",
              static_cast<long long>(n));
  std::printf("  plain k-means on coordinates:      ARI = %.4f\n", ari_plain);
  std::printf("  spectral clustering (this paper):  ARI = %.4f\n",
              ari_spectral);
  std::printf("\nspectral pipeline: eigensolver %.4fs, k-means %.4fs\n",
              spectral.clock.seconds(core::kStageEigensolver),
              spectral.clock.seconds(core::kStageKmeans));
  // Spectral must succeed where plain k-means fails.
  return (ari_spectral > 0.99 && ari_plain < 0.5) ? 0 : 1;
}
