// Quickstart: cluster a small set of 2-D points with the public API.
//
//   $ ./quickstart
//
// Generates three Gaussian blobs, connects points within an epsilon radius,
// runs the device-backend spectral clustering pipeline, and prints each
// point with its cluster.  This is the smallest end-to-end use of the
// library: points in -> labels out.
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "core/spectral.h"
#include "graph/build.h"

int main() {
  using namespace fastsc;

  // --- 1. Make some data: three 2-D blobs of 30 points each. -------------
  const index_t per_blob = 30, blobs = 3, d = 2;
  const index_t n = per_blob * blobs;
  std::vector<real> points(static_cast<usize>(n * d));
  Rng rng(7);
  const real centers[blobs][2] = {{0, 0}, {8, 0}, {4, 7}};
  for (index_t i = 0; i < n; ++i) {
    const index_t b = i / per_blob;
    points[static_cast<usize>(i * d + 0)] = centers[b][0] + 0.5 * rng.normal();
    points[static_cast<usize>(i * d + 1)] = centers[b][1] + 0.5 * rng.normal();
  }

  // --- 2. Candidate edges: all pairs within distance 2.5 (epsilon graph).
  // For 2-D points we can use the 3-D grid index with a zero z coordinate,
  // or simply enumerate pairs; n is tiny here.
  graph::EdgeList edges;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) {
      real dist2 = 0;
      for (index_t l = 0; l < d; ++l) {
        const real delta = points[static_cast<usize>(i * d + l)] -
                           points[static_cast<usize>(j * d + l)];
        dist2 += delta * delta;
      }
      if (dist2 <= 2.5 * 2.5) edges.push(i, j);
    }
  }

  // --- 3. Configure and run the pipeline. --------------------------------
  core::SpectralConfig cfg;
  cfg.num_clusters = blobs;
  cfg.backend = core::Backend::kDevice;  // the paper's hybrid scheme
  cfg.similarity.measure = graph::SimilarityMeasure::kExpDecay;
  cfg.similarity.sigma = 1.0;

  const core::SpectralResult result =
      core::spectral_cluster_points(points.data(), n, d, edges, cfg);

  // --- 4. Inspect the results. --------------------------------------------
  std::printf("clustered %lld points into %lld clusters\n",
              static_cast<long long>(result.n),
              static_cast<long long>(result.k));
  std::printf("eigenvalues of D^-1 W:");
  for (real lam : result.eigenvalues) std::printf(" %.4f", lam);
  std::printf("\nstage times:");
  for (const auto& stage : result.clock.stages()) {
    std::printf(" %s=%.4fs", stage.c_str(), result.clock.seconds(stage));
  }
  std::printf("\n\nfirst five points of each blob:\n");
  for (index_t b = 0; b < blobs; ++b) {
    for (index_t i = 0; i < 5; ++i) {
      const index_t idx = b * per_blob + i;
      std::printf("  point (%6.2f, %6.2f)  blob %lld -> cluster %lld\n",
                  points[static_cast<usize>(idx * d)],
                  points[static_cast<usize>(idx * d + 1)],
                  static_cast<long long>(b),
                  static_cast<long long>(result.labels[static_cast<usize>(idx)]));
    }
  }

  // Sanity: all points of one blob should share a label.
  index_t agreements = 0;
  for (index_t b = 0; b < blobs; ++b) {
    const index_t first = result.labels[static_cast<usize>(b * per_blob)];
    for (index_t i = 0; i < per_blob; ++i) {
      if (result.labels[static_cast<usize>(b * per_blob + i)] == first) {
        ++agreements;
      }
    }
  }
  std::printf("\nwithin-blob label agreement: %lld / %lld\n",
              static_cast<long long>(agreements), static_cast<long long>(n));
  return agreements == n ? 0 : 1;
}
