// Public service API: jobs and their results.
//
// The headers under include/fastsc/ are the stable surface of the serving
// layer (lib/CLI split): embedders include <fastsc/service.h> and never the
// internal src/ headers except through the pipeline types they already
// depend on (SpectralConfig, sparse::Coo, SpectralResult).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/spectral.h"
#include "obs/attribution.h"
#include "sparse/coo.h"

namespace fastsc {

using JobId = std::uint64_t;

/// Queue priority; higher priorities dispatch first, FIFO within a class.
enum class JobPriority { kLow = 0, kNormal = 1, kHigh = 2 };

/// Lifecycle of a submitted job.
enum class JobStatus {
  kQueued,      ///< admitted, waiting for an executor
  kRunning,     ///< an executor is solving it
  kCompleted,   ///< result available
  kFailed,      ///< the solve threw; JobResult::error has the message
  kCancelled,   ///< cancelled (explicitly or by its deadline)
  kOverloaded,  ///< rejected at admission (queue depth or arena quota)
};

[[nodiscard]] const char* job_status_name(JobStatus s);

/// One clustering request: a graph (symmetric nonnegative COO, both edge
/// directions stored) plus the pipeline configuration to solve it with.
struct Job {
  sparse::Coo graph;
  core::SpectralConfig config{};
  JobPriority priority = JobPriority::kNormal;

  /// Per-job deadline in wall milliseconds; 0 = no deadline.  Folded into
  /// the job's RunBudget (config.budget.total.wall_ms, when that is unset)
  /// and enforced by the job's own governor, independently of every other
  /// job in flight.
  double deadline_ms = 0;

  /// Warm-start hint: the graph fingerprint of a previously solved nearby
  /// graph (e.g. this graph before a delta-edge update).  When the cache
  /// still holds that entry's eigensolver checkpoint, the solve restores
  /// its Krylov basis instead of cold-starting.  0 = no hint; the service
  /// may still find a donor by config + dimension match.
  std::uint64_t warm_hint = 0;

  /// Free-form tag echoed into logs and trace spans.
  std::string tag;
};

/// Everything the service reports back for one job.
struct JobResult {
  JobId id = 0;
  JobStatus status = JobStatus::kQueued;

  /// The full pipeline result (labels, eigenvalues, stats); meaningful when
  /// status == kCompleted.  On a cache hit the labels/eigenvalues are the
  /// cached ones and the solve-time stats are zero.
  core::SpectralResult spectral{};

  bool cache_hit = false;      ///< served from the result cache
  bool warm_started = false;   ///< eigensolver warm-started from a donor

  std::uint64_t graph_fingerprint = 0;
  std::uint64_t config_fingerprint = 0;

  double queue_ms = 0;  ///< admission -> dispatch
  double solve_ms = 0;  ///< dispatch -> completion (0 on a cache hit)

  /// Per-site cost attribution of exactly this job's device work (kernel
  /// launches, transfers, modeled seconds, roofline utilization), collected
  /// from the job-local registry the executor binds around the solve.
  /// Empty on cache hits and rejections.
  std::vector<obs::SiteReport> attribution;

  /// Artifact paths when ServiceConfig::job_artifacts_dir is set ("" when
  /// not written): a Perfetto trace of this job and its attribution table.
  std::string trace_path;
  std::string attribution_path;

  /// what() of the failure when status == kFailed / kCancelled / rejection
  /// detail when status == kOverloaded.
  std::string error;
};

}  // namespace fastsc
