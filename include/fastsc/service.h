// Public service API: the long-lived clustering service.
//
// fastsc::Service turns the one-shot spectral_cluster_graph() pipeline into
// a serving layer (ROADMAP north star: heavy traffic, many concurrent
// requests):
//
//   * a priority job queue with admission control — depth and device-byte
//     quotas reject work the arena could not hold (JobStatus::kOverloaded)
//     instead of thrashing it;
//   * N executor threads running solves concurrently over the shared device
//     context and thread pool, each job under its *own* cancellation
//     governor (cancel::GovernorBindScope), so per-job deadlines and
//     cancel() affect exactly one job;
//   * a result cache keyed by (graph fingerprint, config fingerprint) with
//     byte-accounted LRU eviction — identical resubmissions return the
//     cached labels without solving;
//   * warm-start re-solves: a job whose graph is a small delta of a cached
//     one (Job::warm_hint) restores the cached eigensolver checkpoint and
//     converges in a fraction of the cold-start waves.
//
// All methods are thread-safe.  Metrics: service.* and cache.* counters in
// obs::metrics(), mirrored onto the trace when tracing is enabled.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fastsc/job.h"
#include "fastsc/service_config.h"

namespace fastsc::device {
class DeviceContext;
}  // namespace fastsc::device

namespace fastsc {

/// SLO histogram class for a priority ("low" / "normal" / "high"); the
/// service observes slo.latency_ms.<class> per job with this label.
[[nodiscard]] const char* job_class_name(JobPriority p);

/// Bucket edges (milliseconds) of the slo.* histograms the service records
/// (slo.latency_ms.<class>, slo.queue_ms, slo.solve_ms).  Exposed so
/// percentile readers (fastsc_serve --prom-out) look up the same
/// instruments the executors created.
[[nodiscard]] std::vector<double> slo_ms_edges();

/// Point-in-time service statistics (mirrors the service.* metrics).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_entries = 0;
  usize queued = 0;   ///< currently waiting
  usize running = 0;  ///< currently executing
};

class Service {
 public:
  /// Outcome of submit(): the job id plus its admission status (kQueued, or
  /// kOverloaded with the rejection reason retrievable via wait()).
  struct Submitted {
    JobId id = 0;
    JobStatus status = JobStatus::kQueued;
  };

  /// Starts the executor threads.  `ctx` is the shared device context; null
  /// uses the process default device.
  explicit Service(ServiceConfig config, device::DeviceContext* ctx = nullptr);
  ~Service();  ///< shutdown(/*drain=*/false)

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Admission-controlled enqueue.  Never blocks: an over-quota or
  /// over-depth job is rejected immediately with kOverloaded (wait() on its
  /// id returns the rejection detail).
  Submitted submit(Job job);

  /// Block until the job reaches a terminal status and return its result.
  /// Unknown ids throw std::invalid_argument.
  [[nodiscard]] JobResult wait(JobId id);

  /// Request cancellation of a queued or running job (its governor fires at
  /// the next poll site).  Returns false when the job is unknown or already
  /// terminal.
  bool cancel(JobId id);

  [[nodiscard]] ServiceStats stats() const;

  /// Stop the executors.  drain=true completes all queued jobs first;
  /// drain=false cancels queued jobs (kCancelled) and interrupts running
  /// ones at their next poll site.  Idempotent.
  void shutdown(bool drain = true);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fastsc
