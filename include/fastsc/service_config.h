// Public service API: service-wide configuration.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace fastsc {

/// Tuning knobs for a fastsc::Service instance.
///
/// Admission control (DESIGN.md §10): a job is rejected with kOverloaded
/// when (a) the queue already holds max_queue_depth jobs, (b) the job's
/// estimated device bytes exceed job_arena_quota_bytes, or (c) admitting it
/// would push the sum of estimated bytes over queued + running jobs past
/// arena_budget_bytes.  Estimates are computed from the graph's nnz and n
/// (COO staging + CSR + iteration vectors), the same arithmetic the device
/// arena will actually allocate.
struct ServiceConfig {
  /// Executor threads; each runs one job at a time, so this is the solve
  /// concurrency.  Minimum 1.
  usize workers = 2;

  /// Jobs allowed to wait in the queue (running jobs excluded); admission
  /// beyond this rejects with kOverloaded.
  usize max_queue_depth = 64;

  /// Aggregate device-byte budget across all admitted (queued + running)
  /// jobs; 0 = unlimited.
  std::uint64_t arena_budget_bytes = 512ull << 20;

  /// Per-job device-byte quota; a single job estimated above this is
  /// rejected outright.  0 = unlimited.
  std::uint64_t job_arena_quota_bytes = 256ull << 20;

  /// Result cache capacity in bytes (labels + eigenvalues + checkpoint per
  /// entry, LRU eviction); 0 disables caching entirely.
  std::uint64_t cache_capacity_bytes = 128ull << 20;

  /// Serve identical (graph, config) resubmissions from the cache.
  bool enable_cache = true;

  /// Warm-start delta-update re-solves from cached eigensolver checkpoints.
  bool enable_warm_start = true;

  /// Default per-job deadline when Job::deadline_ms is 0; 0 = none.
  double default_deadline_ms = 0;

  /// When non-empty, every executed job writes two artifacts into this
  /// directory (which must already exist): job_<id>.trace.json (a Perfetto
  /// timeline of just that job's spans and device work, tee'd into the
  /// process-wide trace) and job_<id>.attribution.json (the per-site cost
  /// table from the job's own attribution registry).  The paths land in
  /// JobResult::trace_path / attribution_path.
  std::string job_artifacts_dir;
};

}  // namespace fastsc
