// Shared host-side eigensolver driver for the scripting-environment
// baselines: the same reverse-communication IRLM as the device pipeline, but
// with the SpMV executed by the serial CPU csr_mv — exactly how Matlab's
// eigs() and SciPy's eigsh() run ARPACK against their built-in SpMV.
#pragma once

#include "lanczos/rci.h"
#include "sparse/csr.h"

namespace fastsc::baseline {

struct HostEigResult {
  std::vector<real> eigenvalues;
  std::vector<real> eigenvectors;  // row-major nev x n
  bool converged = false;
  lanczos::LanczosStats stats;
  /// Wall time spent inside the SpMV callbacks (the "BLAS side").
  double spmv_seconds = 0;
};

/// Compute the nev best eigenpairs of `a` per `which` with the CPU SpMV.
/// `tier` selects the dense-kernel quality for the CPU-side restart work
/// (kBlocked = Matlab-like optimized BLAS, kNaive = unoptimized build).
[[nodiscard]] HostEigResult host_eigensolve(const sparse::Csr& a, index_t nev,
                                            lanczos::EigWhich which, real tol,
                                            index_t ncv, index_t max_restarts,
                                            lanczos::DenseTier tier,
                                            std::uint64_t seed = 42);

}  // namespace fastsc::baseline
