#include "baseline/matlab_like.h"

#include "common/cancel.h"
#include "common/timer.h"
#include "sparse/spmv.h"

namespace fastsc::baseline {

sparse::Coo similarity_loop(const real* x, index_t n, index_t d,
                            const graph::EdgeList& edges,
                            const graph::SimilarityParams& params,
                            bool clamp_nonpositive) {
  const index_t nnz = edges.size();
  sparse::Coo coo(n, n);
  coo.row_idx = edges.u;
  coo.col_idx = edges.v;
  coo.values.resize(static_cast<usize>(nnz));
  for (index_t e = 0; e < nnz; ++e) {
    // Poll every 4096 edges, same work bound as the thread-pool chunks.
    if ((e & index_t{4095}) == 0) cancel::poll("similarity.row");
    const index_t i = edges.u[static_cast<usize>(e)];
    const index_t j = edges.v[static_cast<usize>(e)];
    // One "built-in function call" per edge: full recomputation, as a
    // scripting loop over corr(X(i,:), X(j,:)) executes.
    real s = graph::similarity_direct(x + i * d, x + j * d, d, params);
    if (clamp_nonpositive && s <= 1e-8) s = 1e-8;
    coo.values[static_cast<usize>(e)] = s;
  }
  return coo;
}

sparse::Coo similarity_vectorized(const real* x, index_t n, index_t d,
                                  const graph::EdgeList& edges,
                                  const graph::SimilarityParams& params,
                                  bool clamp_nonpositive) {
  return graph::build_similarity_host(x, n, d, edges, params,
                                      clamp_nonpositive);
}

HostEigResult host_eigensolve(const sparse::Csr& a, index_t nev,
                              lanczos::EigWhich which, real tol, index_t ncv,
                              index_t max_restarts, lanczos::DenseTier tier,
                              std::uint64_t seed) {
  lanczos::LanczosConfig cfg;
  cfg.n = a.rows;
  cfg.nev = nev;
  cfg.ncv = ncv;
  cfg.tol = tol;
  cfg.max_restarts = max_restarts;
  cfg.which = which;
  cfg.seed = seed;
  cfg.dense_tier = tier;

  lanczos::SymEigProb prob(cfg);
  HostEigResult out;
  while (!prob.converge()) {
    WallTimer t;
    sparse::csr_mv(a, prob.GetVector(), prob.PutVector());
    out.spmv_seconds += t.seconds();
    prob.TakeStep();
  }
  out.eigenvalues = prob.Eigenvalues();
  out.eigenvectors = prob.FindEigenvectors();
  out.converged = !prob.Failed();
  out.stats = prob.Stats();
  return out;
}

HostEigResult eigensolve_matlab(const sparse::Csr& a, index_t nev,
                                lanczos::EigWhich which, real tol, index_t ncv,
                                index_t max_restarts, std::uint64_t seed) {
  return host_eigensolve(a, nev, which, tol, ncv, max_restarts,
                         lanczos::DenseTier::kBlocked, seed);
}

kmeans::KmeansResult kmeans_matlab(const real* v, index_t n, index_t d,
                                   index_t k, index_t max_iters,
                                   std::uint64_t seed) {
  kmeans::KmeansConfig cfg;
  cfg.k = k;
  cfg.max_iters = max_iters;
  cfg.seeding = kmeans::Seeding::kRandom;
  cfg.seed = seed;
  return kmeans::kmeans_lloyd_host(v, n, d, cfg);
}

}  // namespace fastsc::baseline
