// Matlab-like serial reference pipeline stages (paper §V comparator).
//
// Models the execution profile of the paper's Matlab 2015a setup:
//  * similarity — a serial loop over the edge list calling the built-in
//    correlation per pair (recomputing means and norms every edge, the
//    O(d)-redundant pattern behind the paper's 221 s figure), plus the
//    vectorized alternative the paper measured at 5.75 s;
//  * eigensolver — ARPACK reverse communication with serial CPU SpMV and
//    optimized (blocked) dense kernels (Matlab ships a tuned BLAS);
//  * k-means — Lloyd's algorithm with uniform random seeding (the Matlab
//    default the paper contrasts with k-means++), naive distance loops.
#pragma once

#include "baseline/host_eig.h"
#include "graph/build.h"
#include "kmeans/lloyd.h"
#include "sparse/coo.h"

namespace fastsc::baseline {

/// Per-edge loop similarity construction (recomputes statistics per edge).
[[nodiscard]] sparse::Coo similarity_loop(const real* x, index_t n, index_t d,
                                          const graph::EdgeList& edges,
                                          const graph::SimilarityParams& params,
                                          bool clamp_nonpositive = true);

/// Vectorized similarity construction (precomputed statistics; the paper's
/// "optimized Matlab implementation").
[[nodiscard]] sparse::Coo similarity_vectorized(
    const real* x, index_t n, index_t d, const graph::EdgeList& edges,
    const graph::SimilarityParams& params, bool clamp_nonpositive = true);

/// Matlab-like eigensolver stage (blocked dense tier).
[[nodiscard]] HostEigResult eigensolve_matlab(const sparse::Csr& a, index_t nev,
                                              lanczos::EigWhich which, real tol,
                                              index_t ncv, index_t max_restarts,
                                              std::uint64_t seed = 42);

/// Matlab-like k-means stage: Lloyd + random seeding.
[[nodiscard]] kmeans::KmeansResult kmeans_matlab(const real* v, index_t n,
                                                 index_t d, index_t k,
                                                 index_t max_iters,
                                                 std::uint64_t seed = 42);

}  // namespace fastsc::baseline
