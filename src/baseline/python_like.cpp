#include "baseline/python_like.h"

namespace fastsc::baseline {

HostEigResult eigensolve_python(const sparse::Csr& a, index_t nev,
                                lanczos::EigWhich which, real tol, index_t ncv,
                                index_t max_restarts, std::uint64_t seed) {
  return host_eigensolve(a, nev, which, tol, ncv, max_restarts,
                         lanczos::DenseTier::kNaive, seed);
}

kmeans::KmeansResult kmeans_python(const real* v, index_t n, index_t d,
                                   index_t k, index_t max_iters,
                                   std::uint64_t seed) {
  kmeans::KmeansConfig cfg;
  cfg.k = k;
  cfg.max_iters = max_iters;
  cfg.seeding = kmeans::Seeding::kKmeansPlusPlus;
  cfg.seed = seed;
  return kmeans::kmeans_lloyd_host(v, n, d, cfg);
}

}  // namespace fastsc::baseline
