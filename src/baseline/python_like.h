// Python-like (NumPy/SciPy/sklearn) serial reference pipeline stages.
//
// Same ARPACK-style structure as the Matlab baseline, with the differences
// the paper observed between the two environments:
//  * the dense CPU-side restart work runs on the naive (unblocked) gemm
//    tier, modeling the slower BLAS builds behind SciPy's 3281 s vs
//    Matlab's 603 s eigensolver time on DTI;
//  * k-means uses k-means++ seeding (sklearn's default), like our device
//    implementation, so it needs fewer iterations than the Matlab baseline.
#pragma once

#include "baseline/host_eig.h"
#include "graph/build.h"
#include "kmeans/lloyd.h"
#include "sparse/coo.h"

namespace fastsc::baseline {

/// Python-like eigensolver stage (naive dense tier).
[[nodiscard]] HostEigResult eigensolve_python(const sparse::Csr& a, index_t nev,
                                              lanczos::EigWhich which, real tol,
                                              index_t ncv, index_t max_restarts,
                                              std::uint64_t seed = 42);

/// Python-like k-means stage: Lloyd + k-means++ seeding.
[[nodiscard]] kmeans::KmeansResult kmeans_python(const real* v, index_t n,
                                                 index_t d, index_t k,
                                                 index_t max_iters,
                                                 std::uint64_t seed = 42);

}  // namespace fastsc::baseline
