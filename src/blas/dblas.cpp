#include "blas/dblas.h"

#include <algorithm>
#include <cmath>

#include "blas/hblas.h"
#include "device/algorithms.h"

namespace fastsc::dblas {

namespace {

// blas.* sites yield to an enclosing obs::AttrSiteScope (same policy as the
// device algo.* primitives), so a tagged caller like "kmeans.lloyd" absorbs
// the BLAS work it drives while bare callers still land in a named bucket.
using device::detail::algo_cfg;
using device::detail::algo_cost;

constexpr double kReal = static_cast<double>(sizeof(real));

}  // namespace

real dot(DeviceContext& ctx, index_t n, const real* x, const real* y) {
  if (n <= 0) return 0;
  WallTimer t;
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  real result = 0;
  if (workers == 1) {
    result = hblas::dot(n, x, y);
  } else {
    const index_t chunk = (n + workers - 1) / workers;
    std::vector<real> partials(static_cast<usize>(workers), 0.0);
    std::function<void(usize)> job = [&](usize w) {
      const index_t lo = static_cast<index_t>(w) * chunk;
      const index_t hi = lo + chunk < n ? lo + chunk : n;
      if (lo < hi) partials[w] = hblas::dot(hi - lo, x + lo, y + lo);
    };
    ctx.run_compute(job);
    for (real p : partials) result += p;
  }
  ctx.record_kernel(t.seconds(), -1.0,
                    algo_cost("blas.dot", 2.0 * n, 2.0 * n * kReal, kReal));
  return result;
}

real nrm2(DeviceContext& ctx, index_t n, const real* x) {
  return std::sqrt(dot(ctx, n, x, x));
}

void axpy(DeviceContext& ctx, index_t n, real alpha, const real* x, real* y) {
  device::launch(ctx, n, [=](index_t i) { y[i] += alpha * x[i]; },
                 algo_cfg("blas.axpy", 2.0 * n, 2.0 * n * kReal, n * kReal));
}

void scal(DeviceContext& ctx, index_t n, real alpha, real* x) {
  device::launch(ctx, n, [=](index_t i) { x[i] *= alpha; },
                 algo_cfg("blas.scal", static_cast<double>(n), n * kReal,
                          n * kReal));
}

void copy(DeviceContext& ctx, index_t n, const real* x, real* y) {
  device::launch(ctx, n, [=](index_t i) { y[i] = x[i]; },
                 algo_cfg("blas.copy", static_cast<double>(n), n * kReal,
                          n * kReal));
}

void gemv(DeviceContext& ctx, index_t m, index_t n, real alpha, const real* a,
          index_t lda, const real* x, real beta, real* y) {
  const double mn = static_cast<double>(m) * n;
  device::launch(ctx, m,
                 [=](index_t i) {
                   const real* row = a + i * lda;
                   real acc = 0;
                   for (index_t j = 0; j < n; ++j) acc += row[j] * x[j];
                   y[i] = alpha * acc + beta * y[i];
                 },
                 algo_cfg("blas.gemv", 2.0 * mn, (mn + n + m) * kReal,
                          m * kReal));
}

namespace {

/// Run a blocked host-gemm over a horizontal panel of C rows; the device gemm
/// parallelizes across row panels (one per worker), each worker calling the
/// cache-blocked serial kernel on its slice.
template <class PanelKernel>
void parallel_row_panels(DeviceContext& ctx, index_t m,
                         const obs::KernelCost& cost,
                         const PanelKernel& panel) {
  if (m <= 0) return;
  WallTimer t;
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  const index_t chunk = (m + workers - 1) / workers;
  std::function<void(usize)> job = [&](usize w) {
    const index_t lo = static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < m ? lo + chunk : m;
    if (lo < hi) panel(lo, hi);
  };
  if (workers == 1) {
    job(0);
  } else {
    ctx.run_compute(job);
  }
  ctx.record_kernel(t.seconds(), -1.0, cost);
}

obs::KernelCost gemm_cost(index_t m, index_t n, index_t k) {
  const double md = m, nd = n, kd = k;
  return algo_cost("blas.gemm", 2.0 * md * nd * kd,
                   (md * kd + kd * nd + md * nd) * kReal, md * nd * kReal);
}

}  // namespace

void gemm(DeviceContext& ctx, index_t m, index_t n, index_t k, real alpha,
          const real* a, index_t lda, const real* b, index_t ldb, real beta,
          real* c, index_t ldc) {
  parallel_row_panels(ctx, m, gemm_cost(m, n, k),
                      [=](index_t lo, index_t hi) {
    hblas::gemm(hi - lo, n, k, alpha, a + lo * lda, lda, b, ldb, beta,
                c + lo * ldc, ldc);
  });
}

void gemm_nt(DeviceContext& ctx, index_t m, index_t n, index_t k, real alpha,
             const real* a, index_t lda, const real* b, index_t ldb, real beta,
             real* c, index_t ldc) {
  parallel_row_panels(ctx, m, gemm_cost(m, n, k),
                      [=](index_t lo, index_t hi) {
    hblas::gemm_nt(hi - lo, n, k, alpha, a + lo * lda, lda, b, ldb, beta,
                   c + lo * ldc, ldc);
  });
}

void row_squared_norms(DeviceContext& ctx, index_t m, index_t n, const real* a,
                       index_t lda, real* rownorms) {
  const double mn = static_cast<double>(m) * n;
  device::launch(ctx, m,
                 [=](index_t i) {
                   const real* row = a + i * lda;
                   real acc = 0;
                   for (index_t j = 0; j < n; ++j) acc += row[j] * row[j];
                   rownorms[i] = acc;
                 },
                 algo_cfg("blas.row_norms", 2.0 * mn, mn * kReal, m * kReal));
}

namespace {

/// View element access with a row offset (views carry no stride).
real view_at(const ConstVecView& v, index_t i) {
  return v.load(static_cast<usize>(i));
}

}  // namespace

void gemv_mp(DeviceContext& ctx, index_t m, index_t n, real alpha,
             ConstVecView a, index_t lda, ConstVecView x, real beta,
             VecView y) {
  const double mn = static_cast<double>(m) * n;
  const auto ba = static_cast<double>(bytes_per_scalar(a.prec));
  const auto bx = static_cast<double>(bytes_per_scalar(x.prec));
  const auto by = static_cast<double>(bytes_per_scalar(y.prec));
  device::LaunchConfig cfg =
      algo_cfg("blas.gemv", 2.0 * mn, mn * ba + n * bx + m * by, m * by);
  cfg.bytes_per_scalar = (mn * ba * ba + n * bx * bx + 2.0 * m * by * by) /
                         (mn * ba + n * bx + 2.0 * m * by);
  device::launch(ctx, m,
                 [=](index_t i) {
                   real acc = 0;
                   for (index_t j = 0; j < n; ++j) {
                     acc += view_at(a, i * lda + j) * view_at(x, j);
                   }
                   const real t = beta == 0 ? 0 : beta * y.load(static_cast<usize>(i));
                   y.store(static_cast<usize>(i), alpha * acc + t);
                 },
                 cfg);
}

void gemm_nt_mp(DeviceContext& ctx, index_t m, index_t n, index_t k,
                real alpha, ConstVecView a, index_t lda, ConstVecView b,
                index_t ldb, real beta, real* c, index_t ldc) {
  const double md = m, nd = n, kd = k;
  const auto ba = static_cast<double>(bytes_per_scalar(a.prec));
  const auto bb = static_cast<double>(bytes_per_scalar(b.prec));
  device::LaunchConfig cfg = algo_cfg(
      "blas.gemm", 2.0 * md * nd * kd,
      md * kd * ba + kd * nd * bb + md * nd * kReal, md * nd * kReal);
  cfg.bytes_per_scalar =
      (md * kd * ba * ba + kd * nd * bb * bb + 2.0 * md * nd * kReal * kReal) /
      (md * kd * ba + kd * nd * bb + 2.0 * md * nd * kReal);
  // Same per-element op sequence as hblas::gemm_nt (scale then one
  // fused add of alpha*acc), so the fp64-view run is bitwise the plain
  // gemm_nt.
  device::launch(ctx, m,
                 [=](index_t i) {
                   real* crow = c + i * ldc;
                   for (index_t j = 0; j < n; ++j) {
                     real acc = 0;
                     for (index_t l = 0; l < k; ++l) {
                       acc += view_at(a, i * lda + l) * view_at(b, j * ldb + l);
                     }
                     const real t = beta == 0 ? 0 : beta * crow[j];
                     crow[j] = t + alpha * acc;
                   }
                 },
                 cfg);
}

void row_squared_norms_mp(DeviceContext& ctx, index_t m, index_t n,
                          ConstVecView a, index_t lda, real* rownorms) {
  const double mn = static_cast<double>(m) * n;
  const auto ba = static_cast<double>(bytes_per_scalar(a.prec));
  device::LaunchConfig cfg =
      algo_cfg("blas.row_norms", 2.0 * mn, mn * ba, m * kReal);
  cfg.bytes_per_scalar =
      (mn * ba * ba + m * kReal * kReal) / (mn * ba + m * kReal);
  device::launch(ctx, m,
                 [=](index_t i) {
                   real acc = 0;
                   for (index_t j = 0; j < n; ++j) {
                     const real v = view_at(a, i * lda + j);
                     acc += v * v;
                   }
                   rownorms[i] = acc;
                 },
                 cfg);
}

}  // namespace fastsc::dblas
