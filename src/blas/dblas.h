// Device dense BLAS subset (cuBLAS stand-in).
//
// Mirrors the cuBLAS calls the paper's k-means and similarity kernels make:
// level-1 (dot/nrm2/axpy/scal), level-2 (gemv) and the level-3 gemm used for
// the pairwise-distance update S = S - 2 V C^T (Eq. 16).  All pointers are
// device pointers; execution is parallel over the context's pool and metered
// as kernel time.
#pragma once

#include "common/precision.h"
#include "common/types.h"
#include "device/device.h"

namespace fastsc::dblas {

using device::DeviceContext;

[[nodiscard]] real dot(DeviceContext& ctx, index_t n, const real* x,
                       const real* y);

[[nodiscard]] real nrm2(DeviceContext& ctx, index_t n, const real* x);

void axpy(DeviceContext& ctx, index_t n, real alpha, const real* x, real* y);

void scal(DeviceContext& ctx, index_t n, real alpha, real* x);

void copy(DeviceContext& ctx, index_t n, const real* x, real* y);

/// y = alpha * A @ x + beta * y; A m x n row-major (device).
void gemv(DeviceContext& ctx, index_t m, index_t n, real alpha, const real* a,
          index_t lda, const real* x, real beta, real* y);

/// C = alpha * A @ B + beta * C (row-major, device); parallel over row panels.
void gemm(DeviceContext& ctx, index_t m, index_t n, index_t k, real alpha,
          const real* a, index_t lda, const real* b, index_t ldb, real beta,
          real* c, index_t ldc);

/// C = alpha * A @ B^T + beta * C; the k-means distance-matrix workhorse.
void gemm_nt(DeviceContext& ctx, index_t m, index_t n, index_t k, real alpha,
             const real* a, index_t lda, const real* b, index_t ldb, real beta,
             real* c, index_t ldc);

/// rownorms[i] = sum_j A[i,j]^2 for A m x n row-major — the Vnorm / Cnorm
/// vectors of Eq. 13/14.
void row_squared_norms(DeviceContext& ctx, index_t m, index_t n, const real* a,
                       index_t lda, real* rownorms);

// --- mixed-precision variants (DESIGN.md §13) ------------------------------
//
// Operands read through ConstVecView — storage at any ladder rung, every
// accumulation in fp64.  At fp64 views these are bitwise identical to the
// plain kernels above (same loop order, the view load is a plain pointer
// access); at narrower storage the declared kernel bytes shrink with the
// storage width, which is the modeled win the precision bench measures.

/// y = alpha * A @ x + beta * y; A m x n row-major at the view's width.
void gemv_mp(DeviceContext& ctx, index_t m, index_t n, real alpha,
             ConstVecView a, index_t lda, ConstVecView x, real beta,
             VecView y);

/// C = alpha * A @ B^T + beta * C with A, B narrow-storage and C fp64 — the
/// k-means distance phase at a narrow embedding rung.
void gemm_nt_mp(DeviceContext& ctx, index_t m, index_t n, index_t k,
                real alpha, ConstVecView a, index_t lda, ConstVecView b,
                index_t ldb, real beta, real* c, index_t ldc);

/// rownorms[i] = sum_j A[i,j]^2 with A narrow-storage, fp64 accumulation.
void row_squared_norms_mp(DeviceContext& ctx, index_t m, index_t n,
                          ConstVecView a, index_t lda, real* rownorms);

}  // namespace fastsc::dblas
