#include "blas/hblas.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/par.h"

namespace fastsc::hblas {

real dot(index_t n, const real* x, const real* y) noexcept {
  real acc = 0;
  for (index_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

real nrm2(index_t n, const real* x) noexcept {
  // Two-pass scaled norm: robust to overflow/underflow like reference BLAS.
  real amax = 0;
  for (index_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(x[i]));
  if (amax == 0) return 0;
  real acc = 0;
  for (index_t i = 0; i < n; ++i) {
    const real v = x[i] / amax;
    acc += v * v;
  }
  return amax * std::sqrt(acc);
}

void axpy(index_t n, real alpha, const real* x, real* y) noexcept {
  for (index_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scal(index_t n, real alpha, real* x) noexcept {
  for (index_t i = 0; i < n; ++i) x[i] *= alpha;
}

void copy(index_t n, const real* x, real* y) noexcept {
  if (n > 0) std::memcpy(y, x, static_cast<usize>(n) * sizeof(real));
}

index_t iamax(index_t n, const real* x) noexcept {
  if (n <= 0) return -1;
  index_t best = 0;
  real best_abs = std::fabs(x[0]);
  for (index_t i = 1; i < n; ++i) {
    const real a = std::fabs(x[i]);
    if (a > best_abs) {
      best_abs = a;
      best = i;
    }
  }
  return best;
}

void gemv(index_t m, index_t n, real alpha, const real* a, index_t lda,
          const real* x, real beta, real* y) noexcept {
  for (index_t i = 0; i < m; ++i) {
    const real* row = a + i * lda;
    real acc = 0;
    for (index_t j = 0; j < n; ++j) acc += row[j] * x[j];
    // beta == 0 is pure overwrite: never read y (it may be uninitialized).
    y[i] = beta == 0 ? alpha * acc : alpha * acc + beta * y[i];
  }
}

void gemv_t(index_t m, index_t n, real alpha, const real* a, index_t lda,
            const real* x, real beta, real* y) noexcept {
  if (beta == 0) {
    for (index_t j = 0; j < n; ++j) y[j] = 0;
  } else if (beta != 1) {
    scal(n, beta, y);
  }
  // Accumulate row by row: y += alpha * x[i] * A[i,:] — unit-stride inner loop.
  for (index_t i = 0; i < m; ++i) {
    const real s = alpha * x[i];
    if (s == 0) continue;
    const real* row = a + i * lda;
    for (index_t j = 0; j < n; ++j) y[j] += s * row[j];
  }
}

namespace {

// Block sizes tuned for L1/L2 residency of double panels.
constexpr index_t kBlockM = 64;
constexpr index_t kBlockN = 128;
constexpr index_t kBlockK = 64;

inline void scale_c(index_t m, index_t n, real beta, real* c,
                    index_t ldc) noexcept {
  if (beta == 1) return;
  for (index_t i = 0; i < m; ++i) {
    real* row = c + i * ldc;
    if (beta == 0) {
      for (index_t j = 0; j < n; ++j) row[j] = 0;
    } else {
      for (index_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
}

}  // namespace

void gemm(index_t m, index_t n, index_t k, real alpha, const real* a,
          index_t lda, const real* b, index_t ldb, real beta, real* c,
          index_t ldc) noexcept {
  scale_c(m, n, beta, c, ldc);
  if (alpha == 0 || m == 0 || n == 0 || k == 0) return;
  for (index_t i0 = 0; i0 < m; i0 += kBlockM) {
    const index_t i1 = std::min(i0 + kBlockM, m);
    for (index_t l0 = 0; l0 < k; l0 += kBlockK) {
      const index_t l1 = std::min(l0 + kBlockK, k);
      for (index_t j0 = 0; j0 < n; j0 += kBlockN) {
        const index_t j1 = std::min(j0 + kBlockN, n);
        for (index_t i = i0; i < i1; ++i) {
          real* crow = c + i * ldc;
          const real* arow = a + i * lda;
          for (index_t l = l0; l < l1; ++l) {
            const real av = alpha * arow[l];
            if (av == 0) continue;
            const real* brow = b + l * ldb;
            for (index_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void gemm_nt(index_t m, index_t n, index_t k, real alpha, const real* a,
             index_t lda, const real* b, index_t ldb, real beta, real* c,
             index_t ldc) noexcept {
  scale_c(m, n, beta, c, ldc);
  if (alpha == 0 || m == 0 || n == 0 || k == 0) return;
  // C[i,j] += alpha * dot(A[i,:], B[j,:]) — both operands row-major, so the
  // inner dot is unit-stride on both sides; block for B panel reuse.
  for (index_t j0 = 0; j0 < n; j0 += kBlockM) {
    const index_t j1 = std::min(j0 + kBlockM, n);
    for (index_t i = 0; i < m; ++i) {
      const real* arow = a + i * lda;
      real* crow = c + i * ldc;
      for (index_t j = j0; j < j1; ++j) {
        const real* brow = b + j * ldb;
        real acc = 0;
        for (index_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
        crow[j] += alpha * acc;
      }
    }
  }
}

void gemm_naive(index_t m, index_t n, index_t k, real alpha, const real* a,
                index_t lda, const real* b, index_t ldb, real beta, real* c,
                index_t ldc) noexcept {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real acc = 0;
      for (index_t l = 0; l < k; ++l) acc += a[i * lda + l] * b[l * ldb + j];
      c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
    }
  }
}

void gemm_nt_naive(index_t m, index_t n, index_t k, real alpha, const real* a,
                   index_t lda, const real* b, index_t ldb, real beta, real* c,
                   index_t ldc) noexcept {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real acc = 0;
      for (index_t l = 0; l < k; ++l) acc += a[i * lda + l] * b[j * ldb + l];
      c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
    }
  }
}

namespace {

// Below this many flops the fork/join overhead dominates any speedup, so
// the _par entry points fall back to the serial kernels.
constexpr index_t kParMinWork = 1 << 14;

// Claimed chunk for the dynamically-scheduled level-1 loops: big enough to
// amortize the atomic claim, small enough to rebalance a skewed tail.
constexpr index_t kParGrain = 4096;

}  // namespace

real dot_par(index_t n, const real* x, const real* y) {
  if (n < kParMinWork) return dot(n, x, y);
  return parallel_reduce(
      index_t{0}, n, real{0}, [&](index_t i) { return x[i] * y[i]; },
      [](real a, real b) { return a + b; });
}

void axpy_par(index_t n, real alpha, const real* x, real* y) {
  if (n < kParMinWork) {
    axpy(n, alpha, x, y);
    return;
  }
  parallel_for(index_t{0}, n, kParGrain,
               [&](index_t i) { y[i] += alpha * x[i]; });
}

void gemv_par(index_t m, index_t n, real alpha, const real* a, index_t lda,
              const real* x, real beta, real* y) {
  if (m * n < kParMinWork) {
    gemv(m, n, alpha, a, lda, x, beta, y);
    return;
  }
  parallel_for(index_t{0}, m, [&](index_t i) {
    const real* row = a + i * lda;
    real acc = 0;
    for (index_t j = 0; j < n; ++j) acc += row[j] * x[j];
    y[i] = beta == 0 ? alpha * acc : alpha * acc + beta * y[i];
  });
}

void gemv_t_par(index_t m, index_t n, real alpha, const real* a, index_t lda,
                const real* x, real beta, real* y) {
  if (m * n < kParMinWork) {
    gemv_t(m, n, alpha, a, lda, x, beta, y);
    return;
  }
  ThreadPool& pool = default_thread_pool();
  const auto slices = static_cast<index_t>(pool.worker_count());
  // One contiguous column slice per worker; each worker sweeps every row of
  // A over its slice (unit-stride in both A and y), so no output element is
  // shared and the per-column accumulation order matches the serial kernel.
  parallel_for(pool, index_t{0}, slices, [&](index_t s) {
    const index_t j0 = (n * s) / slices;
    const index_t j1 = (n * (s + 1)) / slices;
    if (j0 == j1) return;
    if (beta == 0) {
      for (index_t j = j0; j < j1; ++j) y[j] = 0;
    } else if (beta != 1) {
      for (index_t j = j0; j < j1; ++j) y[j] *= beta;
    }
    for (index_t i = 0; i < m; ++i) {
      const real s2 = alpha * x[i];
      if (s2 == 0) continue;
      const real* row = a + i * lda;
      for (index_t j = j0; j < j1; ++j) y[j] += s2 * row[j];
    }
  });
}

}  // namespace fastsc::hblas
