// Host dense BLAS subset (row-major).
//
// Stands in for OpenBLAS in the paper's stack: ARPACK's CPU-side iteration
// (TakeStep / FindEigenvectors) runs its dense updates through these
// routines.  Two quality tiers are provided where it matters:
//   * gemm        — cache-blocked with an i-k-j inner ordering (vectorizable),
//   * gemm_naive  — textbook triple loop, used by the "python-like" baseline
//                   to model an unoptimized BLAS build (DESIGN.md §2).
// All matrices are row-major with explicit leading dimension.
#pragma once

#include "common/types.h"

namespace fastsc::hblas {

/// sum_i x[i] * y[i]
[[nodiscard]] real dot(index_t n, const real* x, const real* y) noexcept;

/// Euclidean norm with scaling guard against overflow.
[[nodiscard]] real nrm2(index_t n, const real* x) noexcept;

/// y += alpha * x
void axpy(index_t n, real alpha, const real* x, real* y) noexcept;

/// x *= alpha
void scal(index_t n, real alpha, real* x) noexcept;

/// y = x
void copy(index_t n, const real* x, real* y) noexcept;

/// Index of the element with the largest |x[i]| (first on ties); -1 if empty.
[[nodiscard]] index_t iamax(index_t n, const real* x) noexcept;

/// y = alpha * A @ x + beta * y, A is m x n row-major with leading dim lda.
void gemv(index_t m, index_t n, real alpha, const real* a, index_t lda,
          const real* x, real beta, real* y) noexcept;

/// y = alpha * A^T @ x + beta * y (A m x n row-major; x length m, y length n).
void gemv_t(index_t m, index_t n, real alpha, const real* a, index_t lda,
            const real* x, real beta, real* y) noexcept;

/// C = alpha * A @ B + beta * C.  A is m x k (lda), B is k x n (ldb),
/// C is m x n (ldc); all row-major.  Cache-blocked implementation.
void gemm(index_t m, index_t n, index_t k, real alpha, const real* a,
          index_t lda, const real* b, index_t ldb, real beta, real* c,
          index_t ldc) noexcept;

/// C = alpha * A @ B^T + beta * C.  A is m x k (lda), B is n x k (ldb),
/// C is m x n (ldc).  This is the S = S - 2 V C^T shape from the paper's
/// k-means (Eq. 16).
void gemm_nt(index_t m, index_t n, index_t k, real alpha, const real* a,
             index_t lda, const real* b, index_t ldb, real beta, real* c,
             index_t ldc) noexcept;

/// Textbook (i,j,l) triple-loop gemm — deliberately cache-oblivious; the
/// python-like baseline routes its dense work here.
void gemm_naive(index_t m, index_t n, index_t k, real alpha, const real* a,
                index_t lda, const real* b, index_t ldb, real beta, real* c,
                index_t ldc) noexcept;

/// Naive A @ B^T counterpart of gemm_nt.
void gemm_nt_naive(index_t m, index_t n, index_t k, real alpha, const real* a,
                   index_t lda, const real* b, index_t ldb, real beta, real* c,
                   index_t ldc) noexcept;

// ---- threaded host path ---------------------------------------------------
//
// Parallel variants over the process-default ThreadPool (common/par.h),
// used by the blocked CGS2 reorthogonalization where a single level-2 call
// spans the whole Lanczos basis.  Deterministic for a fixed worker count:
// reductions fold per-worker partials in worker order, and every output
// element is written by exactly one worker.  Inputs below an internal
// work threshold run the serial kernels, so these are safe drop-ins at
// any size.

/// Parallel dot (per-worker partials combined in worker order).
[[nodiscard]] real dot_par(index_t n, const real* x, const real* y);

/// Parallel y += alpha * x.
void axpy_par(index_t n, real alpha, const real* x, real* y);

/// Parallel gemv: rows of A are independent dots, split across workers.
void gemv_par(index_t m, index_t n, real alpha, const real* a, index_t lda,
              const real* x, real beta, real* y);

/// Parallel gemv_t: each worker owns a contiguous slice of output columns
/// and sweeps all rows of A over it (unit-stride inner loop, race-free).
void gemv_t_par(index_t m, index_t n, real alpha, const real* a, index_t lda,
                const real* x, real beta, real* y);

}  // namespace fastsc::hblas
