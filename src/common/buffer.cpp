#include "common/buffer.h"

#include <cstdlib>

namespace fastsc::detail {

void* aligned_alloc_bytes(usize bytes, usize alignment) {
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  const usize rounded = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void aligned_free_bytes(void* p) noexcept { std::free(p); }

}  // namespace fastsc::detail
