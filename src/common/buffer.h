// AlignedBuffer: a fixed-capacity, cache-line/SIMD aligned heap array.
//
// This is the storage primitive under both host vectors and the simulated
// device memory (device::DeviceBuffer).  Alignment to 64 bytes matches both
// x86 cache lines and AVX-512 lanes so the BLAS kernels can assume aligned
// loads on the leading element.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

#include "common/error.h"
#include "common/types.h"

namespace fastsc {

/// Byte alignment used for all numeric storage.
inline constexpr usize kBufferAlignment = 64;

namespace detail {
void* aligned_alloc_bytes(usize bytes, usize alignment);
void aligned_free_bytes(void* p) noexcept;
}  // namespace detail

/// Owning, aligned, non-resizable array of trivially-copyable T.
///
/// Unlike std::vector this never default-initializes on allocation paths that
/// immediately overwrite (see uninitialized tag), which matters for the large
/// scratch arrays in the Lanczos basis and the k-means distance matrix.
template <class T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer only supports trivially copyable types");

 public:
  struct uninitialized_t {};
  static constexpr uninitialized_t uninitialized{};

  AlignedBuffer() noexcept = default;

  /// Allocate and zero-fill n elements.
  explicit AlignedBuffer(usize n) : AlignedBuffer(n, uninitialized) {
    if (n != 0) std::memset(data_, 0, n * sizeof(T));
  }

  /// Allocate n elements without initializing them.
  AlignedBuffer(usize n, uninitialized_t) : size_(n) {
    if (n != 0) {
      data_ = static_cast<T*>(
          detail::aligned_alloc_bytes(n * sizeof(T), kBufferAlignment));
    }
  }

  AlignedBuffer(const AlignedBuffer& other)
      : AlignedBuffer(other.size_, uninitialized) {
    if (size_ != 0) std::memcpy(data_, other.data_, size_ * sizeof(T));
  }

  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer tmp(other);
      swap(tmp);
    }
    return *this;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }

  ~AlignedBuffer() { reset(); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  void reset() noexcept {
    if (data_ != nullptr) detail::aligned_free_bytes(data_);
    data_ = nullptr;
    size_ = 0;
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] usize size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] usize size_bytes() const noexcept { return size_ * sizeof(T); }

  T& operator[](usize i) noexcept { return data_[i]; }
  const T& operator[](usize i) const noexcept { return data_[i]; }

  [[nodiscard]] std::span<T> span() noexcept { return {data_, size_}; }
  [[nodiscard]] std::span<const T> span() const noexcept {
    return {data_, size_};
  }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  void fill(const T& value) {
    for (usize i = 0; i < size_; ++i) data_[i] = value;
  }

 private:
  T* data_ = nullptr;
  usize size_ = 0;
};

}  // namespace fastsc
