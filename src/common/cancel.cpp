#include "common/cancel.h"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "common/log.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fastsc::cancel {

namespace detail {
std::atomic<int> g_active{0};

namespace {
/// Thread-local governor binding; null = "use the process default".
/// Plain pointer: bound governors outlive their binding scopes by contract
/// (GovernorBindScope restores the previous binding before the job's
/// governor is destroyed).
thread_local Governor* t_bound = nullptr;
}  // namespace

Governor* bound_governor() noexcept { return t_bound; }
void bind_governor(Governor* g) noexcept { t_bound = g; }
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_nonneg(std::string_view what, std::string_view v) {
  double x = -1;
  try {
    x = std::stod(std::string(v));
  } catch (const std::exception&) {
    x = -1;
  }
  if (!(x >= 0)) {
    throw std::invalid_argument("budget/watchdog spec: key '" +
                                std::string(what) +
                                "' expects a non-negative number, got '" +
                                std::string(v) + "'");
  }
  return x;
}

bool parse_bool(std::string_view what, std::string_view v) {
  if (v == "1" || v == "true" || v == "on") return true;
  if (v == "0" || v == "false" || v == "off") return false;
  throw std::invalid_argument("budget spec: key '" + std::string(what) +
                              "' expects 0/1, got '" + std::string(v) + "'");
}

bool known_stage(std::string_view s) {
  // Mirrors core::kStage*; cancel sits below core/ so the names are repeated
  // here rather than included (validated by a test against the constants).
  return s == "similarity" || s == "eigensolver" || s == "kmeans";
}

/// Bumps each counter by one and mirrors the cumulative value onto the trace
/// (same pattern as fault.cpp's injection accounting); called outside locks.
void emit_counters(const std::vector<std::string>& names,
                   const std::string& warn) {
  for (const std::string& n : names) {
    obs::Counter& c = obs::metrics().counter(n);
    c.add();
    if (obs::trace_enabled()) {
      obs::trace().counter(n, static_cast<double>(c.value()),
                           obs::wall_now_us());
    }
  }
  if (!warn.empty()) {
    FASTSC_LOG_WARN(warn);
  }
}

}  // namespace

// --- RunBudget --------------------------------------------------------------

bool RunBudget::enabled() const {
  if (total.enabled()) return true;
  for (const auto& [_, limit] : stages) {
    if (limit.enabled()) return true;
  }
  return false;
}

RunBudget RunBudget::parse(std::string_view spec) {
  RunBudget budget;
  const std::string_view whole = trim(spec);
  if (whole.empty()) return budget;
  if (whole.find('=') == std::string_view::npos &&
      whole.find(';') == std::string_view::npos) {
    budget.total.wall_ms = parse_nonneg("total", whole);
    return budget;
  }
  usize pos = 0;
  while (pos <= whole.size()) {
    const usize semi = std::min(whole.find(';', pos), whole.size());
    const std::string_view clause = trim(whole.substr(pos, semi - pos));
    pos = semi + 1;
    if (clause.empty()) continue;
    const usize eq = clause.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("budget spec: clause '" +
                                  std::string(clause) +
                                  "' is not key=value");
    }
    const std::string_view key = trim(clause.substr(0, eq));
    const std::string_view value = trim(clause.substr(eq + 1));
    if (key == "anytime") {
      budget.anytime = parse_bool(key, value);
      continue;
    }
    constexpr std::string_view kVirtualSuffix = ".virtual";
    bool virt = false;
    std::string_view base = key;
    if (key.size() > kVirtualSuffix.size() &&
        key.substr(key.size() - kVirtualSuffix.size()) == kVirtualSuffix) {
      virt = true;
      base = key.substr(0, key.size() - kVirtualSuffix.size());
    }
    StageLimit* limit = nullptr;
    if (base == "total") {
      limit = &budget.total;
    } else if (known_stage(base)) {
      limit = &budget.stages[std::string(base)];
    } else {
      throw std::invalid_argument(
          "budget spec: unknown stage '" + std::string(base) +
          "' (expected total, similarity, eigensolver, or kmeans)");
    }
    if (virt) {
      limit->virtual_seconds = parse_nonneg(key, value);
    } else {
      limit->wall_ms = parse_nonneg(key, value);
    }
  }
  return budget;
}

std::string RunBudget::to_string() const {
  std::ostringstream os;
  const char* sep = "";
  auto put = [&](const std::string& base, const StageLimit& l) {
    if (l.wall_ms > 0) {
      os << sep << base << "=" << l.wall_ms;
      sep = ";";
    }
    if (l.virtual_seconds > 0) {
      os << sep << base << ".virtual=" << l.virtual_seconds;
      sep = ";";
    }
  };
  put("total", total);
  for (const auto& [name, limit] : stages) put(name, limit);
  if (!anytime) {
    os << sep << "anytime=0";
    sep = ";";
  }
  return os.str();
}

const RunBudget& env_budget() {
  static const RunBudget budget = [] {
    RunBudget b;
    if (const char* spec = std::getenv("FASTSC_BUDGET")) {
      try {
        b = RunBudget::parse(spec);
      } catch (const std::exception& e) {
        FASTSC_LOG_WARN("ignoring invalid FASTSC_BUDGET: " << e.what());
      }
    }
    return b;
  }();
  return budget;
}

// --- WatchdogConfig ---------------------------------------------------------

WatchdogConfig WatchdogConfig::parse(std::string_view spec) {
  WatchdogConfig w;
  const std::string_view whole = trim(spec);
  usize pos = 0;
  while (pos <= whole.size()) {
    usize end = whole.size();
    for (usize i = pos; i < whole.size(); ++i) {
      if (whole[i] == ',' || whole[i] == ';') {
        end = i;
        break;
      }
    }
    const std::string_view clause = trim(whole.substr(pos, end - pos));
    pos = end + 1;
    if (clause.empty()) continue;
    const usize eq = clause.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("watchdog spec: clause '" +
                                  std::string(clause) +
                                  "' is not key=value");
    }
    const std::string_view key = trim(clause.substr(0, eq));
    const std::string_view value = trim(clause.substr(eq + 1));
    if (key == "stall_restarts") {
      w.stall_restarts = static_cast<int>(parse_nonneg(key, value));
    } else if (key == "stall_rtol") {
      w.stall_rtol = parse_nonneg(key, value);
    } else if (key == "heartbeat_ms") {
      w.heartbeat_timeout_ms = parse_nonneg(key, value);
    } else if (key == "transfer_overrun") {
      w.transfer_overrun_factor = parse_nonneg(key, value);
    } else if (key == "poll_ms") {
      w.poll_interval_ms = parse_nonneg(key, value);
      if (w.poll_interval_ms <= 0) {
        throw std::invalid_argument("watchdog spec: poll_ms must be > 0");
      }
    } else {
      throw std::invalid_argument("watchdog spec: unknown key '" +
                                  std::string(key) + "'");
    }
  }
  return w;
}

std::string WatchdogConfig::to_string() const {
  std::ostringstream os;
  const char* sep = "";
  auto put = [&](const char* key, double v) {
    os << sep << key << "=" << v;
    sep = ",";
  };
  if (stall_restarts > 0) {
    put("stall_restarts", stall_restarts);
    put("stall_rtol", stall_rtol);
  }
  if (heartbeat_timeout_ms > 0) put("heartbeat_ms", heartbeat_timeout_ms);
  if (transfer_overrun_factor > 0) {
    put("transfer_overrun", transfer_overrun_factor);
  }
  if (enabled()) put("poll_ms", poll_interval_ms);
  return os.str();
}

// --- Governor::Impl ---------------------------------------------------------

struct Governor::Impl {
  enum class Cause { kNone, kExternal, kTrip, kWatchdog, kBudget };

  mutable std::mutex mu;

  // Armed-run state.
  bool armed = false;
  bool wrapup = false;
  RunBudget budget;
  WatchdogConfig watchdog;
  CancelToken external;
  std::function<double()> virtual_now;
  bool has_virtual_limit = false;
  Clock::time_point run_wall_start{};
  double run_virtual_start = 0;
  bool in_stage = false;
  std::string stage;
  Clock::time_point stage_wall_start{};
  double stage_virtual_start = 0;
  std::vector<StageSpend> completed;

  // Cancellation state (first cause wins).
  Cause cause = Cause::kNone;
  std::string reason;
  std::string cancel_site;
  std::string expired_stage;

  // Stall watchdog.
  double best_residual = std::numeric_limits<double>::infinity();
  int stalled_restarts = 0;

  // Liveness feeds — bare atomics, written by stream threads without mu.
  std::atomic<std::uint64_t> heartbeat_ticks{0};
  std::atomic<int> busy_streams{0};

  // Monitor thread (wall deadlines + heartbeat staleness).
  std::thread monitor;
  std::condition_variable cv;
  bool stop_monitor = false;

  // Test instrumentation.
  bool recording = false;
  std::set<std::string> sites;
  bool trip_set = false;
  std::string trip_site;
  std::uint64_t trip_nth = 1;
  std::uint64_t trip_seen = 0;
  std::atomic<std::uint64_t> after_fire{0};

  /// Whether this instance currently holds a +1 in detail::g_active.
  bool active_contrib = false;

  ~Impl() {
    // A destroyed governor must drop its contribution or every poll site in
    // the process pays the slow path forever.
    if (active_contrib) {
      detail::g_active.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  void refresh_active_locked() {
    const bool want = armed || recording || trip_set || cause != Cause::kNone;
    if (want != active_contrib) {
      detail::g_active.fetch_add(want ? 1 : -1, std::memory_order_relaxed);
      active_contrib = want;
    }
  }

  void fire_locked(Cause c, std::string why, const std::string& subcounter,
                   std::vector<std::string>& counters, std::string& warn) {
    if (cause != Cause::kNone) return;
    cause = c;
    reason = std::move(why);
    if (in_stage) expired_stage = stage;
    switch (c) {
      case Cause::kBudget:
        counters.push_back("budget.expired");
        break;
      case Cause::kWatchdog:
        counters.push_back("watchdog.fired");
        break;
      default:
        counters.push_back("cancel.requested");
        break;
    }
    if (!subcounter.empty()) counters.push_back(subcounter);
    warn = "cancellation fired: " + reason;
    refresh_active_locked();
  }

  void check_budget_locked(bool include_virtual,
                           std::vector<std::string>& counters,
                           std::string& warn) {
    if (!armed || cause != Cause::kNone) return;
    const auto now = Clock::now();
    if (budget.total.wall_ms > 0 &&
        ms_between(run_wall_start, now) > budget.total.wall_ms) {
      fire_locked(Cause::kBudget, "budget.total.wall", "budget.expired.total",
                  counters, warn);
      return;
    }
    const StageLimit* stage_limit = nullptr;
    if (in_stage) {
      const auto it = budget.stages.find(stage);
      if (it != budget.stages.end()) stage_limit = &it->second;
    }
    if (stage_limit != nullptr && stage_limit->wall_ms > 0 &&
        ms_between(stage_wall_start, now) > stage_limit->wall_ms) {
      fire_locked(Cause::kBudget, "budget." + stage + ".wall",
                  "budget.expired." + stage, counters, warn);
      return;
    }
    if (!include_virtual || !has_virtual_limit || !virtual_now) return;
    const double vn = virtual_now();
    if (budget.total.virtual_seconds > 0 &&
        vn - run_virtual_start > budget.total.virtual_seconds) {
      fire_locked(Cause::kBudget, "budget.total.virtual",
                  "budget.expired.total", counters, warn);
      return;
    }
    if (stage_limit != nullptr && stage_limit->virtual_seconds > 0 &&
        vn - stage_virtual_start > stage_limit->virtual_seconds) {
      fire_locked(Cause::kBudget, "budget." + stage + ".virtual",
                  "budget.expired." + stage, counters, warn);
    }
  }

  /// Per-poll bookkeeping: recording, trip rules, external token, budget
  /// deadlines, first-site capture, after-fire counting.
  void evaluate_locked(std::string_view site,
                       std::vector<std::string>& counters, std::string& warn) {
    if (recording) sites.insert(std::string(site));
    if (trip_set && site == trip_site) {
      ++trip_seen;
      if (trip_seen == trip_nth) {
        fire_locked(Cause::kTrip, "trip:" + std::string(site),
                    "cancel.requested.trip", counters, warn);
      }
    }
    if (armed && cause == Cause::kNone && external.cancelled()) {
      fire_locked(Cause::kExternal, "external", "cancel.requested.external",
                  counters, warn);
    }
    check_budget_locked(/*include_virtual=*/true, counters, warn);
    if (cause != Cause::kNone && !wrapup) {
      after_fire.fetch_add(1, std::memory_order_relaxed);
      if (cancel_site.empty() && !site.empty()) {
        cancel_site = std::string(site);
        counters.push_back("cancel.cancelled");
        counters.push_back("cancel.cancelled." + cancel_site);
      }
    }
  }

  [[nodiscard]] bool anytime_allowed_locked() const {
    return (cause == Cause::kBudget || cause == Cause::kWatchdog) &&
           budget.anytime;
  }

  void monitor_main() {
    std::unique_lock lock(mu);
    std::uint64_t last_tick = heartbeat_ticks.load(std::memory_order_relaxed);
    Clock::time_point last_beat = Clock::now();
    while (!stop_monitor) {
      cv.wait_for(lock, std::chrono::duration<double, std::milli>(
                            watchdog.poll_interval_ms));
      if (stop_monitor) break;
      if (cause != Cause::kNone) continue;  // polls will surface it
      std::vector<std::string> counters;
      std::string warn;
      check_budget_locked(/*include_virtual=*/false, counters, warn);
      if (cause == Cause::kNone && watchdog.heartbeat_timeout_ms > 0) {
        const auto tick = heartbeat_ticks.load(std::memory_order_relaxed);
        const bool busy = busy_streams.load(std::memory_order_relaxed) > 0;
        const auto now = Clock::now();
        if (tick != last_tick || !busy) {
          last_tick = tick;
          last_beat = now;
        } else if (ms_between(last_beat, now) > watchdog.heartbeat_timeout_ms) {
          fire_locked(Cause::kWatchdog, "watchdog.heartbeat",
                      "watchdog.fired.heartbeat", counters, warn);
        }
      }
      if (!counters.empty()) {
        lock.unlock();
        emit_counters(counters, warn);
        lock.lock();
      }
    }
  }
};

Governor::Governor() : impl_(std::make_unique<Impl>()) {}

Governor::~Governor() {
  // Per-job governors die with their job; make sure the monitor thread is
  // gone and the active contribution is dropped (Impl::~Impl backstops the
  // latter for instances destroyed with trip/recording state set).
  disarm();
}

Governor& governor() {
  // Leaked deliberately: stream threads may feed heartbeats during static
  // destruction, after a function-local static would already be gone.
  static Governor* instance = new Governor;
  return *instance;
}

Governor& current_governor() noexcept {
  Governor* bound = detail::bound_governor();
  return bound != nullptr ? *bound : governor();
}

// --- Governor methods -------------------------------------------------------

void Governor::arm(const RunBudget& budget, const WatchdogConfig& watchdog,
                   CancelToken external, std::function<double()> virtual_now) {
  Impl& I = impl();
  bool need_monitor = false;
  {
    std::lock_guard lock(I.mu);
    if (I.armed) {
      throw std::logic_error("cancel governor already armed");
    }
    I.armed = true;
    I.wrapup = false;
    I.budget = budget;
    I.watchdog = watchdog;
    I.external = std::move(external);
    I.virtual_now = std::move(virtual_now);
    I.has_virtual_limit = budget.total.virtual_seconds > 0;
    bool any_stage_wall = false;
    for (const auto& [_, limit] : budget.stages) {
      I.has_virtual_limit = I.has_virtual_limit || limit.virtual_seconds > 0;
      any_stage_wall = any_stage_wall || limit.wall_ms > 0;
    }
    I.run_wall_start = Clock::now();
    I.run_virtual_start = I.virtual_now ? I.virtual_now() : 0;
    I.in_stage = false;
    I.stage.clear();
    I.completed.clear();
    I.cause = Impl::Cause::kNone;
    I.reason.clear();
    I.cancel_site.clear();
    I.expired_stage.clear();
    I.best_residual = std::numeric_limits<double>::infinity();
    I.stalled_restarts = 0;
    I.after_fire.store(0, std::memory_order_relaxed);
    I.stop_monitor = false;
    need_monitor = watchdog.heartbeat_timeout_ms > 0 ||
                   budget.total.wall_ms > 0 || any_stage_wall;
    if (need_monitor) {
      I.monitor = std::thread([&I] { I.monitor_main(); });
    }
    I.refresh_active_locked();
  }
}

void Governor::disarm() {
  Impl& I = impl();
  {
    std::lock_guard lock(I.mu);
    if (!I.armed) return;
    I.stop_monitor = true;
  }
  I.cv.notify_all();
  if (I.monitor.joinable()) I.monitor.join();
  {
    std::lock_guard lock(I.mu);
    I.armed = false;
    I.wrapup = false;
    I.cause = Impl::Cause::kNone;
    I.reason.clear();
    I.cancel_site.clear();
    I.expired_stage.clear();
    I.in_stage = false;
    I.stage.clear();
    I.completed.clear();
    I.external = CancelToken{};
    I.virtual_now = nullptr;
    I.has_virtual_limit = false;
    // after_fire is deliberately preserved so tests can read the bounded-
    // latency counter after the run; arm()/reset_for_test() clear it.
    I.refresh_active_locked();
  }
}

bool Governor::armed() const {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  return I.armed;
}

void Governor::begin_stage(std::string_view stage) {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  if (!I.armed) return;
  I.in_stage = true;
  I.stage = std::string(stage);
  I.stage_wall_start = Clock::now();
  I.stage_virtual_start = I.virtual_now ? I.virtual_now() : 0;
}

void Governor::end_stage() {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  if (!I.armed || !I.in_stage) return;
  StageSpend s;
  s.stage = I.stage;
  const auto it = I.budget.stages.find(I.stage);
  if (it != I.budget.stages.end()) {
    s.wall_ms_limit = it->second.wall_ms;
    s.virtual_limit_seconds = it->second.virtual_seconds;
  }
  s.wall_ms_spent = ms_between(I.stage_wall_start, Clock::now());
  s.virtual_spent_seconds =
      I.virtual_now ? I.virtual_now() - I.stage_virtual_start : 0;
  s.expired_here = I.cause != Impl::Cause::kNone && I.expired_stage == I.stage;
  I.completed.push_back(std::move(s));
  I.in_stage = false;
  I.stage.clear();
}

void Governor::begin_wrapup(std::string_view detail) {
  Impl& I = impl();
  std::vector<std::string> counters;
  std::string warn;
  {
    std::lock_guard lock(I.mu);
    if (I.wrapup) return;
    I.wrapup = true;
    counters.push_back("budget.anytime_results");
    warn = "producing anytime (partial) result: " + std::string(detail);
  }
  emit_counters(counters, warn);
}

bool Governor::wrapup_active() const {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  return I.wrapup;
}

bool Governor::anytime_allowed() const {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  return I.anytime_allowed_locked();
}

bool Governor::cancel_requested() const {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  return I.cause != Impl::Cause::kNone && !I.wrapup;
}

void Governor::request_cancel(std::string_view reason) {
  Impl& I = impl();
  std::vector<std::string> counters;
  std::string warn;
  {
    std::lock_guard lock(I.mu);
    I.fire_locked(Impl::Cause::kExternal, std::string(reason),
                  "cancel.requested.manual", counters, warn);
  }
  emit_counters(counters, warn);
}

BudgetReport Governor::report() const {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  BudgetReport r;
  if (!I.armed) return r;
  r.enabled = true;
  r.expired = I.cause == Impl::Cause::kBudget;
  r.watchdog_fired = I.cause == Impl::Cause::kWatchdog;
  r.anytime = I.wrapup;
  r.reason = I.reason;
  r.cancel_site = I.cancel_site;
  r.expired_stage = I.expired_stage;
  r.total_wall_ms_limit = I.budget.total.wall_ms;
  r.total_wall_ms_spent = ms_between(I.run_wall_start, Clock::now());
  r.total_virtual_limit_seconds = I.budget.total.virtual_seconds;
  r.total_virtual_spent_seconds =
      I.virtual_now ? I.virtual_now() - I.run_virtual_start : 0;
  r.stages = I.completed;
  if (I.in_stage) {
    StageSpend s;
    s.stage = I.stage;
    const auto it = I.budget.stages.find(I.stage);
    if (it != I.budget.stages.end()) {
      s.wall_ms_limit = it->second.wall_ms;
      s.virtual_limit_seconds = it->second.virtual_seconds;
    }
    s.wall_ms_spent = ms_between(I.stage_wall_start, Clock::now());
    s.virtual_spent_seconds =
        I.virtual_now ? I.virtual_now() - I.stage_virtual_start : 0;
    s.expired_here =
        I.cause != Impl::Cause::kNone && I.expired_stage == I.stage;
    r.stages.push_back(std::move(s));
  }
  return r;
}

void Governor::note_solver_progress(double worst_residual) {
  Impl& I = impl();
  std::vector<std::string> counters;
  std::string warn;
  {
    std::lock_guard lock(I.mu);
    if (!I.armed || I.watchdog.stall_restarts <= 0 ||
        I.cause != Impl::Cause::kNone) {
      return;
    }
    const bool improved =
        worst_residual < I.best_residual * (1.0 - I.watchdog.stall_rtol);
    if (improved) {
      I.stalled_restarts = 0;
    } else {
      I.stalled_restarts += 1;
    }
    if (worst_residual < I.best_residual) I.best_residual = worst_residual;
    if (I.stalled_restarts >= I.watchdog.stall_restarts) {
      I.fire_locked(Impl::Cause::kWatchdog,
                    "watchdog.stall after " +
                        std::to_string(I.stalled_restarts) +
                        " flat restarts",
                    "watchdog.fired.stall", counters, warn);
    }
  }
  emit_counters(counters, warn);
}

void Governor::note_transfer(std::string_view site, double measured_seconds,
                             double modeled_seconds) {
  Impl& I = impl();
  std::vector<std::string> counters;
  std::string warn;
  {
    std::lock_guard lock(I.mu);
    if (!I.armed || I.watchdog.transfer_overrun_factor <= 0 ||
        I.cause != Impl::Cause::kNone || modeled_seconds <= 0) {
      return;
    }
    if (measured_seconds >
        I.watchdog.transfer_overrun_factor * modeled_seconds) {
      I.fire_locked(Impl::Cause::kWatchdog,
                    "watchdog.transfer_overrun at " + std::string(site),
                    "watchdog.fired.transfer_overrun", counters, warn);
    }
  }
  emit_counters(counters, warn);
}

void Governor::set_recording(bool on) {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  I.recording = on;
  if (on) I.sites.clear();
  I.refresh_active_locked();
}

std::vector<std::string> Governor::sites_seen() const {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  return {I.sites.begin(), I.sites.end()};
}

void Governor::set_trip(std::string_view site, std::uint64_t nth) {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  I.trip_set = true;
  I.trip_site = std::string(site);
  I.trip_nth = nth == 0 ? 1 : nth;
  I.trip_seen = 0;
  I.refresh_active_locked();
}

void Governor::clear_trip() {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  I.trip_set = false;
  I.refresh_active_locked();
}

std::uint64_t Governor::polls_after_fire() const {
  return impl().after_fire.load(std::memory_order_relaxed);
}

void Governor::reset_for_test() {
  Impl& I = impl();
  std::lock_guard lock(I.mu);
  if (I.armed) {
    throw std::logic_error("reset_for_test while the governor is armed");
  }
  I.wrapup = false;
  I.cause = Impl::Cause::kNone;
  I.reason.clear();
  I.cancel_site.clear();
  I.expired_stage.clear();
  I.completed.clear();
  I.recording = false;
  I.sites.clear();
  I.trip_set = false;
  I.trip_seen = 0;
  I.after_fire.store(0, std::memory_order_relaxed);
  I.best_residual = std::numeric_limits<double>::infinity();
  I.stalled_restarts = 0;
  I.refresh_active_locked();
}

// --- poll-site slow paths ---------------------------------------------------

namespace detail {

void on_poll(std::string_view site) {
  Governor::Impl& I = current_governor().impl();
  std::vector<std::string> counters;
  std::string warn;
  bool do_throw = false;
  std::string reason_copy;
  {
    std::lock_guard lock(I.mu);
    I.evaluate_locked(site, counters, warn);
    if (I.cause != Governor::Impl::Cause::kNone && !I.wrapup) {
      do_throw = true;
      reason_copy = I.reason;
    }
  }
  emit_counters(counters, warn);
  if (do_throw) {
    throw CancelledError("run cancelled: " + reason_copy, site);
  }
}

bool on_pending(std::string_view site) noexcept {
  try {
    Governor::Impl& I = current_governor().impl();
    std::vector<std::string> counters;
    std::string warn;
    bool result = false;
    {
      std::lock_guard lock(I.mu);
      I.evaluate_locked(site, counters, warn);
      result = I.cause != Governor::Impl::Cause::kNone && !I.wrapup;
    }
    emit_counters(counters, warn);
    return result;
  } catch (...) {
    return true;  // catastrophic (allocation) failure: stop doing work
  }
}

bool on_expired(std::string_view site) {
  Governor::Impl& I = current_governor().impl();
  std::vector<std::string> counters;
  std::string warn;
  bool soft_stop = false;
  bool do_throw = false;
  std::string reason_copy;
  {
    std::lock_guard lock(I.mu);
    I.evaluate_locked(site, counters, warn);
    if (I.cause != Governor::Impl::Cause::kNone && !I.wrapup) {
      if (I.anytime_allowed_locked()) {
        soft_stop = true;
      } else {
        do_throw = true;
        reason_copy = I.reason;
      }
    }
  }
  emit_counters(counters, warn);
  if (do_throw) {
    throw CancelledError("run cancelled: " + reason_copy, site);
  }
  return soft_stop;
}

bool on_interrupted(std::string_view site) noexcept {
  try {
    Governor::Impl& I = current_governor().impl();
    std::vector<std::string> counters;
    std::string warn;
    bool result = false;
    {
      std::lock_guard lock(I.mu);
      I.evaluate_locked(site, counters, warn);
      result = I.cause != Governor::Impl::Cause::kNone && !I.wrapup &&
               !I.anytime_allowed_locked();
    }
    emit_counters(counters, warn);
    return result;
  } catch (...) {
    return true;  // catastrophic (allocation) failure: stop doing work
  }
}

void on_heartbeat() noexcept {
  // Stream threads are never governor-bound, so heartbeats land on the
  // process default; per-job governors therefore never see heartbeats and
  // their heartbeat watchdog stays inert (busy_streams == 0 suppresses it).
  current_governor().impl().heartbeat_ticks.fetch_add(
      1, std::memory_order_relaxed);
}

void on_stream_busy(bool busy) noexcept {
  current_governor().impl().busy_streams.fetch_add(
      busy ? 1 : -1, std::memory_order_relaxed);
}

}  // namespace detail

// --- RAII -------------------------------------------------------------------

RunScope::RunScope(const RunBudget& budget, const WatchdogConfig& watchdog,
                   CancelToken external, std::function<double()> virtual_now)
    : governor_(&current_governor()) {
  if (governor_->armed()) return;  // nested run: outer budget keeps governing
  governor_->arm(budget, watchdog, std::move(external),
                 std::move(virtual_now));
  armed_ = true;
}

RunScope::~RunScope() {
  if (armed_) governor_->disarm();
}

StageScope::StageScope(std::string_view stage) {
  cancel::Governor& g = current_governor();
  if (!g.armed()) return;
  g.begin_stage(stage);
  active_ = true;
}

StageScope::~StageScope() {
  if (active_) current_governor().end_stage();
}

}  // namespace fastsc::cancel
