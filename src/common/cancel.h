// Cooperative cancellation, run budgets, and a hang watchdog.
//
// Long-running stages (IRLM restarts, CG iterations, Lloyd sweeps, thread-pool
// chunks, stream work queues, similarity construction) poll a process-wide
// governor at bounded intervals.  When nothing is armed — no budget, no
// external token, no watchdog, no test instrumentation — every poll site
// reduces to a single relaxed atomic load, the same discipline as
// `fault::triggered` (see src/fault/fault.h).
//
// Three poll flavours, by how the caller can react:
//   poll(site)     throws CancelledError; for sequential code that unwinds.
//   pending(site)  never throws; for thread-pool workers and stream threads
//                  that must not propagate exceptions through `run_workers`.
//   expired(site)  soft deadline check at an "anytime" boundary (e.g. a Lloyd
//                  sweep): returns true when the caller should stop and keep
//                  its best-so-far result.  Hard cancellations (external
//                  token, anytime=0 budgets) still throw.
//
// Budgets are charged against the wall clock *and* the device virtual
// timeline (DeviceCounters::modeled_transfer_seconds).  Virtual limits are
// evaluated synchronously at poll sites, so a virtual-budget expiry lands at
// the same poll of the same iteration on every run — budget-expiry tests are
// exactly reproducible, including under TSan.  Wall limits are additionally
// enforced by a monitor thread so a wedged stage cannot outlive its deadline.
//
// The watchdog converts hangs into cancellations: no residual improvement
// across N IRLM restarts, a stale stream heartbeat while streams are busy, or
// a transfer exceeding k x its transfer-model estimate.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fastsc::cancel {

// --- error ------------------------------------------------------------------

/// Thrown when a poll site observes a cancellation request.  Deliberately
/// *not* a device::DeviceError: the degradation ladder retries DeviceErrors
/// on a lower rung, but a cancelled run must unwind, not retry.  Carries the
/// same first-wins site annotation as DeviceError so a CancelledError raised
/// inside a stream op keeps its site through the sticky-error rethrow.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what_arg)
      : std::runtime_error(what_arg) {}
  CancelledError(const std::string& what_arg, std::string_view site)
      : std::runtime_error(what_arg) {
    annotate_site(site);
  }

  /// Records the poll site (first annotation wins).
  void annotate_site(std::string_view site) {
    if (site_.empty() && !site.empty()) {
      site_ = std::string(site);
      annotated_ = std::string(std::runtime_error::what()) +
                   " [site: " + site_ + "]";
    }
  }

  [[nodiscard]] const std::string& site() const noexcept { return site_; }

  [[nodiscard]] const char* what() const noexcept override {
    return annotated_.empty() ? std::runtime_error::what()
                              : annotated_.c_str();
  }

 private:
  std::string site_;
  std::string annotated_;
};

// --- token ------------------------------------------------------------------

namespace detail {
struct TokenState {
  std::atomic<bool> cancelled{false};
};
}  // namespace detail

class CancelSource;

/// Read side of a cancellation flag.  Copyable, cheap, thread-safe; a
/// default-constructed token is valid-less and never reports cancellation.
class CancelToken {
 public:
  CancelToken() = default;

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] bool cancelled() const noexcept {
    return state_ != nullptr &&
           state_->cancelled.load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const detail::TokenState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<const detail::TokenState> state_;
};

/// Write side: hand `token()` to a SpectralConfig, call `request_cancel()`
/// from any thread to stop the run at its next poll site.
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<detail::TokenState>()) {}

  void request_cancel() noexcept {
    state_->cancelled.store(true, std::memory_order_relaxed);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return state_->cancelled.load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<detail::TokenState> state_;
};

// --- budget -----------------------------------------------------------------

/// One limit pair; 0 means "unlimited" on that axis.
struct StageLimit {
  double wall_ms = 0;          ///< wall-clock milliseconds
  double virtual_seconds = 0;  ///< device modeled-transfer seconds
  [[nodiscard]] bool enabled() const {
    return wall_ms > 0 || virtual_seconds > 0;
  }
};

/// Run budget: a total limit plus optional per-stage limits, keyed by the
/// core::kStage* names ("similarity", "eigensolver", "kmeans").
///
/// Spec grammar (';'-separated `key=value` clauses):
///   total=<ms>             total wall budget in milliseconds
///   total.virtual=<s>      total virtual budget in modeled seconds
///   <stage>=<ms>           per-stage wall budget
///   <stage>.virtual=<s>    per-stage virtual budget
///   anytime=0|1            partial results on expiry (default 1)
/// A bare number is shorthand for `total=<ms>`.  FASTSC_BUDGET accepts the
/// same grammar.
struct RunBudget {
  StageLimit total;
  std::map<std::string, StageLimit> stages;
  /// On expiry, snapshot the best partial eigenpairs and still run k-means
  /// (BudgetReport.anytime == true) instead of throwing CancelledError.
  bool anytime = true;

  [[nodiscard]] bool enabled() const;
  [[nodiscard]] static RunBudget parse(std::string_view spec);
  [[nodiscard]] std::string to_string() const;
};

/// Parses FASTSC_BUDGET once per process; empty budget when unset.
[[nodiscard]] const RunBudget& env_budget();

// --- watchdog ---------------------------------------------------------------

/// Hang detection.  Each heuristic is off at its zero value.
/// Spec grammar (',' or ';'-separated `key=value`): stall_restarts=<n>,
/// stall_rtol=<x>, heartbeat_ms=<ms>, transfer_overrun=<k>, poll_ms=<ms>.
struct WatchdogConfig {
  /// Fire after this many consecutive IRLM restarts whose worst residual
  /// improved by less than stall_rtol (relative).  Deterministic against the
  /// `lanczos.convergence` stall fault.
  int stall_restarts = 0;
  double stall_rtol = 1e-3;
  /// Fire when streams are busy but no stream op completed for this long.
  double heartbeat_timeout_ms = 0;
  /// Fire when a transfer's measured time exceeds this factor times its
  /// transfer-model estimate.
  double transfer_overrun_factor = 0;
  /// Monitor-thread sampling period (heartbeat + wall deadlines).
  double poll_interval_ms = 10;

  [[nodiscard]] bool enabled() const {
    return stall_restarts > 0 || heartbeat_timeout_ms > 0 ||
           transfer_overrun_factor > 0;
  }
  [[nodiscard]] static WatchdogConfig parse(std::string_view spec);
  [[nodiscard]] std::string to_string() const;
};

// --- report -----------------------------------------------------------------

struct StageSpend {
  std::string stage;
  double wall_ms_limit = 0;
  double wall_ms_spent = 0;
  double virtual_limit_seconds = 0;
  double virtual_spent_seconds = 0;
  bool expired_here = false;
};

/// Folded into SpectralResult and the run-report JSON ("budget" section).
struct BudgetReport {
  bool enabled = false;         ///< a budget/watchdog/token governed the run
  bool expired = false;         ///< a budget limit fired
  bool watchdog_fired = false;  ///< the watchdog fired
  bool anytime = false;         ///< result is a partial ("anytime") answer
  std::string reason;           ///< e.g. "budget.eigensolver.virtual"
  std::string cancel_site;      ///< poll site where cancellation surfaced
  std::string expired_stage;    ///< stage active when the deadline hit
  double total_wall_ms_limit = 0;
  double total_wall_ms_spent = 0;
  double total_virtual_limit_seconds = 0;
  double total_virtual_spent_seconds = 0;
  std::vector<StageSpend> stages;
};

// --- governor ---------------------------------------------------------------

class Governor;

namespace detail {
/// Count of governors with anything armed (budget, watchdog, external token,
/// recording mode, or a test trip rule) across the process.  The *only* cost
/// at a poll site when every governor is disarmed is one relaxed load of
/// this counter.
extern std::atomic<int> g_active;

/// Thread-local governor binding: null means "use the process default".
/// Service executors bind a per-job governor so concurrent jobs poll, expire
/// and cancel independently; ThreadPool::run_workers propagates the
/// dispatcher's binding into the workers for the duration of a bulk job.
[[nodiscard]] Governor* bound_governor() noexcept;
void bind_governor(Governor* g) noexcept;

void on_poll(std::string_view site);               // may throw CancelledError
[[nodiscard]] bool on_pending(std::string_view site) noexcept;
[[nodiscard]] bool on_expired(std::string_view site);  // may throw
[[nodiscard]] bool on_interrupted(std::string_view site) noexcept;
void on_heartbeat() noexcept;
void on_stream_busy(bool busy) noexcept;
}  // namespace detail

/// Deadline/cancellation governor.  One process-wide instance (`governor()`)
/// backs plain pipeline runs, mirroring fault::injector(); the service layer
/// additionally creates one instance per job and binds it to the executing
/// thread (GovernorBindScope) so every job is individually cancellable.
/// Armed per spectral run via RunScope; stages bracketed via StageScope.
class Governor {
 public:
  Governor();
  ~Governor();
  Governor(const Governor&) = delete;
  Governor& operator=(const Governor&) = delete;

  /// Arms budget + watchdog + optional external token.  `virtual_now`
  /// returns the device virtual timeline position in seconds (pass
  /// DeviceContext::modeled_transfer_seconds_now); may be empty when no
  /// virtual limits are used.  Starts the monitor thread when wall limits
  /// or the heartbeat watchdog need one.  No-op nesting is not supported:
  /// arming while armed throws std::logic_error.
  void arm(const RunBudget& budget, const WatchdogConfig& watchdog,
           CancelToken external, std::function<double()> virtual_now);
  void disarm();
  [[nodiscard]] bool armed() const;

  void begin_stage(std::string_view stage);
  void end_stage();

  /// Entering anytime wrap-up: enforcement stops (polls become no-ops) so the
  /// remaining pipeline — k-means on the partial embedding — can complete.
  void begin_wrapup(std::string_view detail);
  [[nodiscard]] bool wrapup_active() const;

  /// True when a cancellation has fired whose cause permits a partial
  /// result (budget expiry or watchdog with anytime enabled).
  [[nodiscard]] bool anytime_allowed() const;
  [[nodiscard]] bool cancel_requested() const;

  /// Hard external cancellation (also used by the watchdog internally).
  void request_cancel(std::string_view reason);

  [[nodiscard]] BudgetReport report() const;

  // Watchdog feeds.
  void note_solver_progress(double worst_residual);
  void note_transfer(std::string_view site, double measured_seconds,
                     double modeled_seconds);

  // Test instrumentation (mirrors fault recording / nth-trip).
  void set_recording(bool on);
  [[nodiscard]] std::vector<std::string> sites_seen() const;
  /// Fires a cancellation at the nth visit of `site` (exact match).
  void set_trip(std::string_view site, std::uint64_t nth);
  void clear_trip();
  /// Poll-site visits observed after the cancellation fired — the
  /// "bounded work after cancellation" metric.
  [[nodiscard]] std::uint64_t polls_after_fire() const;
  /// Clears fired/trip/recording state (test teardown; requires disarmed).
  void reset_for_test();

 private:
  friend void detail::on_poll(std::string_view);
  friend bool detail::on_pending(std::string_view) noexcept;
  friend bool detail::on_expired(std::string_view);
  friend bool detail::on_interrupted(std::string_view) noexcept;
  friend void detail::on_heartbeat() noexcept;
  friend void detail::on_stream_busy(bool) noexcept;

  struct Impl;
  [[nodiscard]] Impl& impl() const { return *impl_; }
  std::unique_ptr<Impl> impl_;
};

/// Process-wide default governor (plain pipeline runs, env budgets, tests).
[[nodiscard]] Governor& governor();

/// The governor poll sites consult: the thread-bound instance when a
/// GovernorBindScope is active on this thread (or was propagated by
/// ThreadPool), else the process default.
[[nodiscard]] Governor& current_governor() noexcept;

/// Binds `g` as the calling thread's governor for the scope's lifetime
/// (null rebinds to the process default).  The service's executor threads
/// wrap each job in one of these so the pipeline's internal RunScope arms
/// the job's own governor instead of the shared one.
class GovernorBindScope {
 public:
  explicit GovernorBindScope(Governor* g) noexcept
      : previous_(detail::bound_governor()) {
    detail::bind_governor(g);
  }
  ~GovernorBindScope() { detail::bind_governor(previous_); }
  GovernorBindScope(const GovernorBindScope&) = delete;
  GovernorBindScope& operator=(const GovernorBindScope&) = delete;

 private:
  Governor* previous_;
};

// --- poll sites -------------------------------------------------------------

/// Throwing poll for sequential code; one relaxed load when disarmed.
inline void poll(std::string_view site) {
  if (detail::g_active.load(std::memory_order_relaxed) == 0) return;
  detail::on_poll(site);
}

/// Non-throwing poll for thread-pool workers / stream threads: true means
/// "stop doing work"; the sequential coordinator surfaces the error.
[[nodiscard]] inline bool pending(std::string_view site) noexcept {
  if (detail::g_active.load(std::memory_order_relaxed) == 0) return false;
  return detail::on_pending(site);
}

/// Soft deadline check at an anytime boundary: true = keep best-so-far and
/// stop.  Throws instead when the cancellation cause forbids partial results.
[[nodiscard]] inline bool expired(std::string_view site) {
  if (detail::g_active.load(std::memory_order_relaxed) == 0) return false;
  return detail::on_expired(site);
}

/// Hard-cancellation check for parallel chunk boundaries: true only when the
/// cause forbids partial results (external token, test trip, anytime=0
/// budgets).  Anytime expiries deliberately return false so a parallel
/// primitive completes and the deadline surfaces at the next algorithm
/// boundary instead of tearing a half-written output buffer.
[[nodiscard]] inline bool interrupted(std::string_view site) noexcept {
  if (detail::g_active.load(std::memory_order_relaxed) == 0) return false;
  return detail::on_interrupted(site);
}

/// Stream-thread liveness feeds.  Deliberately *not* gated on g_active: the
/// busy count must stay balanced across arm/disarm boundaries, and both are
/// single relaxed fetch_adds — negligible next to executing a stream op.
inline void heartbeat() noexcept { detail::on_heartbeat(); }
inline void stream_busy(bool busy) noexcept { detail::on_stream_busy(busy); }

/// Watchdog feeds with the disarmed-fast-path gate.
inline void note_progress(double worst_residual) {
  if (detail::g_active.load(std::memory_order_relaxed) == 0) return;
  current_governor().note_solver_progress(worst_residual);
}
inline void note_transfer(std::string_view site, double measured_seconds,
                          double modeled_seconds) {
  if (detail::g_active.load(std::memory_order_relaxed) == 0) return;
  current_governor().note_transfer(site, measured_seconds, modeled_seconds);
}

// --- RAII -------------------------------------------------------------------

/// Arms the calling thread's current governor for one spectral run; disarms
/// on scope exit.  When that governor is already armed (nested pipeline,
/// e.g. a baseline comparison driving spectral_cluster twice) the inner
/// scope is a no-op and the outer budget keeps governing.  Scoping is
/// per-governor: two service jobs, each bound to its own Governor via
/// GovernorBindScope, arm and expire independently — the first-wins
/// semantics only apply within one governor instance.
class RunScope {
 public:
  RunScope(const RunBudget& budget, const WatchdogConfig& watchdog,
           CancelToken external, std::function<double()> virtual_now);
  ~RunScope();
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

  [[nodiscard]] bool armed_here() const noexcept { return armed_; }

 private:
  Governor* governor_ = nullptr;  ///< the instance this scope armed
  bool armed_ = false;
};

/// Brackets one pipeline stage for per-stage budget accounting; no-op when
/// the governor is idle.
class StageScope {
 public:
  explicit StageScope(std::string_view stage);
  ~StageScope();
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  bool active_ = false;
};

}  // namespace fastsc::cancel
