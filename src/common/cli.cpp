#include "common/cli.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/error.h"

namespace fastsc {

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

bool CliParser::parse(int argc, const char* const* argv) {
  bool help = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help = true;
      continue;
    }
    FASTSC_CHECK(arg.size() > 2 && arg.substr(0, 2) == "--",
                 "flags must look like --name=value or --name value");
    arg.remove_prefix(2);
    std::string name, value;
    if (auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
        value = argv[++i];
      } else {
        value = "true";  // bare flag => boolean
      }
    }
    values_.emplace_back(std::move(name), std::move(value));
  }
  return !help;
}

void CliParser::check_unknown() const {
  for (const auto& [k, v] : values_) {
    const bool known = std::any_of(known_.begin(), known_.end(),
                                   [&](const Flag& f) { return f.name == k; });
    if (!known) {
      throw std::invalid_argument("unknown flag --" + k +
                                  " (run with --help for the flag list)");
    }
  }
}

std::optional<std::string> CliParser::raw(std::string_view name) const {
  for (const auto& [k, v] : values_) {
    if (k == name) return v;
  }
  return std::nullopt;
}

void CliParser::note_flag(std::string_view name, std::string_view help,
                          std::string default_repr) {
  auto it = std::find_if(known_.begin(), known_.end(),
                         [&](const Flag& f) { return f.name == name; });
  if (it == known_.end()) {
    known_.push_back(Flag{std::string(name), std::string(help),
                          std::move(default_repr)});
  }
}

index_t CliParser::get_int(std::string_view name, index_t default_value,
                           std::string_view help) {
  note_flag(name, help, std::to_string(default_value));
  if (auto v = raw(name)) {
    try {
      return static_cast<index_t>(std::stoll(*v));
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + std::string(name) +
                                  " expects an integer, got '" + *v + "'");
    }
  }
  return default_value;
}

double CliParser::get_double(std::string_view name, double default_value,
                             std::string_view help) {
  note_flag(name, help, std::to_string(default_value));
  if (auto v = raw(name)) {
    try {
      return std::stod(*v);
    } catch (const std::exception&) {
      throw std::invalid_argument("flag --" + std::string(name) +
                                  " expects a number, got '" + *v + "'");
    }
  }
  return default_value;
}

std::string CliParser::get_string(std::string_view name,
                                  std::string_view default_value,
                                  std::string_view help) {
  note_flag(name, help, std::string(default_value));
  if (auto v = raw(name)) return *v;
  return std::string(default_value);
}

bool CliParser::get_bool(std::string_view name, bool default_value,
                         std::string_view help) {
  note_flag(name, help, default_value ? "true" : "false");
  if (auto v = raw(name)) {
    if (*v == "true" || *v == "1" || *v == "yes") return true;
    if (*v == "false" || *v == "0" || *v == "no") return false;
    throw std::invalid_argument("flag --" + std::string(name) +
                                " expects a boolean, got '" + *v + "'");
  }
  return default_value;
}

bool CliParser::provided(std::string_view name) const {
  return raw(name).has_value();
}

void CliParser::print_help() const {
  std::printf("%s\n\nFlags:\n", description_.c_str());
  for (const Flag& f : known_) {
    std::printf("  --%-24s %s (default: %s)\n", f.name.c_str(), f.help.c_str(),
                f.default_repr.c_str());
  }
}

}  // namespace fastsc
