// Tiny command-line flag parser shared by benches and examples.
//
// Supports --name=value and --name value forms, typed getters with defaults,
// and --help text assembled from the registered flags.  Unknown flags are an
// error so bench sweeps fail loudly instead of silently ignoring a typo.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fastsc {

class CliParser {
 public:
  CliParser(std::string program_description);

  /// Parse argv; returns false (after printing help) if --help was given.
  /// Throws std::invalid_argument on malformed or unknown flags.
  bool parse(int argc, const char* const* argv);

  /// Typed getters; register the flag (for --help) and return its value.
  [[nodiscard]] index_t get_int(std::string_view name, index_t default_value,
                                std::string_view help = "");
  [[nodiscard]] double get_double(std::string_view name, double default_value,
                                  std::string_view help = "");
  [[nodiscard]] std::string get_string(std::string_view name,
                                       std::string_view default_value,
                                       std::string_view help = "");
  [[nodiscard]] bool get_bool(std::string_view name, bool default_value,
                              std::string_view help = "");

  /// True if the user explicitly supplied the flag.
  [[nodiscard]] bool provided(std::string_view name) const;

  /// Print accumulated help text to stdout.
  void print_help() const;

  /// Throw if the user supplied a flag that no getter registered.  Call after
  /// all get_* calls so typos fail loudly.
  void check_unknown() const;

 private:
  struct Flag {
    std::string name;
    std::string help;
    std::string default_repr;
  };

  std::optional<std::string> raw(std::string_view name) const;
  void note_flag(std::string_view name, std::string_view help,
                 std::string default_repr);

  std::string description_;
  std::vector<std::pair<std::string, std::string>> values_;  // name -> raw
  std::vector<Flag> known_;
};

}  // namespace fastsc
