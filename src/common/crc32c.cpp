#include "common/crc32c.h"

#include <array>

namespace fastsc {

namespace {

// Reflected-table construction for the Castagnoli polynomial.  Built once at
// first use; 1 KiB, cache-resident for the duration of any framing pass.
std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  constexpr std::uint32_t kPolyReflected = 0x82F63B78u;  // 0x1EDC6F41 reversed
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t crc32c(const void* data, usize len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (usize i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace fastsc
