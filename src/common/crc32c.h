// CRC32C (Castagnoli, polynomial 0x1EDC6F41) for integrity-at-rest framing.
//
// Used by the SDC defense layer to seal byte payloads whose corruption the
// numeric ABFT checks cannot see: serialized LanczosCheckpoint blobs,
// ResultCache entries, and staged host<->device transfer buffers.  Software
// table-driven implementation (slice-by-1); throughput is irrelevant next to
// the O(nnz) kernels these frames protect, and the container bakes in no
// hardware CRC intrinsics we could rely on portably.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace fastsc {

/// CRC32C of `len` bytes.  `seed` chains incremental updates:
/// crc32c(b, n) == crc32c(b + k, n - k, crc32c(b, k)).
[[nodiscard]] std::uint32_t crc32c(const void* data, usize len,
                                   std::uint32_t seed = 0);

}  // namespace fastsc
