// Error handling helpers: FASTSC_CHECK for recoverable precondition
// violations (throws std::invalid_argument / std::runtime_error) and
// FASTSC_ASSERT for internal invariants (active in all build types; the
// numerical kernels are cheap to guard relative to their O(n)+ bodies).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fastsc::detail {

[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "fastsc check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_assert_failure(const char* expr, const char* file,
                                              int line) {
  std::ostringstream os;
  os << "fastsc internal invariant violated: (" << expr << ") at " << file
     << ":" << line;
  throw std::logic_error(os.str());
}

}  // namespace fastsc::detail

/// Validate a user-facing precondition; throws std::invalid_argument.
#define FASTSC_CHECK(expr, msg)                                              \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::fastsc::detail::throw_check_failure(#expr, __FILE__, __LINE__,       \
                                            (msg));                          \
    }                                                                        \
  } while (false)

/// Validate an internal invariant; throws std::logic_error.
#define FASTSC_ASSERT(expr)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::fastsc::detail::throw_assert_failure(#expr, __FILE__, __LINE__);     \
    }                                                                        \
  } while (false)
