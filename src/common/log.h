// Minimal leveled logging to stderr.
//
// Benches and examples print their primary output (tables) to stdout; the
// logger is for progress/diagnostic lines so that `bench > table.txt` stays
// clean.  Level is controlled programmatically or by FASTSC_LOG=debug|info|
// warn|error|off.
#pragma once

#include <sstream>
#include <string_view>

namespace fastsc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current global level (initialized from FASTSC_LOG on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

/// Streaming log statement: FASTSC_LOG_INFO("built graph, nnz=" << nnz);
#define FASTSC_LOG_AT(level, expr)                                      \
  do {                                                                  \
    if (static_cast<int>(level) >= static_cast<int>(::fastsc::log_level())) { \
      std::ostringstream fastsc_log_os;                                 \
      fastsc_log_os << expr;                                            \
      ::fastsc::detail::log_line(level, fastsc_log_os.str());           \
    }                                                                   \
  } while (false)

#define FASTSC_LOG_DEBUG(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kDebug, expr)
#define FASTSC_LOG_INFO(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kInfo, expr)
#define FASTSC_LOG_WARN(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kWarn, expr)
#define FASTSC_LOG_ERROR(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kError, expr)

}  // namespace fastsc
