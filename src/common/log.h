// Minimal leveled logging to stderr.
//
// Benches and examples print their primary output (tables) to stdout; the
// logger is for progress/diagnostic lines so that `bench > table.txt` stays
// clean.  Level is controlled programmatically or by FASTSC_LOG=trace|debug|
// info|warn|error|off.  Every line carries a monotonic timestamp (seconds
// since process start) and a small per-thread id so interleaved stream /
// worker output can be attributed; the ids match the wall-clock track ids
// in obs/trace.h traces.  The `trace` level additionally makes obs
// ScopedSpan mirror span begin/end to stderr.
#pragma once

#include <cstdint>
#include <sstream>
#include <string_view>

namespace fastsc {

enum class LogLevel {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5
};

/// Current global level (initialized from FASTSC_LOG on first use).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Small dense id for the calling thread (main thread observes 1; each new
/// thread gets the next integer on first call).  Used as the log-line
/// thread tag and as the wall-clock track id in traces.
[[nodiscard]] std::uint32_t small_thread_id();

namespace detail {
void log_line(LogLevel level, std::string_view msg);
}

/// Streaming log statement: FASTSC_LOG_INFO("built graph, nnz=" << nnz);
#define FASTSC_LOG_AT(level, expr)                                      \
  do {                                                                  \
    if (static_cast<int>(level) >= static_cast<int>(::fastsc::log_level())) { \
      std::ostringstream fastsc_log_os;                                 \
      fastsc_log_os << expr;                                            \
      ::fastsc::detail::log_line(level, fastsc_log_os.str());           \
    }                                                                   \
  } while (false)

#define FASTSC_LOG_TRACE(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kTrace, expr)
#define FASTSC_LOG_DEBUG(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kDebug, expr)
#define FASTSC_LOG_INFO(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kInfo, expr)
#define FASTSC_LOG_WARN(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kWarn, expr)
#define FASTSC_LOG_ERROR(expr) FASTSC_LOG_AT(::fastsc::LogLevel::kError, expr)

}  // namespace fastsc
