// Data-parallel loop primitives over a ThreadPool.
//
// parallel_for splits [begin, end) into one contiguous chunk per worker —
// the same owner-computes decomposition the paper's CUDA kernels use (one
// logical GPU thread per row / edge / data point, scheduled in blocks).
#pragma once

#include <atomic>
#include <functional>

#include "common/thread_pool.h"
#include "common/types.h"

namespace fastsc {

/// Invoke body(i) for every i in [begin, end) using the pool.
/// body must be safe to call concurrently for distinct i.
template <class Body>
void parallel_for(ThreadPool& pool, index_t begin, index_t end, const Body& body) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto workers = static_cast<index_t>(pool.worker_count());
  if (workers == 1 || n == 1) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
  const index_t chunk = (n + workers - 1) / workers;
  std::function<void(usize)> job = [&](usize w) {
    const index_t lo = begin + static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < end ? lo + chunk : end;
    for (index_t i = lo; i < hi; ++i) body(i);
  };
  pool.run_workers(job);
}

/// parallel_for on the process-default pool.
template <class Body>
void parallel_for(index_t begin, index_t end, const Body& body) {
  parallel_for(default_thread_pool(), begin, end, body);
}

/// Chunked (dynamic) scheduling variant: workers claim consecutive chunks
/// of `grain` iterations from a shared counter instead of taking one big
/// contiguous slice each, so loops whose per-iteration cost is imbalanced
/// stop paying the slowest-chunk tail.  Chunks stay contiguous, so the
/// per-chunk locality of the owner-computes split is preserved; only the
/// chunk-to-worker assignment becomes nondeterministic (the body must not
/// care which worker runs it, same contract as above).  grain <= 0 falls
/// back to the default owner-computes split.
template <class Body>
void parallel_for(ThreadPool& pool, index_t begin, index_t end, index_t grain,
                  const Body& body) {
  if (grain <= 0) {
    parallel_for(pool, begin, end, body);
    return;
  }
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto workers = static_cast<index_t>(pool.worker_count());
  if (workers == 1 || n <= grain) {
    for (index_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<index_t> next{begin};
  std::function<void(usize)> job = [&](usize) {
    for (;;) {
      const index_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      const index_t hi = lo + grain < end ? lo + grain : end;
      for (index_t i = lo; i < hi; ++i) body(i);
    }
  };
  pool.run_workers(job);
}

/// Chunked parallel_for on the process-default pool.
template <class Body>
void parallel_for(index_t begin, index_t end, index_t grain,
                  const Body& body) {
  parallel_for(default_thread_pool(), begin, end, grain, body);
}

/// Reduce body(i) over [begin, end) with `combine`, starting from `init`.
/// combine must be associative; per-worker partials are combined in worker
/// order so the result is deterministic for a fixed worker count.
template <class T, class Body, class Combine>
T parallel_reduce(ThreadPool& pool, index_t begin, index_t end, T init,
                  const Body& body, const Combine& combine) {
  const index_t n = end - begin;
  if (n <= 0) return init;
  const auto workers = static_cast<index_t>(pool.worker_count());
  if (workers == 1) {
    T acc = init;
    for (index_t i = begin; i < end; ++i) acc = combine(acc, body(i));
    return acc;
  }
  const index_t chunk = (n + workers - 1) / workers;
  std::vector<T> partials(static_cast<usize>(workers), init);
  std::function<void(usize)> job = [&](usize w) {
    const index_t lo = begin + static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < end ? lo + chunk : end;
    T acc = init;
    for (index_t i = lo; i < hi; ++i) acc = combine(acc, body(i));
    partials[w] = acc;
  };
  pool.run_workers(job);
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

template <class T, class Body, class Combine>
T parallel_reduce(index_t begin, index_t end, T init, const Body& body,
                  const Combine& combine) {
  return parallel_reduce(default_thread_pool(), begin, end, init, body, combine);
}

}  // namespace fastsc
