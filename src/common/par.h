// Data-parallel loop primitives over a ThreadPool.
//
// parallel_for splits [begin, end) into one contiguous chunk per worker —
// the same owner-computes decomposition the paper's CUDA kernels use (one
// logical GPU thread per row / edge / data point, scheduled in blocks).
#pragma once

#include <atomic>
#include <functional>

#include "common/cancel.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace fastsc {

namespace par_detail {

/// Iterations a worker runs between cancellation checks: large enough that
/// the disarmed relaxed load vanishes in the loop cost, small enough to
/// bound work after a hard cancellation fires.
inline constexpr index_t kCancelStride = 4096;

/// Run body over [lo, hi) in kCancelStride sub-blocks, stopping early when a
/// hard cancellation is pending.  Workers must not throw through
/// ThreadPool::run_workers, so they only stop; the coordinator surfaces the
/// error after the join, making every parallel primitive all-or-throw (a
/// torn output buffer never escapes).
template <class Body>
void run_cancellable(index_t lo, index_t hi, const Body& body) {
  for (index_t blk = lo; blk < hi; blk += kCancelStride) {
    if (cancel::interrupted("par.chunk")) return;
    const index_t stop = blk + kCancelStride < hi ? blk + kCancelStride : hi;
    for (index_t i = blk; i < stop; ++i) body(i);
  }
}

/// Coordinator-side check after the join: throws CancelledError for the hard
/// causes the workers stop on.  Soft anytime expiries pass through untouched
/// — workers do not stop for them, so the primitive's output is complete and
/// the deadline surfaces at the caller's next algorithm boundary.
inline void surface_interrupt() {
  if (cancel::interrupted("par.chunk")) cancel::poll("par.chunk");
}

}  // namespace par_detail

/// Invoke body(i) for every i in [begin, end) using the pool.
/// body must be safe to call concurrently for distinct i.
template <class Body>
void parallel_for(ThreadPool& pool, index_t begin, index_t end, const Body& body) {
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto workers = static_cast<index_t>(pool.worker_count());
  if (workers == 1 || n == 1) {
    par_detail::run_cancellable(begin, end, body);
    par_detail::surface_interrupt();
    return;
  }
  const index_t chunk = (n + workers - 1) / workers;
  std::function<void(usize)> job = [&](usize w) {
    const index_t lo = begin + static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < end ? lo + chunk : end;
    par_detail::run_cancellable(lo, hi, body);
  };
  pool.run_workers(job);
  par_detail::surface_interrupt();
}

/// parallel_for on the process-default pool.
template <class Body>
void parallel_for(index_t begin, index_t end, const Body& body) {
  parallel_for(default_thread_pool(), begin, end, body);
}

/// Chunked (dynamic) scheduling variant: workers claim consecutive chunks
/// of `grain` iterations from a shared counter instead of taking one big
/// contiguous slice each, so loops whose per-iteration cost is imbalanced
/// stop paying the slowest-chunk tail.  Chunks stay contiguous, so the
/// per-chunk locality of the owner-computes split is preserved; only the
/// chunk-to-worker assignment becomes nondeterministic (the body must not
/// care which worker runs it, same contract as above).  grain <= 0 falls
/// back to the default owner-computes split.
template <class Body>
void parallel_for(ThreadPool& pool, index_t begin, index_t end, index_t grain,
                  const Body& body) {
  if (grain <= 0) {
    parallel_for(pool, begin, end, body);
    return;
  }
  const index_t n = end - begin;
  if (n <= 0) return;
  const auto workers = static_cast<index_t>(pool.worker_count());
  if (workers == 1 || n <= grain) {
    par_detail::run_cancellable(begin, end, body);
    par_detail::surface_interrupt();
    return;
  }
  std::atomic<index_t> next{begin};
  std::function<void(usize)> job = [&](usize) {
    for (;;) {
      const index_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      const index_t hi = lo + grain < end ? lo + grain : end;
      par_detail::run_cancellable(lo, hi, body);
    }
  };
  pool.run_workers(job);
  par_detail::surface_interrupt();
}

/// Chunked parallel_for on the process-default pool.
template <class Body>
void parallel_for(index_t begin, index_t end, index_t grain,
                  const Body& body) {
  parallel_for(default_thread_pool(), begin, end, grain, body);
}

/// Reduce body(i) over [begin, end) with `combine`, starting from `init`.
/// combine must be associative; per-worker partials are combined in worker
/// order so the result is deterministic for a fixed worker count.
template <class T, class Body, class Combine>
T parallel_reduce(ThreadPool& pool, index_t begin, index_t end, T init,
                  const Body& body, const Combine& combine) {
  const index_t n = end - begin;
  if (n <= 0) return init;
  const auto workers = static_cast<index_t>(pool.worker_count());
  if (workers == 1) {
    T acc = init;
    par_detail::run_cancellable(begin, end,
                                [&](index_t i) { acc = combine(acc, body(i)); });
    par_detail::surface_interrupt();
    return acc;
  }
  const index_t chunk = (n + workers - 1) / workers;
  std::vector<T> partials(static_cast<usize>(workers), init);
  std::function<void(usize)> job = [&](usize w) {
    const index_t lo = begin + static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < end ? lo + chunk : end;
    T acc = init;
    par_detail::run_cancellable(lo, hi,
                                [&](index_t i) { acc = combine(acc, body(i)); });
    partials[w] = acc;
  };
  pool.run_workers(job);
  // A stopped worker leaves a truncated partial; the poll below throws before
  // the combined value can escape.
  par_detail::surface_interrupt();
  T acc = init;
  for (const T& p : partials) acc = combine(acc, p);
  return acc;
}

template <class T, class Body, class Combine>
T parallel_reduce(index_t begin, index_t end, T init, const Body& body,
                  const Combine& combine) {
  return parallel_reduce(default_thread_pool(), begin, end, init, body, combine);
}

}  // namespace fastsc
