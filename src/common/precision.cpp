#include "common/precision.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

namespace fastsc {

const char* precision_name(Precision p) noexcept {
  switch (p) {
    case Precision::kFp64:
      return "fp64";
    case Precision::kFp32:
      return "fp32";
    case Precision::kBf16:
      return "bf16";
  }
  return "fp64";
}

bool parse_precision(std::string_view s, Precision& out) {
  if (s == "fp64" || s == "f64" || s == "double") {
    out = Precision::kFp64;
    return true;
  }
  if (s == "fp32" || s == "f32" || s == "float") {
    out = Precision::kFp32;
    return true;
  }
  if (s == "bf16" || s == "bfloat16") {
    out = Precision::kBf16;
    return true;
  }
  return false;
}

std::uint16_t bf16_from_float(float f) noexcept {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  if (std::isnan(f)) {
    // Preserve NaN-ness: keep the top half but force a mantissa bit so the
    // payload cannot truncate to an Inf pattern.
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  // Round to nearest even on the truncated 16 mantissa bits.
  const std::uint32_t rounding_bias = 0x7fffu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>((bits + rounding_bias) >> 16);
}

float float_from_bf16(std::uint16_t b) noexcept {
  const std::uint32_t bits = static_cast<std::uint32_t>(b) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

float float_from_real(real v) noexcept {
  if (std::isnan(v)) return std::numeric_limits<float>::quiet_NaN() *
                            (std::signbit(v) ? -1.0f : 1.0f);
  if (v > static_cast<real>(std::numeric_limits<float>::max())) {
    // The cast itself is implementation-defined for finite doubles beyond
    // float range *only* outside the rounding window; be explicit: anything
    // that RNE would not round back into range overflows to Inf.
    if (v >= 0x1.ffffffp+127) return std::numeric_limits<float>::infinity();
  }
  if (v < -static_cast<real>(std::numeric_limits<float>::max())) {
    if (v <= -0x1.ffffffp+127) return -std::numeric_limits<float>::infinity();
  }
  return static_cast<float>(v);
}

real quantize(real v, Precision p) noexcept {
  switch (p) {
    case Precision::kFp64:
      return v;
    case Precision::kFp32:
      return static_cast<real>(float_from_real(v));
    case Precision::kBf16:
      return static_cast<real>(float_from_bf16(bf16_from_float(
          float_from_real(v))));
  }
  return v;
}

void pack_scalars(const real* src, usize n, Precision p,
                  unsigned char* dst) noexcept {
  switch (p) {
    case Precision::kFp64:
      if (n > 0) std::memcpy(dst, src, n * sizeof(real));
      return;
    case Precision::kFp32: {
      float* d = reinterpret_cast<float*>(dst);
      for (usize i = 0; i < n; ++i) d[i] = float_from_real(src[i]);
      return;
    }
    case Precision::kBf16: {
      std::uint16_t* d = reinterpret_cast<std::uint16_t*>(dst);
      for (usize i = 0; i < n; ++i) {
        d[i] = bf16_from_float(float_from_real(src[i]));
      }
      return;
    }
  }
}

void unpack_scalars(const unsigned char* src, usize n, Precision p,
                    real* dst) noexcept {
  switch (p) {
    case Precision::kFp64:
      if (n > 0) std::memcpy(dst, src, n * sizeof(real));
      return;
    case Precision::kFp32: {
      const float* s = reinterpret_cast<const float*>(src);
      for (usize i = 0; i < n; ++i) dst[i] = static_cast<real>(s[i]);
      return;
    }
    case Precision::kBf16: {
      const std::uint16_t* s = reinterpret_cast<const std::uint16_t*>(src);
      for (usize i = 0; i < n; ++i) {
        dst[i] = static_cast<real>(float_from_bf16(s[i]));
      }
      return;
    }
  }
}

void PrecisionPolicy::set_stage(PrecisionStage s, Precision p) noexcept {
  const auto v = static_cast<std::uint8_t>(p);
  switch (s) {
    case PrecisionStage::kSpmv:
      spmv = v;
      return;
    case PrecisionStage::kBasis:
      basis = v;
      return;
    case PrecisionStage::kKmeans:
      kmeans = v;
      return;
    case PrecisionStage::kSimilarity:
      similarity = v;
      return;
  }
}

Precision PrecisionPolicy::resolve(PrecisionStage s) const noexcept {
  std::uint8_t v = kUnset;
  switch (s) {
    case PrecisionStage::kSpmv:
      v = spmv;
      break;
    case PrecisionStage::kBasis:
      v = basis;
      break;
    case PrecisionStage::kKmeans:
      v = kmeans;
      break;
    case PrecisionStage::kSimilarity:
      v = similarity;
      break;
  }
  return v == kUnset ? base : static_cast<Precision>(v);
}

bool PrecisionPolicy::all_fp64() const noexcept {
  return resolve(PrecisionStage::kSpmv) == Precision::kFp64 &&
         resolve(PrecisionStage::kBasis) == Precision::kFp64 &&
         resolve(PrecisionStage::kKmeans) == Precision::kFp64 &&
         resolve(PrecisionStage::kSimilarity) == Precision::kFp64 &&
         fuse != FuseKernels::kOn;
}

bool PrecisionPolicy::fused() const noexcept {
  if (fuse == FuseKernels::kOn) return true;
  if (fuse == FuseKernels::kOff) return false;
  return resolve(PrecisionStage::kSpmv) != Precision::kFp64;
}

PrecisionPolicy PrecisionPolicy::fp64_fallback() const noexcept {
  PrecisionPolicy p;
  p.auto_ladder = false;
  p.fuse = fuse == FuseKernels::kOn ? FuseKernels::kOn : FuseKernels::kAuto;
  p.refine_residual_limit = refine_residual_limit;
  p.refine_rounds = refine_rounds;
  return p;
}

namespace {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  usize begin = 0;
  while (begin <= s.size()) {
    const usize end = s.find(sep, begin);
    if (end == std::string_view::npos) {
      out.push_back(s.substr(begin));
      break;
    }
    out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

}  // namespace

bool parse_precision_policy(std::string_view s, PrecisionPolicy& out) {
  const std::vector<std::string_view> parts = split(s, ',');
  if (parts.empty() || parts.front().empty()) return false;
  PrecisionPolicy p;
  if (parts.front() == "auto") {
    p.base = Precision::kFp32;
    p.auto_ladder = true;
  } else if (!parse_precision(parts.front(), p.base)) {
    return false;
  }
  for (usize i = 1; i < parts.size(); ++i) {
    const std::string_view part = parts[i];
    const usize eq = part.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view stage = part.substr(0, eq);
    Precision prec;
    if (!parse_precision(part.substr(eq + 1), prec)) return false;
    if (stage == "spmv") {
      p.set_stage(PrecisionStage::kSpmv, prec);
    } else if (stage == "basis") {
      p.set_stage(PrecisionStage::kBasis, prec);
    } else if (stage == "kmeans") {
      p.set_stage(PrecisionStage::kKmeans, prec);
    } else if (stage == "similarity") {
      p.set_stage(PrecisionStage::kSimilarity, prec);
    } else {
      return false;
    }
  }
  out = p;
  return true;
}

std::string precision_policy_name(const PrecisionPolicy& p) {
  std::string out = p.auto_ladder && p.base == Precision::kFp32
                        ? std::string("auto")
                        : std::string(precision_name(p.base));
  const auto add = [&](const char* stage, std::uint8_t v) {
    if (v == PrecisionPolicy::kUnset) return;
    out += ",";
    out += stage;
    out += "=";
    out += precision_name(static_cast<Precision>(v));
  };
  add("spmv", p.spmv);
  add("basis", p.basis);
  add("kmeans", p.kmeans);
  add("similarity", p.similarity);
  return out;
}

}  // namespace fastsc
