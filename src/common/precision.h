// Mixed-precision policy for the device hot path.
//
// The pipeline is bandwidth-bound end to end (SpMV in the IRLM loop, the
// k-means distance GEMM, and the PCIe/D2D links all move scalar arrays), so
// narrowing *storage* while keeping fp64 *accumulation* trades a bounded
// operator perturbation for roughly halved (fp32) or quartered (bf16)
// traffic — the standard mixed-precision eigensolver recipe (DESIGN.md
// §13).  This header defines:
//
//   * Precision — the storage width of a scalar array on the device or on
//     a link (fp64 / fp32 / bf16-emulated),
//   * exactly-rounded narrowing helpers (round-to-nearest-even, NaN and
//     Inf preserved) shared by every staging site so single-device and
//     sharded runs quantize identically (the bitwise determinism contract
//     across device counts extends to every precision),
//   * PrecisionPolicy — the per-run policy: a base rung, optional
//     per-stage overrides (spmv values / Lanczos basis staging / k-means /
//     similarity), an `auto` flag that starts at fp32 and falls back to
//     fp64 through the degradation ladder when the fp64 refinement
//     residual stalls, and the kernel-fusion knob.
//
// bf16 is *emulated*: scalars are stored as the top 16 bits of an IEEE-754
// binary32 (1 sign + 8 exponent + 7 mantissa bits), rounded to nearest
// even, which is bit-compatible with bfloat16 hardware formats.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/types.h"

namespace fastsc {

/// Storage width of a device-resident or link-staged scalar array.
enum class Precision : std::uint8_t {
  kFp64 = 0,  ///< IEEE binary64 (the baseline; bitwise-identical to PR 8)
  kFp32 = 1,  ///< IEEE binary32 storage, fp64 accumulation
  kBf16 = 2,  ///< emulated bfloat16 storage (see header), fp64 accumulation
};

[[nodiscard]] constexpr usize bytes_per_scalar(Precision p) noexcept {
  return p == Precision::kFp64 ? 8 : p == Precision::kFp32 ? 4 : 2;
}

[[nodiscard]] const char* precision_name(Precision p) noexcept;

/// Parse "fp64" / "fp32" / "bf16".  Returns false (leaving `out` untouched)
/// on anything else — "auto" is a *policy*, not a precision; parse it with
/// parse_precision_policy.
[[nodiscard]] bool parse_precision(std::string_view s, Precision& out);

// --- exactly-rounded conversions -------------------------------------------
//
// All narrowing is round-to-nearest-even.  NaN narrows to NaN (the quiet
// bit is forced so a signalling payload cannot be truncated to Inf), ±Inf
// narrows to ±Inf, and values beyond the target range overflow to ±Inf.
// Both directions are monotone on non-NaN inputs, which the property tests
// assert.

/// float -> emulated bf16 (top 16 bits, RNE).
[[nodiscard]] std::uint16_t bf16_from_float(float f) noexcept;

/// emulated bf16 -> float (exact: zero-extend the mantissa).
[[nodiscard]] float float_from_bf16(std::uint16_t b) noexcept;

/// double -> float with RNE and Inf on overflow (avoids the UB of a raw
/// static_cast for out-of-range finite doubles).
[[nodiscard]] float float_from_real(real v) noexcept;

/// Round a double through the given storage precision and back.  This is
/// *the* quantization every staging site uses: `kFp64` is the identity, so
/// one code path serves all rungs.
[[nodiscard]] real quantize(real v, Precision p) noexcept;

/// Pack `n` doubles into `dst` at width `p` (dst must hold
/// n * bytes_per_scalar(p) bytes).  fp64 packs bit-exact copies.
void pack_scalars(const real* src, usize n, Precision p,
                  unsigned char* dst) noexcept;

/// Unpack `n` scalars of width `p` from `src` into doubles (widening is
/// exact for every rung).
void unpack_scalars(const unsigned char* src, usize n, Precision p,
                    real* dst) noexcept;

// --- typed vector views -----------------------------------------------------
//
// A staged vector lives in device memory as raw bytes at some storage width;
// kernels read/write it through these views, widening to fp64 on load and
// rounding (RNE) on store.  The fp64 case is a plain pointer access, so code
// written against the views is bitwise identical to the pre-precision
// kernels when everything resolves to fp64.

/// Read-only view of `n` scalars stored at width `prec`.
struct ConstVecView {
  const void* data = nullptr;
  Precision prec = Precision::kFp64;

  ConstVecView() = default;
  ConstVecView(const void* d, Precision p) noexcept : data(d), prec(p) {}
  /*implicit*/ ConstVecView(const real* d) noexcept
      : data(d), prec(Precision::kFp64) {}

  [[nodiscard]] real load(usize i) const noexcept {
    switch (prec) {
      case Precision::kFp64:
        return static_cast<const real*>(data)[i];
      case Precision::kFp32:
        return static_cast<real>(static_cast<const float*>(data)[i]);
      case Precision::kBf16:
        return static_cast<real>(
            float_from_bf16(static_cast<const std::uint16_t*>(data)[i]));
    }
    return 0;
  }
};

/// Mutable view; stores quantize through the storage width.
struct VecView {
  void* data = nullptr;
  Precision prec = Precision::kFp64;

  VecView() = default;
  VecView(void* d, Precision p) noexcept : data(d), prec(p) {}
  /*implicit*/ VecView(real* d) noexcept : data(d), prec(Precision::kFp64) {}

  [[nodiscard]] real load(usize i) const noexcept {
    return ConstVecView(data, prec).load(i);
  }

  void store(usize i, real v) const noexcept {
    switch (prec) {
      case Precision::kFp64:
        static_cast<real*>(data)[i] = v;
        return;
      case Precision::kFp32:
        static_cast<float*>(data)[i] = float_from_real(v);
        return;
      case Precision::kBf16:
        static_cast<std::uint16_t*>(data)[i] =
            bf16_from_float(float_from_real(v));
        return;
    }
  }

  /*implicit*/ operator ConstVecView() const noexcept {
    return ConstVecView(data, prec);
  }
};

// --- policy -----------------------------------------------------------------

/// Tri-state for the kernel-fusion knob: kAuto fuses exactly when the SpMV
/// stage runs below fp64 (where the removed passes pay for the changed
/// rounding), kOn/kOff force it.
enum class FuseKernels : std::uint8_t { kAuto = 0, kOn = 1, kOff = 2 };

/// Stages a precision override can target.
enum class PrecisionStage : std::uint8_t {
  kSpmv = 0,        ///< device CSR value arrays
  kBasis = 1,       ///< Lanczos vector staging (PCIe x/y, D2D halo)
  kKmeans = 2,      ///< embedding points + centroid replicas on device
  kSimilarity = 3,  ///< similarity build scratch (graph.* kernels)
};

/// Per-run mixed-precision policy.  Resolution order for a stage:
/// explicit per-stage override first, then the base rung.  `auto_ladder`
/// runs the solve at the resolved rungs and re-runs at full fp64 (through
/// the PR 3 degradation ladder, action "precision-fallback") when the fp64
/// refinement residual exceeds `refine_residual_limit`.
struct PrecisionPolicy {
  Precision base = Precision::kFp64;
  bool auto_ladder = false;

  /// Per-stage overrides; kUnset inherits `base`.  Stored as one byte per
  /// stage so the struct stays trivially copyable for fingerprinting.
  static constexpr std::uint8_t kUnset = 0xff;
  std::uint8_t spmv = kUnset;
  std::uint8_t basis = kUnset;
  std::uint8_t kmeans = kUnset;
  std::uint8_t similarity = kUnset;

  FuseKernels fuse = FuseKernels::kAuto;

  /// Max acceptable post-refinement residual max_i ||A v_i - lambda_i v_i||
  /// before the auto rung degrades to fp64 (operator norm is <= 1 for the
  /// normalized similarity matrix, so this is also a relative bound).
  real refine_residual_limit = 1e-6;

  /// fp64 Rayleigh-Ritz refinement rounds at solve end (0 disables; only
  /// meaningful when some resolved stage is below fp64).
  index_t refine_rounds = 1;

  void set_stage(PrecisionStage s, Precision p) noexcept;
  [[nodiscard]] Precision resolve(PrecisionStage s) const noexcept;

  /// True when every resolved stage is fp64 and fusion is not forced on —
  /// i.e. the run is bitwise-identical to the pre-precision pipeline.
  [[nodiscard]] bool all_fp64() const noexcept;

  /// Whether the fused D^{-1/2}-epilogue SpMV / similarity+degree passes
  /// are active under this policy.
  [[nodiscard]] bool fused() const noexcept;

  /// The policy with every stage forced to fp64 (the ladder's bottom rung;
  /// keeps the fusion knob as-is only when explicitly forced on).
  [[nodiscard]] PrecisionPolicy fp64_fallback() const noexcept;
};

/// Parse a policy spec: "fp64" | "fp32" | "bf16" | "auto" (auto = fp32 base
/// with the fallback rung armed), optionally followed by comma-separated
/// stage overrides "stage=prec" with stage in {spmv,basis,kmeans,
/// similarity} — e.g. "fp32,kmeans=fp64".  Returns false on syntax errors.
[[nodiscard]] bool parse_precision_policy(std::string_view s,
                                          PrecisionPolicy& out);

/// Human-readable one-liner ("fp32 (auto)" / "fp32, kmeans=fp64").
[[nodiscard]] std::string precision_policy_name(const PrecisionPolicy& p);

}  // namespace fastsc
