#include "common/rng.h"

#include <cmath>

namespace fastsc {

real Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  real u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const real factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

std::uint64_t Rng::geometric_skip(real p) noexcept {
  // Number of failures before the first success of Bernoulli(p).
  // For p >= 1 every trial succeeds; for p <= 0 treat as "never" (huge skip).
  if (p >= 1.0) return 0;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  const real u = uniform();
  // floor(log(1-u) / log(1-p)); 1-u in (0,1] so log is finite or 0.
  const real num = std::log1p(-u);
  const real den = std::log1p(-p);
  const real skip = std::floor(num / den);
  if (skip >= 9.2e18) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(skip);
}

}  // namespace fastsc
