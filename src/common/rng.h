// Deterministic, splittable random number generation.
//
// fastsc uses xoshiro256++ seeded through splitmix64.  Determinism across
// runs (given a seed) is part of the public contract: every benchmark and
// every dataset generator takes a seed, so paper-style experiments are
// exactly repeatable.  The generator satisfies the C++ UniformRandomBitGenerator
// requirements so it can be used with <random> distributions, but we also
// provide inline helpers that avoid libstdc++'s distribution state.
#pragma once

#include <cstdint>
#include <limits>

#include "common/types.h"

namespace fastsc {

/// Serializable snapshot of an Rng (checkpoint/resume support): restoring
/// it reproduces the exact continuation of the stream, including the
/// Marsaglia cached normal.
struct RngState {
  std::uint64_t s[4] = {};
  real cached_normal = 0;
  bool has_cached_normal = false;
};

/// splitmix64 step; used for seeding and cheap hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG (Blackman & Vigna).  Fast, high quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] real uniform() noexcept {
    // 53 high-quality mantissa bits.
    return static_cast<real>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] real uniform(real lo, real hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) using Lemire's multiply-shift rejection.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] real normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] real normal(real mean, real stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Geometric sample: number of Bernoulli(p) failures before first success.
  /// Used for O(E[edges]) stochastic-block-model sampling via skipping.
  [[nodiscard]] std::uint64_t geometric_skip(real p) noexcept;

  [[nodiscard]] RngState state() const noexcept {
    RngState st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.cached_normal = cached_normal_;
    st.has_cached_normal = has_cached_normal_;
    return st;
  }

  void set_state(const RngState& st) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

  /// Split off an independent stream (for per-thread determinism).
  [[nodiscard]] Rng split() noexcept {
    std::uint64_t sm = (*this)();
    Rng child(0);
    for (auto& word : child.s_) word = splitmix64(sm);
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  real cached_normal_ = 0;
  bool has_cached_normal_ = false;
};

}  // namespace fastsc
