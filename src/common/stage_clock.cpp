#include "common/stage_clock.h"

#include <algorithm>

namespace fastsc {

StageClock::Entry& StageClock::entry(std::string_view stage) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.name == stage; });
  if (it != entries_.end()) return *it;
  entries_.push_back(Entry{std::string(stage), 0.0});
  return entries_.back();
}

void StageClock::start(std::string_view stage) {
  stop();
  Entry& e = entry(stage);
  running_ = static_cast<int>(&e - entries_.data());
  timer_.reset();
}

void StageClock::stop() {
  if (running_ >= 0) {
    entries_[static_cast<usize>(running_)].seconds += timer_.seconds();
    running_ = -1;
  }
}

void StageClock::add(std::string_view stage, double seconds) {
  entry(stage).seconds += seconds;
}

double StageClock::seconds(std::string_view stage) const {
  for (const Entry& e : entries_) {
    if (e.name == stage) return e.seconds;
  }
  return 0.0;
}

double StageClock::total_seconds() const {
  double total = 0;
  for (const Entry& e : entries_) total += e.seconds;
  return total;
}

std::vector<std::string> StageClock::stages() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

void StageClock::clear() {
  entries_.clear();
  running_ = -1;
}

}  // namespace fastsc
