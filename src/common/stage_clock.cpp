#include "common/stage_clock.h"

#include <algorithm>

namespace fastsc {

StageClock::StageClock(const StageClock& other) {
  std::lock_guard lock(other.mu_);
  entries_ = other.entries_;
  timer_ = other.timer_;
  running_ = other.running_;
}

StageClock& StageClock::operator=(const StageClock& other) {
  if (this == &other) return *this;
  // Lock both; address order prevents deadlock on cross-assignment.
  std::scoped_lock lock(mu_, other.mu_);
  entries_ = other.entries_;
  timer_ = other.timer_;
  running_ = other.running_;
  return *this;
}

StageClock::StageClock(StageClock&& other) noexcept {
  std::lock_guard lock(other.mu_);
  entries_ = std::move(other.entries_);
  timer_ = other.timer_;
  running_ = std::move(other.running_);
  other.running_.clear();
}

StageClock& StageClock::operator=(StageClock&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  entries_ = std::move(other.entries_);
  timer_ = other.timer_;
  running_ = std::move(other.running_);
  other.running_.clear();
  return *this;
}

StageClock::Entry& StageClock::entry_locked(std::string_view stage) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.name == stage; });
  if (it != entries_.end()) return *it;
  entries_.push_back(Entry{std::string(stage), 0.0});
  return entries_.back();
}

void StageClock::start(std::string_view stage) {
  std::lock_guard lock(mu_);
  if (!running_.empty()) {
    // Pause the enclosing stage: bank its elapsed slice now so the nested
    // stage's time is excluded from it (exclusive/self accounting).
    entries_[static_cast<usize>(running_.back())].seconds += timer_.seconds();
  }
  Entry& e = entry_locked(stage);
  running_.push_back(static_cast<int>(&e - entries_.data()));
  timer_.reset();
}

void StageClock::stop() {
  std::lock_guard lock(mu_);
  if (running_.empty()) return;
  entries_[static_cast<usize>(running_.back())].seconds += timer_.seconds();
  running_.pop_back();
  // Resume the preempted stage from now.
  timer_.reset();
}

void StageClock::add(std::string_view stage, double seconds) {
  std::lock_guard lock(mu_);
  entry_locked(stage).seconds += seconds;
}

double StageClock::seconds(std::string_view stage) const {
  std::lock_guard lock(mu_);
  for (const Entry& e : entries_) {
    if (e.name == stage) return e.seconds;
  }
  return 0.0;
}

double StageClock::total_seconds() const {
  std::lock_guard lock(mu_);
  double total = 0;
  for (const Entry& e : entries_) total += e.seconds;
  return total;
}

std::vector<std::string> StageClock::stages() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.push_back(e.name);
  return names;
}

usize StageClock::depth() const {
  std::lock_guard lock(mu_);
  return running_.size();
}

void StageClock::clear() {
  std::lock_guard lock(mu_);
  entries_.clear();
  running_.clear();
}

}  // namespace fastsc
