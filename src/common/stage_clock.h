// StageClock: named accumulating timers for pipeline-stage reports.
//
// The paper reports per-stage times (similarity matrix, sparse eigensolver,
// k-means) for each implementation; StageClock is the common mechanism every
// pipeline and bench uses to produce those rows.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/timer.h"
#include "common/types.h"

namespace fastsc {

/// Accumulates wall time into named stages.  Thread-safe: the pipeline owns
/// one clock and start()/stop()s its own sequential stages, while stream
/// completion callbacks may add() modeled transfer time from worker threads
/// concurrently.  The start/stop pair itself still assumes one driving
/// thread.
///
/// start() calls may nest: starting stage B while stage A runs *pauses* A,
/// and the matching stop() resumes it, so each stage accumulates exclusive
/// (self) time and total_seconds() never double-counts a nested interval.
/// Flat start/stop pairs behave exactly as before.
class StageClock {
 public:
  StageClock() = default;
  // Copy/move keep the recorded times but not the lock (SpectralResult is
  // copied between backends in the benches).
  StageClock(const StageClock& other);
  StageClock& operator=(const StageClock& other);
  StageClock(StageClock&& other) noexcept;
  StageClock& operator=(StageClock&& other) noexcept;

  /// Start accumulation for `stage`.  If another stage is running it is
  /// paused (its elapsed time accumulated) and resumed by the matching
  /// stop().
  void start(std::string_view stage);

  /// Stop the innermost running stage, adding its elapsed time, and resume
  /// the stage it preempted (if any).  No-op when nothing is running.
  void stop();

  /// Add externally measured seconds to a stage (e.g. modeled PCIe time).
  /// Safe to call from any thread, including while another stage runs.
  void add(std::string_view stage, double seconds);

  /// Accumulated seconds for a stage; 0 if the stage never ran.
  [[nodiscard]] double seconds(std::string_view stage) const;

  /// Total over all stages.
  [[nodiscard]] double total_seconds() const;

  /// Stage names in first-start order.
  [[nodiscard]] std::vector<std::string> stages() const;

  /// How many stages are currently running (nesting depth).
  [[nodiscard]] usize depth() const;

  /// Remove all recorded stages.
  void clear();

 private:
  struct Entry {
    std::string name;
    double seconds = 0;
  };

  Entry& entry_locked(std::string_view stage);

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  WallTimer timer_;  // measures the innermost running stage only
  std::vector<int> running_;  // stack of indices into entries_
};

}  // namespace fastsc
