// StageClock: named accumulating timers for pipeline-stage reports.
//
// The paper reports per-stage times (similarity matrix, sparse eigensolver,
// k-means) for each implementation; StageClock is the common mechanism every
// pipeline and bench uses to produce those rows.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/timer.h"
#include "common/types.h"

namespace fastsc {

/// Accumulates wall time into named stages.  Not thread-safe by design: a
/// pipeline owns one clock and times its own sequential stages.
class StageClock {
 public:
  /// Start (or resume) accumulation for `stage`; stops the current stage.
  void start(std::string_view stage);

  /// Stop the currently running stage, adding its elapsed time.
  void stop();

  /// Add externally measured seconds to a stage (e.g. modeled PCIe time).
  void add(std::string_view stage, double seconds);

  /// Accumulated seconds for a stage; 0 if the stage never ran.
  [[nodiscard]] double seconds(std::string_view stage) const;

  /// Total over all stages.
  [[nodiscard]] double total_seconds() const;

  /// Stage names in first-start order.
  [[nodiscard]] std::vector<std::string> stages() const;

  /// Remove all recorded stages.
  void clear();

 private:
  struct Entry {
    std::string name;
    double seconds = 0;
  };

  Entry& entry(std::string_view stage);

  std::vector<Entry> entries_;
  WallTimer timer_;
  int running_ = -1;  // index into entries_, or -1
};

}  // namespace fastsc
