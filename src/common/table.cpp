#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace fastsc {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::header(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt_seconds(double s) {
  char buf[64];
  if (s >= 100) {
    std::snprintf(buf, sizeof buf, "%.1f", s);
  } else if (s >= 1) {
    std::snprintf(buf, sizeof buf, "%.3f", s);
  } else {
    std::snprintf(buf, sizeof buf, "%.5f", s);
  }
  return buf;
}

std::string TextTable::fmt_speedup(double r) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1fx", r);
  return buf;
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string TextTable::fmt(index_t v) { return std::to_string(v); }

std::string TextTable::to_string() const {
  std::vector<usize> widths;
  auto account = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size(), 0);
    for (usize i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  account(header_);
  for (const auto& r : rows_) account(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (usize i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    usize total = 0;
    for (usize w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (usize i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      os << cells[i];
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const {
  const std::string s = to_string();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace fastsc
