// TextTable: aligned ASCII tables for bench/report output.
//
// Every bench prints its paper-table reproduction through this class so the
// output format is uniform and greppable (rows also exported as CSV).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fastsc {

class TextTable {
 public:
  explicit TextTable(std::string title = "");

  /// Set the header row.
  void header(std::vector<std::string> columns);

  /// Append a data row (cells already formatted).
  void row(std::vector<std::string> cells);

  /// Convenience: format seconds with 4 significant decimals ("0.0331").
  static std::string fmt_seconds(double s);
  /// Format a ratio like "12.3x".
  static std::string fmt_speedup(double r);
  /// Format a generic double with given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt(index_t v);

  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Render as an aligned ASCII table.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (header + rows).
  [[nodiscard]] std::string to_csv() const;

  /// Print the ASCII form to stdout.
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fastsc
