#include "common/thread_pool.h"

#include <algorithm>

#include "common/cancel.h"
#include "obs/attribution.h"

namespace fastsc {

ThreadPool::ThreadPool(usize workers) {
  usize n = workers;
  if (n == 0) {
    n = std::max<usize>(1, std::thread::hardware_concurrency());
  }
  // Worker 0 is the calling thread; spawn n-1 helpers.
  threads_.reserve(n - 1);
  for (usize i = 1; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_workers(const std::function<void(usize)>& fn) {
  jobs_dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (threads_.empty()) {
    fn(0);
    return;
  }
  // One bulk job at a time: concurrent service jobs queue here rather than
  // clobbering the single job slot.
  std::lock_guard dispatch(dispatch_mu_);
  {
    std::lock_guard lock(mu_);
    job_ = &fn;
    job_governor_ = cancel::detail::bound_governor();
    const obs::ObsBindings bindings = obs::current_obs_bindings();
    job_attribution_ = bindings.attribution;
    job_trace_ = bindings.trace;
    job_site_ = bindings.site;
    remaining_ = threads_.size();
    ++job_epoch_;
  }
  work_ready_.notify_all();
  fn(0);  // calling thread participates as worker 0
  std::unique_lock lock(mu_);
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  job_governor_ = nullptr;
  job_attribution_ = nullptr;
  job_trace_ = nullptr;
  job_site_ = nullptr;
}

void ThreadPool::worker_loop(usize worker_index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    const std::function<void(usize)>* job = nullptr;
    cancel::Governor* job_governor = nullptr;
    obs::ObsBindings job_obs;
    {
      std::unique_lock lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
      job_governor = job_governor_;
      job_obs.attribution = job_attribution_;
      job_obs.trace = job_trace_;
      job_obs.site = job_site_;
    }
    {
      // Poll sites inside the chunk consult the dispatcher's governor, so a
      // per-job budget cancels its own workers and nobody else's; the same
      // propagation gives trace spans and attribution records emitted from
      // worker chunks the dispatcher's per-job destination.
      cancel::GovernorBindScope bind(job_governor);
      obs::ObsBindScope obs_bind(job_obs);
      (*job)(worker_index);
    }
    {
      std::lock_guard lock(mu_);
      if (--remaining_ == 0) work_done_.notify_all();
    }
  }
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fastsc
