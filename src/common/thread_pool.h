// A small fixed-size thread pool with blocking bulk-dispatch.
//
// This pool is the execution engine under the simulated device runtime
// (device::DeviceContext): kernel launches decompose their global index
// space into contiguous chunks, one per worker, mirroring how CUDA thread
// blocks are scheduled across streaming multiprocessors.  The pool supports
// nested-free, synchronous `run_blocks(n, fn)` dispatch — the caller blocks
// until all workers finish, which matches CUDA's default-stream semantics
// where a kernel launch followed by a transfer is ordered.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"

namespace fastsc::cancel {
class Governor;
}  // namespace fastsc::cancel

namespace fastsc::obs {
class AttributionRegistry;
class TraceRecorder;
}  // namespace fastsc::obs

namespace fastsc {

class ThreadPool {
 public:
  /// Create a pool with `workers` threads; 0 means hardware_concurrency.
  explicit ThreadPool(usize workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] usize worker_count() const noexcept { return threads_.size() + 1; }

  /// Execute fn(worker_index) for worker_index in [0, worker_count()), in
  /// parallel, and block until all invocations return.  Worker 0 runs on the
  /// calling thread so a 1-worker pool degenerates to a plain call.
  ///
  /// Concurrent callers are serialized (dispatch_mu_): service jobs share
  /// one pool, so a second job's bulk dispatch waits for the first to drain
  /// instead of corrupting the job slot.  The caller's thread-bound
  /// cancellation governor (cancel::GovernorBindScope) is propagated into
  /// the helper workers for the duration of the job, so per-job budgets and
  /// cancellation are honored inside parallel kernels.
  void run_workers(const std::function<void(usize)>& fn);

  /// Bulk jobs dispatched over this pool's lifetime (obs metrics).
  [[nodiscard]] std::uint64_t jobs_dispatched() const noexcept {
    return jobs_dispatched_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop(usize worker_index);

  std::vector<std::thread> threads_;
  std::mutex dispatch_mu_;  ///< serializes concurrent run_workers callers
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(usize)>* job_ = nullptr;
  cancel::Governor* job_governor_ = nullptr;  ///< dispatcher's bound governor
  /// Dispatcher's observability bindings (per-job attribution registry,
  /// trace recorder, site scope), re-bound inside each helper worker for
  /// the job's duration — same propagation contract as the governor.
  obs::AttributionRegistry* job_attribution_ = nullptr;
  obs::TraceRecorder* job_trace_ = nullptr;
  const char* job_site_ = nullptr;
  std::uint64_t job_epoch_ = 0;
  usize remaining_ = 0;
  bool shutdown_ = false;
  std::atomic<std::uint64_t> jobs_dispatched_{0};
};

/// Process-wide default pool (sized to hardware concurrency).
ThreadPool& default_thread_pool();

}  // namespace fastsc
