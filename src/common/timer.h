// Wall-clock timing utilities.
#pragma once

#include <chrono>

namespace fastsc {

/// Monotonic wall-clock stopwatch with double-precision seconds.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Monotonic seconds since the process epoch (first call anywhere in the
/// process).  The shared timebase for log-line timestamps and wall-clock
/// trace spans — two spans stamped with this on different threads are
/// directly comparable.
[[nodiscard]] inline double monotonic_seconds() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

}  // namespace fastsc
