// Core scalar and index types used throughout fastsc.
//
// The library follows the paper's numerical setting: double-precision values
// (ARPACK's dsaupd/dseupd path, cusparseDcsrmv) and 64-bit indices so that
// edge counts beyond 2^31 are representable on large graphs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fastsc {

/// Floating-point type for all numerical kernels.
using real = double;

/// Signed index type for rows/columns/edges.  Signed so that reverse loops
/// and differences are safe; 64-bit so large graphs fit.
using index_t = std::int64_t;

/// Unsigned size alias for container sizing.
using usize = std::size_t;

}  // namespace fastsc
