// Input validation helpers for numeric arrays.
//
// NaN/Inf propagate silently through BLAS and SpMV and surface as cryptic
// eigensolver non-convergence or degenerate clusterings; the public pipeline
// entry points reject them up front instead.
#pragma once

#include <cmath>
#include <span>

#include "common/error.h"
#include "common/types.h"

namespace fastsc {

/// True if any element is NaN or +-Inf.
[[nodiscard]] inline bool has_nonfinite(std::span<const real> values) noexcept {
  for (real v : values) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

/// Throw std::invalid_argument if any element is NaN or +-Inf.
inline void check_finite(std::span<const real> values, const char* what) {
  FASTSC_CHECK(!has_nonfinite(values),
               std::string(what) + " contains NaN or Inf");
}

/// Throw std::invalid_argument if any index falls outside [0, n).
inline void check_index_range(std::span<const index_t> indices, index_t n,
                              const char* what) {
  for (index_t v : indices) {
    FASTSC_CHECK(v >= 0 && v < n, std::string(what) + " index " +
                                      std::to_string(v) +
                                      " outside [0, " + std::to_string(n) +
                                      ")");
  }
}

}  // namespace fastsc
