#include "core/bisection.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"
#include "graph/components.h"
#include "graph/laplacian.h"
#include "lanczos/rci.h"
#include "sparse/spmv.h"

namespace fastsc::core {

namespace {

/// Induced subgraph over `vertices` (original ids, any order); entries whose
/// endpoints both lie in the set are kept with remapped indices.
sparse::Coo induced_subgraph(const sparse::Coo& w,
                             const std::vector<index_t>& vertices) {
  std::vector<index_t> new_of_old(static_cast<usize>(w.rows), -1);
  for (usize i = 0; i < vertices.size(); ++i) {
    new_of_old[static_cast<usize>(vertices[i])] = static_cast<index_t>(i);
  }
  sparse::Coo sub(static_cast<index_t>(vertices.size()),
                  static_cast<index_t>(vertices.size()));
  for (usize e = 0; e < w.values.size(); ++e) {
    const index_t u = new_of_old[static_cast<usize>(w.row_idx[e])];
    const index_t v = new_of_old[static_cast<usize>(w.col_idx[e])];
    if (u >= 0 && v >= 0) sub.push(u, v, w.values[e]);
  }
  return sub;
}

/// Fiedler-based two-way split of a *connected* subgraph; returns the side
/// (0/1) per local vertex.  Returns false if the eigensolve failed.
bool fiedler_split(const sparse::Coo& sub, const BisectionConfig& cfg,
                   std::vector<char>& side, index_t& eigensolves,
                   bool& converged) {
  const index_t n = sub.rows;
  std::vector<real> isd;
  const sparse::Csr s = graph::sym_normalized_host(sub, isd);

  lanczos::LanczosConfig lc;
  lc.n = n;
  lc.nev = 2;  // trivial vector + Fiedler vector
  lc.tol = cfg.eig_tol;
  lc.max_restarts = cfg.max_restarts;
  lc.which = lanczos::EigWhich::kLargestAlgebraic;
  lc.seed = cfg.seed;
  const auto eig = lanczos::solve_symmetric(
      lc, [&](const real* x, real* y) { sparse::csr_mv(s, x, y); });
  ++eigensolves;
  converged = converged && eig.converged;

  // Fiedler vector of the random-walk operator: second eigenvector of S
  // scaled by D^-1/2.
  std::vector<real> fiedler(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    fiedler[static_cast<usize>(i)] =
        eig.eigenvectors[static_cast<usize>(n + i)] * isd[static_cast<usize>(i)];
  }

  real threshold = 0;
  if (cfg.split == BisectionConfig::SplitRule::kMedian) {
    std::vector<real> sorted = fiedler;
    std::nth_element(sorted.begin(), sorted.begin() + n / 2, sorted.end());
    threshold = sorted[static_cast<usize>(n / 2)];
  }
  side.assign(static_cast<usize>(n), 0);
  index_t ones = 0;
  for (index_t i = 0; i < n; ++i) {
    if (fiedler[static_cast<usize>(i)] > threshold) {
      side[static_cast<usize>(i)] = 1;
      ++ones;
    }
  }
  // Degenerate threshold (e.g. many ties): force a balanced split by rank.
  if (ones == 0 || ones == n) {
    std::vector<index_t> order(static_cast<usize>(n));
    std::iota(order.begin(), order.end(), index_t{0});
    std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      return fiedler[static_cast<usize>(a)] < fiedler[static_cast<usize>(b)];
    });
    for (index_t r = 0; r < n; ++r) {
      side[static_cast<usize>(order[static_cast<usize>(r)])] =
          r >= n / 2 ? 1 : 0;
    }
  }
  return true;
}

}  // namespace

BisectionResult spectral_bisection(const sparse::Coo& w,
                                   const BisectionConfig& config) {
  FASTSC_CHECK(w.rows == w.cols, "graph matrix must be square");
  FASTSC_CHECK(config.num_clusters >= 1 && config.num_clusters <= w.rows,
               "cluster count must be in [1, n]");

  BisectionResult result;
  result.labels.assign(static_cast<usize>(w.rows), 0);
  result.clock.start("bisection");

  // Parts as vertex-id lists; split the largest until we have k.
  std::vector<std::vector<index_t>> parts(1);
  parts[0].resize(static_cast<usize>(w.rows));
  std::iota(parts[0].begin(), parts[0].end(), index_t{0});

  while (static_cast<index_t>(parts.size()) < config.num_clusters) {
    // Largest splittable part.
    index_t target = -1;
    usize best_size = 1;  // parts of size 1 cannot split
    for (usize p = 0; p < parts.size(); ++p) {
      if (parts[p].size() > best_size) {
        best_size = parts[p].size();
        target = static_cast<index_t>(p);
      }
    }
    FASTSC_CHECK(target >= 0,
                 "cannot reach the requested cluster count: all parts are "
                 "singletons");

    std::vector<index_t> vertices = std::move(parts[static_cast<usize>(target)]);
    const sparse::Coo sub = induced_subgraph(w, vertices);

    std::vector<char> side;
    const graph::ComponentInfo comp = graph::connected_components(sub);
    if (comp.count > 1) {
      // Disconnected: peel the largest component — no eigensolve needed.
      const index_t keep = comp.largest();
      side.resize(vertices.size());
      for (usize i = 0; i < vertices.size(); ++i) {
        side[i] = comp.component_of[i] == keep ? 0 : 1;
      }
    } else {
      fiedler_split(sub, config, side, result.eigensolves,
                    result.all_converged);
    }
    ++result.splits;

    std::vector<index_t> left, right;
    for (usize i = 0; i < vertices.size(); ++i) {
      (side[i] == 0 ? left : right).push_back(vertices[i]);
    }
    FASTSC_ASSERT(!left.empty() && !right.empty());
    parts[static_cast<usize>(target)] = std::move(left);
    parts.push_back(std::move(right));
  }

  for (usize p = 0; p < parts.size(); ++p) {
    for (index_t v : parts[p]) {
      result.labels[static_cast<usize>(v)] = static_cast<index_t>(p);
    }
  }
  result.clock.stop();
  return result;
}

}  // namespace fastsc::core
