// Recursive spectral bisection.
//
// The special case of spectral clustering the paper cites as related work
// (Matam & Kothapalli [13]): split the graph in two with the Fiedler vector,
// then recursively split the largest remaining part until k clusters exist.
// Provided as an alternative to the k-way pipeline; the bisection-vs-k-way
// ablation (bench_ablation_bisection) compares cut quality and cost.
#pragma once

#include <vector>

#include "common/stage_clock.h"
#include "lanczos/irlm.h"
#include "sparse/coo.h"

namespace fastsc::core {

struct BisectionConfig {
  index_t num_clusters = 2;
  /// How to threshold the Fiedler vector.  kSign follows the natural
  /// cluster boundary (default; recovers planted partitions), kMedian
  /// forces balanced halves (the graph-partitioning use case, at the cost
  /// of cutting through natural clusters whose sizes are not powers of two).
  enum class SplitRule {
    kSign,    ///< split at 0 (classic; parts may be unbalanced)
    kMedian,  ///< split at the median (balanced halves)
  };
  SplitRule split = SplitRule::kSign;
  real eig_tol = 1e-8;
  index_t max_restarts = 300;
  std::uint64_t seed = 42;
};

struct BisectionResult {
  std::vector<index_t> labels;  ///< cluster per vertex, in [0, k)
  index_t splits = 0;           ///< bisections performed
  index_t eigensolves = 0;      ///< Fiedler computations (component splits skip it)
  bool all_converged = true;
  StageClock clock;
};

/// Partition the graph into exactly `num_clusters` parts by recursive
/// bisection, always splitting the currently largest part.  Disconnected
/// parts are split along component boundaries without an eigensolve.
[[nodiscard]] BisectionResult spectral_bisection(const sparse::Coo& w,
                                                 const BisectionConfig& config);

}  // namespace fastsc::core
