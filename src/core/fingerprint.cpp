#include "core/fingerprint.h"

#include <type_traits>
#include <vector>

#include "core/spectral.h"

namespace fastsc::core {

std::uint64_t fnv1a64(const void* data, usize bytes, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (usize i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

template <class T>
std::uint64_t mix(std::uint64_t h, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a64(&value, sizeof(T), h);
}

template <class T>
std::uint64_t mix_vec(std::uint64_t h, const std::vector<T>& v) {
  // Length framing so ([1,2], [3]) and ([1], [2,3]) hash differently.
  h = mix(h, static_cast<std::uint64_t>(v.size()));
  if (!v.empty()) h = fnv1a64(v.data(), v.size() * sizeof(T), h);
  return h;
}

}  // namespace

std::uint64_t graph_fingerprint(const sparse::Coo& w) {
  std::uint64_t h = fnv1a64("fastsc.graph", 12);
  h = mix(h, w.rows);
  h = mix(h, w.cols);
  h = mix_vec(h, w.row_idx);
  h = mix_vec(h, w.col_idx);
  h = mix_vec(h, w.values);
  return h;
}

std::uint64_t config_fingerprint(const SpectralConfig& cfg) {
  std::uint64_t h = fnv1a64("fastsc.config", 13);
  h = mix(h, cfg.num_clusters);
  h = mix(h, static_cast<int>(cfg.backend));
  h = mix(h, cfg.ncv);
  h = mix(h, cfg.eig_tol);
  h = mix(h, cfg.max_restarts);
  h = mix(h, static_cast<int>(cfg.which));
  h = mix(h, static_cast<int>(cfg.spmv_format));
  h = mix(h, cfg.bsr_block_size);
  h = mix(h, cfg.balanced_spmv);
  h = mix(h, cfg.async_pipeline);
  h = mix(h, cfg.overlap_col_blocks);
  h = mix(h, cfg.overlap_row_tiles);
  h = mix(h, cfg.similarity_chunk_edges);
  h = mix(h, cfg.kmeans_max_iters);
  h = mix(h, static_cast<int>(cfg.seeding));
  h = mix(h, cfg.row_normalize_embedding);
  h = mix(h, cfg.seed);
  // Precision policy (appended after the original fields so pre-precision
  // fingerprints only shift once): an fp32 run must never be served an
  // fp64-cached result or warm-start donor, and vice versa — the labels and
  // Ritz basis are rung-dependent.
  h = mix(h, static_cast<int>(cfg.precision.base));
  h = mix(h, cfg.precision.auto_ladder);
  h = mix(h, cfg.precision.spmv);
  h = mix(h, cfg.precision.basis);
  h = mix(h, cfg.precision.kmeans);
  h = mix(h, cfg.precision.similarity);
  h = mix(h, static_cast<int>(cfg.precision.fuse));
  h = mix(h, cfg.precision.refine_residual_limit);
  h = mix(h, cfg.precision.refine_rounds);
  return h;
}

}  // namespace fastsc::core
