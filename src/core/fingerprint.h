// Stable content fingerprints for graphs and solver configurations.
//
// The service's result cache keys on the pair (graph fingerprint, config
// fingerprint): two jobs hit the same entry exactly when they solve the same
// matrix with the same solver-relevant knobs.  The fingerprints are FNV-1a
// 64-bit hashes over the raw bytes — deterministic across runs on the same
// platform, cheap (one linear pass over the COO arrays), and stable under
// re-submission of an identical graph.  They are *content* hashes, not
// canonical-form hashes: the same matrix with entries in a different order
// fingerprints differently, which is the right behaviour for a cache (the
// generators emit deterministic orderings) and errs toward recompute, never
// toward a wrong hit.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "sparse/coo.h"

namespace fastsc::core {

struct SpectralConfig;

/// FNV-1a 64-bit over a byte range; `seed` chains multiple ranges.
[[nodiscard]] std::uint64_t fnv1a64(
    const void* data, usize bytes,
    std::uint64_t seed = 0xcbf29ce484222325ull);

/// Fingerprint of a COO matrix: dimensions, structure (row/col indices), and
/// values, all hashed as raw bytes with length framing between arrays.
[[nodiscard]] std::uint64_t graph_fingerprint(const sparse::Coo& w);

/// Fingerprint of the solver-relevant SpectralConfig fields — everything
/// that changes the labels a solve produces (cluster count, backend,
/// eigensolver knobs, SpMV format, k-means knobs, seed).  Observability,
/// budget, fault-injection, and warm-start fields are deliberately excluded:
/// they change how a run executes, not what it computes.
[[nodiscard]] std::uint64_t config_fingerprint(const SpectralConfig& cfg);

}  // namespace fastsc::core
