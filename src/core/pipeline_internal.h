// Pipeline-internal helpers shared by the single-device driver
// (core/spectral.cpp) and the multi-device sharded driver (core/sharded.cpp).
// Not part of the public API.
#pragma once

#include <string>
#include <vector>

#include "core/spectral.h"

namespace fastsc::core::detail {

/// Build the (n x k) spectral embedding from the eigenvectors of the
/// symmetric operator S = D^-1/2 W D^-1/2 (row-major k x n input).
///
/// The paper's Step 3 asks for eigenvectors of D^-1 W; those are
/// v_rw = D^-1/2 u_sym, so each vertex row is scaled by 1/sqrt(d_j) and the
/// resulting eigenvectors are renormalized to unit length before k-means
/// (paper Step 4 clusters the rows of this matrix).
[[nodiscard]] std::vector<real> to_embedding(
    const std::vector<real>& vectors,
    const std::vector<real>& inv_sqrt_degree, index_t k, index_t n);

/// Record one degradation decision: result report + degrade.* counters +
/// trace counter + a WARN so unattended runs leave an audit trail.
void note_degradation(SpectralResult& result, const char* stage,
                      const char* action, const std::string& reason);

/// Lanczos configuration derived from the pipeline configuration.
[[nodiscard]] lanczos::LanczosConfig eig_config(const SpectralConfig& cfg,
                                                index_t n);

/// fp64 Rayleigh-Ritz refinement of a narrow-precision solve (DESIGN.md
/// §13): orthonormalize the Ritz vectors (CGS2 in fp64), project the exact
/// operator S = D^-1/2 W D^-1/2 onto their span (W applied host-side in COO
/// entry order, so single-device and sharded runs refine bit-for-bit
/// identically), rediagonalize the small projection, and rotate.  `vectors`
/// holds the eigenvectors row-major (one per eigenvalue, each of length
/// inv_sqrt_degree.size()); both it and `eigenvalues` are updated in place,
/// refined pairs reordered to match the incoming eigenvalue ordering.
/// Returns the post-refinement residual max_i ||S v_i - lambda_i v_i||_2.
[[nodiscard]] real refine_eigenpairs_fp64(
    const sparse::Coo& w, const std::vector<real>& inv_sqrt_degree,
    index_t rounds, std::vector<real>& eigenvalues,
    std::vector<real>& vectors);

}  // namespace fastsc::core::detail
