#include "core/report.h"

#include "metrics/cut.h"
#include "metrics/external.h"

namespace fastsc::core {

TextTable stage_table(const BackendRuns& runs, bool include_similarity) {
  TextTable table("Running time of spectral clustering on " + runs.dataset +
                  " (n=" + std::to_string(runs.nodes) +
                  ", nnz=" + std::to_string(runs.edges) +
                  ", k=" + std::to_string(runs.clusters) + ")");
  std::vector<std::string> header{"Time/s"};
  for (const auto& [backend, result] : runs.runs) {
    header.push_back(backend_name(backend));
  }
  table.header(std::move(header));

  std::vector<std::string> stages;
  if (include_similarity) stages.push_back(kStageSimilarity);
  stages.push_back(kStageEigensolver);
  stages.push_back(kStageKmeans);
  const std::map<std::string, std::string> pretty{
      {kStageSimilarity, "Compute Similarity Matrix"},
      {kStageEigensolver, "Sparse Eigensolver"},
      {kStageKmeans, "K-means Clustering"},
  };

  for (const std::string& stage : stages) {
    std::vector<std::string> row{pretty.at(stage)};
    for (const auto& [backend, result] : runs.runs) {
      row.push_back(TextTable::fmt_seconds(result.clock.seconds(stage)));
    }
    table.row(std::move(row));
  }
  return table;
}

TextTable figure_series(const BackendRuns& runs) {
  TextTable table("Figure series: per-stage times on " + runs.dataset);
  table.header({"dataset", "backend", "stage", "seconds"});
  for (const auto& [backend, result] : runs.runs) {
    for (const std::string& stage : result.clock.stages()) {
      table.row({runs.dataset, backend_name(backend), stage,
                 TextTable::fmt_seconds(result.clock.seconds(stage))});
    }
  }
  return table;
}

TextTable communication_table(const std::vector<BackendRuns>& all_runs) {
  TextTable table(
      "Comparison between data communication time and computation time "
      "(device backend; communication = modeled PCIe time, computation = "
      "total stage time minus communication)");
  table.header({"Dataset", "Communication/s", "Computation/s", "H2D MB",
                "D2H MB", "Transfers"});
  for (const BackendRuns& runs : all_runs) {
    for (const auto& [backend, result] : runs.runs) {
      if (backend != Backend::kDevice) continue;
      const auto& c = result.device_counters;
      const double comm = c.modeled_transfer_seconds;
      const double total = result.clock.total_seconds();
      const double comp = total > comm ? total - comm : 0;
      table.row({runs.dataset, TextTable::fmt_seconds(comm),
                 TextTable::fmt_seconds(comp),
                 TextTable::fmt(static_cast<double>(c.bytes_h2d) / 1e6, 4),
                 TextTable::fmt(static_cast<double>(c.bytes_d2h) / 1e6, 4),
                 TextTable::fmt(static_cast<index_t>(c.transfers_h2d +
                                                     c.transfers_d2h))});
    }
  }
  return table;
}

TextTable dataset_table(const std::vector<BackendRuns>& all_runs) {
  TextTable table("Datasets");
  table.header({"Dataset", "Nodes", "Edges", "Clusters"});
  for (const BackendRuns& runs : all_runs) {
    table.row({runs.dataset, TextTable::fmt(runs.nodes),
               TextTable::fmt(runs.edges), TextTable::fmt(runs.clusters)});
  }
  return table;
}

TextTable quality_table(const BackendRuns& runs,
                        const std::vector<index_t>& ground_truth,
                        const sparse::Csr& w) {
  TextTable table("Clustering quality on " + runs.dataset +
                  " (vs planted ground truth)");
  table.header({"Backend", "ARI", "NMI", "Purity", "Ncut"});
  for (const auto& [backend, result] : runs.runs) {
    table.row(
        {backend_name(backend),
         TextTable::fmt(metrics::adjusted_rand_index(result.labels,
                                                     ground_truth),
                        4),
         TextTable::fmt(
             metrics::normalized_mutual_information(result.labels,
                                                    ground_truth),
             4),
         TextTable::fmt(metrics::purity(result.labels, ground_truth), 4),
         TextTable::fmt(metrics::normalized_cut(w, result.labels, result.k),
                        4)});
  }
  return table;
}

}  // namespace fastsc::core
