#include "core/report.h"

#include <fstream>
#include <ostream>

#include "common/log.h"
#include "device/device_group.h"
#include "metrics/cut.h"
#include "metrics/external.h"
#include "obs/json.h"

namespace fastsc::core {

TextTable stage_table(const BackendRuns& runs, bool include_similarity) {
  TextTable table("Running time of spectral clustering on " + runs.dataset +
                  " (n=" + std::to_string(runs.nodes) +
                  ", nnz=" + std::to_string(runs.edges) +
                  ", k=" + std::to_string(runs.clusters) + ")");
  std::vector<std::string> header{"Time/s"};
  for (const auto& [backend, result] : runs.runs) {
    header.push_back(backend_name(backend));
  }
  table.header(std::move(header));

  std::vector<std::string> stages;
  if (include_similarity) stages.push_back(kStageSimilarity);
  stages.push_back(kStageEigensolver);
  stages.push_back(kStageKmeans);
  const std::map<std::string, std::string> pretty{
      {kStageSimilarity, "Compute Similarity Matrix"},
      {kStageEigensolver, "Sparse Eigensolver"},
      {kStageKmeans, "K-means Clustering"},
  };

  for (const std::string& stage : stages) {
    std::vector<std::string> row{pretty.at(stage)};
    for (const auto& [backend, result] : runs.runs) {
      row.push_back(TextTable::fmt_seconds(result.clock.seconds(stage)));
    }
    table.row(std::move(row));
  }
  return table;
}

TextTable figure_series(const BackendRuns& runs) {
  TextTable table("Figure series: per-stage times on " + runs.dataset);
  table.header({"dataset", "backend", "stage", "seconds"});
  for (const auto& [backend, result] : runs.runs) {
    for (const std::string& stage : result.clock.stages()) {
      table.row({runs.dataset, backend_name(backend), stage,
                 TextTable::fmt_seconds(result.clock.seconds(stage))});
    }
  }
  return table;
}

TextTable communication_table(const std::vector<BackendRuns>& all_runs) {
  TextTable table(
      "Comparison between data communication time and computation time "
      "(device backend; communication = modeled PCIe time, computation = "
      "total stage time minus communication)");
  table.header({"Dataset", "Communication/s", "Computation/s", "H2D MB",
                "D2H MB", "Transfers"});
  for (const BackendRuns& runs : all_runs) {
    for (const auto& [backend, result] : runs.runs) {
      if (backend != Backend::kDevice) continue;
      const auto& c = result.device_counters;
      const double comm = c.modeled_transfer_seconds;
      const double total = result.clock.total_seconds();
      const double comp = total > comm ? total - comm : 0;
      table.row({runs.dataset, TextTable::fmt_seconds(comm),
                 TextTable::fmt_seconds(comp),
                 TextTable::fmt(static_cast<double>(c.bytes_h2d) / 1e6, 4),
                 TextTable::fmt(static_cast<double>(c.bytes_d2h) / 1e6, 4),
                 TextTable::fmt(static_cast<index_t>(c.transfers_h2d +
                                                     c.transfers_d2h))});
    }
  }
  return table;
}

TextTable dataset_table(const std::vector<BackendRuns>& all_runs) {
  TextTable table("Datasets");
  table.header({"Dataset", "Nodes", "Edges", "Clusters"});
  for (const BackendRuns& runs : all_runs) {
    table.row({runs.dataset, TextTable::fmt(runs.nodes),
               TextTable::fmt(runs.edges), TextTable::fmt(runs.clusters)});
  }
  return table;
}

AttributionReport collect_attribution(const device::DeviceContext& ctx) {
  AttributionReport a;
  a.present = true;
  a.roofline = ctx.attribution().roofline();
  a.sites = ctx.attribution().report();
  a.totals = ctx.attribution().totals();
  a.device_totals = ctx.counters();
  return a;
}

AttributionReport collect_attribution(const device::DeviceGroup& group) {
  AttributionReport a;
  a.present = true;
  a.roofline = group.device(0).attribution().roofline();
  std::map<std::string, obs::SiteStats> merged;
  for (usize i = 0; i < group.size(); ++i) {
    for (const obs::SiteReport& r : group.device(i).attribution().report()) {
      obs::SiteStats& s = merged[r.site];
      s.kernel_launches += r.stats.kernel_launches;
      s.transfers_h2d += r.stats.transfers_h2d;
      s.transfers_d2h += r.stats.transfers_d2h;
      s.transfers_d2d += r.stats.transfers_d2d;
      s.bytes_h2d += r.stats.bytes_h2d;
      s.bytes_d2h += r.stats.bytes_d2h;
      s.bytes_d2d += r.stats.bytes_d2d;
      s.flops += r.stats.flops;
      s.bytes_read += r.stats.bytes_read;
      s.bytes_written += r.stats.bytes_written;
      s.kernel_seconds += r.stats.kernel_seconds;
      s.transfer_seconds += r.stats.transfer_seconds;
    }
  }
  a.sites.reserve(merged.size());
  for (const auto& [site, stats] : merged) {
    a.sites.push_back({site, stats, obs::arithmetic_intensity(stats),
                       obs::roofline_utilization(stats, a.roofline)});
  }
  a.totals = group.rollup_attribution();
  a.device_totals = group.rollup_counters();
  return a;
}

TextTable attribution_table(const AttributionReport& a) {
  TextTable table(
      "Kernel-level cost attribution (roofline vs "
      "peak=" + TextTable::fmt(a.roofline.peak_flops / 1e12, 3) +
      " Tflop/s, bw=" +
      TextTable::fmt(a.roofline.bandwidth_bytes_per_sec / 1e9, 2) + " GB/s)");
  table.header({"Site", "Launches", "Xfers", "MB moved", "Gflops",
                "MB touched", "Seconds", "Flops/B", "Roofline"});
  auto row_for = [&](const std::string& name, const obs::SiteStats& s,
                     double intensity, double utilization) {
    table.row({name, TextTable::fmt(static_cast<index_t>(s.kernel_launches)),
               TextTable::fmt(
                   static_cast<index_t>(s.transfers_h2d + s.transfers_d2h)),
               TextTable::fmt(
                   static_cast<double>(s.bytes_h2d + s.bytes_d2h) / 1e6, 3),
               TextTable::fmt(s.flops / 1e9, 4),
               TextTable::fmt((s.bytes_read + s.bytes_written) / 1e6, 3),
               TextTable::fmt_seconds(s.total_seconds()),
               TextTable::fmt(intensity, 3),
               utilization > 0 ? TextTable::fmt(utilization, 4) : "-"});
  };
  for (const obs::SiteReport& r : a.sites) {
    row_for(r.site, r.stats, r.arithmetic_intensity, r.roofline_utilization);
  }
  row_for("TOTAL", a.totals, obs::arithmetic_intensity(a.totals),
          obs::roofline_utilization(a.totals, a.roofline));
  return table;
}

namespace {

void write_device_counters(obs::JsonWriter& w,
                           const device::DeviceCounters& c) {
  w.begin_object();
  w.field("bytes_h2d", std::uint64_t{c.bytes_h2d});
  w.field("bytes_d2h", std::uint64_t{c.bytes_d2h});
  w.field("bytes_d2d", std::uint64_t{c.bytes_d2d});
  w.field("transfers_h2d", std::uint64_t{c.transfers_h2d});
  w.field("transfers_d2h", std::uint64_t{c.transfers_d2h});
  w.field("transfers_d2d", std::uint64_t{c.transfers_d2d});
  w.field("measured_transfer_seconds", c.measured_transfer_seconds);
  w.field("modeled_transfer_seconds", c.modeled_transfer_seconds);
  w.field("modeled_d2d_seconds", c.modeled_d2d_seconds);
  w.field("kernel_seconds", c.kernel_seconds);
  w.field("kernel_launches", std::uint64_t{c.kernel_launches});
  w.field("overlapped_seconds", c.overlapped_seconds);
  w.field("overlapped_h2d_seconds", c.overlapped_h2d_seconds);
  w.field("overlapped_d2h_seconds", c.overlapped_d2h_seconds);
  w.field("overlapped_d2d_seconds", c.overlapped_d2d_seconds);
  w.field("modeled_pipeline_seconds", c.modeled_pipeline_seconds());
  w.field("async_copies", std::uint64_t{c.async_copies});
  w.field("async_kernel_launches", std::uint64_t{c.async_kernel_launches});
  w.field("transfer_retries", std::uint64_t{c.transfer_retries});
  w.field("live_bytes", std::uint64_t{c.live_bytes});
  w.field("peak_bytes", std::uint64_t{c.peak_bytes});
  w.field("total_allocations", std::uint64_t{c.total_allocations});
  w.end_object();
}

void write_run(obs::JsonWriter& w, Backend backend,
               const SpectralResult& r) {
  w.begin_object();
  w.field("backend", backend_name(backend));
  w.field("n", static_cast<std::int64_t>(r.n));
  w.field("k", static_cast<std::int64_t>(r.k));

  w.key("stages");
  w.begin_object();
  for (const std::string& stage : r.clock.stages()) {
    w.field(stage, r.clock.seconds(stage));
  }
  w.end_object();
  w.field("total_seconds", r.clock.total_seconds());
  w.field("spmv_seconds", r.spmv_seconds);

  w.key("eigenvalues");
  w.begin_array();
  for (const real v : r.eigenvalues) w.value(v);
  w.end_array();

  w.key("eig");
  w.begin_object();
  w.field("converged", r.eig_converged);
  w.field("matvec_count", static_cast<std::int64_t>(r.eig_stats.matvec_count));
  w.field("restart_count",
          static_cast<std::int64_t>(r.eig_stats.restart_count));
  w.field("converged_count",
          static_cast<std::int64_t>(r.eig_stats.converged_count));
  w.field("rci_seconds", r.eig_stats.rci_seconds);
  w.field("restart_seconds", r.eig_stats.restart_seconds);
  w.field("ortho_seconds", r.eig_stats.ortho_seconds);
  w.key("restart_history");
  w.begin_array();
  for (const auto& s : r.eig_stats.restart_history) {
    w.begin_object();
    w.field("restart", static_cast<std::int64_t>(s.restart));
    w.field("converged", static_cast<std::int64_t>(s.converged));
    w.field("worst_wanted_residual", s.worst_wanted_residual);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("kmeans");
  w.begin_object();
  w.field("converged", r.kmeans_converged);
  w.field("iterations", static_cast<std::int64_t>(r.kmeans_iterations));
  w.key("inertia_history");
  w.begin_array();
  for (const real v : r.kmeans_inertia_history) w.value(v);
  w.end_array();
  w.end_object();

  w.key("budget");
  w.begin_object();
  w.field("enabled", r.budget.enabled);
  w.field("expired", r.budget.expired);
  w.field("watchdog_fired", r.budget.watchdog_fired);
  w.field("anytime", r.budget.anytime);
  w.field("reason", r.budget.reason);
  w.field("cancel_site", r.budget.cancel_site);
  w.field("expired_stage", r.budget.expired_stage);
  w.field("total_wall_ms_limit", r.budget.total_wall_ms_limit);
  w.field("total_wall_ms_spent", r.budget.total_wall_ms_spent);
  w.field("total_virtual_limit_seconds", r.budget.total_virtual_limit_seconds);
  w.field("total_virtual_spent_seconds", r.budget.total_virtual_spent_seconds);
  w.key("stages");
  w.begin_array();
  for (const cancel::StageSpend& s : r.budget.stages) {
    w.begin_object();
    w.field("stage", s.stage);
    w.field("wall_ms_limit", s.wall_ms_limit);
    w.field("wall_ms_spent", s.wall_ms_spent);
    w.field("virtual_limit_seconds", s.virtual_limit_seconds);
    w.field("virtual_spent_seconds", s.virtual_spent_seconds);
    w.field("expired_here", s.expired_here);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("integrity");
  w.begin_object();
  w.field("checks", std::uint64_t{r.integrity.checks});
  w.field("detected", std::uint64_t{r.integrity.detected});
  w.field("recomputed", std::uint64_t{r.integrity.recomputed});
  w.key("events");
  w.begin_array();
  for (const std::string& e : r.integrity.events) w.value(e);
  w.end_array();
  w.end_object();

  w.key("degradation");
  w.begin_object();
  w.field("degraded", r.degradation.degraded);
  w.field("transfer_retries",
          std::uint64_t{r.device_counters.transfer_retries});
  w.key("events");
  w.begin_array();
  for (const DegradationEvent& e : r.degradation.events) {
    w.begin_object();
    w.field("stage", e.stage);
    w.field("action", e.action);
    w.field("reason", e.reason);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("device_counters");
  write_device_counters(w, r.device_counters);
  w.end_object();
}

}  // namespace

void write_run_report_json(const RunReport& report, std::ostream& os) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema", "fastsc.run_report.v1");
  w.field("bench", report.bench);

  w.key("datasets");
  w.begin_array();
  for (const BackendRuns& runs : report.datasets) {
    w.begin_object();
    w.field("dataset", runs.dataset);
    w.field("nodes", static_cast<std::int64_t>(runs.nodes));
    w.field("edges", static_cast<std::int64_t>(runs.edges));
    w.field("clusters", static_cast<std::int64_t>(runs.clusters));
    w.key("runs");
    w.begin_array();
    for (const auto& [backend, result] : runs.runs) {
      write_run(w, backend, result);
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("tables");
  w.begin_array();
  for (const TextTable& t : report.tables) {
    w.begin_object();
    w.field("title", t.title());
    w.field("text", t.to_string());
    w.field("csv", t.to_csv());
    w.end_object();
  }
  w.end_array();

  if (report.attribution.present) {
    const AttributionReport& a = report.attribution;
    w.key("attribution");
    w.begin_object();
    w.key("roofline");
    w.begin_object();
    w.field("peak_flops", a.roofline.peak_flops);
    w.field("bandwidth_bytes_per_sec", a.roofline.bandwidth_bytes_per_sec);
    w.end_object();
    w.key("sites");
    obs::write_attribution_sites(w, a.sites);
    w.key("totals");
    w.begin_object();
    w.field("kernel_launches", std::uint64_t{a.totals.kernel_launches});
    w.field("transfers_h2d", std::uint64_t{a.totals.transfers_h2d});
    w.field("transfers_d2h", std::uint64_t{a.totals.transfers_d2h});
    w.field("bytes_h2d", std::uint64_t{a.totals.bytes_h2d});
    w.field("bytes_d2h", std::uint64_t{a.totals.bytes_d2h});
    w.field("flops", a.totals.flops);
    w.field("bytes_read", a.totals.bytes_read);
    w.field("bytes_written", a.totals.bytes_written);
    w.field("kernel_seconds", a.totals.kernel_seconds);
    w.field("transfer_seconds", a.totals.transfer_seconds);
    w.end_object();
    w.key("device_counters");
    write_device_counters(w, a.device_totals);
    w.end_object();
  }
  w.end_object();
  os << '\n';
}

bool write_run_report_json_file(const RunReport& report,
                                const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    FASTSC_LOG_ERROR("cannot open run report output file " << path);
    return false;
  }
  write_run_report_json(report, os);
  os.flush();
  if (!os) {
    FASTSC_LOG_ERROR("failed writing run report output file " << path);
    return false;
  }
  return true;
}

TextTable quality_table(const BackendRuns& runs,
                        const std::vector<index_t>& ground_truth,
                        const sparse::Csr& w) {
  TextTable table("Clustering quality on " + runs.dataset +
                  " (vs planted ground truth)");
  table.header({"Backend", "ARI", "NMI", "Purity", "Ncut"});
  for (const auto& [backend, result] : runs.runs) {
    table.row(
        {backend_name(backend),
         TextTable::fmt(metrics::adjusted_rand_index(result.labels,
                                                     ground_truth),
                        4),
         TextTable::fmt(
             metrics::normalized_mutual_information(result.labels,
                                                    ground_truth),
             4),
         TextTable::fmt(metrics::purity(result.labels, ground_truth), 4),
         TextTable::fmt(metrics::normalized_cut(w, result.labels, result.k),
                        4)});
  }
  return table;
}

}  // namespace fastsc::core
