// Report assembly: turn pipeline results into the paper's tables.
//
// Each table bench runs the three backends on one dataset and prints:
//  * the paper-style per-stage time table (Table III-VI shape),
//  * the figure series (same numbers, one row per stage per backend,
//    CSV-friendly — Figures 3-6 are bar charts of these),
//  * the communication/computation split (Table VII shape) for kDevice.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/spectral.h"
#include "sparse/csr.h"

namespace fastsc::core {

/// One dataset's worth of backend results keyed by backend.
struct BackendRuns {
  std::string dataset;
  index_t nodes = 0;
  index_t edges = 0;
  index_t clusters = 0;
  std::vector<std::pair<Backend, SpectralResult>> runs;
};

/// Paper Table III-VI: rows = stages, columns = backends.
[[nodiscard]] TextTable stage_table(const BackendRuns& runs,
                                    bool include_similarity);

/// Figure 3-6 series: dataset,backend,stage,seconds rows (CSV-friendly).
[[nodiscard]] TextTable figure_series(const BackendRuns& runs);

/// Paper Table VII row for the device run: communication vs computation.
/// `comm_seconds`/`comp_seconds` are returned for aggregation.
[[nodiscard]] TextTable communication_table(
    const std::vector<BackendRuns>& all_runs);

/// Paper Table II: dataset inventory.
[[nodiscard]] TextTable dataset_table(const std::vector<BackendRuns>& all_runs);

/// Clustering-quality table (beyond the paper: ARI/NMI vs planted truth and
/// Ncut), one row per backend.
[[nodiscard]] TextTable quality_table(
    const BackendRuns& runs, const std::vector<index_t>& ground_truth,
    const sparse::Csr& w);

}  // namespace fastsc::core
