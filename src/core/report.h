// Report assembly: turn pipeline results into the paper's tables.
//
// Each table bench runs the three backends on one dataset and prints:
//  * the paper-style per-stage time table (Table III-VI shape),
//  * the figure series (same numbers, one row per stage per backend,
//    CSV-friendly — Figures 3-6 are bar charts of these),
//  * the communication/computation split (Table VII shape) for kDevice.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/spectral.h"
#include "obs/attribution.h"
#include "sparse/csr.h"

namespace fastsc::device {
class DeviceGroup;
}  // namespace fastsc::device

namespace fastsc::core {

/// One dataset's worth of backend results keyed by backend.
struct BackendRuns {
  std::string dataset;
  index_t nodes = 0;
  index_t edges = 0;
  index_t clusters = 0;
  std::vector<std::pair<Backend, SpectralResult>> runs;
};

/// Paper Table III-VI: rows = stages, columns = backends.
[[nodiscard]] TextTable stage_table(const BackendRuns& runs,
                                    bool include_similarity);

/// Figure 3-6 series: dataset,backend,stage,seconds rows (CSV-friendly).
[[nodiscard]] TextTable figure_series(const BackendRuns& runs);

/// Paper Table VII row for the device run: communication vs computation.
/// `comm_seconds`/`comp_seconds` are returned for aggregation.
[[nodiscard]] TextTable communication_table(
    const std::vector<BackendRuns>& all_runs);

/// Paper Table II: dataset inventory.
[[nodiscard]] TextTable dataset_table(const std::vector<BackendRuns>& all_runs);

/// Clustering-quality table (beyond the paper: ARI/NMI vs planted truth and
/// Ncut), one row per backend.
[[nodiscard]] TextTable quality_table(
    const BackendRuns& runs, const std::vector<index_t>& ground_truth,
    const sparse::Csr& w);

/// Attribution section of a run report: the per-site cost rows from one
/// DeviceContext's AttributionRegistry, the roofline ceilings they were
/// scored against, and the context-lifetime DeviceCounters totals the
/// per-site sums must reproduce (tools/check_trace.py --report verifies
/// bytes exactly and seconds to 1e-6).
struct AttributionReport {
  bool present = false;  ///< emitted only when a context was attached
  obs::RooflineModel roofline;
  std::vector<obs::SiteReport> sites;   ///< sorted by site name
  obs::SiteStats totals;                ///< sum over every site
  device::DeviceCounters device_totals; ///< context totals (cross-check)
};

/// Snapshot the context's attribution registry + counters into a section.
[[nodiscard]] AttributionReport collect_attribution(
    const device::DeviceContext& ctx);

/// Group variant: merge every device's per-site rows by site name (stats
/// summed, roofline columns recomputed against device 0's model) so the
/// exact-sum invariants check_trace.py --report enforces hold across the
/// whole group, with device_totals = rollup_counters().
[[nodiscard]] AttributionReport collect_attribution(
    const device::DeviceGroup& group);

/// Per-site cost table: launches, bytes, flops, seconds, intensity, and
/// roofline utilization — one row per site plus a totals row.
[[nodiscard]] TextTable attribution_table(const AttributionReport& a);

/// Machine-readable run report: everything a table bench measured, as one
/// JSON document (schema "fastsc.run_report.v1").  Carries both the
/// structured numbers — per-stage seconds, eigensolver/k-means telemetry,
/// device counters — and the rendered table text, so downstream consumers
/// (bench/fill_experiments.py) can either read fields directly or reuse the
/// exact stdout rendering without scraping a live process.
struct RunReport {
  std::string bench;                  ///< bench executable name
  std::vector<BackendRuns> datasets;  ///< structured results, run order
  std::vector<TextTable> tables;      ///< rendered tables, print order
  AttributionReport attribution;      ///< per-site cost rows (if present)
};

void write_run_report_json(const RunReport& report, std::ostream& os);
/// Returns false (and logs) on I/O failure.
bool write_run_report_json_file(const RunReport& report,
                                const std::string& path);

}  // namespace fastsc::core
