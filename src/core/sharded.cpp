#include "core/sharded.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/cancel.h"
#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/timer.h"
#include "common/validation.h"
#include "core/pipeline_internal.h"
#include "graph/laplacian.h"
#include "kmeans/seeding.h"
#include "lanczos/rci.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sparse/shard.h"

namespace fastsc::core {

namespace {

/// Row cuts are aligned to this block size, which is also the k-means
/// partial-reduction block: every 256-point block lies whole on one device,
/// so the root can fold block partials in ascending global block order no
/// matter how many devices produced them (the determinism contract).
constexpr index_t kKmeansBlock = 256;

/// Meter one wave of sharded CGS2 reorthogonalization: each device runs the
/// partial GEMV pair over its local rows against the j-vector basis (twice —
/// "twice is enough"), then the j+1 coefficient vector allreduces through
/// the root.  The arithmetic itself stays in the host solver (bitwise
/// identical to the single-device run); this charges where the flops and
/// wire traffic would land on a real multi-GPU eigensolver.
void meter_cgs2_wave(device::DeviceGroup& group,
                     const sparse::RowPartition& part, index_t j) {
  if (j <= 0) return;
  for (usize d = 0; d < group.size(); ++d) {
    const auto n_local =
        static_cast<double>(part.size(static_cast<index_t>(d)));
    if (n_local <= 0) continue;
    obs::KernelCost cost;
    cost.site = "cgs2.partial_gemv";
    cost.flops = 8.0 * n_local * static_cast<double>(j);
    cost.bytes_read =
        4.0 * n_local * static_cast<double>(j) * sizeof(real);
    cost.bytes_written = 2.0 * n_local * sizeof(real);
    group.device(d).record_kernel(
        0.0, group.modeled_kernel_seconds(cost.bytes_read + cost.bytes_written),
        cost);
  }
  // Recursive-doubling allreduce of the coefficient vector (two CGS passes
  // per wave ride one fused exchange).  Every device receives exactly one
  // message per round — ceil(log2 P) per wave on each link — instead of a
  // star serializing 2(P-1) message latencies on the root's link, which
  // would cap the modeled speedup curve well below linear.
  const usize coeff_bytes = 2 * static_cast<usize>(j + 1) * sizeof(real);
  const usize P = group.size();
  for (usize r = 1; r < P; r *= 2) {
    for (usize d = 0; d < P; ++d) {
      const usize peer = d ^ r;
      if (peer >= P || peer < d) continue;
      group.model_peer_transfer(d, peer, coeff_bytes, "d2d.allreduce");
      group.model_peer_transfer(peer, d, coeff_bytes, "d2d.allreduce");
    }
  }
}

/// Sharded eigensolver stage: cut the row partition from the COO histogram,
/// normalize every row block on its own device (distributed Algorithm 2),
/// and drive the reverse-communication loop with sharded SpMV waves.  Fills
/// `part_out` with the (block-aligned) row partition so the k-means stage
/// shards its points identically.
void eigensolve_sharded(device::DeviceGroup& group, const sparse::Coo& w,
                        const SpectralConfig& cfg, SpectralResult& result,
                        sparse::RowPartition& part_out) {
  const index_t n = w.rows;
  const PrecisionPolicy& pp = cfg.precision;
  const Precision spmv_p = pp.resolve(PrecisionStage::kSpmv);
  const Precision basis_p = pp.resolve(PrecisionStage::kBasis);
  const bool fused = pp.fused();
  const bool eig_narrow =
      fused || spmv_p != Precision::kFp64 || basis_p != Precision::kFp64;
  const bool do_refine = eig_narrow && pp.refine_rounds > 0;

  lanczos::LanczosConfig ec = detail::eig_config(cfg, n);
  if (spmv_p != Precision::kFp64 || basis_p != Precision::kFp64) {
    // Same clamp as the single-device path: don't chase residuals below the
    // narrow rung's unit roundoff; the fp64 refinement recovers the digits.
    const bool any_bf16 =
        spmv_p == Precision::kBf16 || basis_p == Precision::kBf16;
    ec.tol = std::max(ec.tol, any_bf16 ? real{1e-3} : real{1e-6});
  }

  sparse::RowPartition part;
  {
    // The row cut comes from the COO row histogram — normalization keeps
    // the structure, so this equals the final CSR's row_ptr.
    std::vector<index_t> row_ptr(static_cast<usize>(n) + 1, 0);
    for (const index_t r : w.row_idx) ++row_ptr[static_cast<usize>(r) + 1];
    for (index_t r = 0; r < n; ++r) {
      row_ptr[static_cast<usize>(r) + 1] += row_ptr[static_cast<usize>(r)];
    }
    // Per row and wave the dense stages read ~4 * ncv doubles (the CGS2
    // sweeps dominate; k-means assignment and the PCIe x/y staging scale
    // the same way) against ~20 bytes per CSR entry for the SpMV, so a row
    // weighs roughly ncv entries.  Weighting the merge path accordingly
    // balances rows and entries together instead of entries alone — an
    // nnz-only cut hands the sparsest shard the most dense-stage work.
    const index_t ncv_eff =
        ec.ncv > 0 ? ec.ncv
                   : std::min(n, std::max<index_t>(2 * ec.nev + 1, 20));
    part = sparse::make_row_partition(
        row_ptr.data(), n, static_cast<index_t>(group.size()), kKmeansBlock,
        ncv_eff);
  }

  graph::NormalizeOptions nopts;
  nopts.fuse_scale = fused;
  graph::ShardedNormalized norm =
      graph::sym_normalized_sharded(group, w, part, nopts);
  std::vector<real> isd = std::move(norm.inv_sqrt_degree);
  sparse::ShardedCsr sp = sparse::shard_device_locals(
      group, part, std::move(norm.locals), norm.structure);
  if (fused) {
    sparse::set_sharded_fused_scale(sp, std::move(norm.isd_replicas));
  }
  if (spmv_p != Precision::kFp64) sparse::demote_sharded_values(sp, spmv_p);
  if (basis_p != Precision::kFp64) {
    sparse::set_sharded_stage_precision(sp, basis_p);
  }
  part_out = sp.part;
  const DegradationPolicy& pol = cfg.degradation;
  ec.capture_checkpoints =
      (pol.enabled && pol.resume_failed_solve) || cfg.capture_checkpoint;
  lanczos::SymEigProb prob(ec);
  if (cfg.warm_start != nullptr) {
    const lanczos::LanczosCheckpoint& cp = *cfg.warm_start;
    const lanczos::LanczosConfig& sc = prob.Solver().config();
    if (cp.valid() && cp.n == sc.n && cp.nev == sc.nev && cp.ncv == sc.ncv &&
        cp.which == static_cast<int>(sc.which) && cp.j == cp.nkept &&
        cp.nkept >= 1) {
      prob.RestoreWarm(cp);
      result.warm_started = true;
    } else {
      FASTSC_LOG_WARN("warm-start checkpoint incompatible with this solve "
                      "(shape or phase mismatch); cold-starting");
    }
  }
  std::vector<real> host_y(static_cast<usize>(n));

  index_t resumes = 0;
  bool abandoned = false;
  for (;;) {
    try {
      while (!prob.converge()) {
        cancel::poll("lanczos.matvec");
        WallTimer t;
        {
          obs::ScopedSpan span("spmv", "wave");
          sparse::sharded_csrmv(sp, prob.GetVector(), host_y.data());
        }
        std::copy(host_y.begin(), host_y.end(), prob.PutVector());
        result.spmv_seconds += t.seconds();
        meter_cgs2_wave(group, sp.part, prob.Solver().basis_size());
        prob.TakeStep();
      }
    } catch (const cancel::CancelledError& e) {
      cancel::Governor& gov = cancel::current_governor();
      if (!gov.anytime_allowed() || !prob.CanAbandon()) throw;
      // Anytime cut: freeze the iteration, keep the best partial Ritz pairs,
      // and stop enforcement so the rest of the pipeline completes.
      prob.Abandon();
      gov.begin_wrapup(e.site().empty() ? e.what() : e.site());
      abandoned = true;
    }
    if (abandoned || !prob.Failed() || !ec.capture_checkpoints ||
        resumes >= pol.max_solver_resumes ||
        !prob.Solver().has_checkpoint()) {
      break;
    }
    ++resumes;
    detail::note_degradation(
        result, kStageEigensolver, "solver-resume",
        "restart budget exhausted; resuming from checkpoint at restart " +
            std::to_string(prob.Solver().last_checkpoint().restart_count));
    const index_t extended =
        prob.Solver().config().max_restarts + ec.max_restarts;
    prob.Restore(prob.Solver().last_checkpoint());
    prob.Solver().set_max_restarts(extended);
  }
  result.eigenvalues = prob.Eigenvalues();
  result.eig_converged = !prob.Failed();
  result.eig_stats = prob.Stats();
  if (cfg.capture_checkpoint && prob.Solver().has_checkpoint()) {
    result.checkpoint = std::make_shared<lanczos::LanczosCheckpoint>(
        prob.Solver().last_checkpoint());
  }
  std::vector<real> vectors = prob.FindEigenvectors();
  if (do_refine && !vectors.empty()) {
    // Same host-side fp64 Rayleigh-Ritz pass as the single-device path —
    // both refine against `w` in its original COO entry order, so labels
    // stay byte-identical across device counts at every rung.
    result.refine_residual = detail::refine_eigenpairs_fp64(
        w, isd, pp.refine_rounds, result.eigenvalues, vectors);
  }
  result.embedding = detail::to_embedding(vectors, isd, cfg.num_clusters, n);
  result.precision_used = pp;
}

/// Empty-cluster repair (identical rule to kmeans.cpp): re-seed each empty
/// centroid at the point currently farthest from its assigned centroid,
/// scanning the globally-ordered min-distance vector — the same winner for
/// any device count.
void repair_empty_clusters(std::vector<real>& centroids,
                           const std::vector<index_t>& counts, const real* v,
                           std::vector<real> min_dist, index_t n, index_t d) {
  const auto k = static_cast<index_t>(counts.size());
  for (index_t c = 0; c < k; ++c) {
    if (counts[static_cast<usize>(c)] != 0) continue;
    index_t far = 0;
    real best = -1;
    for (index_t j = 0; j < n; ++j) {
      if (min_dist[static_cast<usize>(j)] > best) {
        best = min_dist[static_cast<usize>(j)];
        far = j;
      }
    }
    std::copy(v + far * d, v + (far + 1) * d, centroids.begin() + c * d);
    min_dist[static_cast<usize>(far)] = -1;  // don't reuse for another empty
  }
}

/// Per-device k-means state: the local point block plus the sweep buffers.
struct KmeansShard {
  index_t row_begin = 0;
  index_t row_end = 0;
  index_t blocks = 0;
  device::DeviceBuffer<real> v;         ///< local points, n_local x d
  device::DeviceBuffer<real> cent;      ///< centroid replica, k x d
  device::DeviceBuffer<index_t> cur;    ///< labels after the last sweep
  device::DeviceBuffer<index_t> next;   ///< labels being assigned
  device::DeviceBuffer<real> min_dist;  ///< squared distance to own centroid
  device::DeviceBuffer<real> partials;  ///< blocks x stride reduction output

  [[nodiscard]] index_t rows() const noexcept { return row_end - row_begin; }
};

/// Sharded Lloyd iterations over the embedding rows, reusing the
/// eigensolver's block-aligned row partition.  Per sweep: the centroids
/// broadcast root -> peers over the D2D link, every device assigns its
/// points and reduces fixed 256-point blocks to partial (sum, count,
/// changed, inertia) records, and the root folds all blocks in ascending
/// global order — bitwise the same update for every device count.
void kmeans_sharded(device::DeviceGroup& group,
                    const sparse::RowPartition& part,
                    const SpectralConfig& cfg, SpectralResult& result) {
  const index_t n = result.n;
  const index_t k = cfg.num_clusters;
  const index_t d = result.k;  // embedding width
  const real* v = result.embedding.data();
  obs::AttrSiteScope attr_site("kmeans.lloyd");

  // k-means precision rung (DESIGN.md §13): quantize the embedding up front
  // — the same point kmeans_device quantizes at — so host seeding, repair,
  // and every device see identical values and labels stay byte-identical
  // across device counts.
  const Precision km_p = cfg.precision.resolve(PrecisionStage::kKmeans);
  const bool km_narrow = km_p != Precision::kFp64;
  std::vector<real> vquant;
  if (km_narrow) {
    vquant.resize(result.embedding.size());
    for (usize i = 0; i < vquant.size(); ++i) {
      vquant[i] = quantize(result.embedding[i], km_p);
    }
    v = vquant.data();
  }

  // Seeding on the host from the full embedding — trivially independent of
  // the device count (same draws as the host Lloyd baseline).
  Rng rng(cfg.seed);
  const std::vector<index_t> seed_rows =
      cfg.seeding == kmeans::Seeding::kKmeansPlusPlus
          ? kmeans::kmeanspp_seeds_host(v, n, d, k, rng)
          : kmeans::random_seeds_host(n, k, rng);
  std::vector<real> centroids(static_cast<usize>(k) * static_cast<usize>(d));
  for (index_t c = 0; c < k; ++c) {
    std::copy(v + seed_rows[static_cast<usize>(c)] * d,
              v + (seed_rows[static_cast<usize>(c)] + 1) * d,
              centroids.begin() + c * d);
  }

  // Partial record per block: k*d centroid sums, k counts, changed, inertia.
  const usize stride = static_cast<usize>(k) * static_cast<usize>(d) +
                       static_cast<usize>(k) + 2;
  const auto ndev = static_cast<index_t>(group.size());
  std::vector<KmeansShard> shards(static_cast<usize>(ndev));
  for (index_t dev = 0; dev < ndev; ++dev) {
    device::DeviceContext& ctx = group.device(static_cast<usize>(dev));
    KmeansShard& sh = shards[static_cast<usize>(dev)];
    sh.row_begin = part.begin(dev);
    sh.row_end = part.end(dev);
    const index_t nl = sh.rows();
    sh.blocks = (nl + kKmeansBlock - 1) / kKmeansBlock;
    if (!km_narrow) {
      sh.v = device::DeviceBuffer<real>(
          ctx, std::span<const real>(v + sh.row_begin * d,
                                     static_cast<usize>(nl) *
                                         static_cast<usize>(d)));
    } else {
      // Narrow uplink: the local block crosses the link packed at the rung's
      // width, then widens into the fp64 working copy on the device (the
      // values are already quantized, so widening is exact).
      const usize wb = bytes_per_scalar(km_p);
      const usize cnt = static_cast<usize>(nl) * static_cast<usize>(d);
      std::vector<unsigned char> packed(cnt * wb);
      pack_scalars(v + sh.row_begin * d, cnt, km_p, packed.data());
      const device::DeviceBuffer<unsigned char> staged(
          ctx, std::span<const unsigned char>(packed));
      sh.v = device::DeviceBuffer<real>(ctx, cnt);
      const ConstVecView pv(staged.data(), km_p);
      real* vp = sh.v.data();
      const double c = static_cast<double>(cnt);
      device::LaunchConfig widen_cfg = device::tagged(
          "precision.stage", c, c * static_cast<double>(wb), c * sizeof(real));
      widen_cfg.bytes_per_scalar = static_cast<double>(wb);
      widen_cfg.modeled_seconds = group.modeled_kernel_seconds(
          widen_cfg.bytes_read + widen_cfg.bytes_written);
      device::launch(ctx, static_cast<index_t>(cnt),
                     [=](index_t i) { vp[i] = pv.load(static_cast<usize>(i)); },
                     widen_cfg);
    }
    sh.cent = device::DeviceBuffer<real>(ctx, centroids.size());
    sh.cur = device::DeviceBuffer<index_t>(ctx, static_cast<usize>(nl));
    sh.next = device::DeviceBuffer<index_t>(ctx, static_cast<usize>(nl));
    sh.min_dist = device::DeviceBuffer<real>(ctx, static_cast<usize>(nl));
    sh.partials = device::DeviceBuffer<real>(
        ctx, static_cast<usize>(sh.blocks) * stride);
    // Labels start at the invalid value k so the first sweep counts every
    // point as changed (matching a cold host Lloyd run).
    index_t* cur = sh.cur.data();
    device::launch(
        ctx, nl, [cur, k](index_t i) { cur[i] = k; },
        device::tagged("kmeans.init"));
  }

  std::vector<real> host_partials;
  std::vector<real> sums(centroids.size());
  std::vector<index_t> counts(static_cast<usize>(k));
  bool converged = false;
  index_t iterations = 0;

  for (index_t sweep = 0; sweep < cfg.kmeans_max_iters; ++sweep) {
    cancel::poll("kmeans.sweep");

    // Centroid broadcast: host -> root over the PCIe link, root -> peers
    // over the D2D link.
    shards[0].cent.copy_from_host(std::span<const real>(centroids));
    for (index_t e = 1; e < ndev; ++e) {
      group.copy_peer(0, static_cast<usize>(e), shards[0].cent.data(),
                      shards[static_cast<usize>(e)].cent.data(),
                      centroids.size(), "d2d.centroid_bcast");
    }

    // Assignment + block reduction on every device.
    for (index_t dev = 0; dev < ndev; ++dev) {
      device::DeviceContext& ctx = group.device(static_cast<usize>(dev));
      KmeansShard& sh = shards[static_cast<usize>(dev)];
      const index_t nl = sh.rows();
      const real* pv = sh.v.data();
      const real* cent = sh.cent.data();
      index_t* next = sh.next.data();
      const index_t* cur = sh.cur.data();
      real* min_dist = sh.min_dist.data();
      real* partials = sh.partials.data();

      device::LaunchConfig assign_cfg = device::tagged(
          "kmeans.assign",
          3.0 * static_cast<double>(nl) * static_cast<double>(k) *
              static_cast<double>(d),
          static_cast<double>(nl) * static_cast<double>(d + k * d) *
              sizeof(real),
          static_cast<double>(nl) * 2.0 * sizeof(real));
      assign_cfg.modeled_seconds = group.modeled_kernel_seconds(
          assign_cfg.bytes_read + assign_cfg.bytes_written);
      device::launch(
          ctx, nl,
          [pv, cent, next, min_dist, k, d](index_t i) {
            const real* row = pv + i * d;
            index_t best = 0;
            real best_val = 0;
            for (index_t c = 0; c < k; ++c) {
              real dist = 0;
              const real* cc = cent + c * d;
              for (index_t l = 0; l < d; ++l) {
                const real diff = row[l] - cc[l];
                dist += diff * diff;
              }
              if (c == 0 || dist < best_val) {
                best_val = dist;
                best = c;
              }
            }
            next[i] = best;
            min_dist[i] = best_val;
          },
          assign_cfg);

      device::LaunchConfig reduce_cfg = device::tagged(
          "kmeans.block_reduce",
          static_cast<double>(nl) * static_cast<double>(d + 2),
          static_cast<double>(nl) *
              (static_cast<double>(d) * sizeof(real) + 2.0 * sizeof(index_t)),
          static_cast<double>(sh.blocks) * static_cast<double>(stride) *
              sizeof(real));
      reduce_cfg.modeled_seconds = group.modeled_kernel_seconds(
          reduce_cfg.bytes_read + reduce_cfg.bytes_written);
      const usize block_stride = stride;
      device::launch(
          ctx, sh.blocks,
          [pv, next, cur, min_dist, partials, nl, k, d,
           block_stride](index_t b) {
            real* rec = partials + static_cast<usize>(b) * block_stride;
            for (usize s = 0; s < block_stride; ++s) rec[s] = 0;
            real* rsums = rec;
            real* rcounts = rec + k * d;
            real& rchanged = rec[block_stride - 2];
            real& rinertia = rec[block_stride - 1];
            const index_t i0 = b * kKmeansBlock;
            const index_t i1 = std::min(nl, i0 + kKmeansBlock);
            for (index_t i = i0; i < i1; ++i) {
              const index_t lab = next[i];
              const real* row = pv + i * d;
              for (index_t l = 0; l < d; ++l) rsums[lab * d + l] += row[l];
              rcounts[lab] += 1;
              if (next[i] != cur[i]) rchanged += 1;
              rinertia += min_dist[i];
            }
          },
          reduce_cfg);
    }

    // Fold on the root in ascending global block order (devices are in row
    // order, blocks within a device are in row order).  Partials download
    // over each device's own link, then ship to the root on the D2D link.
    std::fill(sums.begin(), sums.end(), real{0});
    std::fill(counts.begin(), counts.end(), index_t{0});
    index_t changed = 0;
    real inertia = 0;
    for (index_t dev = 0; dev < ndev; ++dev) {
      KmeansShard& sh = shards[static_cast<usize>(dev)];
      if (sh.blocks == 0) continue;
      host_partials.resize(static_cast<usize>(sh.blocks) * stride);
      sh.partials.copy_to_host(std::span<real>(host_partials));
      if (dev != 0) {
        group.model_peer_transfer(static_cast<usize>(dev), 0,
                                  host_partials.size() * sizeof(real),
                                  "d2d.centroid_reduce");
      }
      for (index_t b = 0; b < sh.blocks; ++b) {
        const real* rec = host_partials.data() + static_cast<usize>(b) * stride;
        for (usize s = 0; s < sums.size(); ++s) sums[s] += rec[s];
        for (index_t c = 0; c < k; ++c) {
          counts[static_cast<usize>(c)] +=
              static_cast<index_t>(rec[static_cast<usize>(k * d + c)]);
        }
        changed += static_cast<index_t>(rec[stride - 2]);
        inertia += rec[stride - 1];
      }
    }

    iterations = sweep + 1;
    if (cfg.record_kmeans_inertia || obs::trace_enabled()) {
      result.kmeans_inertia_history.push_back(inertia);
      if (obs::trace_enabled()) {
        const double now = obs::wall_now_us();
        obs::trace().counter("kmeans.inertia", inertia, now);
        obs::trace().counter("kmeans.changed", static_cast<double>(changed),
                             now);
      }
    }

    // Labels for the next sweep are this sweep's assignment.
    for (index_t dev = 0; dev < ndev; ++dev) {
      shards[static_cast<usize>(dev)].cur.swap(
          shards[static_cast<usize>(dev)].next);
    }
    if (changed == 0) {
      converged = true;
      break;
    }

    for (index_t c = 0; c < k; ++c) {
      const index_t cnt = counts[static_cast<usize>(c)];
      if (cnt == 0) continue;  // repaired below
      const real inv = real{1} / static_cast<real>(cnt);
      for (index_t l = 0; l < d; ++l) {
        centroids[static_cast<usize>(c * d + l)] =
            sums[static_cast<usize>(c * d + l)] * inv;
      }
    }
    if (std::any_of(counts.begin(), counts.end(),
                    [](index_t c) { return c == 0; })) {
      // Rare path: gather the globally-ordered min-distance vector and
      // re-seed the empty centroids from the full embedding.
      std::vector<real> min_dist(static_cast<usize>(n));
      for (index_t dev = 0; dev < ndev; ++dev) {
        KmeansShard& sh = shards[static_cast<usize>(dev)];
        if (sh.rows() == 0) continue;
        sh.min_dist.copy_to_host(std::span<real>(
            min_dist.data() + sh.row_begin, static_cast<usize>(sh.rows())));
        if (dev != 0) {
          group.model_peer_transfer(
              static_cast<usize>(dev), 0,
              static_cast<usize>(sh.rows()) * sizeof(real),
              "d2d.centroid_reduce");
        }
      }
      repair_empty_clusters(centroids, counts, v, std::move(min_dist), n, d);
    }
  }

  result.labels.resize(static_cast<usize>(n));
  for (index_t dev = 0; dev < ndev; ++dev) {
    KmeansShard& sh = shards[static_cast<usize>(dev)];
    if (sh.rows() == 0) continue;
    sh.cur.copy_to_host(std::span<index_t>(
        result.labels.data() + sh.row_begin, static_cast<usize>(sh.rows())));
  }
  result.kmeans_converged = converged;
  result.kmeans_iterations = iterations;
}

/// Anytime wrapper matching core/spectral.cpp's kmeans_stage: a deadline
/// firing mid-sweep enters wrap-up and reruns the stage to completion.
void kmeans_stage_sharded(device::DeviceGroup& group,
                          const sparse::RowPartition& part,
                          const SpectralConfig& cfg, SpectralResult& result) {
  if (cfg.validate_inputs) {
    check_finite(result.embedding, "spectral embedding (k-means input)");
  }
  try {
    kmeans_sharded(group, part, cfg, result);
  } catch (const cancel::CancelledError& e) {
    cancel::Governor& gov = cancel::current_governor();
    if (!gov.anytime_allowed()) throw;
    gov.begin_wrapup(e.site().empty() ? e.what() : e.site());
    kmeans_sharded(group, part, cfg, result);
  }
}

}  // namespace

SpectralResult spectral_cluster_graph_sharded(const sparse::Coo& w,
                                              const SpectralConfig& config,
                                              device::DeviceGroup& group) {
  FASTSC_CHECK(w.rows == w.cols, "graph matrix must be square");
  FASTSC_CHECK(config.num_clusters >= 1 && config.num_clusters <= w.rows,
               "cluster count must be in [1, n]");
  FASTSC_CHECK(config.backend == Backend::kDevice,
               "the sharded pipeline requires the device backend");
  if (config.validate_inputs) {
    check_finite(w.values, "similarity matrix values");
    check_index_range(w.row_idx, w.rows, "similarity matrix row");
    check_index_range(w.col_idx, w.cols, "similarity matrix column");
  }
  const device::DeviceCounters counters_before = group.rollup_counters();
  const obs::TraceEnableScope trace_scope(config.trace);
  std::optional<fault::ArmScope> fault_scope;
  if (!config.faults.empty()) fault_scope.emplace(config.faults);
  std::optional<cancel::RunScope> cancel_scope;
  {
    const cancel::RunBudget& budget =
        config.budget.enabled() ? config.budget : cancel::env_budget();
    if (budget.enabled() || config.watchdog.enabled() ||
        config.cancel_token.valid()) {
      // Virtual-now for the group is the sum of every device's deterministic
      // transfer timeline (PCIe and D2D legs both count).
      cancel_scope.emplace(budget, config.watchdog, config.cancel_token,
                           [&group] {
                             return group.modeled_transfer_seconds_now();
                           });
    }
  }

  SpectralResult result;
  result.n = w.rows;
  result.k = config.num_clusters;

  sparse::RowPartition part;
  result.clock.start(kStageEigensolver);
  {
    obs::ScopedSpan span(kStageEigensolver, "stage");
    cancel::StageScope budget_scope(kStageEigensolver);
    obs::AttrSiteScope stage_site("stage.eigensolver");
    eigensolve_sharded(group, w, config, result, part);
    if (config.precision.auto_ladder &&
        result.refine_residual > config.precision.refine_residual_limit) {
      // Auto-precision rung (mirrors core/spectral.cpp): the narrow solve's
      // fp64 refinement residual stalled above the limit, so abandon its
      // outputs and re-run the stage with every rung forced to fp64.
      detail::note_degradation(
          result, kStageEigensolver, "precision-fallback",
          "fp64 refinement residual " +
              std::to_string(result.refine_residual) + " above limit " +
              std::to_string(config.precision.refine_residual_limit) +
              "; re-running the eigensolve at fp64");
      result.eigenvalues.clear();
      result.embedding.clear();
      result.eig_converged = false;
      result.eig_stats = {};
      result.spmv_seconds = 0;
      result.checkpoint.reset();
      result.warm_started = false;
      result.precision_used = {};
      result.refine_residual = 0;
      SpectralConfig fb_cfg = config;
      fb_cfg.precision = config.precision.fp64_fallback();
      obs::AttrSiteScope rung_site("fallback.precision_fp64");
      eigensolve_sharded(group, w, fb_cfg, result, part);
    }
  }
  result.clock.stop();

  result.clock.start(kStageKmeans);
  {
    obs::ScopedSpan span(kStageKmeans, "stage");
    cancel::StageScope budget_scope(kStageKmeans);
    obs::AttrSiteScope stage_site("stage.kmeans");
    kmeans_stage_sharded(group, part, config, result);
  }
  result.clock.stop();

  if (cancel::Governor& gov = cancel::current_governor(); gov.armed()) {
    result.budget = gov.report();
  }
  result.device_counters =
      device::counters_delta(group.rollup_counters(), counters_before);
  return result;
}

}  // namespace fastsc::core
