// Multi-device spectral clustering: the pipeline of core/spectral.h driven
// over a DeviceGroup with the 1-D row-sharded operator of sparse/shard.h.
//
// Stage mapping (the multi-GPU design of Sgherzi et al., arXiv:2201.07498):
//
//   * normalization (Algorithm 2) runs on the root device, which then
//     distributes the CSR row blocks — one H2D upload per device;
//   * every reverse-communication SpMV is a sharded wave: own-segment
//     upload, peer halo exchange on the modeled D2D link, interior rows
//     overlapping the exchange, frontier rows behind the scatter;
//   * the CGS2 reorthogonalization is metered as per-device partial GEMVs
//     over the local rows plus a coefficient allreduce ("d2d.allreduce");
//     the arithmetic itself stays in the host solver, bitwise identical to
//     the single-device run;
//   * k-means keeps the points (embedding rows) sharded in place: centroids
//     broadcast root -> peers each sweep ("d2d.centroid_bcast"), every
//     device reduces fixed 256-point blocks to partial sums, and the blocks
//     fold on the root in ascending global order ("d2d.centroid_reduce") —
//     the fixed fold order that makes labels byte-identical across device
//     counts (DESIGN.md §12).
//
// Entered through SpectralConfig::num_devices > 1 (core/spectral.cpp); the
// direct entry point here lets tests and benches own the DeviceGroup.
#pragma once

#include "core/spectral.h"
#include "device/device_group.h"

namespace fastsc::core {

/// Cluster the graph `w` across all devices of `group` (Steps 2-4).  The
/// result is byte-identical in labels for any group size, and identical to
/// a single-device group run; counters/attribution land on the group's
/// per-device contexts with SpectralResult::device_counters holding the
/// group rollup delta.
[[nodiscard]] SpectralResult spectral_cluster_graph_sharded(
    const sparse::Coo& w, const SpectralConfig& config,
    device::DeviceGroup& group);

}  // namespace fastsc::core
