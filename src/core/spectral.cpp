#include "core/spectral.h"

#include <algorithm>
#include <cmath>

#include "baseline/matlab_like.h"
#include "baseline/python_like.h"
#include "common/error.h"
#include "common/log.h"
#include "common/validation.h"
#include "common/timer.h"
#include "device/executor.h"
#include "graph/build.h"
#include "graph/components.h"
#include "graph/laplacian.h"
#include "lanczos/rci.h"
#include "obs/trace.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

namespace fastsc::core {

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kDevice: return "CUDA";         // paper's column name
    case Backend::kMatlabLike: return "Matlab";
    case Backend::kPythonLike: return "Python";
  }
  return "?";
}

namespace {

/// Build the (n x k) spectral embedding from the eigenvectors of the
/// symmetric operator S = D^-1/2 W D^-1/2 (row-major k x n input).
///
/// The paper's Step 3 asks for eigenvectors of D^-1 W; those are
/// v_rw = D^-1/2 u_sym, so each vertex row is scaled by 1/sqrt(d_j) and the
/// resulting eigenvectors are renormalized to unit length before k-means
/// (paper Step 4 clusters the rows of this matrix).
std::vector<real> to_embedding(const std::vector<real>& vectors,
                               const std::vector<real>& inv_sqrt_degree,
                               index_t k, index_t n) {
  std::vector<real> emb(static_cast<usize>(n) * static_cast<usize>(k));
  for (index_t i = 0; i < k; ++i) {
    real norm2 = 0;
    for (index_t j = 0; j < n; ++j) {
      const real v = vectors[static_cast<usize>(i * n + j)] *
                     inv_sqrt_degree[static_cast<usize>(j)];
      emb[static_cast<usize>(j * k + i)] = v;
      norm2 += v * v;
    }
    if (norm2 > 0) {
      const real inv = 1.0 / std::sqrt(norm2);
      for (index_t j = 0; j < n; ++j) {
        emb[static_cast<usize>(j * k + i)] *= inv;
      }
    }
  }
  return emb;
}

lanczos::LanczosConfig eig_config(const SpectralConfig& cfg, index_t n) {
  lanczos::LanczosConfig ec;
  ec.n = n;
  ec.nev = cfg.num_clusters;
  ec.ncv = cfg.ncv;
  ec.tol = cfg.eig_tol;
  ec.max_restarts = cfg.max_restarts;
  ec.which = cfg.which;
  ec.seed = cfg.seed;
  ec.dense_tier = cfg.backend == Backend::kPythonLike
                      ? lanczos::DenseTier::kNaive
                      : lanczos::DenseTier::kBlocked;
  return ec;
}

/// One overlapped SpMV wave on a {transfer, compute} stream pair.
///
/// The matrix is pre-split into column blocks; block b's kernel reads only
/// x[col_start[b], col_start[b+1]), so the transfer stream stages tile b+1
/// H2D while the compute stream multiplies block b (partial products
/// accumulate into y with beta = 1).  The final block is row-tiled: tile
/// t's rows are final after its partial product, so its D2H starts on the
/// transfer stream while later tiles still multiply.  Events order each
/// compute node after its x tile and each D2H after its y tile; everything
/// else rides the streams' FIFO order.
void pipelined_matvec(device::DeviceContext& ctx,
                      device::PipelineExecutor& exec,
                      const sparse::DeviceCsrColBlocks& a, const real* x,
                      device::DeviceBuffer<real>& dev_x,
                      device::DeviceBuffer<real>& dev_y,
                      std::vector<real>& host_y, index_t row_tiles) {
  using Exec = device::PipelineExecutor;
  exec.reset();
  const index_t n = a.rows;
  const usize nb = a.block_count();
  real* xp = dev_x.data();
  real* yp = dev_y.data();

  std::vector<Exec::NodeId> h2d(nb);
  for (usize b = 0; b < nb; ++b) {
    const index_t c0 = a.col_start[b];
    const index_t c1 = a.col_start[b + 1];
    h2d[b] = exec.add(Exec::kTransferStream, "h2d-x" + std::to_string(b),
                      [&ctx, xp, x, c0, c1] {
                        device::copy_h2d(ctx, xp + c0, x + c0,
                                         static_cast<usize>(c1 - c0));
                      });
  }
  for (usize b = 0; b + 1 < nb; ++b) {
    const sparse::DeviceCsr& blk = a.blocks[b];
    const real beta = b == 0 ? 0.0 : 1.0;
    exec.add(
        Exec::kComputeStream, "csrmv-b" + std::to_string(b),
        [&ctx, &blk, xp, yp, n, beta] {
          sparse::device_csrmv_range(ctx, blk, xp, yp, 0, n, 1.0, beta);
        },
        {h2d[b]});
  }
  const sparse::DeviceCsr& last = a.blocks[nb - 1];
  const real last_beta = nb == 1 ? 0.0 : 1.0;
  index_t tiles = row_tiles < 1 ? 1 : row_tiles;
  if (tiles > n) tiles = n;
  real* hy = host_y.data();
  for (index_t t = 0; t < tiles; ++t) {
    const index_t r0 = (n * t) / tiles;
    const index_t r1 = (n * (t + 1)) / tiles;
    const Exec::NodeId compute = exec.add(
        Exec::kComputeStream, "csrmv-tail" + std::to_string(t),
        [&ctx, &last, xp, yp, r0, r1, last_beta] {
          sparse::device_csrmv_range(ctx, last, xp, yp, r0, r1, 1.0,
                                     last_beta);
        },
        {h2d[nb - 1]});
    exec.add(Exec::kTransferStream, "d2h-y" + std::to_string(t),
             [&ctx, hy, yp, r0, r1] {
               device::copy_d2h(ctx, hy + r0, yp + r0,
                                static_cast<usize>(r1 - r0));
             },
             {compute});
  }
  exec.run();
}

/// Device eigensolver stage: Algorithm 3.  The COO similarity matrix is
/// already device-resident; normalize (Algorithm 2), then run the reverse
/// communication loop with device csrmv, staging the iteration vectors over
/// the link each step — double-buffered through the pipeline executor when
/// cfg.async_pipeline is set.
void eigensolve_device(device::DeviceContext& ctx, sparse::DeviceCoo& w,
                       const SpectralConfig& cfg, SpectralResult& result) {
  const index_t n = w.rows;
  device::DeviceBuffer<real> dev_isd;
  sparse::DeviceCsr p = graph::sym_normalized_device(ctx, w, dev_isd);

  // Optional format conversion for the SpMV loop (paper §IV.A: CSC/BSR are
  // also supported).  The conversion round-trips through the host, which is
  // metered like any other staging.
  sparse::DeviceBsr p_bsr;
  if (cfg.spmv_format == DeviceSpmvFormat::kBsr) {
    const sparse::Csr host_csr = p.to_host();
    p_bsr = sparse::DeviceBsr(
        ctx, sparse::csr_to_bsr(host_csr, cfg.bsr_block_size));
  }
  auto spmv = [&](const real* x, real* y) {
    if (cfg.spmv_format == DeviceSpmvFormat::kBsr) {
      sparse::device_bsrmv(ctx, p_bsr, x, y);
    } else {
      sparse::device_csrmv(ctx, p, x, y);
    }
  };

  // Overlapped path: repartition the device-resident normalized matrix into
  // column blocks with device kernels (no matrix PCIe traffic) and keep a
  // {transfer, compute} stream pair alive across iterations.
  const bool pipelined =
      cfg.async_pipeline && cfg.spmv_format == DeviceSpmvFormat::kCsr;
  sparse::DeviceCsrColBlocks p_blocks;
  std::unique_ptr<device::PipelineExecutor> exec;
  if (pipelined) {
    p_blocks = sparse::split_device_csr_col_blocks(ctx, p,
                                                   cfg.overlap_col_blocks);
    exec = std::make_unique<device::PipelineExecutor>(ctx);
  }

  lanczos::SymEigProb prob(eig_config(cfg, n));
  device::DeviceBuffer<real> dev_x(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_y(ctx, static_cast<usize>(n));
  std::vector<real> host_y(static_cast<usize>(n));

  while (!prob.converge()) {
    WallTimer t;
    {
      // One span per SpMV wave (H2D + csrmv + D2H); in the pipelined path
      // this is the wall window the virtual-timeline overlap hides inside.
      obs::ScopedSpan span("spmv", "wave");
      if (pipelined) {
        pipelined_matvec(ctx, *exec, p_blocks, prob.GetVector(), dev_x, dev_y,
                         host_y, cfg.overlap_row_tiles);
      } else {
        // H2D: the vector ARPACK hands out.
        dev_x.copy_from_host(
            std::span<const real>(prob.GetVector(), static_cast<usize>(n)));
        // Device SpMV (cusparseDcsrmv / cusparseDbsrmv).
        spmv(dev_x.data(), dev_y.data());
        // D2H: the product back to the RCI.
        dev_y.copy_to_host(std::span<real>(host_y));
      }
    }
    std::copy(host_y.begin(), host_y.end(), prob.PutVector());
    result.spmv_seconds += t.seconds();
    prob.TakeStep();
  }
  result.eigenvalues = prob.Eigenvalues();
  result.eig_converged = !prob.Failed();
  result.eig_stats = prob.Stats();
  const std::vector<real> vectors = prob.FindEigenvectors();
  const std::vector<real> isd = dev_isd.to_host();  // D2H, metered
  result.embedding = to_embedding(vectors, isd, cfg.num_clusters, n);
}

void eigensolve_host(const sparse::Coo& w, const SpectralConfig& cfg,
                     SpectralResult& result) {
  std::vector<real> isd;
  const sparse::Csr p = graph::sym_normalized_host(w, isd);
  const auto eig =
      cfg.backend == Backend::kMatlabLike
          ? baseline::eigensolve_matlab(p, cfg.num_clusters, cfg.which,
                                        cfg.eig_tol, cfg.ncv, cfg.max_restarts,
                                        cfg.seed)
          : baseline::eigensolve_python(p, cfg.num_clusters, cfg.which,
                                        cfg.eig_tol, cfg.ncv, cfg.max_restarts,
                                        cfg.seed);
  result.eigenvalues = eig.eigenvalues;
  result.eig_converged = eig.converged;
  result.eig_stats = eig.stats;
  result.spmv_seconds = eig.spmv_seconds;
  result.embedding =
      to_embedding(eig.eigenvectors, isd, cfg.num_clusters, w.rows);
}

void kmeans_stage(device::DeviceContext& ctx, const SpectralConfig& cfg,
                  SpectralResult& result) {
  const index_t n = result.n;
  const index_t k = cfg.num_clusters;
  if (cfg.row_normalize_embedding) {
    // Ng-Jordan-Weiss: project each embedded point onto the unit sphere.
    for (index_t i = 0; i < n; ++i) {
      real* row = result.embedding.data() + i * k;
      real norm = 0;
      for (index_t l = 0; l < k; ++l) norm += row[l] * row[l];
      if (norm > 0) {
        const real inv = 1.0 / std::sqrt(norm);
        for (index_t l = 0; l < k; ++l) row[l] *= inv;
      }
    }
  }
  switch (cfg.backend) {
    case Backend::kDevice: {
      kmeans::KmeansConfig kc;
      kc.k = k;
      kc.max_iters = cfg.kmeans_max_iters;
      kc.seeding = cfg.seeding;
      kc.seed = cfg.seed;
      kc.async_pipeline = cfg.async_pipeline;
      kc.record_inertia = cfg.record_kmeans_inertia;
      const auto res =
          kmeans::kmeans_device(ctx, result.embedding.data(), n, k, kc);
      result.labels = res.labels;
      result.kmeans_converged = res.converged;
      result.kmeans_iterations = res.iterations;
      result.kmeans_inertia_history = res.inertia_history;
      break;
    }
    case Backend::kMatlabLike: {
      const auto res = baseline::kmeans_matlab(result.embedding.data(), n, k,
                                               k, cfg.kmeans_max_iters,
                                               cfg.seed);
      result.labels = res.labels;
      result.kmeans_converged = res.converged;
      result.kmeans_iterations = res.iterations;
      result.kmeans_inertia_history = res.inertia_history;
      break;
    }
    case Backend::kPythonLike: {
      const auto res = baseline::kmeans_python(result.embedding.data(), n, k,
                                               k, cfg.kmeans_max_iters,
                                               cfg.seed);
      result.labels = res.labels;
      result.kmeans_converged = res.converged;
      result.kmeans_iterations = res.iterations;
      result.kmeans_inertia_history = res.inertia_history;
      break;
    }
  }
}

device::DeviceContext& resolve_ctx(device::DeviceContext* ctx) {
  return ctx != nullptr ? *ctx : device::default_device();
}

/// Difference of two counter snapshots (per-run accounting).
device::DeviceCounters counters_delta(const device::DeviceCounters& after,
                                      const device::DeviceCounters& before) {
  device::DeviceCounters d = after;
  d.bytes_h2d -= before.bytes_h2d;
  d.bytes_d2h -= before.bytes_d2h;
  d.transfers_h2d -= before.transfers_h2d;
  d.transfers_d2h -= before.transfers_d2h;
  d.measured_transfer_seconds -= before.measured_transfer_seconds;
  d.modeled_transfer_seconds -= before.modeled_transfer_seconds;
  d.kernel_seconds -= before.kernel_seconds;
  d.kernel_launches -= before.kernel_launches;
  d.overlapped_seconds -= before.overlapped_seconds;
  d.overlapped_h2d_seconds -= before.overlapped_h2d_seconds;
  d.overlapped_d2h_seconds -= before.overlapped_d2h_seconds;
  d.async_copies -= before.async_copies;
  d.async_kernel_launches -= before.async_kernel_launches;
  return d;
}

}  // namespace

SpectralResult spectral_cluster_points(const real* x, index_t n, index_t d,
                                       const graph::EdgeList& edges,
                                       const SpectralConfig& config,
                                       device::DeviceContext* ctx_in) {
  FASTSC_CHECK(n >= 2, "need at least two points");
  FASTSC_CHECK(config.num_clusters >= 1 && config.num_clusters <= n,
               "cluster count must be in [1, n]");
  check_finite({x, static_cast<usize>(n) * static_cast<usize>(d)},
               "input points");
  device::DeviceContext& ctx = resolve_ctx(ctx_in);
  const device::DeviceCounters counters_before = ctx.counters();
  const obs::TraceEnableScope trace_scope(config.trace);

  SpectralResult result;
  result.n = n;
  result.k = config.num_clusters;

  const graph::EdgeList sym = graph::symmetrized(edges);

  if (config.backend == Backend::kDevice) {
    result.clock.start(kStageSimilarity);
    sparse::DeviceCoo w;
    {
      obs::ScopedSpan span(kStageSimilarity, "stage");
      if (config.similarity_chunk_edges > 0) {
        // Out-of-core Algorithm 1: the edge list streams through the device.
        const sparse::Coo host_w = graph::build_similarity_device_chunked(
            ctx, x, n, d, sym, config.similarity,
            config.similarity_chunk_edges);
        w = sparse::DeviceCoo(ctx, host_w);
      } else {
        w = graph::build_similarity_device(ctx, x, n, d, sym,
                                           config.similarity);
      }
    }
    result.clock.stop();

    result.clock.start(kStageEigensolver);
    {
      obs::ScopedSpan span(kStageEigensolver, "stage");
      eigensolve_device(ctx, w, config, result);
    }
    result.clock.stop();
  } else {
    result.clock.start(kStageSimilarity);
    sparse::Coo w;
    {
      obs::ScopedSpan span(kStageSimilarity, "stage");
      w = baseline::similarity_loop(x, n, d, sym, config.similarity);
    }
    result.clock.stop();

    result.clock.start(kStageEigensolver);
    {
      obs::ScopedSpan span(kStageEigensolver, "stage");
      eigensolve_host(w, config, result);
    }
    result.clock.stop();
  }

  result.clock.start(kStageKmeans);
  {
    obs::ScopedSpan span(kStageKmeans, "stage");
    kmeans_stage(ctx, config, result);
  }
  result.clock.stop();

  result.device_counters = counters_delta(ctx.counters(), counters_before);
  return result;
}

SpectralResult spectral_cluster_graph(const sparse::Coo& w,
                                      const SpectralConfig& config,
                                      device::DeviceContext* ctx_in) {
  FASTSC_CHECK(w.rows == w.cols, "graph matrix must be square");
  FASTSC_CHECK(config.num_clusters >= 1 && config.num_clusters <= w.rows,
               "cluster count must be in [1, n]");
  check_finite(w.values, "similarity matrix values");
  {
    // A disconnected graph makes the eigenvalue 1 of D^-1 W degenerate
    // (one copy per component), which a Krylov iteration from a single
    // start vector resolves slowly and unreliably.  Warn so callers can
    // split components (graph::largest_component) or reconnect weakly.
    const graph::ComponentInfo info = graph::connected_components(w);
    if (info.count > 1) {
      FASTSC_LOG_WARN("input graph has "
                      << info.count
                      << " connected components; spectral clustering is "
                         "only well-posed per component — consider "
                         "graph::largest_component or a connected "
                         "similarity graph");
    }
  }
  device::DeviceContext& ctx = resolve_ctx(ctx_in);
  const device::DeviceCounters counters_before = ctx.counters();
  const obs::TraceEnableScope trace_scope(config.trace);

  SpectralResult result;
  result.n = w.rows;
  result.k = config.num_clusters;

  result.clock.start(kStageEigensolver);
  {
    obs::ScopedSpan span(kStageEigensolver, "stage");
    if (config.backend == Backend::kDevice) {
      // Transfer the graph to the device (part of the eigensolver stage cost,
      // matching the paper's accounting for the graph datasets).
      sparse::DeviceCoo dev_w(ctx, w);
      eigensolve_device(ctx, dev_w, config, result);
    } else {
      eigensolve_host(w, config, result);
    }
  }
  result.clock.stop();

  result.clock.start(kStageKmeans);
  {
    obs::ScopedSpan span(kStageKmeans, "stage");
    kmeans_stage(ctx, config, result);
  }
  result.clock.stop();

  result.device_counters = counters_delta(ctx.counters(), counters_before);
  return result;
}

}  // namespace fastsc::core
