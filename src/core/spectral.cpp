#include "core/spectral.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <optional>

#include "baseline/matlab_like.h"
#include "baseline/python_like.h"
#include "common/cancel.h"
#include "common/crc32c.h"
#include "common/error.h"
#include "common/log.h"
#include "common/validation.h"
#include "common/timer.h"
#include "core/pipeline_internal.h"
#include "core/sharded.h"
#include "device/device_group.h"
#include "device/executor.h"
#include "fault/fault.h"
#include "graph/build.h"
#include "graph/components.h"
#include "graph/laplacian.h"
#include "kmeans/lloyd.h"
#include "lanczos/dense_eig.h"
#include "lanczos/rci.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/sdc.h"
#include "obs/trace.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

namespace fastsc::core {

std::string backend_name(Backend b) {
  switch (b) {
    case Backend::kDevice: return "CUDA";         // paper's column name
    case Backend::kMatlabLike: return "Matlab";
    case Backend::kPythonLike: return "Python";
  }
  return "?";
}

namespace detail {

std::vector<real> to_embedding(const std::vector<real>& vectors,
                               const std::vector<real>& inv_sqrt_degree,
                               index_t k, index_t n) {
  std::vector<real> emb(static_cast<usize>(n) * static_cast<usize>(k));
  for (index_t i = 0; i < k; ++i) {
    real norm2 = 0;
    for (index_t j = 0; j < n; ++j) {
      const real v = vectors[static_cast<usize>(i * n + j)] *
                     inv_sqrt_degree[static_cast<usize>(j)];
      emb[static_cast<usize>(j * k + i)] = v;
      norm2 += v * v;
    }
    if (norm2 > 0) {
      const real inv = 1.0 / std::sqrt(norm2);
      for (index_t j = 0; j < n; ++j) {
        emb[static_cast<usize>(j * k + i)] *= inv;
      }
    }
  }
  return emb;
}

void note_degradation(SpectralResult& result, const char* stage,
                      const char* action, const std::string& reason) {
  result.degradation.degraded = true;
  result.degradation.events.push_back(DegradationEvent{stage, action, reason});
  obs::Counter& total = obs::metrics().counter("degrade.fallback");
  total.add();
  obs::metrics().counter(std::string("degrade.") + action).add();
  if (obs::trace_enabled()) {
    obs::trace().counter("degrade.fallback",
                         static_cast<double>(total.value()),
                         obs::wall_now_us());
  }
  FASTSC_LOG_WARN("degradation: stage '" << stage << "' -> " << action << " ("
                                         << reason << ")");
}

lanczos::LanczosConfig eig_config(const SpectralConfig& cfg, index_t n) {
  lanczos::LanczosConfig ec;
  ec.n = n;
  ec.nev = cfg.num_clusters;
  ec.ncv = cfg.ncv;
  ec.tol = cfg.eig_tol;
  ec.max_restarts = cfg.max_restarts;
  ec.which = cfg.which;
  ec.seed = cfg.seed;
  ec.dense_tier = cfg.backend == Backend::kPythonLike
                      ? lanczos::DenseTier::kNaive
                      : lanczos::DenseTier::kBlocked;
  return ec;
}

real refine_eigenpairs_fp64(const sparse::Coo& w,
                            const std::vector<real>& inv_sqrt_degree,
                            index_t rounds, std::vector<real>& eigenvalues,
                            std::vector<real>& vectors) {
  const auto n = static_cast<index_t>(inv_sqrt_degree.size());
  if (n <= 0 || vectors.empty() || rounds <= 0) return 0;
  const auto un = static_cast<usize>(n);
  const auto nv = static_cast<index_t>(vectors.size() / un);
  if (nv <= 0) return 0;
  if (eigenvalues.size() < static_cast<usize>(nv)) {
    eigenvalues.resize(static_cast<usize>(nv), 0);
  }
  const real* isd = inv_sqrt_degree.data();

  // y = S x with W applied entry-by-entry in COO storage order — the order
  // every caller shares, which keeps refinement bitwise identical across
  // device counts.
  std::vector<real> scratch(un);
  const auto apply = [&](const real* x, real* y) {
    for (usize i = 0; i < un; ++i) scratch[i] = isd[i] * x[i];
    std::fill(y, y + un, real{0});
    const usize nnz = w.values.size();
    for (usize e = 0; e < nnz; ++e) {
      y[static_cast<usize>(w.row_idx[e])] +=
          w.values[e] * scratch[static_cast<usize>(w.col_idx[e])];
    }
    for (usize i = 0; i < un; ++i) y[i] *= isd[i];
  };

  // dense_sym_eig ascends; emit refined pairs in the solver's order.
  const bool ascending =
      nv < 2 || eigenvalues.front() <= eigenvalues[static_cast<usize>(nv) - 1];
  const auto unv = static_cast<usize>(nv);
  std::vector<real> av(unv * un);
  std::vector<real> h(unv * unv);
  std::vector<real> rotated(unv * un);
  real residual = 0;
  for (index_t round = 0; round < rounds; ++round) {
    // CGS2 orthonormalization of the Ritz vectors ("twice is enough").
    for (index_t i = 0; i < nv; ++i) {
      real* vi = vectors.data() + static_cast<usize>(i) * un;
      for (int pass = 0; pass < 2; ++pass) {
        for (index_t j = 0; j < i; ++j) {
          const real* vj = vectors.data() + static_cast<usize>(j) * un;
          real c = 0;
          for (usize l = 0; l < un; ++l) c += vj[l] * vi[l];
          for (usize l = 0; l < un; ++l) vi[l] -= c * vj[l];
        }
      }
      real norm2 = 0;
      for (usize l = 0; l < un; ++l) norm2 += vi[l] * vi[l];
      if (norm2 > 0) {
        const real inv = real{1} / std::sqrt(norm2);
        for (usize l = 0; l < un; ++l) vi[l] *= inv;
      }
    }
    // Project: H = V S V^T (symmetrized against fp64 roundoff).
    for (index_t i = 0; i < nv; ++i) {
      apply(vectors.data() + static_cast<usize>(i) * un,
            av.data() + static_cast<usize>(i) * un);
    }
    for (index_t i = 0; i < nv; ++i) {
      const real* vi = vectors.data() + static_cast<usize>(i) * un;
      for (index_t j = 0; j < nv; ++j) {
        const real* aj = av.data() + static_cast<usize>(j) * un;
        real acc = 0;
        for (usize l = 0; l < un; ++l) acc += vi[l] * aj[l];
        h[static_cast<usize>(i) * unv + static_cast<usize>(j)] = acc;
      }
    }
    for (index_t i = 0; i < nv; ++i) {
      for (index_t j = i + 1; j < nv; ++j) {
        const real s = (h[static_cast<usize>(i) * unv + static_cast<usize>(j)] +
                        h[static_cast<usize>(j) * unv + static_cast<usize>(i)]) /
                       2;
        h[static_cast<usize>(i) * unv + static_cast<usize>(j)] = s;
        h[static_cast<usize>(j) * unv + static_cast<usize>(i)] = s;
      }
    }
    const lanczos::DenseEigResult small = lanczos::dense_sym_eig(h.data(), nv);
    // Rotate V <- U^T V, pairing column `src` of U with refined value `src`.
    for (index_t out = 0; out < nv; ++out) {
      const index_t src = ascending ? out : nv - 1 - out;
      eigenvalues[static_cast<usize>(out)] =
          small.eigenvalues[static_cast<usize>(src)];
      real* dst = rotated.data() + static_cast<usize>(out) * un;
      std::fill(dst, dst + un, real{0});
      for (index_t j = 0; j < nv; ++j) {
        const real coef = small.eigenvectors[static_cast<usize>(j) * unv +
                                             static_cast<usize>(src)];
        const real* vj = vectors.data() + static_cast<usize>(j) * un;
        for (usize l = 0; l < un; ++l) dst[l] += coef * vj[l];
      }
    }
    vectors.swap(rotated);
    residual = 0;
    for (index_t i = 0; i < nv; ++i) {
      const real* vi = vectors.data() + static_cast<usize>(i) * un;
      apply(vi, av.data());
      const real lambda = eigenvalues[static_cast<usize>(i)];
      real r2 = 0;
      for (usize l = 0; l < un; ++l) {
        const real r = av[l] - lambda * vi[l];
        r2 += r * r;
      }
      residual = std::max(residual, std::sqrt(r2));
    }
  }
  return residual;
}

}  // namespace detail

namespace {

using detail::eig_config;
using detail::note_degradation;
using detail::refine_eigenpairs_fp64;
using detail::to_embedding;

/// Clear the eigensolver outputs of an abandoned attempt before the next
/// ladder rung re-runs the stage (degradation events are kept).
void reset_eig_result(SpectralResult& result) {
  result.eigenvalues.clear();
  result.embedding.clear();
  result.eig_converged = false;
  result.eig_stats = {};
  result.spmv_seconds = 0;
  result.checkpoint.reset();
  result.warm_started = false;
  result.precision_used = {};
  result.refine_residual = 0;
}

/// One overlapped SpMV wave on a {transfer, compute} stream pair.
///
/// The matrix is pre-split into column blocks; block b's kernel reads only
/// x[col_start[b], col_start[b+1]), so the transfer stream stages tile b+1
/// H2D while the compute stream multiplies block b (partial products
/// accumulate into y with beta = 1).  The final block is row-tiled: tile
/// t's rows are final after its partial product, so its D2H starts on the
/// transfer stream while later tiles still multiply.  Events order each
/// compute node after its x tile and each D2H after its y tile; everything
/// else rides the streams' FIFO order.
void pipelined_matvec(device::DeviceContext& ctx,
                      device::PipelineExecutor& exec,
                      const sparse::DeviceCsrColBlocks& a, const real* x,
                      device::DeviceBuffer<real>& dev_x,
                      device::DeviceBuffer<real>& dev_y,
                      std::vector<real>& host_y, index_t row_tiles,
                      bool balanced) {
  using Exec = device::PipelineExecutor;
  exec.reset();
  const index_t n = a.rows;
  const usize nb = a.block_count();
  real* xp = dev_x.data();
  real* yp = dev_y.data();

  std::vector<Exec::NodeId> h2d(nb);
  for (usize b = 0; b < nb; ++b) {
    const index_t c0 = a.col_start[b];
    const index_t c1 = a.col_start[b + 1];
    h2d[b] = exec.add(Exec::kTransferStream, "h2d-x" + std::to_string(b),
                      [&ctx, xp, x, c0, c1] {
                        // Basis staging lands in its own attribution bucket
                        // so the precision bench can ratio link bytes across
                        // rungs (fp64 supplies the denominator).
                        obs::AttrSiteScope stage_site("spmv.stage");
                        device::copy_h2d(ctx, xp + c0, x + c0,
                                         static_cast<usize>(c1 - c0));
                      });
  }
  for (usize b = 0; b + 1 < nb; ++b) {
    const sparse::DeviceCsr& blk = a.blocks[b];
    const real beta = b == 0 ? 0.0 : 1.0;
    exec.add(
        Exec::kComputeStream, "csrmv-b" + std::to_string(b),
        [&ctx, &blk, xp, yp, n, beta, balanced] {
          if (balanced) {
            sparse::device_csrmv_range_balanced(ctx, blk, xp, yp, 0, n, 1.0,
                                                beta);
          } else {
            sparse::device_csrmv_range(ctx, blk, xp, yp, 0, n, 1.0, beta);
          }
        },
        {h2d[b]});
  }
  const sparse::DeviceCsr& last = a.blocks[nb - 1];
  const real last_beta = nb == 1 ? 0.0 : 1.0;
  index_t tiles = row_tiles < 1 ? 1 : row_tiles;
  if (tiles > n) tiles = n;
  real* hy = host_y.data();
  for (index_t t = 0; t < tiles; ++t) {
    const index_t r0 = (n * t) / tiles;
    const index_t r1 = (n * (t + 1)) / tiles;
    const Exec::NodeId compute = exec.add(
        Exec::kComputeStream, "csrmv-tail" + std::to_string(t),
        [&ctx, &last, xp, yp, r0, r1, last_beta, balanced] {
          if (balanced) {
            sparse::device_csrmv_range_balanced(ctx, last, xp, yp, r0, r1, 1.0,
                                                last_beta);
          } else {
            sparse::device_csrmv_range(ctx, last, xp, yp, r0, r1, 1.0,
                                       last_beta);
          }
        },
        {h2d[nb - 1]});
    exec.add(Exec::kTransferStream, "d2h-y" + std::to_string(t),
             [&ctx, hy, yp, r0, r1] {
               obs::AttrSiteScope stage_site("spmv.stage");
               device::copy_d2h(ctx, hy + r0, yp + r0,
                                static_cast<usize>(r1 - r0));
             },
             {compute});
  }
  exec.run();
}

/// Device eigensolver stage: Algorithm 3.  The COO similarity matrix is
/// already device-resident; normalize (Algorithm 2), then run the reverse
/// communication loop with device csrmv, staging the iteration vectors over
/// the link each step — double-buffered through the pipeline executor when
/// cfg.async_pipeline is set.
void eigensolve_device(device::DeviceContext& ctx, sparse::DeviceCoo& w,
                       const SpectralConfig& cfg, SpectralResult& result,
                       const std::vector<real>* degrees = nullptr) {
  const index_t n = w.rows;
  const PrecisionPolicy& pp = cfg.precision;
  const Precision spmv_p = pp.resolve(PrecisionStage::kSpmv);
  const Precision basis_p = pp.resolve(PrecisionStage::kBasis);
  const bool fused = pp.fused();
  const bool eig_narrow =
      fused || spmv_p != Precision::kFp64 || basis_p != Precision::kFp64;
  const bool do_refine = eig_narrow && pp.refine_rounds > 0;

  // The refinement operator must be the exact fp64 similarity matrix in its
  // original entry order (refine_eigenpairs_fp64's cross-device-count
  // contract); snapshot before Algorithm 2 sorts the device COO.
  sparse::Coo refine_w;
  if (do_refine) refine_w = w.to_host();  // D2H, metered

  device::DeviceBuffer<real> dev_isd;
  graph::NormalizeOptions nopts;
  nopts.fuse_scale = fused;
  nopts.degrees = degrees;
  sparse::DeviceCsr p = graph::sym_normalized_device(ctx, w, dev_isd, nopts);
  if (spmv_p != Precision::kFp64) sparse::demote_csr_values(ctx, p, spmv_p);

  // ABFT checksum vector (DESIGN.md §14): Huang-Abraham column sums of the
  // *effective* operator, taken from the same (possibly demoted) stored
  // values the kernels read.  With the fused D^-1/2 epilogue the effective
  // entry is s_r * w_rj * s_j, so c_j = s_j * sum_r s_r * w_rj.  Every SpMV
  // wave then verifies sum(y) == <c, x> up to accumulation roundoff.  Built
  // once per solve on the device, downloaded once (n doubles).
  const bool abft_spmv = cfg.sdc.enabled && cfg.sdc.abft_spmv;
  const usize nnz = p.col_idx.size();
  std::vector<real> abft_colsum;
  if (abft_spmv) {
    device::DeviceBuffer<real> dev_colsum(ctx, static_cast<usize>(n));
    obs::AttrSiteScope abft_site("sdc.checksum");
    const sparse::CsrValuesView vals = p.values_view();
    const index_t* rp = p.row_ptr.data();
    const index_t* ci = p.col_idx.data();
    const real* sd = fused ? dev_isd.data() : nullptr;
    real* c = dev_colsum.data();
    const index_t rows = p.rows;
    device::launch(
        ctx, 1,
        [=](index_t) {
          for (index_t j = 0; j < rows; ++j) c[j] = 0;
          for (index_t r = 0; r < rows; ++r) {
            const real sr = sd != nullptr ? sd[r] : real{1};
            for (index_t e = rp[r]; e < rp[r + 1]; ++e) {
              c[ci[e]] += sr * vals[e];
            }
          }
          if (sd != nullptr) {
            for (index_t j = 0; j < rows; ++j) c[j] *= sd[j];
          }
        },
        device::tagged("sdc.checksum", 2.0 * static_cast<double>(nnz),
                       12.0 * static_cast<double>(nnz),
                       8.0 * static_cast<double>(n)));
    abft_colsum = dev_colsum.to_host();  // D2H, metered
  }
  // Corruption-at-rest injection point for the matrix payload: *after* the
  // checksum build, so the colsums describe the values as computed and a
  // flipped stored bit is a detectable divergence.  (A flip before the
  // build would poison the checksum itself — a different threat model the
  // at-rest CRC frames cover.)
  switch (p.value_precision) {
    case Precision::kFp64:
      fault::corrupt_scalars("bitflip.csr.values", p.values.data(), nnz);
      break;
    case Precision::kFp32:
      fault::corrupt_scalars_f32("bitflip.csr.values", p.values_f32.data(),
                                 nnz);
      break;
    case Precision::kBf16:
      fault::corrupt_scalars_b16("bitflip.csr.values", p.values_b16.data(),
                                 nnz);
      break;
  }

  // Optional format conversion for the SpMV loop (paper §IV.A: CSC/BSR are
  // also supported).  The conversion round-trips through the host, which is
  // metered like any other staging.  BSR is an fp64-only path.
  const bool use_bsr =
      cfg.spmv_format == DeviceSpmvFormat::kBsr && !eig_narrow;
  if (cfg.spmv_format == DeviceSpmvFormat::kBsr && eig_narrow) {
    FASTSC_LOG_WARN("BSR SpMV is fp64-only; the mixed-precision run takes "
                    "the CSR path");
  }
  sparse::DeviceBsr p_bsr;
  if (use_bsr) {
    const sparse::Csr host_csr = p.to_host();
    p_bsr = sparse::DeviceBsr(
        ctx, sparse::csr_to_bsr(host_csr, cfg.bsr_block_size));
  }
  auto spmv = [&](const real* x, real* y) {
    if (use_bsr) {
      sparse::device_bsrmv(ctx, p_bsr, x, y);
    } else if (cfg.balanced_spmv) {
      sparse::device_csrmv_balanced(ctx, p, x, y);
    } else {
      sparse::device_csrmv(ctx, p, x, y);
    }
  };

  // Overlapped path: repartition the device-resident normalized matrix into
  // column blocks with device kernels (no matrix PCIe traffic) and keep a
  // {transfer, compute} stream pair alive across iterations.  Narrow rungs
  // and the fused epilogue run the synchronous staged wave instead (the
  // column-block splitter is fp64-only).
  const bool pipelined = cfg.async_pipeline &&
                         cfg.spmv_format == DeviceSpmvFormat::kCsr &&
                         !eig_narrow;
  sparse::DeviceCsrColBlocks p_blocks;
  std::unique_ptr<device::PipelineExecutor> exec;
  if (pipelined) {
    p_blocks = sparse::split_device_csr_col_blocks(ctx, p,
                                                   cfg.overlap_col_blocks);
    exec = std::make_unique<device::PipelineExecutor>(ctx);
  }

  lanczos::LanczosConfig ec = eig_config(cfg, n);
  if (spmv_p != Precision::kFp64 || basis_p != Precision::kFp64) {
    // A narrow rung perturbs the operator at its unit roundoff; asking the
    // solver for residuals below that only burns restarts.  The fp64
    // refinement at solve end recovers the extra digits.
    const bool any_bf16 =
        spmv_p == Precision::kBf16 || basis_p == Precision::kBf16;
    ec.tol = std::max(ec.tol, any_bf16 ? real{1e-3} : real{1e-6});
  }
  const DegradationPolicy& pol = cfg.degradation;
  ec.capture_checkpoints =
      (pol.enabled && pol.resume_failed_solve) || cfg.capture_checkpoint;
  lanczos::SymEigProb prob(ec);
  if (cfg.warm_start != nullptr) {
    // Warm-start re-solve (service delta-edge path): reuse the donor's kept
    // Ritz basis when it matches this run's solver shape; otherwise fall
    // back to a cold start rather than failing the run.
    const lanczos::LanczosCheckpoint& cp = *cfg.warm_start;
    const lanczos::LanczosConfig& sc = prob.Solver().config();
    if (cp.valid() && cp.n == sc.n && cp.nev == sc.nev && cp.ncv == sc.ncv &&
        cp.which == static_cast<int>(sc.which) && cp.j == cp.nkept &&
        cp.nkept >= 1) {
      prob.RestoreWarm(cp);
      result.warm_started = true;
    } else {
      FASTSC_LOG_WARN("warm-start checkpoint incompatible with this solve "
                      "(shape or phase mismatch); cold-starting");
    }
  }
  // Iteration-vector staging: fp64 buffers for the classic wave, or byte
  // buffers at the basis rung's width — the link then moves packed scalars
  // and the quantization point matches the sharded x replica exactly.
  const bool basis_narrow = basis_p != Precision::kFp64;
  const usize bw = bytes_per_scalar(basis_p);
  device::DeviceBuffer<real> dev_x;
  device::DeviceBuffer<real> dev_y;
  device::DeviceBuffer<unsigned char> x_stage;
  device::DeviceBuffer<unsigned char> y_stage;
  std::vector<unsigned char> stage_host;
  if (basis_narrow) {
    x_stage = device::DeviceBuffer<unsigned char>(ctx,
                                                  static_cast<usize>(n) * bw);
    y_stage = device::DeviceBuffer<unsigned char>(ctx,
                                                  static_cast<usize>(n) * bw);
    stage_host.resize(static_cast<usize>(n) * bw);
  } else {
    dev_x = device::DeviceBuffer<real>(ctx, static_cast<usize>(n));
    dev_y = device::DeviceBuffer<real>(ctx, static_cast<usize>(n));
  }
  std::vector<real> host_y(static_cast<usize>(n));

  // Per-wave SDC detectors (DESIGN.md §14).  The checksum is computed from
  // the quantized stored values, so the matrix side needs no rung term; only
  // the basis rung's quantization of the staged x/y adds eps_q * ||y||_1
  // slack.  The transfer CRC is an exact byte compare at every rung; the
  // pipelined path skips it (tile uploads interleave with compute), relying
  // on the per-wave checksum instead.
  const bool sentinels_on = cfg.sdc.enabled && cfg.sdc.sentinels;
  const bool transfer_crc =
      cfg.sdc.enabled && cfg.sdc.transfer_crc && !pipelined;
  const double tol_scale = static_cast<double>(cfg.sdc.tolerance_scale);
  const double eps64 = std::numeric_limits<double>::epsilon() / 2;
  const auto rung_eps = [](Precision pr) {
    return pr == Precision::kFp64   ? 0.0
           : pr == Precision::kFp32 ? 0x1p-24
                                    : 0x1p-8;
  };
  const double eps_q = rung_eps(basis_p);  // basis staging quantization
  const double eps_m = rung_eps(spmv_p);   // matrix storage quantization

  index_t resumes = 0;
  bool abandoned = false;
  for (;;) {
    try {
      while (!prob.converge()) {
        // One poll per reverse-communication wave; a deadline or cancellation
        // fired anywhere (including as a sticky stream error inside the wave)
        // unwinds to the anytime handler below.
        cancel::poll("lanczos.matvec");
        WallTimer t;
        const real* xwave = prob.GetVector();
        const usize un = static_cast<usize>(n);
        // Stage x to the device, inject the device-buffer bitflip site, and
        // (when enabled) seal the upload with a CRC frame: the device copy
        // is re-hashed by a device kernel and compared byte-for-byte against
        // the host source, so a flipped device bit is caught before any
        // kernel consumes it, at every rung.  A mismatch throws *transient*
        // and run_transfer_with_retry re-runs the idempotent upload.
        const auto upload_x = [&] {
          obs::AttrSiteScope stage_site("spmv.stage");
          if (basis_narrow) {
            pack_scalars(xwave, un, basis_p, stage_host.data());
            device::copy_h2d(ctx, x_stage.data(), stage_host.data(), un * bw);
          } else {
            dev_x.copy_from_host(std::span<const real>(xwave, un));
          }
        };
        const auto corrupt_device_x = [&] {
          if (!basis_narrow) {
            fault::corrupt_scalars("bitflip.device.buffer", dev_x.data(), un);
          } else if (basis_p == Precision::kFp32) {
            fault::corrupt_scalars_f32(
                "bitflip.device.buffer",
                reinterpret_cast<float*>(x_stage.data()), un);
          } else {
            fault::corrupt_scalars_b16(
                "bitflip.device.buffer",
                reinterpret_cast<std::uint16_t*>(x_stage.data()), un);
          }
        };
        const auto stage_x = [&] {
          if (!transfer_crc) {
            upload_x();
            corrupt_device_x();
            return;
          }
          device::run_transfer_with_retry(ctx, "sdc.h2d", [&] {
            upload_x();
            corrupt_device_x();
            const void* host_src =
                basis_narrow ? static_cast<const void*>(stage_host.data())
                             : static_cast<const void*>(xwave);
            const void* dev_src =
                basis_narrow ? static_cast<const void*>(x_stage.data())
                             : static_cast<const void*>(dev_x.data());
            const usize bytes = un * (basis_narrow ? bw : sizeof(real));
            std::uint32_t dev_crc = 0;
            {
              obs::AttrSiteScope crc_site("sdc.crc");
              std::uint32_t* out = &dev_crc;
              device::launch(
                  ctx, 1, [=](index_t) { *out = crc32c(dev_src, bytes); },
                  device::tagged("sdc.crc",
                                 static_cast<double>(bytes) / 8.0,
                                 static_cast<double>(bytes), 4.0));
            }
            obs::sdc_note_check();
            ++result.integrity.checks;
            if (dev_crc != crc32c(host_src, bytes)) {
              obs::sdc_note_detected("device.buffer",
                                     "staged x CRC mismatch after H2D");
              ++result.integrity.detected;
              result.integrity.events.push_back(
                  "device.buffer: staged x CRC mismatch (re-uploading)");
              throw device::DataIntegrityError(
                  "staged x buffer CRC mismatch after H2D",
                  /*transient=*/true);
            }
          });
        };
        const auto run_wave = [&] {
          // One span per SpMV wave (H2D + csrmv + D2H); in the pipelined path
          // this is the wall window the virtual-timeline overlap hides inside.
          obs::ScopedSpan span("spmv", "wave");
          if (pipelined) {
            pipelined_matvec(ctx, *exec, p_blocks, xwave, dev_x, dev_y,
                             host_y, cfg.overlap_row_tiles,
                             cfg.balanced_spmv);
          } else if (eig_narrow) {
            // Mixed-precision wave: stage x/y at the basis rung's width and
            // run the view-based csrmv with the optional D^-1/2 epilogue.
            const real* sc = fused ? dev_isd.data() : nullptr;
            const ConstVecView xv =
                basis_narrow ? ConstVecView(x_stage.data(), basis_p)
                             : ConstVecView(dev_x.data());
            const VecView yv = basis_narrow ? VecView(y_stage.data(), basis_p)
                                            : VecView(dev_y.data());
            stage_x();
            // Always the row-serial kernel here: the merge-path variant's
            // carry-fixup rounds boundary rows differently per partition,
            // and the sharded path accumulates row-serially — cross-device
            // bitwise label equality at narrow rungs requires the same
            // entry order on one device.
            sparse::device_csrmv_mp(ctx, p, xv, yv, 1.0, 0.0, sc);
            {
              obs::AttrSiteScope stage_site("spmv.stage");
              if (basis_narrow) {
                device::copy_d2h(ctx, stage_host.data(), y_stage.data(),
                                 un * bw);
                unpack_scalars(stage_host.data(), un, basis_p, host_y.data());
              } else {
                dev_y.copy_to_host(std::span<real>(host_y));
              }
            }
          } else {
            stage_x();
            // Device SpMV (cusparseDcsrmv / cusparseDbsrmv).
            spmv(dev_x.data(), dev_y.data());
            {
              // D2H: the product back to the RCI.
              obs::AttrSiteScope stage_site("spmv.stage");
              dev_y.copy_to_host(std::span<real>(host_y));
            }
          }
        };
        // ABFT verify loop: one in-place block recompute on a mismatch (a
        // one-shot upset is gone the second time), then escalate as a
        // permanent DataIntegrityError into the degradation ladder.
        for (int attempt = 0;; ++attempt) {
          run_wave();
          // In-flight basis corruption: the product on its way back into the
          // host-side recurrence.
          fault::corrupt_scalars("bitflip.basis.column", host_y.data(), un);
          if (!abft_spmv) break;
          obs::sdc_note_check();
          ++result.integrity.checks;
          double cx = 0;
          double ysum = 0;
          double ynorm1 = 0;
          for (usize i = 0; i < un; ++i) {
            cx += static_cast<double>(abft_colsum[i]) *
                  quantize(xwave[i], basis_p);
            ysum += host_y[i];
            ynorm1 += std::abs(static_cast<double>(host_y[i]));
          }
          const double tol =
              tol_scale *
              (eps64 * 64 *
                   std::sqrt(static_cast<double>(nnz) + static_cast<double>(un)) *
                   (std::abs(cx) + ynorm1) +
               2 * eps_q * ynorm1 + 1e-300);
          if (std::abs(ysum - cx) <= tol) break;
          obs::sdc_note_detected(
              "spmv.wave", "|sum(y) - <c,x>| = " +
                               std::to_string(std::abs(ysum - cx)) +
                               " > tol " + std::to_string(tol));
          ++result.integrity.detected;
          result.integrity.events.push_back(
              "spmv.wave: ABFT checksum mismatch");
          if (attempt == 0) {
            obs::sdc_note_recomputed("spmv.wave");
            ++result.integrity.recomputed;
            continue;
          }
          throw device::DataIntegrityError(
              "SpMV ABFT checksum mismatch persisted after block recompute");
        }
        // Invariant sentinels: ||P||_2 <= 1 for the normalized operator, so
        // ||y|| <= ||x|| and |x^T y| <= ||x||^2 up to the rungs' roundoff.
        // No checksum storage — these catch corruption classes the sum
        // identity can miss (a flipped structure index, a torn recurrence).
        if (sentinels_on) {
          obs::sdc_note_check();
          ++result.integrity.checks;
          double x2 = 0;
          double y2 = 0;
          double xy = 0;
          for (usize i = 0; i < un; ++i) {
            x2 += xwave[i] * xwave[i];
            y2 += static_cast<double>(host_y[i]) * host_y[i];
            xy += xwave[i] * host_y[i];
          }
          const double one = (1 + tol_scale * (1e-6 + 8 * (eps_q + eps_m)));
          std::string why;
          if (!(y2 <= one * one * x2)) {
            why = "||y|| exceeds the operator norm bound";
          } else if (!(std::abs(xy) <= one * x2)) {
            why = "Rayleigh quotient outside the operator's numerical range";
          } else {
            const real drift = prob.Solver().orthogonality_drift();
            if (!(drift <= tol_scale * (1e-8 + 64 * eps_q))) {
              why = "CGS2 basis orthogonality drift " + std::to_string(drift);
            }
          }
          if (!why.empty()) {
            obs::sdc_note_detected("lanczos.sentinel", why);
            ++result.integrity.detected;
            result.integrity.events.push_back("lanczos.sentinel: " + why);
            throw device::DataIntegrityError("RCI sentinel tripped: " + why);
          }
        }
        std::copy(host_y.begin(), host_y.end(), prob.PutVector());
        result.spmv_seconds += t.seconds();
        prob.TakeStep();
      }
    } catch (const cancel::CancelledError& e) {
      cancel::Governor& gov = cancel::current_governor();
      if (!gov.anytime_allowed() || !prob.CanAbandon()) throw;
      // Anytime cut: freeze the iteration, keep the best partial Ritz pairs,
      // and stop enforcement so the rest of the pipeline (k-means on the
      // partial embedding) completes unimpeded.
      prob.Abandon();
      gov.begin_wrapup(e.site().empty() ? e.what() : e.site());
      abandoned = true;
    }
    if (abandoned || !prob.Failed() || !ec.capture_checkpoints ||
        resumes >= pol.max_solver_resumes ||
        !prob.Solver().has_checkpoint()) {
      break;
    }
    // Rewind to the last restart boundary and continue with an extended
    // budget instead of restarting the whole Krylov buildup from scratch.
    ++resumes;
    note_degradation(result, kStageEigensolver, "solver-resume",
                     "restart budget exhausted; resuming from checkpoint at "
                     "restart " +
                         std::to_string(
                             prob.Solver().last_checkpoint().restart_count));
    const index_t extended =
        prob.Solver().config().max_restarts + ec.max_restarts;
    prob.Restore(prob.Solver().last_checkpoint());
    prob.Solver().set_max_restarts(extended);
  }
  result.eigenvalues = prob.Eigenvalues();
  result.eig_converged = !prob.Failed();
  result.eig_stats = prob.Stats();
  if (sentinels_on && result.eig_converged) {
    // Spectral-range sanity: every Ritz value of D^-1/2 W D^-1/2 lies in
    // [-1, 1] up to the rungs' operator perturbation; anything outside (or
    // non-finite) means the tridiagonal recurrence itself was corrupted.
    obs::sdc_note_check();
    ++result.integrity.checks;
    const double slack = tol_scale * (1e-6 + 64 * (eps_q + eps_m));
    for (const real ev : result.eigenvalues) {
      if (!(std::abs(ev) <= 1 + slack)) {
        const std::string why =
            "Ritz value " + std::to_string(ev) + " outside [-1, 1]";
        obs::sdc_note_detected("lanczos.sentinel", why);
        ++result.integrity.detected;
        result.integrity.events.push_back("lanczos.sentinel: " + why);
        throw device::DataIntegrityError("RCI sentinel tripped: " + why);
      }
    }
  }
  if (cfg.capture_checkpoint && prob.Solver().has_checkpoint()) {
    result.checkpoint = std::make_shared<lanczos::LanczosCheckpoint>(
        prob.Solver().last_checkpoint());
  }
  std::vector<real> vectors = prob.FindEigenvectors();
  const std::vector<real> isd = dev_isd.to_host();  // D2H, metered
  if (do_refine && !vectors.empty()) {
    // fp64 rung of the ladder: Rayleigh-Ritz against the exact operator
    // recovers the digits the narrow solve left on the table and yields the
    // residual the auto ladder gates on.
    result.refine_residual = refine_eigenpairs_fp64(
        refine_w, isd, pp.refine_rounds, result.eigenvalues, vectors);
  }
  result.embedding = to_embedding(vectors, isd, cfg.num_clusters, n);
  result.precision_used = pp;
}

void eigensolve_host(const sparse::Coo& w, const SpectralConfig& cfg,
                     SpectralResult& result);

/// Auto-precision rung (DESIGN.md §13): when the fp64 refinement residual of
/// a narrow solve exceeds the policy's limit, abandon its outputs and re-run
/// the eigensolve with every stage forced to fp64 — the same note_degradation
/// machinery as the PR 3 ladder, action "precision-fallback".
template <class DeviceW>
void precision_fallback_rerun(device::DeviceContext& ctx,
                              const SpectralConfig& cfg,
                              SpectralResult& result, DeviceW&& device_w,
                              const std::vector<real>* degrees) {
  const PrecisionPolicy& pp = cfg.precision;
  if (!pp.auto_ladder || result.refine_residual <= pp.refine_residual_limit) {
    return;
  }
  note_degradation(result, kStageEigensolver, "precision-fallback",
                   "fp64 refinement residual " +
                       std::to_string(result.refine_residual) +
                       " above limit " +
                       std::to_string(pp.refine_residual_limit) +
                       "; re-running the eigensolve at fp64");
  SpectralConfig fb_cfg = cfg;
  fb_cfg.precision = pp.fp64_fallback();
  reset_eig_result(result);
  obs::AttrSiteScope rung_site("fallback.precision_fp64");
  eigensolve_device(ctx, device_w(), fb_cfg, result, degrees);
}

/// Eigensolver degradation ladder: async device pipeline -> synchronous CSR
/// device path -> host backend.  `device_w` / `host_w` lazily materialize
/// the similarity matrix on the respective side, so a rung only pays for
/// the representation it actually uses.  `degrees` optionally carries the
/// operator row sums from the fused similarity+degree build so Algorithm 2
/// skips its ones-SpMV.
template <class DeviceW, class HostW>
void eigensolve_device_ladder(device::DeviceContext& ctx,
                              const SpectralConfig& cfg,
                              SpectralResult& result, DeviceW&& device_w,
                              HostW&& host_w,
                              const std::vector<real>* degrees = nullptr) {
  const DegradationPolicy& pol = cfg.degradation;
  std::exception_ptr last_error;
  std::string reason;
  bool integrity = false;
  try {
    eigensolve_device(ctx, device_w(), cfg, result, degrees);
    precision_fallback_rerun(ctx, cfg, result, device_w, degrees);
    return;
  } catch (const device::DeviceError& e) {
    if (!pol.enabled) throw;
    last_error = std::current_exception();
    reason = e.what();
    integrity = dynamic_cast<const device::DataIntegrityError*>(&e) != nullptr;
  }
  // SDC escalation rung (DESIGN.md §14): a detected-but-unrecovered
  // corruption on a narrow-precision solve re-runs at full fp64 first — the
  // extra mantissa headroom separates real upsets from rung roundoff, and
  // the rebuilt device state leaves any poisoned payload behind.
  if (integrity && cfg.sdc.enabled && !cfg.precision.all_fp64()) {
    note_degradation(result, kStageEigensolver, "sdc-fp64-resolve", reason);
    SpectralConfig fb_cfg = cfg;
    fb_cfg.precision = cfg.precision.fp64_fallback();
    reset_eig_result(result);
    try {
      obs::AttrSiteScope rung_site("fallback.sdc_fp64");
      eigensolve_device(ctx, device_w(), fb_cfg, result, degrees);
      return;
    } catch (const device::DeviceError& e) {
      last_error = std::current_exception();
      reason = e.what();
    }
  }
  // The sync rung also serves as the integrity recompute-from-source rung:
  // it rebuilds every device-resident payload (normalized CSR, checksums)
  // from the COO, which clears at-rest corruption even when the failing run
  // was already synchronous CSR.
  if (pol.allow_sync_fallback &&
      (cfg.async_pipeline || cfg.spmv_format != DeviceSpmvFormat::kCsr ||
       integrity)) {
    note_degradation(result, kStageEigensolver, "device-sync", reason);
    SpectralConfig sync_cfg = cfg;
    sync_cfg.async_pipeline = false;
    sync_cfg.spmv_format = DeviceSpmvFormat::kCsr;
    reset_eig_result(result);
    try {
      // Ladder-rung site: the retried solve's device work lands in its own
      // bucket so a degraded run is visible in the attribution table.
      obs::AttrSiteScope rung_site("fallback.device_sync");
      eigensolve_device(ctx, device_w(), sync_cfg, result, degrees);
      precision_fallback_rerun(ctx, sync_cfg, result, device_w, degrees);
      return;
    } catch (const device::DeviceError& e) {
      last_error = std::current_exception();
      reason = e.what();
    }
  }
  if (!pol.allow_host_fallback) std::rethrow_exception(last_error);
  note_degradation(result, kStageEigensolver, "host-eigensolver", reason);
  reset_eig_result(result);
  SpectralConfig host_cfg = cfg;
  host_cfg.backend = Backend::kMatlabLike;
  obs::AttrSiteScope rung_site("fallback.host_eigensolver");
  eigensolve_host(host_w(), host_cfg, result);
}

void eigensolve_host(const sparse::Coo& w, const SpectralConfig& cfg,
                     SpectralResult& result) {
  std::vector<real> isd;
  const sparse::Csr p = graph::sym_normalized_host(w, isd);
  const auto eig =
      cfg.backend == Backend::kMatlabLike
          ? baseline::eigensolve_matlab(p, cfg.num_clusters, cfg.which,
                                        cfg.eig_tol, cfg.ncv, cfg.max_restarts,
                                        cfg.seed)
          : baseline::eigensolve_python(p, cfg.num_clusters, cfg.which,
                                        cfg.eig_tol, cfg.ncv, cfg.max_restarts,
                                        cfg.seed);
  result.eigenvalues = eig.eigenvalues;
  result.eig_converged = eig.converged;
  result.eig_stats = eig.stats;
  result.spmv_seconds = eig.spmv_seconds;
  result.embedding =
      to_embedding(eig.eigenvectors, isd, cfg.num_clusters, w.rows);
}

void kmeans_stage_run(device::DeviceContext& ctx, const SpectralConfig& cfg,
                      SpectralResult& result) {
  const index_t n = result.n;
  const index_t k = cfg.num_clusters;
  if (cfg.row_normalize_embedding) {
    // Ng-Jordan-Weiss: project each embedded point onto the unit sphere.
    for (index_t i = 0; i < n; ++i) {
      real* row = result.embedding.data() + i * k;
      real norm = 0;
      for (index_t l = 0; l < k; ++l) norm += row[l] * row[l];
      if (norm > 0) {
        const real inv = 1.0 / std::sqrt(norm);
        for (index_t l = 0; l < k; ++l) row[l] *= inv;
      }
    }
  }
  const auto assign = [&](const kmeans::KmeansResult& res) {
    result.labels = res.labels;
    result.kmeans_converged = res.converged;
    result.kmeans_iterations = res.iterations;
    result.kmeans_inertia_history = res.inertia_history;
  };
  switch (cfg.backend) {
    case Backend::kDevice: {
      kmeans::KmeansConfig kc;
      kc.k = k;
      kc.max_iters = cfg.kmeans_max_iters;
      kc.seeding = cfg.seeding;
      kc.seed = cfg.seed;
      kc.async_pipeline = cfg.async_pipeline;
      kc.precision = cfg.precision.resolve(PrecisionStage::kKmeans);
      kc.record_inertia = cfg.record_kmeans_inertia;
      kc.abft = cfg.sdc.enabled && cfg.sdc.abft_kmeans;
      kc.abft_tolerance_scale = cfg.sdc.tolerance_scale;
      // Degradation ladder: async device -> sync device -> host Lloyd.  An
      // integrity failure takes the sync rung even when already synchronous:
      // the re-run rebuilds the device-resident working set from the host
      // embedding, which clears a one-shot upset.
      const DegradationPolicy& pol = cfg.degradation;
      std::exception_ptr last_error;
      std::string reason;
      bool integrity = false;
      bool done = false;
      try {
        assign(kmeans::kmeans_device(ctx, result.embedding.data(), n, k, kc));
        done = true;
      } catch (const device::DeviceError& e) {
        if (!pol.enabled) throw;
        last_error = std::current_exception();
        reason = e.what();
        integrity =
            dynamic_cast<const device::DataIntegrityError*>(&e) != nullptr;
      }
      if (!done && pol.allow_sync_fallback &&
          (kc.async_pipeline || integrity)) {
        note_degradation(result, kStageKmeans, "kmeans-sync", reason);
        kmeans::KmeansConfig sync_kc = kc;
        sync_kc.async_pipeline = false;
        try {
          obs::AttrSiteScope rung_site("fallback.kmeans_sync");
          assign(kmeans::kmeans_device(ctx, result.embedding.data(), n, k,
                                       sync_kc));
          done = true;
        } catch (const device::DeviceError& e) {
          last_error = std::current_exception();
          reason = e.what();
        }
      }
      if (!done) {
        if (!pol.allow_host_fallback) std::rethrow_exception(last_error);
        note_degradation(result, kStageKmeans, "host-kmeans", reason);
        obs::AttrSiteScope rung_site("fallback.host_kmeans");
        assign(kmeans::kmeans_lloyd_host(result.embedding.data(), n, k, kc));
      }
      break;
    }
    case Backend::kMatlabLike: {
      const auto res = baseline::kmeans_matlab(result.embedding.data(), n, k,
                                               k, cfg.kmeans_max_iters,
                                               cfg.seed);
      result.labels = res.labels;
      result.kmeans_converged = res.converged;
      result.kmeans_iterations = res.iterations;
      result.kmeans_inertia_history = res.inertia_history;
      break;
    }
    case Backend::kPythonLike: {
      const auto res = baseline::kmeans_python(result.embedding.data(), n, k,
                                               k, cfg.kmeans_max_iters,
                                               cfg.seed);
      result.labels = res.labels;
      result.kmeans_converged = res.converged;
      result.kmeans_iterations = res.iterations;
      result.kmeans_inertia_history = res.inertia_history;
      break;
    }
  }
}

void kmeans_stage(device::DeviceContext& ctx, const SpectralConfig& cfg,
                  SpectralResult& result) {
  if (cfg.validate_inputs) {
    // The embedding is the k-means input; an abandoned eigensolve or a NaN
    // that slipped through a degraded rung must not poison the labels.
    check_finite(result.embedding, "spectral embedding (k-means input)");
  }
  try {
    kmeans_stage_run(ctx, cfg, result);
  } catch (const cancel::CancelledError& e) {
    // The stage's own deadline expired somewhere labels are not yet valid
    // (seeding, a torn async sweep).  With anytime enabled, enter wrap-up —
    // enforcement stops — and rerun the stage to completion so the caller
    // still gets a full assignment.
    cancel::Governor& gov = cancel::current_governor();
    if (!gov.anytime_allowed()) throw;
    gov.begin_wrapup(e.site().empty() ? e.what() : e.site());
    kmeans_stage_run(ctx, cfg, result);
  }
}

device::DeviceContext& resolve_ctx(device::DeviceContext* ctx) {
  return ctx != nullptr ? *ctx : device::default_device();
}

/// Arms the cancellation governor for this run when a budget, watchdog, or
/// external token is configured; plain runs never arm, so every poll site
/// stays on its single-relaxed-load fast path.  The config's budget wins
/// over FASTSC_BUDGET.
void govern_run(const SpectralConfig& config, device::DeviceContext& ctx,
                std::optional<cancel::RunScope>& scope) {
  const cancel::RunBudget& budget =
      config.budget.enabled() ? config.budget : cancel::env_budget();
  if (budget.enabled() || config.watchdog.enabled() ||
      config.cancel_token.valid()) {
    scope.emplace(budget, config.watchdog, config.cancel_token,
                  [&ctx] { return ctx.modeled_transfer_seconds_now(); });
  }
}

using device::counters_delta;

}  // namespace

SpectralResult spectral_cluster_points(const real* x, index_t n, index_t d,
                                       const graph::EdgeList& edges,
                                       const SpectralConfig& config,
                                       device::DeviceContext* ctx_in) {
  FASTSC_CHECK(n >= 2, "need at least two points");
  FASTSC_CHECK(config.num_clusters >= 1 && config.num_clusters <= n,
               "cluster count must be in [1, n]");
  if (config.validate_inputs) {
    check_finite({x, static_cast<usize>(n) * static_cast<usize>(d)},
                 "input points");
    check_index_range(edges.u, n, "edge endpoint");
    check_index_range(edges.v, n, "edge endpoint");
  }
  if (config.num_devices > 1) {
    FASTSC_LOG_WARN("num_devices > 1 is only supported for the graph "
                    "pipeline (spectral_cluster_graph); running the points "
                    "pipeline single-device");
  }
  device::DeviceContext& ctx = resolve_ctx(ctx_in);
  // Snapshot under the meter mutex: with fastsc::Service, other jobs' stream
  // threads may be metering this context concurrently.
  const device::DeviceCounters counters_before = ctx.counters_snapshot();
  const obs::TraceEnableScope trace_scope(config.trace);
  std::optional<fault::ArmScope> fault_scope;
  if (!config.faults.empty()) fault_scope.emplace(config.faults);
  std::optional<cancel::RunScope> cancel_scope;
  govern_run(config, ctx, cancel_scope);

  SpectralResult result;
  result.n = n;
  result.k = config.num_clusters;

  const graph::EdgeList sym = graph::symmetrized(edges);

  if (config.backend == Backend::kDevice) {
    const DegradationPolicy& pol = config.degradation;
    std::optional<sparse::DeviceCoo> dev_w;
    sparse::Coo host_w_storage;
    bool have_host = false;
    std::vector<real> fused_degrees;
    bool have_degrees = false;

    result.clock.start(kStageSimilarity);
    {
      obs::ScopedSpan span(kStageSimilarity, "stage");
      cancel::StageScope budget_scope(kStageSimilarity);
      obs::AttrSiteScope stage_site("stage.similarity");
      const Precision sim_p =
          config.precision.resolve(PrecisionStage::kSimilarity);
      try {
        if (config.similarity_chunk_edges > 0) {
          // Out-of-core Algorithm 1: the edge list streams through the
          // device.
          host_w_storage = graph::build_similarity_device_chunked(
              ctx, x, n, d, sym, config.similarity,
              config.similarity_chunk_edges);
          have_host = true;
          dev_w.emplace(ctx, host_w_storage);
        } else if (config.precision.fused() || sim_p != Precision::kFp64) {
          // Fused Algorithm 1 + degree pass (DESIGN.md §13): similarity
          // values quantize to the rung on store, and the operator row sums
          // come out of the same edge sweep so Algorithm 2 skips its
          // ones-SpMV.
          dev_w.emplace(graph::build_similarity_device_fused_degrees(
              ctx, x, n, d, sym, config.similarity, fused_degrees, sim_p));
          have_degrees = true;
        } else {
          dev_w.emplace(graph::build_similarity_device(ctx, x, n, d, sym,
                                                       config.similarity));
        }
      } catch (const device::DeviceError& e) {
        if (!pol.enabled || !pol.allow_host_fallback) throw;
        note_degradation(result, kStageSimilarity, "host-similarity",
                         e.what());
        dev_w.reset();
        have_degrees = false;
        obs::AttrSiteScope rung_site("fallback.host_similarity");
        host_w_storage =
            baseline::similarity_loop(x, n, d, sym, config.similarity);
        have_host = true;
      }
    }
    result.clock.stop();

    result.clock.start(kStageEigensolver);
    {
      obs::ScopedSpan span(kStageEigensolver, "stage");
      cancel::StageScope budget_scope(kStageEigensolver);
      obs::AttrSiteScope stage_site("stage.eigensolver");
      auto device_w = [&]() -> sparse::DeviceCoo& {
        if (!dev_w) dev_w.emplace(ctx, host_w_storage);
        return *dev_w;
      };
      auto host_w = [&]() -> const sparse::Coo& {
        if (!have_host) {
          host_w_storage = dev_w->to_host();  // D2H, metered
          have_host = true;
        }
        return host_w_storage;
      };
      eigensolve_device_ladder(ctx, config, result, device_w, host_w,
                               have_degrees ? &fused_degrees : nullptr);
    }
    result.clock.stop();
  } else {
    result.clock.start(kStageSimilarity);
    sparse::Coo w;
    {
      obs::ScopedSpan span(kStageSimilarity, "stage");
      cancel::StageScope budget_scope(kStageSimilarity);
      w = baseline::similarity_loop(x, n, d, sym, config.similarity);
    }
    result.clock.stop();

    result.clock.start(kStageEigensolver);
    {
      obs::ScopedSpan span(kStageEigensolver, "stage");
      cancel::StageScope budget_scope(kStageEigensolver);
      eigensolve_host(w, config, result);
    }
    result.clock.stop();
  }

  result.clock.start(kStageKmeans);
  {
    obs::ScopedSpan span(kStageKmeans, "stage");
    cancel::StageScope budget_scope(kStageKmeans);
    obs::AttrSiteScope stage_site("stage.kmeans");
    kmeans_stage(ctx, config, result);
  }
  result.clock.stop();

  if (cancel::Governor& gov = cancel::current_governor(); gov.armed()) {
    result.budget = gov.report();
  }
  result.device_counters =
      counters_delta(ctx.counters_snapshot(), counters_before);
  return result;
}

SpectralResult spectral_cluster_graph(const sparse::Coo& w,
                                      const SpectralConfig& config,
                                      device::DeviceContext* ctx_in) {
  FASTSC_CHECK(w.rows == w.cols, "graph matrix must be square");
  FASTSC_CHECK(config.num_clusters >= 1 && config.num_clusters <= w.rows,
               "cluster count must be in [1, n]");
  if (config.validate_inputs) {
    check_finite(w.values, "similarity matrix values");
    check_index_range(w.row_idx, w.rows, "similarity matrix row");
    check_index_range(w.col_idx, w.cols, "similarity matrix column");
  }
  {
    // A disconnected graph makes the eigenvalue 1 of D^-1 W degenerate
    // (one copy per component), which a Krylov iteration from a single
    // start vector resolves slowly and unreliably.  Warn so callers can
    // split components (graph::largest_component) or reconnect weakly.
    const graph::ComponentInfo info = graph::connected_components(w);
    if (info.count > 1) {
      FASTSC_LOG_WARN("input graph has "
                      << info.count
                      << " connected components; spectral clustering is "
                         "only well-posed per component — consider "
                         "graph::largest_component or a connected "
                         "similarity graph");
    }
  }
  device::DeviceContext& ctx = resolve_ctx(ctx_in);

  // Multi-device path: a transient DeviceGroup inheriting this context's
  // transfer model runs the row-sharded pipeline.  A permanent device error
  // degrades to the single-device pipeline below (the last rung before the
  // per-stage ladders take over).
  std::string sharded_fallback_reason;
  if (config.backend == Backend::kDevice && config.num_devices > 1) {
    device::DeviceGroupConfig gc;
    gc.num_devices = static_cast<usize>(config.num_devices);
    gc.model = ctx.transfer_model();
    device::DeviceGroup group(gc);
    try {
      return spectral_cluster_graph_sharded(w, config, group);
    } catch (const device::DeviceError& e) {
      if (!config.degradation.enabled) throw;
      sharded_fallback_reason = e.what();
    }
  }

  // Snapshot under the meter mutex: with fastsc::Service, other jobs' stream
  // threads may be metering this context concurrently.
  const device::DeviceCounters counters_before = ctx.counters_snapshot();
  const obs::TraceEnableScope trace_scope(config.trace);
  std::optional<fault::ArmScope> fault_scope;
  if (!config.faults.empty()) fault_scope.emplace(config.faults);
  std::optional<cancel::RunScope> cancel_scope;
  govern_run(config, ctx, cancel_scope);

  SpectralResult result;
  result.n = w.rows;
  result.k = config.num_clusters;
  if (!sharded_fallback_reason.empty()) {
    note_degradation(result, kStageEigensolver, "single-device",
                     sharded_fallback_reason);
  }

  result.clock.start(kStageEigensolver);
  {
    obs::ScopedSpan span(kStageEigensolver, "stage");
    cancel::StageScope budget_scope(kStageEigensolver);
    obs::AttrSiteScope stage_site("stage.eigensolver");
    if (config.backend == Backend::kDevice) {
      // Transfer the graph to the device (part of the eigensolver stage cost,
      // matching the paper's accounting for the graph datasets).  The upload
      // is lazy so a degraded run that never touches the device skips it.
      std::optional<sparse::DeviceCoo> dev_w;
      auto device_w = [&]() -> sparse::DeviceCoo& {
        if (!dev_w) dev_w.emplace(ctx, w);
        return *dev_w;
      };
      auto host_w = [&]() -> const sparse::Coo& { return w; };
      eigensolve_device_ladder(ctx, config, result, device_w, host_w);
    } else {
      eigensolve_host(w, config, result);
    }
  }
  result.clock.stop();

  result.clock.start(kStageKmeans);
  {
    obs::ScopedSpan span(kStageKmeans, "stage");
    cancel::StageScope budget_scope(kStageKmeans);
    obs::AttrSiteScope stage_site("stage.kmeans");
    kmeans_stage(ctx, config, result);
  }
  result.clock.stop();

  if (cancel::Governor& gov = cancel::current_governor(); gov.armed()) {
    result.budget = gov.report();
  }
  result.device_counters =
      counters_delta(ctx.counters_snapshot(), counters_before);
  return result;
}

}  // namespace fastsc::core
