// Public API: the spectral clustering pipeline (the paper's contribution).
//
// Two entry points mirror the paper's two input modes:
//  * spectral_cluster_points — data points in R^d plus an epsilon edge list
//    (the DTI mode): Step 1 builds the similarity matrix, then Steps 2-4;
//  * spectral_cluster_graph — a graph given directly as a sparse matrix
//    (the FB/DBLP/Syn200 mode): the pipeline starts at Step 2.
//
// Three backends run the same mathematical pipeline with different
// execution strategies, enabling the paper's CUDA / Matlab / Python
// comparisons from one code path:
//  * kDevice     — the paper's hybrid scheme: device kernels for similarity,
//                  device csrmv inside the reverse-communication eigensolver
//                  (vectors staged over the modeled PCIe link), device
//                  BLAS-formulated k-means;
//  * kMatlabLike — serial loop similarity, CPU SpMV + blocked dense tier,
//                  Lloyd k-means with random seeding;
//  * kPythonLike — serial loop similarity, CPU SpMV + naive dense tier,
//                  Lloyd k-means with k-means++ seeding.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/precision.h"
#include "common/stage_clock.h"
#include "device/device.h"
#include "fault/fault.h"
#include "graph/grid_index.h"
#include "graph/similarity.h"
#include "kmeans/kmeans.h"
#include "lanczos/irlm.h"
#include "sparse/coo.h"

namespace fastsc::core {

enum class Backend { kDevice, kMatlabLike, kPythonLike };

[[nodiscard]] std::string backend_name(Backend b);

/// Sparse format for the device eigensolver SpMV (paper §IV.A: COO/CSR are
/// primary, "other sparse formats such as CSC, BSR are also supported").
enum class DeviceSpmvFormat { kCsr, kBsr };

/// Canonical stage names used in StageClock and reports.
inline constexpr const char* kStageSimilarity = "similarity";
inline constexpr const char* kStageEigensolver = "eigensolver";
inline constexpr const char* kStageKmeans = "kmeans";

/// Graceful-degradation policy for the device backend.  When a device stage
/// throws a DeviceError the pipeline walks a ladder instead of aborting:
/// async pipeline -> synchronous CSR device path -> host backend; the
/// eigensolver can additionally resume a kFailed solve from its last IRLM
/// checkpoint with an extended restart budget.  Every rung taken is recorded
/// in SpectralResult::degradation and published as degrade.* counters.
struct DegradationPolicy {
  bool enabled = true;
  /// Retry a failed async device stage on the synchronous CSR path.
  bool allow_sync_fallback = true;
  /// Last rung: redo the stage on the host (kMatlabLike kernels).
  bool allow_host_fallback = true;
  /// Resume a kFailed eigensolve from its last checkpoint with an extended
  /// restart budget before falling back (LanczosConfig::capture_checkpoints).
  bool resume_failed_solve = false;
  index_t max_solver_resumes = 1;
};

/// One degradation decision: which stage fell back, to what, and why.
struct DegradationEvent {
  std::string stage;   ///< kStage* name
  std::string action;  ///< e.g. "device-sync", "host-eigensolver"
  std::string reason;  ///< the triggering error's what()
};

struct DegradationReport {
  bool degraded = false;
  std::vector<DegradationEvent> events;
};

/// Silent-data-corruption defense knobs (DESIGN.md §14).  Detection is
/// layered: Huang–Abraham column-sum checksums on the eigensolver SpMV
/// waves and the k-means distance GEMM, cheap invariant sentinels in the
/// RCI loop (basis orthogonality drift, Rayleigh-quotient and norm bounds
/// of the normalized operator), and CRC32C frames on staged transfer
/// buffers (at-rest frames on checkpoints and cache entries are always on —
/// they are part of the storage format).  A detection escalates
/// recompute-block -> fp64 re-solve rung -> device-sync -> host through the
/// existing degradation ladder via DataIntegrityError.
struct SdcPolicy {
  bool enabled = true;       ///< master switch for the in-run checks below
  bool abft_spmv = true;     ///< checksum-verify every eigensolver SpMV wave
  bool abft_kmeans = true;   ///< checksum-verify the k-means distance GEMM
  bool sentinels = true;     ///< RCI invariant sentinels
  bool transfer_crc = true;  ///< CRC staged H2D vectors in the RCI loop
  /// Multiplies every derived detection tolerance; raise above 1 to loosen
  /// the checks (e.g. experimental kernels with reordered accumulation).
  real tolerance_scale = 1;
};

/// What the SDC layer saw during one run (mirrored into the sdc.* counter
/// family and the run report's integrity section).
struct IntegrityReport {
  std::uint64_t checks = 0;      ///< checksum/sentinel verifications run
  std::uint64_t detected = 0;    ///< mismatches found
  std::uint64_t recomputed = 0;  ///< recovered by an in-place block recompute
  /// One "site: detail" line per detection, in order.
  std::vector<std::string> events;
};

struct SpectralConfig {
  /// Number of clusters (the paper's k; also the eigenpair count).
  index_t num_clusters = 2;
  Backend backend = Backend::kDevice;

  graph::SimilarityParams similarity{};

  /// Eigensolver knobs (paper §IV.B).  ncv = 0 selects the ARPACK-style
  /// default m = max(2k+1, 20) capped at n.
  index_t ncv = 0;
  real eig_tol = 1e-8;
  index_t max_restarts = 500;
  /// Largest-algebraic of D^-1 W (the paper's numerically stable choice).
  lanczos::EigWhich which = lanczos::EigWhich::kLargestAlgebraic;
  /// Device SpMV format inside the eigensolver loop.
  DeviceSpmvFormat spmv_format = DeviceSpmvFormat::kCsr;
  /// Block size when spmv_format == kBsr.
  index_t bsr_block_size = 4;
  /// nnz-balanced (merge-path) CSR SpMV inside the eigensolver loop: every
  /// worker gets a near-equal share of rows + entries instead of a fixed
  /// row chunk, so hub rows on power-law graphs stop serializing the wave
  /// (sparse::device_csrmv_balanced; spmv.wave_max_nnz gauges the effect).
  /// Applies to kCsr, both the synchronous and the pipelined path.
  bool balanced_spmv = true;

  /// Overlapped transfer–compute pipeline for the device backend (CSR only;
  /// BSR keeps the synchronous path).  The eigensolver matrix is split into
  /// `overlap_col_blocks` column blocks so the RCI vector's tile b+1 stages
  /// H2D on a transfer stream while block b multiplies on a compute stream;
  /// the final block is split into `overlap_row_tiles` row ranges so
  /// finished y tiles start their D2H behind the remaining compute.  This is
  /// the stream/event answer to Table VII's communication bottleneck;
  /// bench_ablation_overlap ablates sync vs. async.  Few column blocks:
  /// each extra block re-sweeps every row to accumulate its partial
  /// products, while row tiles partition the final sweep and are nearly
  /// free — the bench's tile sweep picked these defaults.
  bool async_pipeline = true;
  index_t overlap_col_blocks = 2;
  index_t overlap_row_tiles = 4;

  /// Number of simulated devices for the graph pipeline (device backend).
  /// 1 (default) runs the existing single-device path untouched; > 1 builds
  /// a transient DeviceGroup and runs the row-sharded multi-device pipeline
  /// (core/sharded.h): halo-exchanged SpMV waves, allreduced CGS2, and
  /// blocked k-means reductions.  Labels are byte-identical for every value
  /// of this knob (DESIGN.md §12 determinism contract).  On a permanent
  /// device error the run degrades to the single-device pipeline when
  /// degradation.enabled.  Points mode ignores this with a WARN.
  index_t num_devices = 1;

  /// Mixed-precision ladder for the device hot path (DESIGN.md §13).  The
  /// default (all-fp64, no forced fusion) is bitwise identical to the
  /// pre-precision pipeline.  Below fp64 the eigensolver narrows the CSR
  /// value array and/or the Lanczos-vector link staging (fp64 accumulation
  /// throughout), clamps eig_tol to the rung's resolution, runs an fp64
  /// Rayleigh-Ritz refinement round at solve end, and — when
  /// precision.auto_ladder is armed — re-runs the solve at fp64 through the
  /// degradation ladder (action "precision-fallback") if the refinement
  /// residual exceeds precision.refine_residual_limit.  The kmeans rung
  /// quantizes the embedding before seeding so labels stay deterministic
  /// across device counts.  BSR and the overlapped column-block pipeline are
  /// fp64-only; a narrow eigensolver rung falls back to the synchronous CSR
  /// path.
  PrecisionPolicy precision{};

  /// Out-of-core similarity construction (device backend, points mode):
  /// 0 builds the whole edge list on the device at once (Algorithm 1);
  /// > 0 streams the edge list through the device in chunks of this many
  /// edges, for edge lists beyond the device-memory budget.
  index_t similarity_chunk_edges = 0;

  /// k-means knobs (paper §IV.C).
  index_t kmeans_max_iters = 100;
  kmeans::Seeding seeding = kmeans::Seeding::kKmeansPlusPlus;

  /// Normalize each embedding row to unit length before k-means — the
  /// Ng-Jordan-Weiss variant of Step 4 (the paper follows Shi-Malik and
  /// clusters the raw rows; bench_ablation_embedding_norm compares both).
  bool row_normalize_embedding = false;

  /// Enable the obs trace recorder for the duration of this run (restores
  /// the previous state afterwards).  Stage spans, per-wave SpMV spans,
  /// device virtual-timeline events, and solver counters are recorded; dump
  /// with obs::trace().write_json_file() (benches: --trace-out).  Tracing
  /// can also be forced globally with FASTSC_TRACE=1.
  bool trace = false;

  /// Record per-sweep k-means inertia into kmeans_inertia_history (one extra
  /// device reduction per Lloyd sweep on the device backend).  Implied by
  /// tracing.
  bool record_kmeans_inertia = false;

  /// How the device backend degrades on DeviceErrors instead of aborting.
  DegradationPolicy degradation{};

  /// Silent-data-corruption detection (ABFT checksums, sentinels, transfer
  /// CRC) and its recovery escalation.  Default-on: the checks are O(n) per
  /// wave against O(nnz) kernels.
  SdcPolicy sdc{};

  /// Deterministic fault plan armed (via fault::ArmScope) for the duration
  /// of the run; empty = no injection.  Also settable process-wide through
  /// FASTSC_FAULTS.
  fault::FaultPlan faults{};

  /// Run budget: total and per-stage wall/virtual-clock limits (empty = no
  /// deadline).  Virtual limits charge against the deterministic device
  /// transfer timeline, so expiry is exactly reproducible.  With
  /// budget.anytime (default), expiry mid-eigensolve snapshots the best
  /// partial Ritz pairs and still clusters (SpectralResult::budget.anytime).
  /// Also settable process-wide through FASTSC_BUDGET.
  cancel::RunBudget budget{};

  /// Hang watchdog: stalled-restart / stream-heartbeat / transfer-overrun
  /// detection that fires the run's cancel token (off by default).
  cancel::WatchdogConfig watchdog{};

  /// External cancellation: pass CancelSource::token() and call
  /// request_cancel() from any thread; the run unwinds with a site-annotated
  /// cancel::CancelledError at its next poll point.
  cancel::CancelToken cancel_token{};

  /// Validate user-facing inputs (finiteness of points/edge weights/graph
  /// values and of the embedding handed to k-means) at stage boundaries.
  bool validate_inputs = true;

  /// Warm-start the device eigensolver from a restart-boundary checkpoint of
  /// a *nearby* matrix (the service's delta-edge re-solve path; see
  /// SymLanczos::restore_warm).  Ignored — with a WARN — when the checkpoint
  /// does not match the solver configuration this run derives (n, nev, ncv,
  /// which) or is not a restart boundary.  SpectralResult::warm_started
  /// records whether the warm path was actually taken.
  std::shared_ptr<const lanczos::LanczosCheckpoint> warm_start{};

  /// Export the eigensolver's last restart-boundary checkpoint into
  /// SpectralResult::checkpoint (device backend), so a later run on a
  /// perturbed graph can warm-start from it.
  bool capture_checkpoint = false;

  std::uint64_t seed = 42;
};

struct SpectralResult {
  std::vector<index_t> labels;       ///< cluster per vertex
  std::vector<real> eigenvalues;     ///< k best eigenvalues of D^-1 W
  std::vector<real> embedding;       ///< n x k spectral embedding (rows)
  index_t n = 0;
  index_t k = 0;

  bool eig_converged = false;
  bool kmeans_converged = false;
  index_t kmeans_iterations = 0;

  /// Per-stage wall times (kStage* names).
  StageClock clock;
  /// Device counter delta over this run (kDevice backend; zeros otherwise).
  device::DeviceCounters device_counters;
  lanczos::LanczosStats eig_stats;
  /// Wall time spent in SpMV callbacks during the eigensolver stage.
  double spmv_seconds = 0;
  /// Objective after each Lloyd sweep (empty unless
  /// SpectralConfig::record_kmeans_inertia or tracing was enabled).
  std::vector<real> kmeans_inertia_history;

  /// The precision policy the eigensolver stage finally ran at — equal to
  /// SpectralConfig::precision unless the auto ladder fell back to fp64
  /// (then it is the fp64_fallback policy and degradation records why).
  PrecisionPolicy precision_used{};
  /// Max fp64 residual max_i ||S v_i - lambda_i v_i|| after the post-solve
  /// Rayleigh-Ritz refinement (0 when no refinement ran, i.e. all-fp64 runs
  /// or precision.refine_rounds == 0).
  real refine_residual = 0;

  /// Fallbacks and resumes taken during this run (device backend).
  DegradationReport degradation;

  /// SDC checks run / detections / block recomputes during this run.
  IntegrityReport integrity;

  /// Budget/watchdog accounting: limits vs. spend per stage, where the
  /// deadline hit, and whether the result is an anytime (partial) answer.
  cancel::BudgetReport budget;

  /// Last restart-boundary eigensolver checkpoint (only when
  /// SpectralConfig::capture_checkpoint; shared so a result cache can hold
  /// it without copying the Krylov basis).
  std::shared_ptr<const lanczos::LanczosCheckpoint> checkpoint{};
  /// True when the eigensolve warm-started from SpectralConfig::warm_start.
  bool warm_started = false;
};

/// Cluster n points in R^d whose candidate edges are given by `edges`
/// (unordered pairs; the pipeline symmetrizes).  Steps 1-4.
[[nodiscard]] SpectralResult spectral_cluster_points(
    const real* x, index_t n, index_t d, const graph::EdgeList& edges,
    const SpectralConfig& config,
    device::DeviceContext* ctx = nullptr);

/// Cluster the graph given by the symmetric nonnegative matrix `w`
/// (both edge directions stored).  Steps 2-4.
[[nodiscard]] SpectralResult spectral_cluster_graph(
    const sparse::Coo& w, const SpectralConfig& config,
    device::DeviceContext* ctx = nullptr);

}  // namespace fastsc::core
