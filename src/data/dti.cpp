#include "data/dti.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/rng.h"
#include "graph/build.h"

namespace fastsc::data {

DtiVolume make_dti_like(const DtiParams& params) {
  FASTSC_CHECK(params.nx >= 1 && params.ny >= 1 && params.nz >= 1,
               "lattice dimensions must be positive");
  FASTSC_CHECK(params.num_parcels >= 1, "need at least one parcel");
  FASTSC_CHECK(params.profile_dim >= 1, "profile dimension must be positive");

  DtiVolume vol;
  vol.n = params.nx * params.ny * params.nz;
  vol.d = params.profile_dim;
  FASTSC_CHECK(params.num_parcels <= vol.n, "more parcels than voxels");

  Rng rng(params.seed);

  // Voxel centers.
  vol.positions.resize(static_cast<usize>(vol.n) * 3);
  index_t v = 0;
  for (index_t x = 0; x < params.nx; ++x) {
    for (index_t y = 0; y < params.ny; ++y) {
      for (index_t z = 0; z < params.nz; ++z, ++v) {
        vol.positions[static_cast<usize>(v * 3 + 0)] = static_cast<real>(x);
        vol.positions[static_cast<usize>(v * 3 + 1)] = static_cast<real>(y);
        vol.positions[static_cast<usize>(v * 3 + 2)] = static_cast<real>(z);
      }
    }
  }

  // Seeded Voronoi parcellation: random parcel centers, each voxel joins the
  // nearest center — yields spatially contiguous parcels like a brain atlas.
  std::vector<real> centers(static_cast<usize>(params.num_parcels) * 3);
  for (index_t c = 0; c < params.num_parcels; ++c) {
    centers[static_cast<usize>(c * 3 + 0)] =
        rng.uniform() * static_cast<real>(params.nx);
    centers[static_cast<usize>(c * 3 + 1)] =
        rng.uniform() * static_cast<real>(params.ny);
    centers[static_cast<usize>(c * 3 + 2)] =
        rng.uniform() * static_cast<real>(params.nz);
  }
  vol.labels.assign(static_cast<usize>(vol.n), 0);
  for (index_t i = 0; i < vol.n; ++i) {
    const real* p = vol.positions.data() + i * 3;
    real best = std::numeric_limits<real>::max();
    index_t best_c = 0;
    for (index_t c = 0; c < params.num_parcels; ++c) {
      const real* q = centers.data() + c * 3;
      const real d0 = p[0] - q[0], d1 = p[1] - q[1], d2 = p[2] - q[2];
      const real dist = d0 * d0 + d1 * d1 + d2 * d2;
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    vol.labels[static_cast<usize>(i)] = best_c;
  }

  // Prototype connectivity profiles: sparse nonnegative patterns so that
  // cross-correlation separates parcels the way fiber-connectivity does.
  std::vector<real> prototypes(static_cast<usize>(params.num_parcels) *
                               static_cast<usize>(vol.d));
  for (index_t c = 0; c < params.num_parcels; ++c) {
    real* proto = prototypes.data() + c * vol.d;
    for (index_t l = 0; l < vol.d; ++l) {
      // ~20% strong connections per parcel.
      proto[l] = rng.uniform() < 0.2 ? 1.0 + rng.uniform() : 0.05 * rng.uniform();
    }
  }

  vol.profiles.resize(static_cast<usize>(vol.n) * static_cast<usize>(vol.d));
  for (index_t i = 0; i < vol.n; ++i) {
    const real* proto =
        prototypes.data() + vol.labels[static_cast<usize>(i)] * vol.d;
    real* row = vol.profiles.data() + i * vol.d;
    for (index_t l = 0; l < vol.d; ++l) {
      row[l] = proto[l] + params.noise * rng.normal();
    }
  }

  // Epsilon-lattice edge list (the E input of Algorithm 1).
  vol.edges =
      graph::build_epsilon_edges_3d(vol.positions.data(), vol.n, params.epsilon);
  return vol;
}

}  // namespace fastsc::data
