// Synthetic DTI-like brain volume (substitute for the NKI dataset).
//
// The paper's DTI workload is a 3D voxel lattice where each voxel carries a
// 90-dimensional connectivity profile, and voxels within a 4 mm spatial
// radius are candidate graph edges.  This generator reproduces that input
// *type*: voxels on an nx x ny x nz lattice, planted parcels (seeded Voronoi
// regions), a distinct prototype profile per parcel, per-voxel Gaussian
// noise, and the epsilon-lattice edge list.  Ground-truth parcel labels come
// along for quality evaluation (which the real dataset cannot provide).
#pragma once

#include <vector>

#include "common/types.h"
#include "graph/grid_index.h"

namespace fastsc::data {

struct DtiParams {
  index_t nx = 24, ny = 24, nz = 24;  ///< lattice dimensions
  index_t profile_dim = 90;           ///< connectivity regions (paper: 90)
  index_t num_parcels = 64;           ///< planted clusters
  real noise = 0.25;                  ///< profile noise std dev
  real epsilon = 2.0;                 ///< edge radius in voxel units (paper: 4mm / 2mm voxels)
  std::uint64_t seed = 42;
};

struct DtiVolume {
  index_t n = 0;                 ///< number of voxels
  index_t d = 0;                 ///< profile dimension
  std::vector<real> positions;   ///< n x 3, voxel centers
  std::vector<real> profiles;    ///< n x d connectivity profiles
  std::vector<index_t> labels;   ///< planted parcel per voxel
  graph::EdgeList edges;         ///< pairs within epsilon (unordered, i<j)
};

[[nodiscard]] DtiVolume make_dti_like(const DtiParams& params);

}  // namespace fastsc::data
