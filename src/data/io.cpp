#include "data/io.h"

#include <cmath>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "common/error.h"

namespace fastsc::data {

namespace {

/// Line-numbered parse failure: "file.txt:17: message — line: '...'".
/// Corrupted inputs must fail loudly and point at the offending byte range,
/// never crash or silently mis-parse.
[[noreturn]] void throw_parse_error(const std::string& path, usize lineno,
                                    const std::string& message,
                                    const std::string& line) {
  std::ostringstream os;
  os << path << ':' << lineno << ": " << message;
  if (!line.empty()) {
    // Clip the echoed line so a corrupted multi-megabyte row stays readable.
    constexpr usize kMaxEcho = 80;
    os << " — line: '"
       << (line.size() <= kMaxEcho ? line : line.substr(0, kMaxEcho) + "…")
       << "'";
  }
  throw std::invalid_argument(os.str());
}

/// Significant digits for a bit-exact text round-trip at the given storage
/// width (the max_digits10 of the rung: binary64 needs 17, binary32 needs 9,
/// bf16 — a truncated binary32 — needs 5).
int round_trip_digits(Precision p) {
  switch (p) {
    case Precision::kFp64: return 17;
    case Precision::kFp32: return 9;
    case Precision::kBf16: return 5;
  }
  return 17;
}

/// Storage-rung marker: narrow writers stamp a comment so readers can
/// re-round parsed values onto the rung.  A decimal with the rung's
/// max_digits10 uniquely identifies the narrow value, but the reader parses
/// into binary64 and lands on the nearest *double* — one widening step away
/// from the stored value — so the reader must know the rung to finish the
/// round trip bit-for-bit.
constexpr const char* kPrecisionTag = "fastsc-precision:";

std::optional<Precision> precision_marker(const std::string& line) {
  const auto pos = line.find(kPrecisionTag);
  if (pos == std::string::npos) return std::nullopt;
  std::istringstream ls(line.substr(pos + std::strlen(kPrecisionTag)));
  std::string name;
  ls >> name;
  if (name == "fp64") return Precision::kFp64;
  if (name == "fp32") return Precision::kFp32;
  if (name == "bf16") return Precision::kBf16;
  return std::nullopt;
}

void write_precision_marker(std::ostream& out, char comment_char,
                            Precision storage) {
  if (storage == Precision::kFp64) return;  // default: keep files unchanged
  out << comment_char << ' ' << kPrecisionTag << ' '
      << (storage == Precision::kFp32 ? "fp32" : "bf16") << '\n';
}

/// True when only whitespace remains on the stream.
bool rest_is_blank(std::istream& is) {
  is >> std::ws;
  return is.eof();
}

bool is_comment_or_blank(const std::string& line, char comment_char) {
  for (char ch : line) {
    if (ch == comment_char) return true;
    if (!std::isspace(static_cast<unsigned char>(ch))) return false;
  }
  return true;  // blank
}

}  // namespace

sparse::Coo read_edge_list(const std::string& path, bool symmetrize) {
  std::ifstream in(path);
  FASTSC_CHECK(in.good(), "cannot open edge list file: " + path);
  std::unordered_map<index_t, index_t> compact;
  std::vector<index_t> us, vs;
  std::vector<real> ws;
  std::string line;
  usize lineno = 0;
  auto id_of = [&](index_t raw) {
    const auto it =
        compact.try_emplace(raw, static_cast<index_t>(compact.size())).first;
    return it->second;
  };
  Precision storage = Precision::kFp64;
  while (std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '#')) {
      if (const auto p = precision_marker(line)) storage = *p;
      continue;
    }
    std::istringstream ls(line);
    index_t u, v;
    if (!(ls >> u)) {
      throw_parse_error(path, lineno, "expected integer source vertex", line);
    }
    if (!(ls >> v)) {
      throw_parse_error(path, lineno,
                        "truncated edge: missing destination vertex", line);
    }
    if (u < 0 || v < 0) {
      throw_parse_error(path, lineno, "negative vertex id", line);
    }
    real w = 1.0;
    if (!rest_is_blank(ls)) {
      ls.clear();
      if (!(ls >> w)) {
        throw_parse_error(path, lineno, "unparseable edge weight", line);
      }
      if (!std::isfinite(w)) {
        throw_parse_error(path, lineno, "non-finite edge weight", line);
      }
      if (!rest_is_blank(ls)) {
        throw_parse_error(path, lineno, "trailing garbage after edge weight",
                          line);
      }
    }
    if (u == v) continue;
    us.push_back(id_of(u));
    vs.push_back(id_of(v));
    ws.push_back(quantize(w, storage));
  }
  const auto n = static_cast<index_t>(compact.size());
  sparse::Coo coo(n, n);
  coo.reserve(static_cast<index_t>(us.size()) * (symmetrize ? 2 : 1));
  for (usize e = 0; e < us.size(); ++e) {
    coo.push(us[e], vs[e], ws[e]);
    if (symmetrize) coo.push(vs[e], us[e], ws[e]);
  }
  return coo;
}

void write_edge_list(const std::string& path, const sparse::Coo& coo,
                     Precision storage) {
  std::ofstream out(path);
  FASTSC_CHECK(out.good(), "cannot open file for writing: " + path);
  out << "# fastsc edge list: " << coo.rows << " nodes, " << coo.nnz()
      << " entries\n";
  write_precision_marker(out, '#', storage);
  out.precision(round_trip_digits(storage));
  for (usize e = 0; e < coo.values.size(); ++e) {
    out << coo.row_idx[e] << ' ' << coo.col_idx[e] << ' '
        << quantize(coo.values[e], storage) << '\n';
  }
}

void write_labels(const std::string& path,
                  const std::vector<index_t>& labels) {
  std::ofstream out(path);
  FASTSC_CHECK(out.good(), "cannot open file for writing: " + path);
  for (index_t l : labels) out << l << '\n';
}

std::vector<index_t> read_labels(const std::string& path) {
  std::ifstream in(path);
  FASTSC_CHECK(in.good(), "cannot open labels file: " + path);
  std::vector<index_t> labels;
  std::string line;
  usize lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '#')) continue;
    std::istringstream ls(line);
    index_t l;
    if (!(ls >> l) || !rest_is_blank(ls)) {
      throw_parse_error(path, lineno, "expected one integer label", line);
    }
    labels.push_back(l);
  }
  return labels;
}

std::vector<real> read_points(const std::string& path, index_t& rows,
                              index_t& cols) {
  std::ifstream in(path);
  FASTSC_CHECK(in.good(), "cannot open points file: " + path);
  std::vector<real> data;
  rows = 0;
  cols = -1;
  std::string line;
  usize lineno = 0;
  Precision storage = Precision::kFp64;
  while (std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '#')) {
      if (const auto p = precision_marker(line)) storage = *p;
      continue;
    }
    std::istringstream ls(line);
    index_t count = 0;
    real v;
    while (ls >> v) {
      if (!std::isfinite(v)) {
        throw_parse_error(path, lineno, "non-finite coordinate", line);
      }
      data.push_back(quantize(v, storage));
      ++count;
    }
    if (!ls.eof()) {
      throw_parse_error(path, lineno, "unparseable coordinate", line);
    }
    if (count == 0) continue;
    if (cols < 0) {
      cols = count;
    } else if (count != cols) {
      throw_parse_error(path, lineno,
                        "ragged row: expected " + std::to_string(cols) +
                            " columns, got " + std::to_string(count),
                        line);
    }
    ++rows;
  }
  if (cols < 0) cols = 0;
  return data;
}

void write_points(const std::string& path, const real* data, index_t rows,
                  index_t cols, Precision storage) {
  std::ofstream out(path);
  FASTSC_CHECK(out.good(), "cannot open file for writing: " + path);
  write_precision_marker(out, '#', storage);
  out.precision(round_trip_digits(storage));
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (c != 0) out << ' ';
      out << quantize(data[r * cols + c], storage);
    }
    out << '\n';
  }
}

sparse::Coo read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  FASTSC_CHECK(in.good(), "cannot open MatrixMarket file: " + path);
  std::string line;
  usize lineno = 0;
  FASTSC_CHECK(static_cast<bool>(std::getline(in, line)),
               "empty MatrixMarket file: " + path);
  ++lineno;
  std::istringstream banner(line);
  std::string mm, object, format, field, symmetry;
  banner >> mm >> object >> format >> field >> symmetry;
  if (mm != "%%MatrixMarket") {
    throw_parse_error(path, lineno, "missing MatrixMarket banner", line);
  }
  if (object != "matrix" || format != "coordinate") {
    throw_parse_error(path, lineno, "only coordinate matrices are supported",
                      line);
  }
  if (field != "real" && field != "integer" && field != "pattern") {
    throw_parse_error(path, lineno,
                      "unsupported MatrixMarket field type: " + field, line);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw_parse_error(path, lineno,
                      "unsupported MatrixMarket symmetry: " + symmetry, line);
  }
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments, read the size line.
  index_t rows = 0, cols = 0, nnz = 0;
  bool have_size = false;
  Precision storage = Precision::kFp64;
  while (std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '%')) {
      if (const auto p = precision_marker(line)) storage = *p;
      continue;
    }
    std::istringstream ls(line);
    if (!(ls >> rows >> cols >> nnz) || !rest_is_blank(ls)) {
      throw_parse_error(path, lineno, "malformed MatrixMarket size line",
                        line);
    }
    have_size = true;
    break;
  }
  FASTSC_CHECK(have_size, "missing MatrixMarket size line: " + path);
  if (rows < 0 || cols < 0 || nnz < 0) {
    throw_parse_error(path, lineno, "negative MatrixMarket dimensions", line);
  }
  sparse::Coo coo(rows, cols);
  // An oversized header count (corrupted or hostile) must not drive a huge
  // up-front allocation: every entry needs at least "r c\n" = 4 bytes, so
  // nnz can never exceed the remaining file size.  Truncation past the real
  // entry count is still caught by the `seen == nnz` check below.
  {
    const auto body_start = in.tellg();
    in.seekg(0, std::ios::end);
    const auto body_bytes =
        static_cast<long long>(in.tellg()) - static_cast<long long>(body_start);
    in.seekg(body_start);
    if (static_cast<long long>(nnz) > body_bytes / 4 + 1) {
      throw_parse_error(
          path, lineno,
          "oversized entry count " + std::to_string(nnz) + " for a " +
              std::to_string(body_bytes) + "-byte body",
          line);
    }
  }
  coo.reserve(symmetric ? 2 * nnz : nnz);
  index_t seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++lineno;
    if (is_comment_or_blank(line, '%')) continue;
    std::istringstream ls(line);
    index_t r, c;
    real v = 1.0;
    if (!(ls >> r >> c)) {
      throw_parse_error(path, lineno, "malformed MatrixMarket entry", line);
    }
    if (!pattern) {
      if (!(ls >> v)) {
        throw_parse_error(path, lineno, "missing value in MatrixMarket entry",
                          line);
      }
      if (!std::isfinite(v)) {
        throw_parse_error(path, lineno, "non-finite MatrixMarket value", line);
      }
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw_parse_error(path, lineno, "MatrixMarket index out of range", line);
    }
    v = quantize(v, storage);
    coo.push(r - 1, c - 1, v);
    if (symmetric && r != c) coo.push(c - 1, r - 1, v);
    ++seen;
  }
  FASTSC_CHECK(seen == nnz, "MatrixMarket file truncated: " + path);
  return coo;
}

void write_matrix_market(const std::string& path, const sparse::Coo& coo,
                         Precision storage) {
  std::ofstream out(path);
  FASTSC_CHECK(out.good(), "cannot open file for writing: " + path);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by fastsc\n";
  write_precision_marker(out, '%', storage);
  out << coo.rows << ' ' << coo.cols << ' ' << coo.nnz() << '\n';
  out.precision(round_trip_digits(storage));
  for (usize e = 0; e < coo.values.size(); ++e) {
    out << coo.row_idx[e] + 1 << ' ' << coo.col_idx[e] + 1 << ' '
        << quantize(coo.values[e], storage) << '\n';
  }
}

}  // namespace fastsc::data
