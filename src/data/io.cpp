#include "data/io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/error.h"

namespace fastsc::data {

sparse::Coo read_edge_list(const std::string& path, bool symmetrize) {
  std::ifstream in(path);
  FASTSC_CHECK(in.good(), "cannot open edge list file: " + path);
  std::unordered_map<index_t, index_t> compact;
  std::vector<index_t> us, vs;
  std::vector<real> ws;
  std::string line;
  auto id_of = [&](index_t raw) {
    const auto it =
        compact.try_emplace(raw, static_cast<index_t>(compact.size())).first;
    return it->second;
  };
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    index_t u, v;
    if (!(ls >> u >> v)) continue;
    real w = 1.0;
    ls >> w;  // optional; keeps 1.0 on failure
    if (u == v) continue;
    us.push_back(id_of(u));
    vs.push_back(id_of(v));
    ws.push_back(w);
  }
  const auto n = static_cast<index_t>(compact.size());
  sparse::Coo coo(n, n);
  coo.reserve(static_cast<index_t>(us.size()) * (symmetrize ? 2 : 1));
  for (usize e = 0; e < us.size(); ++e) {
    coo.push(us[e], vs[e], ws[e]);
    if (symmetrize) coo.push(vs[e], us[e], ws[e]);
  }
  return coo;
}

void write_edge_list(const std::string& path, const sparse::Coo& coo) {
  std::ofstream out(path);
  FASTSC_CHECK(out.good(), "cannot open file for writing: " + path);
  out << "# fastsc edge list: " << coo.rows << " nodes, " << coo.nnz()
      << " entries\n";
  for (usize e = 0; e < coo.values.size(); ++e) {
    out << coo.row_idx[e] << ' ' << coo.col_idx[e] << ' ' << coo.values[e]
        << '\n';
  }
}

void write_labels(const std::string& path,
                  const std::vector<index_t>& labels) {
  std::ofstream out(path);
  FASTSC_CHECK(out.good(), "cannot open file for writing: " + path);
  for (index_t l : labels) out << l << '\n';
}

std::vector<index_t> read_labels(const std::string& path) {
  std::ifstream in(path);
  FASTSC_CHECK(in.good(), "cannot open labels file: " + path);
  std::vector<index_t> labels;
  index_t l;
  while (in >> l) labels.push_back(l);
  return labels;
}

std::vector<real> read_points(const std::string& path, index_t& rows,
                              index_t& cols) {
  std::ifstream in(path);
  FASTSC_CHECK(in.good(), "cannot open points file: " + path);
  std::vector<real> data;
  rows = 0;
  cols = -1;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    index_t count = 0;
    real v;
    while (ls >> v) {
      data.push_back(v);
      ++count;
    }
    if (count == 0) continue;
    if (cols < 0) {
      cols = count;
    } else {
      FASTSC_CHECK(count == cols, "ragged rows in points file: " + path);
    }
    ++rows;
  }
  if (cols < 0) cols = 0;
  return data;
}

void write_points(const std::string& path, const real* data, index_t rows,
                  index_t cols) {
  std::ofstream out(path);
  FASTSC_CHECK(out.good(), "cannot open file for writing: " + path);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (c != 0) out << ' ';
      out << data[r * cols + c];
    }
    out << '\n';
  }
}

sparse::Coo read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  FASTSC_CHECK(in.good(), "cannot open MatrixMarket file: " + path);
  std::string line;
  FASTSC_CHECK(static_cast<bool>(std::getline(in, line)),
               "empty MatrixMarket file: " + path);
  std::istringstream banner(line);
  std::string mm, object, format, field, symmetry;
  banner >> mm >> object >> format >> field >> symmetry;
  FASTSC_CHECK(mm == "%%MatrixMarket", "missing MatrixMarket banner: " + path);
  FASTSC_CHECK(object == "matrix" && format == "coordinate",
               "only coordinate matrices are supported: " + path);
  FASTSC_CHECK(field == "real" || field == "integer" || field == "pattern",
               "unsupported MatrixMarket field type: " + field);
  FASTSC_CHECK(symmetry == "general" || symmetry == "symmetric",
               "unsupported MatrixMarket symmetry: " + symmetry);
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments, read the size line.
  index_t rows = 0, cols = 0, nnz = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    FASTSC_CHECK(static_cast<bool>(ls >> rows >> cols >> nnz),
                 "malformed MatrixMarket size line: " + path);
    break;
  }
  sparse::Coo coo(rows, cols);
  coo.reserve(symmetric ? 2 * nnz : nnz);
  index_t seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    index_t r, c;
    real v = 1.0;
    FASTSC_CHECK(static_cast<bool>(ls >> r >> c),
                 "malformed MatrixMarket entry: " + line);
    if (!pattern) {
      FASTSC_CHECK(static_cast<bool>(ls >> v),
                   "missing value in MatrixMarket entry: " + line);
    }
    FASTSC_CHECK(r >= 1 && r <= rows && c >= 1 && c <= cols,
                 "MatrixMarket index out of range: " + line);
    coo.push(r - 1, c - 1, v);
    if (symmetric && r != c) coo.push(c - 1, r - 1, v);
    ++seen;
  }
  FASTSC_CHECK(seen == nnz, "MatrixMarket file truncated: " + path);
  return coo;
}

void write_matrix_market(const std::string& path, const sparse::Coo& coo) {
  std::ofstream out(path);
  FASTSC_CHECK(out.good(), "cannot open file for writing: " + path);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by fastsc\n";
  out << coo.rows << ' ' << coo.cols << ' ' << coo.nnz() << '\n';
  out.precision(17);
  for (usize e = 0; e < coo.values.size(); ++e) {
    out << coo.row_idx[e] + 1 << ' ' << coo.col_idx[e] + 1 << ' '
        << coo.values[e] << '\n';
  }
}

}  // namespace fastsc::data
