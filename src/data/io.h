// Text IO for graphs, point sets and label vectors.
//
// Formats are deliberately SNAP-compatible so the real FB/DBLP edge lists
// can be dropped into the benches: one "u v [w]" line per edge, '#' comments
// ignored.  Points are one row per line, whitespace-separated.
#pragma once

#include <string>

#include "common/precision.h"
#include "common/types.h"
#include "graph/grid_index.h"
#include "sparse/coo.h"

namespace fastsc::data {

/// Read an edge list ("u v" or "u v w" per line, '#' comments).  Node ids
/// are compacted to [0, n); `symmetrize` mirrors every edge.  Self loops are
/// dropped.  Missing weights default to 1.0.
[[nodiscard]] sparse::Coo read_edge_list(const std::string& path,
                                         bool symmetrize = true);

// Scalar output width is explicit in every writer: values are quantized
// through `storage` and printed with exactly enough significant digits for
// that rung to round-trip bit-for-bit through the matching reader (fp64: 17,
// fp32: 9, bf16: 5).  The former default of the stream's 6 digits silently
// truncated fp64 values below read-back equality.  Narrow writers also stamp
// a `fastsc-precision:` comment so the readers re-round parsed values onto
// the rung (parsing lands on the nearest binary64, one widening step away
// from the stored narrow value); files without the marker read back
// unchanged.

/// Write a COO matrix as "u v w" lines.
void write_edge_list(const std::string& path, const sparse::Coo& coo,
                     Precision storage = Precision::kFp64);

/// Write one label per line.
void write_labels(const std::string& path, const std::vector<index_t>& labels);

/// Read one label per line.
[[nodiscard]] std::vector<index_t> read_labels(const std::string& path);

/// Read a dense row-major matrix (whitespace-separated, one row per line).
/// Returns data and sets rows/cols.
[[nodiscard]] std::vector<real> read_points(const std::string& path,
                                            index_t& rows, index_t& cols);

/// Write a dense row-major matrix.
void write_points(const std::string& path, const real* data, index_t rows,
                  index_t cols, Precision storage = Precision::kFp64);

/// Read a Matrix Market file (coordinate format; real/integer/pattern
/// fields; general or symmetric storage — symmetric entries are mirrored).
/// 1-based indices per the spec.
[[nodiscard]] sparse::Coo read_matrix_market(const std::string& path);

/// Write a COO matrix in Matrix Market coordinate/real/general format.
void write_matrix_market(const std::string& path, const sparse::Coo& coo,
                         Precision storage = Precision::kFp64);

}  // namespace fastsc::data
