#include "data/powerlaw.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sparse/convert.h"

namespace fastsc::data {

PowerlawGraph make_powerlaw(const PowerlawParams& params) {
  const index_t n = params.n;
  FASTSC_CHECK(n >= 2, "need at least two nodes");
  FASTSC_CHECK(params.avg_degree > 0, "average degree must be positive");
  FASTSC_CHECK(params.exponent > 1, "degree exponent must exceed 1");

  // Zipf rank weights w_i ~ (i+1)^-alpha with alpha = 1/(gamma - 1): the
  // rank law whose induced degree tail has exponent gamma.  Prefix sums
  // drive the endpoint sampling.
  const real alpha = 1.0 / (params.exponent - 1.0);
  std::vector<real> prefix(static_cast<usize>(n));
  real total = 0;
  for (index_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<real>(i) + 1.0, -alpha);
    prefix[static_cast<usize>(i)] = total;
  }

  PowerlawGraph graph;
  graph.expected_degree.resize(static_cast<usize>(n));
  const real m = params.avg_degree * static_cast<real>(n) / 2.0;
  for (index_t i = 0; i < n; ++i) {
    const real w = std::pow(static_cast<real>(i) + 1.0, -alpha);
    // Each of the 2m endpoint draws lands on i with probability w_i / W.
    graph.expected_degree[static_cast<usize>(i)] = 2.0 * m * w / total;
  }

  Rng rng(params.seed);
  auto draw_node = [&]() {
    const real target = rng.uniform() * total;
    const auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    return static_cast<index_t>(it - prefix.begin());
  };

  sparse::Coo coo(n, n);
  const auto edges = static_cast<index_t>(m);
  coo.reserve(2 * edges);
  for (index_t e = 0; e < edges; ++e) {
    const index_t u = draw_node();
    const index_t v = draw_node();
    if (u == v) continue;  // reject self loops
    coo.push(u, v, params.edge_weight);
    coo.push(v, u, params.edge_weight);
  }
  // Merge duplicate edges (hubs collide often), then clamp the summed
  // values back to the uniform edge weight.
  sparse::sort_and_merge(coo);
  for (real& v : coo.values) v = params.edge_weight;

  graph.w = std::move(coo);
  return graph;
}

}  // namespace fastsc::data
