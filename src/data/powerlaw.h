// Power-law (Zipf-degree) synthetic graph generator, Chung-Lu style.
//
// Real-world similarity graphs — the social networks of the paper's Tables
// 4/6/7 — have heavy-tailed degree distributions, which is exactly the
// workload where row-split SpMV loses its balance: a handful of hub rows
// carry a large fraction of the nnz.  The SBM generator (data/sbm.h)
// produces near-uniform degrees, so benchmarks built on it cannot expose
// that imbalance.  This generator plants a Zipf weight w_i ~ (i+1)^-alpha
// per node and samples edge endpoints proportional to the weights
// (Chung & Lu 2002), giving an expected degree sequence with the same
// power-law tail; bench_spmv_formats' "skewed" case and the merge-path
// balance bench are built on it.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "sparse/coo.h"

namespace fastsc::data {

struct PowerlawParams {
  index_t n = 0;          ///< node count
  real avg_degree = 8.0;  ///< target mean degree (2m / n)
  /// Target degree-distribution exponent gamma (P(deg = d) ~ d^-gamma);
  /// 2.1 sits in the 2..3 band measured for real social graphs.  Internally
  /// the rank weights are w_i ~ (i+1)^(-1/(gamma-1)), the standard mapping
  /// from a rank (Zipf) law to a degree-tail law.
  real exponent = 2.1;
  std::uint64_t seed = 42;
  /// Weight assigned to every sampled edge.
  real edge_weight = 1.0;
};

struct PowerlawGraph {
  /// Symmetric adjacency (both directions stored), no self loops, no
  /// duplicate edges.
  sparse::Coo w;
  /// Expected (not realized) degree of each node under the model — handy
  /// for tests asserting the planted skew.
  std::vector<real> expected_degree;
};

/// Sample a graph: m = n * avg_degree / 2 endpoint pairs drawn independently
/// with P(node i) proportional to w_i, self loops rejected, duplicates
/// merged.  Deterministic for a fixed seed.
[[nodiscard]] PowerlawGraph make_powerlaw(const PowerlawParams& params);

}  // namespace fastsc::data
