#include "data/sbm.h"

#include <cmath>
#include <numeric>

#include "common/error.h"

namespace fastsc::data {

std::vector<index_t> equal_blocks(index_t n, index_t r) {
  FASTSC_CHECK(r >= 1 && r <= n, "block count must be in [1, n]");
  std::vector<index_t> sizes(static_cast<usize>(r), n / r);
  for (index_t i = 0; i < n % r; ++i) sizes[static_cast<usize>(i)] += 1;
  return sizes;
}

namespace {

/// Emit successes of a Bernoulli(p) process over [0, space) via geometric
/// skipping; visit(t) is called for each success index t.
template <class Visit>
void bernoulli_process(Rng& rng, std::uint64_t space, real p,
                       const Visit& visit) {
  if (p <= 0 || space == 0) return;
  std::uint64_t t = rng.geometric_skip(p);
  while (t < space) {
    visit(t);
    const std::uint64_t skip = rng.geometric_skip(p);
    if (skip >= space - t) break;  // avoid overflow on huge skips
    t += skip + 1;
  }
}

}  // namespace

SbmGraph make_sbm(const SbmParams& params) {
  const index_t r = static_cast<index_t>(params.block_sizes.size());
  FASTSC_CHECK(r >= 1, "at least one block required");
  FASTSC_CHECK(params.p_in >= 0 && params.p_in <= 1, "p_in must be in [0,1]");
  FASTSC_CHECK(params.p_out >= 0 && params.p_out <= 1,
               "p_out must be in [0,1]");

  std::vector<index_t> offsets(static_cast<usize>(r) + 1, 0);
  for (index_t b = 0; b < r; ++b) {
    FASTSC_CHECK(params.block_sizes[static_cast<usize>(b)] >= 1,
                 "block sizes must be positive");
    offsets[static_cast<usize>(b) + 1] =
        offsets[static_cast<usize>(b)] +
        params.block_sizes[static_cast<usize>(b)];
  }
  const index_t n = offsets.back();

  SbmGraph graph;
  graph.labels.assign(static_cast<usize>(n), 0);
  for (index_t b = 0; b < r; ++b) {
    for (index_t i = offsets[static_cast<usize>(b)];
         i < offsets[static_cast<usize>(b) + 1]; ++i) {
      graph.labels[static_cast<usize>(i)] = b;
    }
  }

  Rng rng(params.seed);
  sparse::Coo coo(n, n);

  auto add_edge = [&](index_t u, index_t v) {
    coo.push(u, v, params.edge_weight);
    coo.push(v, u, params.edge_weight);
  };

  // Within-block pairs: linearize the strict upper triangle of each block.
  for (index_t b = 0; b < r; ++b) {
    const index_t base = offsets[static_cast<usize>(b)];
    const std::uint64_t s =
        static_cast<std::uint64_t>(params.block_sizes[static_cast<usize>(b)]);
    const std::uint64_t space = s * (s - 1) / 2;
    bernoulli_process(rng, space, params.p_in, [&](std::uint64_t t) {
      // Invert the triangular index: find i such that
      // i*(2s-i-1)/2 <= t < (i+1)*(2s-i-2)/2.
      // Solve by the quadratic formula then fix up.
      const real fs = static_cast<real>(s);
      const real ft = static_cast<real>(t);
      auto i = static_cast<std::uint64_t>(
          fs - 0.5 - std::sqrt((fs - 0.5) * (fs - 0.5) - 2.0 * ft));
      auto row_start = [&](std::uint64_t ii) {
        return ii * (2 * s - ii - 1) / 2;
      };
      while (i > 0 && row_start(i) > t) --i;
      while (row_start(i + 1) <= t) ++i;
      const std::uint64_t j = i + 1 + (t - row_start(i));
      add_edge(base + static_cast<index_t>(i), base + static_cast<index_t>(j));
    });
  }

  // Cross-block pairs: for each ordered block pair a < b, the pair space is
  // the |a| x |b| rectangle.
  for (index_t a = 0; a < r; ++a) {
    const index_t base_a = offsets[static_cast<usize>(a)];
    const auto sa =
        static_cast<std::uint64_t>(params.block_sizes[static_cast<usize>(a)]);
    for (index_t b = a + 1; b < r; ++b) {
      const index_t base_b = offsets[static_cast<usize>(b)];
      const auto sb = static_cast<std::uint64_t>(
          params.block_sizes[static_cast<usize>(b)]);
      bernoulli_process(rng, sa * sb, params.p_out, [&](std::uint64_t t) {
        const auto i = static_cast<index_t>(t / sb);
        const auto j = static_cast<index_t>(t % sb);
        add_edge(base_a + i, base_b + j);
      });
    }
  }

  graph.w = std::move(coo);
  return graph;
}

real sbm_expected_edges(const SbmParams& params) {
  real within_pairs = 0;
  real total = 0;
  real n = 0;
  for (index_t s : params.block_sizes) {
    const real fs = static_cast<real>(s);
    within_pairs += fs * (fs - 1) / 2;
    n += fs;
  }
  const real all_pairs = n * (n - 1) / 2;
  total = within_pairs * params.p_in + (all_pairs - within_pairs) * params.p_out;
  return total;
}

}  // namespace fastsc::data
