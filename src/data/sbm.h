// Stochastic block model generator (Karrer & Newman, the model behind the
// paper's Syn200 dataset).
//
// Sampling uses geometric skipping so the cost is O(#edges), not O(n^2):
// within each Bernoulli(p) run over a linearized pair space, the distance to
// the next success is a geometric variate.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sparse/coo.h"

namespace fastsc::data {

struct SbmParams {
  /// Sizes of the r blocks (sum = n).
  std::vector<index_t> block_sizes;
  /// Edge probability within a block (paper Syn200: 0.3).
  real p_in = 0.3;
  /// Edge probability across blocks (paper Syn200: 0.01).
  real p_out = 0.01;
  std::uint64_t seed = 42;
  /// Weight assigned to every sampled edge.
  real edge_weight = 1.0;
};

struct SbmGraph {
  /// Symmetric adjacency (both directions stored), no self loops.
  sparse::Coo w;
  /// Planted block id per node — ground truth for quality metrics.
  std::vector<index_t> labels;
};

/// r equal blocks covering n nodes (remainder spread over the first blocks).
[[nodiscard]] std::vector<index_t> equal_blocks(index_t n, index_t r);

/// Sample a graph from the model.
[[nodiscard]] SbmGraph make_sbm(const SbmParams& params);

/// Expected number of undirected edges for the given parameters (used by the
/// generators' tests and by the social-graph calibration).
[[nodiscard]] real sbm_expected_edges(const SbmParams& params);

}  // namespace fastsc::data
