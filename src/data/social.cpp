#include "data/social.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace fastsc::data {

SocialParams fb_like_params(index_t n, index_t k, std::uint64_t seed) {
  SocialParams p;
  p.n = n;
  p.communities = k;
  p.mean_degree = 43.7;  // 2 * 88234 / 4039
  p.within_fraction = 0.92;
  p.size_skew = 0.8;
  p.seed = seed;
  return p;
}

SocialParams dblp_like_params(index_t n, index_t k, std::uint64_t seed) {
  SocialParams p;
  p.n = n;
  p.communities = k;
  p.mean_degree = 6.62;  // 2 * 1049866 / 317080
  p.within_fraction = 0.85;
  p.size_skew = 1.2;
  p.seed = seed;
  return p;
}

SbmGraph make_social_graph(const SocialParams& params) {
  FASTSC_CHECK(params.communities >= 1 && params.communities <= params.n,
               "community count must be in [1, n]");
  FASTSC_CHECK(params.within_fraction > 0 && params.within_fraction <= 1,
               "within_fraction must be in (0, 1]");
  Rng rng(params.seed);

  // Community sizes: weights w_c = u^(-skew) normalized to n, floor 2 nodes.
  const index_t r = params.communities;
  std::vector<real> weights(static_cast<usize>(r));
  real wsum = 0;
  for (index_t c = 0; c < r; ++c) {
    const real u = rng.uniform(0.05, 1.0);
    weights[static_cast<usize>(c)] =
        params.size_skew == 0 ? 1.0 : std::pow(u, -params.size_skew);
    wsum += weights[static_cast<usize>(c)];
  }
  std::vector<index_t> sizes(static_cast<usize>(r));
  index_t assigned = 0;
  for (index_t c = 0; c < r; ++c) {
    const auto s = std::max<index_t>(
        2, static_cast<index_t>(std::floor(
               weights[static_cast<usize>(c)] / wsum *
               static_cast<real>(params.n))));
    sizes[static_cast<usize>(c)] = s;
    assigned += s;
  }
  // Fix up the total to exactly n by adjusting the largest community.
  auto largest = std::max_element(sizes.begin(), sizes.end());
  *largest += params.n - assigned;
  FASTSC_CHECK(*largest >= 2, "size fix-up produced a degenerate community");

  // Calibrate probabilities to the target edge budget.
  const real target_edges =
      params.mean_degree * static_cast<real>(params.n) / 2.0;
  real within_pairs = 0;
  for (index_t s : sizes) {
    const real fs = static_cast<real>(s);
    within_pairs += fs * (fs - 1) / 2;
  }
  const real all_pairs = static_cast<real>(params.n) *
                         static_cast<real>(params.n - 1) / 2.0;
  const real cross_pairs = all_pairs - within_pairs;
  FASTSC_CHECK(within_pairs > 0, "degenerate community structure");

  SbmParams sbm;
  sbm.block_sizes = sizes;
  sbm.p_in = std::min<real>(1.0, params.within_fraction * target_edges /
                                     within_pairs);
  sbm.p_out = cross_pairs > 0
                  ? std::min<real>(1.0, (1.0 - params.within_fraction) *
                                            target_edges / cross_pairs)
                  : 0.0;
  sbm.seed = params.seed + 1;
  return make_sbm(sbm);
}

}  // namespace fastsc::data
