// Social-graph generators standing in for the SNAP FB and DBLP datasets.
//
// Both are planted-community graphs calibrated to the node/edge counts in
// the paper's Table II: FB-like (4039 nodes, ~88K edges, 10 communities,
// dense ego-network structure) and DBLP-like (large sparse co-authorship
// graph, many small communities with power-law-ish sizes).  Real SNAP edge
// lists can be substituted through data/io.h.
#pragma once

#include "data/sbm.h"

namespace fastsc::data {

struct SocialParams {
  index_t n = 4039;
  index_t communities = 10;
  /// Target mean degree (FB: ~43.7; DBLP: ~6.6).
  real mean_degree = 43.7;
  /// Fraction of edges that fall within communities (modularity knob).
  real within_fraction = 0.9;
  /// Pareto-ish exponent for community sizes; 0 = equal sizes.
  real size_skew = 1.0;
  std::uint64_t seed = 42;
};

/// FB-like defaults (paper Table II row 2).
[[nodiscard]] SocialParams fb_like_params(index_t n = 4039, index_t k = 10,
                                          std::uint64_t seed = 42);

/// DBLP-like defaults, scaled to n nodes and k communities
/// (paper: 317080 nodes, 1049866 edges, k = 500).
[[nodiscard]] SocialParams dblp_like_params(index_t n, index_t k,
                                            std::uint64_t seed = 42);

/// Generate the graph: community sizes are drawn from the skewed
/// distribution, then p_in/p_out are calibrated so the expected edge count
/// matches mean_degree * n / 2 split per within_fraction.
[[nodiscard]] SbmGraph make_social_graph(const SocialParams& params);

}  // namespace fastsc::data
