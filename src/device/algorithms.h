// Thrust-like device algorithms.
//
// The paper leans on the Thrust library for sort / transform / scan style
// primitives inside the k-means and graph-construction kernels; this header
// provides the equivalents over DeviceBuffer storage, executed on the device
// context's pool and metered as kernel time.
//
// All functions operate on raw device pointers (like thrust::device_ptr) and
// assume the caller keeps the data on one context.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.h"
#include "device/device.h"

namespace fastsc::device {

namespace detail {

/// Attribution site for a generic primitive: an enclosing AttrSiteScope (the
/// semantically meaningful caller, e.g. "sparse.sort_coo") wins over the
/// algo.* fallback name, so primitives invoked inside a tagged routine fold
/// into that routine's bucket instead of a generic one.
inline const char* algo_site(const char* site) noexcept {
  return obs::current_attr_site() != nullptr ? nullptr : site;
}

inline LaunchConfig algo_cfg(const char* site, double flops = -1.0,
                             double bytes_read = -1.0,
                             double bytes_written = -1.0) {
  LaunchConfig cfg;
  cfg.site = algo_site(site);
  cfg.flops = flops;
  cfg.bytes_read = bytes_read;
  cfg.bytes_written = bytes_written;
  return cfg;
}

inline obs::KernelCost algo_cost(const char* site, double flops,
                                 double bytes_read, double bytes_written) {
  obs::KernelCost cost;
  cost.site = algo_site(site);
  cost.flops = flops;
  cost.bytes_read = bytes_read;
  cost.bytes_written = bytes_written;
  return cost;
}

}  // namespace detail

/// Fill [out, out+n) with value.
template <class T>
void fill(DeviceContext& ctx, T* out, index_t n, T value) {
  launch(ctx, n, [=](index_t i) { out[i] = value; },
         detail::algo_cfg("algo.fill", static_cast<double>(n), 0.0,
                          static_cast<double>(n) * sizeof(T)));
}

/// out[i] = i + start.
template <class T>
void sequence(DeviceContext& ctx, T* out, index_t n, T start = T{0}) {
  launch(ctx, n, [=](index_t i) { out[i] = start + static_cast<T>(i); },
         detail::algo_cfg("algo.sequence", static_cast<double>(n), 0.0,
                          static_cast<double>(n) * sizeof(T)));
}

/// out[i] = op(in[i]).
template <class T, class U, class UnaryOp>
void transform(DeviceContext& ctx, const T* in, U* out, index_t n,
               const UnaryOp& op) {
  launch(ctx, n, [=](index_t i) { out[i] = op(in[i]); },
         detail::algo_cfg("algo.transform", static_cast<double>(n),
                          static_cast<double>(n) * sizeof(T),
                          static_cast<double>(n) * sizeof(U)));
}

/// out[i] = op(a[i], b[i]).
template <class T, class U, class V, class BinaryOp>
void transform(DeviceContext& ctx, const T* a, const U* b, V* out, index_t n,
               const BinaryOp& op) {
  launch(ctx, n, [=](index_t i) { out[i] = op(a[i], b[i]); },
         detail::algo_cfg("algo.transform", static_cast<double>(n),
                          static_cast<double>(n) * (sizeof(T) + sizeof(U)),
                          static_cast<double>(n) * sizeof(V)));
}

/// out[i] = in[map[i]].
template <class T, class I>
void gather(DeviceContext& ctx, const I* map, const T* in, T* out, index_t n) {
  launch(ctx, n, [=](index_t i) { out[i] = in[map[i]]; },
         detail::algo_cfg("algo.gather", static_cast<double>(n),
                          static_cast<double>(n) * (sizeof(I) + sizeof(T)),
                          static_cast<double>(n) * sizeof(T)));
}

/// Tree-style parallel reduction: combine(...combine(init, x0)..., xn-1).
/// combine must be associative and commutative-safe for the partials order.
template <class T, class Combine>
[[nodiscard]] T reduce(DeviceContext& ctx, const T* in, index_t n, T init,
                       const Combine& combine) {
  if (n <= 0) return init;
  WallTimer t;
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  T result = init;
  if (workers == 1) {
    for (index_t i = 0; i < n; ++i) result = combine(result, in[i]);
  } else {
    const index_t chunk = (n + workers - 1) / workers;
    std::vector<T> partials(static_cast<usize>(workers), init);
    std::function<void(usize)> job = [&](usize w) {
      const index_t lo = static_cast<index_t>(w) * chunk;
      const index_t hi = lo + chunk < n ? lo + chunk : n;
      T acc = init;
      for (index_t i = lo; i < hi; ++i) acc = combine(acc, in[i]);
      partials[w] = acc;
    };
    ctx.run_compute(job);
    for (const T& p : partials) result = combine(result, p);
  }
  ctx.record_kernel(t.seconds(), -1.0,
                    detail::algo_cost("algo.reduce", static_cast<double>(n),
                                      static_cast<double>(n) * sizeof(T),
                                      static_cast<double>(sizeof(T))));
  return result;
}

/// Sum reduction.
template <class T>
[[nodiscard]] T reduce_sum(DeviceContext& ctx, const T* in, index_t n) {
  return reduce(ctx, in, n, T{0}, [](T a, T b) { return a + b; });
}

/// Index of the minimum element (first occurrence); -1 for empty input.
template <class T>
[[nodiscard]] index_t min_element_index(DeviceContext& ctx, const T* in,
                                        index_t n) {
  if (n <= 0) return -1;
  struct Pair {
    T value;
    index_t index;
  };
  WallTimer t;
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  std::vector<Pair> partials(static_cast<usize>(workers),
                             Pair{in[0], index_t{0}});
  const index_t chunk = (n + workers - 1) / workers;
  std::function<void(usize)> job = [&](usize w) {
    const index_t lo = static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < n ? lo + chunk : n;
    if (lo >= hi) return;
    Pair best{in[lo], lo};
    for (index_t i = lo + 1; i < hi; ++i) {
      if (in[i] < best.value) best = Pair{in[i], i};
    }
    partials[w] = best;
  };
  if (workers == 1) {
    job(0);
  } else {
    ctx.run_compute(job);
  }
  Pair best = partials[0];
  for (const Pair& p : partials) {
    if (p.value < best.value || (p.value == best.value && p.index < best.index)) {
      best = p;
    }
  }
  ctx.record_kernel(
      t.seconds(), -1.0,
      detail::algo_cost("algo.min_element", static_cast<double>(n),
                        static_cast<double>(n) * sizeof(T),
                        static_cast<double>(sizeof(index_t))));
  return best.index;
}

/// Blocked parallel exclusive scan (prefix sums); returns the total.
template <class T>
T exclusive_scan(DeviceContext& ctx, const T* in, T* out, index_t n,
                 T init = T{0}) {
  if (n <= 0) return init;
  WallTimer t;
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  const index_t chunk = (n + workers - 1) / workers;
  std::vector<T> block_sums(static_cast<usize>(workers), T{0});
  // Pass 1: per-block local exclusive scans and block totals.
  std::function<void(usize)> pass1 = [&](usize w) {
    const index_t lo = static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < n ? lo + chunk : n;
    T acc = T{0};
    for (index_t i = lo; i < hi; ++i) {
      out[i] = acc;
      acc += in[i];
    }
    if (lo < hi) block_sums[w] = acc;
  };
  // Scan of the block totals (small, serial).
  // Pass 2: add each block's offset.
  if (workers == 1) {
    pass1(0);
  } else {
    ctx.run_compute(pass1);
  }
  std::vector<T> offsets(static_cast<usize>(workers), init);
  T running = init;
  for (usize w = 0; w < offsets.size(); ++w) {
    offsets[w] = running;
    running += block_sums[w];
  }
  std::function<void(usize)> pass2 = [&](usize w) {
    const index_t lo = static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < n ? lo + chunk : n;
    const T off = offsets[w];
    for (index_t i = lo; i < hi; ++i) out[i] += off;
  };
  if (workers == 1) {
    pass2(0);
  } else {
    ctx.run_compute(pass2);
  }
  ctx.record_kernel(
      t.seconds(), -1.0,
      detail::algo_cost("algo.scan", 2.0 * static_cast<double>(n),
                        static_cast<double>(n) * sizeof(T),
                        static_cast<double>(n) * sizeof(T)));
  return running;
}

/// Inclusive scan; returns the total.
template <class T>
T inclusive_scan(DeviceContext& ctx, const T* in, T* out, index_t n) {
  const T total = exclusive_scan(ctx, in, out, n);
  launch(ctx, n, [=](index_t i) { out[i] += in[i]; },
         detail::algo_cfg("algo.scan", static_cast<double>(n),
                          2.0 * static_cast<double>(n) * sizeof(T),
                          static_cast<double>(n) * sizeof(T)));
  return total;
}

/// Stable key-value sort by key (thrust::sort_by_key): per-worker chunks are
/// sorted in parallel, then merged pairwise.
template <class K, class V>
void sort_by_key(DeviceContext& ctx, K* keys, V* values, index_t n) {
  if (n <= 1) return;
  WallTimer t;
  const double pair_bytes =
      static_cast<double>(n) * (sizeof(K) + sizeof(V));
  // Pack into pairs for cache-friendly merging.
  std::vector<std::pair<K, V>> tmp(static_cast<usize>(n));
  launch(ctx, n, [&](index_t i) {
    tmp[static_cast<usize>(i)] = {keys[i], values[i]};
  }, detail::algo_cfg("algo.sort_by_key", static_cast<double>(n), pair_bytes,
                      pair_bytes));
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  const index_t chunk = (n + workers - 1) / workers;
  auto cmp = [](const std::pair<K, V>& a, const std::pair<K, V>& b) {
    return a.first < b.first;
  };
  std::function<void(usize)> sort_job = [&](usize w) {
    const index_t lo = static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < n ? lo + chunk : n;
    if (lo < hi) {
      std::stable_sort(tmp.begin() + lo, tmp.begin() + hi, cmp);
    }
  };
  if (workers == 1) {
    sort_job(0);
  } else {
    ctx.run_compute(sort_job);
  }
  // Pairwise merge passes (log(workers) of them).
  for (index_t width = chunk; width < n; width *= 2) {
    for (index_t lo = 0; lo + width < n; lo += 2 * width) {
      const index_t mid = lo + width;
      const index_t hi = std::min(lo + 2 * width, n);
      std::inplace_merge(tmp.begin() + lo, tmp.begin() + mid, tmp.begin() + hi,
                         cmp);
    }
  }
  launch(ctx, n, [&](index_t i) {
    keys[i] = tmp[static_cast<usize>(i)].first;
    values[i] = tmp[static_cast<usize>(i)].second;
  }, detail::algo_cfg("algo.sort_by_key", static_cast<double>(n), pair_bytes,
                      pair_bytes));
  const double comparisons =
      static_cast<double>(n) *
      std::max(1.0, std::log2(static_cast<double>(n)));
  ctx.record_kernel(t.seconds(), -1.0,
                    detail::algo_cost("algo.sort_by_key", comparisons,
                                      pair_bytes, pair_bytes));
}

/// reduce_by_key over sorted keys: writes unique keys and per-key sums,
/// returns the number of segments.  (thrust::reduce_by_key)
template <class K, class V>
index_t reduce_by_key(DeviceContext& ctx, const K* keys, const V* values,
                      index_t n, K* out_keys, V* out_sums) {
  if (n <= 0) return 0;
  WallTimer t;
  index_t seg = 0;
  K current = keys[0];
  V acc = values[0];
  for (index_t i = 1; i < n; ++i) {
    FASTSC_ASSERT(!(keys[i] < current));  // must be sorted
    if (keys[i] == current) {
      acc += values[i];
    } else {
      out_keys[seg] = current;
      out_sums[seg] = acc;
      ++seg;
      current = keys[i];
      acc = values[i];
    }
  }
  out_keys[seg] = current;
  out_sums[seg] = acc;
  ++seg;
  ctx.record_kernel(
      t.seconds(), -1.0,
      detail::algo_cost("algo.reduce_by_key", static_cast<double>(n),
                        static_cast<double>(n) * (sizeof(K) + sizeof(V)),
                        static_cast<double>(seg) * (sizeof(K) + sizeof(V))));
  return seg;
}

/// Count elements satisfying pred.
template <class T, class Pred>
[[nodiscard]] index_t count_if(DeviceContext& ctx, const T* in, index_t n,
                               const Pred& pred) {
  if (n <= 0) return 0;
  WallTimer t;
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  std::vector<index_t> partials(static_cast<usize>(workers), 0);
  const index_t chunk = (n + workers - 1) / workers;
  std::function<void(usize)> job = [&](usize w) {
    const index_t lo = static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < n ? lo + chunk : n;
    index_t c = 0;
    for (index_t i = lo; i < hi; ++i) {
      if (pred(in[i])) ++c;
    }
    partials[w] = c;
  };
  if (workers == 1) {
    job(0);
  } else {
    ctx.run_compute(job);
  }
  index_t total = 0;
  for (index_t p : partials) total += p;
  ctx.record_kernel(
      t.seconds(), -1.0,
      detail::algo_cost("algo.count_if", static_cast<double>(n),
                        static_cast<double>(n) * sizeof(T),
                        static_cast<double>(sizeof(index_t))));
  return total;
}

}  // namespace fastsc::device
