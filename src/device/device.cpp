#include "device/device.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "common/cancel.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fastsc::device {

namespace {

/// Metering target for the calling thread: a stream's clock inside a
/// ClockScope, the context's host clock otherwise.  One slot suffices —
/// a thread executes ops for at most one stream at a time.
thread_local VirtualClock* t_current_clock = nullptr;

}  // namespace

// --- PinnedPool -------------------------------------------------------------

PinnedPool::Block PinnedPool::acquire(usize bytes) {
  std::lock_guard lock(mu_);
  stats_.acquires += 1;
  // Smallest free block that fits; avoids pinning a large block under a
  // small recurring copy.
  usize best = free_.size();
  for (usize i = 0; i < free_.size(); ++i) {
    if (free_[i].capacity() >= bytes &&
        (best == free_.size() || free_[i].capacity() < free_[best].capacity())) {
      best = i;
    }
  }
  Block block;
  if (best != free_.size()) {
    stats_.reuses += 1;
    stats_.allocated_bytes -= free_[best].capacity();
    block = std::move(free_[best]);
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
  } else {
    stats_.allocated_blocks += 1;
  }
  block.resize(bytes);
  return block;
}

void PinnedPool::release(Block&& block) {
  std::lock_guard lock(mu_);
  stats_.allocated_bytes += block.capacity();
  stats_.peak_allocated_bytes =
      std::max(stats_.peak_allocated_bytes, stats_.allocated_bytes);
  free_.push_back(std::move(block));
}

PinnedPool::Stats PinnedPool::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void PinnedPool::clear() {
  std::lock_guard lock(mu_);
  free_.clear();
  stats_.allocated_bytes = 0;
  stats_.allocated_blocks = 0;
}

// --- DeviceContext: metering + virtual timeline -----------------------------

DeviceContext::ClockScope::ClockScope(VirtualClock& clock)
    : previous_(t_current_clock) {
  t_current_clock = &clock;
}

DeviceContext::ClockScope::~ClockScope() { t_current_clock = previous_; }

VirtualClock& DeviceContext::current_clock_locked() {
  return t_current_clock != nullptr ? *t_current_clock : host_clock_;
}

double DeviceContext::current_clock_now() const {
  std::lock_guard lock(meter_mu_);
  return t_current_clock != nullptr ? t_current_clock->now : host_clock_.now;
}

void DeviceContext::sync_current_clock_to(double t) {
  std::lock_guard lock(meter_mu_);
  VirtualClock& clk = current_clock_locked();
  clk.now = std::max(clk.now, t);
}

void DeviceContext::advance_clock_to(VirtualClock& clock, double floor) {
  std::lock_guard lock(meter_mu_);
  clock.now = std::max(clock.now, floor);
}

double DeviceContext::clock_now(const VirtualClock& clock) const {
  std::lock_guard lock(meter_mu_);
  return clock.now;
}

DeviceCounters DeviceContext::counters_snapshot() const {
  std::lock_guard lock(meter_mu_);
  return counters_;
}

void DeviceContext::prune_intervals_locked() {
  // A future copy starts at or after link_free_at_, a future kernel at or
  // after compute_free_at_; intervals entirely behind the opposite frontier
  // can never overlap new work and have already been paired with the past.
  std::erase_if(copy_intervals_,
                [this](const Interval& iv) { return iv.end <= compute_free_at_; });
  std::erase_if(kernel_intervals_,
                [this](const Interval& iv) { return iv.end <= link_free_at_; });
}

void DeviceContext::meter_transfer(usize bytes, double measured_seconds,
                                   CopyDir dir) {
  std::lock_guard lock(meter_mu_);
  const double modeled = dir == CopyDir::kD2d ? model_.d2d_seconds_for(bytes)
                                              : model_.seconds_for(bytes);
  VirtualClock& clk = current_clock_locked();
  const double begin = std::max(clk.now, link_free_at_);
  const double end = begin + modeled;
  clk.now = end;
  link_free_at_ = end;

  switch (dir) {
    case CopyDir::kH2d:
      counters_.bytes_h2d += bytes;
      counters_.transfers_h2d += 1;
      break;
    case CopyDir::kD2h:
      counters_.bytes_d2h += bytes;
      counters_.transfers_d2h += 1;
      break;
    case CopyDir::kD2d:
      counters_.bytes_d2d += bytes;
      counters_.transfers_d2d += 1;
      counters_.modeled_d2d_seconds += modeled;
      break;
  }
  counters_.measured_transfer_seconds += measured_seconds;
  counters_.modeled_transfer_seconds += modeled;
  if (t_current_clock != nullptr) counters_.async_copies += 1;

  // Overlap against every kernel interval still near the frontier.  Kernel
  // intervals are pairwise disjoint (one compute engine), so the sum is the
  // measure of this window's intersection with kernel busy time — each
  // overlap window counted exactly once.
  for (const Interval& k : kernel_intervals_) {
    const double ov = std::min(end, k.end) - std::max(begin, k.begin);
    if (ov > 0) {
      counters_.overlapped_seconds += ov;
      switch (dir) {
        case CopyDir::kH2d: counters_.overlapped_h2d_seconds += ov; break;
        case CopyDir::kD2h: counters_.overlapped_d2h_seconds += ov; break;
        case CopyDir::kD2d: counters_.overlapped_d2d_seconds += ov; break;
      }
    }
  }
  copy_intervals_.push_back(Interval{begin, end, dir});
  prune_intervals_locked();

  // Emit the *exact* interval the overlap accounting above used, on this
  // device's virtual link track, so a trace consumer can recompute
  // overlapped_seconds from the JSON (tools/check_trace.py does).
  // Zero-length transfers carry no overlap information; skip them.
  if (obs::trace_enabled() && end > begin) {
    obs::trace().complete(
        obs::kVirtualPid, link_tid_, copy_dir_name(dir), "transfer",
        begin * 1e6, (end - begin) * 1e6,
        {{"bytes", static_cast<double>(bytes)},
         {"measured_seconds", measured_seconds}});
  }
}

void DeviceContext::attribute_transfer(const char* site, usize bytes,
                                       CopyDir dir) {
  // Same pure function of `bytes` that meter_transfer charged to
  // modeled_transfer_seconds, so per-site sums reproduce the counter total.
  const double modeled = dir == CopyDir::kD2d ? model_.d2d_seconds_for(bytes)
                                              : model_.seconds_for(bytes);
  // An enclosing stage scope claims the traffic; otherwise fall back to the
  // copy mechanism's site, then to the direction-generic bucket.
  const char* scope = obs::current_attr_site();
  const char* resolved = scope != nullptr   ? scope
                         : site != nullptr  ? site
                         : dir == CopyDir::kH2d ? "transfer.h2d"
                         : dir == CopyDir::kD2h ? "transfer.d2h"
                                                : "transfer.d2d";
  attribution_.record_transfer(resolved, bytes, modeled, dir);
  if (obs::AttributionRegistry* bound = obs::bound_attribution();
      bound != nullptr && bound != &attribution_) {
    bound->record_transfer(resolved, bytes, modeled, dir);
  }
}

void DeviceContext::attribute_kernel(const obs::KernelCost& cost,
                                     double duration) {
  const char* scope = obs::current_attr_site();
  const char* resolved = cost.site != nullptr ? cost.site
                         : scope != nullptr  ? scope
                                             : "unattributed";
  // Direct record_kernel callers (reductions, scans, sorts) may not carry a
  // cost; floor flops at one so every launch contributes nonzero work.
  const double flops = cost.flops >= 0 ? cost.flops : 1.0;
  const double bytes_read = cost.bytes_read >= 0 ? cost.bytes_read : 0.0;
  const double bytes_written = cost.bytes_written >= 0 ? cost.bytes_written
                                                       : 0.0;
  attribution_.record_kernel(resolved, duration, flops, bytes_read,
                             bytes_written, cost.bytes_per_scalar);
  if (obs::AttributionRegistry* bound = obs::bound_attribution();
      bound != nullptr && bound != &attribution_) {
    bound->record_kernel(resolved, duration, flops, bytes_read, bytes_written,
                         cost.bytes_per_scalar);
  }
}

void DeviceContext::record_h2d(usize bytes, double measured_seconds,
                               const char* site) {
  // Watchdog overrun check before metering, with no locks held (the
  // governor's lock orders strictly before meter_mu_).
  cancel::note_transfer("transfer.h2d", measured_seconds,
                        model_.seconds_for(bytes));
  meter_transfer(bytes, measured_seconds, CopyDir::kH2d);
  attribute_transfer(site, bytes, CopyDir::kH2d);
}

void DeviceContext::record_d2h(usize bytes, double measured_seconds,
                               const char* site) {
  cancel::note_transfer("transfer.d2h", measured_seconds,
                        model_.seconds_for(bytes));
  meter_transfer(bytes, measured_seconds, CopyDir::kD2h);
  attribute_transfer(site, bytes, CopyDir::kD2h);
}

void DeviceContext::record_d2d(usize bytes, double measured_seconds,
                               const char* site) {
  cancel::note_transfer("transfer.d2d", measured_seconds,
                        model_.d2d_seconds_for(bytes));
  meter_transfer(bytes, measured_seconds, CopyDir::kD2d);
  attribute_transfer(site, bytes, CopyDir::kD2d);
}

void DeviceContext::record_kernel(double seconds, double modeled_override,
                                  const obs::KernelCost& cost) {
  const double duration = modeled_override >= 0 ? modeled_override : seconds;
  {
    std::lock_guard lock(meter_mu_);
    VirtualClock& clk = current_clock_locked();
    const double begin = std::max(clk.now, compute_free_at_);
    const double end = begin + duration;
    clk.now = end;
    compute_free_at_ = end;

    counters_.kernel_seconds += duration;
    counters_.kernel_launches += 1;
    if (t_current_clock != nullptr) counters_.async_kernel_launches += 1;

    for (const Interval& c : copy_intervals_) {
      const double ov = std::min(end, c.end) - std::max(begin, c.begin);
      if (ov > 0) {
        counters_.overlapped_seconds += ov;
        switch (c.dir) {
          case CopyDir::kH2d: counters_.overlapped_h2d_seconds += ov; break;
          case CopyDir::kD2h: counters_.overlapped_d2h_seconds += ov; break;
          case CopyDir::kD2d: counters_.overlapped_d2d_seconds += ov; break;
        }
      }
    }
    kernel_intervals_.push_back(Interval{begin, end, CopyDir::kH2d});
    prune_intervals_locked();

    if (obs::trace_enabled() && end > begin) {
      obs::trace().complete(obs::kVirtualPid, compute_tid_, "kernel",
                            "kernel", begin * 1e6, (end - begin) * 1e6,
                            {{"measured_seconds", seconds}});
    }
  }
  attribute_kernel(cost, duration);
}

void DeviceContext::record_alloc(usize bytes) {
  // Fault check outside meter_mu_ — the injector has its own lock, and an
  // injected OOM must leave the accounting untouched.
  if (fault::triggered("device.alloc")) {
    DeviceOutOfMemory e("injected device out of memory: requested " +
                        std::to_string(bytes) + " bytes");
    e.annotate_site("device.alloc");
    throw e;
  }
  std::lock_guard lock(meter_mu_);
  if (memory_limit_bytes_ != 0 &&
      counters_.live_bytes + bytes > memory_limit_bytes_) {
    throw DeviceOutOfMemory(bytes, counters_.live_bytes, memory_limit_bytes_);
  }
  counters_.live_bytes += bytes;
  counters_.total_allocations += 1;
  if (counters_.live_bytes > counters_.peak_bytes) {
    counters_.peak_bytes = counters_.live_bytes;
  }
}

void DeviceContext::record_free(usize bytes) noexcept {
  std::lock_guard lock(meter_mu_);
  counters_.live_bytes =
      counters_.live_bytes >= bytes ? counters_.live_bytes - bytes : 0;
}

void DeviceContext::note_transfer_retry(std::string_view site,
                                        double backoff_seconds) {
  {
    std::lock_guard lock(meter_mu_);
    counters_.transfer_retries += 1;
    VirtualClock& clk = current_clock_locked();
    clk.now += backoff_seconds;
  }
  obs::Counter& total = obs::metrics().counter("fault.transfer_retry");
  total.add();
  obs::metrics().counter("fault.transfer_retry." + std::string(site)).add();
  if (obs::trace_enabled()) {
    obs::trace().counter("fault.transfer_retry",
                         static_cast<double>(total.value()),
                         obs::wall_now_us());
  }
  FASTSC_LOG_WARN("transient transfer fault at '"
                  << site << "': retrying after " << backoff_seconds * 1e6
                  << " us backoff");
}

void DeviceContext::run_compute(const std::function<void(usize)>& job) {
  std::lock_guard lock(compute_mu_);
  pool_.run_workers(job);
}

std::string DeviceContext::description() const {
  std::ostringstream os;
  os << "fastsc simulated device: " << pool_.worker_count()
     << " worker thread(s), modeled PCIe "
     << model_.bandwidth_bytes_per_sec / 1e9 << " GB/s x "
     << model_.efficiency << " efficiency, "
     << model_.latency_seconds * 1e6 << " us latency";
  return os.str();
}

DeviceContext& default_device() {
  static DeviceContext ctx;
  return ctx;
}

}  // namespace fastsc::device
