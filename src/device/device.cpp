#include "device/device.h"

#include <sstream>
#include <thread>

namespace fastsc::device {

std::string DeviceContext::description() const {
  std::ostringstream os;
  os << "fastsc simulated device: " << pool_.worker_count()
     << " worker thread(s), modeled PCIe "
     << model_.bandwidth_bytes_per_sec / 1e9 << " GB/s x "
     << model_.efficiency << " efficiency, "
     << model_.latency_seconds * 1e6 << " us latency";
  return os.str();
}

DeviceContext& default_device() {
  static DeviceContext ctx;
  return ctx;
}

}  // namespace fastsc::device
