// Simulated CUDA-style device runtime.
//
// This module stands in for the NVIDIA Tesla K20c + CUDA 7.5 stack the paper
// runs on (DESIGN.md §2).  It preserves the *structure* of a CUDA program:
//
//   * device memory is a distinct allocation space (DeviceBuffer<T>) that
//     host code may only reach through explicit copies,
//   * every host<->device copy is metered: bytes, transfer count, measured
//     wall time of the staging memcpy, and modeled PCIe time from
//     TransferModel — this drives the Table VII reproduction,
//   * kernels are launched over a (grid, block) decomposition and execute
//     data-parallel on a worker thread pool; kernel wall time is metered,
//   * the default stream is synchronous: launch() returns when the kernel
//     has completed, matching the paper's use of the default CUDA stream,
//   * asynchronous streams (device/stream.h) carry ordered work queues whose
//     copies and kernels are attributed to a *virtual timeline*: each copy
//     occupies the modeled PCIe link, each kernel occupies the compute
//     engine, and the window where a transfer and a kernel coincide is
//     accounted once as DeviceCounters::overlapped_seconds.  This is how the
//     overlap ablation quantifies hiding Table VII's communication behind
//     computation.
//
// On the evaluation machine the pool may have a single worker; the runtime
// is still exercised end-to-end (decomposition, staging, accounting), which
// is the point of the substitution.
#pragma once

#include <cstring>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include <stdexcept>

#include "common/buffer.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/types.h"
#include "device/transfer_model.h"
#include "fault/fault.h"
#include "obs/attribution.h"
#include "obs/trace.h"

namespace fastsc::device {

/// Direction of a metered copy; kD2d is a peer transfer between two devices
/// of a DeviceGroup (device/device_group.h), metered on the destination.
using CopyDir = obs::TransferDir;

[[nodiscard]] constexpr const char* copy_dir_name(CopyDir dir) noexcept {
  return dir == CopyDir::kH2d   ? "h2d"
         : dir == CopyDir::kD2h ? "d2h"
                                : "d2d";
}

/// Base of the device error hierarchy.  Carries an optional originating
/// site so sticky stream errors can surface *where* the first failure
/// happened when rethrown from a later synchronize().
class DeviceError : public std::runtime_error {
 public:
  explicit DeviceError(const std::string& message)
      : std::runtime_error(message) {}

  /// Record the failing site once (first annotation wins — the sticky
  /// error keeps its original location even if re-annotated downstream).
  void annotate_site(const std::string& site) {
    if (site_.empty() && !site.empty()) {
      site_ = site;
      annotated_ = std::string(std::runtime_error::what()) +
                   " [site: " + site_ + "]";
    }
  }

  [[nodiscard]] const std::string& site() const noexcept { return site_; }

  [[nodiscard]] const char* what() const noexcept override {
    return annotated_.empty() ? std::runtime_error::what()
                              : annotated_.c_str();
  }

  /// Transient errors (transfer glitches) are retryable; permanent ones
  /// (OOM) escalate straight to the degradation ladder.
  [[nodiscard]] virtual bool transient() const noexcept { return false; }

 private:
  std::string site_;
  std::string annotated_;
};

/// Thrown when an allocation would exceed the context's device-memory
/// budget (cudaErrorMemoryAllocation equivalent).
class DeviceOutOfMemory : public DeviceError {
 public:
  DeviceOutOfMemory(usize requested, usize live, usize limit)
      : DeviceError(
            "simulated device out of memory: requested " +
            std::to_string(requested) + " bytes with " + std::to_string(live) +
            " live of " + std::to_string(limit) + " budget") {}

  explicit DeviceOutOfMemory(const std::string& message)
      : DeviceError(message) {}
};

/// Transient host<->device transfer failure (injected; the real-hardware
/// analogues are ECC retries and link CRC replays).  Absorbed by the
/// bounded retry in run_transfer_with_retry below.
class DeviceTransferError : public DeviceError {
 public:
  DeviceTransferError(const std::string& site, usize bytes, CopyDir dir)
      : DeviceError("transient device transfer error at " + site + " (" +
                    std::to_string(bytes) + " bytes " + copy_dir_name(dir) +
                    ")") {}

  DeviceTransferError(const std::string& site, usize bytes, bool h2d)
      : DeviceTransferError(site, bytes,
                            h2d ? CopyDir::kH2d : CopyDir::kD2h) {}

  [[nodiscard]] bool transient() const noexcept override { return true; }
};

/// Silent-data-corruption *detection* surfaced as an error: an ABFT
/// checksum, invariant sentinel or CRC frame found a payload that no longer
/// matches what was computed/stored.  The payload itself produced no fault —
/// this error is raised by the verifier.  Permanent by default so the
/// degradation ladders escalate (recompute-block already failed by the time
/// one of these is thrown); `transient_` is set for staged-transfer CRC
/// mismatches, where re-running the upload inside run_transfer_with_retry
/// is the designed recovery.
class DataIntegrityError : public DeviceError {
 public:
  explicit DataIntegrityError(const std::string& message,
                              bool transient = false)
      : DeviceError("data integrity: " + message), transient_(transient) {}

  [[nodiscard]] bool transient() const noexcept override {
    return transient_;
  }

 private:
  bool transient_ = false;
};

/// Running totals kept by a DeviceContext.  Snapshot with
/// DeviceContext::counters_snapshot() when streams may be in flight.
struct DeviceCounters {
  usize bytes_h2d = 0;
  usize bytes_d2h = 0;
  /// Peer-to-peer traffic received from other devices of a DeviceGroup
  /// (metered on the destination context).
  usize bytes_d2d = 0;
  usize transfers_h2d = 0;
  usize transfers_d2h = 0;
  usize transfers_d2d = 0;
  /// Wall time actually spent staging (host memcpy in this simulation).
  double measured_transfer_seconds = 0;
  /// Modeled link time from the TransferModel: PCIe copies plus peer (D2D)
  /// copies — both occupy this device's single link engine.
  double modeled_transfer_seconds = 0;
  /// The D2D slice of modeled_transfer_seconds (already included above).
  double modeled_d2d_seconds = 0;
  /// Time spent inside kernel bodies (measured wall time, unless a launch
  /// supplied LaunchConfig::modeled_seconds).
  double kernel_seconds = 0;
  usize kernel_launches = 0;
  /// Virtual-timeline seconds during which a PCIe transfer and a kernel were
  /// in flight simultaneously.  Each overlap window is counted once (link
  /// and compute engine are each serialized, so transfer intervals are
  /// pairwise disjoint, as are kernel intervals), which makes
  ///   modeled pipeline time = kernel_seconds + modeled_transfer_seconds
  ///                           - overlapped_seconds
  /// the busy-time of the two engines combined.  Split by copy direction so
  /// benches can show which staging leg hid behind compute.
  double overlapped_seconds = 0;
  double overlapped_h2d_seconds = 0;
  double overlapped_d2h_seconds = 0;
  double overlapped_d2d_seconds = 0;
  /// Operations issued through streams (subset of the totals above).
  usize async_copies = 0;
  usize async_kernel_launches = 0;
  /// Transient transfer faults absorbed by the bounded retry (each retry
  /// also charges its backoff to the retrying clock).
  usize transfer_retries = 0;
  /// Device-memory accounting.
  usize live_bytes = 0;
  usize peak_bytes = 0;
  usize total_allocations = 0;

  /// kernel + modeled PCIe with every transfer/compute overlap counted once
  /// — the modeled end-to-end busy time of the device.
  [[nodiscard]] double modeled_pipeline_seconds() const noexcept {
    return kernel_seconds + modeled_transfer_seconds - overlapped_seconds;
  }

  void reset() { *this = DeviceCounters{}; }
};

/// A virtual clock, in modeled seconds since context creation.  The host
/// thread of control owns one (inside DeviceContext) and every Stream owns
/// one; all are guarded by the context's metering mutex.
struct VirtualClock {
  double now = 0;
};

/// Recycling pool of host staging buffers — the stand-in for CUDA pinned
/// (page-locked) memory.  Stream::copy_to_device_async snapshots the
/// caller's data into a pool block at enqueue time, so the caller may reuse
/// its buffer immediately; the block returns to the pool once the copy
/// retires.  Thread-safe.
class PinnedPool {
 public:
  using Block = std::vector<unsigned char>;

  struct Stats {
    usize acquires = 0;        ///< total acquire() calls
    usize reuses = 0;          ///< acquires served from the free list
    usize allocated_blocks = 0;
    usize allocated_bytes = 0;  ///< capacity currently owned by the pool
    usize peak_allocated_bytes = 0;
  };

  /// A block with capacity >= bytes, sized to exactly `bytes`.
  [[nodiscard]] Block acquire(usize bytes);

  /// Return a block to the free list for reuse.
  void release(Block&& block);

  [[nodiscard]] Stats stats() const;

  /// Drop all free blocks (cudaFreeHost equivalent).
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<Block> free_;
  Stats stats_;
};

/// Bounded retry-with-backoff for *transient* transfer errors
/// (DeviceTransferError::transient()).  The backoff doubles per attempt and
/// is charged to the retrying thread's virtual clock, so fault-injected
/// runs stay deterministic on the modeled timeline.
struct TransferRetryPolicy {
  index_t max_retries = 3;
  double backoff_seconds = 25e-6;
};

/// A simulated GPU: an executor plus metering.  The metering and the
/// virtual timeline are thread-safe so streams (device/stream.h) can retire
/// work concurrently with the host; kernel execution itself is serialized
/// on the compute engine (one pool), like a single-SM-partition GPU.
class DeviceContext {
 public:
  /// workers == 0 selects hardware concurrency.
  explicit DeviceContext(usize workers = 0, TransferModel model = {})
      : pool_(workers), model_(model) {
    attribution_.set_roofline(obs::make_roofline(
        model_.bandwidth_bytes_per_sec * model_.efficiency));
  }

  /// Device-memory budget in bytes; 0 = unlimited.  The paper's K20c has
  /// 5 GB — set this to study out-of-core behaviour (the chunked builders
  /// in graph/build.h stay within any budget).
  void set_memory_limit(usize bytes) noexcept { memory_limit_bytes_ = bytes; }
  [[nodiscard]] usize memory_limit() const noexcept {
    return memory_limit_bytes_;
  }

  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] const TransferModel& transfer_model() const noexcept {
    return model_;
  }
  void set_transfer_model(TransferModel m) {
    model_ = m;
    attribution_.set_roofline(obs::make_roofline(
        model_.bandwidth_bytes_per_sec * model_.efficiency));
  }

  void set_transfer_retry(TransferRetryPolicy p) noexcept { retry_ = p; }
  [[nodiscard]] const TransferRetryPolicy& transfer_retry() const noexcept {
    return retry_;
  }

  /// Meter one absorbed transient transfer fault: bump
  /// DeviceCounters::transfer_retries, charge the backoff to the current
  /// thread's virtual clock, and publish fault.transfer_retry counters.
  void note_transfer_retry(std::string_view site, double backoff_seconds);

  /// Direct counter access: safe while no stream work is in flight (the
  /// historical single-threaded contract).  Prefer counters_snapshot()
  /// around async regions.
  [[nodiscard]] DeviceCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const DeviceCounters& counters() const noexcept {
    return counters_;
  }

  /// Consistent copy of the counters under the metering lock.
  [[nodiscard]] DeviceCounters counters_snapshot() const;

  /// Position on the deterministic transfer timeline: cumulative modeled
  /// transfer seconds (a pure function of the bytes moved so far).  This is
  /// the virtual-now source for cancel::RunBudget virtual limits — identical
  /// across runs, thread counts, and sanitizers.
  [[nodiscard]] double modeled_transfer_seconds_now() const {
    return counters_snapshot().modeled_transfer_seconds;
  }

  [[nodiscard]] PinnedPool& staging_pool() noexcept { return staging_pool_; }

  /// Human-readable device description for Table I style output.
  [[nodiscard]] std::string description() const;

  // --- metering hooks (used by DeviceBuffer, launch, and streams) ---------
  //
  // Each record_* call both updates the running totals and places the
  // operation on the virtual timeline: copies occupy the PCIe link for
  // their modeled duration, kernels occupy the compute engine for their
  // measured (or overridden) duration.  The interval is anchored at the
  // calling thread's clock — a stream's clock when invoked from inside a
  // stream op (see ClockScope), the host clock otherwise — so overlap
  // between concurrent streams and the host is attributed exactly once.
  //
  // Every call also feeds the cost-attribution registry (and the
  // thread-bound per-job registry, if any) with the *same* durations the
  // counters accumulated, so per-site sums reproduce the totals.  `site`
  // names the copy mechanism; an enclosing obs::AttrSiteScope overrides it.
  void record_h2d(usize bytes, double measured_seconds,
                  const char* site = nullptr);
  void record_d2h(usize bytes, double measured_seconds,
                  const char* site = nullptr);
  /// Peer copy *into* this device from another device of a DeviceGroup.
  /// Occupies this device's link engine for the TransferModel's D2D
  /// duration; the group's copy_peer is the only intended caller.
  void record_d2d(usize bytes, double measured_seconds,
                  const char* site = nullptr);
  /// `modeled_override` >= 0 replaces the duration on the virtual timeline
  /// and in kernel_seconds (deterministic tests, future kernel cost models).
  void record_kernel(double seconds, double modeled_override = -1.0,
                     const obs::KernelCost& cost = {});
  void record_alloc(usize bytes);
  void record_free(usize bytes) noexcept;

  /// Context-lifetime cost attribution (per-site bytes/flops/seconds).
  [[nodiscard]] obs::AttributionRegistry& attribution() noexcept {
    return attribution_;
  }
  [[nodiscard]] const obs::AttributionRegistry& attribution() const noexcept {
    return attribution_;
  }

  /// Run a bulk job on the worker pool under the compute-engine lock.  All
  /// device kernels funnel through here so concurrent streams never race on
  /// the shared pool's dispatch state.
  void run_compute(const std::function<void(usize)>& job);

  // --- virtual timeline plumbing (used by Stream/Event) -------------------

  /// Route this thread's metering to `clock` for the scope's lifetime.
  class ClockScope {
   public:
    explicit ClockScope(VirtualClock& clock);
    ~ClockScope();
    ClockScope(const ClockScope&) = delete;
    ClockScope& operator=(const ClockScope&) = delete;

   private:
    VirtualClock* previous_;
  };

  /// The clock metering on this thread currently targets (host clock unless
  /// inside a ClockScope).
  [[nodiscard]] double current_clock_now() const;

  /// Advance the current thread's clock to at least `t` (event wait,
  /// stream synchronize join points).
  void sync_current_clock_to(double t);

  /// Advance `clock` to at least `floor` (op issue-time lower bound).
  void advance_clock_to(VirtualClock& clock, double floor);

  /// Read `clock` under the metering lock.
  [[nodiscard]] double clock_now(const VirtualClock& clock) const;

  /// Trace-track ids of this device's virtual-timeline rows (within
  /// obs::kVirtualPid).  Default to the legacy single-device tracks
  /// (kLinkTid / kComputeTid); DeviceGroup assigns device i the pair
  /// (2i+1, 2i+2) so per-device timelines stay disjoint in one trace.
  void set_trace_tids(std::uint32_t link_tid,
                      std::uint32_t compute_tid) noexcept {
    link_tid_ = link_tid;
    compute_tid_ = compute_tid;
  }
  [[nodiscard]] std::uint32_t link_tid() const noexcept { return link_tid_; }
  [[nodiscard]] std::uint32_t compute_tid() const noexcept {
    return compute_tid_;
  }

 private:
  struct Interval {
    double begin = 0;
    double end = 0;
    CopyDir dir = CopyDir::kH2d;  // copies only
  };

  void meter_transfer(usize bytes, double measured_seconds, CopyDir dir);
  void attribute_transfer(const char* site, usize bytes, CopyDir dir);
  void attribute_kernel(const obs::KernelCost& cost, double duration);
  [[nodiscard]] VirtualClock& current_clock_locked();
  void prune_intervals_locked();

  ThreadPool pool_;
  TransferModel model_;
  obs::AttributionRegistry attribution_;
  DeviceCounters counters_;
  usize memory_limit_bytes_ = 0;

  mutable std::mutex meter_mu_;   // counters + timeline + clocks
  std::mutex compute_mu_;         // the pool is a single compute engine
  PinnedPool staging_pool_;

  // Virtual timeline: per-resource frontier plus the recent busy intervals
  // still able to overlap future work (older ones are pruned as the
  // frontiers advance past them).
  VirtualClock host_clock_;
  double link_free_at_ = 0;
  double compute_free_at_ = 0;
  std::vector<Interval> copy_intervals_;
  std::vector<Interval> kernel_intervals_;
  TransferRetryPolicy retry_;
  std::uint32_t link_tid_ = obs::kLinkTid;
  std::uint32_t compute_tid_ = obs::kComputeTid;
};

/// Process-wide default device (lazy-constructed), like cudaSetDevice(0).
DeviceContext& default_device();

/// Run `body`, absorbing transient DeviceTransferErrors with the context's
/// bounded exponential backoff.  The body must be idempotent up to its
/// metering (every instrumented site checks fault::triggered *before*
/// touching data or counters, so a retried transfer meters exactly once).
/// Rethrows — annotated with `site` — once the budget is exhausted or the
/// error is permanent.
template <class Fn>
auto run_transfer_with_retry(DeviceContext& ctx, const char* site, Fn&& body) {
  const TransferRetryPolicy policy = ctx.transfer_retry();
  double backoff = policy.backoff_seconds;
  for (index_t attempt = 0;; ++attempt) {
    try {
      return body();
    } catch (DeviceError& e) {
      e.annotate_site(site);
      if (!e.transient() || attempt >= policy.max_retries) throw;
      ctx.note_transfer_retry(site, backoff);
      backoff *= 2;
    }
  }
}

/// Device-resident array of trivially-copyable T.
///
/// Host code must not dereference device data directly in library code; use
/// copy_to_host / copy_from_host (cudaMemcpy equivalents).  Kernels receive
/// raw pointers via data().
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() noexcept : ctx_(nullptr) {}

  /// "cudaMalloc": allocate n uninitialized elements on the device.
  DeviceBuffer(DeviceContext& ctx, usize n)
      : ctx_(&ctx), storage_(n, AlignedBuffer<T>::uninitialized) {
    ctx_->record_alloc(storage_.size_bytes());
  }

  /// Allocate and upload in one step (cudaMalloc + cudaMemcpyHostToDevice).
  DeviceBuffer(DeviceContext& ctx, std::span<const T> host)
      : DeviceBuffer(ctx, host.size()) {
    copy_from_host(host);
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  void swap(DeviceBuffer& other) noexcept {
    std::swap(ctx_, other.ctx_);
    storage_.swap(other.storage_);
  }

  /// cudaMemcpyHostToDevice.
  void copy_from_host(std::span<const T> host) {
    FASTSC_CHECK(host.size() == storage_.size(),
                 "host span size must match device buffer size");
    run_transfer_with_retry(*ctx_, "device.h2d", [&] {
      if (fault::triggered("device.h2d")) {
        throw DeviceTransferError("device.h2d", host.size_bytes(), true);
      }
      WallTimer t;
      if (!host.empty()) {
        std::memcpy(storage_.data(), host.data(), host.size_bytes());
      }
      ctx_->record_h2d(host.size_bytes(), t.seconds(), "device.h2d");
    });
  }

  /// cudaMemcpyDeviceToHost.
  void copy_to_host(std::span<T> host) const {
    FASTSC_CHECK(host.size() == storage_.size(),
                 "host span size must match device buffer size");
    run_transfer_with_retry(*ctx_, "device.d2h", [&] {
      if (fault::triggered("device.d2h")) {
        throw DeviceTransferError("device.d2h", host.size_bytes(), false);
      }
      WallTimer t;
      if (!host.empty()) {
        std::memcpy(host.data(), storage_.data(), host.size_bytes());
      }
      ctx_->record_d2h(host.size_bytes(), t.seconds(), "device.d2h");
    });
  }

  /// Convenience: download into a new host vector.
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(storage_.size());
    copy_to_host(std::span<T>(out));
    return out;
  }

  /// Device pointer (for kernels and device algorithms only).
  [[nodiscard]] T* data() noexcept { return storage_.data(); }
  [[nodiscard]] const T* data() const noexcept { return storage_.data(); }
  [[nodiscard]] usize size() const noexcept { return storage_.size(); }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }
  [[nodiscard]] usize size_bytes() const noexcept {
    return storage_.size_bytes();
  }
  [[nodiscard]] DeviceContext* context() const noexcept { return ctx_; }

  [[nodiscard]] std::span<T> device_span() noexcept { return storage_.span(); }
  [[nodiscard]] std::span<const T> device_span() const noexcept {
    return storage_.span();
  }

 private:
  void release() noexcept {
    if (ctx_ != nullptr) ctx_->record_free(storage_.size_bytes());
    ctx_ = nullptr;
    storage_.reset();
  }

  DeviceContext* ctx_ = nullptr;
  AlignedBuffer<T> storage_;
};

/// Kernel launch geometry, mirroring <<<grid, block>>>.
struct LaunchConfig {
  index_t block = 256;

  /// Virtual-timeline duration override in seconds.  < 0 (default) uses the
  /// measured wall time of the kernel body; >= 0 substitutes this duration
  /// both on the timeline and in DeviceCounters::kernel_seconds, which lets
  /// tests build deterministic overlap scenarios and future work model
  /// kernels whose simulated speed should not depend on the host machine.
  double modeled_seconds = -1.0;

  /// Attribution site for this launch (stable dotted lowercase identifier,
  /// e.g. "spmv.balanced").  nullptr falls back to the innermost
  /// obs::AttrSiteScope on the launching thread, then to "unattributed".
  const char* site = nullptr;

  /// Modeled work of the whole launch, for per-site arithmetic intensity
  /// and roofline utilization.  Negative (default) estimates one flop and
  /// 8 bytes read + 8 bytes written per logical thread.
  double flops = -1.0;
  double bytes_read = -1.0;
  double bytes_written = -1.0;

  /// Storage width (bytes) of the scalar arrays the kernel streams; feeds
  /// the attribution registry's per-site bytes-per-scalar accounting.
  /// Negative (default) leaves the launch out of that accounting.
  double bytes_per_scalar = -1.0;

  /// Blocks needed to cover n logical threads.
  [[nodiscard]] index_t grid_for(index_t n) const noexcept {
    return (n + block - 1) / block;
  }
};

/// Shorthand for the common launch-tagging call shape: name the site and
/// (optionally) the modeled flops / bytes of the whole launch.
inline LaunchConfig tagged(const char* site, double flops = -1.0,
                           double bytes_read = -1.0,
                           double bytes_written = -1.0) {
  LaunchConfig cfg;
  cfg.site = site;
  cfg.flops = flops;
  cfg.bytes_read = bytes_read;
  cfg.bytes_written = bytes_written;
  return cfg;
}

/// Launch `kernel(i)` for every global thread id i in [0, n), blocking until
/// completion (default-stream semantics; from inside a stream op this blocks
/// only the stream, which is exactly a stream-ordered kernel launch).
/// Kernel time is metered onto the calling thread's virtual clock.
template <class Kernel>
void launch(DeviceContext& ctx, index_t n, const Kernel& kernel,
            LaunchConfig cfg = {}) {
  obs::KernelCost cost;
  cost.site = cfg.site;
  const double work = static_cast<double>(n > 0 ? n : 0);
  cost.flops = cfg.flops >= 0 ? cfg.flops : (work > 0 ? work : 1.0);
  cost.bytes_read = cfg.bytes_read >= 0 ? cfg.bytes_read : 8.0 * work;
  cost.bytes_written = cfg.bytes_written >= 0 ? cfg.bytes_written : 8.0 * work;
  cost.bytes_per_scalar = cfg.bytes_per_scalar;
  if (n <= 0) {
    ctx.record_kernel(0.0, -1.0, cost);
    return;
  }
  WallTimer t;
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  if (workers == 1) {
    for (index_t i = 0; i < n; ++i) kernel(i);
  } else {
    const index_t chunk = (n + workers - 1) / workers;
    std::function<void(usize)> job = [&](usize w) {
      const index_t lo = static_cast<index_t>(w) * chunk;
      const index_t hi = lo + chunk < n ? lo + chunk : n;
      for (index_t i = lo; i < hi; ++i) kernel(i);
    };
    ctx.run_compute(job);
  }
  ctx.record_kernel(t.seconds(), cfg.modeled_seconds, cost);
}

}  // namespace fastsc::device
