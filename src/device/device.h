// Simulated CUDA-style device runtime.
//
// This module stands in for the NVIDIA Tesla K20c + CUDA 7.5 stack the paper
// runs on (DESIGN.md §2).  It preserves the *structure* of a CUDA program:
//
//   * device memory is a distinct allocation space (DeviceBuffer<T>) that
//     host code may only reach through explicit copies,
//   * every host<->device copy is metered: bytes, transfer count, measured
//     wall time of the staging memcpy, and modeled PCIe time from
//     TransferModel — this drives the Table VII reproduction,
//   * kernels are launched over a (grid, block) decomposition and execute
//     data-parallel on a worker thread pool; kernel wall time is metered,
//   * the default stream is synchronous: launch() returns when the kernel
//     has completed, matching the paper's use of the default CUDA stream.
//
// On the evaluation machine the pool may have a single worker; the runtime
// is still exercised end-to-end (decomposition, staging, accounting), which
// is the point of the substitution.
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include <stdexcept>

#include "common/buffer.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/types.h"
#include "device/transfer_model.h"

namespace fastsc::device {

/// Thrown when an allocation would exceed the context's device-memory
/// budget (cudaErrorMemoryAllocation equivalent).
class DeviceOutOfMemory : public std::runtime_error {
 public:
  DeviceOutOfMemory(usize requested, usize live, usize limit)
      : std::runtime_error(
            "simulated device out of memory: requested " +
            std::to_string(requested) + " bytes with " + std::to_string(live) +
            " live of " + std::to_string(limit) + " budget") {}
};

/// Running totals kept by a DeviceContext.
struct DeviceCounters {
  usize bytes_h2d = 0;
  usize bytes_d2h = 0;
  usize transfers_h2d = 0;
  usize transfers_d2h = 0;
  /// Wall time actually spent staging (host memcpy in this simulation).
  double measured_transfer_seconds = 0;
  /// Modeled PCIe time from the TransferModel.
  double modeled_transfer_seconds = 0;
  /// Wall time spent inside kernel bodies.
  double kernel_seconds = 0;
  usize kernel_launches = 0;
  /// Device-memory accounting.
  usize live_bytes = 0;
  usize peak_bytes = 0;
  usize total_allocations = 0;

  void reset() { *this = DeviceCounters{}; }
};

/// A simulated GPU: an executor plus metering.  Thread-compatible (use one
/// context per thread of control, like a CUDA context).
class DeviceContext {
 public:
  /// workers == 0 selects hardware concurrency.
  explicit DeviceContext(usize workers = 0, TransferModel model = {})
      : pool_(workers), model_(model) {}

  /// Device-memory budget in bytes; 0 = unlimited.  The paper's K20c has
  /// 5 GB — set this to study out-of-core behaviour (the chunked builders
  /// in graph/build.h stay within any budget).
  void set_memory_limit(usize bytes) noexcept { memory_limit_bytes_ = bytes; }
  [[nodiscard]] usize memory_limit() const noexcept {
    return memory_limit_bytes_;
  }

  [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
  [[nodiscard]] const TransferModel& transfer_model() const noexcept {
    return model_;
  }
  void set_transfer_model(TransferModel m) noexcept { model_ = m; }

  [[nodiscard]] DeviceCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const DeviceCounters& counters() const noexcept {
    return counters_;
  }

  /// Human-readable device description for Table I style output.
  [[nodiscard]] std::string description() const;

  // --- metering hooks (used by DeviceBuffer and launch) -------------------
  void record_h2d(usize bytes, double measured_seconds) {
    counters_.bytes_h2d += bytes;
    counters_.transfers_h2d += 1;
    counters_.measured_transfer_seconds += measured_seconds;
    counters_.modeled_transfer_seconds += model_.seconds_for(bytes);
  }
  void record_d2h(usize bytes, double measured_seconds) {
    counters_.bytes_d2h += bytes;
    counters_.transfers_d2h += 1;
    counters_.measured_transfer_seconds += measured_seconds;
    counters_.modeled_transfer_seconds += model_.seconds_for(bytes);
  }
  void record_kernel(double seconds) {
    counters_.kernel_seconds += seconds;
    counters_.kernel_launches += 1;
  }
  void record_alloc(usize bytes) {
    if (memory_limit_bytes_ != 0 &&
        counters_.live_bytes + bytes > memory_limit_bytes_) {
      throw DeviceOutOfMemory(bytes, counters_.live_bytes,
                              memory_limit_bytes_);
    }
    counters_.live_bytes += bytes;
    counters_.total_allocations += 1;
    if (counters_.live_bytes > counters_.peak_bytes) {
      counters_.peak_bytes = counters_.live_bytes;
    }
  }
  void record_free(usize bytes) noexcept {
    counters_.live_bytes = counters_.live_bytes >= bytes
                               ? counters_.live_bytes - bytes
                               : 0;
  }

 private:
  ThreadPool pool_;
  TransferModel model_;
  DeviceCounters counters_;
  usize memory_limit_bytes_ = 0;
};

/// Process-wide default device (lazy-constructed), like cudaSetDevice(0).
DeviceContext& default_device();

/// Device-resident array of trivially-copyable T.
///
/// Host code must not dereference device data directly in library code; use
/// copy_to_host / copy_from_host (cudaMemcpy equivalents).  Kernels receive
/// raw pointers via data().
template <class T>
class DeviceBuffer {
 public:
  DeviceBuffer() noexcept : ctx_(nullptr) {}

  /// "cudaMalloc": allocate n uninitialized elements on the device.
  DeviceBuffer(DeviceContext& ctx, usize n)
      : ctx_(&ctx), storage_(n, AlignedBuffer<T>::uninitialized) {
    ctx_->record_alloc(storage_.size_bytes());
  }

  /// Allocate and upload in one step (cudaMalloc + cudaMemcpyHostToDevice).
  DeviceBuffer(DeviceContext& ctx, std::span<const T> host)
      : DeviceBuffer(ctx, host.size()) {
    copy_from_host(host);
  }

  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  ~DeviceBuffer() { release(); }

  void swap(DeviceBuffer& other) noexcept {
    std::swap(ctx_, other.ctx_);
    storage_.swap(other.storage_);
  }

  /// cudaMemcpyHostToDevice.
  void copy_from_host(std::span<const T> host) {
    FASTSC_CHECK(host.size() == storage_.size(),
                 "host span size must match device buffer size");
    WallTimer t;
    if (!host.empty()) {
      std::memcpy(storage_.data(), host.data(), host.size_bytes());
    }
    ctx_->record_h2d(host.size_bytes(), t.seconds());
  }

  /// cudaMemcpyDeviceToHost.
  void copy_to_host(std::span<T> host) const {
    FASTSC_CHECK(host.size() == storage_.size(),
                 "host span size must match device buffer size");
    WallTimer t;
    if (!host.empty()) {
      std::memcpy(host.data(), storage_.data(), host.size_bytes());
    }
    ctx_->record_d2h(host.size_bytes(), t.seconds());
  }

  /// Convenience: download into a new host vector.
  [[nodiscard]] std::vector<T> to_host() const {
    std::vector<T> out(storage_.size());
    copy_to_host(std::span<T>(out));
    return out;
  }

  /// Device pointer (for kernels and device algorithms only).
  [[nodiscard]] T* data() noexcept { return storage_.data(); }
  [[nodiscard]] const T* data() const noexcept { return storage_.data(); }
  [[nodiscard]] usize size() const noexcept { return storage_.size(); }
  [[nodiscard]] bool empty() const noexcept { return storage_.empty(); }
  [[nodiscard]] usize size_bytes() const noexcept {
    return storage_.size_bytes();
  }
  [[nodiscard]] DeviceContext* context() const noexcept { return ctx_; }

  [[nodiscard]] std::span<T> device_span() noexcept { return storage_.span(); }
  [[nodiscard]] std::span<const T> device_span() const noexcept {
    return storage_.span();
  }

 private:
  void release() noexcept {
    if (ctx_ != nullptr) ctx_->record_free(storage_.size_bytes());
    ctx_ = nullptr;
    storage_.reset();
  }

  DeviceContext* ctx_ = nullptr;
  AlignedBuffer<T> storage_;
};

/// Kernel launch geometry, mirroring <<<grid, block>>>.
struct LaunchConfig {
  index_t block = 256;

  /// Blocks needed to cover n logical threads.
  [[nodiscard]] index_t grid_for(index_t n) const noexcept {
    return (n + block - 1) / block;
  }
};

/// Launch `kernel(i)` for every global thread id i in [0, n), blocking until
/// completion (default-stream semantics).  Kernel wall time is metered.
template <class Kernel>
void launch(DeviceContext& ctx, index_t n, const Kernel& kernel,
            LaunchConfig /*cfg*/ = {}) {
  if (n <= 0) {
    ctx.record_kernel(0.0);
    return;
  }
  WallTimer t;
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  if (workers == 1) {
    for (index_t i = 0; i < n; ++i) kernel(i);
  } else {
    const index_t chunk = (n + workers - 1) / workers;
    std::function<void(usize)> job = [&](usize w) {
      const index_t lo = static_cast<index_t>(w) * chunk;
      const index_t hi = lo + chunk < n ? lo + chunk : n;
      for (index_t i = lo; i < hi; ++i) kernel(i);
    };
    ctx.pool().run_workers(job);
  }
  ctx.record_kernel(t.seconds());
}

}  // namespace fastsc::device
