#include "device/device_group.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fastsc::device {

DeviceGroup::DeviceGroup(const DeviceGroupConfig& config) : config_(config) {
  FASTSC_CHECK(config_.num_devices >= 1,
               "a device group needs at least one device");
  const usize workers =
      config_.workers_per_device == 0 ? 1 : config_.workers_per_device;
  contexts_.reserve(config_.num_devices);
  for (usize i = 0; i < config_.num_devices; ++i) {
    auto ctx = std::make_unique<DeviceContext>(workers, config_.model);
    if (config_.memory_limit_bytes != 0) {
      ctx->set_memory_limit(config_.memory_limit_bytes);
    }
    // Device i's virtual timeline lives on tracks (2i+1, 2i+2); device 0
    // keeps the legacy single-device pair (kLinkTid, kComputeTid) = (1, 2).
    ctx->set_trace_tids(static_cast<std::uint32_t>(2 * i + 1),
                        static_cast<std::uint32_t>(2 * i + 2));
    contexts_.push_back(std::move(ctx));
  }
}

void DeviceGroup::model_peer_transfer(usize src, usize dst, usize bytes,
                                      const char* site) {
  FASTSC_CHECK(src < size() && dst < size(), "peer device out of range");
  FASTSC_CHECK(src != dst, "peer transfer requires distinct devices");
  DeviceContext& to = device(dst);
  run_transfer_with_retry(to, site, [&] {
    if (fault::triggered(site)) {
      throw DeviceTransferError(site, bytes, CopyDir::kD2d);
    }
    to.record_d2d(bytes, 0.0, site);
    note_peer_traffic(bytes);
  });
}

void DeviceGroup::note_peer_traffic(usize bytes) {
  obs::Counter& transfers = obs::metrics().counter("d2d.transfers");
  transfers.add();
  obs::Counter& total_bytes = obs::metrics().counter("d2d.bytes");
  total_bytes.add(static_cast<std::int64_t>(bytes));
  if (obs::trace_enabled()) {
    const double ts = obs::wall_now_us();
    obs::trace().counter("d2d.transfers",
                         static_cast<double>(transfers.value()), ts);
    obs::trace().counter("d2d.bytes",
                         static_cast<double>(total_bytes.value()), ts);
  }
}

void accumulate_counters(DeviceCounters& a, const DeviceCounters& b) {
  a.bytes_h2d += b.bytes_h2d;
  a.bytes_d2h += b.bytes_d2h;
  a.bytes_d2d += b.bytes_d2d;
  a.transfers_h2d += b.transfers_h2d;
  a.transfers_d2h += b.transfers_d2h;
  a.transfers_d2d += b.transfers_d2d;
  a.measured_transfer_seconds += b.measured_transfer_seconds;
  a.modeled_transfer_seconds += b.modeled_transfer_seconds;
  a.modeled_d2d_seconds += b.modeled_d2d_seconds;
  a.kernel_seconds += b.kernel_seconds;
  a.kernel_launches += b.kernel_launches;
  a.overlapped_seconds += b.overlapped_seconds;
  a.overlapped_h2d_seconds += b.overlapped_h2d_seconds;
  a.overlapped_d2h_seconds += b.overlapped_d2h_seconds;
  a.overlapped_d2d_seconds += b.overlapped_d2d_seconds;
  a.async_copies += b.async_copies;
  a.async_kernel_launches += b.async_kernel_launches;
  a.transfer_retries += b.transfer_retries;
  a.live_bytes += b.live_bytes;
  a.peak_bytes += b.peak_bytes;
  a.total_allocations += b.total_allocations;
}

DeviceCounters counters_delta(const DeviceCounters& after,
                              const DeviceCounters& before) {
  DeviceCounters d = after;
  d.bytes_h2d -= before.bytes_h2d;
  d.bytes_d2h -= before.bytes_d2h;
  d.bytes_d2d -= before.bytes_d2d;
  d.transfers_h2d -= before.transfers_h2d;
  d.transfers_d2h -= before.transfers_d2h;
  d.transfers_d2d -= before.transfers_d2d;
  d.measured_transfer_seconds -= before.measured_transfer_seconds;
  d.modeled_transfer_seconds -= before.modeled_transfer_seconds;
  d.modeled_d2d_seconds -= before.modeled_d2d_seconds;
  d.kernel_seconds -= before.kernel_seconds;
  d.kernel_launches -= before.kernel_launches;
  d.overlapped_seconds -= before.overlapped_seconds;
  d.overlapped_h2d_seconds -= before.overlapped_h2d_seconds;
  d.overlapped_d2h_seconds -= before.overlapped_d2h_seconds;
  d.overlapped_d2d_seconds -= before.overlapped_d2d_seconds;
  d.async_copies -= before.async_copies;
  d.async_kernel_launches -= before.async_kernel_launches;
  d.transfer_retries -= before.transfer_retries;
  return d;
}

DeviceCounters DeviceGroup::rollup_counters() const {
  DeviceCounters total;
  for (const auto& ctx : contexts_) {
    accumulate_counters(total, ctx->counters_snapshot());
  }
  return total;
}

obs::SiteStats DeviceGroup::rollup_attribution() const {
  obs::SiteStats total;
  for (const auto& ctx : contexts_) {
    const obs::SiteStats t = ctx->attribution().totals();
    total.kernel_launches += t.kernel_launches;
    total.transfers_h2d += t.transfers_h2d;
    total.transfers_d2h += t.transfers_d2h;
    total.transfers_d2d += t.transfers_d2d;
    total.bytes_h2d += t.bytes_h2d;
    total.bytes_d2h += t.bytes_d2h;
    total.bytes_d2d += t.bytes_d2d;
    total.flops += t.flops;
    total.bytes_read += t.bytes_read;
    total.bytes_written += t.bytes_written;
    total.kernel_seconds += t.kernel_seconds;
    total.transfer_seconds += t.transfer_seconds;
    total.scalar_bytes += t.scalar_bytes;
    total.scalar_weighted += t.scalar_weighted;
  }
  return total;
}

double DeviceGroup::modeled_transfer_seconds_now() const {
  double total = 0;
  for (const auto& ctx : contexts_) {
    total += ctx->counters_snapshot().modeled_transfer_seconds;
  }
  return total;
}

double DeviceGroup::max_modeled_pipeline_seconds() const {
  double worst = 0;
  for (const auto& ctx : contexts_) {
    worst = std::max(worst,
                     ctx->counters_snapshot().modeled_pipeline_seconds());
  }
  return worst;
}

}  // namespace fastsc::device
