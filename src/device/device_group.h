// DeviceGroup: N simulated devices with a modeled peer-to-peer link.
//
// The paper runs on a single K20c; its natural scale-out (and ROADMAP's top
// open item) is the multi-GPU design of Sgherzi et al. (arXiv:2201.07498):
// 1-D row-partitioned operators, halo/allgather exchange of the dense
// vector, and allreduce for the small reductions.  This module supplies the
// runtime half of that design:
//
//   * each device is a full DeviceContext — its own arena accounting,
//     streams, counters, attribution registry, and virtual timeline, with
//     trace tracks (2i+1, 2i+2) inside obs::kVirtualPid so all N timelines
//     coexist in one trace;
//   * peer copies (copy_peer) move bytes device-to-device without touching
//     the host, metered on the *destination* context's link engine for the
//     TransferModel's D2D duration (distinct bandwidth/latency from PCIe);
//   * rollup_counters / rollup_attribution reconcile the per-device books
//     into group totals — the conservation law tests/test_device_group.cpp
//     asserts.
//
// Peer copies carry fault sites ("d2d.halo", "d2d.allreduce", ...) checked
// *before* any data moves, so the bounded transfer retry absorbs injected
// transient faults exactly like the host-link copy paths.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/timer.h"
#include "common/types.h"
#include "device/device.h"
#include "device/transfer_model.h"

namespace fastsc::device {

struct DeviceGroupConfig {
  usize num_devices = 1;
  /// Worker threads per device pool.  The default keeps every device's
  /// kernel numerics serial-deterministic; the host machine's parallelism
  /// is spent across devices, not within one.
  usize workers_per_device = 1;
  TransferModel model{};
  /// Per-device memory budget in bytes; 0 = unlimited.
  usize memory_limit_bytes = 0;

  /// Deterministic kernel cost model for the sharded drivers: when > 0,
  /// launches pass modeled_seconds = launch latency + bytes_touched / rate,
  /// so modeled speedup curves are a pure function of the partition, not of
  /// host wall-clock noise.  0 keeps measured kernel wall time.
  double modeled_compute_bytes_per_sec = 0;
  double modeled_launch_latency_seconds = 5.0e-6;
};

class DeviceGroup {
 public:
  explicit DeviceGroup(const DeviceGroupConfig& config = {});

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  [[nodiscard]] usize size() const noexcept { return contexts_.size(); }
  [[nodiscard]] DeviceContext& device(usize i) {
    FASTSC_CHECK(i < contexts_.size(), "device index out of range");
    return *contexts_[i];
  }
  [[nodiscard]] const DeviceContext& device(usize i) const {
    FASTSC_CHECK(i < contexts_.size(), "device index out of range");
    return *contexts_[i];
  }
  /// Device 0: owns full-size staging (seeding, normalization) and is the
  /// fold target of every allreduce.
  [[nodiscard]] DeviceContext& root() { return device(0); }

  [[nodiscard]] const DeviceGroupConfig& config() const noexcept {
    return config_;
  }

  /// Modeled duration for a kernel touching `bytes_touched` bytes under
  /// config().modeled_compute_bytes_per_sec, or -1 (measure wall time) when
  /// the kernel cost model is off.  Feed to LaunchConfig::modeled_seconds.
  [[nodiscard]] double modeled_kernel_seconds(
      double bytes_touched) const noexcept {
    if (config_.modeled_compute_bytes_per_sec <= 0) return -1.0;
    return config_.modeled_launch_latency_seconds +
           bytes_touched / config_.modeled_compute_bytes_per_sec;
  }

  /// cudaMemcpyPeer: copy `count` elements from device `src` memory into
  /// device `dst` memory.  Metered on the destination's link engine with
  /// the D2D model; `site` is both the fault-injection site and the
  /// attribution fallback.  The fault check precedes the memcpy, so the
  /// bounded retry replays an injected transient fault idempotently.
  template <class T>
  void copy_peer(usize src, usize dst, const T* src_data, T* dst_data,
                 usize count, const char* site) {
    FASTSC_CHECK(src < size() && dst < size(), "peer device out of range");
    FASTSC_CHECK(src != dst, "peer copy requires distinct devices");
    DeviceContext& to = device(dst);
    const usize bytes = count * sizeof(T);
    run_transfer_with_retry(to, site, [&] {
      if (fault::triggered(site)) {
        throw DeviceTransferError(site, bytes, CopyDir::kD2d);
      }
      WallTimer t;
      if (count != 0) std::memcpy(dst_data, src_data, bytes);
      to.record_d2d(bytes, t.seconds(), site);
      note_peer_traffic(bytes);
    });
  }

  /// Meter a peer transfer without moving data — the cost accounting for
  /// reductions whose arithmetic this simulation folds on the host but
  /// whose traffic a real multi-GPU allreduce would put on the wire.
  /// Charged to the destination's link engine like copy_peer.
  void model_peer_transfer(usize src, usize dst, usize bytes,
                           const char* site);

  /// Sum of every device's counters — the group's conservation-law rollup.
  [[nodiscard]] DeviceCounters rollup_counters() const;

  /// Sum of every device's attribution totals.
  [[nodiscard]] obs::SiteStats rollup_attribution() const;

  /// Group position on the deterministic transfer timeline (sum over
  /// devices) — the virtual-now source for budget limits on sharded runs.
  [[nodiscard]] double modeled_transfer_seconds_now() const;

  /// Slowest device's modeled pipeline time — the quantity a speedup curve
  /// divides, since the group finishes when its last device does.
  [[nodiscard]] double max_modeled_pipeline_seconds() const;

 private:
  /// d2d.* observability: metrics counters plus trace counter samples (the
  /// scaling_smoke monotonicity check reads these).
  void note_peer_traffic(usize bytes);

  DeviceGroupConfig config_;
  std::vector<std::unique_ptr<DeviceContext>> contexts_;
};

/// Sum `b` into `a` field by field (used by the rollup and by tests
/// asserting the conservation law independently).
void accumulate_counters(DeviceCounters& a, const DeviceCounters& b);

/// Difference of two counter snapshots — per-run accounting for both the
/// single-device and sharded pipelines.  Traffic and engine-time fields are
/// subtracted; the memory gauges (live/peak bytes, total allocations) keep
/// the `after` snapshot's absolute values.
[[nodiscard]] DeviceCounters counters_delta(const DeviceCounters& after,
                                            const DeviceCounters& before);

}  // namespace fastsc::device
