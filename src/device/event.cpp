#include "device/event.h"

#include "device/device.h"

namespace fastsc::device {

void Event::wait() const {
  DeviceContext* ctx = nullptr;
  double vt = 0;
  {
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->recorded; });
    ctx = state_->ctx;
    vt = state_->virtual_time;
  }
  if (ctx != nullptr) ctx->sync_current_clock_to(vt);
}

bool Event::query() const {
  std::lock_guard lock(state_->mu);
  return state_->recorded;
}

double Event::virtual_time() const {
  std::lock_guard lock(state_->mu);
  return state_->virtual_time;
}

void Event::mark_recorded(DeviceContext& ctx, double virtual_time) const {
  {
    std::lock_guard lock(state_->mu);
    state_->recorded = true;
    state_->virtual_time = virtual_time;
    state_->ctx = &ctx;
  }
  state_->cv.notify_all();
}

}  // namespace fastsc::device
