// Events: cross-stream and host<->stream synchronization markers.
//
// An Event is a shareable completion flag carrying a virtual timestamp
// (cudaEvent_t equivalent).  A stream records it (Stream::record) when the
// work enqueued before the record has retired; other streams
// (Stream::wait) or the host (Event::wait) block on it and, on release,
// advance their own virtual clock to the event's timestamp so the modeled
// timeline respects the dependency.
//
// Semantics note vs. CUDA: waiting on an event that has not been recorded
// yet *blocks until the record happens* (a fence), whereas CUDA's
// cudaStreamWaitEvent on a never-recorded event is a no-op.  The fence
// semantics are what a dependency-graph executor needs — wait-before-record
// is an ordering to honor, not a race to ignore.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>

namespace fastsc::device {

class DeviceContext;
class Stream;

class Event {
 public:
  Event() : state_(std::make_shared<State>()) {}

  /// Block the calling thread until the event is recorded, then advance the
  /// caller's virtual clock (host clock, or the enclosing stream's clock
  /// when called from inside a stream op) to the event's timestamp.
  void wait() const;

  /// True once recorded (cudaEventQuery == cudaSuccess).
  [[nodiscard]] bool query() const;

  /// Virtual timestamp of the (last) record; 0 if never recorded.
  [[nodiscard]] double virtual_time() const;

 private:
  friend class Stream;

  struct State {
    mutable std::mutex mu;
    std::condition_variable cv;
    bool recorded = false;
    double virtual_time = 0;
    DeviceContext* ctx = nullptr;  // context of the recording stream
  };

  void mark_recorded(DeviceContext& ctx, double virtual_time) const;

  std::shared_ptr<State> state_;
};

}  // namespace fastsc::device
