#include "device/executor.h"

#include "common/error.h"
#include "obs/trace.h"

namespace fastsc::device {

PipelineExecutor::PipelineExecutor(DeviceContext& ctx, usize num_streams)
    : ctx_(ctx) {
  FASTSC_CHECK(num_streams >= 1, "executor needs at least one stream");
  streams_.reserve(num_streams);
  for (usize i = 0; i < num_streams; ++i) {
    streams_.push_back(
        std::make_unique<Stream>(ctx, "exec-stream-" + std::to_string(i)));
  }
}

PipelineExecutor::NodeId PipelineExecutor::add(usize stream_index,
                                               std::string label,
                                               std::function<void()> body,
                                               const std::vector<NodeId>& deps) {
  FASTSC_CHECK(stream_index < streams_.size(), "stream index out of range");
  const NodeId id = nodes_.size();
  Node node;
  node.stream = stream_index;
  node.label = std::move(label);
  Stream& s = *streams_[stream_index];
  for (NodeId dep : deps) {
    FASTSC_CHECK(dep < id, "dependency must name an already-added node");
    // Same-stream dependencies are already honored by FIFO order.
    if (nodes_[dep].stream != stream_index) s.wait(nodes_[dep].completed);
  }
  // Wrap the body in a wall-clock span named after the node so executor
  // graphs show up as labeled blocks on the stream thread's trace track.
  // With tracing off the wrapper adds one relaxed atomic load per node.
  s.enqueue_labeled(node.label, [label = node.label, body = std::move(body)] {
    obs::ScopedSpan span(label, "node");
    body();
  });
  s.record(node.completed);
  nodes_.push_back(std::move(node));
  return id;
}

const Event& PipelineExecutor::done(NodeId node) const {
  FASTSC_CHECK(node < nodes_.size(), "node id out of range");
  return nodes_[node].completed;
}

void PipelineExecutor::run() {
  std::exception_ptr first_error;
  for (auto& s : streams_) {
    try {
      s->synchronize();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void PipelineExecutor::reset() { nodes_.clear(); }

}  // namespace fastsc::device
