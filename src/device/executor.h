// PipelineExecutor: a small dependency-graph executor over streams.
//
// Nodes are device ops (copies, kernels, host callbacks expressed as plain
// callables); edges are events.  Each node is pinned to a stream; same-
// stream dependencies ride the stream's FIFO order for free, cross-stream
// dependencies become record/wait event pairs.  Nodes are emitted eagerly —
// add() enqueues immediately, so a transfer node on stream 0 runs while a
// compute node on stream 1 is still executing, which is the entire point:
// the spectral pipeline uses a {transfer, compute} stream pair to
// double-buffer the RCI eigensolver loop and to prefetch k-means centroid
// tiles behind the distance GEMM.
//
// The graph is acyclic by construction: a dependency must name an
// already-added node.  reset() forgets the graph between waves (e.g. RCI
// iterations) while keeping the streams — and therefore the virtual
// timeline — alive.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "device/event.h"
#include "device/stream.h"

namespace fastsc::device {

class PipelineExecutor {
 public:
  using NodeId = usize;

  /// Conventional stream roles for the two-stream default; any number of
  /// streams is allowed.
  static constexpr usize kTransferStream = 0;
  static constexpr usize kComputeStream = 1;

  explicit PipelineExecutor(DeviceContext& ctx, usize num_streams = 2);

  PipelineExecutor(const PipelineExecutor&) = delete;
  PipelineExecutor& operator=(const PipelineExecutor&) = delete;

  /// Add `body` as a node on stream `stream_index`, ordered after `deps`
  /// (node ids returned by earlier add() calls).  The body executes on the
  /// stream thread with metering attributed to that stream; it may call any
  /// synchronous device routine (launch, dblas, sparse, copy_h2d/d2h).
  NodeId add(usize stream_index, std::string label, std::function<void()> body,
             const std::vector<NodeId>& deps = {});

  /// Completion event of a node (e.g. to chain executors or hand to a
  /// caller-owned stream).
  [[nodiscard]] const Event& done(NodeId node) const;

  /// Block until every added node has retired; rethrows the first stream
  /// error.  The graph stays queryable until reset().
  void run();

  /// Forget the graph; streams and their virtual clocks persist.
  void reset();

  [[nodiscard]] Stream& stream(usize i) { return *streams_[i]; }
  [[nodiscard]] usize stream_count() const noexcept { return streams_.size(); }
  [[nodiscard]] usize node_count() const noexcept { return nodes_.size(); }

 private:
  struct Node {
    Event completed;
    usize stream = 0;
    std::string label;
  };

  DeviceContext& ctx_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<Node> nodes_;
};

}  // namespace fastsc::device
