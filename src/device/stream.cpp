#include "device/stream.h"

#include <chrono>
#include <thread>

#include "common/cancel.h"
#include "fault/fault.h"
#include "obs/attribution.h"
#include "obs/trace.h"

namespace fastsc::device {

namespace {

/// Simulated wedged op for the `stream.hang` fault site: spins until the
/// watchdog (or any other cancellation) fires, then surfaces as a
/// site-annotated CancelledError through the sticky-error machinery.  A wall
/// cap bounds the spin so an unwatched hang still fails loudly instead of
/// wedging the suite.
void simulate_hang() {
  constexpr double kMaxHangSeconds = 5.0;
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    if (cancel::pending("stream.hang")) {
      throw cancel::CancelledError("injected stream hang cancelled",
                                   "stream.hang");
    }
    if (std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() > kMaxHangSeconds) {
      throw DeviceError(
          "injected stream hang exceeded its 5 s cap with no watchdog "
          "cancellation");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace

Stream::Stream(DeviceContext& ctx, std::string name)
    : ctx_(ctx), name_(std::move(name)), thread_([this] { thread_main(); }) {}

Stream::~Stream() {
  // Drain outstanding work, swallowing a sticky error the owner never
  // collected (CUDA would surface it on the next API call; there is none).
  try {
    synchronize();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  thread_.join();
}

void Stream::enqueue_op(std::function<void()> fn, bool always_run,
                        std::string label) {
  Op op;
  op.fn = std::move(fn);
  // An op cannot start, on the virtual timeline, before the moment the
  // issuing thread enqueued it.
  op.issue_virtual_time = ctx_.current_clock_now();
  op.always_run = always_run;
  op.label = std::move(label);
  op.obs = obs::current_obs_bindings();
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(op));
  }
  work_ready_.notify_one();
}

void Stream::record(const Event& event) {
  enqueue_op(
      [this, event] {
        event.mark_recorded(ctx_, ctx_.clock_now(clock_));
      },
      /*always_run=*/true, {});
}

void Stream::wait(const Event& event) {
  enqueue_op([event] { event.wait(); }, /*always_run=*/false, {});
}

void Stream::synchronize() {
  std::unique_lock lock(mu_);
  drained_.wait(lock, [this] { return queue_.empty() && !busy_; });
  const std::exception_ptr error = error_;
  error_ = nullptr;
  lock.unlock();
  // Join point: the caller's timeline cannot be earlier than the work it
  // just waited for.
  ctx_.sync_current_clock_to(ctx_.clock_now(clock_));
  if (error) std::rethrow_exception(error);
}

bool Stream::idle() const {
  std::lock_guard lock(mu_);
  return queue_.empty() && !busy_;
}

void Stream::thread_main() {
  // Label this thread's wall-clock trace track after the stream so node
  // spans land on a recognizable lane in the viewer.
  obs::name_this_thread(name_);
  for (;;) {
    Op op;
    {
      std::unique_lock lock(mu_);
      busy_ = false;
      if (queue_.empty()) drained_.notify_all();
      work_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      op = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
      if (error_ && !op.always_run) continue;  // skip past a sticky error
    }
    ctx_.advance_clock_to(clock_, op.issue_virtual_time);
    DeviceContext::ClockScope scope(clock_);
    obs::ObsBindScope obs_scope(op.obs);
    cancel::stream_busy(true);
    try {
      // Real work (not fences/records) honours cancellation and the
      // injected-hang site before executing.
      if (!op.always_run) {
        if (cancel::pending("stream.queue")) {
          throw cancel::CancelledError("stream op cancelled before execution",
                                       op.label.empty() ? "stream.queue"
                                                        : op.label);
        }
        if (fault::triggered("stream.hang")) simulate_hang();
      }
      op.fn();
    } catch (DeviceError& e) {
      // Annotate the in-flight exception (same object under
      // std::current_exception) so the sticky error surfaces the
      // *originating* op's site without losing its concrete type.
      e.annotate_site(op.label);
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
    } catch (cancel::CancelledError& e) {
      // Same first-wins site annotation; deliberately a distinct type so the
      // degradation ladder unwinds instead of retrying a cancelled run.
      e.annotate_site(op.label);
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
    } catch (...) {
      std::lock_guard lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    cancel::stream_busy(false);
    cancel::heartbeat();
  }
}

}  // namespace fastsc::device
