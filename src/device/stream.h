// Streams: asynchronous, ordered device work queues (cudaStream_t
// equivalent).
//
// A Stream owns one worker thread draining a FIFO of ops.  Ops on the same
// stream execute in enqueue order; ops on different streams execute
// concurrently unless ordered through Events.  Each stream carries a
// VirtualClock: its copies occupy the modeled PCIe link and its kernels the
// compute engine on the context's virtual timeline, which is how
// transfer/compute overlap becomes measurable
// (DeviceCounters::overlapped_seconds) even though the simulated copies are
// host memcpys.
//
//   * launch_async      — stream-ordered kernel launch (returns immediately)
//   * copy_to_device_async — cudaMemcpyAsync H2D.  The source is snapshotted
//     into a pinned-staging block from the context's PinnedPool at enqueue
//     time, so the caller may overwrite its buffer right away.
//   * copy_to_host_async — cudaMemcpyAsync D2H.  The destination must stay
//     valid until the stream is synchronized (the CUDA contract).
//   * record / wait     — event ordering edges between streams
//   * synchronize       — cudaStreamSynchronize; joins the stream's virtual
//     clock into the caller's and rethrows the first op error (sticky,
//     cleared on throw)
//
// Error model: the first throwing op (e.g. DeviceOutOfMemory from an async
// allocation) is captured; subsequent ops are skipped, except event records
// which always fire so dependent streams cannot deadlock on a failed
// producer.
#pragma once

#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>

#include "common/timer.h"
#include "common/types.h"
#include "device/device.h"
#include "device/event.h"

namespace fastsc::device {

class Stream {
 public:
  explicit Stream(DeviceContext& ctx, std::string name = "stream");
  ~Stream();

  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  [[nodiscard]] DeviceContext& context() noexcept { return ctx_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Enqueue a raw op.  It runs on the stream thread with metering routed to
  /// this stream's virtual clock, so any device call made inside (launch,
  /// DeviceBuffer copies, dblas/sparse routines) is attributed to the
  /// stream's timeline.
  void enqueue(std::function<void()> op) {
    enqueue_op(std::move(op), false, {});
  }

  /// Like enqueue, but a sticky error raised by this op is annotated with
  /// `label` so synchronize() can report where the failure originated.
  void enqueue_labeled(std::string label, std::function<void()> op) {
    enqueue_op(std::move(op), false, std::move(label));
  }

  /// Stream-ordered kernel launch over [0, n).
  template <class Kernel>
  void launch_async(index_t n, Kernel kernel, LaunchConfig cfg = {}) {
    enqueue_labeled("stream.launch", [this, n, kernel = std::move(kernel), cfg] {
      launch(ctx_, n, kernel, cfg);
    });
  }

  /// cudaMemcpyAsync host->device through a pinned staging block: `host` is
  /// snapshotted now and may be reused immediately.
  template <class T>
  void copy_to_device_async(T* dev, std::span<const T> host) {
    auto block = std::make_shared<PinnedPool::Block>(
        ctx_.staging_pool().acquire(host.size_bytes()));
    if (!host.empty()) {
      std::memcpy(block->data(), host.data(), host.size_bytes());
    }
    enqueue_labeled("stream.h2d", [this, dev, block] {
      run_transfer_with_retry(ctx_, "stream.h2d", [&] {
        if (fault::triggered("stream.h2d")) {
          throw DeviceTransferError("stream.h2d", block->size(), true);
        }
        WallTimer t;
        if (!block->empty()) std::memcpy(dev, block->data(), block->size());
        ctx_.record_h2d(block->size(), t.seconds(), "stream.h2d");
      });
      ctx_.staging_pool().release(std::move(*block));
    });
  }

  template <class T>
  void copy_to_device_async(DeviceBuffer<T>& dst, std::span<const T> host) {
    FASTSC_CHECK(host.size() == dst.size(),
                 "host span size must match device buffer size");
    copy_to_device_async(dst.data(), host);
  }

  /// cudaMemcpyAsync device->host; `host` must outlive the next
  /// synchronize() on this stream.
  template <class T>
  void copy_to_host_async(std::span<T> host, const T* dev) {
    enqueue_labeled("stream.d2h", [this, host, dev] {
      run_transfer_with_retry(ctx_, "stream.d2h", [&] {
        if (fault::triggered("stream.d2h")) {
          throw DeviceTransferError("stream.d2h", host.size_bytes(), false);
        }
        WallTimer t;
        if (!host.empty()) {
          std::memcpy(host.data(), dev, host.size_bytes());
        }
        ctx_.record_d2h(host.size_bytes(), t.seconds(), "stream.d2h");
      });
    });
  }

  template <class T>
  void copy_to_host_async(std::span<T> host, const DeviceBuffer<T>& src) {
    FASTSC_CHECK(host.size() == src.size(),
                 "host span size must match device buffer size");
    copy_to_host_async(host, src.data());
  }

  /// cudaEventRecord: the event fires once every op enqueued before this
  /// call has retired, stamped with the stream's virtual time.  Fires even
  /// if an earlier op failed (see error model above).
  void record(const Event& event);

  /// cudaStreamWaitEvent with fence semantics: ops enqueued after this wait
  /// do not run until the event records; the stream clock then advances to
  /// the event timestamp.
  void wait(const Event& event);

  /// Host callback (cudaLaunchHostFunc): runs in stream order on the stream
  /// thread, unmetered.
  void add_callback(std::function<void()> fn) { enqueue(std::move(fn)); }

  /// Block until the queue drains; joins this stream's virtual clock into
  /// the caller's clock and rethrows the first captured op error.
  void synchronize();

  /// True when no op is queued or executing (cudaStreamQuery).
  [[nodiscard]] bool idle() const;

  /// This stream's virtual-timeline position, in modeled seconds.
  [[nodiscard]] double virtual_now() const {
    return ctx_.clock_now(clock_);
  }

 private:
  struct Op {
    std::function<void()> fn;
    double issue_virtual_time = 0;
    bool always_run = false;  // event records fire even after an error
    std::string label;        // site annotation for sticky errors
    /// The enqueuing thread's observability bindings (per-job attribution
    /// registry / trace recorder / site scope), re-adopted by the stream
    /// thread for the op's execution so async work is attributed to the job
    /// that issued it.
    obs::ObsBindings obs;
  };

  void enqueue_op(std::function<void()> fn, bool always_run,
                  std::string label);
  void thread_main();

  DeviceContext& ctx_;
  std::string name_;
  VirtualClock clock_;

  mutable std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable drained_;
  std::deque<Op> queue_;
  bool busy_ = false;
  bool shutdown_ = false;
  std::exception_ptr error_;

  std::thread thread_;  // last: starts after all state above is ready
};

/// Metered raw-pointer copies for use inside stream ops (or from the host):
/// the building blocks executor nodes use to stage tiles.
template <class T>
void copy_h2d(DeviceContext& ctx, T* dev, const T* host, usize n) {
  run_transfer_with_retry(ctx, "copy.h2d", [&] {
    if (fault::triggered("copy.h2d")) {
      throw DeviceTransferError("copy.h2d", n * sizeof(T), true);
    }
    WallTimer t;
    if (n != 0) std::memcpy(dev, host, n * sizeof(T));
    ctx.record_h2d(n * sizeof(T), t.seconds(), "copy.h2d");
  });
}

template <class T>
void copy_d2h(DeviceContext& ctx, T* host, const T* dev, usize n) {
  run_transfer_with_retry(ctx, "copy.d2h", [&] {
    if (fault::triggered("copy.d2h")) {
      throw DeviceTransferError("copy.d2h", n * sizeof(T), false);
    }
    WallTimer t;
    if (n != 0) std::memcpy(host, dev, n * sizeof(T));
    ctx.record_d2h(n * sizeof(T), t.seconds(), "copy.d2h");
  });
}

}  // namespace fastsc::device
