#include "device/transfer_model.h"

// Header-only today; the translation unit anchors the header in the build so
// ODR/interface changes are compile-checked even if no other TU includes it.
