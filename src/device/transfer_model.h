// PCIe transfer cost model.
//
// The paper's platform (Table I) connects CPU and GPU over PCIe x16 Gen2
// with a theoretical peak of 8 GB/s; Table VII reports the resulting
// communication-vs-computation split.  Because this reproduction's "device"
// shares host memory, actual copies are nearly free; the TransferModel
// supplies the modeled PCIe time for every host<->device copy so the Table
// VII accounting (and the PCIe ablation bench) can be reproduced.
#pragma once

#include "common/types.h"

namespace fastsc::device {

struct TransferModel {
  /// Link bandwidth in bytes/second.  Default: 8 GB/s theoretical peak of
  /// PCIe x16 Gen2 derated to a typical 75% achievable efficiency.
  double bandwidth_bytes_per_sec = 8.0e9;
  double efficiency = 0.75;

  /// Fixed per-transfer latency (driver + DMA setup), seconds.
  double latency_seconds = 10.0e-6;

  /// Peer-to-peer (device<->device) link.  Defaults model an NVLink-class
  /// interconnect: noticeably faster and lower-latency than the host PCIe
  /// path, which is what makes halo exchange cheaper than a host bounce.
  double d2d_bandwidth_bytes_per_sec = 20.0e9;
  double d2d_efficiency = 0.80;
  double d2d_latency_seconds = 5.0e-6;

  /// Modeled seconds to move `bytes` across the link.
  [[nodiscard]] double seconds_for(usize bytes) const noexcept {
    return latency_seconds +
           static_cast<double>(bytes) /
               (bandwidth_bytes_per_sec * efficiency);
  }

  /// Modeled seconds to move `bytes` across the peer-to-peer link.
  [[nodiscard]] double d2d_seconds_for(usize bytes) const noexcept {
    return d2d_latency_seconds +
           static_cast<double>(bytes) /
               (d2d_bandwidth_bytes_per_sec * d2d_efficiency);
  }
};

}  // namespace fastsc::device
