#include "fault/fault.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <stdexcept>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fastsc::fault {

namespace detail {
std::atomic<bool> g_active{false};
}  // namespace detail

bool FaultRule::matches_site(std::string_view s) const noexcept {
  if (!site.empty() && site.back() == '*') {
    const std::string_view prefix(site.data(), site.size() - 1);
    return s.substr(0, prefix.size()) == prefix;
  }
  return s == site;
}

namespace {

std::uint64_t parse_u64(std::string_view key, std::string_view v) {
  try {
    return std::stoull(std::string(v));
  } catch (const std::exception&) {
    throw std::invalid_argument("fault plan: key '" + std::string(key) +
                                "' expects a non-negative integer, got '" +
                                std::string(v) + "'");
  }
}

double parse_prob(std::string_view v) {
  double p = 0;
  try {
    p = std::stod(std::string(v));
  } catch (const std::exception&) {
    p = -1;
  }
  if (p < 0 || p > 1) {
    throw std::invalid_argument("fault plan: probability must be in [0, 1], got '" +
                                std::string(v) + "'");
  }
  return p;
}

}  // namespace

FaultPlan FaultPlan::parse(std::string_view spec) {
  FaultPlan plan;
  usize pos = 0;
  while (pos <= spec.size()) {
    const usize semi = std::min(spec.find(';', pos), spec.size());
    const std::string_view clause = spec.substr(pos, semi - pos);
    pos = semi + 1;
    if (clause.empty()) continue;

    FaultRule rule;
    bool has_site = false;
    bool has_nth = false;
    bool has_prob = false;
    usize cpos = 0;
    while (cpos <= clause.size()) {
      const usize comma = std::min(clause.find(',', cpos), clause.size());
      const std::string_view pair = clause.substr(cpos, comma - cpos);
      cpos = comma + 1;
      if (pair.empty()) continue;
      const usize eq = pair.find('=');
      if (eq == std::string_view::npos) {
        throw std::invalid_argument("fault plan: expected key=value, got '" +
                                    std::string(pair) + "'");
      }
      const std::string_view key = pair.substr(0, eq);
      const std::string_view value = pair.substr(eq + 1);
      if (key == "site") {
        rule.site = std::string(value);
        has_site = true;
      } else if (key == "nth") {
        rule.nth = parse_u64(key, value);
        has_nth = true;
      } else if (key == "p" || key == "probability") {
        rule.probability = parse_prob(value);
        rule.nth = 0;
        has_prob = true;
      } else if (key == "count") {
        rule.count = parse_u64(key, value);
      } else if (key == "seed") {
        plan.seed = parse_u64(key, value);
      } else {
        throw std::invalid_argument("fault plan: unknown key '" +
                                    std::string(key) +
                                    "' (expected site/nth/p/count/seed)");
      }
    }
    if (has_nth && has_prob) {
      throw std::invalid_argument(
          "fault plan: a clause may set nth or p, not both");
    }
    if (has_site) {
      if (rule.site.empty()) {
        throw std::invalid_argument("fault plan: empty site name");
      }
      if (rule.nth == 0 && !has_prob) {
        throw std::invalid_argument(
            "fault plan: nth must be >= 1 (use p=... for probability mode)");
      }
      plan.rules.push_back(std::move(rule));
    } else if (has_nth || has_prob) {
      throw std::invalid_argument(
          "fault plan: clause has nth/p but no site=");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultRule& r : rules) {
    if (!out.empty()) out += ';';
    out += "site=" + r.site;
    if (r.nth > 0) {
      out += ",nth=" + std::to_string(r.nth);
    } else {
      out += ",p=" + std::to_string(r.probability);
    }
    out += ",count=" + std::to_string(r.count);
  }
  if (!out.empty()) out += ';';
  out += "seed=" + std::to_string(seed);
  return out;
}

void Injector::reset_counts_locked() {
  sites_.clear();
  injected_total_ = 0;
  std::uint64_t sm = seed_;
  for (usize i = 0; i < rules_.size(); ++i) {
    rules_[i].triggers = 0;
    // Independent per-rule streams: deterministic in (seed, rule index).
    rules_[i].rng = Rng(splitmix64(sm) ^ (i * 0x9e3779b97f4a7c15ULL));
  }
}

void Injector::refresh_active_locked() {
  detail::g_active.store(armed_ || recording_, std::memory_order_relaxed);
}

void Injector::arm(FaultPlan plan) {
  std::lock_guard lock(mu_);
  seed_ = plan.seed;
  rules_.clear();
  rules_.reserve(plan.rules.size());
  for (FaultRule& r : plan.rules) {
    rules_.push_back(RuleState{std::move(r), 0, Rng(0)});
  }
  armed_ = !rules_.empty();
  reset_counts_locked();
  refresh_active_locked();
}

void Injector::disarm() {
  std::lock_guard lock(mu_);
  armed_ = false;
  rules_.clear();
  refresh_active_locked();
}

bool Injector::armed() const {
  std::lock_guard lock(mu_);
  return armed_;
}

FaultPlan Injector::plan() const {
  std::lock_guard lock(mu_);
  FaultPlan p;
  p.seed = seed_;
  for (const RuleState& rs : rules_) p.rules.push_back(rs.rule);
  return p;
}

void Injector::set_recording(bool on) {
  std::lock_guard lock(mu_);
  recording_ = on;
  if (on) reset_counts_locked();
  refresh_active_locked();
}

bool Injector::recording() const {
  std::lock_guard lock(mu_);
  return recording_;
}

std::map<std::string, SiteStats> Injector::sites_seen() const {
  std::lock_guard lock(mu_);
  return {sites_.begin(), sites_.end()};
}

std::uint64_t Injector::injected_total() const {
  std::lock_guard lock(mu_);
  return injected_total_;
}

bool Injector::on_site(std::string_view site) {
  return on_site_info(site).fired;
}

Injector::FireInfo Injector::on_site_info(std::string_view site) {
  std::uint64_t occurrence = 0;
  std::uint64_t seed = 0;
  bool fire = false;
  {
    std::lock_guard lock(mu_);
    if (!armed_ && !recording_) return {};  // raced with disarm
    seed = seed_;
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      it = sites_.emplace(std::string(site), SiteStats{}).first;
    }
    SiteStats& st = it->second;
    st.occurrences += 1;
    occurrence = st.occurrences;
    if (armed_) {
      for (RuleState& rs : rules_) {
        if (!rs.rule.matches_site(site)) continue;
        if (rs.rule.count != 0 && rs.triggers >= rs.rule.count) continue;
        bool match = false;
        if (rs.rule.nth > 0) {
          match = occurrence >= rs.rule.nth &&
                  (rs.rule.count == 0 ||
                   occurrence < rs.rule.nth + rs.rule.count);
        } else {
          match = rs.rng.uniform() < rs.rule.probability;
        }
        if (match) {
          rs.triggers += 1;
          fire = true;
          break;
        }
      }
    }
    if (fire) {
      st.triggers += 1;
      injected_total_ += 1;
    }
  }
  if (fire) {
    obs::Counter& injected = obs::metrics().counter("fault.injected");
    injected.add();
    obs::metrics().counter("fault.injected." + std::string(site)).add();
    if (obs::trace_enabled()) {
      // Registry value, not injected_total_: the registry never resets on
      // re-arm, so the trace counter series stays monotone within a run.
      obs::trace().counter("fault.injected",
                           static_cast<double>(injected.value()),
                           obs::wall_now_us());
    }
    FASTSC_LOG_WARN("fault injection: triggering at site '"
                    << site << "' (occurrence " << occurrence << ")");
  }
  return FireInfo{fire, occurrence, seed};
}

Injector& injector() {
  static Injector inj;
  static std::once_flag env_once;
  std::call_once(env_once, [] {
    const char* env = std::getenv("FASTSC_FAULTS");
    if (env == nullptr || *env == '\0') return;
    try {
      inj.arm(FaultPlan::parse(env));
      FASTSC_LOG_INFO("fault injection armed from FASTSC_FAULTS: "
                      << inj.plan().to_string());
    } catch (const std::exception& e) {
      FASTSC_LOG_WARN("ignoring malformed FASTSC_FAULTS: " << e.what());
    }
  });
  return inj;
}

namespace {
// Touch the injector during static initialization so a FASTSC_FAULTS plan
// arms (setting detail::g_active) before the first triggered() call — the
// hot path short-circuits on g_active and would otherwise never reach the
// lazy env arming in injector().
[[maybe_unused]] const bool g_env_arm_at_startup = (injector(), true);
}  // namespace

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// The deterministic corruption stream: one 64-bit word per fire, a pure
/// function of (plan seed, site, occurrence) so re-arming the same plan
/// flips the same bit of the same element.
std::uint64_t corruption_word(const Injector::FireInfo& info,
                              std::string_view site) {
  std::uint64_t s = info.seed ^ fnv1a(site) ^
                    (info.occurrence * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// Generic scalar flip: probe from h%count for the first element whose
/// magnitude (as reported by `mag`) is at least 1/4 of the payload max, then
/// flip bit `bit_lo + h_hi % bit_span` of its `Word`-wide representation.
/// The bit window covers the top mantissa and exponent bits, so the chosen
/// element changes by at least a factor of ~2 — large enough that the
/// rung-aware ABFT tolerances downstream are guaranteed to see it.
template <typename T, typename Word, typename MagFn>
void flip_scalar(std::string_view site, T* data, usize count, int bit_lo,
                 int bit_span, std::uint64_t h, MagFn mag) {
  double maxabs = 0;
  for (usize i = 0; i < count; ++i) {
    const double m = mag(data[i]);
    if (m > maxabs) maxabs = m;
  }
  usize idx = static_cast<usize>(h % count);
  if (maxabs > 0) {
    while (mag(data[idx]) < 0.25 * maxabs) idx = (idx + 1) % count;
  }
  const int bit = bit_lo + static_cast<int>((h >> 32) % bit_span);
  Word w;
  std::memcpy(&w, &data[idx], sizeof(Word));
  w ^= Word{1} << bit;
  std::memcpy(&data[idx], &w, sizeof(Word));
  FASTSC_LOG_WARN("fault injection: bitflip at site '" << site
                  << "' element " << idx << " bit " << bit);
}

}  // namespace

bool corrupt_scalars(std::string_view site, real* data, usize count) {
  if (count == 0 || !active()) return false;
  const Injector::FireInfo info = injector().on_site_info(site);
  if (!info.fired) return false;
  const std::uint64_t h = corruption_word(info, site);
  flip_scalar<real, std::uint64_t>(site, data, count, 52, 11, h,
                                   [](real v) { return std::abs(v); });
  return true;
}

bool corrupt_scalars_f32(std::string_view site, float* data, usize count) {
  if (count == 0 || !active()) return false;
  const Injector::FireInfo info = injector().on_site_info(site);
  if (!info.fired) return false;
  const std::uint64_t h = corruption_word(info, site);
  flip_scalar<float, std::uint32_t>(
      site, data, count, 23, 8, h,
      [](float v) { return std::abs(static_cast<double>(v)); });
  return true;
}

bool corrupt_scalars_b16(std::string_view site, std::uint16_t* data,
                         usize count) {
  if (count == 0 || !active()) return false;
  const Injector::FireInfo info = injector().on_site_info(site);
  if (!info.fired) return false;
  const std::uint64_t h = corruption_word(info, site);
  const auto b16_mag = [](std::uint16_t v) {
    const std::uint32_t bits = static_cast<std::uint32_t>(v) << 16;
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return std::abs(static_cast<double>(f));
  };
  flip_scalar<std::uint16_t, std::uint16_t>(site, data, count, 7, 8, h,
                                            b16_mag);
  return true;
}

bool corrupt_bytes(std::string_view site, void* data, usize bytes) {
  if (bytes == 0 || !active()) return false;
  const Injector::FireInfo info = injector().on_site_info(site);
  if (!info.fired) return false;
  const std::uint64_t h = corruption_word(info, site);
  const usize bit_index = static_cast<usize>(h % (bytes * 8));
  auto* p = static_cast<unsigned char*>(data);
  p[bit_index / 8] ^= static_cast<unsigned char>(1u << (bit_index % 8));
  FASTSC_LOG_WARN("fault injection: bitflip at site '" << site << "' byte "
                  << bit_index / 8 << " bit " << bit_index % 8);
  return true;
}

ArmScope::ArmScope(const FaultPlan& plan)
    : previous_(injector().plan()), was_armed_(injector().armed()) {
  injector().arm(plan);
}

ArmScope::~ArmScope() {
  if (was_armed_) {
    injector().arm(previous_);
  } else {
    injector().disarm();
  }
}

}  // namespace fastsc::fault
