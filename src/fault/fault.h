// Deterministic, seeded fault injection for the device runtime and solver.
//
// The pipeline threads every Lanczos iteration through a CPU<->GPU
// reverse-communication loop, so a single transient transfer fault or a
// device OOM would otherwise abort a whole run.  This module lets tests and
// benches *plan* such faults deterministically and exercise the graceful
// degradation paths (transfer retry in device/, the eigensolver fallback
// ladder and IRLM checkpoint/resume in core/ and lanczos/).
//
// Instrumented call sites ask `fault::triggered("site.name")`; the site
// names in the tree today:
//
//   device.alloc        DeviceContext::record_alloc  -> DeviceOutOfMemory
//   device.h2d/d2h      DeviceBuffer synchronous copies
//   copy.h2d/d2h        copy_h2d/copy_d2h (pipeline executor staging)
//   stream.h2d/d2h      Stream async copy ops
//   stream.hang         Stream::thread_main wedged-op simulation (spins until
//                       the cancel watchdog fires; see common/cancel.h)
//   lanczos.convergence SymLanczos restart check (simulated solver stall)
//
// Bitflip (silent-corruption) sites corrupt payloads in place instead of
// throwing — see fault::corrupt_* below:
//
//   bitflip.csr.values      resident normalized CSR value array
//   bitflip.basis.column    Lanczos basis column staged back from the device
//   bitflip.device.buffer   staged host->device transfer buffer
//   bitflip.checkpoint.blob serialized LanczosCheckpoint payload
//   bitflip.cache.entry     ResultCache entry at rest
//
// Transfer sites throw the *transient* DeviceTransferError, absorbed by the
// bounded retry in device/device.h; device.alloc throws DeviceOutOfMemory,
// which is permanent and exercises the DegradationPolicy fallback chain.
//
// A FaultPlan selects sites by exact name or trailing-'*' prefix, by
// nth-occurrence or by probability under the plan seed, each rule bounded
// by a trigger count.  Plans arm the process-wide Injector either per run
// (SpectralConfig::faults via an ArmScope) or globally (FASTSC_FAULTS).
// Arming resets all occurrence counters and re-seeds the per-rule RNGs, so
// the same plan reproduces the same faults.  With nothing armed and
// recording off, triggered() is a single relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace fastsc::fault {

/// One clause of a plan: where and when to inject.
struct FaultRule {
  /// Site name to match: exact, or a prefix when it ends in '*'
  /// (e.g. "device.*" matches device.alloc and device.h2d).
  std::string site;
  /// 1-based occurrence at which to start triggering (per matching site);
  /// 0 selects probability mode instead.
  std::uint64_t nth = 1;
  /// Per-occurrence trigger probability when nth == 0, drawn from a rule
  /// RNG deterministically seeded by the plan seed.
  double probability = 0;
  /// Maximum triggers for this rule; 0 = unbounded.  In nth mode the rule
  /// fires at occurrences nth, nth+1, ..., nth+count-1.
  std::uint64_t count = 1;

  [[nodiscard]] bool matches_site(std::string_view s) const noexcept;
};

/// A deterministic set of fault rules plus the seed for probability rules.
///
/// Text syntax (FASTSC_FAULTS / --faults): clauses separated by ';', each a
/// comma-separated list of key=value pairs with keys site, nth, p (or
/// probability), count, and seed (plan-wide):
///
///   site=device.h2d,nth=3
///   site=lanczos.convergence,p=0.5,count=10;seed=7
struct FaultPlan {
  std::vector<FaultRule> rules;
  std::uint64_t seed = 42;

  [[nodiscard]] bool empty() const noexcept { return rules.empty(); }

  /// Parse the text syntax above; throws std::invalid_argument on a
  /// malformed spec.
  [[nodiscard]] static FaultPlan parse(std::string_view spec);

  /// Round-trippable text form (parse(to_string()) == *this).
  [[nodiscard]] std::string to_string() const;
};

/// Per-site bookkeeping, visible through Injector::sites_seen().
struct SiteStats {
  std::uint64_t occurrences = 0;
  std::uint64_t triggers = 0;
};

/// Process-wide fault injector.  All mutation is mutex-guarded; the hot
/// disabled-path check lives in fault::triggered() below.
class Injector {
 public:
  Injector() = default;
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// Install `plan` and reset all occurrence counters, rule trigger counts
  /// and rule RNGs — arming the same plan twice reproduces the same faults.
  void arm(FaultPlan plan);
  void disarm();
  [[nodiscard]] bool armed() const;
  [[nodiscard]] FaultPlan plan() const;

  /// Recording mode: count site occurrences without any plan (site
  /// discovery for sweep tests).  Also resets the counters when turned on.
  void set_recording(bool on);
  [[nodiscard]] bool recording() const;

  /// Snapshot of every site consulted since the last arm/recording reset.
  [[nodiscard]] std::map<std::string, SiteStats> sites_seen() const;

  /// Total triggers since the last arm().
  [[nodiscard]] std::uint64_t injected_total() const;

  /// Slow path behind fault::triggered(); returns true when a rule fires.
  [[nodiscard]] bool on_site(std::string_view site);

  /// Fire decision plus the deterministic corruption stream for bitflip
  /// sites: `occurrence` is the 1-based site occurrence and `seed` the plan
  /// seed, so fault::corrupt_* derive the flipped element and bit purely
  /// from (plan seed, site, occurrence).
  struct FireInfo {
    bool fired = false;
    std::uint64_t occurrence = 0;
    std::uint64_t seed = 0;
  };
  [[nodiscard]] FireInfo on_site_info(std::string_view site);

 private:
  struct RuleState {
    FaultRule rule;
    std::uint64_t triggers = 0;
    Rng rng{0};
  };

  void reset_counts_locked();
  void refresh_active_locked();

  mutable std::mutex mu_;
  bool armed_ = false;
  bool recording_ = false;
  std::uint64_t seed_ = 42;
  std::vector<RuleState> rules_;
  std::map<std::string, SiteStats, std::less<>> sites_;
  std::uint64_t injected_total_ = 0;
};

/// The process-wide injector.  First access arms FASTSC_FAULTS if set.
Injector& injector();

namespace detail {
/// True iff a plan is armed or recording is on (the one relaxed load the
/// disabled path pays).
extern std::atomic<bool> g_active;
}  // namespace detail

[[nodiscard]] inline bool active() noexcept {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// Hot-path site check: one relaxed atomic load when injection is off.
[[nodiscard]] inline bool triggered(std::string_view site) {
  if (!detail::g_active.load(std::memory_order_relaxed)) return false;
  return injector().on_site(site);
}

/// Bitflip corruption family.  Unlike the throwing sites above, these sites
/// (all named "bitflip.<payload>") corrupt a live payload in place when a
/// rule fires: one bit of one element is flipped, chosen deterministically
/// from (plan seed, site, occurrence).  Nothing throws — detection is the
/// job of the ABFT checksums, invariant sentinels and CRC frames downstream.
///
/// Scalar variants flip a high mantissa/exponent bit of a *significant*
/// element (|v| >= 1/4 of the payload's max magnitude) so the perturbation
/// is at least a factor-2 change of a representative element: a flip in a
/// denormal tail would be both undetectable and harmless, which would make
/// the nth=1 sweep tests vacuous.  The byte variant flips any bit anywhere
/// and is meant for CRC-framed payloads where the compare is exact.
///
/// All variants return true iff a rule fired (the payload was modified).
bool corrupt_scalars(std::string_view site, real* data, usize count);
bool corrupt_scalars_f32(std::string_view site, float* data, usize count);
/// bfloat16 payload stored as raw uint16 words.
bool corrupt_scalars_b16(std::string_view site, std::uint16_t* data,
                         usize count);
bool corrupt_bytes(std::string_view site, void* data, usize bytes);

/// RAII arming for a per-run plan (SpectralConfig::faults); restores the
/// previously armed plan — e.g. a process-wide FASTSC_FAULTS one — on exit.
class ArmScope {
 public:
  explicit ArmScope(const FaultPlan& plan);
  ~ArmScope();
  ArmScope(const ArmScope&) = delete;
  ArmScope& operator=(const ArmScope&) = delete;

 private:
  FaultPlan previous_;
  bool was_armed_;
};

}  // namespace fastsc::fault
