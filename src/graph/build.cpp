#include "graph/build.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/cancel.h"
#include "common/error.h"
#include "common/par.h"
#include "device/algorithms.h"
#include "sparse/convert.h"

namespace fastsc::graph {

namespace {
/// Floor for clamped non-positive similarities; keeps W nonnegative with
/// strictly positive degrees so D^-1 exists (paper §IV.B assumes D_ii > 0).
constexpr real kSimilarityFloor = 1e-8;

real clamp_sim(real v, bool clamp) {
  if (!clamp) return v;
  return v > kSimilarityFloor ? v : kSimilarityFloor;
}
}  // namespace

EdgeList build_epsilon_edges_3d(const real* positions, index_t n, real eps) {
  FASTSC_CHECK(eps > 0, "epsilon must be positive");
  GridIndex3D index(positions, n, eps);
  return index.epsilon_pairs(eps);
}

EdgeList symmetrized(const EdgeList& edges) {
  EdgeList out;
  const index_t m = edges.size();
  out.u.reserve(static_cast<usize>(2 * m));
  out.v.reserve(static_cast<usize>(2 * m));
  for (index_t e = 0; e < m; ++e) {
    out.push(edges.u[static_cast<usize>(e)], edges.v[static_cast<usize>(e)]);
    out.push(edges.v[static_cast<usize>(e)], edges.u[static_cast<usize>(e)]);
  }
  return out;
}

sparse::Coo build_similarity_host(const real* x, index_t n, index_t d,
                                  const EdgeList& edges,
                                  const SimilarityParams& params,
                                  bool clamp_nonpositive) {
  const index_t nnz = edges.size();
  // Precompute the per-point statistics once (the "vectorized" fast path).
  const bool center = params.measure == SimilarityMeasure::kCrossCorrelation;
  std::vector<real> centered;
  const real* rows = x;
  if (center) {
    centered.assign(x, x + static_cast<usize>(n) * static_cast<usize>(d));
    for (index_t i = 0; i < n; ++i) {
      real* row = centered.data() + i * d;
      real mean = 0;
      for (index_t l = 0; l < d; ++l) mean += row[l];
      mean /= static_cast<real>(d);
      for (index_t l = 0; l < d; ++l) row[l] -= mean;
    }
    rows = centered.data();
  }
  std::vector<real> norms(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    const real* row = rows + i * d;
    real acc = 0;
    for (index_t l = 0; l < d; ++l) acc += row[l] * row[l];
    norms[static_cast<usize>(i)] = std::sqrt(acc);
  }
  sparse::Coo coo(n, n);
  coo.row_idx = edges.u;
  coo.col_idx = edges.v;
  coo.values.resize(static_cast<usize>(nnz));
  for (index_t e = 0; e < nnz; ++e) {
    const index_t i = edges.u[static_cast<usize>(e)];
    const index_t j = edges.v[static_cast<usize>(e)];
    const real s = similarity_precomputed(
        rows + i * d, rows + j * d, norms[static_cast<usize>(i)],
        norms[static_cast<usize>(j)], d, params);
    coo.values[static_cast<usize>(e)] = clamp_sim(s, clamp_nonpositive);
  }
  return coo;
}

sparse::DeviceCoo build_similarity_device(device::DeviceContext& ctx,
                                          const real* x, index_t n, index_t d,
                                          const EdgeList& edges,
                                          const SimilarityParams& params,
                                          bool clamp_nonpositive) {
  const index_t nnz = edges.size();
  obs::AttrSiteScope attr_site("graph.similarity");

  // Algorithm 1, step 1: transfer the input data X and the edge list E.
  device::DeviceBuffer<real> dev_x(
      ctx, std::span<const real>(
               x, static_cast<usize>(n) * static_cast<usize>(d)));
  device::DeviceBuffer<index_t> dev_u(ctx, std::span<const index_t>(edges.u));
  device::DeviceBuffer<index_t> dev_v(ctx, std::span<const index_t>(edges.v));

  // Step 2: per-point statistic vectors.
  device::DeviceBuffer<real> dev_avg(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_norm(ctx, static_cast<usize>(n));
  // Step 3: nnz-length value vector.
  device::DeviceBuffer<real> dev_val(ctx, static_cast<usize>(nnz));

  real* xp = dev_x.data();
  real* avg = dev_avg.data();
  real* nrm = dev_norm.data();
  const bool center = params.measure == SimilarityMeasure::kCrossCorrelation;

  // Step 4: kernel compute_average — thread i averages row i.
  if (center) {
    device::launch(ctx, n, [=](index_t i) {
      const real* row = xp + i * d;
      real mean = 0;
      for (index_t l = 0; l < d; ++l) mean += row[l];
      avg[i] = mean / static_cast<real>(d);
    });
  } else {
    device::fill(ctx, avg, n, real{0});
  }

  // Step 5: kernel update_data — thread i centers row i and takes its norm.
  device::launch(ctx, n, [=](index_t i) {
    real* row = xp + i * d;
    const real mean = avg[i];
    real acc = 0;
    for (index_t l = 0; l < d; ++l) {
      row[l] -= mean;
      acc += row[l] * row[l];
    }
    nrm[i] = std::sqrt(acc);
  });

  // Step 6: kernel compute_similarity — thread e handles edge e.
  const index_t* up = dev_u.data();
  const index_t* vp = dev_v.data();
  real* val = dev_val.data();
  const SimilarityParams p = params;
  const bool clamp = clamp_nonpositive;
  device::launch(ctx, nnz, [=](index_t e) {
    const index_t i = up[e];
    const index_t j = vp[e];
    const real s = similarity_precomputed(xp + i * d, xp + j * d, nrm[i],
                                          nrm[j], d, p);
    val[e] = clamp_sim(s, clamp);
  }, device::tagged("graph.similarity",
                    3.0 * static_cast<double>(nnz) * d,
                    static_cast<double>(nnz) *
                        (2.0 * d * sizeof(real) + 2.0 * sizeof(index_t)),
                    static_cast<double>(nnz) * sizeof(real)));

  // Step 7: the edge list plus val form the COO matrix on the device.
  sparse::DeviceCoo coo;
  coo.rows = n;
  coo.cols = n;
  coo.row_idx = std::move(dev_u);
  coo.col_idx = std::move(dev_v);
  coo.values = std::move(dev_val);
  return coo;
}

sparse::DeviceCoo build_similarity_device_fused_degrees(
    device::DeviceContext& ctx, const real* x, index_t n, index_t d,
    const EdgeList& edges, const SimilarityParams& params,
    std::vector<real>& degrees, Precision value_precision,
    bool clamp_nonpositive) {
  const index_t nnz = edges.size();
  obs::AttrSiteScope attr_site("graph.similarity");

  device::DeviceBuffer<real> dev_x(
      ctx, std::span<const real>(
               x, static_cast<usize>(n) * static_cast<usize>(d)));
  device::DeviceBuffer<index_t> dev_u(ctx, std::span<const index_t>(edges.u));
  device::DeviceBuffer<index_t> dev_v(ctx, std::span<const index_t>(edges.v));
  device::DeviceBuffer<real> dev_avg(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_norm(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_val(ctx, static_cast<usize>(nnz));

  real* xp = dev_x.data();
  real* avg = dev_avg.data();
  real* nrm = dev_norm.data();
  const bool center = params.measure == SimilarityMeasure::kCrossCorrelation;
  if (center) {
    device::launch(ctx, n, [=](index_t i) {
      const real* row = xp + i * d;
      real mean = 0;
      for (index_t l = 0; l < d; ++l) mean += row[l];
      avg[i] = mean / static_cast<real>(d);
    });
  } else {
    device::fill(ctx, avg, n, real{0});
  }
  device::launch(ctx, n, [=](index_t i) {
    real* row = xp + i * d;
    const real mean = avg[i];
    real acc = 0;
    for (index_t l = 0; l < d; ++l) {
      row[l] -= mean;
      acc += row[l] * row[l];
    }
    nrm[i] = std::sqrt(acc);
  });

  // compute_similarity with the value quantized through the target storage
  // width on store (quantize is the identity at fp64, so the fp64 run is
  // bitwise the unfused kernel).
  const index_t* up = dev_u.data();
  const index_t* vp = dev_v.data();
  real* val = dev_val.data();
  const SimilarityParams p = params;
  const bool clamp = clamp_nonpositive;
  const Precision prec = value_precision;
  const auto bps = static_cast<double>(bytes_per_scalar(prec));
  {
    const double nnzd = static_cast<double>(nnz);
    const double rbytes =
        nnzd * (2.0 * d * sizeof(real) + 2.0 * sizeof(index_t));
    const double wbytes = nnzd * bps;
    device::LaunchConfig cfg =
        device::tagged("graph.similarity", 3.0 * nnzd * d, rbytes, wbytes);
    const double rscalar = nnzd * 2.0 * d * sizeof(real);
    cfg.bytes_per_scalar =
        (rscalar * sizeof(real) + wbytes * bps) / (rscalar + wbytes);
    device::launch(ctx, nnz, [=](index_t e) {
      const index_t i = up[e];
      const index_t j = vp[e];
      const real s = similarity_precomputed(xp + i * d, xp + j * d, nrm[i],
                                            nrm[j], d, p);
      val[e] = quantize(clamp_sim(s, clamp), prec);
    }, cfg);
  }

  // Fused degree pass: a fixed number of contiguous edge spans accumulate
  // span-partial degree rows (each span thread owns its row — no cross-
  // thread writes), then a fold in ascending span order.  The span count is
  // a constant, NOT the worker count, so every degree bit is machine- and
  // device-count-independent.
  constexpr index_t kFusedDegreeSpans = 64;
  const index_t spans = std::min<index_t>(kFusedDegreeSpans,
                                          std::max<index_t>(nnz, 1));
  device::DeviceBuffer<real> partial(
      ctx, static_cast<usize>(spans) * static_cast<usize>(n));
  device::DeviceBuffer<real> deg(ctx, static_cast<usize>(n));
  device::fill(ctx, partial.data(), spans * n, real{0});
  real* pp = partial.data();
  {
    const double nnzd = static_cast<double>(nnz);
    device::LaunchConfig cfg = device::tagged(
        "graph.degree_fused", nnzd, nnzd * (bps + sizeof(index_t)),
        nnzd * sizeof(real));
    cfg.bytes_per_scalar =
        (nnzd * bps * bps + nnzd * 8.0 * 8.0) / (nnzd * bps + nnzd * 8.0);
    device::launch(ctx, spans, [=](index_t s) {
      const index_t b = s * nnz / spans;
      const index_t e1 = (s + 1) * nnz / spans;
      real* mine = pp + s * n;
      for (index_t e = b; e < e1; ++e) mine[up[e]] += val[e];
    }, cfg);
  }
  real* dp = deg.data();
  {
    const double work = static_cast<double>(spans) * static_cast<double>(n);
    device::launch(ctx, n, [=](index_t i) {
      real acc = 0;
      for (index_t s = 0; s < spans; ++s) acc += pp[s * n + i];
      dp[i] = acc;
    }, device::tagged("graph.degree_fused", work, work * sizeof(real),
                      static_cast<double>(n) * sizeof(real)));
  }
  degrees.resize(static_cast<usize>(n));
  deg.copy_to_host(std::span<real>(degrees));

  sparse::DeviceCoo coo;
  coo.rows = n;
  coo.cols = n;
  coo.row_idx = std::move(dev_u);
  coo.col_idx = std::move(dev_v);
  coo.values = std::move(dev_val);
  return coo;
}

sparse::Coo build_similarity_device_chunked(device::DeviceContext& ctx,
                                            const real* x, index_t n,
                                            index_t d, const EdgeList& edges,
                                            const SimilarityParams& params,
                                            index_t chunk_edges,
                                            bool clamp_nonpositive) {
  FASTSC_CHECK(chunk_edges >= 1, "chunk size must be positive");
  const index_t nnz = edges.size();
  obs::AttrSiteScope attr_site("graph.similarity");

  // Resident state: X (centered in place) and the per-point statistics —
  // the same prologue as Algorithm 1.
  device::DeviceBuffer<real> dev_x(
      ctx, std::span<const real>(
               x, static_cast<usize>(n) * static_cast<usize>(d)));
  device::DeviceBuffer<real> dev_avg(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_norm(ctx, static_cast<usize>(n));
  real* xp = dev_x.data();
  real* avg = dev_avg.data();
  real* nrm = dev_norm.data();
  const bool center = params.measure == SimilarityMeasure::kCrossCorrelation;
  if (center) {
    device::launch(ctx, n, [=](index_t i) {
      const real* row = xp + i * d;
      real mean = 0;
      for (index_t l = 0; l < d; ++l) mean += row[l];
      avg[i] = mean / static_cast<real>(d);
    });
  } else {
    device::fill(ctx, avg, n, real{0});
  }
  device::launch(ctx, n, [=](index_t i) {
    real* row = xp + i * d;
    const real mean = avg[i];
    real acc = 0;
    for (index_t l = 0; l < d; ++l) {
      row[l] -= mean;
      acc += row[l] * row[l];
    }
    nrm[i] = std::sqrt(acc);
  });

  // Streaming state: one chunk of (u, v, val) at a time.
  sparse::Coo out(n, n);
  out.reserve(nnz);
  std::vector<real> host_vals(static_cast<usize>(
      std::min<index_t>(chunk_edges, std::max<index_t>(nnz, 1))));
  const SimilarityParams p = params;
  const bool clamp = clamp_nonpositive;
  for (index_t start = 0; start < nnz; start += chunk_edges) {
    // One poll per streamed chunk: bounded work between polls is one chunk's
    // H2D + kernel + D2H.  Similarity has no partial result, so this throws
    // on any cancellation (including an expired budget).
    cancel::poll("similarity.chunk");
    const index_t count = std::min(chunk_edges, nnz - start);
    device::DeviceBuffer<index_t> dev_u(
        ctx, std::span<const index_t>(edges.u.data() + start,
                                      static_cast<usize>(count)));
    device::DeviceBuffer<index_t> dev_v(
        ctx, std::span<const index_t>(edges.v.data() + start,
                                      static_cast<usize>(count)));
    device::DeviceBuffer<real> dev_val(ctx, static_cast<usize>(count));
    const index_t* up = dev_u.data();
    const index_t* vp = dev_v.data();
    real* val = dev_val.data();
    device::launch(ctx, count, [=](index_t e) {
      const index_t i = up[e];
      const index_t j = vp[e];
      const real s = similarity_precomputed(xp + i * d, xp + j * d, nrm[i],
                                            nrm[j], d, p);
      val[e] = clamp_sim(s, clamp);
    }, device::tagged("graph.similarity",
                      3.0 * static_cast<double>(count) * d,
                      static_cast<double>(count) *
                          (2.0 * d * sizeof(real) + 2.0 * sizeof(index_t)),
                      static_cast<double>(count) * sizeof(real)));
    dev_val.copy_to_host(
        std::span<real>(host_vals.data(), static_cast<usize>(count)));
    for (index_t e = 0; e < count; ++e) {
      out.push(edges.u[static_cast<usize>(start + e)],
               edges.v[static_cast<usize>(start + e)],
               host_vals[static_cast<usize>(e)]);
    }
  }
  return out;
}

sparse::Coo build_knn_graph(const real* x, index_t n, index_t d,
                            index_t k_neighbors,
                            const SimilarityParams& params) {
  FASTSC_CHECK(k_neighbors >= 1 && k_neighbors < n,
               "k_neighbors must be in [1, n)");
  // Per-row top-k by similarity, parallel across rows.
  std::vector<std::vector<std::pair<index_t, real>>> top(
      static_cast<usize>(n));
  parallel_for(index_t{0}, n, [&](index_t i) {
    // Min-heap of the best k (smallest similarity at top).
    using Entry = std::pair<real, index_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (index_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const real s = similarity_direct(x + i * d, x + j * d, d, params);
      if (static_cast<index_t>(heap.size()) < k_neighbors) {
        heap.emplace(s, j);
      } else if (s > heap.top().first) {
        heap.pop();
        heap.emplace(s, j);
      }
    }
    auto& row = top[static_cast<usize>(i)];
    row.reserve(heap.size());
    while (!heap.empty()) {
      row.emplace_back(heap.top().second, heap.top().first);
      heap.pop();
    }
  });
  // Union rule + symmetrization via sort_and_merge of max duplicates: insert
  // both directions; duplicates get merged by taking the value sum / 2 via
  // averaging identical values (similarities are equal both ways).
  sparse::Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (const auto& [j, s] : top[static_cast<usize>(i)]) {
      coo.push(i, j, s);
      coo.push(j, i, s);
    }
  }
  sparse::sort_and_merge(coo);
  // Duplicated (i,j) pairs (mutual neighbors) were summed; halve them back.
  // A pair appears either twice (mutual or one-directional insertion both
  // ways) or four times (both directions inserted by both endpoints).  The
  // easiest correct normalization: rebuild values as the direct similarity.
  parallel_for(index_t{0}, coo.nnz(), [&](index_t e) {
    const index_t i = coo.row_idx[static_cast<usize>(e)];
    const index_t j = coo.col_idx[static_cast<usize>(e)];
    coo.values[static_cast<usize>(e)] =
        similarity_direct(x + i * d, x + j * d, d, params);
  });
  return coo;
}

sparse::Coo build_threshold_graph(const real* x, index_t n, index_t d,
                                  real lambda, const SimilarityParams& params) {
  sparse::Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) {
      const real s = similarity_direct(x + i * d, x + j * d, d, params);
      if (s > lambda) {
        coo.push(i, j, s);
        coo.push(j, i, s);
      }
    }
  }
  sparse::sort_and_merge(coo);
  return coo;
}

sparse::Coo remove_isolated(const sparse::Coo& w,
                            std::vector<index_t>& old_of_new) {
  std::vector<char> has_edge(static_cast<usize>(w.rows), 0);
  for (usize e = 0; e < w.values.size(); ++e) {
    if (w.values[e] != 0) {
      has_edge[static_cast<usize>(w.row_idx[e])] = 1;
      has_edge[static_cast<usize>(w.col_idx[e])] = 1;
    }
  }
  std::vector<index_t> new_of_old(static_cast<usize>(w.rows), -1);
  old_of_new.clear();
  for (index_t i = 0; i < w.rows; ++i) {
    if (has_edge[static_cast<usize>(i)]) {
      new_of_old[static_cast<usize>(i)] =
          static_cast<index_t>(old_of_new.size());
      old_of_new.push_back(i);
    }
  }
  sparse::Coo out(static_cast<index_t>(old_of_new.size()),
                  static_cast<index_t>(old_of_new.size()));
  out.reserve(w.nnz());
  for (usize e = 0; e < w.values.size(); ++e) {
    if (w.values[e] != 0) {
      out.push(new_of_old[static_cast<usize>(w.row_idx[e])],
               new_of_old[static_cast<usize>(w.col_idx[e])], w.values[e]);
    }
  }
  return out;
}

}  // namespace fastsc::graph
