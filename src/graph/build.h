// Similarity-graph construction (paper §IV.A, Algorithm 1).
//
// Three graph structures from von Luxburg's tutorial, all supported:
// epsilon-distance, k-nearest-neighbor, and lambda-threshold.  The device
// path implements Algorithm 1 verbatim: transfer X and the edge list E,
// run the compute_average / update_data / compute_similarity kernels, and
// assemble a COO similarity matrix on the device.
#pragma once

#include "device/device.h"
#include "graph/grid_index.h"
#include "graph/similarity.h"
#include "sparse/coo.h"
#include "sparse/spmv.h"

namespace fastsc::graph {

/// Build the epsilon-distance edge list for points in R^3 (one entry per
/// unordered pair within eps).  This generates the E input the paper assumes
/// is given for the DTI dataset.
[[nodiscard]] EdgeList build_epsilon_edges_3d(const real* positions, index_t n,
                                              real eps);

/// Mirror an unordered edge list into a directed one (u->v and v->u), which
/// is the entry set of the symmetric similarity matrix.
[[nodiscard]] EdgeList symmetrized(const EdgeList& edges);

/// Host, vectorized similarity construction: precompute per-point statistics
/// once, then one dot product per edge.  `edges` must already be symmetrized
/// if a symmetric W is desired.  Entries with non-positive similarity are
/// clamped to a small positive floor when `clamp_nonpositive` is set, so W
/// stays a valid weight matrix (degrees > 0).
[[nodiscard]] sparse::Coo build_similarity_host(const real* x, index_t n,
                                                index_t d,
                                                const EdgeList& edges,
                                                const SimilarityParams& params,
                                                bool clamp_nonpositive = true);

/// Device implementation of Algorithm 1.  Transfers X and E, runs the three
/// kernels, and returns the COO similarity matrix resident on the device
/// (row-sorted iff the edge list was row-sorted).
[[nodiscard]] sparse::DeviceCoo build_similarity_device(
    device::DeviceContext& ctx, const real* x, index_t n, index_t d,
    const EdgeList& edges, const SimilarityParams& params,
    bool clamp_nonpositive = true);

/// Fused Algorithm 1 + degree pass (mixed-precision ladder, DESIGN.md §13):
/// builds the device COO like build_similarity_device and computes the
/// weighted degrees d_i = sum_j W_ij in the same build stage, without first
/// materializing a CSR — a span-partial edge sweep (kFusedDegreeSpans fixed
/// contiguous spans, each folded in ascending span order) replaces the
/// sort + coo2csr + ones-SpMV degree prologue of Algorithm 2.  The span
/// count is fixed so the fold order — and hence every degree bit — is
/// independent of the worker count and of the device count (the sharded
/// path consumes the same host vector).  Note the fold order differs from
/// CSR entry order, so fused-build degrees are numerically (not bitwise)
/// equal to the unfused path's.
///
/// `value_precision` below fp64 quantizes each similarity on store (RNE
/// through the narrow width; degrees then accumulate the *quantized*
/// values in fp64, keeping d_i an exact row sum of the operator actually
/// used).  `degrees` is filled with the host vector (length n).
[[nodiscard]] sparse::DeviceCoo build_similarity_device_fused_degrees(
    device::DeviceContext& ctx, const real* x, index_t n, index_t d,
    const EdgeList& edges, const SimilarityParams& params,
    std::vector<real>& degrees, Precision value_precision = Precision::kFp64,
    bool clamp_nonpositive = true);

/// Out-of-core variant of Algorithm 1 for edge lists that exceed the device
/// memory budget (the paper's K20c has 5 GB; the DTI edge list alone is
/// ~100 MB and the nnz-length value vector rides along).  X and the
/// per-point statistics stay resident; the edge list streams through the
/// device in chunks of `chunk_edges`, and the finished COO accumulates on
/// the host.  Results are bit-identical to build_similarity_device.
[[nodiscard]] sparse::Coo build_similarity_device_chunked(
    device::DeviceContext& ctx, const real* x, index_t n, index_t d,
    const EdgeList& edges, const SimilarityParams& params,
    index_t chunk_edges, bool clamp_nonpositive = true);

/// k-nearest-neighbor graph (union rule: i~j if i in knn(j) OR j in knn(i)),
/// brute-force O(n^2 d) with a bounded per-row heap; returns symmetric COO.
/// `k_neighbors` is unrelated to the cluster count (paper's note).
[[nodiscard]] sparse::Coo build_knn_graph(const real* x, index_t n, index_t d,
                                          index_t k_neighbors,
                                          const SimilarityParams& params);

/// lambda-threshold graph: connect pairs with similarity > lambda.
/// O(n^2 d); intended for small/medium n.
[[nodiscard]] sparse::Coo build_threshold_graph(const real* x, index_t n,
                                                index_t d, real lambda,
                                                const SimilarityParams& params);

/// Remove isolated (zero-degree) vertices: returns the induced submatrix and
/// fills `old_of_new` with the surviving original indices.
[[nodiscard]] sparse::Coo remove_isolated(const sparse::Coo& w,
                                          std::vector<index_t>& old_of_new);

}  // namespace fastsc::graph
