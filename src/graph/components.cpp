#include "graph/components.h"

#include <algorithm>

#include "common/error.h"
#include "sparse/convert.h"

namespace fastsc::graph {

index_t ComponentInfo::largest() const {
  FASTSC_CHECK(count > 0, "no components in an empty graph");
  return static_cast<index_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

namespace {

/// Union-find with path halving and union by size.
class DisjointSets {
 public:
  explicit DisjointSets(index_t n) : parent_(static_cast<usize>(n)),
                                     size_(static_cast<usize>(n), 1) {
    for (index_t i = 0; i < n; ++i) parent_[static_cast<usize>(i)] = i;
  }

  index_t find(index_t x) {
    while (parent_[static_cast<usize>(x)] != x) {
      parent_[static_cast<usize>(x)] =
          parent_[static_cast<usize>(parent_[static_cast<usize>(x)])];
      x = parent_[static_cast<usize>(x)];
    }
    return x;
  }

  void unite(index_t a, index_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[static_cast<usize>(a)] < size_[static_cast<usize>(b)]) {
      std::swap(a, b);
    }
    parent_[static_cast<usize>(b)] = a;
    size_[static_cast<usize>(a)] += size_[static_cast<usize>(b)];
  }

 private:
  std::vector<index_t> parent_;
  std::vector<index_t> size_;
};

ComponentInfo label_from_sets(DisjointSets& sets, index_t n) {
  ComponentInfo info;
  info.component_of.assign(static_cast<usize>(n), -1);
  std::vector<index_t> id_of_root(static_cast<usize>(n), -1);
  for (index_t v = 0; v < n; ++v) {
    const index_t root = sets.find(v);
    if (id_of_root[static_cast<usize>(root)] < 0) {
      id_of_root[static_cast<usize>(root)] = info.count;
      info.sizes.push_back(0);
      ++info.count;
    }
    const index_t id = id_of_root[static_cast<usize>(root)];
    info.component_of[static_cast<usize>(v)] = id;
    info.sizes[static_cast<usize>(id)] += 1;
  }
  return info;
}

}  // namespace

ComponentInfo connected_components(const sparse::Csr& w) {
  FASTSC_CHECK(w.rows == w.cols, "components need a square matrix");
  DisjointSets sets(w.rows);
  for (index_t r = 0; r < w.rows; ++r) {
    for (index_t p = w.row_ptr[static_cast<usize>(r)];
         p < w.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      if (w.values[static_cast<usize>(p)] != 0) {
        sets.unite(r, w.col_idx[static_cast<usize>(p)]);
      }
    }
  }
  return label_from_sets(sets, w.rows);
}

ComponentInfo connected_components(const sparse::Coo& w) {
  FASTSC_CHECK(w.rows == w.cols, "components need a square matrix");
  DisjointSets sets(w.rows);
  for (usize e = 0; e < w.values.size(); ++e) {
    if (w.values[e] != 0) sets.unite(w.row_idx[e], w.col_idx[e]);
  }
  return label_from_sets(sets, w.rows);
}

sparse::Coo largest_component(const sparse::Coo& w,
                              std::vector<index_t>& old_of_new) {
  const ComponentInfo info = connected_components(w);
  const index_t keep = info.largest();
  std::vector<index_t> new_of_old(static_cast<usize>(w.rows), -1);
  old_of_new.clear();
  for (index_t v = 0; v < w.rows; ++v) {
    if (info.component_of[static_cast<usize>(v)] == keep) {
      new_of_old[static_cast<usize>(v)] =
          static_cast<index_t>(old_of_new.size());
      old_of_new.push_back(v);
    }
  }
  sparse::Coo out(static_cast<index_t>(old_of_new.size()),
                  static_cast<index_t>(old_of_new.size()));
  for (usize e = 0; e < w.values.size(); ++e) {
    const index_t u = new_of_old[static_cast<usize>(w.row_idx[e])];
    const index_t v = new_of_old[static_cast<usize>(w.col_idx[e])];
    if (u >= 0 && v >= 0) out.push(u, v, w.values[e]);
  }
  return out;
}

}  // namespace fastsc::graph
