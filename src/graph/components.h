// Connected components of an undirected graph.
//
// Spectral clustering is only well-posed per connected component: each
// component contributes an eigenvalue-1 eigenvector of D^-1 W, so asking for
// fewer clusters than components (or clustering a fragmented graph) produces
// degenerate embeddings.  The pipeline and examples use this module to
// detect and report fragmentation.
#pragma once

#include <vector>

#include "common/types.h"
#include "sparse/coo.h"
#include "sparse/csr.h"

namespace fastsc::graph {

struct ComponentInfo {
  /// Component id per vertex, ids in [0, count) ordered by first vertex.
  std::vector<index_t> component_of;
  /// Number of components.
  index_t count = 0;
  /// Vertices per component.
  std::vector<index_t> sizes;

  /// Index of the largest component.
  [[nodiscard]] index_t largest() const;
};

/// Label connected components (treats the matrix pattern as undirected —
/// both (i,j) and (j,i) connect i and j).
[[nodiscard]] ComponentInfo connected_components(const sparse::Csr& w);
[[nodiscard]] ComponentInfo connected_components(const sparse::Coo& w);

/// Extract the induced subgraph of the largest component; fills
/// `old_of_new` with the surviving original vertex ids.
[[nodiscard]] sparse::Coo largest_component(const sparse::Coo& w,
                                            std::vector<index_t>& old_of_new);

}  // namespace fastsc::graph
