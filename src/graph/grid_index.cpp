#include "graph/grid_index.h"

#include <cmath>

#include "common/error.h"

namespace fastsc::graph {

GridIndex3D::GridIndex3D(const real* positions, index_t n, real cell_size)
    : positions_(positions), n_(n), cell_size_(cell_size) {
  FASTSC_CHECK(cell_size > 0, "cell size must be positive");
  cells_.reserve(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    const auto c = cell_of(i);
    cells_[key_of(c[0], c[1], c[2])].push_back(i);
  }
}

std::array<std::int64_t, 3> GridIndex3D::cell_of(index_t i) const {
  const real* p = positions_ + i * 3;
  return {static_cast<std::int64_t>(std::floor(p[0] / cell_size_)),
          static_cast<std::int64_t>(std::floor(p[1] / cell_size_)),
          static_cast<std::int64_t>(std::floor(p[2] / cell_size_))};
}

GridIndex3D::CellKey GridIndex3D::key_of(std::int64_t cx, std::int64_t cy,
                                         std::int64_t cz) {
  // Pack 21 bits per axis with offset; fine for |cell index| < 2^20.
  const auto ux = static_cast<std::uint64_t>(cx + (1 << 20));
  const auto uy = static_cast<std::uint64_t>(cy + (1 << 20));
  const auto uz = static_cast<std::uint64_t>(cz + (1 << 20));
  return (ux << 42) | (uy << 21) | uz;
}

EdgeList GridIndex3D::epsilon_pairs(real eps) const {
  FASTSC_CHECK(eps <= cell_size_,
               "epsilon_pairs requires eps <= cell size (build the index "
               "with cell_size >= eps)");
  const real eps2 = eps * eps;
  EdgeList edges;
  for (index_t i = 0; i < n_; ++i) {
    const real* pi = positions_ + i * 3;
    const auto c = cell_of(i);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        for (std::int64_t dz = -1; dz <= 1; ++dz) {
          const auto it = cells_.find(key_of(c[0] + dx, c[1] + dy, c[2] + dz));
          if (it == cells_.end()) continue;
          for (index_t j : it->second) {
            if (j <= i) continue;  // emit each unordered pair once
            const real* pj = positions_ + j * 3;
            const real d0 = pi[0] - pj[0];
            const real d1 = pi[1] - pj[1];
            const real d2 = pi[2] - pj[2];
            if (d0 * d0 + d1 * d1 + d2 * d2 <= eps2) edges.push(i, j);
          }
        }
      }
    }
  }
  return edges;
}

std::vector<index_t> GridIndex3D::neighbors_of(index_t i, real eps) const {
  FASTSC_CHECK(eps <= cell_size_, "neighbors_of requires eps <= cell size");
  const real eps2 = eps * eps;
  std::vector<index_t> out;
  const real* pi = positions_ + i * 3;
  const auto c = cell_of(i);
  for (std::int64_t dx = -1; dx <= 1; ++dx) {
    for (std::int64_t dy = -1; dy <= 1; ++dy) {
      for (std::int64_t dz = -1; dz <= 1; ++dz) {
        const auto it = cells_.find(key_of(c[0] + dx, c[1] + dy, c[2] + dz));
        if (it == cells_.end()) continue;
        for (index_t j : it->second) {
          if (j == i) continue;
          const real* pj = positions_ + j * 3;
          const real d0 = pi[0] - pj[0];
          const real d1 = pi[1] - pj[1];
          const real d2 = pi[2] - pj[2];
          if (d0 * d0 + d1 * d1 + d2 * d2 <= eps2) out.push_back(j);
        }
      }
    }
  }
  return out;
}

}  // namespace fastsc::graph
