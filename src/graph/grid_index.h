// Uniform-grid spatial index for epsilon-neighbourhood queries in R^3.
//
// The paper's DTI workload arrives with a precomputed edge list of voxel
// pairs within 4 mm; this index is the substrate that *produces* such edge
// lists from point coordinates (DESIGN.md substitution table).  Cells have
// side >= eps so each query only visits the 27 surrounding cells.
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace fastsc::graph {

/// Undirected edge list in struct-of-arrays form (the paper's E array).
struct EdgeList {
  std::vector<index_t> u;
  std::vector<index_t> v;

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(u.size());
  }
  void push(index_t a, index_t b) {
    u.push_back(a);
    v.push_back(b);
  }
};

class GridIndex3D {
 public:
  /// positions: row-major n x 3.
  GridIndex3D(const real* positions, index_t n, real cell_size);

  /// All unordered pairs (i < j) within Euclidean distance <= eps.
  /// Requires eps <= cell_size.
  [[nodiscard]] EdgeList epsilon_pairs(real eps) const;

  /// Indices of points within distance <= eps of point i (excluding i).
  [[nodiscard]] std::vector<index_t> neighbors_of(index_t i, real eps) const;

  [[nodiscard]] index_t size() const noexcept { return n_; }

 private:
  using CellKey = std::uint64_t;

  [[nodiscard]] std::array<std::int64_t, 3> cell_of(index_t i) const;
  [[nodiscard]] static CellKey key_of(std::int64_t cx, std::int64_t cy,
                                      std::int64_t cz);

  const real* positions_;
  index_t n_;
  real cell_size_;
  std::unordered_map<CellKey, std::vector<index_t>> cells_;
};

}  // namespace fastsc::graph
