#include "graph/laplacian.h"

#include <cmath>

#include "common/error.h"
#include "device/algorithms.h"
#include "sparse/convert.h"

namespace fastsc::graph {

std::vector<real> degrees(const sparse::Coo& w) {
  std::vector<real> d(static_cast<usize>(w.rows), 0.0);
  for (usize e = 0; e < w.values.size(); ++e) {
    d[static_cast<usize>(w.row_idx[e])] += w.values[e];
  }
  return d;
}

sparse::Csr normalized_rw_host(const sparse::Coo& w) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const std::vector<real> d = degrees(w);
  for (real di : d) {
    FASTSC_CHECK(di > 0,
                 "zero-degree vertex: remove isolated nodes before "
                 "normalizing (paper §IV.B)");
  }
  sparse::Coo scaled = w;
  for (usize e = 0; e < scaled.values.size(); ++e) {
    scaled.values[e] /= d[static_cast<usize>(scaled.row_idx[e])];
  }
  return sparse::coo_to_csr(scaled);
}

sparse::Csr unnormalized_laplacian(const sparse::Coo& w) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const std::vector<real> d = degrees(w);
  sparse::Coo l(w.rows, w.cols);
  l.reserve(w.nnz() + w.rows);
  for (index_t i = 0; i < w.rows; ++i) {
    l.push(i, i, d[static_cast<usize>(i)]);
  }
  for (usize e = 0; e < w.values.size(); ++e) {
    l.push(w.row_idx[e], w.col_idx[e], -w.values[e]);
  }
  sparse::sort_and_merge(l);
  return sparse::coo_to_csr(l);
}

sparse::Csr sym_normalized_laplacian(const sparse::Coo& w) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const std::vector<real> d = degrees(w);
  for (real di : d) {
    FASTSC_CHECK(di > 0, "zero-degree vertex in sym_normalized_laplacian");
  }
  sparse::Coo l(w.rows, w.cols);
  l.reserve(w.nnz() + w.rows);
  for (index_t i = 0; i < w.rows; ++i) l.push(i, i, 1.0);
  for (usize e = 0; e < w.values.size(); ++e) {
    const real scale = std::sqrt(d[static_cast<usize>(w.row_idx[e])] *
                                 d[static_cast<usize>(w.col_idx[e])]);
    l.push(w.row_idx[e], w.col_idx[e], -w.values[e] / scale);
  }
  sparse::sort_and_merge(l);
  return sparse::coo_to_csr(l);
}

sparse::DeviceCsr normalized_rw_device(device::DeviceContext& ctx,
                                       sparse::DeviceCoo& w) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  // Default bucket for this routine; the sort/compress helpers inside carry
  // their own sparse.* sites which take precedence.
  obs::AttrSiteScope attr_site("laplacian.normalize");
  const index_t n = w.rows;
  const index_t nnz = w.nnz();

  // The paper's Algorithm 2 performs the degree SpMV with cusparseDcsrmv,
  // which needs a CSR view of W first: sort the COO by (row, col) and
  // compress.
  sparse::device_sort_coo(ctx, w);
  sparse::DeviceCsr w_csr;
  sparse::device_coo2csr(ctx, w, w_csr);

  // Step 1-2: ones vector, y = W * 1 (y_i = d_ii).
  device::DeviceBuffer<real> ones(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> y(ctx, static_cast<usize>(n));
  device::fill(ctx, ones.data(), n, real{1});
  sparse::device_csrmv(ctx, w_csr, ones.data(), y.data());

  // Degree positivity check (downloads n doubles; one-off).
  {
    const std::vector<real> yh = y.to_host();
    for (real di : yh) {
      FASTSC_CHECK(di > 0,
                   "zero-degree vertex: remove isolated nodes before "
                   "normalizing (paper §IV.B)");
    }
  }

  // Step 3: ScaleElements — thread e scales COO entry e by 1 / y[row].
  const index_t* rows = w.row_idx.data();
  real* vals = w.values.data();
  const real* yp = y.data();
  device::launch(ctx, nnz, [=](index_t e) { vals[e] /= yp[rows[e]]; },
                 device::tagged("laplacian.scale", static_cast<double>(nnz),
                                static_cast<double>(nnz) *
                                    (sizeof(real) + sizeof(index_t)),
                                static_cast<double>(nnz) * sizeof(real)));

  // Step 4-5: compress row indices -> CSR of D^-1 W.
  sparse::DeviceCsr out;
  sparse::device_coo2csr(ctx, w, out);
  return out;
}

sparse::Csr sym_normalized_host(const sparse::Coo& w,
                                std::vector<real>& inv_sqrt_degree) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const std::vector<real> d = degrees(w);
  inv_sqrt_degree.assign(static_cast<usize>(w.rows), 0.0);
  for (usize i = 0; i < d.size(); ++i) {
    FASTSC_CHECK(d[i] > 0,
                 "zero-degree vertex: remove isolated nodes before "
                 "normalizing (paper §IV.B)");
    inv_sqrt_degree[i] = 1.0 / std::sqrt(d[i]);
  }
  sparse::Coo scaled = w;
  for (usize e = 0; e < scaled.values.size(); ++e) {
    scaled.values[e] *= inv_sqrt_degree[static_cast<usize>(scaled.row_idx[e])] *
                        inv_sqrt_degree[static_cast<usize>(scaled.col_idx[e])];
  }
  return sparse::coo_to_csr(scaled);
}

sparse::DeviceCsr sym_normalized_device(
    device::DeviceContext& ctx, sparse::DeviceCoo& w,
    device::DeviceBuffer<real>& inv_sqrt_degree) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  obs::AttrSiteScope attr_site("laplacian.normalize");
  const index_t n = w.rows;
  const index_t nnz = w.nnz();

  sparse::device_sort_coo(ctx, w);
  sparse::DeviceCsr w_csr;
  sparse::device_coo2csr(ctx, w, w_csr);

  device::DeviceBuffer<real> ones(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> y(ctx, static_cast<usize>(n));
  device::fill(ctx, ones.data(), n, real{1});
  sparse::device_csrmv(ctx, w_csr, ones.data(), y.data());

  {
    const std::vector<real> yh = y.to_host();
    for (real di : yh) {
      FASTSC_CHECK(di > 0,
                   "zero-degree vertex: remove isolated nodes before "
                   "normalizing (paper §IV.B)");
    }
  }

  inv_sqrt_degree = device::DeviceBuffer<real>(ctx, static_cast<usize>(n));
  real* isd = inv_sqrt_degree.data();
  const real* yp = y.data();
  device::launch(ctx, n, [=](index_t i) { isd[i] = 1.0 / std::sqrt(yp[i]); },
                 device::tagged("laplacian.scale"));

  // ScaleElements: thread e scales entry e by isd[row] * isd[col].
  const index_t* rows = w.row_idx.data();
  const index_t* cols = w.col_idx.data();
  real* vals = w.values.data();
  device::launch(ctx, nnz,
                 [=](index_t e) { vals[e] *= isd[rows[e]] * isd[cols[e]]; },
                 device::tagged("laplacian.scale", 2.0 * nnz,
                                static_cast<double>(nnz) *
                                    (3.0 * sizeof(real) +
                                     2.0 * sizeof(index_t)),
                                static_cast<double>(nnz) * sizeof(real)));

  sparse::DeviceCsr out;
  sparse::device_coo2csr(ctx, w, out);
  return out;
}

}  // namespace fastsc::graph
