#include "graph/laplacian.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "device/algorithms.h"
#include "sparse/convert.h"

namespace fastsc::graph {

std::vector<real> degrees(const sparse::Coo& w) {
  std::vector<real> d(static_cast<usize>(w.rows), 0.0);
  for (usize e = 0; e < w.values.size(); ++e) {
    d[static_cast<usize>(w.row_idx[e])] += w.values[e];
  }
  return d;
}

sparse::Csr normalized_rw_host(const sparse::Coo& w) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const std::vector<real> d = degrees(w);
  for (real di : d) {
    FASTSC_CHECK(di > 0,
                 "zero-degree vertex: remove isolated nodes before "
                 "normalizing (paper §IV.B)");
  }
  sparse::Coo scaled = w;
  for (usize e = 0; e < scaled.values.size(); ++e) {
    scaled.values[e] /= d[static_cast<usize>(scaled.row_idx[e])];
  }
  return sparse::coo_to_csr(scaled);
}

sparse::Csr unnormalized_laplacian(const sparse::Coo& w) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const std::vector<real> d = degrees(w);
  sparse::Coo l(w.rows, w.cols);
  l.reserve(w.nnz() + w.rows);
  for (index_t i = 0; i < w.rows; ++i) {
    l.push(i, i, d[static_cast<usize>(i)]);
  }
  for (usize e = 0; e < w.values.size(); ++e) {
    l.push(w.row_idx[e], w.col_idx[e], -w.values[e]);
  }
  sparse::sort_and_merge(l);
  return sparse::coo_to_csr(l);
}

sparse::Csr sym_normalized_laplacian(const sparse::Coo& w) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const std::vector<real> d = degrees(w);
  for (real di : d) {
    FASTSC_CHECK(di > 0, "zero-degree vertex in sym_normalized_laplacian");
  }
  sparse::Coo l(w.rows, w.cols);
  l.reserve(w.nnz() + w.rows);
  for (index_t i = 0; i < w.rows; ++i) l.push(i, i, 1.0);
  for (usize e = 0; e < w.values.size(); ++e) {
    const real scale = std::sqrt(d[static_cast<usize>(w.row_idx[e])] *
                                 d[static_cast<usize>(w.col_idx[e])]);
    l.push(w.row_idx[e], w.col_idx[e], -w.values[e] / scale);
  }
  sparse::sort_and_merge(l);
  return sparse::coo_to_csr(l);
}

sparse::DeviceCsr normalized_rw_device(device::DeviceContext& ctx,
                                       sparse::DeviceCoo& w) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  // Default bucket for this routine; the sort/compress helpers inside carry
  // their own sparse.* sites which take precedence.
  obs::AttrSiteScope attr_site("laplacian.normalize");
  const index_t n = w.rows;
  const index_t nnz = w.nnz();

  // The paper's Algorithm 2 performs the degree SpMV with cusparseDcsrmv,
  // which needs a CSR view of W first: sort the COO by (row, col) and
  // compress.
  sparse::device_sort_coo(ctx, w);
  sparse::DeviceCsr w_csr;
  sparse::device_coo2csr(ctx, w, w_csr);

  // Step 1-2: ones vector, y = W * 1 (y_i = d_ii).
  device::DeviceBuffer<real> ones(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> y(ctx, static_cast<usize>(n));
  device::fill(ctx, ones.data(), n, real{1});
  sparse::device_csrmv(ctx, w_csr, ones.data(), y.data());

  // Degree positivity check (downloads n doubles; one-off).
  {
    const std::vector<real> yh = y.to_host();
    for (real di : yh) {
      FASTSC_CHECK(di > 0,
                   "zero-degree vertex: remove isolated nodes before "
                   "normalizing (paper §IV.B)");
    }
  }

  // Step 3: ScaleElements — thread e scales COO entry e by 1 / y[row].
  const index_t* rows = w.row_idx.data();
  real* vals = w.values.data();
  const real* yp = y.data();
  device::launch(ctx, nnz, [=](index_t e) { vals[e] /= yp[rows[e]]; },
                 device::tagged("laplacian.scale", static_cast<double>(nnz),
                                static_cast<double>(nnz) *
                                    (sizeof(real) + sizeof(index_t)),
                                static_cast<double>(nnz) * sizeof(real)));

  // Step 4-5: compress row indices -> CSR of D^-1 W.
  sparse::DeviceCsr out;
  sparse::device_coo2csr(ctx, w, out);
  return out;
}

sparse::Csr sym_normalized_host(const sparse::Coo& w,
                                std::vector<real>& inv_sqrt_degree) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const std::vector<real> d = degrees(w);
  inv_sqrt_degree.assign(static_cast<usize>(w.rows), 0.0);
  for (usize i = 0; i < d.size(); ++i) {
    FASTSC_CHECK(d[i] > 0,
                 "zero-degree vertex: remove isolated nodes before "
                 "normalizing (paper §IV.B)");
    inv_sqrt_degree[i] = 1.0 / std::sqrt(d[i]);
  }
  sparse::Coo scaled = w;
  for (usize e = 0; e < scaled.values.size(); ++e) {
    scaled.values[e] *= inv_sqrt_degree[static_cast<usize>(scaled.row_idx[e])] *
                        inv_sqrt_degree[static_cast<usize>(scaled.col_idx[e])];
  }
  return sparse::coo_to_csr(scaled);
}

sparse::DeviceCsr sym_normalized_device(
    device::DeviceContext& ctx, sparse::DeviceCoo& w,
    device::DeviceBuffer<real>& inv_sqrt_degree) {
  return sym_normalized_device(ctx, w, inv_sqrt_degree, NormalizeOptions{});
}

sparse::DeviceCsr sym_normalized_device(
    device::DeviceContext& ctx, sparse::DeviceCoo& w,
    device::DeviceBuffer<real>& inv_sqrt_degree,
    const NormalizeOptions& opts) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  obs::AttrSiteScope attr_site("laplacian.normalize");
  const index_t n = w.rows;
  const index_t nnz = w.nnz();

  sparse::device_sort_coo(ctx, w);
  sparse::DeviceCsr w_csr;
  sparse::device_coo2csr(ctx, w, w_csr);

  device::DeviceBuffer<real> y;
  if (opts.degrees != nullptr) {
    // Degrees already computed in the fused similarity+degree pass — one
    // metered upload replaces the ones vector and the degree SpMV.
    FASTSC_CHECK(static_cast<index_t>(opts.degrees->size()) == n,
                 "precomputed degree vector must have length rows");
    for (real di : *opts.degrees) {
      FASTSC_CHECK(di > 0,
                   "zero-degree vertex: remove isolated nodes before "
                   "normalizing (paper §IV.B)");
    }
    y = device::DeviceBuffer<real>(ctx, std::span<const real>(*opts.degrees));
  } else {
    device::DeviceBuffer<real> ones(ctx, static_cast<usize>(n));
    y = device::DeviceBuffer<real>(ctx, static_cast<usize>(n));
    device::fill(ctx, ones.data(), n, real{1});
    sparse::device_csrmv(ctx, w_csr, ones.data(), y.data());

    const std::vector<real> yh = y.to_host();
    for (real di : yh) {
      FASTSC_CHECK(di > 0,
                   "zero-degree vertex: remove isolated nodes before "
                   "normalizing (paper §IV.B)");
    }
  }

  inv_sqrt_degree = device::DeviceBuffer<real>(ctx, static_cast<usize>(n));
  real* isd = inv_sqrt_degree.data();
  const real* yp = y.data();
  device::launch(ctx, n, [=](index_t i) { isd[i] = 1.0 / std::sqrt(yp[i]); },
                 device::tagged("laplacian.scale"));

  if (opts.fuse_scale) {
    // Fused epilogue: the raw CSR is the operator; D^-1/2 is applied inside
    // the SpMV kernels.  Skips the nnz ScaleElements pass AND the second
    // coo2csr compress below.
    return w_csr;
  }

  // ScaleElements: thread e scales entry e by isd[row] * isd[col].
  const index_t* rows = w.row_idx.data();
  const index_t* cols = w.col_idx.data();
  real* vals = w.values.data();
  device::launch(ctx, nnz,
                 [=](index_t e) { vals[e] *= isd[rows[e]] * isd[cols[e]]; },
                 device::tagged("laplacian.scale", 2.0 * nnz,
                                static_cast<double>(nnz) *
                                    (3.0 * sizeof(real) +
                                     2.0 * sizeof(index_t)),
                                static_cast<double>(nnz) * sizeof(real)));

  sparse::DeviceCsr out;
  sparse::device_coo2csr(ctx, w, out);
  return out;
}

ShardedNormalized sym_normalized_sharded(device::DeviceGroup& group,
                                         const sparse::Coo& w,
                                         const sparse::RowPartition& part) {
  return sym_normalized_sharded(group, w, part, NormalizeOptions{});
}

ShardedNormalized sym_normalized_sharded(device::DeviceGroup& group,
                                         const sparse::Coo& w,
                                         const sparse::RowPartition& part,
                                         const NormalizeOptions& opts) {
  FASTSC_CHECK(w.rows == w.cols, "similarity matrix must be square");
  const auto parts = static_cast<index_t>(group.size());
  FASTSC_CHECK(part.parts == parts && part.rows == w.rows,
               "partition does not match the group and matrix");
  obs::AttrSiteScope attr_site("laplacian.normalize");
  const index_t n = w.rows;

  // Host bucketing: entries by owning device, original order kept within a
  // bucket (the per-device sort re-establishes the global (row, col) order
  // block by block — row ranges are disjoint, so each row's entry sequence
  // is exactly what the whole-matrix sort would produce).
  std::vector<sparse::Coo> chunks(static_cast<usize>(parts));
  for (index_t d = 0; d < parts; ++d) {
    chunks[static_cast<usize>(d)].rows = part.size(d);
    chunks[static_cast<usize>(d)].cols = n;
  }
  for (usize e = 0; e < w.values.size(); ++e) {
    const index_t d = part.owner(w.row_idx[e]);
    sparse::Coo& c = chunks[static_cast<usize>(d)];
    c.row_idx.push_back(w.row_idx[e] - part.begin(d));  // local rows
    c.col_idx.push_back(w.col_idx[e]);                  // global cols
    c.values.push_back(w.values[e]);
  }

  ShardedNormalized out;
  out.locals.resize(static_cast<usize>(parts));
  out.structure.resize(static_cast<usize>(parts));
  out.inv_sqrt_degree.resize(static_cast<usize>(n));
  std::vector<real> host_deg(static_cast<usize>(n));
  std::vector<device::DeviceBuffer<real>> degs(static_cast<usize>(parts));
  std::vector<device::DeviceBuffer<real>> isd(static_cast<usize>(parts));

  // Each device assembles its block and row-sums its degrees; the host
  // loop is sequential but every upload and kernel is metered on the
  // owning device's own timeline, so the modeled work runs group-wide.
  for (index_t d = 0; d < parts; ++d) {
    device::DeviceContext& ctx = group.device(static_cast<usize>(d));
    const sparse::Coo& hc = chunks[static_cast<usize>(d)];
    const index_t nl = part.size(d);
    sparse::DeviceCoo chunk(ctx, hc);
    sparse::device_sort_coo(ctx, chunk);
    sparse::device_coo2csr(ctx, chunk, out.locals[static_cast<usize>(d)]);
    if (nl == 0) {
      degs[static_cast<usize>(d)] =
          device::DeviceBuffer<real>(ctx, static_cast<usize>(nl));
      continue;
    }
    if (opts.degrees != nullptr) {
      // Fused-build degrees: one metered segment upload per device in
      // place of the rowsum kernel + degree download.
      FASTSC_CHECK(static_cast<index_t>(opts.degrees->size()) == n,
                   "precomputed degree vector must have length rows");
      degs[static_cast<usize>(d)] = device::DeviceBuffer<real>(
          ctx, std::span<const real>(opts.degrees->data() + part.begin(d),
                                     static_cast<usize>(nl)));
      std::copy_n(opts.degrees->data() + part.begin(d),
                  static_cast<usize>(nl), host_deg.data() + part.begin(d));
      continue;
    }
    degs[static_cast<usize>(d)] =
        device::DeviceBuffer<real>(ctx, static_cast<usize>(nl));
    // Degrees in CSR entry order — the same per-row accumulation the
    // single-device path's ones-vector csrmv performs (v * 1.0 == v).
    const index_t* row_ptr = out.locals[static_cast<usize>(d)].row_ptr.data();
    const real* values = out.locals[static_cast<usize>(d)].values.data();
    real* dp = degs[static_cast<usize>(d)].data();
    const auto nnzd = static_cast<double>(hc.values.size());
    device::launch(
        ctx, nl,
        [=](index_t i) {
          real acc = 0;
          for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
            acc += values[p];
          }
          dp[i] = acc;
        },
        device::tagged("laplacian.normalize", nnzd,
                       nnzd * (sizeof(real) + sizeof(index_t)),
                       static_cast<double>(nl) * sizeof(real)));
    degs[static_cast<usize>(d)].copy_to_host(std::span<real>(
        host_deg.data() + part.begin(d), static_cast<usize>(nl)));
  }
  for (real di : host_deg) {
    FASTSC_CHECK(di > 0,
                 "zero-degree vertex: remove isolated nodes before "
                 "normalizing (paper §IV.B)");
  }
  for (usize i = 0; i < host_deg.size(); ++i) {
    out.inv_sqrt_degree[i] = 1.0 / std::sqrt(host_deg[i]);
  }

  // Full inv-sqrt-degree replica per device: the own segment is computed in
  // place, every other segment arrives over the D2D mesh (each device
  // broadcasts its slice to all peers — a one-time allgather).
  for (index_t d = 0; d < parts; ++d) {
    device::DeviceContext& ctx = group.device(static_cast<usize>(d));
    isd[static_cast<usize>(d)] =
        device::DeviceBuffer<real>(ctx, static_cast<usize>(n));
    const index_t nl = part.size(d);
    if (nl == 0) continue;
    const real* dp = degs[static_cast<usize>(d)].data();
    real* ip = isd[static_cast<usize>(d)].data() + part.begin(d);
    device::launch(
        ctx, nl, [=](index_t i) { ip[i] = 1.0 / std::sqrt(dp[i]); },
        device::tagged("laplacian.scale"));
  }
  for (index_t d = 0; d < parts; ++d) {
    const index_t nl = part.size(d);
    if (nl == 0) continue;
    for (index_t e = 0; e < parts; ++e) {
      if (e == d) continue;
      group.copy_peer(static_cast<usize>(d), static_cast<usize>(e),
                      isd[static_cast<usize>(d)].data() + part.begin(d),
                      isd[static_cast<usize>(e)].data() + part.begin(d),
                      static_cast<usize>(nl), "d2d.isd_allgather");
    }
  }

  // ScaleElements over each block, then mirror the structure to the host
  // for the halo bookkeeping (values stay on the devices).
  for (index_t d = 0; d < parts; ++d) {
    device::DeviceContext& ctx = group.device(static_cast<usize>(d));
    sparse::DeviceCsr& local = out.locals[static_cast<usize>(d)];
    sparse::Csr& st = out.structure[static_cast<usize>(d)];
    const index_t nl = part.size(d);
    const index_t rb = part.begin(d);
    st.rows = nl;
    st.cols = n;
    st.row_ptr.resize(static_cast<usize>(nl) + 1);
    st.col_idx.resize(static_cast<usize>(local.nnz()));
    local.row_ptr.copy_to_host(std::span<index_t>(st.row_ptr));
    local.col_idx.copy_to_host(std::span<index_t>(st.col_idx));
    if (opts.fuse_scale) continue;  // raw values; epilogue applies D^-1/2
    if (nl == 0 || local.nnz() == 0) continue;
    const index_t* row_ptr = local.row_ptr.data();
    const index_t* col_idx = local.col_idx.data();
    real* vals = local.values.data();
    const real* ip = isd[static_cast<usize>(d)].data();
    const auto nnzd = static_cast<double>(local.nnz());
    device::launch(
        ctx, nl,
        [=](index_t i) {
          for (index_t p = row_ptr[i]; p < row_ptr[i + 1]; ++p) {
            vals[p] *= ip[rb + i] * ip[col_idx[p]];
          }
        },
        device::tagged("laplacian.scale", 2.0 * nnzd,
                       nnzd * (3.0 * sizeof(real) + 2.0 * sizeof(index_t)),
                       nnzd * sizeof(real)));
  }
  if (opts.fuse_scale) out.isd_replicas = std::move(isd);
  return out;
}

}  // namespace fastsc::graph
