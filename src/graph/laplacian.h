// Graph Laplacians (paper §II Step 2 and §IV.B, Algorithm 2).
//
// The pipeline's eigenproblem is on the random-walk operator P = D^-1 W:
// its largest-algebraic eigenvectors equal the smallest eigenvectors of the
// normalized Laplacian Ln = I - D^-1 W (the paper computes the largest of
// D^-1 W for numerical stability).  The device path follows Algorithm 2:
// degrees via SpMV with a ones vector, a ScaleElements kernel over the COO
// entries, then coo2csr.
#pragma once

#include "device/device.h"
#include "device/device_group.h"
#include "sparse/coo.h"
#include "sparse/csr.h"
#include "sparse/shard.h"
#include "sparse/spmv.h"

namespace fastsc::graph {

/// Weighted degree vector d_i = sum_j W_ij from COO.
[[nodiscard]] std::vector<real> degrees(const sparse::Coo& w);

/// Host: random-walk normalized operator P = D^-1 W as CSR.
/// Throws if any degree is <= 0 (remove isolated nodes first).
[[nodiscard]] sparse::Csr normalized_rw_host(const sparse::Coo& w);

/// Host: unnormalized Laplacian L = D - W as CSR.
[[nodiscard]] sparse::Csr unnormalized_laplacian(const sparse::Coo& w);

/// Host: symmetric normalized Laplacian Lsym = I - D^-1/2 W D^-1/2 as CSR.
[[nodiscard]] sparse::Csr sym_normalized_laplacian(const sparse::Coo& w);

/// Device (Algorithm 2): from a device COO W (row-sorted), produce the CSR
/// of D^-1 W on the device.  Steps: ones vector; y = W * 1 via csrmv;
/// ScaleElements kernel (each thread scales one COO entry by 1/y_row);
/// cusparseXcoo2csr.  Throws if a zero degree is found.
[[nodiscard]] sparse::DeviceCsr normalized_rw_device(device::DeviceContext& ctx,
                                                     sparse::DeviceCoo& w);

/// Host: the symmetric operator S = D^-1/2 W D^-1/2.
///
/// D^-1 W itself is similar to S (S = D^1/2 (D^-1 W) D^-1/2), so the two
/// share eigenvalues and their eigenvectors map as v_rw = D^-1/2 u_sym.
/// The symmetric Lanczos iteration requires a symmetric operand, so the
/// pipeline's eigensolver stage runs on S and back-maps the eigenvectors —
/// numerically equivalent to the paper's "largest eigenvectors of D^-1 W"
/// formulation (§IV.B).  Fills `inv_sqrt_degree` with 1/sqrt(d_i).
[[nodiscard]] sparse::Csr sym_normalized_host(
    const sparse::Coo& w, std::vector<real>& inv_sqrt_degree);

/// Options for the device/sharded Algorithm 2 variants (mixed-precision
/// ladder, DESIGN.md §13).
struct NormalizeOptions {
  /// Skip the ScaleElements pass and the second coo2csr compress: the
  /// returned CSR holds the RAW similarity values and the caller applies
  /// D^-1/2 inside the SpMV epilogue (device_csrmv_mp's fused_scale /
  /// set_sharded_fused_scale).  The fused operator is numerically (not
  /// bitwise) equal to pre-scaled values: the epilogue computes
  /// isd_r * (sum w * (isd_c * x_c)) — bitwise identical to the 3-launch
  /// scale/spmv/scale sequence, associated differently from scaling w.
  bool fuse_scale = false;
  /// Precomputed weighted degrees (length rows; e.g. from the fused
  /// similarity+degree build pass).  Skips the on-device ones-SpMV /
  /// rowsum degree pass.  Must be the exact operator row sums.
  const std::vector<real>* degrees = nullptr;
};

/// Device variant of sym_normalized_host: Algorithm 2 with the ScaleElements
/// kernel scaling each COO entry by 1/sqrt(y_row * y_col).
[[nodiscard]] sparse::DeviceCsr sym_normalized_device(
    device::DeviceContext& ctx, sparse::DeviceCoo& w,
    device::DeviceBuffer<real>& inv_sqrt_degree);

/// As above with NormalizeOptions (fused epilogue / precomputed degrees).
[[nodiscard]] sparse::DeviceCsr sym_normalized_device(
    device::DeviceContext& ctx, sparse::DeviceCoo& w,
    device::DeviceBuffer<real>& inv_sqrt_degree,
    const NormalizeOptions& opts);

/// Output of the distributed Algorithm 2 (sym_normalized_sharded).
struct ShardedNormalized {
  /// Device d's normalized row block (rows = part.size(d), global column
  /// indices), values resident on device d.
  std::vector<sparse::DeviceCsr> locals;
  /// Host structure mirrors of `locals` (row_ptr + col_idx; values empty) —
  /// what sparse::shard_device_locals builds the halo bookkeeping from.
  std::vector<sparse::Csr> structure;
  /// Host 1/sqrt(d_i), globally indexed (the embedding back-map needs it).
  std::vector<real> inv_sqrt_degree;
  /// Per-device full-length 1/sqrt(d) replicas — filled only under
  /// NormalizeOptions::fuse_scale (locals then hold RAW values); hand these
  /// to sparse::set_sharded_fused_scale.
  std::vector<device::DeviceBuffer<real>> isd_replicas;
};

/// Distributed Algorithm 2 over a DeviceGroup: each device sorts, converts,
/// and scales its own row block of `w` (cut by `part`), so none of the
/// normalization work serializes on the root the way the single-device
/// variant does when reused for a group.  The inverse-sqrt-degree vector is
/// allgathered device-to-device ("d2d.isd_allgather") because every block
/// scales by the degree of remote column endpoints.  Every value is bitwise
/// identical to sym_normalized_device's: per-row entry order survives the
/// per-block sort (row ranges are disjoint) and the degree / scale
/// arithmetic is expression-for-expression the same.
[[nodiscard]] ShardedNormalized sym_normalized_sharded(
    device::DeviceGroup& group, const sparse::Coo& w,
    const sparse::RowPartition& part);

/// As above with NormalizeOptions (fused epilogue / precomputed degrees).
[[nodiscard]] ShardedNormalized sym_normalized_sharded(
    device::DeviceGroup& group, const sparse::Coo& w,
    const sparse::RowPartition& part, const NormalizeOptions& opts);

}  // namespace fastsc::graph
