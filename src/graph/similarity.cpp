#include "graph/similarity.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fastsc::graph {

SimilarityMeasure parse_measure(std::string_view name) {
  if (name == "cosine") return SimilarityMeasure::kCosine;
  if (name == "crosscorr") return SimilarityMeasure::kCrossCorrelation;
  if (name == "expdecay") return SimilarityMeasure::kExpDecay;
  FASTSC_CHECK(false, "unknown similarity measure: " + std::string(name));
  return SimilarityMeasure::kCosine;  // unreachable
}

std::string measure_name(SimilarityMeasure m) {
  switch (m) {
    case SimilarityMeasure::kCosine: return "cosine";
    case SimilarityMeasure::kCrossCorrelation: return "crosscorr";
    case SimilarityMeasure::kExpDecay: return "expdecay";
  }
  return "?";
}

namespace {

real dot(const real* a, const real* b, index_t d) {
  real acc = 0;
  for (index_t l = 0; l < d; ++l) acc += a[l] * b[l];
  return acc;
}

real norm(const real* a, index_t d) { return std::sqrt(dot(a, a, d)); }

}  // namespace

real similarity_direct(const real* xi, const real* xj, index_t d,
                       const SimilarityParams& params) {
  switch (params.measure) {
    case SimilarityMeasure::kCosine: {
      const real ni = norm(xi, d);
      const real nj = norm(xj, d);
      if (ni == 0 || nj == 0) return 0;
      return dot(xi, xj, d) / (ni * nj);
    }
    case SimilarityMeasure::kCrossCorrelation: {
      // Recompute means and centered norms per call — deliberately the
      // redundant form a scripting-language loop executes.
      real mi = 0, mj = 0;
      for (index_t l = 0; l < d; ++l) {
        mi += xi[l];
        mj += xj[l];
      }
      mi /= static_cast<real>(d);
      mj /= static_cast<real>(d);
      real num = 0, di = 0, dj = 0;
      for (index_t l = 0; l < d; ++l) {
        const real a = xi[l] - mi;
        const real b = xj[l] - mj;
        num += a * b;
        di += a * a;
        dj += b * b;
      }
      if (di == 0 || dj == 0) return 0;
      return num / std::sqrt(di * dj);
    }
    case SimilarityMeasure::kExpDecay: {
      real dist2 = 0;
      for (index_t l = 0; l < d; ++l) {
        const real delta = xi[l] - xj[l];
        dist2 += delta * delta;
      }
      return std::exp(-dist2 / (2.0 * params.sigma * params.sigma));
    }
  }
  return 0;
}

real similarity_precomputed(const real* ci, const real* cj, real ni, real nj,
                            index_t d, const SimilarityParams& params) {
  switch (params.measure) {
    case SimilarityMeasure::kCosine:
    case SimilarityMeasure::kCrossCorrelation: {
      if (ni == 0 || nj == 0) return 0;
      return dot(ci, cj, d) / (ni * nj);
    }
    case SimilarityMeasure::kExpDecay: {
      // ||a-b||^2 = ||a||^2 + ||b||^2 - 2 <a,b>
      const real dist2 = ni * ni + nj * nj - 2.0 * dot(ci, cj, d);
      return std::exp(-std::max<real>(dist2, 0) /
                      (2.0 * params.sigma * params.sigma));
    }
  }
  return 0;
}

}  // namespace fastsc::graph
