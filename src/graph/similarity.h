// Similarity measures between data points (paper §IV.A, Eq. 6-8).
//
// Three measures are supported, matching the paper: cosine similarity,
// cross-correlation (cosine of mean-centered vectors — the measure used for
// the DTI workload), and the exponential-decay (Gaussian/RBF) kernel.  The
// paper's Eq. 8 prints the exponent with a positive sign; that is a typo for
// the standard RBF kernel exp(-||xi-xj||^2 / (2 sigma^2)), which we use.
#pragma once

#include <string>
#include <string_view>

#include "common/types.h"

namespace fastsc::graph {

enum class SimilarityMeasure {
  kCosine,
  kCrossCorrelation,
  kExpDecay,
};

struct SimilarityParams {
  SimilarityMeasure measure = SimilarityMeasure::kCrossCorrelation;
  real sigma = 1.0;  ///< RBF bandwidth (kExpDecay only)
};

/// Parse "cosine" / "crosscorr" / "expdecay"; throws on anything else.
[[nodiscard]] SimilarityMeasure parse_measure(std::string_view name);
[[nodiscard]] std::string measure_name(SimilarityMeasure m);

/// Direct (no precomputation) similarity between two d-vectors.  This is the
/// form a naive per-edge loop computes: cross-correlation re-derives both
/// means and both norms on every call (O(d) redundant work per edge), which
/// is exactly what the Matlab/Python loop baselines in the paper do.
[[nodiscard]] real similarity_direct(const real* xi, const real* xj, index_t d,
                                     const SimilarityParams& params);

/// Similarity from precomputed statistics: `ci`/`cj` point to mean-centered
/// rows (cross-correlation) or raw rows (cosine / RBF); `ni`/`nj` are their
/// Euclidean norms.  One O(d) dot product per edge — the vectorized /
/// device fast path of Algorithm 1.
[[nodiscard]] real similarity_precomputed(const real* ci, const real* cj,
                                          real ni, real nj, index_t d,
                                          const SimilarityParams& params);

}  // namespace fastsc::graph
