#include "kmeans/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <memory>

#include "blas/dblas.h"
#include "common/cancel.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/validation.h"
#include "device/algorithms.h"
#include "device/executor.h"
#include "kmeans/seeding.h"
#include "obs/attribution.h"
#include "obs/sdc.h"
#include "obs/trace.h"

namespace fastsc::kmeans {

namespace {

/// Empty-cluster repair: re-seed each empty centroid at the point currently
/// farthest from its assigned centroid (classic farthest-point heuristic).
/// Host-side over the downloaded per-point min distances — k and the number
/// of empties are small relative to n.
void repair_empty_clusters(std::vector<real>& centroids,
                           const std::vector<index_t>& counts,
                           const std::vector<real>& host_v,
                           std::vector<real> min_dist, index_t n, index_t d) {
  const index_t k = static_cast<index_t>(counts.size());
  for (index_t c = 0; c < k; ++c) {
    if (counts[static_cast<usize>(c)] != 0) continue;
    index_t far = 0;
    real best = -1;
    for (index_t j = 0; j < n; ++j) {
      if (min_dist[static_cast<usize>(j)] > best) {
        best = min_dist[static_cast<usize>(j)];
        far = j;
      }
    }
    std::copy(host_v.begin() + far * d, host_v.begin() + (far + 1) * d,
              centroids.begin() + c * d);
    min_dist[static_cast<usize>(far)] = -1;  // don't reuse for another empty
  }
}

/// Narrow-rung Lloyd: mirrors the sharded k-means sweep arithmetic exactly —
/// direct squared distances, fixed 256-point block partials folded in
/// ascending block order, host-side centroid update, farthest-point repair,
/// host seeding — so a single-device run is bitwise label-identical to a
/// sharded run at the same rung, for any device count.  The fp64 path's
/// expanded-norm GEMM (Vnorm + Cnorm - 2<v,c>) rounds differently, which a
/// coarse rung turns into visible label flips at quantization ties.
/// `v` is the already-quantized host embedding.
constexpr index_t kNarrowBlock = 256;  // == core's kKmeansBlock

KmeansResult kmeans_lloyd_narrow(device::DeviceContext& ctx, const real* v,
                                 index_t n, index_t d,
                                 const KmeansConfig& config) {
  const index_t k = config.k;
  const Precision prec = config.precision;
  Rng rng(config.seed);

  // Host seeding over the quantized points — the same draws the sharded
  // path makes, independent of the device count.
  const std::vector<index_t> seed_rows =
      config.seeding == Seeding::kKmeansPlusPlus
          ? kmeanspp_seeds_host(v, n, d, k, rng)
          : random_seeds_host(n, k, rng);
  std::vector<real> centroids(static_cast<usize>(k) * static_cast<usize>(d));
  const std::vector<real> host_v(
      v, v + static_cast<usize>(n) * static_cast<usize>(d));
  for (index_t c = 0; c < k; ++c) {
    std::copy(host_v.begin() + seed_rows[static_cast<usize>(c)] * d,
              host_v.begin() + (seed_rows[static_cast<usize>(c)] + 1) * d,
              centroids.begin() + c * d);
  }

  // Narrow uplink: packed scalars over PCIe, widened into the fp64 working
  // copy the sweep kernels read (values already quantized, so widening is
  // exact and every device-count sees the same fp64 bits).
  const usize w = bytes_per_scalar(prec);
  const usize cnt = static_cast<usize>(n) * static_cast<usize>(d);
  std::vector<unsigned char> packed(cnt * w);
  pack_scalars(v, cnt, prec, packed.data());
  const device::DeviceBuffer<unsigned char> staged(
      ctx, std::span<const unsigned char>(packed));
  device::DeviceBuffer<real> dev_v(ctx, cnt);
  {
    const ConstVecView pv(staged.data(), prec);
    real* vp = dev_v.data();
    const double c = static_cast<double>(cnt);
    device::LaunchConfig cfg = device::tagged(
        "precision.stage", c, c * static_cast<double>(w), c * sizeof(real));
    cfg.bytes_per_scalar = static_cast<double>(w);
    device::launch(ctx, static_cast<index_t>(cnt),
                   [=](index_t i) { vp[i] = pv.load(static_cast<usize>(i)); },
                   cfg);
  }

  // Partial record per block: k*d centroid sums, k counts, changed, inertia.
  const index_t blocks = (n + kNarrowBlock - 1) / kNarrowBlock;
  const usize stride = static_cast<usize>(k) * static_cast<usize>(d) +
                       static_cast<usize>(k) + 2;
  device::DeviceBuffer<real> dev_cent(ctx, centroids.size());
  device::DeviceBuffer<index_t> dev_cur(ctx, static_cast<usize>(n));
  device::DeviceBuffer<index_t> dev_next(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_mindist(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_partials(
      ctx, static_cast<usize>(blocks) * stride);
  {
    // Labels start at the invalid value k so the first sweep counts every
    // point as changed (the sharded cold-start convention).
    index_t* cur = dev_cur.data();
    device::launch(ctx, n, [cur, k](index_t i) { cur[i] = k; },
                   device::tagged("kmeans.init"));
  }

  KmeansResult result;
  std::vector<real> host_partials(static_cast<usize>(blocks) * stride);
  std::vector<real> sums(centroids.size());
  std::vector<index_t> counts(static_cast<usize>(k));
  real inertia = 0;
  index_t iterations = 0;
  for (index_t sweep = 0; sweep < config.max_iters; ++sweep) {
    cancel::poll("kmeans.sweep");
    dev_cent.copy_from_host(std::span<const real>(centroids));

    const real* pv = dev_v.data();
    const real* cent = dev_cent.data();
    index_t* next = dev_next.data();
    const index_t* cur = dev_cur.data();
    real* min_dist = dev_mindist.data();
    real* partials = dev_partials.data();
    device::launch(
        ctx, n,
        [pv, cent, next, min_dist, k, d](index_t i) {
          const real* row = pv + i * d;
          index_t best = 0;
          real best_val = 0;
          for (index_t c = 0; c < k; ++c) {
            real dist = 0;
            const real* cc = cent + c * d;
            for (index_t l = 0; l < d; ++l) {
              const real diff = row[l] - cc[l];
              dist += diff * diff;
            }
            if (c == 0 || dist < best_val) {
              best_val = dist;
              best = c;
            }
          }
          next[i] = best;
          min_dist[i] = best_val;
        },
        device::tagged(
            "kmeans.assign",
            3.0 * static_cast<double>(n) * static_cast<double>(k) *
                static_cast<double>(d),
            static_cast<double>(n) * static_cast<double>(d + k * d) *
                sizeof(real),
            static_cast<double>(n) * 2.0 * sizeof(real)));

    const usize block_stride = stride;
    const index_t nl = n;
    device::launch(
        ctx, blocks,
        [pv, next, cur, min_dist, partials, nl, k, d,
         block_stride](index_t b) {
          real* rec = partials + static_cast<usize>(b) * block_stride;
          for (usize s = 0; s < block_stride; ++s) rec[s] = 0;
          real* rsums = rec;
          real* rcounts = rec + k * d;
          real& rchanged = rec[block_stride - 2];
          real& rinertia = rec[block_stride - 1];
          const index_t i0 = b * kNarrowBlock;
          const index_t i1 = std::min(nl, i0 + kNarrowBlock);
          for (index_t i = i0; i < i1; ++i) {
            const index_t lab = next[i];
            const real* row = pv + i * d;
            for (index_t l = 0; l < d; ++l) rsums[lab * d + l] += row[l];
            rcounts[lab] += 1;
            if (next[i] != cur[i]) rchanged += 1;
            rinertia += min_dist[i];
          }
        },
        device::tagged(
            "kmeans.block_reduce",
            static_cast<double>(n) * static_cast<double>(d + 2),
            static_cast<double>(n) *
                (static_cast<double>(d) * sizeof(real) +
                 2.0 * sizeof(index_t)),
            static_cast<double>(blocks) * static_cast<double>(stride) *
                sizeof(real)));

    // Fold block partials in ascending global block order — bitwise the
    // same centroid update the sharded root performs.
    dev_partials.copy_to_host(std::span<real>(host_partials));
    std::fill(sums.begin(), sums.end(), real{0});
    std::fill(counts.begin(), counts.end(), index_t{0});
    index_t changed = 0;
    inertia = 0;
    for (index_t b = 0; b < blocks; ++b) {
      const real* rec = host_partials.data() + static_cast<usize>(b) * stride;
      for (usize s = 0; s < sums.size(); ++s) sums[s] += rec[s];
      for (index_t c = 0; c < k; ++c) {
        counts[static_cast<usize>(c)] +=
            static_cast<index_t>(rec[static_cast<usize>(k * d + c)]);
      }
      changed += static_cast<index_t>(rec[stride - 2]);
      inertia += rec[stride - 1];
    }

    iterations = sweep + 1;
    if (config.record_inertia || obs::trace_enabled()) {
      result.inertia_history.push_back(inertia);
      result.changed_history.push_back(changed);
      if (obs::trace_enabled()) {
        const double now = obs::wall_now_us();
        obs::trace().counter("kmeans.inertia", inertia, now);
        obs::trace().counter("kmeans.changed", static_cast<double>(changed),
                             now);
      }
    }

    dev_cur.swap(dev_next);
    if (changed == 0) {
      result.converged = true;
      break;
    }

    for (index_t c = 0; c < k; ++c) {
      const index_t cc = counts[static_cast<usize>(c)];
      if (cc == 0) continue;  // repaired below
      const real inv = real{1} / static_cast<real>(cc);
      for (index_t l = 0; l < d; ++l) {
        centroids[static_cast<usize>(c * d + l)] =
            sums[static_cast<usize>(c * d + l)] * inv;
      }
    }
    if (std::any_of(counts.begin(), counts.end(),
                    [](index_t c) { return c == 0; })) {
      repair_empty_clusters(centroids, counts, host_v, dev_mindist.to_host(),
                            n, d);
    }
  }

  result.labels.resize(static_cast<usize>(n));
  dev_cur.copy_to_host(std::span<index_t>(result.labels));
  result.centroids = centroids;
  result.iterations = iterations;
  result.objective = inertia;
  return result;
}

}  // namespace

namespace {
KmeansResult kmeans_device_single(device::DeviceContext& ctx, const real* v,
                                  index_t n, index_t d,
                                  const KmeansConfig& config);
}  // namespace

KmeansResult kmeans_device(device::DeviceContext& ctx, const real* v, index_t n,
                           index_t d, const KmeansConfig& config) {
  FASTSC_CHECK(config.restarts >= 1, "restarts must be positive");
  KmeansResult best;
  for (index_t r = 0; r < config.restarts; ++r) {
    // A deadline between restarts keeps the best completed run (anytime);
    // hard cancellation throws from the poll sites inside the run itself.
    if (r > 0 && cancel::expired("kmeans.restart")) break;
    KmeansConfig cfg = config;
    cfg.seed = config.seed + static_cast<std::uint64_t>(r) * 0x9e3779b9ULL;
    KmeansResult candidate = kmeans_device_single(ctx, v, n, d, cfg);
    if (r == 0 || candidate.objective < best.objective) {
      best = std::move(candidate);
    }
  }
  return best;
}

namespace {
KmeansResult kmeans_device_single(device::DeviceContext& ctx, const real* v,
                                  index_t n, index_t d,
                                  const KmeansConfig& config) {
  FASTSC_CHECK(n >= 1 && d >= 1, "data must be nonempty");
  FASTSC_CHECK(config.k >= 1 && config.k <= n, "k must be in [1, n]");
  check_finite({v, static_cast<usize>(n) * static_cast<usize>(d)},
               "k-means input data");
  // Default bucket for the whole solve: untagged primitives (fills, copies,
  // reductions, buffer transfers) attribute here; the hot launches below
  // carry their own finer-grained sites.
  obs::AttrSiteScope attr_site("kmeans.lloyd");
  const index_t k = config.k;
  Rng rng(config.seed);

  // Mixed-precision rung: quantize the input up front so seeding, repair,
  // and the device data all see the same values (see KmeansConfig).
  const Precision prec = config.precision;
  const bool narrow = prec != Precision::kFp64;
  const usize nd = static_cast<usize>(n) * static_cast<usize>(d);
  std::vector<real> vquant;
  if (narrow) {
    vquant.resize(nd);
    for (usize i = 0; i < nd; ++i) vquant[i] = quantize(v[i], prec);
    // Narrow rungs take the sharded-mirror sweep so labels are bitwise
    // identical to a multi-device run at the same rung.
    return kmeans_lloyd_narrow(ctx, vquant.data(), n, d, config);
  }

  // Algorithm 4 step 1: transfer V to the device.
  device::DeviceBuffer<real> dev_v(ctx, std::span<const real>(v, nd));

  // Step 2: seeding.
  std::vector<index_t> seed_rows;
  if (config.seeding == Seeding::kKmeansPlusPlus) {
    seed_rows = kmeanspp_seeds_device(ctx, dev_v.data(), n, d, k, rng,
                                      config.seeding_candidates);
  } else {
    seed_rows = random_seeds_host(n, k, rng);
  }
  std::vector<real> centroids(static_cast<usize>(k) * static_cast<usize>(d));
  const std::vector<real> host_v(
      v, v + static_cast<usize>(n) * static_cast<usize>(d));
  for (index_t c = 0; c < k; ++c) {
    std::copy(host_v.begin() + seed_rows[static_cast<usize>(c)] * d,
              host_v.begin() + (seed_rows[static_cast<usize>(c)] + 1) * d,
              centroids.begin() + c * d);
  }

  device::DeviceBuffer<real> dev_c(ctx, std::span<const real>(centroids));
  device::DeviceBuffer<real> dev_s(
      ctx, static_cast<usize>(n) * static_cast<usize>(k));
  device::DeviceBuffer<real> dev_vnorm(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_cnorm(ctx, static_cast<usize>(k));
  device::DeviceBuffer<index_t> dev_labels(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_mindist(ctx, static_cast<usize>(n));
  device::DeviceBuffer<index_t> dev_changed(ctx, static_cast<usize>(n));
  device::DeviceBuffer<index_t> sort_keys(ctx, static_cast<usize>(n));
  device::DeviceBuffer<index_t> sort_vals(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> dev_newc(
      ctx, static_cast<usize>(k) * static_cast<usize>(d));
  device::DeviceBuffer<index_t> seg_offsets(ctx, static_cast<usize>(k) + 1);

  device::fill(ctx, dev_labels.data(), n, index_t{-1});
  dblas::row_squared_norms(ctx, n, d, dev_v.data(), d, dev_vnorm.data());

  // ABFT setup (DESIGN.md §14): the checksum identity
  //   sum(S) = k*sum(vnorm) + n*sum(cnorm) - 2*<colsum(V), colsum(C)>
  // needs the column sums of V once per solve (V is fixed) and per sweep
  // only the centroid column sums plus three reductions — all computed from
  // the same device-resident arrays, so a clean compare differs by
  // accumulation-order roundoff alone.
  device::DeviceBuffer<real> abft_csv;
  device::DeviceBuffer<real> abft_csc;
  device::DeviceBuffer<real> abft_prod;
  if (config.abft) {
    obs::AttrSiteScope abft_site("sdc.checksum");
    abft_csv = device::DeviceBuffer<real>(ctx, static_cast<usize>(d));
    abft_csc = device::DeviceBuffer<real>(ctx, static_cast<usize>(d));
    abft_prod = device::DeviceBuffer<real>(ctx, static_cast<usize>(d));
    const real* vp0 = dev_v.data();
    real* csv = abft_csv.data();
    const index_t nn = n;
    const index_t dd = d;
    device::launch(ctx, d,
                   [=](index_t j) {
                     real acc = 0;
                     for (index_t i = 0; i < nn; ++i) acc += vp0[i * dd + j];
                     csv[j] = acc;
                   },
                   device::tagged("sdc.checksum", static_cast<double>(n) * d,
                                  static_cast<double>(n) * d * sizeof(real),
                                  static_cast<double>(d) * sizeof(real)));
  }

  // Overlapped distance phase: a {transfer, compute} stream pair kept alive
  // across iterations so centroid tiles prefetch behind the GEMM.
  std::unique_ptr<device::PipelineExecutor> exec;
  index_t dist_tiles = 1;
  if (config.async_pipeline) {
    exec = std::make_unique<device::PipelineExecutor>(ctx);
    dist_tiles = config.centroid_tiles < 1 ? 1 : config.centroid_tiles;
    if (dist_tiles > k) dist_tiles = k;
  }

  KmeansResult result;
  result.labels.assign(static_cast<usize>(n), -1);

  real* sp = dev_s.data();
  const real* vnorm = dev_vnorm.data();
  const real* cnorm = dev_cnorm.data();
  index_t* labels = dev_labels.data();
  real* mind = dev_mindist.data();
  index_t* changed = dev_changed.data();

  index_t iter = 0;
  for (; iter < config.max_iters; ++iter) {
    // Deadline check at the sweep boundary.  The first sweep must run (labels
    // are still -1, there is no best-so-far), so it polls hard; later sweeps
    // stop softly on an anytime expiry, keeping the previous assignment.
    if (iter == 0) {
      cancel::poll("kmeans.sweep");
    } else if (cancel::expired("kmeans.sweep")) {
      break;
    }
    // --- pairwise distances: S_ij = Vnorm_i + Cnorm_j - 2 <v_i, c_j> -------
    // Norm fill + GEMM (and the prefetching centroid tile copies in async
    // mode) all land in one site: the distance phase dominates the sweep.
    const auto compute_distances = [&] {
    obs::AttrSiteScope dist_site("gemm.kmeans_dist");
    if (exec) {
      // Prefetched centroid tiles: tile t+1 stages its centroid rows H2D on
      // the transfer stream while tile t's norms and GEMM slice run on the
      // compute stream; each tile fills its own column range of S.
      using Exec = device::PipelineExecutor;
      exec->reset();
      real* cp = dev_c.data();
      real* cnp = dev_cnorm.data();
      const real* vp = dev_v.data();
      const real* host_c = centroids.data();
      const index_t kk = k;
      const index_t dd = d;
      const index_t nn = n;
      for (index_t t = 0; t < dist_tiles; ++t) {
        const index_t j0 = (k * t) / dist_tiles;
        const index_t j1 = (k * (t + 1)) / dist_tiles;
        const index_t jt = j1 - j0;
        const Exec::NodeId h2d = exec->add(
            Exec::kTransferStream, "h2d-c" + std::to_string(t),
            [&ctx, cp, host_c, j0, jt, dd] {
              device::copy_h2d(ctx, cp + j0 * dd, host_c + j0 * dd,
                               static_cast<usize>(jt * dd));
            });
        exec->add(
            Exec::kComputeStream, "dist-c" + std::to_string(t),
            [&ctx, cp, cnp, vp, sp, vnorm, cnorm, j0, jt, kk, dd, nn] {
              dblas::row_squared_norms(ctx, jt, dd, cp + j0 * dd, dd,
                                       cnp + j0);
              device::launch(ctx, nn * jt, [=](index_t u) {
                const index_t i = u / jt;
                const index_t j = j0 + u % jt;
                sp[i * kk + j] = vnorm[i] + cnorm[j];
              });
              dblas::gemm_nt(ctx, nn, jt, dd, -2.0, vp, dd, cp + j0 * dd, dd,
                             1.0, sp + j0, kk);
            },
            {h2d});
      }
      exec->run();
    } else {
      dblas::row_squared_norms(ctx, k, d, dev_c.data(), d, dev_cnorm.data());
      device::launch(ctx, n * k, [=](index_t t) {
        const index_t i = t / k;
        const index_t j = t % k;
        sp[t] = vnorm[i] + cnorm[j];
      });
      dblas::gemm_nt(ctx, n, k, d, -2.0, dev_v.data(), d, dev_c.data(), d, 1.0,
                     dev_s.data(), k);
    }
    };
    // Detect -> recompute-block -> escalate: a checksum mismatch redoes the
    // distance assembly once (transient upset in S); a second mismatch means
    // the corruption lives upstream (V, centroids, norms) and the k-means
    // degradation ladder has to rebuild device state.
    for (int attempt = 0;; ++attempt) {
      compute_distances();
      if (!config.abft) break;
      obs::AttrSiteScope abft_site("sdc.checksum");
      obs::sdc_note_check();
      const real* csv = abft_csv.data();
      real* csc = abft_csc.data();
      real* prod = abft_prod.data();
      const real* cp0 = dev_c.data();
      const index_t kk = k;
      const index_t dd = d;
      device::launch(ctx, d,
                     [=](index_t j) {
                       real acc = 0;
                       for (index_t c = 0; c < kk; ++c) acc += cp0[c * dd + j];
                       csc[j] = acc;
                       prod[j] = csv[j] * acc;
                     },
                     device::tagged("sdc.checksum", static_cast<double>(k) * d,
                                    static_cast<double>(k) * d * sizeof(real),
                                    2.0 * d * sizeof(real)));
      const real sum_s = device::reduce_sum(ctx, dev_s.data(), n * k);
      const real sum_vn = device::reduce_sum(ctx, dev_vnorm.data(), n);
      const real sum_cn = device::reduce_sum(ctx, dev_cnorm.data(), k);
      const real dot = device::reduce_sum(ctx, abft_prod.data(), d);
      const real predicted = k * sum_vn + n * sum_cn - 2 * dot;
      const real scale =
          std::abs(k * sum_vn) + std::abs(n * sum_cn) + 2 * std::abs(dot) + 1;
      const double elems = static_cast<double>(n) * (k + d) + d;
      const real tol = config.abft_tolerance_scale *
                       std::numeric_limits<real>::epsilon() *
                       (std::sqrt(elems) + 64) * scale;
      if (std::abs(sum_s - predicted) <= tol) break;
      obs::sdc_note_detected(
          "gemm.kmeans_dist",
          "sum(S) = " + std::to_string(sum_s) + " vs predicted " +
              std::to_string(predicted) + " (tol " + std::to_string(tol) +
              ") at sweep " + std::to_string(iter));
      if (attempt == 0) {
        obs::sdc_note_recomputed("gemm.kmeans_dist");
        continue;
      }
      throw device::DataIntegrityError(
          "k-means distance checksum mismatch persisted after recompute at "
          "sweep " +
          std::to_string(iter));
    }

    // --- label update: argmin over each row of S ---------------------------
    device::launch(ctx, n, [=](index_t i) {
      const real* row = sp + i * k;
      index_t best = 0;
      real best_val = row[0];
      for (index_t j = 1; j < k; ++j) {
        if (row[j] < best_val) {
          best_val = row[j];
          best = j;
        }
      }
      changed[i] = (labels[i] != best) ? 1 : 0;
      labels[i] = best;
      mind[i] = best_val;
    }, device::tagged("kmeans.argmin", static_cast<double>(n) * k,
                      static_cast<double>(n) * k * sizeof(real),
                      static_cast<double>(n) *
                          (sizeof(real) + 2.0 * sizeof(index_t))));
    const index_t num_changed =
        device::reduce_sum(ctx, dev_changed.data(), n);

    // Per-sweep telemetry: the objective under the fresh labels (against the
    // centroids they were assigned with).  Costs one extra device reduction
    // per sweep, so it is gated rather than always-on.
    if (config.record_inertia || obs::trace_enabled()) {
      const real inertia = device::reduce_sum(ctx, dev_mindist.data(), n);
      result.inertia_history.push_back(inertia);
      result.changed_history.push_back(num_changed);
      if (obs::trace_enabled()) {
        const double now = obs::wall_now_us();
        obs::trace().counter("kmeans.inertia", inertia, now);
        obs::trace().counter("kmeans.changed",
                             static_cast<double>(num_changed), now);
      }
    }

    // --- centroid update -----------------------------------------------------
    // One site for both update schemes (sort-by-label and direct
    // accumulation), so the two strategies are comparable in the table.
    obs::AttrSiteScope update_site("kmeans.centroid_update");
    std::vector<index_t> counts(static_cast<usize>(k), 0);
    if (config.centroid_update == CentroidUpdate::kSortByLabel) {
      // The paper's scheme: sort point ids by label, segmented means.
      device::transform(ctx, dev_labels.data(), sort_keys.data(), n,
                        [](index_t l) { return l; });
      device::sequence(ctx, sort_vals.data(), n, index_t{0});
      device::sort_by_key(ctx, sort_keys.data(), sort_vals.data(), n);

      // Segment offsets: first occurrence of each label via binary search.
      const index_t* skeys = sort_keys.data();
      index_t* soff = seg_offsets.data();
      const index_t nn = n;
      device::launch(ctx, k + 1, [=](index_t c) {
        index_t lo = 0, hi = nn;
        while (lo < hi) {
          const index_t mid = lo + (hi - lo) / 2;
          if (skeys[mid] < c) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        soff[c] = lo;
      });

      // One thread per cluster accumulates its consecutive segment.
      const index_t* svals = sort_vals.data();
      const real* vp = dev_v.data();
      real* newc = dev_newc.data();
      const real* oldc = dev_c.data();
      const index_t dd = d;
      device::launch(ctx, k, [=](index_t c) {
        const index_t lo = soff[c];
        const index_t hi = soff[c + 1];
        real* out = newc + c * dd;
        if (lo == hi) {
          // Empty cluster: keep the previous centroid (repaired below).
          for (index_t l = 0; l < dd; ++l) out[l] = oldc[c * dd + l];
          return;
        }
        for (index_t l = 0; l < dd; ++l) out[l] = 0;
        for (index_t p = lo; p < hi; ++p) {
          const real* row = vp + svals[p] * dd;
          for (index_t l = 0; l < dd; ++l) out[l] += row[l];
        }
        const real inv = 1.0 / static_cast<real>(hi - lo);
        for (index_t l = 0; l < dd; ++l) out[l] *= inv;
      });
      const std::vector<index_t> off = seg_offsets.to_host();
      for (index_t c = 0; c < k; ++c) {
        counts[static_cast<usize>(c)] =
            off[static_cast<usize>(c) + 1] - off[static_cast<usize>(c)];
      }
    } else {
      // Direct accumulation: per-worker partial (sum, count) over a
      // point-parallel sweep, folded cluster-parallel.  Deterministic
      // (fixed chunk boundaries), no sort.
      const auto workers =
          static_cast<index_t>(ctx.pool().worker_count());
      std::vector<real> part_sums(
          static_cast<usize>(workers) * static_cast<usize>(k) *
              static_cast<usize>(d),
          0.0);
      std::vector<index_t> part_counts(
          static_cast<usize>(workers) * static_cast<usize>(k), 0);
      const real* vp = dev_v.data();
      const index_t* lab = dev_labels.data();
      const index_t dd = d;
      const index_t kk = k;
      {
        WallTimer t;
        const index_t chunk = (n + workers - 1) / workers;
        std::function<void(usize)> job = [&](usize w) {
          const index_t lo = static_cast<index_t>(w) * chunk;
          const index_t hi = lo + chunk < n ? lo + chunk : n;
          real* sums = part_sums.data() +
                       static_cast<index_t>(w) * kk * dd;
          index_t* cnts = part_counts.data() + static_cast<index_t>(w) * kk;
          for (index_t i = lo; i < hi; ++i) {
            const index_t c = lab[i];
            cnts[c] += 1;
            const real* row = vp + i * dd;
            real* sum = sums + c * dd;
            for (index_t l = 0; l < dd; ++l) sum[l] += row[l];
          }
        };
        if (workers == 1) {
          job(0);
        } else {
          ctx.run_compute(job);
        }
        obs::KernelCost cost;
        cost.flops = static_cast<double>(n) * d;
        cost.bytes_read = static_cast<double>(n) * d * sizeof(real);
        cost.bytes_written =
            static_cast<double>(workers) * k * d * sizeof(real);
        ctx.record_kernel(t.seconds(), -1.0, cost);
      }
      real* newc = dev_newc.data();
      const real* oldc = dev_c.data();
      device::launch(ctx, k, [&part_sums, &part_counts, newc, oldc, workers,
                              kk, dd](index_t c) {
        real* out = newc + c * dd;
        for (index_t l = 0; l < dd; ++l) out[l] = 0;
        index_t count = 0;
        for (index_t w = 0; w < workers; ++w) {
          count += part_counts[static_cast<usize>(w * kk + c)];
          const real* sum =
              part_sums.data() + (w * kk + c) * dd;
          for (index_t l = 0; l < dd; ++l) out[l] += sum[l];
        }
        if (count == 0) {
          for (index_t l = 0; l < dd; ++l) out[l] = oldc[c * dd + l];
          return;
        }
        const real inv = 1.0 / static_cast<real>(count);
        for (index_t l = 0; l < dd; ++l) out[l] *= inv;
      });
      for (index_t c = 0; c < k; ++c) {
        index_t count = 0;
        for (index_t w = 0; w < workers; ++w) {
          count += part_counts[static_cast<usize>(w * k + c)];
        }
        counts[static_cast<usize>(c)] = count;
      }
    }
    dblas::copy(ctx, k * d, dev_newc.data(), dev_c.data());

    // Empty-cluster repair (host side, rare path).
    {
      bool any_empty = false;
      for (index_t c = 0; c < k; ++c) {
        if (counts[static_cast<usize>(c)] == 0) any_empty = true;
      }
      if (any_empty) {
        std::vector<real> cent = dev_c.to_host();
        repair_empty_clusters(cent, counts, host_v, dev_mindist.to_host(), n,
                              d);
        dev_c.copy_from_host(std::span<const real>(cent));
      }
    }
    if (exec) {
      // Async mode keeps the authoritative centroids host-resident so the
      // next iteration's tiles can stream from them (k x d, metered D2H).
      centroids = dev_c.to_host();
    }

    if (num_changed == 0) {
      result.converged = true;
      ++iter;
      break;
    }
  }

  result.iterations = iter;
  result.objective = device::reduce_sum(ctx, dev_mindist.data(), n);
  // Algorithm 4 step 4: transfer the labels back to the host.
  result.labels = dev_labels.to_host();
  result.centroids = dev_c.to_host();
  return result;
}
}  // namespace

}  // namespace fastsc::kmeans
