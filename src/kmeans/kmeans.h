// Parallel k-means on the (simulated) device — the paper's Algorithm 4.
//
// The distance matrix is never formed point-by-point: following Eq. 11-16,
// S_ij = ||v_i||^2 + ||c_j||^2 - 2 <v_i, c_j> is assembled from two squared-
// norm vectors plus one level-3 BLAS product (dblas::gemm_nt), which is the
// paper's main source of k-means speedup.  Labels update with an argmin
// kernel; centroids update by sorting point indices by label and having
// each thread reduce a consecutive segment (paper §IV.C).
#pragma once

#include <vector>

#include "common/precision.h"
#include "common/types.h"
#include "device/device.h"

namespace fastsc::kmeans {

enum class Seeding {
  kRandom,          ///< uniform sample of k points (Matlab-style default)
  kKmeansPlusPlus,  ///< D^2-weighted seeding (Algorithm 5)
};

/// Centroid-update strategy for the device k-means.
enum class CentroidUpdate {
  /// The paper's §IV.C scheme: sort point indices by label, then one thread
  /// per cluster reduces its consecutive segment.
  kSortByLabel,
  /// Per-worker partial sums over a point-parallel sweep, folded by a
  /// cluster-parallel reduction (no sort; the GPU-atomics-free alternative).
  kDirectAccumulate,
};

struct KmeansConfig {
  index_t k = 2;
  index_t max_iters = 300;
  Seeding seeding = Seeding::kKmeansPlusPlus;
  /// Candidate centroids drawn per k-means++ step (greedy k-means++ when
  /// > 1): all candidates' distance columns are evaluated in one batched
  /// kernel per step — the data panel is read once, not once per candidate
  /// — and the lowest-potential candidate wins.  1 = plain Algorithm 5.
  index_t seeding_candidates = 1;
  CentroidUpdate centroid_update = CentroidUpdate::kSortByLabel;
  /// Independent runs with different seeds; the best objective wins
  /// (sklearn's n_init; Matlab's "replicates").
  index_t restarts = 1;
  /// Overlapped distance phase: the centroids stay host-resident and stream
  /// to the device in `centroid_tiles` column tiles, each tile's H2D
  /// prefetched on a transfer stream while the previous tile's norms and
  /// GEMM slice occupy the compute stream (the spectral pipeline forwards
  /// its async_pipeline flag here).
  bool async_pipeline = false;
  index_t centroid_tiles = 2;
  std::uint64_t seed = 42;
  /// Storage rung for the embedding (DESIGN.md §13).  Below fp64 the input
  /// rows are quantized through this width up front (every consumer — the
  /// device upload, seeding, and empty-cluster repair — sees the same
  /// quantized values, so labels are deterministic), the V upload moves
  /// packed scalars, and the per-sweep distance phase (norms + GEMM) reads
  /// narrow storage with fp64 accumulation.  Centroids stay fp64 and are
  /// re-quantized for each distance sweep.  The prefetched centroid-tile
  /// pipeline is fp64-only; a narrow rung forces the sync distance phase.
  Precision precision = Precision::kFp64;
  /// Record the clustering objective after every label update into
  /// KmeansResult::inertia_history (one extra device reduction per sweep).
  /// Per-sweep telemetry is also recorded whenever tracing is enabled.
  bool record_inertia = false;
  /// ABFT checksum on the fp64 distance phase (DESIGN.md §14): the identity
  /// sum(S) = k*sum(vnorm) + n*sum(cnorm) - 2*<colsum(V), colsum(C)> is
  /// verified after every distance assembly with all terms reduced from the
  /// same device-resident arrays.  A mismatch recomputes the distance block
  /// once, then raises DataIntegrityError into the k-means ladder.  The
  /// narrow (quantized) distance path has no GEMM and is not checked.
  bool abft = true;
  /// Multiplies the derived checksum tolerance (SdcPolicy::tolerance_scale).
  real abft_tolerance_scale = 1;
};

struct KmeansResult {
  std::vector<index_t> labels;    ///< length n
  std::vector<real> centroids;    ///< k x d row-major
  index_t iterations = 0;
  real objective = 0;             ///< sum of squared point-centroid distances
  bool converged = false;         ///< true if labels stabilized before max_iters
  /// Objective after each label update (empty unless record_inertia or
  /// tracing was on); for restarts > 1, the winning run's history.
  std::vector<real> inertia_history;
  /// Points that switched cluster in each sweep (same gating/length).
  std::vector<index_t> changed_history;
};

/// Device k-means.  `v` is the host-resident n x d row-major data (the rows
/// of the eigenvector matrix in the pipeline); it is transferred to the
/// device, clustered, and the labels transferred back (Algorithm 4 steps 1
/// and 4).
[[nodiscard]] KmeansResult kmeans_device(device::DeviceContext& ctx,
                                         const real* v, index_t n, index_t d,
                                         const KmeansConfig& config);

}  // namespace fastsc::kmeans
