#include "kmeans/lloyd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/cancel.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/validation.h"
#include "kmeans/seeding.h"
#include "obs/trace.h"

namespace fastsc::kmeans {

namespace {

real sq_dist(const real* a, const real* b, index_t d) {
  real acc = 0;
  for (index_t l = 0; l < d; ++l) {
    const real delta = a[l] - b[l];
    acc += delta * delta;
  }
  return acc;
}

}  // namespace

real kmeans_objective(const real* v, index_t n, index_t d,
                      const std::vector<index_t>& labels,
                      const std::vector<real>& centroids, index_t k) {
  FASTSC_CHECK(static_cast<index_t>(labels.size()) == n,
               "labels size must be n");
  real acc = 0;
  for (index_t i = 0; i < n; ++i) {
    const index_t c = labels[static_cast<usize>(i)];
    FASTSC_CHECK(c >= 0 && c < k, "label out of range");
    acc += sq_dist(v + i * d, centroids.data() + c * d, d);
  }
  return acc;
}

namespace {
KmeansResult lloyd_single(const real* v, index_t n, index_t d,
                          const KmeansConfig& config);
}  // namespace

KmeansResult kmeans_lloyd_host(const real* v, index_t n, index_t d,
                               const KmeansConfig& config) {
  FASTSC_CHECK(config.restarts >= 1, "restarts must be positive");
  KmeansResult best;
  for (index_t r = 0; r < config.restarts; ++r) {
    // A deadline between restarts keeps the best completed run (anytime);
    // hard cancellation throws from the poll sites inside the run itself.
    if (r > 0 && cancel::expired("kmeans.restart")) break;
    KmeansConfig cfg = config;
    cfg.seed = config.seed + static_cast<std::uint64_t>(r) * 0x9e3779b9ULL;
    KmeansResult candidate = lloyd_single(v, n, d, cfg);
    if (r == 0 || candidate.objective < best.objective) {
      best = std::move(candidate);
    }
  }
  return best;
}

namespace {
KmeansResult lloyd_single(const real* v, index_t n, index_t d,
                          const KmeansConfig& config) {
  FASTSC_CHECK(n >= 1 && d >= 1, "data must be nonempty");
  FASTSC_CHECK(config.k >= 1 && config.k <= n, "k must be in [1, n]");
  check_finite({v, static_cast<usize>(n) * static_cast<usize>(d)},
               "k-means input data");
  const index_t k = config.k;
  Rng rng(config.seed);

  std::vector<index_t> seed_rows =
      config.seeding == Seeding::kKmeansPlusPlus
          ? kmeanspp_seeds_host(v, n, d, k, rng)
          : random_seeds_host(n, k, rng);

  KmeansResult result;
  result.centroids.assign(static_cast<usize>(k) * static_cast<usize>(d), 0.0);
  for (index_t c = 0; c < k; ++c) {
    std::copy(v + seed_rows[static_cast<usize>(c)] * d,
              v + (seed_rows[static_cast<usize>(c)] + 1) * d,
              result.centroids.begin() + c * d);
  }
  result.labels.assign(static_cast<usize>(n), -1);
  std::vector<real> min_dist(static_cast<usize>(n), 0.0);
  std::vector<real> sums(static_cast<usize>(k) * static_cast<usize>(d));
  std::vector<index_t> counts(static_cast<usize>(k));

  index_t iter = 0;
  for (; iter < config.max_iters; ++iter) {
    // Deadline check at the sweep boundary.  The first sweep must run (labels
    // are still -1, there is no best-so-far), so it polls hard; later sweeps
    // stop softly on an anytime expiry, keeping the previous assignment.
    if (iter == 0) {
      cancel::poll("kmeans.sweep");
    } else if (cancel::expired("kmeans.sweep")) {
      break;
    }
    // Assignment step: naive double loop, as a scripting environment runs it.
    index_t changes = 0;
    for (index_t i = 0; i < n; ++i) {
      const real* row = v + i * d;
      index_t best = 0;
      real best_val = std::numeric_limits<real>::max();
      for (index_t c = 0; c < k; ++c) {
        const real dist = sq_dist(row, result.centroids.data() + c * d, d);
        if (dist < best_val) {
          best_val = dist;
          best = c;
        }
      }
      if (result.labels[static_cast<usize>(i)] != best) ++changes;
      result.labels[static_cast<usize>(i)] = best;
      min_dist[static_cast<usize>(i)] = best_val;
    }

    if (config.record_inertia || obs::trace_enabled()) {
      // min_dist holds each point's distance to its assigned centroid — the
      // assignment-step objective, free to sum here (before the update step
      // may overwrite entries during empty-cluster repair).
      real inertia = 0;
      for (index_t i = 0; i < n; ++i) inertia += min_dist[static_cast<usize>(i)];
      result.inertia_history.push_back(inertia);
      result.changed_history.push_back(changes);
      if (obs::trace_enabled()) {
        const double now = obs::wall_now_us();
        obs::trace().counter("kmeans.inertia", inertia, now);
        obs::trace().counter("kmeans.changed", static_cast<double>(changes),
                             now);
      }
    }

    // Update step.
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (index_t i = 0; i < n; ++i) {
      const index_t c = result.labels[static_cast<usize>(i)];
      counts[static_cast<usize>(c)] += 1;
      const real* row = v + i * d;
      real* sum = sums.data() + c * d;
      for (index_t l = 0; l < d; ++l) sum[l] += row[l];
    }
    for (index_t c = 0; c < k; ++c) {
      if (counts[static_cast<usize>(c)] > 0) {
        const real inv = 1.0 / static_cast<real>(counts[static_cast<usize>(c)]);
        for (index_t l = 0; l < d; ++l) {
          result.centroids[static_cast<usize>(c * d + l)] =
              sums[static_cast<usize>(c * d + l)] * inv;
        }
      } else {
        // Empty cluster: farthest-point reseed, matching the device path.
        index_t far = 0;
        real best = -1;
        for (index_t i = 0; i < n; ++i) {
          if (min_dist[static_cast<usize>(i)] > best) {
            best = min_dist[static_cast<usize>(i)];
            far = i;
          }
        }
        std::copy(v + far * d, v + (far + 1) * d,
                  result.centroids.begin() + c * d);
        min_dist[static_cast<usize>(far)] = -1;
      }
    }

    if (changes == 0) {
      result.converged = true;
      ++iter;
      break;
    }
  }
  result.iterations = iter;
  result.objective =
      kmeans_objective(v, n, d, result.labels, result.centroids, k);
  return result;
}
}  // namespace

}  // namespace fastsc::kmeans
