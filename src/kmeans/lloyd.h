// Host Lloyd's k-means — the scripting-environment comparator.
//
// Models how Matlab's `kmeans` and scikit-learn execute on CPU: per-point /
// per-centroid distance loops (no level-3 BLAS reformulation).  Combined
// with `Seeding::kRandom` this is the Matlab-like configuration (more
// iterations, §V.C); with `Seeding::kKmeansPlusPlus` the Python-like one.
#pragma once

#include "kmeans/kmeans.h"

namespace fastsc::kmeans {

/// Serial Lloyd iterations with naive O(n k d) distance computation.
[[nodiscard]] KmeansResult kmeans_lloyd_host(const real* v, index_t n,
                                             index_t d,
                                             const KmeansConfig& config);

/// Sum of squared distances of each point to its assigned centroid
/// (the k-means objective; shared by tests and ablation benches).
[[nodiscard]] real kmeans_objective(const real* v, index_t n, index_t d,
                                    const std::vector<index_t>& labels,
                                    const std::vector<real>& centroids,
                                    index_t k);

}  // namespace fastsc::kmeans
