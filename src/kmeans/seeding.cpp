#include "kmeans/seeding.h"

#include <algorithm>
#include <cmath>

#include "common/cancel.h"
#include "common/error.h"
#include "device/algorithms.h"

namespace fastsc::kmeans {

namespace {

real sq_dist(const real* a, const real* b, index_t d) {
  real acc = 0;
  for (index_t l = 0; l < d; ++l) {
    const real delta = a[l] - b[l];
    acc += delta * delta;
  }
  return acc;
}

}  // namespace

std::vector<index_t> random_seeds_host(index_t n, index_t k, Rng& rng) {
  FASTSC_CHECK(k >= 1 && k <= n, "k must be in [1, n]");
  // Partial Fisher-Yates over an index array.
  std::vector<index_t> idx(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) idx[static_cast<usize>(i)] = i;
  for (index_t i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<index_t>(rng.uniform_index(
                static_cast<std::uint64_t>(n - i)));
    std::swap(idx[static_cast<usize>(i)], idx[static_cast<usize>(j)]);
  }
  idx.resize(static_cast<usize>(k));
  return idx;
}

std::vector<index_t> kmeanspp_seeds_host(const real* v, index_t n, index_t d,
                                         index_t k, Rng& rng) {
  FASTSC_CHECK(k >= 1 && k <= n, "k must be in [1, n]");
  std::vector<index_t> seeds;
  seeds.reserve(static_cast<usize>(k));
  // Step 1: first centroid uniformly at random.
  seeds.push_back(static_cast<index_t>(rng.uniform_index(
      static_cast<std::uint64_t>(n))));
  // Step 2: Dist_j = squared distance to the nearest chosen centroid.
  std::vector<real> dist2(static_cast<usize>(n));
  const real* c0 = v + seeds[0] * d;
  for (index_t j = 0; j < n; ++j) {
    dist2[static_cast<usize>(j)] = sq_dist(v + j * d, c0, d);
  }
  for (index_t i = 1; i < k; ++i) {
    cancel::poll("kmeans.seeding");
    // Sample proportional to Dist^2 (squared Euclidean distance).
    real total = 0;
    for (real x : dist2) total += x;
    index_t pick;
    if (total <= 0) {
      // All remaining points coincide with centroids; fall back to uniform.
      pick = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
    } else {
      const real target = rng.uniform() * total;
      real acc = 0;
      pick = n - 1;
      for (index_t j = 0; j < n; ++j) {
        acc += dist2[static_cast<usize>(j)];
        if (acc >= target) {
          pick = j;
          break;
        }
      }
    }
    seeds.push_back(pick);
    const real* ci = v + pick * d;
    for (index_t j = 0; j < n; ++j) {
      dist2[static_cast<usize>(j)] =
          std::min(dist2[static_cast<usize>(j)], sq_dist(v + j * d, ci, d));
    }
  }
  return seeds;
}

namespace {

/// Binary search the device prefix array for the smallest j with
/// prefix[j] >= target (host read of device data; same precedent as the
/// plain sampling path).
index_t sample_from_prefix(const real* prefix, index_t n, real target) {
  index_t lo = 0, hi = n - 1;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    if (prefix[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

std::vector<index_t> kmeanspp_seeds_device(device::DeviceContext& ctx,
                                           const real* dev_v, index_t n,
                                           index_t d, index_t k, Rng& rng,
                                           index_t candidates) {
  FASTSC_CHECK(k >= 1 && k <= n, "k must be in [1, n]");
  FASTSC_CHECK(candidates >= 1, "candidate count must be positive");
  // All seeding work (distance kernels, scans, potential reductions) rolls
  // up into one site; the solve phases carry their own.
  obs::AttrSiteScope attr_site("kmeans.seeding");
  std::vector<index_t> seeds;
  seeds.reserve(static_cast<usize>(k));
  seeds.push_back(static_cast<index_t>(rng.uniform_index(
      static_cast<std::uint64_t>(n))));

  device::DeviceBuffer<real> dist2(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> prefix(ctx, static_cast<usize>(n));
  real* dp = dist2.data();

  // Initialize Dist with distances to the first centroid.
  {
    const real* c = dev_v + seeds[0] * d;
    device::launch(ctx, n, [=](index_t j) {
      const real* row = dev_v + j * d;
      real acc = 0;
      for (index_t l = 0; l < d; ++l) {
        const real delta = row[l] - c[l];
        acc += delta * delta;
      }
      dp[j] = acc;
    });
  }

  const index_t ncand = std::min(candidates, n);
  device::DeviceBuffer<real> cand_dist(
      ctx, ncand > 1 ? static_cast<usize>(ncand) * static_cast<usize>(n) : 0);
  std::vector<index_t> picks(static_cast<usize>(ncand));

  for (index_t i = 1; i < k; ++i) {
    // One poll per centroid draw: each step is one O(ncand * n * d) kernel.
    cancel::poll("kmeans.seeding");
    // P_j = Dist_j^2 / sum_l Dist_l^2, sampled via inclusive scan + one
    // uniform draw (a single binary search on the device prefix array).
    const real total =
        device::inclusive_scan(ctx, dist2.data(), prefix.data(), n);
    if (total <= 0) {
      // All remaining points coincide with centroids; fall back to uniform
      // (candidate evaluation is moot — every potential is identical).
      const auto pick = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
      seeds.push_back(pick);
      const real* c = dev_v + pick * d;
      device::launch(ctx, n, [=](index_t j) {
        const real* row = dev_v + j * d;
        real acc = 0;
        for (index_t l = 0; l < d; ++l) {
          const real delta = row[l] - c[l];
          acc += delta * delta;
        }
        if (acc < dp[j]) dp[j] = acc;
      });
      continue;
    }

    if (ncand == 1) {
      const index_t pick =
          sample_from_prefix(prefix.data(), n, rng.uniform() * total);
      seeds.push_back(pick);
      // newDist kernel + elementwise min fold (Algorithm 5's last two lines).
      const real* c = dev_v + pick * d;
      device::launch(ctx, n, [=](index_t j) {
        const real* row = dev_v + j * d;
        real acc = 0;
        for (index_t l = 0; l < d; ++l) {
          const real delta = row[l] - c[l];
          acc += delta * delta;
        }
        if (acc < dp[j]) dp[j] = acc;
      });
      continue;
    }

    // Greedy refinement: draw all candidates up front, then evaluate the
    // folded distance of every point to every candidate in ONE kernel so
    // the n x d data panel streams through once per step.
    for (index_t c = 0; c < ncand; ++c) {
      picks[static_cast<usize>(c)] =
          sample_from_prefix(prefix.data(), n, rng.uniform() * total);
    }
    const index_t* pk = picks.data();
    real* cd = cand_dist.data();
    const index_t nc = ncand;
    device::launch(ctx, n, [=](index_t j) {
      const real* row = dev_v + j * d;
      const real cur = dp[j];
      for (index_t c = 0; c < nc; ++c) {
        const real* cand = dev_v + pk[c] * d;
        real acc = 0;
        for (index_t l = 0; l < d; ++l) {
          const real delta = row[l] - cand[l];
          acc += delta * delta;
        }
        cd[c * n + j] = acc < cur ? acc : cur;
      }
    }, device::tagged("kmeans.seeding",
                      3.0 * static_cast<double>(n) * nc * d,
                      static_cast<double>(n) * (nc + 1.0) * d * sizeof(real),
                      static_cast<double>(n) * nc * sizeof(real)));
    // Keep the candidate with the smallest total potential (ties -> the
    // earliest draw, keeping the result deterministic for a fixed seed).
    index_t best = 0;
    real best_pot = device::reduce_sum(ctx, cd, n);
    for (index_t c = 1; c < ncand; ++c) {
      const real pot = device::reduce_sum(
          ctx, cd + static_cast<usize>(c) * static_cast<usize>(n), n);
      if (pot < best_pot) {
        best_pot = pot;
        best = c;
      }
    }
    seeds.push_back(picks[static_cast<usize>(best)]);
    const real* win = cd + static_cast<usize>(best) * static_cast<usize>(n);
    device::launch(ctx, n, [=](index_t j) { dp[j] = win[j]; });
  }
  return seeds;
}

}  // namespace fastsc::kmeans
