#include "kmeans/seeding.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "device/algorithms.h"

namespace fastsc::kmeans {

namespace {

real sq_dist(const real* a, const real* b, index_t d) {
  real acc = 0;
  for (index_t l = 0; l < d; ++l) {
    const real delta = a[l] - b[l];
    acc += delta * delta;
  }
  return acc;
}

}  // namespace

std::vector<index_t> random_seeds_host(index_t n, index_t k, Rng& rng) {
  FASTSC_CHECK(k >= 1 && k <= n, "k must be in [1, n]");
  // Partial Fisher-Yates over an index array.
  std::vector<index_t> idx(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) idx[static_cast<usize>(i)] = i;
  for (index_t i = 0; i < k; ++i) {
    const auto j =
        i + static_cast<index_t>(rng.uniform_index(
                static_cast<std::uint64_t>(n - i)));
    std::swap(idx[static_cast<usize>(i)], idx[static_cast<usize>(j)]);
  }
  idx.resize(static_cast<usize>(k));
  return idx;
}

std::vector<index_t> kmeanspp_seeds_host(const real* v, index_t n, index_t d,
                                         index_t k, Rng& rng) {
  FASTSC_CHECK(k >= 1 && k <= n, "k must be in [1, n]");
  std::vector<index_t> seeds;
  seeds.reserve(static_cast<usize>(k));
  // Step 1: first centroid uniformly at random.
  seeds.push_back(static_cast<index_t>(rng.uniform_index(
      static_cast<std::uint64_t>(n))));
  // Step 2: Dist_j = squared distance to the nearest chosen centroid.
  std::vector<real> dist2(static_cast<usize>(n));
  const real* c0 = v + seeds[0] * d;
  for (index_t j = 0; j < n; ++j) {
    dist2[static_cast<usize>(j)] = sq_dist(v + j * d, c0, d);
  }
  for (index_t i = 1; i < k; ++i) {
    // Sample proportional to Dist^2 (squared Euclidean distance).
    real total = 0;
    for (real x : dist2) total += x;
    index_t pick;
    if (total <= 0) {
      // All remaining points coincide with centroids; fall back to uniform.
      pick = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
    } else {
      const real target = rng.uniform() * total;
      real acc = 0;
      pick = n - 1;
      for (index_t j = 0; j < n; ++j) {
        acc += dist2[static_cast<usize>(j)];
        if (acc >= target) {
          pick = j;
          break;
        }
      }
    }
    seeds.push_back(pick);
    const real* ci = v + pick * d;
    for (index_t j = 0; j < n; ++j) {
      dist2[static_cast<usize>(j)] =
          std::min(dist2[static_cast<usize>(j)], sq_dist(v + j * d, ci, d));
    }
  }
  return seeds;
}

std::vector<index_t> kmeanspp_seeds_device(device::DeviceContext& ctx,
                                           const real* dev_v, index_t n,
                                           index_t d, index_t k, Rng& rng) {
  FASTSC_CHECK(k >= 1 && k <= n, "k must be in [1, n]");
  std::vector<index_t> seeds;
  seeds.reserve(static_cast<usize>(k));
  seeds.push_back(static_cast<index_t>(rng.uniform_index(
      static_cast<std::uint64_t>(n))));

  device::DeviceBuffer<real> dist2(ctx, static_cast<usize>(n));
  device::DeviceBuffer<real> prefix(ctx, static_cast<usize>(n));
  real* dp = dist2.data();

  // Initialize Dist with distances to the first centroid.
  {
    const real* c = dev_v + seeds[0] * d;
    device::launch(ctx, n, [=](index_t j) {
      const real* row = dev_v + j * d;
      real acc = 0;
      for (index_t l = 0; l < d; ++l) {
        const real delta = row[l] - c[l];
        acc += delta * delta;
      }
      dp[j] = acc;
    });
  }

  for (index_t i = 1; i < k; ++i) {
    // P_j = Dist_j^2 / sum_l Dist_l^2, sampled via inclusive scan + one
    // uniform draw (a single binary search on the device prefix array).
    const real total =
        device::inclusive_scan(ctx, dist2.data(), prefix.data(), n);
    index_t pick;
    if (total <= 0) {
      pick = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
    } else {
      const real target = rng.uniform() * total;
      // Binary search the prefix array (device data; one logical thread).
      const real* pf = prefix.data();
      index_t lo = 0, hi = n - 1;
      while (lo < hi) {
        const index_t mid = lo + (hi - lo) / 2;
        if (pf[mid] < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      pick = lo;
    }
    seeds.push_back(pick);
    // newDist kernel + elementwise min fold (Algorithm 5's last two lines).
    const real* c = dev_v + pick * d;
    device::launch(ctx, n, [=](index_t j) {
      const real* row = dev_v + j * d;
      real acc = 0;
      for (index_t l = 0; l < d; ++l) {
        const real delta = row[l] - c[l];
        acc += delta * delta;
      }
      if (acc < dp[j]) dp[j] = acc;
    });
  }
  return seeds;
}

}  // namespace fastsc::kmeans
