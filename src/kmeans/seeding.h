// Centroid seeding: uniform random and k-means++ (paper's Algorithm 5,
// Arthur & Vassilvitskii 2007).
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "device/device.h"

namespace fastsc::kmeans {

/// Host k-means++: returns k row indices into v (n x d).  D^2 weighting.
[[nodiscard]] std::vector<index_t> kmeanspp_seeds_host(const real* v, index_t n,
                                                       index_t d, index_t k,
                                                       Rng& rng);

/// Host uniform seeding without replacement.
[[nodiscard]] std::vector<index_t> random_seeds_host(index_t n, index_t k,
                                                     Rng& rng);

/// Device k-means++ (Algorithm 5): maintains the Dist vector on the device,
/// updates it with a per-point kernel after each pick, and samples the next
/// centroid by an inclusive scan of the squared distances plus a single
/// uniform draw (Thrust-style).  `dev_v` is the device-resident n x d data;
/// returns the chosen row indices.
///
/// `candidates` > 1 enables greedy k-means++ (the scikit-learn default,
/// Arthur & Vassilvitskii's suggested refinement): at each step it samples
/// that many candidate centroids by D^2 weighting, evaluates the distance
/// of every point to ALL candidates in one batched kernel — the data panel
/// is read once per step instead of once per candidate, the same
/// amortization as the batched SpMM — and keeps the candidate minimizing
/// the total potential.  candidates == 1 reproduces the plain behavior
/// draw-for-draw.
[[nodiscard]] std::vector<index_t> kmeanspp_seeds_device(
    device::DeviceContext& ctx, const real* dev_v, index_t n, index_t d,
    index_t k, Rng& rng, index_t candidates = 1);

}  // namespace fastsc::kmeans
