#include "lanczos/dense_eig.h"

#include <cmath>

#include "common/error.h"
#include "lanczos/tridiag_eig.h"

namespace fastsc::lanczos {

// Householder reduction to tridiagonal form, EISPACK tred2 layout adapted to
// row-major storage.  On exit `a` holds the orthogonal transform Q (columns
// form the basis: Q^T A Q = T).
void householder_tridiagonalize(real* a, index_t n, std::vector<real>& d,
                                std::vector<real>& e) {
  d.assign(static_cast<usize>(n), 0.0);
  e.assign(n > 0 ? static_cast<usize>(n) : 0, 0.0);  // e[0] unused scratch
  if (n == 0) return;

  auto A = [&](index_t i, index_t j) -> real& { return a[i * n + j]; };

  for (index_t i = n - 1; i >= 1; --i) {
    const index_t l = i - 1;
    real h = 0.0;
    real scale = 0.0;
    if (l > 0) {
      for (index_t k = 0; k <= l; ++k) scale += std::fabs(A(i, k));
      if (scale == 0.0) {
        e[static_cast<usize>(i)] = A(i, l);
      } else {
        for (index_t k = 0; k <= l; ++k) {
          A(i, k) /= scale;
          h += A(i, k) * A(i, k);
        }
        real f = A(i, l);
        real g = (f >= 0.0 ? -std::sqrt(h) : std::sqrt(h));
        e[static_cast<usize>(i)] = scale * g;
        h -= f * g;
        A(i, l) = f - g;
        f = 0.0;
        for (index_t j = 0; j <= l; ++j) {
          A(j, i) = A(i, j) / h;  // store u/H in column i
          g = 0.0;
          for (index_t k = 0; k <= j; ++k) g += A(j, k) * A(i, k);
          for (index_t k = j + 1; k <= l; ++k) g += A(k, j) * A(i, k);
          e[static_cast<usize>(j)] = g / h;
          f += e[static_cast<usize>(j)] * A(i, j);
        }
        const real hh = f / (h + h);
        for (index_t j = 0; j <= l; ++j) {
          f = A(i, j);
          e[static_cast<usize>(j)] = g = e[static_cast<usize>(j)] - hh * f;
          for (index_t k = 0; k <= j; ++k) {
            A(j, k) -= f * e[static_cast<usize>(k)] + g * A(i, k);
          }
        }
      }
    } else {
      e[static_cast<usize>(i)] = A(i, l);
    }
    d[static_cast<usize>(i)] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate transformations.
  for (index_t i = 0; i < n; ++i) {
    const index_t l = i - 1;
    if (d[static_cast<usize>(i)] != 0.0) {
      for (index_t j = 0; j <= l; ++j) {
        real g = 0.0;
        for (index_t k = 0; k <= l; ++k) g += A(i, k) * A(k, j);
        for (index_t k = 0; k <= l; ++k) A(k, j) -= g * A(k, i);
      }
    }
    d[static_cast<usize>(i)] = A(i, i);
    A(i, i) = 1.0;
    for (index_t j = 0; j <= l; ++j) {
      A(j, i) = 0.0;
      A(i, j) = 0.0;
    }
  }
  // Shift e so that e[k] couples k and k+1 (tridiag_eig convention).
  for (index_t k = 0; k + 1 < n; ++k) {
    e[static_cast<usize>(k)] = e[static_cast<usize>(k) + 1];
  }
  e.resize(n > 0 ? static_cast<usize>(n - 1) : 0);
}

DenseEigResult dense_sym_eig(const real* a, index_t n, real sym_tol) {
  FASTSC_CHECK(n >= 0, "matrix size must be nonnegative");
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) {
      FASTSC_CHECK(std::fabs(a[i * n + j] - a[j * n + i]) <= sym_tol,
                   "dense_sym_eig requires a symmetric matrix");
    }
  }
  DenseEigResult result;
  result.eigenvectors.assign(a, a + static_cast<usize>(n) * static_cast<usize>(n));
  std::vector<real> d, e;
  householder_tridiagonalize(result.eigenvectors.data(), n, d, e);
  const bool ok = tridiag_eig(d, e, result.eigenvectors.data(), n);
  FASTSC_CHECK(ok, "tridiagonal QL failed to converge");
  result.eigenvalues = std::move(d);
  return result;
}

}  // namespace fastsc::lanczos
