// Dense symmetric eigensolver (Householder tridiagonalization + QL).
//
// Used three ways: (1) as the reference oracle in the eigensolver tests,
// (2) by the baselines for tiny problems, and (3) conceptually mirrors the
// LAPACK routines ARPACK++ links against.
#pragma once

#include <vector>

#include "common/types.h"

namespace fastsc::lanczos {

/// Full eigen-decomposition of the symmetric matrix A (n x n, row-major).
/// Eigenvalues ascend; eigenvectors fill the COLUMNS of the returned
/// row-major n x n matrix (column j pairs with eigenvalues[j]).
struct DenseEigResult {
  std::vector<real> eigenvalues;
  std::vector<real> eigenvectors;  // n x n row-major, eigenvectors in columns
};

/// Throws std::invalid_argument if A is not square-symmetric within `sym_tol`.
[[nodiscard]] DenseEigResult dense_sym_eig(const real* a, index_t n,
                                           real sym_tol = 1e-10);

/// Householder reduction of symmetric A (row-major, overwritten) to
/// tridiagonal form; returns diagonal d, off-diagonal e, and the accumulated
/// orthogonal transform Q in `a` (row-major, columns are the basis).
void householder_tridiagonalize(real* a, index_t n, std::vector<real>& d,
                                std::vector<real>& e);

}  // namespace fastsc::lanczos
