#include "lanczos/irlm.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>

#include "blas/hblas.h"
#include "common/cancel.h"
#include "common/crc32c.h"
#include "common/error.h"
#include "common/timer.h"
#include "device/device.h"
#include "fault/fault.h"
#include "lanczos/dense_eig.h"
#include "obs/metrics.h"
#include "obs/sdc.h"
#include "obs/trace.h"

namespace fastsc::lanczos {

namespace {
constexpr real kEps = std::numeric_limits<real>::epsilon();

// "02" added the trailing payload CRC32C frame (DESIGN.md §14); "01" blobs
// predate the integrity work and are rejected rather than trusted unchecked.
constexpr char kCheckpointMagic[8] = {'F', 'S', 'C', 'K', 'P', 'T', '0', '2'};

template <class T>
void write_raw(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <class T>
void read_raw(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
}

void write_vec(std::ostream& os, const std::vector<real>& v) {
  const std::uint64_t size = v.size();
  write_raw(os, size);
  if (size != 0) {
    os.write(reinterpret_cast<const char*>(v.data()),
             static_cast<std::streamsize>(size * sizeof(real)));
  }
}

std::vector<real> read_vec(std::istream& is) {
  std::uint64_t size = 0;
  read_raw(is, size);
  FASTSC_CHECK(is.good() && size < (std::uint64_t{1} << 40),
               "checkpoint stream corrupt: bad vector size");
  std::vector<real> v(size);
  if (size != 0) {
    is.read(reinterpret_cast<char*>(v.data()),
            static_cast<std::streamsize>(size * sizeof(real)));
  }
  return v;
}

}  // namespace

std::uint32_t LanczosCheckpoint::payload_crc() const {
  std::uint32_t crc = 0;
  const auto mix = [&crc](const void* p, usize bytes) {
    crc = crc32c(p, bytes, crc);
  };
  mix(&n, sizeof(n));
  mix(&nev, sizeof(nev));
  mix(&ncv, sizeof(ncv));
  mix(&which, sizeof(which));
  mix(&j, sizeof(j));
  mix(&nkept, sizeof(nkept));
  mix(&beta_last, sizeof(beta_last));
  if (!v.empty()) mix(v.data(), v.size() * sizeof(real));
  if (!t.empty()) mix(t.data(), t.size() * sizeof(real));
  mix(&restart_count, sizeof(restart_count));
  mix(&matvec_count, sizeof(matvec_count));
  mix(&rng, sizeof(rng));
  return crc;
}

void LanczosCheckpoint::save(std::ostream& os) const {
  os.write(kCheckpointMagic, sizeof(kCheckpointMagic));
  write_raw(os, n);
  write_raw(os, nev);
  write_raw(os, ncv);
  write_raw(os, which);
  write_raw(os, j);
  write_raw(os, nkept);
  write_raw(os, beta_last);
  write_vec(os, v);
  write_vec(os, t);
  write_raw(os, restart_count);
  write_raw(os, matvec_count);
  write_raw(os, rng);
  write_raw(os, payload_crc());
  FASTSC_CHECK(os.good(), "checkpoint save failed: bad output stream");
}

LanczosCheckpoint LanczosCheckpoint::load(std::istream& is) {
  char magic[sizeof(kCheckpointMagic)] = {};
  is.read(magic, sizeof(magic));
  FASTSC_CHECK(
      is.good() && std::memcmp(magic, kCheckpointMagic, sizeof(magic)) == 0,
      "checkpoint load failed: bad magic");
  LanczosCheckpoint cp;
  read_raw(is, cp.n);
  read_raw(is, cp.nev);
  read_raw(is, cp.ncv);
  read_raw(is, cp.which);
  read_raw(is, cp.j);
  read_raw(is, cp.nkept);
  read_raw(is, cp.beta_last);
  cp.v = read_vec(is);
  cp.t = read_vec(is);
  read_raw(is, cp.restart_count);
  read_raw(is, cp.matvec_count);
  read_raw(is, cp.rng);
  std::uint32_t stored_crc = 0;
  read_raw(is, stored_crc);
  FASTSC_CHECK(is.good(), "checkpoint load failed: truncated stream");
  // At-rest corruption injection point: the deserialized basis is the live
  // payload a flipped storage bit would land in.
  if (!cp.v.empty()) {
    fault::corrupt_bytes("bitflip.checkpoint.blob", cp.v.data(),
                         cp.v.size() * sizeof(real));
  }
  if (cp.payload_crc() != stored_crc) {
    obs::sdc_note_detected("checkpoint.blob",
                           "checkpoint payload failed its CRC32C frame");
    throw device::DataIntegrityError(
        "checkpoint blob failed its CRC32C frame (restart " +
        std::to_string(cp.restart_count) + ")");
  }
  return cp;
}

SymLanczos::SymLanczos(LanczosConfig config) : config_(config), rng_(config.seed) {
  FASTSC_CHECK(config_.n >= 1, "problem size must be positive");
  FASTSC_CHECK(config_.nev >= 1 && config_.nev <= config_.n,
               "nev must be in [1, n]");
  if (config_.ncv == 0) {
    config_.ncv = std::max<index_t>(2 * config_.nev + 1, 20);
  }
  config_.ncv = std::min(config_.ncv, config_.n);
  config_.ncv = std::max(config_.ncv, std::min(config_.n, config_.nev + 2));
  FASTSC_CHECK(config_.ncv > config_.nev || config_.ncv == config_.n,
               "ncv must exceed nev (or equal n)");
  if (config_.tol <= 0) config_.tol = 1e-10;
  v_.assign(static_cast<usize>(config_.ncv + 1) * static_cast<usize>(config_.n),
            0.0);
  t_.assign(static_cast<usize>(config_.ncv) * static_cast<usize>(config_.ncv),
            0.0);
  w_.assign(static_cast<usize>(config_.n), 0.0);
  c_.assign(static_cast<usize>(config_.ncv) + 1, 0.0);
}

std::span<const real> SymLanczos::multiply_input() const {
  return {v_row(j_), static_cast<usize>(config_.n)};
}

std::span<real> SymLanczos::multiply_output() {
  return {w_.data(), w_.size()};
}

const std::vector<real>& SymLanczos::eigenvalues() const {
  return out_eigenvalues_;
}

const std::vector<real>& SymLanczos::residuals() const {
  return out_residuals_;
}

real SymLanczos::orthogonality_drift() const {
  if (phase_ != Phase::kAwaitMatvec || j_ < 2) return 0;
  const index_t n = config_.n;
  const auto dot = [n](const real* a, const real* b) {
    real s = 0;
    for (index_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  };
  // v_row(j_) is the unit continuation vector multiply_input() hands out;
  // rows 0..j_ are the settled orthonormal basis.  Checking against the
  // newest neighbour and the oldest row bounds both local recurrence damage
  // and a global loss of orthogonality at O(n) cost per wave.
  const real* vj = v_row(j_);
  const real d_first = std::abs(dot(vj, v_row(0)));
  const real d_prev = std::abs(dot(vj, v_row(j_ - 1)));
  const real unit = std::abs(std::sqrt(dot(vj, vj)) - real{1});
  return std::max(std::max(d_first, d_prev), unit);
}

void SymLanczos::start_iteration() {
  const index_t n = config_.n;
  real* v0 = v_row(0);
  if (!config_.initial_vector.empty()) {
    FASTSC_CHECK(static_cast<index_t>(config_.initial_vector.size()) == n,
                 "initial_vector must have length n");
    hblas::copy(n, config_.initial_vector.data(), v0);
  } else {
    for (index_t i = 0; i < n; ++i) v0[i] = rng_.uniform() - 0.5;
  }
  real norm = hblas::nrm2(n, v0);
  if (norm == 0) {
    // A zero warm start degenerates to the random path.
    for (index_t i = 0; i < n; ++i) v0[i] = rng_.uniform() - 0.5;
    norm = hblas::nrm2(n, v0);
  }
  FASTSC_ASSERT(norm > 0);
  hblas::scal(n, 1.0 / norm, v0);
  j_ = 0;
  nkept_ = 0;
  if (config_.capture_checkpoints) capture_checkpoint();
}

void SymLanczos::capture_checkpoint() {
  checkpoint_.n = config_.n;
  checkpoint_.nev = config_.nev;
  checkpoint_.ncv = config_.ncv;
  checkpoint_.which = static_cast<int>(config_.which);
  checkpoint_.j = j_;
  checkpoint_.nkept = nkept_;
  checkpoint_.beta_last = beta_last_;
  checkpoint_.v = v_;
  checkpoint_.t = t_;
  checkpoint_.restart_count = stats_.restart_count;
  checkpoint_.matvec_count = stats_.matvec_count;
  checkpoint_.rng = rng_.state();
  obs::metrics().counter("lanczos.checkpoints").add();
}

void SymLanczos::restore_common(const LanczosCheckpoint& cp) {
  FASTSC_CHECK(cp.valid(), "cannot restore from an empty checkpoint");
  FASTSC_CHECK(cp.n == config_.n && cp.nev == config_.nev &&
                   cp.ncv == config_.ncv &&
                   cp.which == static_cast<int>(config_.which),
               "checkpoint does not match this solver's configuration");
  FASTSC_CHECK(cp.v.size() == v_.size() && cp.t.size() == t_.size(),
               "checkpoint basis dimensions do not match");
  v_ = cp.v;
  t_ = cp.t;
  j_ = cp.j;
  nkept_ = cp.nkept;
  beta_last_ = cp.beta_last;
  rng_.set_state(cp.rng);
  stats_.restart_count = cp.restart_count;
  stats_.matvec_count = cp.matvec_count;
  // Drop convergence samples from the abandoned continuation; the resumed
  // solve re-records them from the checkpointed restart onward.
  std::erase_if(stats_.restart_history, [&](const LanczosRestartSample& s) {
    return s.restart >= cp.restart_count;
  });
  out_eigenvalues_.clear();
  out_residuals_.clear();
  final_y_.clear();
  final_order_.clear();
  std::fill(w_.begin(), w_.end(), 0.0);
  checkpoint_ = cp;
}

void SymLanczos::restore(const LanczosCheckpoint& cp) {
  restore_common(cp);
  phase_ = Phase::kAwaitMatvec;
  obs::metrics().counter("lanczos.resumes").add();
}

void SymLanczos::restore_warm(const LanczosCheckpoint& cp) {
  FASTSC_CHECK(cp.j == cp.nkept && cp.nkept >= 1,
               "warm start requires a restart-boundary checkpoint "
               "(j == nkept, nkept >= 1)");
  restore_common(cp);
  // Fresh accounting: stats() reports the warm re-solve's own cost, so the
  // service can compare warm vs cold wave counts directly.
  stats_.restart_count = 0;
  stats_.matvec_count = 0;
  stats_.restart_history.clear();
  // Refresh pass: recompute M[p][i] = v_p . (A' v_i) for the l kept Ritz
  // vectors, reusing j_ as the refresh column index so multiply_input()
  // hands out v_row(j_) unchanged.
  warm_m_.assign(
      static_cast<usize>(nkept_ + 1) * static_cast<usize>(nkept_), 0.0);
  j_ = 0;
  phase_ = Phase::kWarmRefresh;
  obs::metrics().counter("lanczos.warm_starts").add();
}

SymLanczos::Action SymLanczos::step() {
  WallTimer timer;
  Action action;
  switch (phase_) {
    case Phase::kStart:
      start_iteration();
      phase_ = Phase::kAwaitMatvec;
      action = Action::kMultiply;
      break;
    case Phase::kAwaitMatvec:
      action = process_matvec();
      break;
    case Phase::kWarmRefresh:
      action = process_warm_refresh();
      break;
    case Phase::kConverged:
      action = Action::kConverged;
      break;
    case Phase::kFailed:
      action = Action::kFailed;
      break;
    default:
      action = Action::kFailed;
      break;
  }
  stats_.rci_seconds += timer.seconds();
  return action;
}

void SymLanczos::reorthogonalize(real* w, index_t upto, real* alpha_correction) {
  // Two Gram-Schmidt passes.  kFull sweeps basis rows 0..upto; kLocal
  // touches only the kept Ritz vectors (0..nkept_) and the previous two
  // Lanczos vectors — O(nkept + 2) instead of O(j) vectors per step.
  WallTimer timer;
  const index_t n = config_.n;
  const index_t local_floor =
      config_.reorth == ReorthMode::kLocal
          ? std::max<index_t>(nkept_ + 1, upto - 1)
          : 0;
  if (config_.ortho_kernel == OrthoKernel::kMgs) {
    // Legacy per-vector modified Gram-Schmidt (the reorth ablation's
    // reference kernel).
    for (int pass = 0; pass < 2; ++pass) {
      for (index_t i = 0; i <= upto; ++i) {
        if (config_.reorth == ReorthMode::kLocal && i > nkept_ &&
            i < local_floor) {
          continue;
        }
        const real c = hblas::dot(n, v_row(i), w);
        if (c != 0.0) {
          hblas::axpy(n, -c, v_row(i), w);
          if (alpha_correction != nullptr && i == upto) *alpha_correction += c;
        }
      }
    }
    stats_.ortho_seconds += timer.seconds();
    return;
  }
  // Blocked CGS2: each pass projects w against the packed basis with two
  // level-2 calls per contiguous row block — c = V w, then w -= V^T c.
  // The rows to sweep form at most two contiguous blocks: all of
  // [0, upto] for kFull; [0, nkept_] plus [local_floor, upto] for kLocal
  // (local_floor > nkept_ by construction, so the blocks are disjoint).
  struct Block {
    index_t lo;
    index_t cnt;
  };
  Block blocks[2];
  int nblocks = 0;
  if (config_.reorth == ReorthMode::kLocal) {
    const index_t kept_hi = std::min(nkept_, upto);
    blocks[nblocks++] = Block{0, kept_hi + 1};
    const index_t lo = std::max(local_floor, nkept_ + 1);
    if (lo <= upto) blocks[nblocks++] = Block{lo, upto - lo + 1};
  } else {
    blocks[nblocks++] = Block{0, upto + 1};
  }
  for (int pass = 0; pass < 2; ++pass) {
    for (int b = 0; b < nblocks; ++b) {
      const Block blk = blocks[b];
      real* c = c_.data();
      hblas::gemv_par(blk.cnt, n, 1.0, v_row(blk.lo), n, w, 0.0, c);
      hblas::gemv_t_par(blk.cnt, n, -1.0, v_row(blk.lo), n, c, 1.0, w);
      if (alpha_correction != nullptr && blk.lo <= upto &&
          upto < blk.lo + blk.cnt) {
        *alpha_correction += c[upto - blk.lo];
      }
    }
  }
  stats_.ortho_seconds += timer.seconds();
}

void SymLanczos::random_unit_orthogonal(real* w, index_t upto) {
  const index_t n = config_.n;
  for (int attempt = 0; attempt < 5; ++attempt) {
    for (index_t i = 0; i < n; ++i) w[i] = rng_.uniform() - 0.5;
    reorthogonalize(w, upto, nullptr);
    const real norm = hblas::nrm2(n, w);
    if (norm > kEps * std::sqrt(static_cast<real>(n))) {
      hblas::scal(n, 1.0 / norm, w);
      return;
    }
  }
  // The basis spans the whole space (upto + 1 == n); a zero continuation
  // vector is harmless because every Ritz residual is already ~0.
  std::fill(w, w + n, 0.0);
}

SymLanczos::Action SymLanczos::process_matvec() {
  const index_t n = config_.n;
  const index_t m = config_.ncv;
  ++stats_.matvec_count;

  // w_ currently holds A * v_j.
  real* w = w_.data();
  real alpha = hblas::dot(n, v_row(j_), w);
  hblas::axpy(n, -alpha, v_row(j_), w);
  if (nkept_ > 0 && j_ == nkept_) {
    // Thick-restart arrowhead: subtract the couplings to the kept Ritz
    // vectors, s_i = T(i, j_).
    for (index_t i = 0; i < nkept_; ++i) {
      const real s = t_at(i, j_);
      if (s != 0.0) hblas::axpy(n, -s, v_row(i), w);
    }
  } else if (j_ > 0) {
    const real beta_prev = t_at(j_ - 1, j_);
    if (beta_prev != 0.0) hblas::axpy(n, -beta_prev, v_row(j_ - 1), w);
  }
  reorthogonalize(w, j_, &alpha);
  t_at(j_, j_) = alpha;

  real beta = hblas::nrm2(n, w);
  const real breakdown_tol =
      kEps * std::max<real>(1.0, std::fabs(alpha)) * 100.0;
  if (beta > breakdown_tol) {
    hblas::scal(n, 1.0 / beta, w);
    hblas::copy(n, w, v_row(j_ + 1));
  } else {
    // Invariant subspace found: continue with a random orthogonal direction
    // and a zero coupling (ARPACK does the same).
    beta = 0.0;
    random_unit_orthogonal(v_row(j_ + 1), j_);
  }
  if (j_ + 1 < m) {
    t_at(j_, j_ + 1) = beta;
    t_at(j_ + 1, j_) = beta;
  } else {
    beta_last_ = beta;
  }

  ++j_;
  if (j_ < m) {
    return Action::kMultiply;  // input is v_row(j_), output w_
  }
  return restart_or_finish();
}

SymLanczos::Action SymLanczos::process_warm_refresh() {
  const index_t n = config_.n;
  const index_t l = nkept_;
  ++stats_.matvec_count;

  // w_ holds A' * v_{j_} for refresh column j_ (a kept Ritz vector).
  // Project it against the l + 1 retained basis vectors (kept Ritz vectors
  // plus the continuation vector at row l).
  for (index_t p = 0; p <= l; ++p) {
    warm_m_[static_cast<usize>(p * l + j_)] = hblas::dot(n, v_row(p), w_.data());
  }
  ++j_;
  if (j_ < l) {
    return Action::kMultiply;  // next refresh product: A' * v_{j_}
  }

  // All kept columns refreshed.  Rebuild T for A': the kept block is the
  // symmetrized projection (M is symmetric up to the perturbation's
  // floating-point noise because V is orthonormal and A' symmetric), the
  // arrowhead column l carries the exact couplings v_l^T A' v_i that
  // process_matvec subtracts at the j == nkept step, and everything beyond
  // is rebuilt by the continuing iteration.
  std::fill(t_.begin(), t_.end(), 0.0);
  for (index_t i = 0; i < l; ++i) {
    for (index_t p = 0; p < l; ++p) {
      t_at(i, p) = 0.5 * (warm_m_[static_cast<usize>(i * l + p)] +
                          warm_m_[static_cast<usize>(p * l + i)]);
    }
    const real s = warm_m_[static_cast<usize>(l * l + i)];
    t_at(i, l) = s;
    t_at(l, i) = s;
  }
  warm_m_.clear();
  warm_m_.shrink_to_fit();
  j_ = l;
  phase_ = Phase::kAwaitMatvec;
  return Action::kMultiply;  // next product: A' * v_l, the normal iteration
}

std::vector<index_t> SymLanczos::ritz_order(
    const std::vector<real>& theta) const {
  std::vector<index_t> order(theta.size());
  std::iota(order.begin(), order.end(), index_t{0});
  auto cmp = [&](index_t a, index_t b) {
    const real ta = theta[static_cast<usize>(a)];
    const real tb = theta[static_cast<usize>(b)];
    switch (config_.which) {
      case EigWhich::kLargestAlgebraic: return ta > tb;
      case EigWhich::kSmallestAlgebraic: return ta < tb;
      case EigWhich::kLargestMagnitude: return std::fabs(ta) > std::fabs(tb);
      case EigWhich::kSmallestMagnitude: return std::fabs(ta) < std::fabs(tb);
    }
    return ta > tb;
  };
  std::stable_sort(order.begin(), order.end(), cmp);
  return order;
}

void SymLanczos::finalize(const std::vector<real>& theta,
                          const std::vector<real>& y,
                          const std::vector<index_t>& order, Phase end_phase) {
  const index_t m = config_.ncv;
  out_eigenvalues_.clear();
  out_residuals_.clear();
  final_order_.clear();
  for (index_t i = 0; i < config_.nev; ++i) {
    const index_t col = order[static_cast<usize>(i)];
    out_eigenvalues_.push_back(theta[static_cast<usize>(col)]);
    out_residuals_.push_back(
        std::fabs(beta_last_ * y[static_cast<usize>((m - 1) * m + col)]));
    final_order_.push_back(col);
  }
  final_y_ = y;
  phase_ = end_phase;
}

SymLanczos::Action SymLanczos::restart_or_finish() {
  const index_t n = config_.n;
  const index_t m = config_.ncv;
  WallTimer restart_timer;

  // Dense symmetric eigensolve of the projected matrix T (m x m).
  std::vector<real> tcopy(t_);
  DenseEigResult eig = dense_sym_eig(tcopy.data(), m, /*sym_tol=*/1e-8);
  std::vector<real>& theta = eig.eigenvalues;
  std::vector<real>& y = eig.eigenvectors;  // m x m, eigvecs in columns

  const std::vector<index_t> order = ritz_order(theta);

  real norm_estimate = 0;
  for (real t : theta) norm_estimate = std::max(norm_estimate, std::fabs(t));
  norm_estimate = std::max(norm_estimate, kEps);

  index_t converged = 0;
  real worst_res = 0;
  for (index_t i = 0; i < config_.nev; ++i) {
    const index_t col = order[static_cast<usize>(i)];
    const real res =
        std::fabs(beta_last_ * y[static_cast<usize>((m - 1) * m + col)]);
    if (res <= config_.tol * norm_estimate) ++converged;
    worst_res = std::max(worst_res, res);
  }
  // Simulated solver stall: pretend nothing converged this cycle, driving
  // the iteration toward the restart budget (and the kFailed path).
  if (fault::triggered("lanczos.convergence")) converged = 0;
  stats_.converged_count = converged;
  stats_.restart_history.push_back(
      LanczosRestartSample{stats_.restart_count, converged, worst_res});
  // Stall-watchdog feed: N restarts without relative residual improvement
  // fire the run's cancel token (deterministic under the stall fault above,
  // whose plateaued residuals never count as progress).
  cancel::note_progress(worst_res);
  if (obs::trace_enabled()) {
    const double now = obs::wall_now_us();
    obs::trace().counter("lanczos.worst_residual", worst_res, now);
    obs::trace().counter("lanczos.converged", static_cast<double>(converged),
                         now);
  }

  if (converged >= config_.nev) {
    finalize(theta, y, order, Phase::kConverged);
    stats_.restart_seconds += restart_timer.seconds();
    return Action::kConverged;
  }
  if (stats_.restart_count >= config_.max_restarts || m >= n) {
    // m == n means the factorization is exact; anything unconverged now is a
    // numerical artifact, report as converged-with-residuals via kFailed
    // only if truly over budget.
    finalize(theta, y, order, m >= n ? Phase::kConverged : Phase::kFailed);
    stats_.restart_seconds += restart_timer.seconds();
    return m >= n ? Action::kConverged : Action::kFailed;
  }

  // ---- Thick restart -------------------------------------------------------
  ++stats_.restart_count;
  index_t l = config_.nev + std::min(config_.nev, (m - config_.nev) / 2);
  l = std::min(l, m - 2);
  l = std::max(l, std::min(config_.nev, m - 2));

  // Basis compaction: rows 0..l-1 of the new V are (Y_sel)^T V_old.
  // Build G (l x m) with G[i, p] = Y[p, order[i]].
  std::vector<real> g(static_cast<usize>(l) * static_cast<usize>(m));
  for (index_t i = 0; i < l; ++i) {
    const index_t col = order[static_cast<usize>(i)];
    for (index_t p = 0; p < m; ++p) {
      g[static_cast<usize>(i * m + p)] = y[static_cast<usize>(p * m + col)];
    }
  }
  std::vector<real> vnew(static_cast<usize>(l) * static_cast<usize>(n));
  if (config_.dense_tier == DenseTier::kBlocked) {
    hblas::gemm(l, n, m, 1.0, g.data(), m, v_.data(), n, 0.0, vnew.data(), n);
  } else {
    hblas::gemm_naive(l, n, m, 1.0, g.data(), m, v_.data(), n, 0.0,
                      vnew.data(), n);
  }
  std::copy(vnew.begin(), vnew.end(), v_.begin());
  // The residual vector v_m becomes the continuation vector at row l.
  hblas::copy(n, v_row(m), v_row(l));

  // Rebuild T: diag of kept Ritz values plus the arrowhead couplings.
  std::fill(t_.begin(), t_.end(), 0.0);
  for (index_t i = 0; i < l; ++i) {
    const index_t col = order[static_cast<usize>(i)];
    t_at(i, i) = theta[static_cast<usize>(col)];
    const real s =
        beta_last_ * y[static_cast<usize>((m - 1) * m + col)];
    t_at(i, l) = s;
    t_at(l, i) = s;
  }
  nkept_ = l;
  j_ = l;
  if (config_.capture_checkpoints) capture_checkpoint();
  stats_.restart_seconds += restart_timer.seconds();
  return Action::kMultiply;  // next product: A * v_l
}

SymLanczos::Action SymLanczos::abandon() {
  FASTSC_CHECK(can_abandon(),
               "abandon requires an in-flight iteration with at least nev "
               "basis vectors");
  const index_t m = config_.ncv;
  const index_t jb = j_;  // valid basis rows 0..jb-1; jb < m in kAwaitMatvec
  WallTimer restart_timer;

  // Ritz pairs of the current jb-step factorization: dense eigensolve of the
  // leading jb x jb block of T.  This covers both shapes the block can have
  // mid-flight — tridiagonal during expansion, diagonal-plus-arrowhead right
  // after a thick restart — because the block is simply what the iteration
  // has projected so far.
  std::vector<real> tb(static_cast<usize>(jb) * static_cast<usize>(jb));
  for (index_t i = 0; i < jb; ++i) {
    for (index_t p = 0; p < jb; ++p) {
      tb[static_cast<usize>(i * jb + p)] = t_[static_cast<usize>(i * m + p)];
    }
  }
  DenseEigResult eig = dense_sym_eig(tb.data(), jb, /*sym_tol=*/1e-8);
  const std::vector<real>& theta = eig.eigenvalues;
  const std::vector<real>& y = eig.eigenvectors;  // jb x jb, eigvecs in cols
  const std::vector<index_t> order = ritz_order(theta);

  // Residual of Ritz pair (theta, V y) from A V = V T_jb + v_jb b^T with
  // coupling b[p] = T(p, jb): ||r|| = |b^T y|.  Column jb of T exists
  // (jb < m) and holds the tridiagonal beta or the restart arrowhead.
  out_eigenvalues_.clear();
  out_residuals_.clear();
  final_order_.clear();
  final_y_.assign(static_cast<usize>(m) * static_cast<usize>(m), 0.0);
  for (index_t p = 0; p < jb; ++p) {
    for (index_t col = 0; col < jb; ++col) {
      // Zero-padded m x m embedding so extract_eigenvectors() reads the
      // same (p * m + col) layout as a finished solve.
      final_y_[static_cast<usize>(p * m + col)] =
          y[static_cast<usize>(p * jb + col)];
    }
  }
  for (index_t i = 0; i < config_.nev; ++i) {
    const index_t col = order[static_cast<usize>(i)];
    out_eigenvalues_.push_back(theta[static_cast<usize>(col)]);
    real r = 0;
    for (index_t p = 0; p < jb; ++p) {
      r += t_[static_cast<usize>(p * m + jb)] * y[static_cast<usize>(p * jb + col)];
    }
    out_residuals_.push_back(std::fabs(r));
    final_order_.push_back(col);
  }
  phase_ = Phase::kFailed;
  stats_.restart_seconds += restart_timer.seconds();
  obs::metrics().counter("lanczos.abandons").add();
  return Action::kFailed;
}

std::vector<real> SymLanczos::extract_eigenvectors() const {
  FASTSC_CHECK(phase_ == Phase::kConverged || phase_ == Phase::kFailed,
               "extract_eigenvectors requires a finished iteration");
  const index_t n = config_.n;
  const index_t m = config_.ncv;
  const index_t count = static_cast<index_t>(final_order_.size());
  std::vector<real> g(static_cast<usize>(count) * static_cast<usize>(m));
  for (index_t i = 0; i < count; ++i) {
    const index_t col = final_order_[static_cast<usize>(i)];
    for (index_t p = 0; p < m; ++p) {
      g[static_cast<usize>(i * m + p)] =
          final_y_[static_cast<usize>(p * m + col)];
    }
  }
  std::vector<real> x(static_cast<usize>(count) * static_cast<usize>(n));
  if (config_.dense_tier == DenseTier::kBlocked) {
    hblas::gemm(count, n, m, 1.0, g.data(), m, v_.data(), n, 0.0, x.data(), n);
  } else {
    hblas::gemm_naive(count, n, m, 1.0, g.data(), m, v_.data(), n, 0.0,
                      x.data(), n);
  }
  // Normalize each Ritz vector (defensive: Y columns are orthonormal so the
  // products are unit up to roundoff already).
  for (index_t i = 0; i < count; ++i) {
    real* row = x.data() + i * n;
    const real norm = hblas::nrm2(n, row);
    if (norm > 0) hblas::scal(n, 1.0 / norm, row);
  }
  return x;
}

}  // namespace fastsc::lanczos
