// Implicitly restarted Lanczos (ARPACK dsaupd/dseupd equivalent) with a
// reverse communication interface.
//
// The paper's Algorithm 3 couples ARPACK's CPU-side iteration to GPU-side
// SpMV through reverse communication: the solver never sees the matrix, it
// only hands out a vector x and expects y = A x back.  SymLanczos preserves
// exactly that interface and cost structure:
//
//   * step() returns kMultiply when it needs y = A x; the caller reads x
//     from multiply_input(), computes the product anywhere it likes (our
//     pipeline: device_csrmv with H2D/D2H staging), writes y into
//     multiply_output() and calls step() again;
//   * the CPU-side work per restart is one dense m x m symmetric
//     eigen-decomposition plus an (l x m)(m x n) basis compaction GEMM —
//     the O(m^3) + O(n m^2) terms of the paper's Eq. 10;
//   * restarting uses the thick-restart formulation (Wu & Simon 2000),
//     which is algebraically equivalent to ARPACK's implicit QR restart
//     with exact shifts for symmetric matrices, and numerically more robust.
//
// Full (two-pass) reorthogonalization is applied at every expansion step,
// matching ARPACK's practical behaviour on the clustered spectra produced
// by graph Laplacians.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace fastsc::lanczos {

/// Which end of the spectrum to compute (ARPACK's `which` parameter).
enum class EigWhich {
  kLargestAlgebraic,   // "LA": spectral clustering on D^-1 W uses this
  kSmallestAlgebraic,  // "SA"
  kLargestMagnitude,   // "LM"
  kSmallestMagnitude,  // "SM" — converges slowly without shift-invert
};

/// Dense-kernel tier for the CPU-side restart work; the python-like baseline
/// models an unoptimized BLAS build with kNaive (DESIGN.md §2).
enum class DenseTier { kBlocked, kNaive };

/// Reorthogonalization policy for the Lanczos expansion.
///
/// kFull is ARPACK-grade: two Gram-Schmidt passes against the whole basis
/// per step, O(n*j) per step.  kLocal orthogonalizes only against the kept
/// thick-restart Ritz vectors plus the previous two Lanczos vectors —
/// cheaper per step but susceptible to ghost eigenvalues on clustered
/// spectra (bench_ablation_reorth quantifies the tradeoff).
enum class ReorthMode { kFull, kLocal };

/// How the reorthogonalization passes are computed.
///
/// kBlockedCgs2 expresses each pass as classical Gram-Schmidt against the
/// packed basis — c = V w (gemv), w -= V^T c (gemv_t) — two level-2 calls
/// per pass through the threaded hblas path instead of up-to-ncv level-1
/// dot/axpy pairs.  Two CGS passes ("twice is enough", Giraud et al. 2005)
/// match two-pass MGS to the same working-precision orthogonality, so the
/// Ritz values agree with the kMgs path to existing tolerances; kMgs keeps
/// the legacy per-vector loop for the reorth ablation bench.
enum class OrthoKernel { kBlockedCgs2, kMgs };

struct LanczosConfig {
  index_t n = 0;    ///< problem size
  index_t nev = 1;  ///< number of eigenpairs wanted (paper's k)
  /// Lanczos basis size m; 0 selects min(n, max(2*nev + 1, 20)), the
  /// ARPACK-style default the paper quotes as m = max(2k, ...).
  index_t ncv = 0;
  /// Relative residual tolerance: ||A v - theta v|| <= tol * ||A||_est.
  real tol = 1e-10;
  index_t max_restarts = 300;
  EigWhich which = EigWhich::kLargestAlgebraic;
  std::uint64_t seed = 42;
  DenseTier dense_tier = DenseTier::kBlocked;
  ReorthMode reorth = ReorthMode::kFull;
  OrthoKernel ortho_kernel = OrthoKernel::kBlockedCgs2;
  /// Optional starting vector (length n); empty selects a seeded random
  /// vector.  A good warm start (e.g. the previous solution when the matrix
  /// changed slightly) reduces restarts — ARPACK's `resid/info=1` option.
  std::vector<real> initial_vector;
  /// Capture a LanczosCheckpoint at every restart boundary, enabling
  /// restore() after a kFailed solve (degradation resume path).
  bool capture_checkpoints = false;
};

/// Serializable restart-boundary state of a SymLanczos solve.  Restoring it
/// into a solver with an identical (n, nev, ncv, which) configuration
/// continues the iteration exactly where the checkpoint was taken.
struct LanczosCheckpoint {
  index_t n = 0;
  index_t nev = 0;
  index_t ncv = 0;
  int which = 0;
  index_t j = 0;
  index_t nkept = 0;
  real beta_last = 0;
  std::vector<real> v;  // (ncv+1) x n basis
  std::vector<real> t;  // ncv x ncv projected matrix
  index_t restart_count = 0;
  index_t matvec_count = 0;
  RngState rng;

  [[nodiscard]] bool valid() const noexcept { return n > 0 && ncv > 0; }

  /// CRC32C over the logical payload (scalars, basis, projected matrix and
  /// RNG state, chained in field order).  The save/load framing stores it so
  /// a blob flipped at rest is rejected at load; ResultCache reuses it to
  /// seal cached warm-start donors (DESIGN.md §14).
  [[nodiscard]] std::uint32_t payload_crc() const;

  /// Binary serialization (magic "FSCKPT02"; the frame ends with
  /// payload_crc()).  Throws on a bad stream; load throws
  /// device::DataIntegrityError when the payload fails its CRC.
  void save(std::ostream& os) const;
  [[nodiscard]] static LanczosCheckpoint load(std::istream& is);
};

/// Convergence state observed at the end of one restart cycle (after the
/// projected eigensolve, before the basis compaction).
struct LanczosRestartSample {
  index_t restart = 0;          ///< 0 = the initial m-step factorization
  index_t converged = 0;        ///< wanted pairs meeting the tolerance
  real worst_wanted_residual = 0;  ///< max residual over the nev wanted pairs
};

struct LanczosStats {
  index_t matvec_count = 0;
  index_t restart_count = 0;
  index_t converged_count = 0;
  /// Wall time spent inside step() — the CPU-side "TakeStep" cost.
  double rci_seconds = 0;
  /// Wall time of the dense eigensolves + basis compactions only.
  double restart_seconds = 0;
  /// Wall time of reorthogonalization.
  double ortho_seconds = 0;
  /// One entry per restart cycle, in order — the solver's convergence
  /// trajectory (also emitted as "lanczos.*" trace counters).
  std::vector<LanczosRestartSample> restart_history;
};

/// Reverse-communication symmetric Lanczos eigensolver.
class SymLanczos {
 public:
  enum class Action {
    kMultiply,   ///< compute multiply_output() = A * multiply_input(), call step() again
    kConverged,  ///< nev pairs converged; results available
    kFailed,     ///< restart budget exhausted; best partial results available
  };

  explicit SymLanczos(LanczosConfig config);

  /// Advance the state machine.  The first call begins the iteration.
  Action step();

  /// Vector x the solver wants multiplied (valid after step() == kMultiply).
  [[nodiscard]] std::span<const real> multiply_input() const;

  /// Destination for y = A x (write all n entries before the next step()).
  [[nodiscard]] std::span<real> multiply_output();

  /// Converged eigenvalues, best-first per `which` (valid after
  /// kConverged/kFailed); size min(nev, converged_count) — on kFailed the
  /// best unconverged estimates are included up to nev.
  [[nodiscard]] const std::vector<real>& eigenvalues() const;

  /// Residual norm estimates matching eigenvalues().
  [[nodiscard]] const std::vector<real>& residuals() const;

  /// Extract the Ritz vectors matching eigenvalues() into a row-major
  /// (count x n) matrix (ARPACK's dseupd / the paper's FindEigenvectors).
  [[nodiscard]] std::vector<real> extract_eigenvectors() const;

  [[nodiscard]] const LanczosStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LanczosConfig& config() const noexcept { return config_; }
  [[nodiscard]] bool done() const noexcept {
    return phase_ == Phase::kConverged || phase_ == Phase::kFailed;
  }

  /// True once a checkpoint was captured (config_.capture_checkpoints).
  [[nodiscard]] bool has_checkpoint() const noexcept {
    return checkpoint_.valid();
  }
  [[nodiscard]] const LanczosCheckpoint& last_checkpoint() const noexcept {
    return checkpoint_;
  }

  /// Rewind to `cp` (captured here or deserialized): the next step()
  /// resumes the interrupted solve as kAwaitMatvec.  Throws on a
  /// configuration mismatch.  Call set_max_restarts to extend the budget
  /// when resuming a kFailed solve.
  void restore(const LanczosCheckpoint& cp);

  /// Warm-start this solve from a restart-boundary checkpoint of a *nearby*
  /// matrix A (the service's delta-edge re-solve path).  The kept Ritz basis
  /// V_l and continuation vector v_l are reused verbatim, but the projected
  /// matrix T is stale — it encodes V^T A V, not V^T A' V — so the solver
  /// first runs a refresh pass: one matvec per kept vector (l = cp.nkept
  /// products, handed out through the normal kMultiply protocol) rebuilds
  /// the kept block as the symmetrized projection M = V^T A' V plus the
  /// arrowhead couplings v_l^T A' v_i, after which the ordinary thick-restart
  /// iteration continues from j = l.  For a small perturbation ||A' - A||
  /// the refreshed factorization is exact on the kept block, so convergence
  /// typically needs a fraction of the cold-start waves.  Requires
  /// cp.j == cp.nkept (a restart boundary) and a matching configuration;
  /// solver stats restart from zero so stats() reports the warm cost alone.
  void restore_warm(const LanczosCheckpoint& cp);

  /// Current Lanczos step j — the number of basis vectors built so far.
  /// Sharded drivers use it to price each CGS2 pass (O(n * j) work).
  [[nodiscard]] index_t basis_size() const noexcept { return j_; }

  /// SDC sentinel (DESIGN.md §14): worst orthogonality defect of the settled
  /// basis rows, max(|<v_j, v_{j-1}>|, |<v_j, v_0>|, | ||v_j|| - 1 |), which
  /// CGS2 keeps near machine epsilon.  Returns 0 unless the solver is
  /// mid-iteration (kAwaitMatvec) with at least three settled rows — the
  /// rows at and below j_ are the orthonormal basis multiply_input() reads.
  [[nodiscard]] real orthogonality_drift() const;

  /// True when abandon() can produce partial Ritz pairs: the iteration is
  /// mid-flight (kAwaitMatvec) with at least nev basis vectors built.
  [[nodiscard]] bool can_abandon() const noexcept {
    return phase_ == Phase::kAwaitMatvec && j_ >= config_.nev;
  }

  /// Anytime cut: stop the iteration *now* and expose the best Ritz pairs of
  /// the current j-step factorization through the normal kFailed accessors
  /// (eigenvalues / residuals / extract_eigenvectors).  Used by the deadline
  /// subsystem when a run budget expires mid-solve.  Requires can_abandon().
  Action abandon();

  void set_max_restarts(index_t max_restarts) noexcept {
    config_.max_restarts = max_restarts;
  }

 private:
  enum class Phase { kStart, kAwaitMatvec, kWarmRefresh, kConverged, kFailed };

  real* v_row(index_t j) noexcept { return v_.data() + j * config_.n; }
  const real* v_row(index_t j) const noexcept {
    return v_.data() + j * config_.n;
  }
  real& t_at(index_t i, index_t j) noexcept { return t_[i * config_.ncv + j]; }

  void start_iteration();
  Action process_matvec();
  Action process_warm_refresh();
  Action restart_or_finish();
  /// Shared checkpoint-restore body (validation + state copy); the public
  /// restore()/restore_warm() entry points layer phase + accounting on top.
  void restore_common(const LanczosCheckpoint& cp);
  void reorthogonalize(real* w, index_t upto, real* alpha_correction);
  void random_unit_orthogonal(real* w, index_t upto);
  /// Order Ritz indices best-first per config_.which.
  [[nodiscard]] std::vector<index_t> ritz_order(
      const std::vector<real>& theta) const;
  void finalize(const std::vector<real>& theta, const std::vector<real>& y,
                const std::vector<index_t>& order, Phase end_phase);
  void capture_checkpoint();

  LanczosConfig config_;
  Phase phase_ = Phase::kStart;
  Rng rng_;
  std::vector<real> v_;   // (ncv+1) x n row-major basis, rows are vectors
  std::vector<real> t_;   // ncv x ncv projected matrix (symmetric)
  std::vector<real> w_;   // matvec result / working vector, length n
  std::vector<real> c_;   // CGS2 coefficient scratch, length ncv + 1
  std::vector<real> warm_m_;  // (nkept+1) x nkept projection during refresh
  index_t j_ = 0;         // current Lanczos step
  index_t nkept_ = 0;     // thick-restart kept count (arrowhead column)
  real beta_last_ = 0;    // coupling of v_m to the basis
  LanczosStats stats_;
  std::vector<real> out_eigenvalues_;
  std::vector<real> out_residuals_;
  std::vector<real> final_y_;          // ncv x ncv eigvecs of final T
  std::vector<index_t> final_order_;   // selected columns, best-first
  LanczosCheckpoint checkpoint_;       // latest restart-boundary snapshot
};

}  // namespace fastsc::lanczos
