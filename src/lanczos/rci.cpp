#include "lanczos/rci.h"

namespace fastsc::lanczos {

SymEigResult solve_symmetric(
    const LanczosConfig& config,
    const std::function<void(const real* x, real* y)>& matvec) {
  SymEigProb prob(config);
  while (!prob.converge()) {
    matvec(prob.GetVector(), prob.PutVector());
    prob.TakeStep();
  }
  SymEigResult result;
  result.eigenvalues = prob.Eigenvalues();
  result.residuals = prob.Residuals();
  result.eigenvectors = prob.FindEigenvectors();
  result.converged = !prob.Failed();
  result.stats = prob.Stats();
  return result;
}

}  // namespace fastsc::lanczos
