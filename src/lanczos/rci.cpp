#include "lanczos/rci.h"

#include "common/cancel.h"

namespace fastsc::lanczos {

SymEigResult solve_symmetric(
    const LanczosConfig& config,
    const std::function<void(const real* x, real* y)>& matvec) {
  SymEigProb prob(config);
  while (!prob.converge()) {
    // One poll per reverse-communication wave: bounded work between polls is
    // one matvec plus one TakeStep.  An anytime deadline freezes the
    // iteration and keeps the best partial Ritz pairs; hard cancellation
    // unwinds from here.
    try {
      cancel::poll("lanczos.host_matvec");
    } catch (const cancel::CancelledError& e) {
      cancel::Governor& gov = cancel::current_governor();
      if (!gov.anytime_allowed() || !prob.CanAbandon()) throw;
      prob.Abandon();
      gov.begin_wrapup(e.site().empty() ? e.what() : e.site());
      break;
    }
    matvec(prob.GetVector(), prob.PutVector());
    prob.TakeStep();
  }
  SymEigResult result;
  result.eigenvalues = prob.Eigenvalues();
  result.residuals = prob.Residuals();
  result.eigenvectors = prob.FindEigenvectors();
  result.converged = !prob.Failed();
  result.stats = prob.Stats();
  return result;
}

}  // namespace fastsc::lanczos
