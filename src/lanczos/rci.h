// ARPACK++-style problem wrapper over SymLanczos.
//
// The paper's Algorithm 3 is written against ARPACK++'s interface:
//
//   while (!Prob.converge()) {
//     Prob.TakeStep();
//     <y = A x, with x at Prob.GetVector(), y to Prob.PutVector()>
//   }
//   Prob.FindEigenvectors();
//
// SymEigProb reproduces those method names and that calling convention so
// the pipeline code reads like the paper.  A convenience free function
// `solve_symmetric` runs the loop with a caller-supplied matvec.
#pragma once

#include <functional>

#include "lanczos/irlm.h"

namespace fastsc::lanczos {

class SymEigProb {
 public:
  explicit SymEigProb(LanczosConfig config) : solver_(config) {}

  /// True once the requested eigenpairs have converged (or the solver gave
  /// up; check Failed()).
  [[nodiscard]] bool converge() {
    if (!started_) {
      // Prime the state machine so GetVector() is valid.
      last_action_ = solver_.step();
      started_ = true;
    }
    return last_action_ != SymLanczos::Action::kMultiply;
  }

  /// Advance one reverse-communication step.  Call after writing the matvec
  /// result to PutVector().  (The first TakeStep happens inside converge().)
  void TakeStep() { last_action_ = solver_.step(); }

  /// Pointer to the vector the solver wants multiplied (length n).
  [[nodiscard]] const real* GetVector() const {
    return solver_.multiply_input().data();
  }

  /// Pointer to the destination for the product (length n).
  [[nodiscard]] real* PutVector() { return solver_.multiply_output().data(); }

  /// Compute the Ritz vectors (row-major count x n).
  [[nodiscard]] std::vector<real> FindEigenvectors() const {
    return solver_.extract_eigenvectors();
  }

  [[nodiscard]] const std::vector<real>& Eigenvalues() const {
    return solver_.eigenvalues();
  }
  [[nodiscard]] const std::vector<real>& Residuals() const {
    return solver_.residuals();
  }
  [[nodiscard]] bool Failed() const {
    return last_action_ == SymLanczos::Action::kFailed;
  }
  [[nodiscard]] const LanczosStats& Stats() const { return solver_.stats(); }
  [[nodiscard]] SymLanczos& Solver() { return solver_; }

  /// Rewind to a checkpoint (degradation resume after Failed()): the loop
  /// continues as if the intervening work never happened.  Extend the
  /// solver's restart budget via Solver().set_max_restarts first if the
  /// failure was budget exhaustion.
  void Restore(const LanczosCheckpoint& cp) {
    solver_.restore(cp);
    started_ = true;
    last_action_ = SymLanczos::Action::kMultiply;
  }

  /// Warm-start from a nearby matrix's restart-boundary checkpoint (see
  /// SymLanczos::restore_warm): the loop's next products feed the kept-basis
  /// refresh pass, then the iteration continues normally against the new
  /// operator.
  void RestoreWarm(const LanczosCheckpoint& cp) {
    solver_.restore_warm(cp);
    started_ = true;
    last_action_ = SymLanczos::Action::kMultiply;
  }

  /// Anytime cut on budget expiry: freeze the iteration and surface the best
  /// partial Ritz pairs through the normal Failed()/FindEigenvectors() path.
  /// Only valid when CanAbandon().
  [[nodiscard]] bool CanAbandon() const noexcept {
    return started_ && solver_.can_abandon();
  }
  void Abandon() {
    last_action_ = solver_.abandon();
    started_ = true;
  }

 private:
  SymLanczos solver_;
  SymLanczos::Action last_action_ = SymLanczos::Action::kMultiply;
  bool started_ = false;
};

/// Result bundle for the convenience driver.
struct SymEigResult {
  std::vector<real> eigenvalues;     // best-first per config.which
  std::vector<real> eigenvectors;    // row-major nev x n
  std::vector<real> residuals;
  bool converged = false;
  LanczosStats stats;
};

/// Run the full reverse-communication loop with `matvec(x, y)` computing
/// y = A x (both length n).
SymEigResult solve_symmetric(
    const LanczosConfig& config,
    const std::function<void(const real* x, real* y)>& matvec);

}  // namespace fastsc::lanczos
