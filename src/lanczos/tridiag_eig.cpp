#include "lanczos/tridiag_eig.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace fastsc::lanczos {

namespace {

/// sqrt(a^2 + b^2) without destructive over/underflow.
real hypot2(real a, real b) { return std::hypot(a, b); }

/// Core QL-with-implicit-shifts sweep.  If z != nullptr, accumulate the
/// rotations into the n x ldz row-major matrix (columns transform).
bool ql_implicit(std::vector<real>& d, std::vector<real>& e, real* z,
                 index_t ldz) {
  const index_t n = static_cast<index_t>(d.size());
  if (n == 0) return true;
  FASTSC_CHECK(e.size() + 1 == d.size(),
               "off-diagonal must have n-1 entries");
  if (n == 1) return true;

  // Work on a copy of e with a trailing zero sentinel.
  std::vector<real> sub(e);
  sub.push_back(0.0);

  for (index_t l = 0; l < n; ++l) {
    index_t iter = 0;
    index_t m;
    do {
      // Find a negligible off-diagonal element.
      for (m = l; m < n - 1; ++m) {
        const real dd = std::fabs(d[static_cast<usize>(m)]) +
                        std::fabs(d[static_cast<usize>(m) + 1]);
        if (std::fabs(sub[static_cast<usize>(m)]) <=
            std::numeric_limits<real>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        if (++iter == 50) return false;
        // Wilkinson shift.
        real g = (d[static_cast<usize>(l) + 1] - d[static_cast<usize>(l)]) /
                 (2.0 * sub[static_cast<usize>(l)]);
        real r = hypot2(g, 1.0);
        g = d[static_cast<usize>(m)] - d[static_cast<usize>(l)] +
            sub[static_cast<usize>(l)] /
                (g + (g >= 0 ? std::fabs(r) : -std::fabs(r)));
        real s = 1.0, c = 1.0, p = 0.0;
        bool underflow = false;
        for (index_t i = m - 1; i >= l; --i) {
          real f = s * sub[static_cast<usize>(i)];
          const real b = c * sub[static_cast<usize>(i)];
          r = hypot2(f, g);
          sub[static_cast<usize>(i) + 1] = r;
          if (r == 0.0) {
            d[static_cast<usize>(i) + 1] -= p;
            sub[static_cast<usize>(m)] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[static_cast<usize>(i) + 1] - p;
          r = (d[static_cast<usize>(i)] - g) * s + 2.0 * c * b;
          p = s * r;
          d[static_cast<usize>(i) + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            // Apply the rotation to columns i and i+1 of z.
            for (index_t row = 0; row < n; ++row) {
              real* zr = z + row * ldz;
              const real fz = zr[i + 1];
              zr[i + 1] = s * zr[i] + c * fz;
              zr[i] = c * zr[i] - s * fz;
            }
          }
        }
        if (underflow) continue;
        d[static_cast<usize>(l)] -= p;
        sub[static_cast<usize>(l)] = g;
        sub[static_cast<usize>(m)] = 0.0;
      }
    } while (m != l);
  }

  // Sort eigenvalues (and columns of z) ascending by selection sort —
  // n here is the Lanczos basis size (small), so O(n^2) swaps are fine.
  for (index_t i = 0; i < n - 1; ++i) {
    index_t kmin = i;
    for (index_t j = i + 1; j < n; ++j) {
      if (d[static_cast<usize>(j)] < d[static_cast<usize>(kmin)]) kmin = j;
    }
    if (kmin != i) {
      std::swap(d[static_cast<usize>(i)], d[static_cast<usize>(kmin)]);
      if (z != nullptr) {
        for (index_t row = 0; row < n; ++row) {
          std::swap(z[row * ldz + i], z[row * ldz + kmin]);
        }
      }
    }
  }
  return true;
}

}  // namespace

bool tridiag_eig(std::vector<real>& d, std::vector<real>& e, real* z,
                 index_t ldz) {
  return ql_implicit(d, e, z, ldz);
}

bool tridiag_eigvalues(std::vector<real>& d, std::vector<real>& e) {
  return ql_implicit(d, e, nullptr, 0);
}

}  // namespace fastsc::lanczos
