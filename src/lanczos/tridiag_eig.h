// Symmetric tridiagonal eigensolver (implicit-shift QL, EISPACK tql2 family).
//
// This is the inner dense kernel of the implicitly restarted Lanczos method:
// every restart diagonalizes the projected m x m matrix T.  The routine
// optionally accumulates the rotations into a caller-supplied basis so Ritz
// vectors come out directly.
#pragma once

#include <vector>

#include "common/types.h"

namespace fastsc::lanczos {

/// Eigen-decomposition of the symmetric tridiagonal matrix with diagonal d
/// (length n) and off-diagonal e (length n-1, e[i] couples rows i and i+1).
///
/// On return `d` holds eigenvalues in ascending order.  If `z` is non-null it
/// must point to a row-major n x ldz matrix whose COLUMNS are transformed:
/// pass the identity to get eigenvectors of T in columns, or pass an existing
/// basis V (n_basis rows... see dense_eig.cpp) to accumulate.  Here we keep
/// the classic contract: z is n x n row-major, columns become eigenvectors.
///
/// Returns false if the QL iteration failed to converge within 50 sweeps for
/// some eigenvalue (essentially never for well-formed input).
bool tridiag_eig(std::vector<real>& d, std::vector<real>& e, real* z,
                 index_t ldz);

/// Eigenvalues-only variant.
bool tridiag_eigvalues(std::vector<real>& d, std::vector<real>& e);

}  // namespace fastsc::lanczos
