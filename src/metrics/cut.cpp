#include "metrics/cut.h"

#include "common/error.h"

namespace fastsc::metrics {

namespace {

struct CutParts {
  std::vector<real> boundary;  // W(A_i, complement)
  std::vector<real> volume;    // vol(A_i)
  std::vector<index_t> count;  // |A_i|
};

CutParts accumulate(const sparse::Csr& w, const std::vector<index_t>& labels,
                    index_t k) {
  FASTSC_CHECK(w.rows == w.cols, "cut metrics need a square matrix");
  FASTSC_CHECK(static_cast<index_t>(labels.size()) == w.rows,
               "labels size must match matrix");
  CutParts parts;
  parts.boundary.assign(static_cast<usize>(k), 0.0);
  parts.volume.assign(static_cast<usize>(k), 0.0);
  parts.count.assign(static_cast<usize>(k), 0);
  for (index_t r = 0; r < w.rows; ++r) {
    const index_t lr = labels[static_cast<usize>(r)];
    FASTSC_CHECK(lr >= 0 && lr < k, "label out of range");
    parts.count[static_cast<usize>(lr)] += 1;
    for (index_t p = w.row_ptr[static_cast<usize>(r)];
         p < w.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      const real v = w.values[static_cast<usize>(p)];
      const index_t c = w.col_idx[static_cast<usize>(p)];
      const index_t lc = labels[static_cast<usize>(c)];
      parts.volume[static_cast<usize>(lr)] += v;
      if (lc != lr) parts.boundary[static_cast<usize>(lr)] += v;
    }
  }
  return parts;
}

}  // namespace

real cut_value(const sparse::Csr& w, const std::vector<index_t>& labels,
               index_t k) {
  const CutParts parts = accumulate(w, labels, k);
  real acc = 0;
  for (real b : parts.boundary) acc += b;
  return acc / 2;
}

real ratio_cut(const sparse::Csr& w, const std::vector<index_t>& labels,
               index_t k) {
  const CutParts parts = accumulate(w, labels, k);
  real acc = 0;
  for (index_t i = 0; i < k; ++i) {
    if (parts.count[static_cast<usize>(i)] > 0) {
      acc += parts.boundary[static_cast<usize>(i)] /
             static_cast<real>(parts.count[static_cast<usize>(i)]);
    }
  }
  return acc / 2;
}

real normalized_cut(const sparse::Csr& w, const std::vector<index_t>& labels,
                    index_t k) {
  const CutParts parts = accumulate(w, labels, k);
  real acc = 0;
  for (index_t i = 0; i < k; ++i) {
    if (parts.volume[static_cast<usize>(i)] > 0) {
      acc += parts.boundary[static_cast<usize>(i)] /
             parts.volume[static_cast<usize>(i)];
    }
  }
  return acc / 2;
}

}  // namespace fastsc::metrics
