// Graph-cut quality measures (paper Eq. 1-4): Cut, RatioCut and Ncut.
//
// Spectral clustering minimizes a relaxation of Ncut; the integration tests
// verify that the pipeline's partitions achieve lower Ncut than random ones.
#pragma once

#include <vector>

#include "common/types.h"
#include "sparse/csr.h"

namespace fastsc::metrics {

/// W(A, B) = sum of w_ij over i in A, j in B for the partition given by
/// labels; returns the total cut value Cut = 1/2 sum_i W(A_i, complement).
[[nodiscard]] real cut_value(const sparse::Csr& w,
                             const std::vector<index_t>& labels, index_t k);

/// RatioCut = 1/2 sum_i W(A_i, ~A_i) / |A_i|  (Eq. 3).
[[nodiscard]] real ratio_cut(const sparse::Csr& w,
                             const std::vector<index_t>& labels, index_t k);

/// Ncut = 1/2 sum_i W(A_i, ~A_i) / vol(A_i)  (Eq. 4).  Empty or zero-volume
/// parts contribute nothing (treated as absent).
[[nodiscard]] real normalized_cut(const sparse::Csr& w,
                                  const std::vector<index_t>& labels,
                                  index_t k);

}  // namespace fastsc::metrics
