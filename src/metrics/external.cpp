#include "metrics/external.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace fastsc::metrics {

namespace {

index_t label_range(const std::vector<index_t>& labels) {
  index_t maxv = -1;
  for (index_t l : labels) {
    FASTSC_CHECK(l >= 0, "labels must be nonnegative");
    maxv = std::max(maxv, l);
  }
  return maxv + 1;
}

real comb2(real x) { return x * (x - 1) / 2; }

}  // namespace

std::vector<index_t> contingency_table(const std::vector<index_t>& a,
                                       const std::vector<index_t>& b,
                                       index_t& ka, index_t& kb) {
  FASTSC_CHECK(a.size() == b.size(), "labelings must have equal length");
  ka = label_range(a);
  kb = label_range(b);
  std::vector<index_t> table(static_cast<usize>(ka) * static_cast<usize>(kb),
                             0);
  for (usize i = 0; i < a.size(); ++i) {
    table[static_cast<usize>(a[i]) * static_cast<usize>(kb) +
          static_cast<usize>(b[i])] += 1;
  }
  return table;
}

real adjusted_rand_index(const std::vector<index_t>& a,
                         const std::vector<index_t>& b) {
  index_t ka, kb;
  const std::vector<index_t> table = contingency_table(a, b, ka, kb);
  const real n = static_cast<real>(a.size());
  if (n < 2) return 1.0;

  std::vector<real> row_sums(static_cast<usize>(ka), 0.0);
  std::vector<real> col_sums(static_cast<usize>(kb), 0.0);
  real sum_comb_cells = 0;
  for (index_t i = 0; i < ka; ++i) {
    for (index_t j = 0; j < kb; ++j) {
      const real v = static_cast<real>(
          table[static_cast<usize>(i) * static_cast<usize>(kb) +
                static_cast<usize>(j)]);
      row_sums[static_cast<usize>(i)] += v;
      col_sums[static_cast<usize>(j)] += v;
      sum_comb_cells += comb2(v);
    }
  }
  real sum_comb_rows = 0, sum_comb_cols = 0;
  for (real v : row_sums) sum_comb_rows += comb2(v);
  for (real v : col_sums) sum_comb_cols += comb2(v);

  const real expected = sum_comb_rows * sum_comb_cols / comb2(n);
  const real max_index = (sum_comb_rows + sum_comb_cols) / 2;
  const real denom = max_index - expected;
  if (denom == 0) return 1.0;  // both partitions trivial
  return (sum_comb_cells - expected) / denom;
}

real normalized_mutual_information(const std::vector<index_t>& a,
                                   const std::vector<index_t>& b) {
  index_t ka, kb;
  const std::vector<index_t> table = contingency_table(a, b, ka, kb);
  const real n = static_cast<real>(a.size());
  if (n == 0) return 1.0;

  std::vector<real> pa(static_cast<usize>(ka), 0.0);
  std::vector<real> pb(static_cast<usize>(kb), 0.0);
  for (index_t i = 0; i < ka; ++i) {
    for (index_t j = 0; j < kb; ++j) {
      const real v = static_cast<real>(
          table[static_cast<usize>(i) * static_cast<usize>(kb) +
                static_cast<usize>(j)]);
      pa[static_cast<usize>(i)] += v / n;
      pb[static_cast<usize>(j)] += v / n;
    }
  }
  real mi = 0, ha = 0, hb = 0;
  for (index_t i = 0; i < ka; ++i) {
    for (index_t j = 0; j < kb; ++j) {
      const real pij = static_cast<real>(
                           table[static_cast<usize>(i) * static_cast<usize>(kb) +
                                 static_cast<usize>(j)]) /
                       n;
      if (pij > 0) {
        mi += pij * std::log(pij / (pa[static_cast<usize>(i)] *
                                    pb[static_cast<usize>(j)]));
      }
    }
  }
  for (real p : pa) {
    if (p > 0) ha -= p * std::log(p);
  }
  for (real p : pb) {
    if (p > 0) hb -= p * std::log(p);
  }
  const real denom = (ha + hb) / 2;
  if (denom == 0) return 1.0;  // both partitions trivial
  return mi / denom;
}

real purity(const std::vector<index_t>& predicted,
            const std::vector<index_t>& truth) {
  index_t ka, kb;
  const std::vector<index_t> table = contingency_table(predicted, truth, ka, kb);
  if (predicted.empty()) return 1.0;
  index_t correct = 0;
  for (index_t i = 0; i < ka; ++i) {
    index_t best = 0;
    for (index_t j = 0; j < kb; ++j) {
      best = std::max(best,
                      table[static_cast<usize>(i) * static_cast<usize>(kb) +
                            static_cast<usize>(j)]);
    }
    correct += best;
  }
  return static_cast<real>(correct) / static_cast<real>(predicted.size());
}

}  // namespace fastsc::metrics
