// External clustering quality indices against ground-truth labels.
//
// The synthetic datasets carry planted partitions, so unlike the paper we
// can validate that the pipeline recovers them: Adjusted Rand Index,
// Normalized Mutual Information and purity.
#pragma once

#include <vector>

#include "common/types.h"

namespace fastsc::metrics {

/// Adjusted Rand Index in [-1, 1]; 1 = identical partitions, ~0 = random.
[[nodiscard]] real adjusted_rand_index(const std::vector<index_t>& a,
                                       const std::vector<index_t>& b);

/// Normalized Mutual Information in [0, 1] (arithmetic-mean normalization).
[[nodiscard]] real normalized_mutual_information(
    const std::vector<index_t>& a, const std::vector<index_t>& b);

/// Purity in (0, 1]: fraction of points in the majority true class of their
/// predicted cluster.
[[nodiscard]] real purity(const std::vector<index_t>& predicted,
                          const std::vector<index_t>& truth);

/// Contingency table between two labelings (ka x kb, row-major).
[[nodiscard]] std::vector<index_t> contingency_table(
    const std::vector<index_t>& a, const std::vector<index_t>& b, index_t& ka,
    index_t& kb);

}  // namespace fastsc::metrics
