#include "obs/attribution.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "common/log.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace fastsc::obs {

namespace {

/// Utilizations are clamped into (0, 1]: a site that did work always has a
/// positive utilization, and the model never reports running *above* the
/// roofline (host wall-clock noise on the simulated device could otherwise
/// push achieved throughput past the modeled ceiling).
constexpr double kMinUtilization = 1e-12;

thread_local const char* t_site = nullptr;
thread_local AttributionRegistry* t_bound = nullptr;

}  // namespace

double RooflineModel::attainable_flops(double intensity) const noexcept {
  return std::min(peak_flops, intensity * bandwidth_bytes_per_sec);
}

RooflineModel make_roofline(double bandwidth_bytes_per_sec) {
  RooflineModel m;
  m.bandwidth_bytes_per_sec = bandwidth_bytes_per_sec;
  if (const char* env = std::getenv("FASTSC_PEAK_FLOPS")) {
    char* end = nullptr;
    const double peak = std::strtod(env, &end);
    if (end != env && peak > 0) m.peak_flops = peak;
  }
  return m;
}

double arithmetic_intensity(const SiteStats& s) noexcept {
  return s.flops / std::max(s.total_bytes(), 1.0);
}

double roofline_utilization(const SiteStats& s,
                            const RooflineModel& m) noexcept {
  const double seconds = s.total_seconds();
  if (s.flops > 0) {
    const double attainable = m.attainable_flops(arithmetic_intensity(s));
    // Zero modeled time (n<=0 launches, modeled_seconds=0 overrides) or a
    // degenerate model: the site is pinned at the roofline rather than
    // reported as infinitely fast.
    if (seconds <= 0 || attainable <= 0) return 1.0;
    return std::clamp(s.flops / seconds / attainable, kMinUtilization, 1.0);
  }
  // Transfer-only site: utilization of the modeled link bandwidth.
  const double bytes = s.total_bytes();
  if (bytes <= 0 || seconds <= 0 || m.bandwidth_bytes_per_sec <= 0) {
    return kMinUtilization;
  }
  return std::clamp(bytes / seconds / m.bandwidth_bytes_per_sec,
                    kMinUtilization, 1.0);
}

void AttributionRegistry::set_roofline(const RooflineModel& m) {
  std::lock_guard lock(mu_);
  roofline_ = m;
}

RooflineModel AttributionRegistry::roofline() const {
  std::lock_guard lock(mu_);
  return roofline_;
}

void AttributionRegistry::record_kernel(std::string_view site, double seconds,
                                        double flops, double bytes_read,
                                        double bytes_written,
                                        double bytes_per_scalar) {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteStats{}).first;
  }
  SiteStats& s = it->second;
  s.kernel_launches += 1;
  s.kernel_seconds += seconds;
  s.flops += flops;
  s.bytes_read += bytes_read;
  s.bytes_written += bytes_written;
  if (bytes_per_scalar >= 0) {
    const double bytes = bytes_read + bytes_written;
    s.scalar_bytes += bytes;
    s.scalar_weighted += bytes_per_scalar * bytes;
  }
}

void AttributionRegistry::record_transfer(std::string_view site, usize bytes,
                                          double modeled_seconds,
                                          TransferDir dir) {
  std::lock_guard lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteStats{}).first;
  }
  SiteStats& s = it->second;
  switch (dir) {
    case TransferDir::kH2d:
      s.transfers_h2d += 1;
      s.bytes_h2d += bytes;
      break;
    case TransferDir::kD2h:
      s.transfers_d2h += 1;
      s.bytes_d2h += bytes;
      break;
    case TransferDir::kD2d:
      s.transfers_d2d += 1;
      s.bytes_d2d += bytes;
      break;
  }
  s.transfer_seconds += modeled_seconds;
}

std::vector<SiteReport> AttributionRegistry::report() const {
  std::lock_guard lock(mu_);
  std::vector<SiteReport> out;
  out.reserve(sites_.size());
  for (const auto& [name, stats] : sites_) {
    SiteReport row;
    row.site = name;
    row.stats = stats;
    row.arithmetic_intensity = arithmetic_intensity(stats);
    row.roofline_utilization = roofline_utilization(stats, roofline_);
    out.push_back(std::move(row));
  }
  return out;
}

SiteStats AttributionRegistry::totals() const {
  std::lock_guard lock(mu_);
  SiteStats t;
  for (const auto& [name, s] : sites_) {
    t.kernel_launches += s.kernel_launches;
    t.transfers_h2d += s.transfers_h2d;
    t.transfers_d2h += s.transfers_d2h;
    t.transfers_d2d += s.transfers_d2d;
    t.bytes_h2d += s.bytes_h2d;
    t.bytes_d2h += s.bytes_d2h;
    t.bytes_d2d += s.bytes_d2d;
    t.flops += s.flops;
    t.bytes_read += s.bytes_read;
    t.bytes_written += s.bytes_written;
    t.kernel_seconds += s.kernel_seconds;
    t.transfer_seconds += s.transfer_seconds;
    t.scalar_bytes += s.scalar_bytes;
    t.scalar_weighted += s.scalar_weighted;
  }
  return t;
}

usize AttributionRegistry::site_count() const {
  std::lock_guard lock(mu_);
  return sites_.size();
}

void AttributionRegistry::clear() {
  std::lock_guard lock(mu_);
  sites_.clear();
}

AttrSiteScope::AttrSiteScope(const char* site) : previous_(t_site) {
  t_site = site;
}

AttrSiteScope::~AttrSiteScope() { t_site = previous_; }

const char* current_attr_site() noexcept { return t_site; }

AttrBindScope::AttrBindScope(AttributionRegistry* registry)
    : previous_(t_bound), active_(registry != nullptr) {
  if (active_) t_bound = registry;
}

AttrBindScope::~AttrBindScope() {
  if (active_) t_bound = previous_;
}

AttributionRegistry* bound_attribution() noexcept { return t_bound; }

ObsBindings current_obs_bindings() noexcept {
  ObsBindings b;
  b.attribution = t_bound;
  b.trace = detail::bound_trace();
  b.site = t_site;
  return b;
}

ObsBindScope::ObsBindScope(const ObsBindings& bindings) noexcept {
  previous_.attribution = t_bound;
  previous_.site = t_site;
  t_bound = bindings.attribution;
  t_site = bindings.site;
  previous_.trace = detail::set_bound_trace(bindings.trace);
}

ObsBindScope::~ObsBindScope() {
  t_bound = previous_.attribution;
  t_site = previous_.site;
  detail::set_bound_trace(previous_.trace);
}

void write_attribution_sites(JsonWriter& w,
                             const std::vector<SiteReport>& sites) {
  w.begin_array();
  for (const SiteReport& row : sites) {
    const SiteStats& s = row.stats;
    w.begin_object();
    w.field("site", std::string_view(row.site));
    w.field("kernel_launches", std::uint64_t{s.kernel_launches});
    w.field("transfers_h2d", std::uint64_t{s.transfers_h2d});
    w.field("transfers_d2h", std::uint64_t{s.transfers_d2h});
    w.field("transfers_d2d", std::uint64_t{s.transfers_d2d});
    w.field("bytes_h2d", std::uint64_t{s.bytes_h2d});
    w.field("bytes_d2h", std::uint64_t{s.bytes_d2h});
    w.field("bytes_d2d", std::uint64_t{s.bytes_d2d});
    w.field("flops", s.flops);
    w.field("bytes_read", s.bytes_read);
    w.field("bytes_written", s.bytes_written);
    w.field("kernel_seconds", s.kernel_seconds);
    w.field("transfer_seconds", s.transfer_seconds);
    w.field("bytes_per_scalar", s.bytes_per_scalar());
    w.field("arithmetic_intensity", row.arithmetic_intensity);
    w.field("roofline_utilization", row.roofline_utilization);
    w.end_object();
  }
  w.end_array();
}

void write_attribution_json(std::ostream& os,
                            const std::vector<SiteReport>& sites,
                            const RooflineModel& roofline) {
  JsonWriter w(os);
  w.begin_object();
  w.field("schema", "fastsc.attribution.v1");
  w.key("roofline");
  w.begin_object();
  w.field("peak_flops", roofline.peak_flops);
  w.field("bandwidth_bytes_per_sec", roofline.bandwidth_bytes_per_sec);
  w.end_object();
  w.key("sites");
  write_attribution_sites(w, sites);
  w.end_object();
  os << '\n';
}

bool write_attribution_json_file(const std::string& path,
                                 const std::vector<SiteReport>& sites,
                                 const RooflineModel& roofline) {
  std::ofstream os(path);
  if (!os) {
    FASTSC_LOG_ERROR("cannot open attribution output file " << path);
    return false;
  }
  write_attribution_json(os, sites, roofline);
  os.flush();
  if (!os) {
    FASTSC_LOG_ERROR("failed writing attribution output file " << path);
    return false;
  }
  return true;
}

}  // namespace fastsc::obs
