// Kernel-level cost attribution and roofline accounting.
//
// DeviceCounters aggregates bytes/seconds per context, which answers "how
// much did the device do" but not "which kernel is bandwidth-bound" — the
// question the paper's Tables III-VII are built around.  This module tags
// every device launch and host<->device transfer with a stable *site* name
// (dotted lowercase identifiers: "spmv.balanced", "kmeans.assign",
// "stage.similarity") and accumulates, per site:
//
//   * launch / transfer counts and bytes moved in each direction,
//   * modeled flops and bytes read/written by kernel bodies,
//   * the exact seconds the metering layer put on the virtual timeline
//     (kernel duration incl. LaunchConfig::modeled_seconds overrides, and
//     the TransferModel's modeled PCIe seconds) — so per-site sums
//     reproduce the DeviceCounters totals.
//
// From those, each site gets an arithmetic intensity (flops per byte
// touched) and a modeled roofline utilization: achieved throughput over
// min(peak flops, intensity x TransferModel bandwidth), clamped to (0, 1].
// Transfer-only sites degenerate to link-bandwidth utilization.
//
// Site resolution:
//   * kernels: LaunchConfig::site if set, else the innermost AttrSiteScope
//     on the calling thread, else "unattributed";
//   * transfers: the innermost AttrSiteScope if set (a pipeline stage
//     claiming its staging traffic), else the mechanism site the copy path
//     passed ("device.h2d", "copy.d2h", "stream.h2d", ...).
//
// Every DeviceContext owns one registry (context-lifetime totals, what the
// benches report).  A second, per-job registry can be bound to the current
// thread with AttrBindScope — the service binds one around each job so
// fastsc_serve can emit one attribution table per job.  Bindings propagate
// through ThreadPool bulk dispatch and stream op enqueue (ObsBindings).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fastsc::obs {

class TraceRecorder;
class JsonWriter;

/// Ceilings the per-site utilization is computed against.  The defaults
/// model the paper's Tesla K20c (1.17 Tflop/s fp64 peak) fed over the
/// modeled PCIe link; DeviceContext swaps in its TransferModel's effective
/// bandwidth, and FASTSC_PEAK_FLOPS overrides the flops ceiling.
struct RooflineModel {
  double peak_flops = 1.17e12;
  double bandwidth_bytes_per_sec = 6e9;  ///< effective link/memory bandwidth

  /// Attainable flop rate at a given arithmetic intensity (flops/byte):
  /// min(peak_flops, intensity * bandwidth) — the classic roofline.
  [[nodiscard]] double attainable_flops(double intensity) const noexcept;
};

/// RooflineModel with the given effective bandwidth and the default peak
/// flops ceiling, overridable via the FASTSC_PEAK_FLOPS environment
/// variable (flop/s; invalid or non-positive values are ignored).
[[nodiscard]] RooflineModel make_roofline(double bandwidth_bytes_per_sec);

/// Direction of a metered copy.  kD2d is a peer-to-peer transfer between
/// two devices of a DeviceGroup (metered on the destination context).
enum class TransferDir { kH2d, kD2h, kD2d };

/// Modeled cost of one kernel launch, carried alongside the metering call.
/// Negative fields select defaults: 1 flop and 8 bytes read + 8 written per
/// logical thread (so every launch has nonzero flops), site resolution per
/// the header comment.
struct KernelCost {
  const char* site = nullptr;
  double flops = -1.0;
  double bytes_read = -1.0;
  double bytes_written = -1.0;
  /// Storage width (bytes) of the scalar arrays this launch streams, for
  /// the mixed-precision ladder's per-site accounting.  Negative (default)
  /// means "unspecified" — the site's reported width ignores the launch.
  double bytes_per_scalar = -1.0;
};

/// Per-site accumulators.  Byte/count fields are exact; seconds are the
/// same doubles the DeviceCounters totals accumulated, so sums across sites
/// match the context totals up to summation order.
struct SiteStats {
  std::uint64_t kernel_launches = 0;
  std::uint64_t transfers_h2d = 0;
  std::uint64_t transfers_d2h = 0;
  std::uint64_t transfers_d2d = 0;
  std::uint64_t bytes_h2d = 0;
  std::uint64_t bytes_d2h = 0;
  std::uint64_t bytes_d2d = 0;
  double flops = 0;
  double bytes_read = 0;
  double bytes_written = 0;
  double kernel_seconds = 0;    ///< virtual-timeline kernel durations
  double transfer_seconds = 0;  ///< modeled link seconds (PCIe + peer)

  /// Scalar-width accounting (mixed-precision ladder): launches that declare
  /// a KernelCost::bytes_per_scalar contribute their modeled bytes here, so
  /// bytes_per_scalar() reports the byte-weighted storage width the site
  /// actually streamed (8 = pure fp64, 4 = pure fp32, between = mixed).
  double scalar_bytes = 0;     ///< modeled bytes with a declared width
  double scalar_weighted = 0;  ///< sum of width * bytes over those launches

  [[nodiscard]] double bytes_per_scalar() const noexcept {
    return scalar_bytes > 0 ? scalar_weighted / scalar_bytes : 0.0;
  }

  /// All bytes the site touched: modeled kernel traffic plus link staging.
  [[nodiscard]] double total_bytes() const noexcept {
    return bytes_read + bytes_written + static_cast<double>(bytes_h2d) +
           static_cast<double>(bytes_d2h) + static_cast<double>(bytes_d2d);
  }
  [[nodiscard]] double total_seconds() const noexcept {
    return kernel_seconds + transfer_seconds;
  }
};

/// One row of an attribution report, with the derived roofline columns.
struct SiteReport {
  std::string site;
  SiteStats stats;
  double arithmetic_intensity = 0;  ///< flops per byte touched
  double roofline_utilization = 0;  ///< achieved / attainable, in (0, 1]
};

/// Thread-safe site -> SiteStats accumulator.
class AttributionRegistry {
 public:
  AttributionRegistry() = default;
  AttributionRegistry(const AttributionRegistry&) = delete;
  AttributionRegistry& operator=(const AttributionRegistry&) = delete;

  void set_roofline(const RooflineModel& m);
  [[nodiscard]] RooflineModel roofline() const;

  /// Accumulate one kernel launch.  `seconds` must be the exact duration
  /// the metering layer added to DeviceCounters::kernel_seconds.
  /// `bytes_per_scalar` < 0 leaves the site's scalar-width accounting
  /// untouched (legacy launches with no declared storage width).
  void record_kernel(std::string_view site, double seconds, double flops,
                     double bytes_read, double bytes_written,
                     double bytes_per_scalar = -1.0);

  /// Accumulate one transfer.  `modeled_seconds` must be the TransferModel
  /// duration added to DeviceCounters::modeled_transfer_seconds.
  void record_transfer(std::string_view site, usize bytes,
                       double modeled_seconds, TransferDir dir);
  void record_transfer(std::string_view site, usize bytes,
                       double modeled_seconds, bool h2d) {
    record_transfer(site, bytes, modeled_seconds,
                    h2d ? TransferDir::kH2d : TransferDir::kD2h);
  }

  /// Sorted per-site rows with derived roofline columns.
  [[nodiscard]] std::vector<SiteReport> report() const;

  /// Sum of every site's accumulators (no derived columns).
  [[nodiscard]] SiteStats totals() const;

  [[nodiscard]] usize site_count() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, SiteStats, std::less<>> sites_;
  RooflineModel roofline_;
};

/// Derived roofline columns for one site under a given model (exposed so
/// report writers and tests share one formula).
[[nodiscard]] double arithmetic_intensity(const SiteStats& s) noexcept;
[[nodiscard]] double roofline_utilization(const SiteStats& s,
                                          const RooflineModel& m) noexcept;

/// RAII region tag: launches/transfers on this thread without an explicit
/// site are attributed to `site` (innermost scope wins).  `site` must be a
/// string literal or otherwise outlive the scope.
class AttrSiteScope {
 public:
  explicit AttrSiteScope(const char* site);
  ~AttrSiteScope();
  AttrSiteScope(const AttrSiteScope&) = delete;
  AttrSiteScope& operator=(const AttrSiteScope&) = delete;

 private:
  const char* previous_;
};

/// The innermost AttrSiteScope site on this thread, or nullptr.
[[nodiscard]] const char* current_attr_site() noexcept;

/// RAII binding of a secondary (per-job) registry: while bound, every
/// attribution record on this thread is mirrored into `registry` in
/// addition to the owning DeviceContext's registry.  A null registry is a
/// no-op, so callers can construct unconditionally.
class AttrBindScope {
 public:
  explicit AttrBindScope(AttributionRegistry* registry);
  ~AttrBindScope();
  AttrBindScope(const AttrBindScope&) = delete;
  AttrBindScope& operator=(const AttrBindScope&) = delete;

 private:
  AttributionRegistry* previous_;
  bool active_;
};

/// The bound per-job registry on this thread, or nullptr.
[[nodiscard]] AttributionRegistry* bound_attribution() noexcept;

/// Snapshot of this thread's observability bindings, for propagation into
/// helper threads that do work on the caller's behalf (ThreadPool bulk
/// dispatch, stream op queues).
struct ObsBindings {
  AttributionRegistry* attribution = nullptr;
  TraceRecorder* trace = nullptr;
  const char* site = nullptr;
};

[[nodiscard]] ObsBindings current_obs_bindings() noexcept;

/// RAII adoption of another thread's bindings (including nulls — the scope
/// reproduces the captured thread's state exactly and restores on exit).
class ObsBindScope {
 public:
  explicit ObsBindScope(const ObsBindings& bindings) noexcept;
  ~ObsBindScope();
  ObsBindScope(const ObsBindScope&) = delete;
  ObsBindScope& operator=(const ObsBindScope&) = delete;

 private:
  ObsBindings previous_;
};

/// Write an attribution report as a JSON array value (rows with raw
/// accumulators + derived roofline columns); shared by the run-report
/// emitter and the per-job artifact writer.
void write_attribution_sites(JsonWriter& w,
                             const std::vector<SiteReport>& sites);

/// Standalone {"roofline": {...}, "sites": [...]} document.
void write_attribution_json(std::ostream& os,
                            const std::vector<SiteReport>& sites,
                            const RooflineModel& roofline);
bool write_attribution_json_file(const std::string& path,
                                 const std::vector<SiteReport>& sites,
                                 const RooflineModel& roofline);

}  // namespace fastsc::obs
