// Minimal streaming JSON writer for the observability artifacts.
//
// Traces, metrics snapshots, and run reports are all emitted through this
// writer so escaping and number formatting stay uniform.  The writer is
// deliberately tiny: a comma-state stack over an ostream, no DOM.  Numbers
// round-trip (shortest representation that parses back to the same double);
// non-finite values become null, which every JSON consumer can load.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace fastsc::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() {
    comma();
    os_ << '{';
    stack_.push_back(false);
  }
  void end_object() {
    stack_.pop_back();
    os_ << '}';
  }
  void begin_array() {
    comma();
    os_ << '[';
    stack_.push_back(false);
  }
  void end_array() {
    stack_.pop_back();
    os_ << ']';
  }

  /// Member key inside an object; follow with exactly one value/container.
  void key(std::string_view k) {
    comma();
    write_string(k);
    os_ << ':';
    // The upcoming value must not emit another comma.
    if (!stack_.empty()) stack_.back() = false;
  }

  void value(std::string_view s) {
    comma();
    write_string(s);
  }
  void value(const char* s) { value(std::string_view(s)); }
  void value(bool b) {
    comma();
    os_ << (b ? "true" : "false");
  }
  void value(double d) {
    comma();
    write_number(d);
  }
  void value(std::int64_t v) {
    comma();
    os_ << v;
  }
  void value(std::uint64_t v) {
    comma();
    os_ << v;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(long long v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void null_value() {
    comma();
    os_ << "null";
  }

  /// key + scalar value in one call.
  template <class T>
  void field(std::string_view k, T v) {
    key(k);
    value(v);
  }

 private:
  void comma() {
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  void write_number(double d) {
    if (!std::isfinite(d)) {
      os_ << "null";
      return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, d);
    os_.write(buf, res.ptr - buf);
  }

  std::ostream& os_;
  std::vector<bool> stack_;  // per open container: "next item needs a comma"
};

}  // namespace fastsc::obs
