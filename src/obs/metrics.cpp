#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/log.h"
#include "obs/json.h"

namespace fastsc::obs {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1) {
  FASTSC_CHECK(std::is_sorted(edges_.begin(), edges_.end()) &&
                   std::adjacent_find(edges_.begin(), edges_.end()) ==
                       edges_.end(),
               "histogram bucket edges must be strictly increasing");
}

void Histogram::observe(double v) noexcept {
  const usize i = static_cast<usize>(
      std::upper_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of C++20 atomic<double>::fetch_add for toolchain
  // portability; relaxed is fine — sum is a statistic, not a sync point.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> edges) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(edges)))
             .first;
  }
  return *it->second;
}

usize MetricsRegistry::instrument_count() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("edges");
    w.begin_array();
    for (const double e : h->edges()) w.value(e);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (usize i = 0; i <= h->edges().size(); ++i) {
      w.value(h->bucket_count(i));
    }
    w.end_array();
    w.field("count", h->total_count());
    w.field("sum", h->sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    FASTSC_LOG_ERROR("cannot open metrics output file " << path);
    return false;
  }
  write_json(os);
  os.flush();
  if (!os) {
    FASTSC_LOG_ERROR("failed writing metrics output file " << path);
    return false;
  }
  return true;
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fastsc::obs
