#include "obs/metrics.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/log.h"
#include "obs/json.h"

namespace fastsc::obs {

Histogram::Histogram(std::vector<double> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1) {
  FASTSC_CHECK(std::is_sorted(edges_.begin(), edges_.end()) &&
                   std::adjacent_find(edges_.begin(), edges_.end()) ==
                       edges_.end(),
               "histogram bucket edges must be strictly increasing");
}

void Histogram::observe(double v) noexcept {
  const usize i = static_cast<usize>(
      std::upper_bound(edges_.begin(), edges_.end(), v) - edges_.begin());
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // CAS loop instead of C++20 atomic<double>::fetch_add for toolchain
  // portability; relaxed is fine — sum is a statistic, not a sync point.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> edges) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(edges)))
             .first;
  }
  return *it->second;
}

usize MetricsRegistry::instrument_count() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::clear() {
  std::lock_guard lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->value());
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, g] : gauges_) w.field(name, g->value());
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name);
    w.begin_object();
    w.key("edges");
    w.begin_array();
    for (const double e : h->edges()) w.value(e);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (usize i = 0; i <= h->edges().size(); ++i) {
      w.value(h->bucket_count(i));
    }
    w.end_array();
    w.field("count", h->total_count());
    w.field("sum", h->sum());
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; the registry's dotted names
/// map onto that by replacing everything else with '_'.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n";
    os << n << ' ' << c->value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n";
    os << n << ' ' << g->value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " histogram\n";
    std::int64_t cumulative = 0;
    for (usize i = 0; i < h->edges().size(); ++i) {
      cumulative += h->bucket_count(i);
      os << n << "_bucket{le=\"" << h->edges()[i] << "\"} " << cumulative
         << '\n';
    }
    os << n << "_bucket{le=\"+Inf\"} " << h->total_count() << '\n';
    os << n << "_sum " << h->sum() << '\n';
    os << n << "_count " << h->total_count() << '\n';
  }
}

bool MetricsRegistry::write_prometheus_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    FASTSC_LOG_ERROR("cannot open prometheus output file " << path);
    return false;
  }
  write_prometheus(os);
  os.flush();
  if (!os) {
    FASTSC_LOG_ERROR("failed writing prometheus output file " << path);
    return false;
  }
  return true;
}

double histogram_quantile(const Histogram& h, double q) {
  const std::int64_t total = h.total_count();
  if (total <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  const std::vector<double>& edges = h.edges();
  const usize nbuckets = edges.size() + 1;
  double below = 0;
  for (usize i = 0; i < nbuckets; ++i) {
    const double in_bucket = static_cast<double>(h.bucket_count(i));
    if (below + in_bucket >= rank && in_bucket > 0) {
      // Interpolate inside [lo, hi); the unbounded end buckets clamp to
      // their one finite edge (Prometheus does the same for +Inf).
      if (edges.empty()) return 0.0;
      if (i == 0) return edges.front();
      if (i == nbuckets - 1) return edges.back();
      const double lo = edges[i - 1];
      const double hi = edges[i];
      const double frac = (rank - below) / in_bucket;
      return lo + (hi - lo) * frac;
    }
    below += in_bucket;
  }
  return edges.empty() ? 0.0 : edges.back();
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    FASTSC_LOG_ERROR("cannot open metrics output file " << path);
    return false;
  }
  write_json(os);
  os.flush();
  if (!os) {
    FASTSC_LOG_ERROR("failed writing metrics output file " << path);
    return false;
  }
  return true;
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace fastsc::obs
