// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Aggregate companion to the trace recorder (obs/trace.h): where the trace
// answers "when did it happen", the registry answers "how much, in total".
// Instruments are created on first use, live for the registry's lifetime
// (stable addresses — instrument handles may be cached), and are updated
// lock-free with relaxed atomics, so hot paths (stream retirement, pool
// recycling, kernel launches) can record without contention.  Snapshots
// serialize to JSON for the benches' --metrics-out artifact and for
// tools/check_trace.py's overlap cross-check.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fastsc::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins floating point metric.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0};
};

/// Fixed-bucket histogram over k edges -> k+1 buckets.  Bucket i counts
/// values v with edges[i-1] <= v < edges[i] (edges[-1] = -inf, edges[k] =
/// +inf): a value exactly on an edge lands in the bucket whose *lower*
/// bound it is.  tests/test_metrics_registry.cpp pins these edge semantics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> edges);

  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& edges() const noexcept {
    return edges_;
  }
  /// Count in bucket i (0 <= i <= edges().size()).
  [[nodiscard]] std::int64_t bucket_count(usize i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t total_count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> edges_;  // strictly increasing
  std::vector<std::atomic<std::int64_t>> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Thread-safe named-instrument registry.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Instrument lookup-or-create; the returned reference stays valid for
  /// the registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `edges` is used only on first creation; a later call with the same
  /// name returns the existing histogram unchanged.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> edges);

  /// Convenience setter for snapshot-style publication.
  void set_gauge(std::string_view name, double v) { gauge(name).set(v); }

  [[nodiscard]] usize instrument_count() const;
  void clear();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} snapshot.
  void write_json(std::ostream& os) const;
  bool write_json_file(const std::string& path) const;

  /// Prometheus text exposition format (0.0.4): counters as `counter`,
  /// gauges as `gauge`, histograms as cumulative `le` buckets with _sum and
  /// _count.  Metric names are sanitized (dots -> underscores).
  void write_prometheus(std::ostream& os) const;
  bool write_prometheus_file(const std::string& path) const;

 private:
  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-wide registry (what the benches snapshot to --metrics-out).
MetricsRegistry& metrics();

/// Quantile estimate (q in [0, 1]) from a histogram via linear interpolation
/// inside the bucket containing the target rank — the standard
/// histogram_quantile() approximation.  The open-ended first/last buckets
/// clamp to their finite edge.  Returns 0 for an empty histogram.
[[nodiscard]] double histogram_quantile(const Histogram& h, double q);

}  // namespace fastsc::obs
