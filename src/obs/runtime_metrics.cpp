#include "obs/runtime_metrics.h"

namespace fastsc::obs {

void publish_device_counters(const device::DeviceCounters& c,
                             MetricsRegistry& registry,
                             const std::string& prefix) {
  const auto set = [&](const char* name, double v) {
    registry.set_gauge(prefix + name, v);
  };
  set("bytes_h2d", static_cast<double>(c.bytes_h2d));
  set("bytes_d2h", static_cast<double>(c.bytes_d2h));
  set("bytes_d2d", static_cast<double>(c.bytes_d2d));
  set("transfers_h2d", static_cast<double>(c.transfers_h2d));
  set("transfers_d2h", static_cast<double>(c.transfers_d2h));
  set("transfers_d2d", static_cast<double>(c.transfers_d2d));
  set("measured_transfer_seconds", c.measured_transfer_seconds);
  set("modeled_transfer_seconds", c.modeled_transfer_seconds);
  set("modeled_d2d_seconds", c.modeled_d2d_seconds);
  set("kernel_seconds", c.kernel_seconds);
  set("kernel_launches", static_cast<double>(c.kernel_launches));
  set("overlapped_seconds", c.overlapped_seconds);
  set("overlapped_h2d_seconds", c.overlapped_h2d_seconds);
  set("overlapped_d2h_seconds", c.overlapped_d2h_seconds);
  set("overlapped_d2d_seconds", c.overlapped_d2d_seconds);
  set("modeled_pipeline_seconds", c.modeled_pipeline_seconds());
  set("async_copies", static_cast<double>(c.async_copies));
  set("async_kernel_launches", static_cast<double>(c.async_kernel_launches));
  set("transfer_retries", static_cast<double>(c.transfer_retries));
  set("live_bytes", static_cast<double>(c.live_bytes));
  set("peak_bytes", static_cast<double>(c.peak_bytes));
  set("total_allocations", static_cast<double>(c.total_allocations));
}

void publish_pinned_pool(const device::PinnedPool::Stats& s,
                         MetricsRegistry& registry,
                         const std::string& prefix) {
  const auto set = [&](const char* name, double v) {
    registry.set_gauge(prefix + name, v);
  };
  set("acquires", static_cast<double>(s.acquires));
  set("reuses", static_cast<double>(s.reuses));
  set("allocated_blocks", static_cast<double>(s.allocated_blocks));
  set("allocated_bytes", static_cast<double>(s.allocated_bytes));
  set("peak_allocated_bytes", static_cast<double>(s.peak_allocated_bytes));
}

void publish_thread_pool(const ThreadPool& pool, MetricsRegistry& registry,
                         const std::string& prefix) {
  registry.set_gauge(prefix + "workers",
                     static_cast<double>(pool.worker_count()));
  registry.set_gauge(prefix + "jobs_dispatched",
                     static_cast<double>(pool.jobs_dispatched()));
}

void publish_device_context(device::DeviceContext& ctx,
                            MetricsRegistry& registry) {
  publish_device_counters(ctx.counters_snapshot(), registry);
  publish_pinned_pool(ctx.staging_pool().stats(), registry);
  publish_thread_pool(ctx.pool(), registry);
}

}  // namespace fastsc::obs
