// Glue between the runtime's existing accounting structs and the metrics
// registry: DeviceCounters, the pinned-staging PinnedPool, and the compute
// ThreadPool all publish into named gauges so one --metrics-out snapshot
// carries the whole runtime state.  Kept out of src/common and src/device so
// those layers stay free of an obs dependency — obs depends on them, never
// the other way (devices *emit* trace events through the narrow
// obs/trace.h interface only).
#pragma once

#include <string>

#include "device/device.h"
#include "obs/metrics.h"

namespace fastsc::obs {

/// Publish a DeviceCounters snapshot as gauges under `prefix` (default
/// "device."): bytes/transfer counts, measured/modeled transfer seconds,
/// kernel time, the overlap split, and memory accounting.
void publish_device_counters(const device::DeviceCounters& c,
                             MetricsRegistry& registry,
                             const std::string& prefix = "device.");

/// Publish pinned-staging-pool recycling stats under `prefix`.
void publish_pinned_pool(const device::PinnedPool::Stats& s,
                         MetricsRegistry& registry,
                         const std::string& prefix = "pinned_pool.");

/// Publish thread-pool dispatch stats under `prefix`.
void publish_thread_pool(const ThreadPool& pool, MetricsRegistry& registry,
                         const std::string& prefix = "thread_pool.");

/// Everything a DeviceContext owns: counters + staging pool + worker pool.
/// (Non-const: the pool/staging accessors are non-const; nothing is
/// mutated beyond their internal stat locks.)
void publish_device_context(device::DeviceContext& ctx,
                            MetricsRegistry& registry);

}  // namespace fastsc::obs
