// Counter plumbing for the silent-data-corruption defense layer
// (DESIGN.md §14).  One shared vocabulary across the detectors in core/,
// kmeans/, lanczos/ and service/:
//
//   sdc.checks           checksum / sentinel / CRC verifications run
//   sdc.detected         mismatches found (+ per-site sdc.detected.<site>)
//   sdc.recomputed       detections recovered by an in-place block recompute
//
// sdc.detected / sdc.recomputed mirror into the trace as cumulative counters
// (tools/check_trace.py enforces monotonicity on the sdc.* prefix).
// sdc.checks is registry-only: one per SpMV wave would flood the trace.
#pragma once

#include <string>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fastsc::obs {

inline void sdc_note_check() { metrics().counter("sdc.checks").add(); }

inline void sdc_note_detected(const std::string& site,
                              const std::string& why) {
  Counter& total = metrics().counter("sdc.detected");
  total.add();
  metrics().counter("sdc.detected." + site).add();
  if (trace_enabled()) {
    trace().counter("sdc.detected", static_cast<double>(total.value()),
                    wall_now_us());
  }
  FASTSC_LOG_WARN("sdc: corruption detected at '" << site << "' (" << why
                                                  << ")");
}

inline void sdc_note_recomputed(const std::string& site) {
  Counter& total = metrics().counter("sdc.recomputed");
  total.add();
  if (trace_enabled()) {
    trace().counter("sdc.recomputed", static_cast<double>(total.value()),
                    wall_now_us());
  }
  FASTSC_LOG_WARN("sdc: recomputed corrupted block at '" << site << "'");
}

}  // namespace fastsc::obs
