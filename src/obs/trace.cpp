#include "obs/trace.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

#include "common/log.h"
#include "common/timer.h"
#include "obs/json.h"

namespace fastsc::obs {

namespace {

thread_local TraceRecorder* t_bound_trace = nullptr;

void mirror_event(const TraceEvent& e) {
  if (e.phase == 'C') {
    FASTSC_LOG_TRACE("counter " << e.name << " = "
                                << (e.args.empty() ? 0.0 : e.args[0].num)
                                << " @" << e.ts_us << "us");
  } else {
    FASTSC_LOG_TRACE("span end " << e.cat << "/" << e.name << " track="
                                 << e.pid << ":" << e.tid << " ts=" << e.ts_us
                                 << "us dur=" << e.dur_us << "us");
  }
}

}  // namespace

bool TraceRecorder::env_enabled() {
  const char* env = std::getenv("FASTSC_TRACE");
  if (env == nullptr) return false;
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "") != 0;
}

void TraceRecorder::complete(std::uint32_t pid, std::uint32_t tid,
                             std::string_view name, std::string_view cat,
                             double ts_us, double dur_us,
                             std::vector<TraceArg> args) {
  if (tee_ != nullptr) tee_->complete(pid, tid, name, cat, ts_us, dur_us, args);
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.phase = 'X';
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  if (log_level() <= LogLevel::kTrace) mirror_event(e);
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void TraceRecorder::counter(std::string_view name, double value, double ts_us,
                            std::uint32_t pid) {
  if (tee_ != nullptr) tee_->counter(name, value, ts_us, pid);
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.cat = "counter";
  e.phase = 'C';
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = 0;
  e.args.emplace_back("value", value);
  if (log_level() <= LogLevel::kTrace) mirror_event(e);
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void TraceRecorder::name_track(std::uint32_t pid, std::uint32_t tid,
                               std::string name) {
  if (tee_ != nullptr) tee_->name_track(pid, tid, name);
  std::lock_guard lock(mu_);
  for (auto& [key, existing] : track_names_) {
    if (key.first == pid && key.second == tid) {
      existing = std::move(name);
      return;
    }
  }
  track_names_.push_back({{pid, tid}, std::move(name)});
}

usize TraceRecorder::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::lock_guard lock(mu_);
  return events_;
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

void TraceRecorder::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  JsonWriter w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents");
  w.begin_array();

  // Metadata first: process names for the two timebases, then track names.
  const auto meta = [&w](std::uint32_t pid, std::uint32_t tid,
                         std::string_view what, std::string_view name) {
    w.begin_object();
    w.field("name", what);
    w.field("ph", "M");
    w.field("pid", std::uint64_t{pid});
    w.field("tid", std::uint64_t{tid});
    w.key("args");
    w.begin_object();
    w.field("name", name);
    w.end_object();
    w.end_object();
  };
  meta(kWallPid, 0, "process_name", "wall clock");
  meta(kVirtualPid, 0, "process_name", "device virtual timeline");
  meta(kVirtualPid, kLinkTid, "thread_name", "PCIe link");
  meta(kVirtualPid, kComputeTid, "thread_name", "compute engine");
  for (const auto& [key, name] : track_names_) {
    meta(key.first, key.second, "thread_name", name);
  }

  for (const TraceEvent& e : events_) {
    w.begin_object();
    w.field("name", e.name);
    if (!e.cat.empty()) w.field("cat", e.cat);
    w.field("ph", std::string_view(&e.phase, 1));
    w.field("ts", e.ts_us);
    if (e.phase == 'X') w.field("dur", e.dur_us);
    w.field("pid", std::uint64_t{e.pid});
    w.field("tid", std::uint64_t{e.tid});
    if (!e.args.empty()) {
      w.key("args");
      w.begin_object();
      for (const TraceArg& a : e.args) {
        if (a.is_num) {
          w.field(a.key, a.num);
        } else {
          w.field(a.key, std::string_view(a.str));
        }
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool TraceRecorder::write_json_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) {
    FASTSC_LOG_ERROR("cannot open trace output file " << path);
    return false;
  }
  write_json(os);
  os.flush();
  if (!os) {
    FASTSC_LOG_ERROR("failed writing trace output file " << path);
    return false;
  }
  return true;
}

namespace detail {

TraceRecorder* bound_trace() noexcept { return t_bound_trace; }

TraceRecorder* set_bound_trace(TraceRecorder* recorder) noexcept {
  TraceRecorder* previous = t_bound_trace;
  t_bound_trace = recorder;
  return previous;
}

}  // namespace detail

TraceRecorder& trace() {
  static TraceRecorder recorder;
  return t_bound_trace != nullptr ? *t_bound_trace : recorder;
}

bool trace_enabled() { return trace().enabled(); }

TraceBindScope::TraceBindScope(TraceRecorder* recorder)
    : previous_(t_bound_trace), active_(recorder != nullptr) {
  if (active_) t_bound_trace = recorder;
}

TraceBindScope::~TraceBindScope() {
  if (active_) t_bound_trace = previous_;
}

double wall_now_us() { return monotonic_seconds() * 1e6; }

void name_this_thread(std::string name) {
  trace().name_track(kWallPid, small_thread_id(), std::move(name));
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view cat,
                       std::vector<TraceArg> args) {
  record_ = trace_enabled();
  mirror_ = log_level() <= LogLevel::kTrace;
  if (!record_ && !mirror_) return;
  name_ = std::string(name);
  cat_ = std::string(cat);
  args_ = std::move(args);
  start_us_ = wall_now_us();
  if (mirror_) {
    FASTSC_LOG_TRACE("span begin " << cat_ << "/" << name_ << " ts="
                                   << start_us_ << "us");
  }
}

ScopedSpan::~ScopedSpan() {
  if (!record_ && !mirror_) return;
  const double end_us = wall_now_us();
  if (record_) {
    trace().complete(kWallPid, small_thread_id(), name_, cat_, start_us_,
                     end_us - start_us_, std::move(args_));
  } else if (mirror_) {
    // Not recording: complete() will not run, so mirror the end here.
    FASTSC_LOG_TRACE("span end " << cat_ << "/" << name_ << " ts=" << start_us_
                                 << "us dur=" << (end_us - start_us_) << "us");
  }
}

TraceEnableScope::TraceEnableScope(bool enable) : enable_(enable) {
  if (enable_) trace().push_scope_enable();
}

TraceEnableScope::~TraceEnableScope() {
  if (enable_) trace().pop_scope_enable();
}

}  // namespace fastsc::obs
