// Trace recorder: Chrome trace-event / Perfetto-compatible timelines.
//
// The paper's evaluation is entirely observability — per-stage wall times
// (Tables III-VI) and the communication/computation split (Table VII) — and
// the async runtime's overlap claims need per-event inspection, not just
// end-of-run aggregates.  This recorder collects spans and counter samples
// from any thread and writes the JSON that chrome://tracing and
// https://ui.perfetto.dev load directly.
//
// Two timebases, rendered as two "processes" in the trace viewer:
//  * pid kWallPid — real wall-clock spans (pipeline stages, executor nodes,
//    solver waves), one track per thread (tids from small_thread_id()).
//  * pid kVirtualPid — the device runtime's *virtual* timeline: every H2D /
//    D2H copy occupies the modeled-PCIe-link track and every kernel the
//    compute-engine track, with the exact begin/end the overlap accounting
//    in DeviceContext used.  Summing pairwise overlap between the two
//    tracks reproduces DeviceCounters::overlapped_seconds bit-for-bit
//    (tools/check_trace.py and tests/test_trace.cpp verify this).
//
// Enablement: FASTSC_TRACE=1 at startup, set_enabled(), or a
// TraceEnableScope (SpectralConfig::trace routes through one).  When
// disabled every record call is a single relaxed atomic load and an early
// return — no allocation, no lock — so instrumented code paths cost nothing
// in production.  With FASTSC_LOG=trace, recorded events are additionally
// mirrored to stderr as log lines.
#pragma once

#include <atomic>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fastsc::obs {

/// Trace "process" ids (trackable groups in the viewer).
inline constexpr std::uint32_t kWallPid = 1;     ///< real wall-clock spans
inline constexpr std::uint32_t kVirtualPid = 2;  ///< device virtual timeline

/// Thread ids within kVirtualPid: the two serialized device resources.
inline constexpr std::uint32_t kLinkTid = 1;     ///< modeled PCIe link
inline constexpr std::uint32_t kComputeTid = 2;  ///< compute engine

/// One numeric or string argument attached to an event.
struct TraceArg {
  TraceArg(std::string k, double v) : key(std::move(k)), num(v) {}
  TraceArg(std::string k, std::string v)
      : key(std::move(k)), str(std::move(v)), is_num(false) {}

  std::string key;
  double num = 0;
  std::string str;
  bool is_num = true;
};

/// One trace-event-format record.  ts/dur are microseconds (the format's
/// native unit): wall events since the process epoch, virtual events since
/// device-context creation.
struct TraceEvent {
  std::string name;
  std::string cat;
  char phase = 'X';  // 'X' complete span, 'C' counter
  double ts_us = 0;
  double dur_us = 0;  // complete spans only
  std::uint32_t pid = kWallPid;
  std::uint32_t tid = 0;
  std::vector<TraceArg> args;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed) ||
           scope_enables_.load(std::memory_order_relaxed) > 0;
  }
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Scoped enablement refcount (TraceEnableScope).  Independent of the
  /// sticky set_enabled() flag, so N concurrent scopes compose: tracing
  /// stays on until the last scope pops, instead of the first destructor
  /// blindly restoring a stale snapshot and turning tracing off under a
  /// still-running job.
  void push_scope_enable() noexcept {
    scope_enables_.fetch_add(1, std::memory_order_relaxed);
  }
  void pop_scope_enable() noexcept {
    scope_enables_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Forward every event recorded here to `tee` as well (the per-job
  /// recorders the service binds point their tee at the global recorder, so
  /// a job-scoped trace never hides events from the process-wide one).  Set
  /// before the recorder is shared across threads; not synchronized.
  void set_tee(TraceRecorder* tee) noexcept { tee_ = tee; }

  /// Record a complete span ('X').  No-op when disabled.
  void complete(std::uint32_t pid, std::uint32_t tid, std::string_view name,
                std::string_view cat, double ts_us, double dur_us,
                std::vector<TraceArg> args = {});

  /// Record a counter sample ('C'); the viewer plots the series per name.
  void counter(std::string_view name, double value, double ts_us,
               std::uint32_t pid = kWallPid);

  /// Attach a human-readable name to a (pid, tid) track; written as
  /// trace-viewer metadata.  Cheap and always recorded (once per thread),
  /// so stream threads can register themselves before tracing turns on.
  void name_track(std::uint32_t pid, std::uint32_t tid, std::string name);

  [[nodiscard]] usize event_count() const;
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Write the {"traceEvents": [...]} JSON document.
  void write_json(std::ostream& os) const;
  /// Write to a file; returns false (and logs) on I/O failure.
  bool write_json_file(const std::string& path) const;

 private:
  static bool env_enabled();

  std::atomic<bool> enabled_{env_enabled()};
  std::atomic<int> scope_enables_{0};
  TraceRecorder* tee_ = nullptr;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, std::string>>
      track_names_;
};

namespace detail {
/// The per-thread bound recorder (TraceBindScope), or nullptr.
[[nodiscard]] TraceRecorder* bound_trace() noexcept;
/// Rebind unconditionally (including to nullptr); returns the previous
/// binding.  Cross-thread propagation (obs::ObsBindScope) uses this.
TraceRecorder* set_bound_trace(TraceRecorder* recorder) noexcept;
}  // namespace detail

/// The recorder instrumentation on this thread targets: the bound per-job
/// recorder inside a TraceBindScope, the process-wide recorder otherwise.
TraceRecorder& trace();

/// Fast check instrumentation sites guard on (bound-or-global recorder).
[[nodiscard]] bool trace_enabled();

/// RAII binding of a per-job recorder to the calling thread: while bound,
/// trace() resolves to `recorder` instead of the global one.  Give the
/// recorder a tee at the global recorder if process-wide artifacts should
/// still see the job's events.  A null recorder is a no-op.
class TraceBindScope {
 public:
  explicit TraceBindScope(TraceRecorder* recorder);
  ~TraceBindScope();
  TraceBindScope(const TraceBindScope&) = delete;
  TraceBindScope& operator=(const TraceBindScope&) = delete;

 private:
  TraceRecorder* previous_;
  bool active_;
};

/// Wall-clock microseconds since the process monotonic epoch (the wall
/// timebase of every kWallPid event).
[[nodiscard]] double wall_now_us();

/// Register a name for the calling thread's wall track.
void name_this_thread(std::string name);

/// RAII wall-clock span on the calling thread's track of the global
/// recorder.  Inactive (no allocation) unless tracing is enabled or the log
/// level is `trace` (which mirrors begin/end lines to stderr).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view cat = "span",
                      std::vector<TraceArg> args = {});
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool record_ = false;
  bool mirror_ = false;
  double start_us_ = 0;
  std::string name_;
  std::string cat_;
  std::vector<TraceArg> args_;
};

/// Enable tracing for a scope (SpectralConfig::trace plumbs through this).
/// Refcounted, not save/restore: each enabling scope holds one reference on
/// the recorder, so nested and concurrent scopes (two service jobs tracing
/// at once) keep tracing on until the last one exits.  A scope constructed
/// with enable=false holds no reference and never changes state.
class TraceEnableScope {
 public:
  explicit TraceEnableScope(bool enable);
  ~TraceEnableScope();

  TraceEnableScope(const TraceEnableScope&) = delete;
  TraceEnableScope& operator=(const TraceEnableScope&) = delete;

 private:
  bool enable_;
};

}  // namespace fastsc::obs
