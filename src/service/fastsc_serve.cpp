// fastsc_serve: replay a job trace through a fastsc::Service instance.
//
// Reads a trace file (see src/service/trace_replay.h for the grammar and
// examples/service_trace.txt for a sample), submits every op against a
// live service, waits for the results, and prints a per-job and aggregate
// summary.  After draining, the last chained warm-start job is re-solved
// cold on the same graph so the warm/cold wave counts and label agreement
// are measured directly; they are published as service.* gauges:
//
//   service.latency_p50_ms / service.latency_p99_ms
//   service.warm_matvecs / service.cold_matvecs
//   service.warm_vs_cold_ari
//
// With --trace-out/--metrics-out the run writes the usual observability
// artifacts, which tools/check_trace.py can validate (--expect-counter on
// service.*/cache.* counters, --expect-gauge on the gauges above).
//
// --chaos turns the replay into a silent-data-corruption soak (DESIGN.md
// §14): the trace is first replayed fault-free as a label oracle, then
// replayed again under a seeded bitflip fault plan covering every
// corruption site (CSR values, staged basis columns, device transfer
// buffers, cache entries).  Every job that completes under chaos must
// produce labels identical (ARI == 1.0) to the oracle's — the detectors
// and recovery ladder have to absorb every flip — and the run publishes
// sdc.chaos_label_mismatches plus the checksum-overhead gauge
// sdc.overhead_ratio (total flops / non-sdc flops of the clean pass).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/fingerprint.h"
#include "core/report.h"
#include "core/spectral.h"
#include "device/device.h"
#include "fastsc/service.h"
#include "fault/fault.h"
#include "metrics/external.h"
#include "obs/metrics.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "service/trace_replay.h"

namespace {

using namespace fastsc;

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<usize>(p * static_cast<double>(xs.size()));
  return xs[std::min(rank, xs.size() - 1)];
}

/// Seed-derived bitflip plan for the chaos soak.  The seed picks which
/// occurrence of each site gets hit (and, inside fault::corrupt_*, which
/// element and bit flips), so a given seed reproduces the same storm.
/// bitflip.csr.values is pinned to nth=1 so every seed corrupts at least
/// one solve — the smoke gate asserts sdc.detected >= 1 — and
/// bitflip.cache.entry is pinned to the first seal verification (an
/// exact-key lookup): the evicted entry is re-created by the resulting
/// cold solve, so downstream warm-start lineage — and with it exact label
/// agreement with the oracle — is preserved.  A flip that instead ate a
/// warm donor would legitimately change later labels within convergence
/// tolerance, which is recovery, not silent corruption, but would fail the
/// soak's exact-match bar.
fault::FaultPlan chaos_plan(std::uint64_t seed) {
  std::uint64_t s = seed + 0x9e3779b97f4a7c15ull;
  const auto next = [&s](std::uint64_t range) {
    s ^= s >> 33;
    s *= 0xff51afd7ed558ccdull;
    s ^= s >> 29;
    return 1 + s % range;
  };
  return fault::FaultPlan::parse(
      "site=bitflip.csr.values,nth=1,count=1"
      ";site=bitflip.basis.column,nth=" + std::to_string(next(6)) +
      ",count=2"
      ";site=bitflip.device.buffer,nth=" + std::to_string(next(4)) +
      ",count=1"
      ";site=bitflip.cache.entry,nth=1,count=1"
      ";seed=" + std::to_string(seed));
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fastsc_serve: replay a job trace through fastsc::Service");
  const bool run = cli.parse(argc, argv);
  const std::string trace_path = cli.get_string(
      "trace", "examples/service_trace.txt", "job trace file to replay");
  ServiceConfig scfg;
  scfg.workers = static_cast<usize>(
      cli.get_int("workers", 2, "service executor threads"));
  scfg.max_queue_depth = static_cast<usize>(
      cli.get_int("queue-depth", 64, "queued-job admission limit"));
  scfg.arena_budget_bytes =
      static_cast<std::uint64_t>(cli.get_double(
          "arena-mb", 512, "aggregate device-byte budget (MiB, 0 = off)") *
          1024.0 * 1024.0);
  scfg.job_arena_quota_bytes =
      static_cast<std::uint64_t>(cli.get_double(
          "job-quota-mb", 256, "per-job device-byte quota (MiB, 0 = off)") *
          1024.0 * 1024.0);
  scfg.cache_capacity_bytes =
      static_cast<std::uint64_t>(cli.get_double(
          "cache-mb", 128, "result-cache capacity (MiB, 0 = off)") *
          1024.0 * 1024.0);
  scfg.default_deadline_ms = cli.get_double(
      "deadline-ms", 0, "default per-job deadline (ms, 0 = none)");
  const auto ncv = static_cast<index_t>(cli.get_int(
      "ncv", 0, "Lanczos basis size for every job (0 = solver default)"));
  const real eig_tol = static_cast<real>(cli.get_double(
      "eig-tol", 1e-8, "eigenpair residual tolerance for every job"));
  const auto device_workers = static_cast<usize>(cli.get_int(
      "device-workers", 0, "simulated-device worker threads (0 = all cores)"));
  const std::string trace_out = cli.get_string(
      "trace-out", "", "write a Chrome trace-event JSON timeline here");
  const std::string metrics_out = cli.get_string(
      "metrics-out", "", "write a metrics-registry JSON snapshot here");
  const std::string report_out = cli.get_string(
      "report-out", "",
      "write a run-report JSON (with the attribution section) here");
  const std::string prom_out = cli.get_string(
      "prom-out", "",
      "write a Prometheus text-format dump of every metric (SLO latency "
      "histograms included) here");
  scfg.job_artifacts_dir = cli.get_string(
      "job-artifacts-dir", "",
      "write per-job artifacts (job_<id>.trace.json + "
      "job_<id>.attribution.json) into this directory");
  const bool chaos = cli.get_bool(
      "chaos", false,
      "SDC soak: replay the trace clean as a label oracle, then again under "
      "a seeded bitflip plan; rc=1 unless every completed job matches");
  const auto chaos_seed = static_cast<std::uint64_t>(cli.get_int(
      "chaos-seed", 1, "seed for the chaos bitflip plan"));
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();
  // Tracing must be on before the DeviceContext records its first event
  // (same rule as the benches — the virtual timeline must be complete).
  if (!trace_out.empty()) obs::trace().set_enabled(true);
  if (!scfg.job_artifacts_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(scfg.job_artifacts_dir, ec);
    if (ec) {
      std::fprintf(stderr, "[serve] cannot create %s: %s\n",
                   scfg.job_artifacts_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  const std::vector<service::TraceOp> ops =
      service::parse_trace_file(trace_path);
  std::fprintf(stderr, "[serve] replaying %zu ops from %s\n", ops.size(),
               trace_path.c_str());

  core::SpectralConfig base;
  base.backend = core::Backend::kDevice;
  base.ncv = ncv;
  base.eig_tol = eig_tol;

  // Chaos soak, pass 1: fault-free oracle on its own service + device so
  // the chaos pass below starts from an identical cold state (empty cache,
  // fresh fingerprints).  One worker keeps job interleaving — and thus the
  // global fault-site occurrence order — deterministic for a given seed.
  std::vector<service::ReplayedJob> oracle_jobs;
  double sdc_overhead_ratio = 1.0;
  if (chaos) {
    scfg.workers = 1;
    // The recovery rung for persistent corruption is the synchronous staged
    // wave; its summation order differs from the overlapped pipeline's, so
    // an oracle solved async would disagree on boundary points through no
    // fault of the detectors.  Both passes therefore run the sync wave —
    // which also keeps the H2D transfer-CRC detector in the storm's path.
    base.async_pipeline = false;
    std::fprintf(stderr,
                 "[serve] chaos soak: fault-free oracle pass (seed %llu)\n",
                 static_cast<unsigned long long>(chaos_seed));
    device::DeviceContext oracle_ctx(device_workers);
    {
      Service oracle_svc(scfg, &oracle_ctx);
      service::TraceReplayer oracle(oracle_svc, base);
      for (const service::TraceOp& op : ops) (void)oracle.submit(op);
      oracle.wait_all();
      oracle_svc.shutdown(/*drain=*/true);
      oracle_jobs = oracle.jobs();
    }
    // Checksum overhead straight from the clean pass's flop attribution:
    // everything the sdc.* sites burned is pure defense cost.
    double total_flops = 0, sdc_flops = 0;
    for (const obs::SiteReport& s :
         core::collect_attribution(oracle_ctx).sites) {
      total_flops += s.stats.flops;
      if (s.site.rfind("sdc.", 0) == 0) sdc_flops += s.stats.flops;
    }
    if (total_flops > sdc_flops && sdc_flops >= 0) {
      sdc_overhead_ratio = total_flops / (total_flops - sdc_flops);
    }
    // Drop the oracle pass's timeline events: its device tracks reuse the
    // same ids as the chaos pass's fresh DeviceContext, and two passes on
    // one track read as overlapping spans to check_trace.py.  The exported
    // trace should show only the storm.
    obs::trace().clear();
  }

  device::DeviceContext ctx(device_workers);
  Service svc(scfg, &ctx);
  service::TraceReplayer replayer(svc, base);
  // Chaos pass 2: the normal replay below runs with the bitflip plan armed
  // process-wide.  Service jobs carry no per-job fault plan, so nothing
  // re-arms over this scope; it is reset before the warm-vs-cold re-solve.
  std::optional<fault::ArmScope> chaos_scope;
  if (chaos) {
    const fault::FaultPlan plan = chaos_plan(chaos_seed);
    std::fprintf(stderr, "[serve] chaos soak: replay under plan %s\n",
                 plan.to_string().c_str());
    chaos_scope.emplace(plan);
  }
  for (const service::TraceOp& op : ops) {
    const Service::Submitted sub = replayer.submit(op);
    if (sub.status == JobStatus::kOverloaded) {
      std::fprintf(stderr, "[serve] job %llu %s:%s rejected (overloaded)\n",
                   static_cast<unsigned long long>(sub.id),
                   op.dataset.c_str(), op.op.c_str());
    }
  }
  replayer.wait_all();
  svc.shutdown(/*drain=*/true);
  chaos_scope.reset();

  // Chaos verdict: every job that completed under the bitflip storm must
  // label its graph exactly as the oracle did (ARI == 1.0 — identical
  // partitions up to cluster renumbering).  Anything less means a flip
  // slipped past the detectors and escaped as silent corruption.
  std::uint64_t chaos_mismatches = 0;
  if (chaos) {
    std::uint64_t compared = 0;
    const std::vector<service::ReplayedJob>& cjobs = replayer.jobs();
    for (usize i = 0; i < cjobs.size(); ++i) {
      const JobResult& r = cjobs[i].result;
      if (r.status != JobStatus::kCompleted) continue;
      double ari = -1;
      if (i < oracle_jobs.size() &&
          oracle_jobs[i].result.status == JobStatus::kCompleted &&
          oracle_jobs[i].result.spectral.labels.size() ==
              r.spectral.labels.size()) {
        ari = metrics::adjusted_rand_index(r.spectral.labels,
                                           oracle_jobs[i].result.spectral.labels);
      }
      ++compared;
      if (ari < 1.0) {
        ++chaos_mismatches;
        std::fprintf(stderr,
                     "[serve] chaos: job %llu %s:%s diverges from oracle "
                     "(ARI %.6f)\n",
                     static_cast<unsigned long long>(cjobs[i].id),
                     cjobs[i].op.dataset.c_str(), cjobs[i].op.op.c_str(), ari);
      }
    }
    obs::metrics().set_gauge("sdc.chaos_label_mismatches",
                             static_cast<double>(chaos_mismatches));
    obs::metrics().set_gauge("sdc.overhead_ratio", sdc_overhead_ratio);
    std::printf(
        "\nchaos soak: %llu completed jobs vs oracle, %llu mismatches, "
        "checksum overhead %.4fx\n",
        static_cast<unsigned long long>(compared),
        static_cast<unsigned long long>(chaos_mismatches),
        sdc_overhead_ratio);
  }

  std::vector<double> latencies;
  std::printf("%-5s %-14s %-10s %-5s %-5s %10s %10s %9s  %s\n", "job", "tag",
              "status", "hit", "warm", "queue_ms", "solve_ms", "matvecs",
              "reason");
  for (const service::ReplayedJob& j : replayer.jobs()) {
    const JobResult& r = j.result;
    // Rejection/failure detail rides the summary line so a replay log is
    // self-explaining (which admission gate fired, why a solve died).
    std::printf("%-5llu %-14s %-10s %-5d %-5d %10.2f %10.2f %9lld  %s\n",
                static_cast<unsigned long long>(j.id),
                (j.op.dataset + ":" + j.op.op).c_str(),
                job_status_name(r.status), r.cache_hit ? 1 : 0,
                r.warm_started ? 1 : 0, r.queue_ms, r.solve_ms,
                static_cast<long long>(r.spectral.eig_stats.matvec_count),
                r.error.empty() ? "-" : r.error.c_str());
    if (r.status == JobStatus::kCompleted && !r.cache_hit) {
      latencies.push_back(r.solve_ms);
    }
  }

  obs::MetricsRegistry& reg = obs::metrics();
  reg.set_gauge("service.latency_p50_ms", percentile(latencies, 0.50));
  reg.set_gauge("service.latency_p99_ms", percentile(latencies, 0.99));

  // SLO percentiles straight from the service's histograms: one set of
  // gauges per job class that saw traffic, plus the queue-wait vs solve
  // split.  These (and the histograms themselves) land in --prom-out.
  const std::vector<double> slo_edges = slo_ms_edges();
  auto publish_quantiles = [&reg, &slo_edges](const std::string& name) {
    const obs::Histogram& h = reg.histogram(name, slo_edges);
    if (h.total_count() == 0) return;
    reg.set_gauge(name + ".p50", obs::histogram_quantile(h, 0.50));
    reg.set_gauge(name + ".p95", obs::histogram_quantile(h, 0.95));
    reg.set_gauge(name + ".p99", obs::histogram_quantile(h, 0.99));
  };
  for (const char* cls : {"low", "normal", "high"}) {
    publish_quantiles(std::string("slo.latency_ms.") + cls);
  }
  publish_quantiles("slo.queue_ms");
  publish_quantiles("slo.solve_ms");

  // Warm-vs-cold comparison: re-solve the newest warm-started job's graph
  // cold and compare wave counts + labels.
  const std::vector<service::ReplayedJob>& jobs = replayer.jobs();
  for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
    const JobResult& r = it->result;
    if (r.status != JobStatus::kCompleted || !r.warm_started) continue;
    const sparse::Coo* g = replayer.current_graph(it->op.dataset);
    if (g == nullptr || core::graph_fingerprint(*g) != r.graph_fingerprint) {
      continue;  // dataset mutated again after this job; graph is gone
    }
    core::SpectralConfig cold_cfg = replayer.config_for(it->op);
    const core::SpectralResult cold =
        core::spectral_cluster_graph(*g, cold_cfg, &ctx);
    const double ari = metrics::adjusted_rand_index(r.spectral.labels,
                                                    cold.labels);
    reg.set_gauge("service.warm_matvecs",
                  static_cast<double>(r.spectral.eig_stats.matvec_count));
    reg.set_gauge("service.cold_matvecs",
                  static_cast<double>(cold.eig_stats.matvec_count));
    reg.set_gauge("service.warm_vs_cold_ari", ari);
    std::printf(
        "\nwarm-start check (job %llu, %s): warm %lld matvecs vs cold %lld "
        "(%.1f%%), label ARI %.4f\n",
        static_cast<unsigned long long>(it->id), it->op.dataset.c_str(),
        static_cast<long long>(r.spectral.eig_stats.matvec_count),
        static_cast<long long>(cold.eig_stats.matvec_count),
        100.0 * static_cast<double>(r.spectral.eig_stats.matvec_count) /
            static_cast<double>(std::max<index_t>(
                1, cold.eig_stats.matvec_count)),
        ari);
    break;
  }

  const ServiceStats stats = svc.stats();
  std::printf(
      "\nservice: submitted=%llu admitted=%llu rejected=%llu "
      "completed=%llu failed=%llu cancelled=%llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.cancelled));
  std::printf(
      "cache: hits=%llu misses=%llu evictions=%llu entries=%llu "
      "bytes=%llu\n",
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      static_cast<unsigned long long>(stats.cache_entries),
      static_cast<unsigned long long>(stats.cache_bytes));

  std::printf("\n");
  core::attribution_table(core::collect_attribution(ctx)).print();

  obs::publish_device_context(ctx, reg);
  if (!trace_out.empty() && obs::trace().write_json_file(trace_out)) {
    std::fprintf(stderr, "[serve] wrote trace to %s (%zu events)\n",
                 trace_out.c_str(), obs::trace().event_count());
  }
  if (!metrics_out.empty() && reg.write_json_file(metrics_out)) {
    std::fprintf(stderr, "[serve] wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!report_out.empty()) {
    core::RunReport report;
    report.bench = "fastsc_serve";
    report.attribution = core::collect_attribution(ctx);
    if (core::write_run_report_json_file(report, report_out)) {
      std::fprintf(stderr, "[serve] wrote run report to %s\n",
                   report_out.c_str());
    }
  }
  if (!prom_out.empty() && reg.write_prometheus_file(prom_out)) {
    std::fprintf(stderr, "[serve] wrote prometheus dump to %s\n",
                 prom_out.c_str());
  }
  if (chaos_mismatches != 0) {
    std::fprintf(stderr, "[serve] chaos soak FAILED: %llu label mismatches\n",
                 static_cast<unsigned long long>(chaos_mismatches));
    return 1;
  }
  return 0;
}
