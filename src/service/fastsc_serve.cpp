// fastsc_serve: replay a job trace through a fastsc::Service instance.
//
// Reads a trace file (see src/service/trace_replay.h for the grammar and
// examples/service_trace.txt for a sample), submits every op against a
// live service, waits for the results, and prints a per-job and aggregate
// summary.  After draining, the last chained warm-start job is re-solved
// cold on the same graph so the warm/cold wave counts and label agreement
// are measured directly; they are published as service.* gauges:
//
//   service.latency_p50_ms / service.latency_p99_ms
//   service.warm_matvecs / service.cold_matvecs
//   service.warm_vs_cold_ari
//
// With --trace-out/--metrics-out the run writes the usual observability
// artifacts, which tools/check_trace.py can validate (--expect-counter on
// service.*/cache.* counters, --expect-gauge on the gauges above).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cli.h"
#include "core/fingerprint.h"
#include "core/report.h"
#include "core/spectral.h"
#include "device/device.h"
#include "fastsc/service.h"
#include "metrics/external.h"
#include "obs/metrics.h"
#include "obs/runtime_metrics.h"
#include "obs/trace.h"
#include "service/trace_replay.h"

namespace {

using namespace fastsc;

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<usize>(p * static_cast<double>(xs.size()));
  return xs[std::min(rank, xs.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fastsc_serve: replay a job trace through fastsc::Service");
  const bool run = cli.parse(argc, argv);
  const std::string trace_path = cli.get_string(
      "trace", "examples/service_trace.txt", "job trace file to replay");
  ServiceConfig scfg;
  scfg.workers = static_cast<usize>(
      cli.get_int("workers", 2, "service executor threads"));
  scfg.max_queue_depth = static_cast<usize>(
      cli.get_int("queue-depth", 64, "queued-job admission limit"));
  scfg.arena_budget_bytes =
      static_cast<std::uint64_t>(cli.get_double(
          "arena-mb", 512, "aggregate device-byte budget (MiB, 0 = off)") *
          1024.0 * 1024.0);
  scfg.job_arena_quota_bytes =
      static_cast<std::uint64_t>(cli.get_double(
          "job-quota-mb", 256, "per-job device-byte quota (MiB, 0 = off)") *
          1024.0 * 1024.0);
  scfg.cache_capacity_bytes =
      static_cast<std::uint64_t>(cli.get_double(
          "cache-mb", 128, "result-cache capacity (MiB, 0 = off)") *
          1024.0 * 1024.0);
  scfg.default_deadline_ms = cli.get_double(
      "deadline-ms", 0, "default per-job deadline (ms, 0 = none)");
  const auto ncv = static_cast<index_t>(cli.get_int(
      "ncv", 0, "Lanczos basis size for every job (0 = solver default)"));
  const real eig_tol = static_cast<real>(cli.get_double(
      "eig-tol", 1e-8, "eigenpair residual tolerance for every job"));
  const auto device_workers = static_cast<usize>(cli.get_int(
      "device-workers", 0, "simulated-device worker threads (0 = all cores)"));
  const std::string trace_out = cli.get_string(
      "trace-out", "", "write a Chrome trace-event JSON timeline here");
  const std::string metrics_out = cli.get_string(
      "metrics-out", "", "write a metrics-registry JSON snapshot here");
  const std::string report_out = cli.get_string(
      "report-out", "",
      "write a run-report JSON (with the attribution section) here");
  const std::string prom_out = cli.get_string(
      "prom-out", "",
      "write a Prometheus text-format dump of every metric (SLO latency "
      "histograms included) here");
  scfg.job_artifacts_dir = cli.get_string(
      "job-artifacts-dir", "",
      "write per-job artifacts (job_<id>.trace.json + "
      "job_<id>.attribution.json) into this directory");
  if (!run) {
    cli.print_help();
    return 0;
  }
  cli.check_unknown();
  // Tracing must be on before the DeviceContext records its first event
  // (same rule as the benches — the virtual timeline must be complete).
  if (!trace_out.empty()) obs::trace().set_enabled(true);
  if (!scfg.job_artifacts_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(scfg.job_artifacts_dir, ec);
    if (ec) {
      std::fprintf(stderr, "[serve] cannot create %s: %s\n",
                   scfg.job_artifacts_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  const std::vector<service::TraceOp> ops =
      service::parse_trace_file(trace_path);
  std::fprintf(stderr, "[serve] replaying %zu ops from %s\n", ops.size(),
               trace_path.c_str());

  device::DeviceContext ctx(device_workers);
  Service svc(scfg, &ctx);
  core::SpectralConfig base;
  base.backend = core::Backend::kDevice;
  base.ncv = ncv;
  base.eig_tol = eig_tol;
  service::TraceReplayer replayer(svc, base);
  for (const service::TraceOp& op : ops) {
    const Service::Submitted sub = replayer.submit(op);
    if (sub.status == JobStatus::kOverloaded) {
      std::fprintf(stderr, "[serve] job %llu %s:%s rejected (overloaded)\n",
                   static_cast<unsigned long long>(sub.id),
                   op.dataset.c_str(), op.op.c_str());
    }
  }
  replayer.wait_all();
  svc.shutdown(/*drain=*/true);

  std::vector<double> latencies;
  std::printf("%-5s %-14s %-10s %-5s %-5s %10s %10s %9s  %s\n", "job", "tag",
              "status", "hit", "warm", "queue_ms", "solve_ms", "matvecs",
              "reason");
  for (const service::ReplayedJob& j : replayer.jobs()) {
    const JobResult& r = j.result;
    // Rejection/failure detail rides the summary line so a replay log is
    // self-explaining (which admission gate fired, why a solve died).
    std::printf("%-5llu %-14s %-10s %-5d %-5d %10.2f %10.2f %9lld  %s\n",
                static_cast<unsigned long long>(j.id),
                (j.op.dataset + ":" + j.op.op).c_str(),
                job_status_name(r.status), r.cache_hit ? 1 : 0,
                r.warm_started ? 1 : 0, r.queue_ms, r.solve_ms,
                static_cast<long long>(r.spectral.eig_stats.matvec_count),
                r.error.empty() ? "-" : r.error.c_str());
    if (r.status == JobStatus::kCompleted && !r.cache_hit) {
      latencies.push_back(r.solve_ms);
    }
  }

  obs::MetricsRegistry& reg = obs::metrics();
  reg.set_gauge("service.latency_p50_ms", percentile(latencies, 0.50));
  reg.set_gauge("service.latency_p99_ms", percentile(latencies, 0.99));

  // SLO percentiles straight from the service's histograms: one set of
  // gauges per job class that saw traffic, plus the queue-wait vs solve
  // split.  These (and the histograms themselves) land in --prom-out.
  const std::vector<double> slo_edges = slo_ms_edges();
  auto publish_quantiles = [&reg, &slo_edges](const std::string& name) {
    const obs::Histogram& h = reg.histogram(name, slo_edges);
    if (h.total_count() == 0) return;
    reg.set_gauge(name + ".p50", obs::histogram_quantile(h, 0.50));
    reg.set_gauge(name + ".p95", obs::histogram_quantile(h, 0.95));
    reg.set_gauge(name + ".p99", obs::histogram_quantile(h, 0.99));
  };
  for (const char* cls : {"low", "normal", "high"}) {
    publish_quantiles(std::string("slo.latency_ms.") + cls);
  }
  publish_quantiles("slo.queue_ms");
  publish_quantiles("slo.solve_ms");

  // Warm-vs-cold comparison: re-solve the newest warm-started job's graph
  // cold and compare wave counts + labels.
  const std::vector<service::ReplayedJob>& jobs = replayer.jobs();
  for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
    const JobResult& r = it->result;
    if (r.status != JobStatus::kCompleted || !r.warm_started) continue;
    const sparse::Coo* g = replayer.current_graph(it->op.dataset);
    if (g == nullptr || core::graph_fingerprint(*g) != r.graph_fingerprint) {
      continue;  // dataset mutated again after this job; graph is gone
    }
    core::SpectralConfig cold_cfg = replayer.config_for(it->op);
    const core::SpectralResult cold =
        core::spectral_cluster_graph(*g, cold_cfg, &ctx);
    const double ari = metrics::adjusted_rand_index(r.spectral.labels,
                                                    cold.labels);
    reg.set_gauge("service.warm_matvecs",
                  static_cast<double>(r.spectral.eig_stats.matvec_count));
    reg.set_gauge("service.cold_matvecs",
                  static_cast<double>(cold.eig_stats.matvec_count));
    reg.set_gauge("service.warm_vs_cold_ari", ari);
    std::printf(
        "\nwarm-start check (job %llu, %s): warm %lld matvecs vs cold %lld "
        "(%.1f%%), label ARI %.4f\n",
        static_cast<unsigned long long>(it->id), it->op.dataset.c_str(),
        static_cast<long long>(r.spectral.eig_stats.matvec_count),
        static_cast<long long>(cold.eig_stats.matvec_count),
        100.0 * static_cast<double>(r.spectral.eig_stats.matvec_count) /
            static_cast<double>(std::max<index_t>(
                1, cold.eig_stats.matvec_count)),
        ari);
    break;
  }

  const ServiceStats stats = svc.stats();
  std::printf(
      "\nservice: submitted=%llu admitted=%llu rejected=%llu "
      "completed=%llu failed=%llu cancelled=%llu\n",
      static_cast<unsigned long long>(stats.submitted),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.failed),
      static_cast<unsigned long long>(stats.cancelled));
  std::printf(
      "cache: hits=%llu misses=%llu evictions=%llu entries=%llu "
      "bytes=%llu\n",
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      static_cast<unsigned long long>(stats.cache_evictions),
      static_cast<unsigned long long>(stats.cache_entries),
      static_cast<unsigned long long>(stats.cache_bytes));

  std::printf("\n");
  core::attribution_table(core::collect_attribution(ctx)).print();

  obs::publish_device_context(ctx, reg);
  if (!trace_out.empty() && obs::trace().write_json_file(trace_out)) {
    std::fprintf(stderr, "[serve] wrote trace to %s (%zu events)\n",
                 trace_out.c_str(), obs::trace().event_count());
  }
  if (!metrics_out.empty() && reg.write_json_file(metrics_out)) {
    std::fprintf(stderr, "[serve] wrote metrics to %s\n", metrics_out.c_str());
  }
  if (!report_out.empty()) {
    core::RunReport report;
    report.bench = "fastsc_serve";
    report.attribution = core::collect_attribution(ctx);
    if (core::write_run_report_json_file(report, report_out)) {
      std::fprintf(stderr, "[serve] wrote run report to %s\n",
                   report_out.c_str());
    }
  }
  if (!prom_out.empty() && reg.write_prometheus_file(prom_out)) {
    std::fprintf(stderr, "[serve] wrote prometheus dump to %s\n",
                 prom_out.c_str());
  }
  return 0;
}
