#include "service/result_cache.h"

#include "common/crc32c.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/sdc.h"
#include "obs/trace.h"

namespace fastsc::service {

namespace {

/// Counter bump + cumulative trace mirror (the cancel.cpp/fault.cpp
/// pattern, so tools/check_trace.py can assert monotonicity).
void bump(const char* name) {
  obs::Counter& c = obs::metrics().counter(name);
  c.add();
  if (obs::trace_enabled()) {
    obs::trace().counter(name, static_cast<double>(c.value()),
                         obs::wall_now_us());
  }
}

}  // namespace

std::uint32_t CacheEntry::payload_crc() const {
  std::uint32_t c = 0;
  if (!labels.empty()) {
    c = crc32c(labels.data(), labels.size() * sizeof(index_t), c);
  }
  if (!eigenvalues.empty()) {
    c = crc32c(eigenvalues.data(), eigenvalues.size() * sizeof(real), c);
  }
  c = crc32c(&n, sizeof(n), c);
  c = crc32c(&k, sizeof(k), c);
  const std::uint32_t cp_crc =
      checkpoint != nullptr ? checkpoint->payload_crc() : 0;
  return crc32c(&cp_crc, sizeof(cp_crc), c);
}

ResultCache::ResultCache(std::uint64_t capacity_bytes)
    : capacity_(capacity_bytes) {}

std::uint64_t ResultCache::entry_bytes(const CacheEntry& e) {
  std::uint64_t b = sizeof(CacheEntry);
  b += e.labels.size() * sizeof(index_t);
  b += e.eigenvalues.size() * sizeof(real);
  if (e.checkpoint != nullptr) {
    b += sizeof(lanczos::LanczosCheckpoint);
    b += e.checkpoint->v.size() * sizeof(real);
    b += e.checkpoint->t.size() * sizeof(real);
  }
  return b;
}

bool ResultCache::verify_or_evict_locked(std::list<CacheEntry>::iterator it) {
  CacheEntry& e = *it;
  // At-rest corruption injection point: the stored label array is the live
  // payload a flipped DRAM bit would land in.
  if (!e.labels.empty()) {
    fault::corrupt_bytes("bitflip.cache.entry", e.labels.data(),
                         e.labels.size() * sizeof(index_t));
  }
  if (e.payload_crc() == e.crc) return true;
  obs::sdc_note_detected("cache.entry",
                         "cached result failed its CRC32C seal (graph fp " +
                             std::to_string(e.graph_fp) + ")");
  bytes_ -= e.bytes;
  map_.erase(CacheKey{e.graph_fp, e.config_fp});
  lru_.erase(it);
  bump("cache.integrity_evicted");
  publish_gauges_locked();
  return false;
}

std::optional<CacheEntry> ResultCache::lookup(const CacheKey& key) {
  if (capacity_ == 0) {
    bump("cache.misses");
    return std::nullopt;
  }
  std::lock_guard lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    bump("cache.misses");
    return std::nullopt;
  }
  if (!verify_or_evict_locked(it->second)) {
    // Corrupted entry: dropped above; the job falls through to a cold solve.
    bump("cache.misses");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  bump("cache.hits");
  return *it->second;
}

std::shared_ptr<const lanczos::LanczosCheckpoint> ResultCache::lookup_warm(
    std::uint64_t config_fp, index_t n, std::uint64_t warm_hint) {
  if (capacity_ == 0) return nullptr;
  std::lock_guard lock(mu_);
  if (warm_hint != 0) {
    const auto it = map_.find(CacheKey{warm_hint, config_fp});
    if (it != map_.end() && it->second->checkpoint != nullptr &&
        it->second->n == n) {
      if (verify_or_evict_locked(it->second)) {
        bump("cache.warm_donors");
        return it->second->checkpoint;
      }
      // Corrupted donor: skipped + evicted; fall through to the LRU scan.
    }
  }
  // Fall back to the freshest same-shaped entry: most recently used first,
  // so a stream of updates to one graph keeps chaining warm starts.
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->config_fp == config_fp && it->n == n &&
        it->checkpoint != nullptr) {
      const auto candidate = it++;
      if (verify_or_evict_locked(candidate)) {
        bump("cache.warm_donors");
        return candidate->checkpoint;
      }
    } else {
      ++it;
    }
  }
  return nullptr;
}

void ResultCache::insert(CacheEntry entry) {
  if (capacity_ == 0) return;
  if (entry.bytes == 0) entry.bytes = entry_bytes(entry);
  entry.crc = entry.payload_crc();  // seal (verified by every lookup)
  if (entry.bytes > capacity_) return;  // would evict everything and not fit
  std::lock_guard lock(mu_);
  const CacheKey key{entry.graph_fp, entry.config_fp};
  const auto it = map_.find(key);
  if (it != map_.end()) {
    // Replace in place (refreshed checkpoint after a re-solve).
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
  evict_until_fits_locked(entry.bytes);
  bytes_ += entry.bytes;
  lru_.push_front(std::move(entry));
  map_.emplace(key, lru_.begin());
  bump("cache.inserts");
  publish_gauges_locked();
}

void ResultCache::evict_until_fits_locked(std::uint64_t incoming_bytes) {
  while (!lru_.empty() && bytes_ + incoming_bytes > capacity_) {
    const CacheEntry& victim = lru_.back();
    bytes_ -= victim.bytes;
    map_.erase(CacheKey{victim.graph_fp, victim.config_fp});
    lru_.pop_back();
    bump("cache.evictions");
  }
}

void ResultCache::publish_gauges_locked() {
  obs::metrics().set_gauge("cache.bytes", static_cast<double>(bytes_));
  obs::metrics().set_gauge("cache.entries", static_cast<double>(lru_.size()));
}

std::uint64_t ResultCache::bytes() const {
  std::lock_guard lock(mu_);
  return bytes_;
}

usize ResultCache::entries() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

}  // namespace fastsc::service
