// Byte-accounted LRU result cache for the clustering service.
//
// Entries are keyed by (graph fingerprint, config fingerprint) — see
// core/fingerprint.h — and hold the solve's labels and eigenvalues plus,
// optionally, the eigensolver's restart-boundary checkpoint so a later
// delta-edge re-solve can warm-start from the cached Krylov basis.
//
// Thread-safe: one mutex guards the map + LRU list (lookups touch the list,
// so even reads mutate).  Eviction is strictly by bytes: inserting an entry
// evicts least-recently-used entries until the capacity holds, and an entry
// larger than the whole capacity is simply not cached.  All activity is
// published as cache.* counters/gauges in obs::metrics().
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "lanczos/irlm.h"

namespace fastsc::service {

struct CacheKey {
  std::uint64_t graph_fp = 0;
  std::uint64_t config_fp = 0;

  [[nodiscard]] bool operator==(const CacheKey&) const noexcept = default;
};

struct CacheKeyHash {
  [[nodiscard]] usize operator()(const CacheKey& k) const noexcept {
    // Split-mix the pair; either half alone is already a 64-bit hash.
    std::uint64_t h = k.graph_fp ^ (k.config_fp * 0x9e3779b97f4a7c15ull);
    h ^= h >> 32;
    return static_cast<usize>(h);
  }
};

/// One cached solve.  `checkpoint` is shared with the SpectralResult that
/// produced it (never copied — a paper-scale Krylov basis is tens of MB).
struct CacheEntry {
  std::vector<index_t> labels;
  std::vector<real> eigenvalues;
  index_t n = 0;
  index_t k = 0;
  std::shared_ptr<const lanczos::LanczosCheckpoint> checkpoint{};
  std::uint64_t graph_fp = 0;
  std::uint64_t config_fp = 0;
  std::uint64_t bytes = 0;  ///< computed by ResultCache::insert when 0
  /// CRC32C seal over the payload (DESIGN.md §14): labels, eigenvalues,
  /// n/k, and the checkpoint's own payload CRC.  insert() computes it;
  /// every lookup verifies it and evicts on mismatch
  /// (cache.integrity_evicted), falling through to a cold solve.
  std::uint32_t crc = 0;

  [[nodiscard]] std::uint32_t payload_crc() const;
};

class ResultCache {
 public:
  /// capacity_bytes == 0 disables the cache (lookups miss, inserts drop).
  explicit ResultCache(std::uint64_t capacity_bytes);

  /// Exact-key lookup; bumps the entry to most-recently-used.  Counts
  /// cache.hits / cache.misses.
  [[nodiscard]] std::optional<CacheEntry> lookup(const CacheKey& key);

  /// Warm-start donor search (does NOT count as hit/miss): prefer the entry
  /// for (warm_hint, config_fp) when it holds a checkpoint; otherwise the
  /// most-recently-used entry with the same config fingerprint, problem
  /// size, and a checkpoint.  Returns nullptr when no donor exists.
  [[nodiscard]] std::shared_ptr<const lanczos::LanczosCheckpoint> lookup_warm(
      std::uint64_t config_fp, index_t n, std::uint64_t warm_hint);

  /// Insert (or replace) the entry; evicts LRU entries until it fits.
  void insert(CacheEntry entry);

  [[nodiscard]] std::uint64_t bytes() const;
  [[nodiscard]] usize entries() const;
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return capacity_;
  }

  /// Accounted footprint of an entry (labels + eigenvalues + checkpoint
  /// arrays + bookkeeping).
  [[nodiscard]] static std::uint64_t entry_bytes(const CacheEntry& e);

 private:
  void evict_until_fits_locked(std::uint64_t incoming_bytes);
  void publish_gauges_locked();
  /// Apply the at-rest corruption injection site to the stored payload, then
  /// check the entry's CRC seal.  Returns true when intact; on mismatch the
  /// entry is erased (cache.integrity_evicted + sdc.detected.cache.entry)
  /// and false is returned — the caller treats it as absent.
  bool verify_or_evict_locked(std::list<CacheEntry>::iterator it);

  const std::uint64_t capacity_;
  mutable std::mutex mu_;
  /// MRU at front.  The map owns iterators into this list (stable under
  /// splice), the list holds the entries themselves.
  std::list<CacheEntry> lru_;
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
      map_;
  std::uint64_t bytes_ = 0;
};

}  // namespace fastsc::service
