// fastsc::Service implementation: priority queue + admission control +
// executor threads + result cache + warm-start re-solves.
//
// Concurrency model: one Impl mutex guards the queue, the job table, and
// the byte reservations; executors copy what they need out under the lock
// and solve unlocked.  Each running job owns a stack-local
// cancel::Governor bound to the executing thread (GovernorBindScope), so
// the pipeline's internal RunScope/poll sites govern exactly that job —
// deadlines, watchdogs, and cancel() never cross jobs.

#include "fastsc/service.h"

#include <chrono>
#include <condition_variable>
#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/log.h"
#include "core/fingerprint.h"
#include "device/device.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/result_cache.h"

namespace fastsc {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Counter bump with the cumulative trace mirror (cancel.cpp pattern).
void bump(const char* name) {
  obs::Counter& c = obs::metrics().counter(name);
  c.add();
  if (obs::trace_enabled()) {
    obs::trace().counter(name, static_cast<double>(c.value()),
                         obs::wall_now_us());
  }
}

/// Device bytes a job will need, from the same arithmetic the pipeline
/// allocates: the COO staging copy, the normalized CSR, and the iteration
/// vectors (x, y staged per wave, plus two device scratch vectors).
std::uint64_t estimate_device_bytes(const Job& job) {
  const auto nnz = static_cast<std::uint64_t>(job.graph.nnz());
  const auto n = static_cast<std::uint64_t>(job.graph.rows);
  const std::uint64_t coo = nnz * (2 * sizeof(index_t) + sizeof(real));
  const std::uint64_t csr =
      nnz * (sizeof(index_t) + sizeof(real)) + (n + 1) * sizeof(index_t);
  const std::uint64_t vectors = 4 * n * sizeof(real);
  return coo + csr + vectors;
}

/// Observe one finished job into the SLO histograms.  queue_ms covers
/// admission -> dispatch, solve_ms dispatch -> terminal (0 on cache hits),
/// and latency is their sum — the queue-wait vs solve split the Prometheus
/// dump exposes.
void observe_slo(JobPriority priority, double queue_ms, double solve_ms) {
  obs::MetricsRegistry& reg = obs::metrics();
  reg.histogram(std::string("slo.latency_ms.") + job_class_name(priority),
                slo_ms_edges())
      .observe(queue_ms + solve_ms);
  reg.histogram("slo.queue_ms", slo_ms_edges()).observe(queue_ms);
  reg.histogram("slo.solve_ms", slo_ms_edges()).observe(solve_ms);
}

}  // namespace

const char* job_class_name(JobPriority p) {
  switch (p) {
    case JobPriority::kLow: return "low";
    case JobPriority::kHigh: return "high";
    case JobPriority::kNormal: break;
  }
  return "normal";
}

std::vector<double> slo_ms_edges() {
  return {0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
}

const char* job_status_name(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kCompleted: return "completed";
    case JobStatus::kFailed: return "failed";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kOverloaded: return "overloaded";
  }
  return "?";
}

// --- Impl -------------------------------------------------------------------

struct Service::Impl {
  struct JobState {
    Job job;
    JobResult result;
    std::uint64_t reserved_bytes = 0;
    cancel::CancelSource cancel_source;
    Clock::time_point admitted_at{};
    bool terminal = false;
  };

  explicit Impl(ServiceConfig cfg, device::DeviceContext* ctx)
      : config(cfg),
        ctx(ctx),
        cache(cfg.enable_cache || cfg.enable_warm_start
                  ? cfg.cache_capacity_bytes
                  : 0) {
    const usize workers = config.workers < 1 ? 1 : config.workers;
    executors.reserve(workers);
    for (usize i = 0; i < workers; ++i) {
      executors.emplace_back([this] { executor_main(); });
    }
  }

  // Queue entries sort by (-priority, id): higher priority first, FIFO
  // within a priority class.
  using QueueKey = std::pair<int, JobId>;

  ServiceConfig config;
  device::DeviceContext* ctx = nullptr;
  service::ResultCache cache;

  mutable std::mutex mu;
  std::condition_variable work_cv;  ///< executors wait here
  std::condition_variable done_cv;  ///< wait() callers wait here
  std::map<JobId, JobState> jobs;
  std::set<QueueKey> queue;
  JobId next_id = 1;
  std::uint64_t reserved_bytes = 0;
  usize running = 0;
  bool stopping = false;  ///< executors exit once the queue is empty
  bool stopped = false;   ///< executors joined

  // service.* statistics (also mirrored as metrics counters by bump()).
  std::uint64_t n_submitted = 0;
  std::uint64_t n_admitted = 0;
  std::uint64_t n_rejected = 0;
  std::uint64_t n_completed = 0;
  std::uint64_t n_failed = 0;
  std::uint64_t n_cancelled = 0;
  // Touched from run_job() outside the lock, hence atomic.
  std::atomic<std::uint64_t> n_cache_hits{0};
  std::atomic<std::uint64_t> n_cache_misses{0};

  std::vector<std::thread> executors;

  void finalize_locked(JobState& s, JobStatus status) {
    s.result.status = status;
    s.terminal = true;
    // The job's device-byte reservation is released at terminal transition,
    // whether it ever ran or not.
    reserved_bytes -= s.reserved_bytes;
    s.reserved_bytes = 0;
    // Drop the (potentially large) input graph; the result keeps the labels.
    s.job.graph = sparse::Coo{};
    switch (status) {
      case JobStatus::kCompleted:
        ++n_completed;
        bump("service.jobs_completed");
        break;
      case JobStatus::kFailed:
        ++n_failed;
        bump("service.jobs_failed");
        break;
      case JobStatus::kCancelled:
        ++n_cancelled;
        bump("service.jobs_cancelled");
        break;
      default:
        break;
    }
    done_cv.notify_all();
  }

  void executor_main() {
    std::unique_lock lock(mu);
    for (;;) {
      work_cv.wait(lock, [this] { return stopping || !queue.empty(); });
      if (queue.empty()) {
        if (stopping) return;
        continue;
      }
      const JobId id = queue.begin()->second;
      queue.erase(queue.begin());
      JobState& s = jobs.at(id);
      s.result.status = JobStatus::kRunning;
      s.result.queue_ms = ms_between(s.admitted_at, Clock::now());
      ++running;
      lock.unlock();
      run_job(id, s);  // only this executor touches s while running
      lock.lock();
      --running;
    }
  }

  /// Solve one job.  `s.job` and `s.result` are owned by this executor
  /// until the terminal transition (taken under the lock at the end).
  void run_job(JobId id, JobState& s) {
    const Clock::time_point t0 = Clock::now();
    JobStatus end_status = JobStatus::kCompleted;

    // Per-job governor: every poll site, budget check, and watchdog inside
    // this solve resolves to this instance for the duration of the job.
    cancel::Governor governor;
    cancel::GovernorBindScope bind(&governor);

    // Per-job observability: device work mirrors into a job-local
    // attribution registry, and — when artifacts were requested — into a
    // job-local trace recorder tee'd at the process-wide one so the global
    // timeline stays complete.  Both ride ObsBindings into pool workers and
    // stream threads alongside the governor.
    obs::AttributionRegistry job_attr;
    if (ctx != nullptr) job_attr.set_roofline(ctx->attribution().roofline());
    obs::AttrBindScope attr_bind(&job_attr);
    const bool artifacts = !config.job_artifacts_dir.empty();
    obs::TraceRecorder job_trace;
    if (artifacts) {
      job_trace.set_enabled(true);
      job_trace.set_tee(&obs::trace());  // nothing bound yet: the global one
    }
    obs::TraceBindScope trace_bind(artifacts ? &job_trace : nullptr);

    core::SpectralConfig cfg = s.job.config;
    cfg.cancel_token = s.cancel_source.token();
    const double deadline = s.job.deadline_ms > 0
                                ? s.job.deadline_ms
                                : config.default_deadline_ms;
    if (deadline > 0 && cfg.budget.total.wall_ms <= 0) {
      cfg.budget.total.wall_ms = deadline;
    }

    s.result.graph_fingerprint = core::graph_fingerprint(s.job.graph);
    s.result.config_fingerprint = core::config_fingerprint(cfg);
    const service::CacheKey key{s.result.graph_fingerprint,
                                s.result.config_fingerprint};

    bool cache_hit = false;
    try {
      obs::ScopedSpan span("job:" + (s.job.tag.empty()
                                         ? std::to_string(id)
                                         : s.job.tag),
                           "service");
      if (config.enable_cache) {
        if (std::optional<service::CacheEntry> hit = cache.lookup(key)) {
          ++n_cache_hits;
          cache_hit = true;
          s.result.cache_hit = true;
          s.result.spectral.labels = std::move(hit->labels);
          s.result.spectral.eigenvalues = std::move(hit->eigenvalues);
          s.result.spectral.n = hit->n;
          s.result.spectral.k = hit->k;
        } else {
          ++n_cache_misses;
        }
      }

      if (!cache_hit) {
        // Cache entries should carry a warm-startable checkpoint, so
        // capture whenever the result could be inserted.
        if (config.enable_cache || config.enable_warm_start) {
          cfg.capture_checkpoint = true;
        }
        if (config.enable_warm_start) {
          cfg.warm_start = cache.lookup_warm(
              s.result.config_fingerprint, s.job.graph.rows, s.job.warm_hint);
        }

        core::SpectralResult solved =
            core::spectral_cluster_graph(s.job.graph, cfg, ctx);
        s.result.warm_started = solved.warm_started;
        if (config.enable_cache || config.enable_warm_start) {
          service::CacheEntry entry;
          entry.labels = solved.labels;
          entry.eigenvalues = solved.eigenvalues;
          entry.n = solved.n;
          entry.k = solved.k;
          entry.checkpoint = solved.checkpoint;
          entry.graph_fp = key.graph_fp;
          entry.config_fp = key.config_fp;
          cache.insert(std::move(entry));
        }
        s.result.spectral = std::move(solved);
      }
    } catch (const cancel::CancelledError& e) {
      end_status = JobStatus::kCancelled;
      s.result.error = e.what();
    } catch (const std::exception& e) {
      end_status = JobStatus::kFailed;
      s.result.error = e.what();
      FASTSC_LOG_WARN("service job " << id << " failed: " << e.what());
    }
    if (!cache_hit) s.result.solve_ms = ms_between(t0, Clock::now());
    observe_slo(s.job.priority, s.result.queue_ms, s.result.solve_ms);
    s.result.attribution = job_attr.report();
    if (artifacts) {
      const std::string stem =
          config.job_artifacts_dir + "/job_" + std::to_string(id);
      s.result.trace_path = stem + ".trace.json";
      s.result.attribution_path = stem + ".attribution.json";
      job_trace.write_json_file(s.result.trace_path);
      obs::write_attribution_json_file(s.result.attribution_path,
                                       s.result.attribution,
                                       job_attr.roofline());
    }
    std::lock_guard lock(mu);
    finalize_locked(s, end_status);
  }
};

// --- Service methods --------------------------------------------------------

Service::Service(ServiceConfig config, device::DeviceContext* ctx)
    : impl_(std::make_unique<Impl>(config, ctx)) {}

Service::~Service() { shutdown(/*drain=*/false); }

Service::Submitted Service::submit(Job job) {
  Impl& I = *impl_;
  std::lock_guard lock(I.mu);
  const JobId id = I.next_id++;
  ++I.n_submitted;
  bump("service.jobs_submitted");

  Impl::JobState state;
  state.result.id = id;
  state.admitted_at = Clock::now();

  std::string reject;
  const char* reject_counter = nullptr;
  const std::uint64_t estimate = estimate_device_bytes(job);
  if (I.stopping) {
    reject = "service is shutting down";
    reject_counter = "service.jobs_rejected.shutdown";
  } else if (I.queue.size() >= I.config.max_queue_depth) {
    reject = "queue depth " + std::to_string(I.queue.size()) +
             " at limit " + std::to_string(I.config.max_queue_depth);
    reject_counter = "service.jobs_rejected.queue";
  } else if (I.config.job_arena_quota_bytes > 0 &&
             estimate > I.config.job_arena_quota_bytes) {
    reject = "job needs ~" + std::to_string(estimate) +
             " device bytes, above the per-job quota " +
             std::to_string(I.config.job_arena_quota_bytes);
    reject_counter = "service.jobs_rejected.quota";
  } else if (I.config.arena_budget_bytes > 0 &&
             I.reserved_bytes + estimate > I.config.arena_budget_bytes) {
    reject = "admitting ~" + std::to_string(estimate) +
             " device bytes would exceed the arena budget (" +
             std::to_string(I.reserved_bytes) + " of " +
             std::to_string(I.config.arena_budget_bytes) + " reserved)";
    reject_counter = "service.jobs_rejected.arena";
  }

  if (reject_counter != nullptr) {
    ++I.n_rejected;
    bump("service.jobs_rejected");
    bump(reject_counter);
    state.result.status = JobStatus::kOverloaded;
    state.result.error = reject;
    state.terminal = true;
    I.jobs.emplace(id, std::move(state));
    I.done_cv.notify_all();
    return Submitted{id, JobStatus::kOverloaded};
  }

  ++I.n_admitted;
  bump("service.jobs_admitted");
  state.job = std::move(job);
  state.reserved_bytes = estimate;
  state.result.status = JobStatus::kQueued;
  I.reserved_bytes += estimate;
  const int prio = static_cast<int>(state.job.priority);
  I.jobs.emplace(id, std::move(state));
  I.queue.emplace(-prio, id);
  I.work_cv.notify_one();
  return Submitted{id, JobStatus::kQueued};
}

JobResult Service::wait(JobId id) {
  Impl& I = *impl_;
  std::unique_lock lock(I.mu);
  const auto it = I.jobs.find(id);
  if (it == I.jobs.end()) {
    throw std::invalid_argument("unknown job id " + std::to_string(id));
  }
  I.done_cv.wait(lock, [&] { return it->second.terminal; });
  return it->second.result;
}

bool Service::cancel(JobId id) {
  Impl& I = *impl_;
  std::lock_guard lock(I.mu);
  const auto it = I.jobs.find(id);
  if (it == I.jobs.end() || it->second.terminal) return false;
  Impl::JobState& s = it->second;
  if (s.result.status == JobStatus::kQueued) {
    const int prio = static_cast<int>(s.job.priority);
    I.queue.erase(Impl::QueueKey{-prio, id});
    s.result.error = "cancelled while queued";
    I.finalize_locked(s, JobStatus::kCancelled);
    return true;
  }
  // Running: fire the job's external token; its governor cancels the solve
  // at the next poll site and the executor records kCancelled.
  s.cancel_source.request_cancel();
  return true;
}

ServiceStats Service::stats() const {
  Impl& I = *impl_;
  ServiceStats out;
  {
    std::lock_guard lock(I.mu);
    out.submitted = I.n_submitted;
    out.admitted = I.n_admitted;
    out.rejected = I.n_rejected;
    out.completed = I.n_completed;
    out.failed = I.n_failed;
    out.cancelled = I.n_cancelled;
    out.cache_hits = I.n_cache_hits;
    out.cache_misses = I.n_cache_misses;
    out.queued = I.queue.size();
    out.running = I.running;
  }
  out.cache_bytes = I.cache.bytes();
  out.cache_entries = I.cache.entries();
  out.cache_evictions = static_cast<std::uint64_t>(
      obs::metrics().counter("cache.evictions").value());
  return out;
}

void Service::shutdown(bool drain) {
  Impl& I = *impl_;
  {
    std::unique_lock lock(I.mu);
    if (I.stopped) return;
    I.stopping = true;
    if (!drain) {
      // Cancel everything still queued; running jobs get their token fired
      // and unwind at the next poll site.
      while (!I.queue.empty()) {
        const JobId id = I.queue.begin()->second;
        I.queue.erase(I.queue.begin());
        Impl::JobState& s = I.jobs.at(id);
        s.result.error = "service shutdown";
        I.finalize_locked(s, JobStatus::kCancelled);
      }
      for (auto& [id, s] : I.jobs) {
        if (!s.terminal && s.result.status == JobStatus::kRunning) {
          s.cancel_source.request_cancel();
        }
      }
    }
    I.stopped = true;
  }
  I.work_cv.notify_all();
  for (std::thread& t : I.executors) {
    if (t.joinable()) t.join();
  }
}

}  // namespace fastsc
