#include "service/trace_replay.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/fingerprint.h"
#include "data/social.h"
#include "graph/components.h"

namespace fastsc::service {

namespace {

JobPriority priority_from_int(int p) {
  if (p <= 0) return JobPriority::kLow;
  if (p >= 2) return JobPriority::kHigh;
  return JobPriority::kNormal;
}

TraceOp parse_line(const std::string& line, usize line_no) {
  std::istringstream in(line);
  TraceOp op;
  long long n = 0;
  long long k = 0;
  unsigned long long seed = 0;
  if (!(in >> op.op >> op.dataset >> n >> k >> seed >> op.priority >>
        op.deadline_ms >> op.delta_frac)) {
    throw std::invalid_argument(
        "trace line " + std::to_string(line_no) +
        ": expected 'op dataset n k seed priority deadline_ms delta_frac', "
        "got: " + line);
  }
  if (op.op != "solve" && op.op != "update") {
    throw std::invalid_argument("trace line " + std::to_string(line_no) +
                                ": unknown op '" + op.op + "'");
  }
  op.n = static_cast<index_t>(n);
  op.k = static_cast<index_t>(k);
  op.seed = seed;
  return op;
}

}  // namespace

std::vector<TraceOp> parse_trace_text(const std::string& text) {
  std::vector<TraceOp> ops;
  std::istringstream in(text);
  std::string line;
  usize line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const usize hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    ops.push_back(parse_line(line, line_no));
  }
  return ops;
}

std::vector<TraceOp> parse_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open trace file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_trace_text(text.str());
}

void perturb_edges(sparse::Coo& w, double frac, std::uint64_t seed) {
  if (frac <= 0) return;
  const usize nnz = w.values.size();
  for (usize e = 0; e < nnz; ++e) {
    const index_t i = w.row_idx[e];
    const index_t j = w.col_idx[e];
    if (i == j) continue;
    // Hash the undirected pair so both stored directions make the same
    // decision, independent of storage order.
    const std::uint64_t key[3] = {seed,
                                  static_cast<std::uint64_t>(std::min(i, j)),
                                  static_cast<std::uint64_t>(std::max(i, j))};
    const std::uint64_t h = core::fnv1a64(key, sizeof(key));
    const double u =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u < frac) w.values[e] *= static_cast<real>(1.5);
  }
}

TraceReplayer::TraceReplayer(Service& service, core::SpectralConfig base)
    : service_(service), base_(std::move(base)) {}

core::SpectralConfig TraceReplayer::config_for(const TraceOp& op) const {
  core::SpectralConfig cfg = base_;
  cfg.num_clusters = op.k;
  cfg.seed = op.seed;
  return cfg;
}

Service::Submitted TraceReplayer::submit(const TraceOp& op) {
  DatasetState& ds = datasets_[op.dataset];
  std::uint64_t warm_hint = 0;
  if (op.op == "update" && ds.graph.rows > 0) {
    warm_hint = ds.fingerprint;
    ++ds.updates;
    perturb_edges(ds.graph, op.delta_frac, op.seed + ds.updates);
  } else {
    // First touch (or an explicit re-solve): build the generator graph.
    const data::SocialParams params =
        op.dataset.rfind("dblp", 0) == 0
            ? data::dblp_like_params(op.n, op.k, op.seed)
            : data::fb_like_params(op.n, op.k, op.seed);
    // The skewed generator leaves isolated vertices at small n; the
    // normalized Laplacian requires positive degrees, so serve the largest
    // connected component (paper §IV.B's preprocessing step).
    std::vector<index_t> old_of_new;
    ds.graph =
        graph::largest_component(data::make_social_graph(params).w, old_of_new);
    ds.updates = 0;
  }
  ds.fingerprint = core::graph_fingerprint(ds.graph);

  Job job;
  job.graph = ds.graph;  // copy: the replayer keeps the evolving state
  job.config = config_for(op);
  job.priority = priority_from_int(op.priority);
  job.deadline_ms = op.deadline_ms;
  job.warm_hint = warm_hint;
  job.tag = op.dataset + ":" + op.op;

  const Service::Submitted sub = service_.submit(std::move(job));
  ReplayedJob replayed;
  replayed.op = op;
  replayed.id = sub.id;
  replayed.submit_status = sub.status;
  jobs_.push_back(std::move(replayed));
  return sub;
}

const std::vector<ReplayedJob>& TraceReplayer::wait_all() {
  for (ReplayedJob& j : jobs_) {
    j.result = service_.wait(j.id);
  }
  return jobs_;
}

const sparse::Coo* TraceReplayer::current_graph(
    const std::string& dataset) const {
  const auto it = datasets_.find(dataset);
  if (it == datasets_.end() || it->second.graph.rows == 0) return nullptr;
  return &it->second.graph;
}

}  // namespace fastsc::service
