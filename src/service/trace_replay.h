// Job-trace replay for the clustering service.
//
// A trace file is a line-oriented script of service requests (see
// examples/service_trace.txt):
//
//   # op dataset n    k  seed priority deadline_ms delta_frac
//   solve   fb   600  5  42   1        0           0
//   solve   fb   600  5  42   1        0           0      <- cache hit
//   update  fb   600  5  42   2        0           0.01   <- warm re-solve
//
// `solve` generates the dataset's graph (fb-like or dblp-like planted
// communities, keyed by the dataset name prefix) and submits it.  `update`
// perturbs `delta_frac` of the dataset's current edges (weight x1.5,
// symmetric, deterministic) and submits the result with Job::warm_hint set
// to the pre-update graph fingerprint, so the service warm-starts from the
// cached Krylov basis.  Updates must repeat the solve's k and seed — the
// config fingerprint has to match for the cache to chain them.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/spectral.h"
#include "fastsc/service.h"
#include "sparse/coo.h"

namespace fastsc::service {

/// One parsed trace line.
struct TraceOp {
  std::string op;       ///< "solve" or "update"
  std::string dataset;  ///< graph key; prefix picks the generator family
  index_t n = 0;
  index_t k = 2;
  std::uint64_t seed = 42;
  int priority = 1;          ///< 0 = low, 1 = normal, 2 = high
  double deadline_ms = 0;    ///< 0 = no per-job deadline
  double delta_frac = 0;     ///< update only: fraction of edges perturbed
};

/// Parse a trace file.  Blank lines and `#` comments are skipped; malformed
/// lines throw std::invalid_argument with the line number.
[[nodiscard]] std::vector<TraceOp> parse_trace_file(const std::string& path);

/// Parse trace text (same grammar as the file form).
[[nodiscard]] std::vector<TraceOp> parse_trace_text(const std::string& text);

/// Deterministically scale ~frac of the graph's undirected edges by 1.5,
/// symmetrically (both stored directions of an edge get the same factor).
/// Selection hashes (seed, min(i,j), max(i,j)) so it is order-independent.
void perturb_edges(sparse::Coo& w, double frac, std::uint64_t seed);

/// A submitted trace op with its final result (filled by wait_all()).
struct ReplayedJob {
  TraceOp op;
  JobId id = 0;
  JobStatus submit_status = JobStatus::kQueued;
  JobResult result;
};

/// Replays trace ops against a Service, holding the evolving graph per
/// dataset so `update` lines chain (each perturbs the previous state).
class TraceReplayer {
 public:
  /// `base` supplies everything a trace line does not (backend, tolerances,
  /// ...); num_clusters and seed are overwritten per op.
  TraceReplayer(Service& service, core::SpectralConfig base);

  /// Build the op's graph and submit it.  The submitted job (without its
  /// result) is appended to jobs().
  Service::Submitted submit(const TraceOp& op);

  /// Wait for every submitted job and fill in the results; returns jobs().
  const std::vector<ReplayedJob>& wait_all();

  [[nodiscard]] const std::vector<ReplayedJob>& jobs() const { return jobs_; }

  /// Current (post-update) graph for a dataset, or nullptr if never solved.
  [[nodiscard]] const sparse::Coo* current_graph(
      const std::string& dataset) const;

  /// The solver config an op runs under (for cold-solve comparisons).
  [[nodiscard]] core::SpectralConfig config_for(const TraceOp& op) const;

 private:
  struct DatasetState {
    sparse::Coo graph;
    std::uint64_t fingerprint = 0;  ///< graph_fingerprint of `graph`
    std::uint64_t updates = 0;      ///< perturbation counter (seeds deltas)
  };

  Service& service_;
  core::SpectralConfig base_;
  std::map<std::string, DatasetState> datasets_;
  std::vector<ReplayedJob> jobs_;
};

}  // namespace fastsc::service
